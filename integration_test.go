package aeropack_test

import (
	"math"
	"testing"

	"aeropack/internal/compact"
	"aeropack/internal/convection"
	"aeropack/internal/core"
	"aeropack/internal/cosee"
	"aeropack/internal/envtest"
	"aeropack/internal/materials"
	"aeropack/internal/mesh"
	"aeropack/internal/thermal"
	"aeropack/internal/units"
)

// TestMaximumPrinciple: a source-free steady conduction field attains its
// extrema on the boundary — the discrete maximum principle the FV scheme
// must satisfy (no spurious interior hot spots).
func TestMaximumPrinciple(t *testing.T) {
	g, err := mesh.Uniform(10, 8, 4, 0.1, 0.08, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	m, err := thermal.NewModel(g, []materials.Material{materials.Al6061})
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaceBC(mesh.XMin, thermal.BC{Kind: thermal.FixedT, T: 360})
	m.SetFaceBC(mesh.XMax, thermal.BC{Kind: thermal.FixedT, T: 310})
	m.SetFaceBC(mesh.YMin, thermal.BC{Kind: thermal.Convection, T: 295, H: 15})
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Max() > 360+1e-6 {
		t.Errorf("interior exceeds the hottest boundary: %v", res.Max())
	}
	if res.Min() < 295-1e-6 {
		t.Errorf("interior falls below the coldest sink: %v", res.Min())
	}
}

// TestNetworkVsFiniteVolume: the level-1 lumped estimate of a simple
// conduction problem must agree with the level-2 FV solution — the
// internal consistency the paper's multi-level methodology relies on.
func TestNetworkVsFiniteVolume(t *testing.T) {
	// A 100×100×5 mm aluminium plate heated uniformly (10 W), one face
	// convecting (h=50) to 300 K.  The lumped model: R = 1/(hA) plus half
	// the through-thickness conduction.
	const (
		side, thk = 0.1, 0.005
		power     = 10.0
		h, Tamb   = 50.0, 300.0
	)
	g, _ := mesh.Uniform(10, 10, 4, side, side, thk)
	al := materials.Al6061
	m, _ := thermal.NewModel(g, []materials.Material{al})
	m.SetFaceBC(mesh.ZMin, thermal.BC{Kind: thermal.Convection, T: Tamb, H: h})
	m.AddVolumeSource(0, side, 0, side, 0, thk, power)
	fv, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}

	n := thermal.NewNetwork()
	n.FixT("amb", Tamb)
	n.AddSource("plate", power)
	area := side * side
	rCond := (thk / 2) / (al.K * area)
	n.AddResistor("plate", "amb", rCond+1/(h*area))
	lump, err := n.SolveSteady()
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(fv.Mean(), lump.T["plate"], 0.002) {
		t.Errorf("FV mean %v vs lumped %v", fv.Mean(), lump.T["plate"])
	}
}

// TestCompactVsDetailedJunction: the two-resistor junction estimate must
// bracket a detailed FV model of the same package mounted on a cold plate.
func TestCompactVsDetailedJunction(t *testing.T) {
	// Package: 17×17 mm BGA body, 1.2 mm thick, die region dissipating
	// 3 W, bottom on a 70 °C board (modelled as fixed T).
	pkg := compact.BGA256
	const power = 3.0
	boardT := units.CToK(70)

	// Compact: conduction-only path through θjb.
	tjCompact := boardT + power*pkg.ThetaJB

	// Detailed: mold compound body with a silicon die inside, bottom face
	// at board temperature through a solder-ball layer.
	g, _ := mesh.Uniform(17, 17, 6, 17e-3, 17e-3, 1.8e-3)
	mold := materials.MoldCompound
	si := materials.Silicon
	balls := materials.Material{Name: "ballfield", K: 2.2, Rho: 3000, Cp: 600}
	m, _ := thermal.NewModel(g, []materials.Material{mold, si, balls})
	// Ball field: bottom 0.4 mm.
	g.PaintRegion(0, 17e-3, 0, 17e-3, 0, 0.4e-3, 2)
	// Die: central 9×9 mm at mid-height.
	g.PaintRegion(4e-3, 13e-3, 4e-3, 13e-3, 0.7e-3, 1.1e-3, 1)
	m.SetFaceBC(mesh.ZMin, thermal.BC{Kind: thermal.FixedT, T: boardT})
	if n := m.AddVolumeSource(4e-3, 13e-3, 4e-3, 13e-3, 0.7e-3, 1.1e-3, power); n == 0 {
		t.Fatal("die source missed")
	}
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	tjDetailed := res.Max()
	// The compact θjb is a JEDEC-conditions abstraction; agreement within
	// ~40% is the expected class, and both must sit above the board.
	if tjDetailed <= boardT || tjCompact <= boardT {
		t.Fatal("junction must exceed board")
	}
	ratio := (tjDetailed - boardT) / (tjCompact - boardT)
	if ratio < 0.4 || ratio > 1.8 {
		t.Errorf("detailed/compact junction-rise ratio %v outside plausibility band", ratio)
	}
}

// TestCoseeFeedsQualification: the climatic result in the campaign equals
// ambient + the cosee model's ΔT — the cross-package contract envtest
// relies on.
func TestCoseeFeedsQualification(t *testing.T) {
	cfg := cosee.Config{UseLHP: true}
	a := &envtest.Article{
		Name: "link-check", MassKg: 3, MountFnHz: 150, DampingZeta: 0.05,
		MountArea: 1e-4, MountYield: 80e6,
		BoardSpan: 0.25, BoardThk: 2e-3, CompLen: 0.02,
		CompConst: 1, PosFactor: 1, FatigueExpB: 6.4,
		PowerW: 60,
		DeltaTAt: func(p float64) (float64, error) {
			pt, err := cfg.Solve(p)
			if err != nil {
				return 0, err
			}
			return pt.DeltaTK, nil
		},
		MaxPointC: 105, MinStartC: -40,
		ShockCyclesRequired: 100, JointDTFactor: 0.5,
	}
	camp := envtest.DefaultCampaign()
	r, err := camp.RunClimatic(a)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := cfg.Solve(60)
	if err != nil {
		t.Fatal(err)
	}
	want := camp.ClimaticHighC + pt.DeltaTK
	if math.Abs(r.Metric-want) > 1e-9 {
		t.Errorf("climatic metric %v vs cosee-derived %v", r.Metric, want)
	}
}

// TestLevel1EnvelopesLevel2: for a feasible design, the level-1 capacity
// must comfortably exceed the board's power, and the level-2 board
// temperature must stay below the level-3 worst junction — the nesting
// Fig. 4 promises.
func TestLevel1EnvelopesLevel2(t *testing.T) {
	board := &core.BoardDesign{
		Name: "nesting", LengthM: 0.16, WidthM: 0.23, ThicknessM: 2.4e-3,
		CopperLayers: 12, CopperOz: 2, CopperCover: 0.7,
		EdgeCooling: core.ConductionCooled, RailTempC: 30,
		MassLoadKgM2: 3,
		Components: []*compact.Component{
			{RefDes: "U1", Pkg: compact.FCBGACPU, Power: 6, X: 0.08, Y: 0.115},
			{RefDes: "U2", Pkg: compact.BGA256, Power: 2, X: 0.04, Y: 0.06},
		},
	}
	rep, err := core.Study(board, core.DefaultScreen(core.Envelope{L: 0.5, W: 0.3, H: 0.26}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Level1.MaxPowerW <= board.TotalPower() {
		t.Error("level-1 capacity must envelope the board power")
	}
	if rep.Level3.WorstC <= rep.Level2.MaxBoardC {
		t.Error("junction must exceed the board hot spot")
	}
	if rep.Level2.MaxBoardC <= board.RailTempC {
		t.Error("board must run above its rail")
	}
}

// TestARINCSelfConsistency: the air rise under the ARINC allocation is
// power-independent (≈16 K) — the property that makes 220 kg/h/kW a
// usable flat rule.
func TestARINCSelfConsistency(t *testing.T) {
	var rises []float64
	for _, p := range []float64{50, 200, 1000, 5000} {
		mdot := convection.ARINCMassFlow(p)
		rises = append(rises, convection.AirTempRise(p, mdot, units.CToK(40)))
	}
	for i := 1; i < len(rises); i++ {
		if !units.ApproxEqual(rises[i], rises[0], 1e-9) {
			t.Errorf("ARINC rise not flat: %v", rises)
		}
	}
	if rises[0] < 14 || rises[0] > 18 {
		t.Errorf("ARINC rise = %v K, want ≈16", rises[0])
	}
}
