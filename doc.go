// Package aeropack is a from-scratch Go reproduction of "Integration,
// cooling and packaging issues for aerospace equipments" (C. Sarno,
// C. Tantolin, Thales Aerospace Division, DATE 2010).
//
// The library implements the paper's packaging co-design flow and every
// substrate it stands on: a finite-volume conduction solver with
// convective and radiative boundaries (the FloTHERM role), structural
// dynamics for modal placement and isolator design (the ANSYS role),
// convection/radiation correlation libraries, two-phase devices (heat
// pipes, loop heat pipes, thermosyphons) with their operating limits,
// thermal interface material models with a virtual ASTM D5470 tester,
// environmental qualification campaigns, and 217F-class reliability
// roll-ups.
//
// The two experimental programmes the paper reports are reproduced as
// virtual laboratories: internal/cosee regenerates the Fig. 10 seat
// electronic box study (heat pipe + loop heat pipe cooling, +150%
// dissipation capability) and internal/nanopack the thermal interface
// material results (6 / 9.5 / 20 W/m·K products, HNC bond-line reduction,
// ±1 K·mm²/W tester).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-reproduced record, and bench_test.go for the harness that
// regenerates every table and figure (go test -bench=.).
package aeropack
