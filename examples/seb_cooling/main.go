// seb_cooling walks the COSEE scenario end to end: an IFE seat electronic
// box buried under a passenger seat, not connected to the aircraft
// environmental control system, whose dissipation keeps growing.  How hot
// does the PCB run, what does the HP+LHP retrofit buy, and what happens
// when the airline switches to a carbon-composite seat frame?
//
//	go run ./examples/seb_cooling
package main

import (
	"fmt"
	"log"

	"aeropack/internal/cosee"
	"aeropack/internal/materials"
)

func main() {
	cabin := 25.0 // °C

	fmt.Println("Seat electronic box study (cabin at 25 °C)")
	fmt.Println()

	// 1. Today's box at 40 W: passive case cooling only.
	bare := cosee.Config{AmbientC: cabin}
	p, err := bare.Solve(40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bare SEB at 40 W:  PCB runs %.0f K above cabin (%.0f °C)\n",
		p.DeltaTK, cabin+p.DeltaTK)

	// 2. Next-generation IFE needs 100 W.  Bare box?
	p, err = bare.Solve(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bare SEB at 100 W: PCB at %.0f °C — electronics cannot live there\n",
		cabin+p.DeltaTK)

	// 3. Retrofit the HP + LHP kit using the aluminium seat frame as sink.
	kit := cosee.Config{UseLHP: true, AmbientC: cabin}
	p, err = kit.Solve(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with HP+LHP kit:   PCB at %.0f °C, loops carry %.0f W into the frame\n",
		cabin+p.DeltaTK, p.LHPPower)

	// 4. Capability at the classic ΔT = 60 K design point.
	c0, err := bare.CapabilityAt(60)
	if err != nil {
		log.Fatal(err)
	}
	c1, err := kit.CapabilityAt(60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capability @ΔT=60K: %.0f W → %.0f W (%+.0f%%)\n", c0, c1, (c1/c0-1)*100)

	// 5. Does the seat tilt in cruise hurt?  (Loop heat pipes barely care.)
	tilted := cosee.Config{UseLHP: true, TiltDeg: 22, AmbientC: cabin}
	ct, err := tilted.CapabilityAt(60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at 22° tilt:        %.0f W (%+.1f%% vs horizontal)\n", ct, (ct/c1-1)*100)

	// 6. The composite-seat variant: the frame is a worse fin.
	composite := cosee.Config{UseLHP: true, AmbientC: cabin,
		Structure: materials.CarbonComposite}
	cc, err := composite.CapabilityAt(60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite frame:    %.0f W — still %+.0f%% over the bare box\n",
		cc, (cc/c0-1)*100)
}
