// rack_thermal runs the paper's three-level thermal methodology on a
// forced-air avionics computer rack (the Fig. 4 / Fig. 6 workload): an
// ARINC 600 heat balance at equipment level, a finite-volume board model
// at PCB level, and compact component models for junction temperatures —
// then rolls the junctions into an MTBF prediction.
//
//	go run ./examples/rack_thermal
package main

import (
	"fmt"
	"log"

	"aeropack/internal/compact"
	"aeropack/internal/convection"
	"aeropack/internal/core"
	"aeropack/internal/reliability"
	"aeropack/internal/units"
)

func main() {
	board := &core.BoardDesign{
		Name: "graphics-module", LengthM: 0.16, WidthM: 0.23, ThicknessM: 2.4e-3,
		CopperLayers: 12, CopperOz: 2, CopperCover: 0.7,
		EdgeCooling: core.ForcedAir, ChannelH: 55, ChannelAirC: 46,
		MassLoadKgM2: 3,
		Components: []*compact.Component{
			{RefDes: "GPU", Pkg: compact.FCBGACPU, Power: 9, X: 0.08, Y: 0.115},
			{RefDes: "RAM0", Pkg: compact.BGA256, Power: 2, X: 0.04, Y: 0.06},
			{RefDes: "RAM1", Pkg: compact.BGA256, Power: 2, X: 0.04, Y: 0.17},
			{RefDes: "PHY", Pkg: compact.QFP208, Power: 2.5, X: 0.12, Y: 0.17},
			{RefDes: "REG", Pkg: compact.TO263, Power: 1.5, X: 0.13, Y: 0.05},
		},
	}
	const nModules = 8

	// Level 1 — equipment: ARINC 600 sizing of the rack airflow.
	rackPower := board.TotalPower() * nModules
	mdot := convection.ARINCMassFlow(rackPower)
	rise := convection.AirTempRise(rackPower, mdot, units.CToK(40))
	fmt.Printf("LEVEL 1  rack %.0f W → ARINC flow %.1f kg/h, air 40 °C → %.1f °C\n",
		rackPower, units.ToKgPerHour(mdot), 40+rise)

	// Levels 2+3 — board and components via the co-design flow.
	screen := core.DefaultScreen(core.Envelope{L: 0.5, W: 0.3, H: 0.26})
	rep, err := core.Study(board, screen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LEVEL 2  board max %.1f °C (mean %.1f °C)\n",
		rep.Level2.MaxBoardC, rep.Level2.MeanBoardC)
	fmt.Printf("LEVEL 3  junctions (limit 125 °C):\n")
	for _, m := range rep.Level3.Margins {
		fmt.Printf("         %-5s Tj %6.1f °C  margin %5.1f K\n",
			m.RefDes, units.KToC(m.Tj), m.Margin)
	}

	// Reliability: the junctions feed the MTBF roll-up (§II.B).
	bom := &reliability.Board{
		Name: board.Name,
		Parts: []reliability.Part{
			{Name: "GPU", BaseFIT: 70, EaEV: 0.7, Quality: reliability.QualMil, Quantity: 1},
			{Name: "RAM0", BaseFIT: 25, EaEV: 0.6, Quality: reliability.QualMil, Quantity: 1},
			{Name: "RAM1", BaseFIT: 25, EaEV: 0.6, Quality: reliability.QualMil, Quantity: 1},
			{Name: "PHY", BaseFIT: 45, EaEV: 0.7, Quality: reliability.QualMil, Quantity: 1},
			{Name: "REG", BaseFIT: 20, EaEV: 0.5, Quality: reliability.QualMil, Quantity: 1},
			{Name: "Passives", BaseFIT: 1.2, EaEV: 0.3, Quality: reliability.QualMil, Quantity: 150},
		},
	}
	tj := map[string]float64{}
	for _, m := range rep.Level3.Margins {
		tj[m.RefDes] = m.Tj
	}
	pred, err := bom.Predict(tj, units.CToK(rep.Level2.MeanBoardC), reliability.AirborneInhabitedCargo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTBF     %.0f h (target class: 40,000 h); top contributor %s (%.0f%%)\n",
		pred.MTBFHours, pred.Contributions[0].Name, pred.Contributions[0].Fraction*100)
	fmt.Printf("VERDICT  feasible: %v\n", rep.Feasible)
}
