// tim_selection compares thermal interface materials for a hot avionics
// processor lid (the NANOPACK use case): for each candidate it computes
// the junction temperature in a lid → TIM → heatsink stack, measures the
// material on the virtual ASTM D5470 tester, and checks the NANOPACK
// project objectives.
//
//	go run ./examples/tim_selection
package main

import (
	"fmt"
	"log"

	"aeropack/internal/compact"
	"aeropack/internal/report"
	"aeropack/internal/thermal"
	"aeropack/internal/tim"
	"aeropack/internal/units"
)

func main() {
	const (
		powerW   = 35.0 // the paper's "30 W to 50 W in the coming years"
		sinkC    = 55.0
		pressure = 2e5
		rSinkAbs = 0.35 // heatsink-to-air, K/W
	)
	pkg := compact.FCBGACPU
	lidArea := pkg.Length * pkg.Width

	tester := tim.NewD5470(7)
	t := report.NewTable(
		fmt.Sprintf("TIM selection for a %.0f W processor (sink at %.0f °C)", powerW, sinkC),
		"TIM", "R_tim K/W", "Tj °C", "D5470 reading", "NANOPACK targets")
	for _, m := range tim.All() {
		rAbs, err := m.ResistanceAbs(pressure, lidArea)
		if err != nil {
			log.Fatal(err)
		}
		n := thermal.NewNetwork()
		n.FixT("sink", units.CToK(sinkC))
		n.AddSource("junction", powerW)
		if err := n.AddResistor("junction", "lid", pkg.ThetaJCTop); err != nil {
			log.Fatal(err)
		}
		if err := n.AddResistor("lid", "sinkbase", rAbs); err != nil {
			log.Fatal(err)
		}
		if err := n.AddResistor("sinkbase", "sink", rSinkAbs); err != nil {
			log.Fatal(err)
		}
		res, err := n.SolveSteady()
		if err != nil {
			log.Fatal(err)
		}
		meas, err := tester.Measure(&m)
		if err != nil {
			log.Fatal(err)
		}
		kOK, rOK, bltOK := m.MeetsNanopackTarget(pressure)
		targets := fmt.Sprintf("k:%v R:%v BLT:%v", mark(kOK), mark(rOK), mark(bltOK))
		t.AddRow(m.Name,
			fmt.Sprintf("%.4f", rAbs),
			fmt.Sprintf("%.1f", units.KToC(res.T["junction"])),
			fmt.Sprintf("%.1f K·mm²/W", units.ToKMm2PerW(meas.RMeasured)),
			targets)
	}
	fmt.Print(t.String())
	fmt.Println("\nNANOPACK objectives: k ≥ 20 W/m·K, R < 5 K·mm²/W, BLT < 20 µm.")
}

func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
