// hotspot_cooling works the paper's §IV arithmetic end to end: a die
// whose flux climbs from today's 10 W/cm² to the roadmap's 100 W/cm².
// Forced air with a clip-on heatsink runs out first, a solid copper
// spreader delays the wall, and a water vapor chamber carries the full
// roadmap — the quantitative case for the paper's "novel technologies".
//
//	go run ./examples/hotspot_cooling
package main

import (
	"fmt"
	"log"

	"aeropack/internal/convection"
	"aeropack/internal/fluids"
	"aeropack/internal/thermal"
	"aeropack/internal/twophase"
	"aeropack/internal/units"
)

func main() {
	const (
		dieSide = 0.015 // 15 mm die
		budget  = 60.0  // allowed die-to-coolant ΔT, K
		hAir    = 45.0  // channel film, W/m²K (ARINC-class airflow)
		hPlate  = 2000  // liquid cold plate on the spreader face
	)
	dieArea := dieSide * dieSide

	vc := &twophase.VaporChamber{
		Fluid:         fluids.Water,
		Wick:          twophase.SinteredCopperWick(0.4e-3),
		Length:        0.06,
		Width:         0.06,
		Thickness:     3e-3,
		WallThickness: 0.5e-3,
		WallK:         398,
		SourceArea:    dieArea,
	}
	rCu, err := vc.SolidSpreaderResistance(398, hPlate)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("die %gx%g mm, ΔT budget %.0f K\n\n", dieSide*1e3, dieSide*1e3, budget)
	fmt.Println("flux      air+heatsink     copper spreader   vapor chamber")
	for _, flux := range []float64{5, 10, 30, 60, 100} {
		power := units.WPerCm2(flux) * dieArea

		// Option 1: forced air through a 50:1 finned heatsink on the die.
		rAir := 1 / (hAir * dieArea * 50)
		airOK := power*rAir <= budget

		// Option 2: solid copper spreader onto the liquid plate.
		cuOK := power*rCu <= budget

		// Option 3: vapor chamber onto the same plate.
		vcVerdict := "OK"
		rvc, err := vc.Resistance(units.CToK(85), power)
		switch {
		case err != nil:
			vcVerdict = "limit!"
		default:
			total := rvc + 1/(hPlate*vc.PlateArea())
			if power*total > budget {
				vcVerdict = "over budget"
			} else {
				vcVerdict = fmt.Sprintf("OK (ΔT %.0f K)", power*total)
			}
		}
		fmt.Printf("%3.0f W/cm²  %-15s  %-16s  %s\n",
			flux, verdict(airOK, power*rAir), verdict(cuOK, power*rCu), vcVerdict)
	}

	// The spreading-resistance view: why plain lids fail.
	rsp, err := thermal.PlateSourceResistance(dieArea, 0.06*0.06, 3e-3, 167, hPlate)
	if err != nil {
		log.Fatal(err)
	}
	keff, err := vc.EffectiveConductivity(units.CToK(85), 150, hPlate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naluminium lid total: %.3f K/W; vapor chamber behaves like a k≈%.0f W/m·K solid\n",
		rsp, keff)
	fmt.Printf("(paper: air-based techniques are overtaken above ≈10 W/cm²; 100 W/cm² needs two-phase)\n")

	// Sanity note: the ARINC 600 global allocation cannot fix a local
	// problem — even 10× the flow only raises h by ~10^0.8 ≈ 6.3×.
	h10 := convection.ForcedFlatPlate(0.02, 80, units.CToK(85), units.CToK(40))
	fmt.Printf("even at 80 m/s channel air (≈10× flow): bare-die h = %.0f W/m²K → %.1f W/cm² max\n",
		h10, units.ToWPerCm2(h10*budget))
}

func verdict(ok bool, dT float64) string {
	if ok {
		return fmt.Sprintf("OK (ΔT %.0f K)", dT)
	}
	return fmt.Sprintf("FAILS (%.0f K)", dT)
}
