// design_optimization automates two choices the paper's design procedure
// makes by engineering iteration:
//
//  1. isolator tuning — pick the IMU mount frequency and damping that
//     minimise the random-vibration response on DO-160 C1 inside a sway-
//     space budget;
//
//  2. board stack-up — find the cheapest copper content that still closes
//     the level-2/level-3 thermal design of a conduction-cooled module.
//
//     go run ./examples/design_optimization
package main

import (
	"fmt"
	"log"
	"math"

	"aeropack/internal/compact"
	"aeropack/internal/core"
	"aeropack/internal/optimize"
	"aeropack/internal/vibration"
)

func main() {
	tuneIsolators()
	fmt.Println()
	tuneCopper()
}

func tuneIsolators() {
	psd, err := vibration.DO160("C1")
	if err != nil {
		log.Fatal(err)
	}
	objective := func(v []float64) float64 {
		fn, zeta := v[0], v[1]
		g, err := vibration.ResponseRMS(psd, fn, zeta)
		if err != nil {
			return math.Inf(1)
		}
		if sway := vibration.BoardDisp3Sigma(g, fn); sway > 4e-3 {
			return g + 100*(sway*1e3-4) // sway-space penalty beyond 4 mm
		}
		return g
	}
	naive, _ := vibration.ResponseRMS(psd, 45, 0.1)
	x, fx, err := optimize.PatternSearch(objective, []float64{60, 0.1},
		[]optimize.Bounds{{Lo: 20, Hi: 300}, {Lo: 0.02, Hi: 0.5}}, 1e-5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ISOLATOR TUNING (DO-160 C1, 4 mm sway budget)")
	fmt.Printf("  naive design   : 45 Hz, ζ=0.10 → %.2f gRMS\n", naive)
	fmt.Printf("  optimised      : %.0f Hz, ζ=%.2f → %.2f gRMS (−%.0f%%)\n",
		x[0], x[1], fx, (1-fx/naive)*100)
}

func tuneCopper() {
	// Minimise copper coverage (cost, weight) subject to the design
	// closing: findings-free Study run.
	mk := func(cover float64) *core.BoardDesign {
		return &core.BoardDesign{
			Name: "cost-optimised", LengthM: 0.16, WidthM: 0.23, ThicknessM: 2.4e-3,
			CopperLayers: 10, CopperOz: 1, CopperCover: cover,
			EdgeCooling: core.ConductionCooled, RailTempC: 35,
			MassLoadKgM2: 3,
			Components: []*compact.Component{
				{RefDes: "U1", Pkg: compact.FCBGACPU, Power: 7, X: 0.08, Y: 0.115},
				{RefDes: "U2", Pkg: compact.BGA256, Power: 2.5, X: 0.04, Y: 0.06},
			},
		}
	}
	screen := core.DefaultScreen(core.Envelope{L: 0.5, W: 0.3, H: 0.26})
	feasibleAt := func(cover float64) bool {
		rep, err := core.Study(mk(cover), screen)
		return err == nil && rep.Feasible
	}
	// Bisect the feasibility boundary in coverage.
	lo, hi := 0.1, 0.9
	if !feasibleAt(hi) {
		log.Fatal("even maximum copper cannot close this design")
	}
	if feasibleAt(lo) {
		hi = lo
	}
	boundary, err := optimize.Bisect(func(c float64) float64 {
		if feasibleAt(c) {
			return 1
		}
		return -1
	}, lo, hi, 0.01)
	if err != nil && hi != lo { //lint:allow floatcmp degenerate-interval sentinel
		log.Fatal(err)
	}
	chosen := math.Min(0.9, boundary+0.05) // 5% margin above the cliff
	rep, err := core.Study(mk(chosen), screen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BOARD STACK-UP (minimum copper that closes the design)")
	fmt.Printf("  feasibility boundary: %.0f%% coverage\n", boundary*100)
	fmt.Printf("  selected (with 5%% margin): %.0f%% → worst Tj %.1f °C, feasible %v\n",
		chosen*100, rep.Level3.WorstC, rep.Feasible)
}
