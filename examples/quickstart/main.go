// Quickstart: the smallest useful aeropack program.
//
// It answers the everyday packaging question: a 15 W component sits on a
// cold plate through a TIM — what junction temperature do we get, and
// would a heat pipe spreader help?  Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aeropack/internal/compact"
	"aeropack/internal/fluids"
	"aeropack/internal/thermal"
	"aeropack/internal/tim"
	"aeropack/internal/twophase"
	"aeropack/internal/units"
)

func main() {
	// 1. A lumped thermal network: junction → case → TIM → cold plate.
	pkg := compact.FCBGACPU
	grease := tim.GreaseStandard
	lidArea := pkg.Length * pkg.Width

	n := thermal.NewNetwork()
	n.FixT("coldplate", units.CToK(40))
	n.AddSource("junction", 15)
	if err := n.AddResistor("junction", "case", pkg.ThetaJCTop); err != nil {
		log.Fatal(err)
	}
	rTIM, err := grease.ResistanceAbs(2e5, lidArea)
	if err != nil {
		log.Fatal(err)
	}
	if err := n.AddResistor("case", "coldplate", rTIM); err != nil {
		log.Fatal(err)
	}
	res, err := n.SolveSteady()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("junction: %.1f °C (case %.1f °C, cold plate 40 °C)\n",
		units.KToC(res.T["junction"]), units.KToC(res.T["case"]))

	// 2. Could a copper/water heat pipe carry this power to a remote sink?
	hp := &twophase.HeatPipe{
		Fluid: fluids.Water,
		Wick:  twophase.SinteredCopperWick(0.75e-3),
		LEvap: 0.05, LAdia: 0.15, LCond: 0.08,
		RadiusVapor:   2e-3,
		WallThickness: 0.5e-3,
		WallK:         398,
	}
	qMax, mech, err := hp.MaxPower(units.CToK(60))
	if err != nil {
		log.Fatal(err)
	}
	r, err := hp.Resistance(units.CToK(60), 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat pipe: carries up to %.0f W (%s limit); at 15 W it adds only %.3f K/W\n",
		qMax, mech, r)
}
