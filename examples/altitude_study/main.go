// altitude_study puts the level-1 cooling screen at altitude: the same
// equipment that closes comfortably at sea level loses half its free-
// convection capacity at cruise in an unpressurized bay, and fan cooling
// fares even worse — the environmental constraint that pushes avionics
// toward conduction-cooled and two-phase architectures.
//
//	go run ./examples/altitude_study
package main

import (
	"fmt"
	"log"

	"aeropack/internal/core"
	"aeropack/internal/cosee"
	"aeropack/internal/materials"
)

func main() {
	env := core.Envelope{L: 0.4, W: 0.3, H: 0.2}
	const needW, fluxWcm2 = 150.0, 3.0

	fmt.Printf("equipment: %.0f W, %.1f W/cm² hot spots\n\n", needW, fluxWcm2)
	fmt.Println("altitude      free conv    forced air   recommended")
	for _, alt := range []float64{0, 2438, 8000, 12192} {
		screen := core.DefaultScreen(env)
		screen.AltitudeM = alt
		fc, err := screen.Limits(core.FreeConvection)
		if err != nil {
			log.Fatal(err)
		}
		fa, err := screen.Limits(core.ForcedAir)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := screen.Recommend(needW, fluxWcm2)
		name := "none feasible"
		if err == nil {
			name = rec.Tech.String()
		}
		isa, _ := materials.StandardAtmosphere(alt)
		fmt.Printf("%6.0f m      %5.0f W      %5.0f W      %s   (ρ=%.2f kg/m³)\n",
			alt, fc.MaxPowerW, fa.MaxPowerW, name, isa.Rho)
	}

	// The cabin case: the COSEE seat boxes live at 8,000 ft equivalent.
	fmt.Println()
	sl := cosee.Config{UseLHP: true}
	cab := cosee.Config{UseLHP: true, CabinAltitudeM: materials.CabinAltitudeM}
	pSL, err := sl.Solve(80)
	if err != nil {
		log.Fatal(err)
	}
	pCab, err := cab.Solve(80)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COSEE SEB at 80 W: ΔT %.1f K at sea level, %.1f K at the 8,000 ft cabin\n",
		pSL.DeltaTK, pCab.DeltaTK)
	fmt.Println("(radiation and the two-phase loops do not derate — only the buoyant films)")
}
