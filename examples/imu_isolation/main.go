// imu_isolation reproduces the paper's Fig. 3 exercise: design the
// mechanical filtering of an inertial reference system.  The sensors must
// see far less vibration than the rack provides, so the unit rides on
// four isolators whose mount frequency and damping are chosen here, then
// verified against the DO-160 curve C1 random environment.
//
//	go run ./examples/imu_isolation
package main

import (
	"fmt"
	"log"

	"aeropack/internal/mech"
	"aeropack/internal/vibration"
)

func main() {
	const (
		massKg  = 6.0
		mountHz = 45.0
		zeta    = 0.10
		nIso    = 4
	)

	// Size the isolators.
	k, err := mech.IsolatorStiffness(massKg, mountHz, nIso)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolators: %d × %.0f N/mm placing %g kg at %.0f Hz (ζ=%.2f, Q=%.1f)\n",
		nIso, k/1000, massKg, mountHz, zeta, mech.QFactor(zeta))

	// Build the mounted system and sweep the transmissibility.
	s := mech.NewLumped()
	if err := s.AddMass("imu", massKg); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nIso; i++ {
		if err := s.AddSpring("imu", mech.Ground, k); err != nil {
			log.Fatal(err)
		}
	}
	c := 2 * zeta * (2 * 3.141592653589793 * mountHz) * massKg
	if err := s.AddDamper("imu", mech.Ground, c); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n  f (Hz)   |X/Xbase|")
	for _, f := range []float64{10, 20, 45, 90, 200, 450, 1000, 2000} {
		tr, err := s.Transmissibility("imu", f)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		switch {
		case f == mountHz: //lint:allow floatcmp f iterates exact table values
			marker = "   ← resonance (amplifies)"
		case tr < 0.1:
			marker = "   ← >10× attenuation"
		}
		fmt.Printf("  %6.0f   %8.3f%s\n", f, tr, marker)
	}

	// Random-vibration budget: rack input vs what the sensors see.
	psd, err := vibration.DO160("C1")
	if err != nil {
		log.Fatal(err)
	}
	rackIn := psd.RMS()
	imuOut, err := vibration.ResponseRMS(psd, mountHz, zeta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDO-160 C1 rack input : %.2f gRMS\n", rackIn)
	fmt.Printf("isolated IMU response: %.2f gRMS (%.0f%% of input)\n",
		imuOut, imuOut/rackIn*100)

	// Octave rule: the sensor cluster's internal mode must clear 2× the
	// mount frequency so the stages do not couple.
	ratio, ok := mech.OctaveRule(mountHz, 320)
	fmt.Printf("octave rule vs 320 Hz sensor mode: ratio %.1f, pass %v\n", ratio, ok)
}
