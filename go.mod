module aeropack

go 1.22
