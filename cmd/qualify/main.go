// Command qualify runs the virtual environmental qualification campaign
// (the paper's §IV.A test block: 9 g acceleration, DO-160 C1 random
// vibration, climatic, thermal shock — plus the extended shock-pulse and
// sine-sweep pair) on an article described in JSON.
//
// Usage:
//
//	qualify -demo > article.json      # print an editable example
//	qualify -article article.json
//	qualify -article article.json -extended
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"aeropack/internal/cosee"
	"aeropack/internal/envtest"
	"aeropack/internal/obs"
	"aeropack/internal/obs/obshttp"
	"aeropack/internal/report"
	"aeropack/internal/robust"
)

// articleFile is the JSON schema of a unit under test.  The thermal model
// is selected by name: "seb-lhp" and "seb-bare" bind to the COSEE models;
// "linear" uses a fixed thermal resistance.
type articleFile struct {
	Name        string  `json:"name"`
	MassKg      float64 `json:"mass_kg"`
	MountFnHz   float64 `json:"mount_fn_hz"`
	DampingZeta float64 `json:"damping_zeta"`
	MountAreaM2 float64 `json:"mount_area_m2"`
	MountYield  float64 `json:"mount_yield_pa"`

	BoardSpanMM float64 `json:"board_span_mm"`
	BoardThkMM  float64 `json:"board_thk_mm"`
	CompLenMM   float64 `json:"comp_len_mm"`
	FatigueExpB float64 `json:"fatigue_exp_b"`

	PowerW       float64 `json:"power_w"`
	ThermalModel string  `json:"thermal_model"` // seb-lhp | seb-bare | linear
	ThetaKW      float64 `json:"theta_k_per_w"` // for linear
	MaxPointC    float64 `json:"max_point_c"`
	MinStartC    float64 `json:"min_start_c"`

	ShockCycles   int     `json:"shock_cycles"`
	JointDTFactor float64 `json:"joint_dt_factor"`
}

const demoArticle = `{
  "name": "SEB+seat (HP/LHP kit)",
  "mass_kg": 3.5, "mount_fn_hz": 180, "damping_zeta": 0.05,
  "mount_area_m2": 1e-4, "mount_yield_pa": 8e7,
  "board_span_mm": 250, "board_thk_mm": 2, "comp_len_mm": 25,
  "fatigue_exp_b": 6.4,
  "power_w": 60, "thermal_model": "seb-lhp",
  "max_point_c": 105, "min_start_c": -40,
  "shock_cycles": 100, "joint_dt_factor": 0.5
}
`

func main() {
	articlePath := flag.String("article", "", "path to the article JSON")
	demo := flag.Bool("demo", false, "print an example article and exit")
	extended := flag.Bool("extended", false, "add the DO-160 shock-pulse and sine-sweep tests")
	workers := flag.Int("workers", 1, "worker goroutines for the campaign (1 = serial, 0 = GOMAXPROCS); results are identical at any count")
	keepGoing := flag.Bool("keep-going", false, "survive per-test failures: errored tests show as ERROR rows, every other test still runs; exit code 4 on a partial campaign")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the run's spans (chrome://tracing)")
	metricsPath := flag.String("metrics", "", "write an aeropack-metrics/v1 JSON snapshot of the run's counters/gauges/histograms")
	eventsPath := flag.String("events", "", "write an aeropack-events/v1 JSON dump of the flight-recorder ring on exit")
	serveAddr := flag.String("serve", "", "serve the live ops endpoint (/metrics /healthz /events /progress) on this address while the campaign runs, e.g. :8080")
	flag.Parse()

	if *demo {
		fmt.Print(demoArticle)
		return
	}
	flush := obs.Setup(*tracePath, *metricsPath, *eventsPath)
	var ops *obshttp.Ops
	fail := func(code int, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		_ = ops.Close() // best effort on the error path; nil-safe
		if ferr := flush(); ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
		}
		os.Exit(code)
	}
	if *serveAddr != "" {
		var err error
		if ops, err = obshttp.EnableOps(*serveAddr); err != nil {
			fail(1, err)
		}
		fmt.Fprintf(os.Stderr, "qualify: ops endpoint listening on %s\n", ops.Addr())
	}
	if *articlePath == "" {
		fail(2, fmt.Errorf("qualify: provide -article <file> or -demo"))
	}
	raw, err := os.ReadFile(*articlePath)
	if err != nil {
		fail(1, err)
	}
	var af articleFile
	if err := json.Unmarshal(raw, &af); err != nil {
		fail(1, fmt.Errorf("qualify: parsing %s: %w", *articlePath, err))
	}
	article, err := buildArticle(&af)
	if err != nil {
		fail(1, err)
	}

	var results []envtest.Result
	var pointErrs []*robust.PointError
	switch {
	case *keepGoing && *extended:
		results, pointErrs = envtest.DefaultExtended().RunAllKeepGoing(article, *workers)
	case *keepGoing:
		results, pointErrs = envtest.DefaultCampaign().RunAllKeepGoing(article, *workers)
	case *extended && *workers == 1:
		results, err = envtest.DefaultExtended().RunAll(article)
	case *extended:
		results, err = envtest.DefaultExtended().RunAllParallel(article, *workers)
	case *workers == 1:
		results, err = envtest.DefaultCampaign().RunAll(article)
	default:
		results, err = envtest.DefaultCampaign().RunAllParallel(article, *workers)
	}
	if err != nil {
		fail(1, err)
	}
	for _, pe := range pointErrs {
		fmt.Fprintln(os.Stderr, "qualify: keep-going:", pe)
	}
	errored := make(map[int]bool, len(pointErrs))
	for _, pe := range pointErrs {
		errored[pe.Index] = true
	}
	t := report.NewTable("Qualification — "+article.Name, "test", "result", "margin", "detail")
	for i, r := range results {
		mark := "PASS"
		switch {
		case errored[i]:
			mark = "ERROR"
		case !r.Pass:
			mark = "FAIL"
		}
		t.AddRow(r.Test, mark, fmt.Sprintf("%+.0f%%", r.Margin()*100), r.Detail)
	}
	fmt.Print(t.String())
	if len(pointErrs) > 0 {
		fmt.Fprintf(os.Stderr, "qualify: keep-going: %d test(s) errored, results are partial\n", len(pointErrs))
		fail(4, nil)
	}
	if !envtest.AllPass(results) {
		fail(3, nil)
	}
	fmt.Println("ALL TESTS PASSED")
	if err := ops.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "qualify: closing ops endpoint:", err)
	}
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func buildArticle(af *articleFile) (*envtest.Article, error) {
	a := &envtest.Article{
		Name:        af.Name,
		MassKg:      af.MassKg,
		MountFnHz:   af.MountFnHz,
		DampingZeta: af.DampingZeta,
		MountArea:   af.MountAreaM2,
		MountYield:  af.MountYield,
		BoardSpan:   af.BoardSpanMM * 1e-3,
		BoardThk:    af.BoardThkMM * 1e-3,
		CompLen:     af.CompLenMM * 1e-3,
		CompConst:   1.0,
		PosFactor:   1.0,
		FatigueExpB: af.FatigueExpB,
		PowerW:      af.PowerW,
		MaxPointC:   af.MaxPointC,
		MinStartC:   af.MinStartC,

		ShockCyclesRequired: af.ShockCycles,
		JointDTFactor:       af.JointDTFactor,
	}
	switch af.ThermalModel {
	case "seb-lhp", "":
		cfg := cosee.Config{UseLHP: true}
		a.DeltaTAt = coseeHook(cfg)
	case "seb-bare":
		a.DeltaTAt = coseeHook(cosee.Config{})
	case "linear":
		if af.ThetaKW <= 0 {
			return nil, fmt.Errorf("qualify: linear model needs theta_k_per_w > 0")
		}
		theta := af.ThetaKW
		a.DeltaTAt = func(p float64) (float64, error) { return p * theta, nil }
	default:
		return nil, fmt.Errorf("qualify: unknown thermal model %q", af.ThermalModel)
	}
	return a, nil
}

func coseeHook(cfg cosee.Config) func(float64) (float64, error) {
	return func(p float64) (float64, error) {
		// Solve mutates its receiver (Defaults fills zero fields) and the
		// parallel campaign calls this hook concurrently, so work on a
		// private copy.
		c := cfg
		pt, err := c.Solve(p)
		if err != nil {
			return 0, err
		}
		return pt.DeltaTK, nil
	}
}
