// Command benchjson converts `go test -bench` text output into the
// aeropack-bench/v1 JSON schema used by the BENCH_*.json perf-trajectory
// files at the repository root, and diffs two such files as a
// perf-regression watchdog.
//
// Usage:
//
//	go test -run - -bench . -benchmem . | benchjson -o BENCH_obs.json
//	benchjson -in bench.txt              # JSON to stdout
//	benchjson -compare old.json new.json # exit 2 on regression
//
// In -compare mode the two positional arguments are the baseline and the
// candidate aeropack-bench/v1 files.  Benchmarks are paired by name and
// GOMAXPROCS; a metric regresses when candidate/baseline exceeds its
// unit's threshold (ns/op and allocs/op 1.10, B/op 1.25, solver_iters/op
// 1.05 by default).  ns/op pairs where both sides sit under -min-ns are
// skipped — sub-nanosecond guard benches jitter by whole multiples while
// staying inside budget.  Exit status: 0 clean, 1 usage/IO error,
// 2 regression detected.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aeropack/internal/report"
)

func main() {
	in := flag.String("in", "", "bench output file to read (default: stdin)")
	out := flag.String("o", "", "JSON file to write (default: stdout)")
	compare := flag.Bool("compare", false, "compare two bench JSON files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0, "override every per-unit ratio threshold with this single value (e.g. 1.20); 0 keeps the defaults")
	minNs := flag.Float64("min-ns", -1, "ns/op noise floor for -compare: pairs with both sides under it are not ratio-checked (default 5)")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold, *minNs))
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() { _ = f.Close() }() // read-only; nothing to do about a close error
		src = f
	}
	set, err := report.ParseBench(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		dst = f
	}
	if err := set.WriteJSON(dst); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runCompare implements -compare and returns the process exit code.
func runCompare(paths []string, threshold, minNs float64) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
		return 1
	}
	oldSet, err := readBenchFile(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	newSet, err := readBenchFile(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	opts := report.DefaultCompareOptions()
	if threshold > 0 {
		for unit := range opts.MaxRatios {
			opts.MaxRatios[unit] = threshold
		}
	}
	if minNs >= 0 {
		opts.MinNs = minNs
	}
	rep := report.CompareBenchSets(oldSet, newSet, opts)
	fmt.Printf("benchjson: %s vs %s\n%s", paths[0], paths[1], rep)
	if !rep.OK() {
		return 2
	}
	return 0
}

func readBenchFile(path string) (*report.BenchSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to do about a close error
	set, err := report.ReadBenchJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return set, nil
}
