// Command benchjson converts `go test -bench` text output into the
// aeropack-bench/v1 JSON schema used by the BENCH_*.json perf-trajectory
// files at the repository root.
//
// Usage:
//
//	go test -run - -bench . -benchmem . | benchjson -o BENCH_obs.json
//	benchjson -in bench.txt              # JSON to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aeropack/internal/report"
)

func main() {
	in := flag.String("in", "", "bench output file to read (default: stdin)")
	out := flag.String("o", "", "JSON file to write (default: stdout)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() { _ = f.Close() }() // read-only; nothing to do about a close error
		src = f
	}
	set, err := report.ParseBench(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		dst = f
	}
	if err := set.WriteJSON(dst); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
