// Command aeropacklint runs aeropack's in-tree static-analysis suite
// (internal/lint) over the module and reports every violation of the
// project's physical-modelling and concurrency invariants:
//
//	unitsafety   inline unit-conversion literals outside internal/units
//	floatcmp     exact ==/!= between float64 expressions
//	panicpolicy  panics in library packages
//	nanguard     solver entry points without NaN/Inf input handling
//	spanleak     obs spans not ended on every return path
//	detguard     nondeterminism inside parallel worker bodies
//	errdrop      discarded errors and ==-compared sentinels
//	lockheld     blocking calls while a sync mutex is held
//	hotalloc     per-iteration allocation in //lint:hot kernels
//	budgetstop   driver paths into iterative solvers without a Stop/budget
//	goroleak     goroutines in library code never joined or cancelled
//	taintsize    request/flag-derived sizes reaching make or loop bounds unclamped
//	stopflow     handler paths into solvers without the request's stop predicate
//	lockorder    cycles in the module-wide mutex acquisition graph
//	atomicmix    plain access to fields touched via sync/atomic elsewhere
//
// spanleak, lockheld, errdrop, budgetstop, goroleak and the four
// value-flow rules are interprocedural: they follow call-graph summaries
// across in-module package boundaries, so a violation hidden one call
// deep — or one package over — is reported at the caller with the full
// call chain.
//
// Usage:
//
//	go run ./cmd/aeropacklint [flags] ./...
//
// Arguments are package directories; a trailing /... lints the whole
// subtree.  With no arguments the current directory's subtree is linted.
//
// Findings that admit a provably-safe rewrite carry a machine-applicable
// fix; -fix applies every pending fix in place (gofmt-ing the touched
// files) and -fix -dry-run lists the files that would change, exiting 1
// when any fix is pending — the CI gate against drift.
//
// A finding is suppressed by placing
//
//	//lint:allow <rule>[,<rule>] [reason]
//
// on the offending line or the line above it; -audit-allows reports
// directives that have gone stale or carry no reason.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aeropack/internal/lint"
)

// Exit codes (also shown by -h):
//
//	0  clean — no findings (or, with -audit-allows, no stale directives)
//	1  findings reported (or stale/reason-less allow directives in audit mode)
//	2  usage, load or I/O error
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	var (
		listRules   = flag.Bool("list", false, "list the registered rules and exit")
		quiet       = flag.Bool("q", false, "suppress type-checker warnings")
		ruleList    = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		jsonOut     = flag.Bool("json", false, "write findings as aeropacklint/v1 JSON to stdout")
		sarifPath   = flag.String("sarif", "", "write findings as SARIF 2.1.0 to `file` ('-' for stdout)")
		auditAllows = flag.Bool("audit-allows", false, "report //lint:allow directives that no longer suppress anything or lack a reason")
		cacheDir    = flag.String("cache-dir", "", "content-hash result cache `directory` (default: per-user cache; empty string plus -nocache disables)")
		noCache     = flag.Bool("nocache", false, "disable the result cache")
		applyFix    = flag.Bool("fix", false, "apply machine-applicable fixes in place (gofmt included)")
		dryRun      = flag.Bool("dry-run", false, "with -fix: list files that would change without writing; exit 1 if any fix is pending")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: aeropacklint [flags] [package-dir | dir/...]...\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nexit codes:\n  %d  clean\n  %d  findings (or stale //lint:allow directives with -audit-allows)\n  %d  usage, load or I/O error\n", exitClean, exitFindings, exitError)
	}
	flag.Parse()

	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules, err := selectRules(*ruleList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aeropacklint:", err)
		os.Exit(exitError)
	}

	opts := lint.ModuleOptions{
		Dir:      ".",
		Patterns: flag.Args(),
		Rules:    rules,
		Audit:    *auditAllows,
	}
	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			if loader, err := lint.NewLoader("."); err == nil {
				dir = lint.DefaultCacheDir(loader.Root)
			}
		}
		if dir != "" {
			opts.Cache = &lint.Cache{Dir: dir}
		}
	}

	res, err := lint.RunModule(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aeropacklint:", err)
		os.Exit(exitError)
	}
	if !*quiet {
		for _, w := range res.TypeErrors {
			fmt.Fprintln(os.Stderr, "aeropacklint: warning: typecheck:", w)
		}
	}

	if *auditAllows {
		for _, s := range res.Stale {
			fmt.Println(s.String())
		}
		if n := len(res.Stale); n > 0 {
			fmt.Fprintf(os.Stderr, "aeropacklint: %d allow-directive problem(s)\n", n)
			os.Exit(exitFindings)
		}
		return
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, rulesOrAll(rules), res.Findings); err != nil {
			fmt.Fprintln(os.Stderr, "aeropacklint:", err)
			os.Exit(exitError)
		}
	}
	if *jsonOut {
		if err := lint.WriteJSONFindings(os.Stdout, res.Findings); err != nil {
			fmt.Fprintln(os.Stderr, "aeropacklint:", err)
			os.Exit(exitError)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f.String())
		}
	}
	if *applyFix {
		changed, err := lint.ApplyFixes(res.Root, res.Findings, *dryRun)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aeropacklint:", err)
			os.Exit(exitError)
		}
		verb := "fixed"
		if *dryRun {
			verb = "would fix"
		}
		for _, file := range changed {
			fmt.Fprintf(os.Stderr, "aeropacklint: %s %s\n", verb, file)
		}
		if *dryRun && lint.PendingFixes(res.Findings) > 0 {
			fmt.Fprintf(os.Stderr, "aeropacklint: %d fix(es) pending\n", lint.PendingFixes(res.Findings))
			os.Exit(exitFindings)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "aeropacklint: %d finding(s)\n", len(res.Findings))
		os.Exit(exitFindings)
	}
}

// selectRules resolves the -rules flag; nil means "all registered".
func selectRules(list string) ([]lint.Rule, error) {
	if list == "" {
		return nil, nil
	}
	byName := make(map[string]lint.Rule)
	for _, r := range lint.Rules() {
		byName[r.Name()] = r
	}
	var out []lint.Rule
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (run -list for the registry)", name)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules selected no rules")
	}
	return out, nil
}

func rulesOrAll(rules []lint.Rule) []lint.Rule {
	if rules == nil {
		return lint.Rules()
	}
	return rules
}

// writeSARIF writes the SARIF log to path, or stdout for "-".
func writeSARIF(path string, rules []lint.Rule, findings []lint.Finding) error {
	if path == "-" {
		return lint.WriteSARIF(os.Stdout, rules, findings)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lint.WriteSARIF(f, rules, findings); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
