// Command aeropacklint runs aeropack's in-tree static-analysis suite
// (internal/lint) over the module and reports every violation of the
// project's physical-modelling invariants:
//
//	unitsafety   inline unit-conversion literals outside internal/units
//	floatcmp     exact ==/!= between float64 expressions
//	panicpolicy  panics in library packages
//	nanguard     solver entry points without NaN/Inf input handling
//
// Usage:
//
//	go run ./cmd/aeropacklint ./...
//
// Arguments are package directories; a trailing /... lints the whole
// subtree.  With no arguments the current directory's subtree is linted.
// The exit status is non-zero when any finding is reported, so the
// command slots directly into verify.sh / CI.
//
// A finding is suppressed by placing
//
//	//lint:allow <rule> [reason]
//
// on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aeropack/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the registered rules and exit")
	quiet := flag.Bool("q", false, "suppress type-checker warnings")
	flag.Parse()

	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "aeropacklint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		if dir, ok := strings.CutSuffix(arg, "/..."); ok {
			if dir == "." || dir == "" {
				dir = "."
			}
			sub, err := loader.LoadAll(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aeropacklint:", err)
				os.Exit(2)
			}
			pkgs = append(pkgs, sub...)
			continue
		}
		p, err := loader.LoadDir(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aeropacklint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, p)
	}

	findings := lint.Run(pkgs)
	for _, f := range findings {
		fmt.Println(rel(loader.Root, f))
	}
	if !*quiet {
		for _, w := range loader.TypeErrors {
			fmt.Fprintln(os.Stderr, "aeropacklint: warning: typecheck:", w)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "aeropacklint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// rel shortens the finding's file path to be module-root-relative for
// stable, readable output.
func rel(root string, f lint.Finding) string {
	s := f.String()
	if rest, ok := strings.CutPrefix(s, root+string(os.PathSeparator)); ok {
		return rest
	}
	return s
}
