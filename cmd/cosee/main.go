// Command cosee reproduces the paper's Fig. 10 experiment from the
// command line: the seat-electronic-box ΔT-versus-power curves without
// LHP, with LHP horizontal and with LHP at a chosen tilt, plus the
// headline capability summary.
//
// Usage:
//
//	cosee [-structure Al6061|CarbonComposite] [-tilt 22] [-pmax 110] [-step 10]
//	      [-trace trace.json] [-metrics metrics.json] [-events events.json]
//	      [-serve :8080]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aeropack/internal/cosee"
	"aeropack/internal/materials"
	"aeropack/internal/obs"
	"aeropack/internal/obs/obshttp"
	"aeropack/internal/report"
	"aeropack/internal/robust"
)

func main() {
	structure := flag.String("structure", "Al6061", "seat structural material (Al6061 or CarbonComposite)")
	tilt := flag.Float64("tilt", 22, "tilt angle for the third configuration, degrees")
	pmax := flag.Float64("pmax", 110, "maximum SEB power for the sweep, W")
	step := flag.Float64("step", 10, "power step, W")
	csv := flag.Bool("csv", false, "emit the sweep as CSV (power, dT per configuration) for plotting")
	workers := flag.Int("workers", 1, "worker goroutines for sweeps (1 = serial, 0 = GOMAXPROCS); results are identical at any count")
	keepGoing := flag.Bool("keep-going", false, "survive per-point solver failures: failed points print to stderr and show NaN, all other points are unchanged; exit code 4 on a partial run")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the run's spans (chrome://tracing)")
	metricsPath := flag.String("metrics", "", "write an aeropack-metrics/v1 JSON snapshot of the run's counters/gauges/histograms")
	eventsPath := flag.String("events", "", "write an aeropack-events/v1 JSON dump of the flight-recorder ring on exit")
	serveAddr := flag.String("serve", "", "serve the live ops endpoint (/metrics /healthz /events /progress) on this address while the run executes, e.g. :8080")
	flag.Parse()

	flush := obs.Setup(*tracePath, *metricsPath, *eventsPath)
	var ops *obshttp.Ops
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		_ = ops.Close() // best effort on the error path; nil-safe
		if ferr := flush(); ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
		}
		os.Exit(1)
	}
	if *serveAddr != "" {
		var err error
		if ops, err = obshttp.EnableOps(*serveAddr); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "cosee: ops endpoint listening on %s\n", ops.Addr())
	}

	mat, err := materials.Get(*structure)
	if err != nil {
		fail(err)
	}
	if *pmax <= 0 || *step <= 0 {
		fail(fmt.Errorf("cosee: pmax and step must be positive"))
	}
	var powers []float64
	for p := *step; p <= *pmax+1e-9; p += *step {
		powers = append(powers, p)
	}

	// Sweeps always route through the pool layer so utilisation telemetry
	// covers every run; workers == 1 takes the pool's serial path, whose
	// results (and output) are identical to Sweep's.  With -keep-going a
	// failed point is reported on stderr and kept as NaN in the output
	// instead of aborting; failures counts the points lost that way.
	failures := 0
	sweep := func(cfg cosee.Config) ([]cosee.Point, error) {
		if *keepGoing {
			pts, errs := cfg.SweepKeepGoing(powers, *workers)
			for _, pe := range errs {
				fmt.Fprintln(os.Stderr, "cosee: keep-going:", pe)
			}
			failures += len(errs)
			return pts, nil
		}
		return cfg.SweepParallel(powers, *workers)
	}
	// exit joins the ops endpoint, flushes telemetry and terminates with
	// code 4 when -keep-going swallowed failures, 0 on a clean run.
	exit := func() {
		if err := ops.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cosee: closing ops endpoint:", err)
		}
		if err := flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "cosee: keep-going: %d point(s) failed, results are partial\n", failures)
			os.Exit(4)
		}
	}
	configs := []struct {
		name string
		cfg  cosee.Config
	}{
		{"without LHP", cosee.Config{Structure: mat}},
		{"with LHP (horizontal)", cosee.Config{UseLHP: true, Structure: mat}},
		{fmt.Sprintf("with LHP (%.0f° tilt)", *tilt), cosee.Config{UseLHP: true, TiltDeg: *tilt, Structure: mat}},
	}
	if *csv {
		fmt.Printf("power_w")
		for _, c := range configs {
			fmt.Printf(",dT_%s", strings.ReplaceAll(c.name, " ", "_"))
		}
		fmt.Println()
		series := make([][]cosee.Point, len(configs))
		for i, c := range configs {
			pts, err := sweep(c.cfg)
			if err != nil {
				fail(err)
			}
			series[i] = pts
		}
		for row := range powers {
			fmt.Printf("%.1f", powers[row])
			for i := range configs {
				fmt.Printf(",%.3f", series[i][row].DeltaTK)
			}
			fmt.Println()
		}
		exit()
		return
	}
	for _, c := range configs {
		pts, err := sweep(c.cfg)
		if err != nil {
			fail(err)
		}
		s := &report.Series{Name: "Fig. 10 — " + c.name,
			XLabel: "SEB power (W)", YLabel: "Tpcb − Tair (K)"}
		for _, p := range pts {
			s.X = append(s.X, p.PowerW)
			s.Y = append(s.Y, p.DeltaTK)
		}
		fmt.Print(s.String())
	}

	var sum *cosee.Fig10Summary
	if *keepGoing {
		var errs []*robust.PointError
		sum, errs = cosee.RunFig10KeepGoing(mat, *workers, nil)
		for _, pe := range errs {
			fmt.Fprintln(os.Stderr, "cosee: keep-going:", pe)
		}
		failures += len(errs)
	} else if sum, err = cosee.RunFig10Parallel(mat, *workers); err != nil {
		fail(err)
	}
	t := report.NewTable("Headline summary ("+mat.Name+")", "quantity", "value")
	t.AddRow("capability without LHP @ΔT=60K", fmt.Sprintf("%.1f W", sum.CapabilityNoLHP))
	t.AddRow("capability with LHP @ΔT=60K", fmt.Sprintf("%.1f W", sum.CapabilityLHP))
	t.AddRow("capability at tilt", fmt.Sprintf("%.1f W", sum.CapabilityTilt))
	t.AddRow("improvement", fmt.Sprintf("%+.0f%%", sum.ImprovementPct))
	t.AddRow("PCB cooling at 40 W", fmt.Sprintf("%.1f K", sum.CoolingAt40W))
	t.AddRow("LHP power at 100 W SEB", fmt.Sprintf("%.1f W", sum.LHPPowerAt100W))
	fmt.Print(t.String())
	exit()
}
