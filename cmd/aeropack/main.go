// Command aeropack runs the packaging co-design flow (the paper's Fig. 1 /
// Fig. 4 procedure) on a board specification: level-1 cooling-technology
// screen, level-2 finite-volume board model, level-3 component junction
// temperatures, and the parallel mechanical design, ending with the margin
// findings.
//
// Usage:
//
//	aeropack -spec board.json     # run a JSON specification
//	aeropack -demo                # print a ready-to-edit example spec
//	aeropack -spec board.json -doc
//	aeropack -equipment rack.json # multi-board equipment study
//	aeropack -equipment-demo
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"aeropack/internal/compact"
	"aeropack/internal/core"
	"aeropack/internal/obs"
	"aeropack/internal/obs/obshttp"
	"aeropack/internal/report"
	"aeropack/internal/robust"
	"aeropack/internal/units"
)

// specFile is the JSON schema of a design study.
type specFile struct {
	Name        string  `json:"name"`
	LengthMM    float64 `json:"length_mm"`
	WidthMM     float64 `json:"width_mm"`
	ThicknessMM float64 `json:"thickness_mm"`
	Copper      struct {
		Layers   int     `json:"layers"`
		Oz       float64 `json:"oz"`
		Coverage float64 `json:"coverage"`
	} `json:"copper"`
	Cooling      string  `json:"cooling"` // "conduction", "forced-air", "free-convection"
	RailC        float64 `json:"rail_c"`
	ChannelH     float64 `json:"channel_h_w_m2k"`
	ChannelAirC  float64 `json:"channel_air_c"`
	TargetModeHz float64 `json:"target_mode_hz"`
	MassLoad     float64 `json:"mass_load_kg_m2"`
	Components   []struct {
		RefDes  string  `json:"refdes"`
		Package string  `json:"package"`
		PowerW  float64 `json:"power_w"`
		XMM     float64 `json:"x_mm"`
		YMM     float64 `json:"y_mm"`
	} `json:"components"`
	Envelope struct {
		LMM float64 `json:"l_mm"`
		WMM float64 `json:"w_mm"`
		HMM float64 `json:"h_mm"`
	} `json:"envelope"`
}

// equipmentFile is the JSON schema of a multi-board equipment study.
type equipmentFile struct {
	Name       string  `json:"name"`
	InletAirC  float64 `json:"inlet_air_c"`
	FlowDerate float64 `json:"flow_derate"`
	Envelope   struct {
		LMM float64 `json:"l_mm"`
		WMM float64 `json:"w_mm"`
		HMM float64 `json:"h_mm"`
	} `json:"envelope"`
	Boards []specFile `json:"boards"`
}

const demoEquipment = `{
  "name": "demo-mission-computer",
  "inlet_air_c": 40,
  "envelope": {"l_mm": 500, "w_mm": 300, "h_mm": 260},
  "boards": [
    {"name": "cpu-a", "length_mm": 160, "width_mm": 230, "thickness_mm": 2.4,
     "copper": {"layers": 12, "oz": 2, "coverage": 0.7},
     "cooling": "forced-air", "channel_h_w_m2k": 55, "mass_load_kg_m2": 3,
     "components": [
       {"refdes": "U1", "package": "FCBGA-CPU", "power_w": 7, "x_mm": 80, "y_mm": 115},
       {"refdes": "U2", "package": "BGA256", "power_w": 2, "x_mm": 40, "y_mm": 60}
     ]},
    {"name": "io", "length_mm": 160, "width_mm": 230, "thickness_mm": 2.4,
     "copper": {"layers": 12, "oz": 2, "coverage": 0.7},
     "cooling": "forced-air", "channel_h_w_m2k": 55, "mass_load_kg_m2": 3,
     "components": [
       {"refdes": "U1", "package": "QFP208", "power_w": 3, "x_mm": 80, "y_mm": 115}
     ]}
  ]
}
`

const demoSpec = `{
  "name": "demo-processing-module",
  "length_mm": 160, "width_mm": 230, "thickness_mm": 2.4,
  "copper": {"layers": 12, "oz": 2, "coverage": 0.7},
  "cooling": "conduction", "rail_c": 30,
  "target_mode_hz": 0, "mass_load_kg_m2": 3,
  "components": [
    {"refdes": "U1", "package": "FCBGA-CPU", "power_w": 6,   "x_mm": 80,  "y_mm": 115},
    {"refdes": "U2", "package": "BGA256",    "power_w": 2.5, "x_mm": 40,  "y_mm": 60},
    {"refdes": "U3", "package": "QFP208",    "power_w": 2,   "x_mm": 120, "y_mm": 170},
    {"refdes": "Q1", "package": "TO263",     "power_w": 1.5, "x_mm": 40,  "y_mm": 180}
  ],
  "envelope": {"l_mm": 400, "w_mm": 300, "h_mm": 200}
}
`

func main() {
	specPath := flag.String("spec", "", "path to the board specification JSON")
	demo := flag.Bool("demo", false, "print an example specification and exit")
	ambient := flag.Float64("screen-ambient", 71, "worst hot ambient for the level-1 screen, °C")
	doc := flag.Bool("doc", false, "emit the full packaging design document instead of the summary tables")
	keepGoing := flag.Bool("keep-going", false, "survive per-pass failures: errored passes print to stderr and the report keeps the surviving sections; exit code 4 on a partial study")
	eqPath := flag.String("equipment", "", "path to a multi-board equipment JSON")
	eqDemo := flag.Bool("equipment-demo", false, "print an example equipment spec and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the run's spans (chrome://tracing)")
	metricsPath := flag.String("metrics", "", "write an aeropack-metrics/v1 JSON snapshot of the run's counters/gauges/histograms")
	eventsPath := flag.String("events", "", "write an aeropack-events/v1 JSON dump of the flight-recorder ring on exit")
	serveAddr := flag.String("serve", "", "serve the live ops endpoint (/metrics /healthz /events /progress) on this address while the study runs, e.g. :8080")
	flag.Parse()

	if *demo {
		fmt.Print(demoSpec)
		return
	}
	if *eqDemo {
		fmt.Print(demoEquipment)
		return
	}
	flush := obs.Setup(*tracePath, *metricsPath, *eventsPath)
	var ops *obshttp.Ops
	fail := func(code int, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		_ = ops.Close() // best effort on the error path; nil-safe
		if ferr := flush(); ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
		}
		os.Exit(code)
	}
	if *serveAddr != "" {
		var err error
		if ops, err = obshttp.EnableOps(*serveAddr); err != nil {
			fail(1, err)
		}
		fmt.Fprintf(os.Stderr, "aeropack: ops endpoint listening on %s\n", ops.Addr())
	}
	if *eqPath != "" {
		runEquipment(*eqPath, *ambient, fail)
		if err := ops.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "aeropack: closing ops endpoint:", err)
		}
		if err := flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *specPath == "" {
		fail(2, fmt.Errorf("aeropack: provide -spec <file>, -equipment <file>, -demo or -equipment-demo"))
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		fail(1, err)
	}
	var sf specFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		fail(1, fmt.Errorf("aeropack: parsing %s: %w", *specPath, err))
	}
	board, env, err := buildDesign(&sf)
	if err != nil {
		fail(1, err)
	}
	screen := core.DefaultScreen(env)
	screen.AmbientC = *ambient

	var rep *core.Report
	var pointErrs []*robust.PointError
	if *keepGoing {
		rep, pointErrs = core.StudyKeepGoing(board, screen)
		for _, pe := range pointErrs {
			fmt.Fprintln(os.Stderr, "aeropack: keep-going:", pe)
		}
		if rep == nil {
			fail(1, robust.FirstError(pointErrs))
		}
	} else if rep, err = core.Study(board, screen); err != nil {
		fail(1, err)
	}
	// Document dereferences every section, so a partial report falls back
	// to the nil-guarded summary tables.
	if *doc && rep.Level2 != nil && rep.Level3 != nil && rep.Mech != nil {
		fmt.Print(rep.Document())
	} else {
		printReport(rep)
	}
	if len(pointErrs) > 0 {
		fmt.Fprintf(os.Stderr, "aeropack: keep-going: %d pass(es) errored, report is partial\n", len(pointErrs))
		fail(4, nil)
	}
	if !rep.Feasible {
		fail(3, nil)
	}
	if err := ops.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "aeropack: closing ops endpoint:", err)
	}
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func buildDesign(sf *specFile) (*core.BoardDesign, core.Envelope, error) {
	b := &core.BoardDesign{
		Name:         sf.Name,
		LengthM:      sf.LengthMM * 1e-3,
		WidthM:       sf.WidthMM * 1e-3,
		ThicknessM:   sf.ThicknessMM * 1e-3,
		CopperLayers: sf.Copper.Layers,
		CopperOz:     sf.Copper.Oz,
		CopperCover:  sf.Copper.Coverage,
		RailTempC:    sf.RailC,
		ChannelH:     sf.ChannelH,
		ChannelAirC:  sf.ChannelAirC,
		TargetModeHz: sf.TargetModeHz,
		MassLoadKgM2: sf.MassLoad,
	}
	switch sf.Cooling {
	case "conduction", "":
		b.EdgeCooling = core.ConductionCooled
	case "forced-air":
		b.EdgeCooling = core.ForcedAir
	case "free-convection":
		b.EdgeCooling = core.FreeConvection
	default:
		return nil, core.Envelope{}, fmt.Errorf("aeropack: unknown cooling %q", sf.Cooling)
	}
	for _, c := range sf.Components {
		pkg, err := compact.Get(c.Package)
		if err != nil {
			return nil, core.Envelope{}, err
		}
		b.Components = append(b.Components, &compact.Component{
			RefDes: c.RefDes, Pkg: pkg, Power: c.PowerW,
			X: c.XMM * 1e-3, Y: c.YMM * 1e-3,
		})
	}
	env := core.Envelope{L: sf.Envelope.LMM * 1e-3, W: sf.Envelope.WMM * 1e-3, H: sf.Envelope.HMM * 1e-3}
	return b, env, nil
}

func printReport(rep *core.Report) {
	t := report.NewTable("Design study — "+rep.Board.Name, "stage", "result")
	t.AddRow("level 1 (equipment)", fmt.Sprintf("%v: capacity %.0f W (margin %+.0f%%), flux %.1f W/cm² (margin %+.0f%%)",
		rep.Level1.Tech, rep.Level1.MaxPowerW, rep.Level1.PowerMargin*100,
		rep.Level1.MaxFluxWCm2, rep.Level1.FluxMargin*100))
	if rep.Level2 != nil {
		t.AddRow("level 2 (PCB)", fmt.Sprintf("board max %.1f °C, mean %.1f °C",
			rep.Level2.MaxBoardC, rep.Level2.MeanBoardC))
	} else {
		t.AddRow("level 2 (PCB)", "ERROR — see findings")
	}
	if rep.Level3 != nil {
		t.AddRow("level 3 (component)", fmt.Sprintf("worst junction %.1f °C, all pass: %v",
			rep.Level3.WorstC, rep.Level3.AllPass))
	} else {
		t.AddRow("level 3 (component)", "ERROR — see findings")
	}
	if rep.Mech != nil {
		t.AddRow("mechanical", fmt.Sprintf("fundamental %.0f Hz, response %.2f gRMS, fatigue OK: %v",
			rep.Mech.FundamentalHz, rep.Mech.ResponseGRMS, rep.Mech.FatigueOK))
	} else {
		t.AddRow("mechanical", "ERROR — see findings")
	}
	t.AddRow("verdict", fmt.Sprintf("feasible: %v", rep.Feasible))
	fmt.Print(t.String())

	if rep.Level3 != nil && len(rep.Level3.Margins) > 0 {
		t2 := report.NewTable("Junction margins (worst first)", "refdes", "Tj °C", "limit °C", "margin K")
		for _, m := range rep.Level3.Margins {
			t2.AddRow(m.RefDes, fmt.Sprintf("%.1f", units.KToC(m.Tj)),
				fmt.Sprintf("%.1f", units.KToC(m.MaxTj)), fmt.Sprintf("%.1f", m.Margin))
		}
		fmt.Print(t2.String())
	}
	if len(rep.Findings) > 0 {
		fmt.Println("Findings:")
		for _, f := range rep.Findings {
			fmt.Println("  -", f)
		}
	}
}

func runEquipment(path string, ambient float64, fail func(code int, err error)) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail(1, err)
	}
	var ef equipmentFile
	if err := json.Unmarshal(raw, &ef); err != nil {
		fail(1, fmt.Errorf("aeropack: parsing %s: %w", path, err))
	}
	eq := &core.Equipment{
		Name:       ef.Name,
		InletAirC:  ef.InletAirC,
		FlowDerate: ef.FlowDerate,
		Envelope: core.Envelope{
			L: ef.Envelope.LMM * 1e-3, W: ef.Envelope.WMM * 1e-3, H: ef.Envelope.HMM * 1e-3,
		},
	}
	for i := range ef.Boards {
		b, _, err := buildDesign(&ef.Boards[i])
		if err != nil {
			fail(1, err)
		}
		eq.Boards = append(eq.Boards, b)
	}
	screen := core.DefaultScreen(eq.Envelope)
	screen.AmbientC = ambient
	rep, err := core.StudyEquipment(eq, screen)
	if err != nil {
		fail(1, err)
	}
	fmt.Print(rep.Document())
	if !rep.Feasible {
		fail(3, nil)
	}
}
