// Command nanopack prints the NANOPACK virtual-laboratory report: the
// adhesive development results, the product-versus-objective table, the
// HNC bond-line study and the D5470 tester validation.
//
// Usage:
//
//	nanopack [-pressure 2e5] [-shots 60] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"os"

	"aeropack/internal/nanopack"
	"aeropack/internal/report"
)

func main() {
	pressure := flag.Float64("pressure", 2e5, "assembly pressure, Pa")
	shots := flag.Int("shots", 60, "D5470 campaign shots per specimen")
	seed := flag.Int64("seed", 11, "virtual tester noise seed")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	flake, err := nanopack.DesignSilverAdhesive("flake", 6.0)
	if err != nil {
		fail(err)
	}
	sphere, err := nanopack.DesignSilverAdhesive("sphere", 9.5)
	if err != nil {
		fail(err)
	}
	t := report.NewTable("Adhesive development (EMT design + D5470 verification)",
		"product", "filler", "bulk k", "apparent k", "electrical", "shear")
	for _, d := range []*nanopack.AdhesiveDesign{flake, sphere} {
		t.AddRow(d.Name,
			fmt.Sprintf("%.0f%%", d.FillerFraction*100),
			fmt.Sprintf("%.1f W/m·K", d.PredictedK),
			fmt.Sprintf("%.1f W/m·K", d.MeasuredK),
			fmt.Sprintf("%.0e Ω·cm", d.ElectricalOhmCm),
			fmt.Sprintf("%.0f MPa", d.ShearMPa))
	}
	fmt.Print(t.String())

	rows, err := nanopack.ResultsToDate(*pressure)
	if err != nil {
		fail(err)
	}
	obj := nanopack.ProjectObjectives()
	t2 := report.NewTable(fmt.Sprintf("Products vs objectives (k≥%.0f, R<%.0f K·mm²/W, BLT<%.0f µm)",
		obj.ConductivityWmK, obj.ResistanceKmm2W, obj.BondLineUm),
		"product", "k W/m·K", "R K·mm²/W", "BLT µm", "meets k", "meets R", "meets BLT")
	for _, r := range rows {
		t2.AddRow(r.Product, r.KWmK, r.RKmm2W, r.BLTUm, r.MeetsK, r.MeetsR, r.MeetsBLT)
	}
	fmt.Print(t2.String())

	hnc, err := nanopack.EvaluateHNC(*pressure)
	if err != nil {
		fail(err)
	}
	t3 := report.NewTable("HNC surface structuring", "TIM", "BLT reduction")
	for i, m := range hnc.Materials {
		t3.AddRow(m, fmt.Sprintf("%.0f%%", hnc.Reductions[i]*100))
	}
	t3.AddRow("majority > 20%?", fmt.Sprintf("%v", hnc.MajorityHolds))
	fmt.Print(t3.String())

	v, err := nanopack.ValidateTester(*seed, *shots)
	if err != nil {
		fail(err)
	}
	fmt.Print(report.Checks("D5470 tester validation", []report.CheckRow{
		{Quantity: "resistance accuracy", Paper: "±1 K·mm²/W",
			Measured: fmt.Sprintf("±%.2f K·mm²/W", v.MaxAbsErrKmm2W), Pass: v.MeetsAccuracy},
		{Quantity: "thickness accuracy", Paper: "±2 µm",
			Measured: fmt.Sprintf("±%.2f µm", v.BLTStdUm), Pass: v.MeetsThickness},
	}))
}
