// Command aeropackd serves the co-design study engines over HTTP/JSON:
// POST a study request (Fig. 10 sweep, qualification campaign,
// technology map, power sweep or full board study) to /v1/studies and
// read the result synchronously, or submit with "async": true and poll
// the returned job.  Identical request bodies are deduplicated while in
// flight and answered from a content-hash result cache afterwards; a
// bounded admission queue sheds overload with 429 + Retry-After.  The
// obshttp ops routes (/metrics /healthz /events /progress) share the
// same listener.
//
// Usage:
//
//	aeropackd -addr :8080
//	aeropackd -addr :8080 -workers 4 -max-inflight 8 -cache-dir /var/cache/aeropackd
//
// Then:
//
//	curl -s localhost:8080/v1/studies -d '{"kind":"fig10"}'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"aeropack/internal/obs"
	"aeropack/internal/obs/obshttp"
	"aeropack/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	workers := flag.Int("workers", 0, "solver workers per study (<= 0 means GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persist the result cache in this directory (empty = memory only)")
	maxInflight := flag.Int("max-inflight", 4, "studies computed concurrently")
	maxQueue := flag.Int("max-queue", 64, "requests allowed to wait for a slot before 429")
	flag.Parse()

	if err := run(*addr, *workers, *cacheDir, *maxInflight, *maxQueue); err != nil {
		fmt.Fprintln(os.Stderr, "aeropackd:", err)
		os.Exit(1)
	}
}

// run owns the server lifecycle: bind, serve until SIGINT/SIGTERM,
// drain connections, then wait out async jobs.
func run(addr string, workers int, cacheDir string, maxInflight, maxQueue int) error {
	// Install a default registry so the engines' counters (and the
	// serve_* family) land on the mounted /metrics route.
	reg := obs.Default()
	if reg == nil {
		reg = obs.NewRegistry()
		obs.SetDefault(reg)
	}
	srv, err := serve.NewServer(serve.Options{
		Workers:     workers,
		MaxInflight: maxInflight,
		MaxQueue:    maxQueue,
		CacheDir:    cacheDir,
		Registry:    reg,
	})
	if err != nil {
		return err
	}
	httpSrv, err := obshttp.Start(addr, srv)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "aeropackd: listening on %s\n", httpSrv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "aeropackd: shutting down")
	// Listener first (no new jobs can start), then the job drain.
	if err := httpSrv.Close(); err != nil {
		return err
	}
	return srv.Close()
}
