package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestAeropackdSmoke is the end-to-end gate verify.sh runs: build the
// real binary, boot it on a free port, submit a small study both sync
// and async, poll the job to completion, scrape /metrics, and check the
// process exits cleanly on SIGTERM.
func TestAeropackdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "aeropackd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-cache-dir", t.TempDir())
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	started := false
	defer func() {
		if !started {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	// The startup banner carries the resolved :0 address.
	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "aeropackd: listening on "); ok {
			base = "http://" + strings.TrimSpace(addr)
			break
		}
	}
	if base == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("no listening banner on stderr (scan err: %v)", sc.Err())
	}

	// Sync study round-trip.
	body := postJSON(t, base+"/v1/studies", `{"kind": "techmap", "techmap": {"powers_w": [10], "fluxes_w_cm2": [1]}}`, http.StatusOK)
	if !bytes.Contains(body, []byte(`"aeropack-study-response/v1"`)) {
		t.Errorf("sync response missing schema: %s", body)
	}

	// Async round-trip: submit, poll the job, fetch the result.
	ticket := postJSON(t, base+"/v1/studies", `{"kind": "techmap", "async": true, "techmap": {"powers_w": [10], "fluxes_w_cm2": [1]}}`, http.StatusAccepted)
	var tk struct {
		JobURL    string `json:"job_url"`
		ResultURL string `json:"result_url"`
	}
	if err := json.Unmarshal(ticket, &tk); err != nil {
		t.Fatalf("decoding job ticket: %v\n%s", err, ticket)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		jb := getJSON(t, base+tk.JobURL)
		if bytes.Contains(jb, []byte(`"done"`)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", jb)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The async request bytes differ (the "async" flag is part of the
	// document), so request_sha256 differs; everything else must match.
	if res := getJSON(t, base+tk.ResultURL); !bytes.Equal(stripSHA(res), stripSHA(body)) {
		t.Errorf("async result differs from sync body:\nsync:  %s\nasync: %s", body, res)
	}

	// Ops routes share the listener; the counters must show our traffic.
	metrics := getJSON(t, base+"/metrics")
	for _, want := range []string{"serve_requests_total 2", "serve_jobs_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Clean shutdown on SIGTERM.
	started = true
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(stderr)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("aeropackd exited dirty: %v\nstderr: %s", err, rest)
	}
	if !strings.Contains(string(rest), "shutting down") {
		t.Errorf("no shutdown banner on stderr: %s", rest)
	}
}

// stripSHA drops the request_sha256 line so documents for distinct
// request bytes can be compared on their payload.
func stripSHA(body []byte) []byte {
	var out [][]byte
	for _, line := range bytes.Split(body, []byte("\n")) {
		if !bytes.Contains(line, []byte(`"request_sha256"`)) {
			out = append(out, line)
		}
	}
	return bytes.Join(out, []byte("\n"))
}

func postJSON(t *testing.T, url, body string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d\n%s", url, resp.StatusCode, wantStatus, b)
	}
	return b
}

func getJSON(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, b)
	}
	return b
}
