// Package joints models the mechanical fastenings that double as thermal
// paths in avionics packaging: bolted interfaces and the card-retainer
// wedge locks of conduction-cooled modules.  Contact conductance follows
// the Cooper–Mikic–Yovanovich plastic-deformation correlation, with a
// flatness derate for real machined surfaces — the physics under the
// "thermal wedge lock" and "thermal exchanges" boxes of the paper's
// design-procedure figure.
package joints

import (
	"fmt"
	"math"
)

// Surface describes one side of a metallic contact.
type Surface struct {
	K          float64 // thermal conductivity, W/(m·K)
	RoughnessM float64 // RMS roughness σ, m (machined Al: 0.5–2 µm)
	SlopeM     float64 // mean asperity slope m (0.05–0.15 typical)
	HardnessPa float64 // microhardness Hc, Pa (Al alloys ≈ 1 GPa)
}

// DefaultAl6061Surface returns a machined Al6061 face.
func DefaultAl6061Surface() Surface {
	return Surface{K: 167, RoughnessM: 1.0e-6, SlopeM: 0.10, HardnessPa: 1.0e9}
}

// ContactConductance returns the Cooper–Mikic–Yovanovich contact
// conductance h_c (W/m²K) between two surfaces at apparent contact
// pressure p (Pa):
//
//	h = 1.25·k_s·(m/σ)·(p/Hc)^0.95
//
// with harmonic-mean conductivity k_s and combined roughness/slope.
// flatness (0..1] derates for large-scale waviness; 1 = optically flat.
func ContactConductance(a, b Surface, p, flatness float64) (float64, error) {
	if p <= 0 {
		return 0, fmt.Errorf("joints: contact pressure must be positive")
	}
	if flatness <= 0 || flatness > 1 {
		return 0, fmt.Errorf("joints: flatness must be in (0,1]")
	}
	for _, s := range []Surface{a, b} {
		if s.K <= 0 || s.RoughnessM <= 0 || s.SlopeM <= 0 || s.HardnessPa <= 0 {
			return 0, fmt.Errorf("joints: invalid surface parameters")
		}
	}
	ks := 2 * a.K * b.K / (a.K + b.K)
	sigma := math.Hypot(a.RoughnessM, b.RoughnessM)
	m := math.Hypot(a.SlopeM, b.SlopeM)
	hc := math.Min(a.HardnessPa, b.HardnessPa)
	pr := p / hc
	if pr > 1 {
		pr = 1 // fully yielded contact
	}
	return 1.25 * ks * (m / sigma) * math.Pow(pr, 0.95) * flatness, nil
}

// BoltClampForce returns the preload of a bolt torqued to T (N·m) with
// nut factor kNut (≈0.2 dry) and nominal diameter d (m): F = T/(k·d).
func BoltClampForce(torque, kNut, d float64) (float64, error) {
	if torque <= 0 || kNut <= 0 || d <= 0 {
		return 0, fmt.Errorf("joints: invalid bolt parameters")
	}
	return torque / (kNut * d), nil
}

// BoltedJoint is a bolted thermal interface.
type BoltedJoint struct {
	SurfaceA, SurfaceB Surface
	Bolts              int
	TorqueNm           float64
	NutFactor          float64 // 0 → 0.2
	BoltDiaM           float64
	// ContactArea is the effective pressure-cone footprint, m².
	ContactArea float64
	Flatness    float64 // 0 → 0.3 (typical machined chassis faces)
}

// Conductance returns the joint's total thermal conductance, W/K.
func (j *BoltedJoint) Conductance() (float64, error) {
	if j.Bolts < 1 || j.ContactArea <= 0 {
		return 0, fmt.Errorf("joints: joint needs bolts and contact area")
	}
	kn := j.NutFactor
	if kn == 0 {
		kn = 0.2
	}
	fl := j.Flatness
	if fl == 0 {
		fl = 0.3
	}
	f, err := BoltClampForce(j.TorqueNm, kn, j.BoltDiaM)
	if err != nil {
		return 0, err
	}
	p := float64(j.Bolts) * f / j.ContactArea
	h, err := ContactConductance(j.SurfaceA, j.SurfaceB, p, fl)
	if err != nil {
		return 0, err
	}
	return h * j.ContactArea, nil
}

// WedgeLock is a five-segment card retainer clamping a conduction-cooled
// module's edge into its rail — the paper's "thermal wedge lock".
type WedgeLock struct {
	LengthM   float64 // clamped edge length
	WidthM    float64 // rail land width
	TorqueNm  float64 // actuation screw torque
	ScrewDiaM float64 // actuation screw diameter
	WedgeGain float64 // axial→normal force multiplication (0 → 2.5)
	Surfaces  [2]Surface
	Flatness  float64 // 0 → 0.08 (segmented, wavy clamp faces)
}

// Conductance returns the lock's edge conductance, W/K.
func (w *WedgeLock) Conductance() (float64, error) {
	if w.LengthM <= 0 || w.WidthM <= 0 {
		return 0, fmt.Errorf("joints: wedge lock needs a clamped strip")
	}
	gain := w.WedgeGain
	if gain == 0 {
		gain = 2.5
	}
	fl := w.Flatness
	if fl == 0 {
		fl = 0.08
	}
	f, err := BoltClampForce(w.TorqueNm, 0.2, w.ScrewDiaM)
	if err != nil {
		return 0, err
	}
	area := w.LengthM * w.WidthM
	p := gain * f / area
	a, b := w.Surfaces[0], w.Surfaces[1]
	if a.K == 0 {
		a = DefaultAl6061Surface()
	}
	if b.K == 0 {
		b = DefaultAl6061Surface()
	}
	h, err := ContactConductance(a, b, p, fl)
	if err != nil {
		return 0, err
	}
	return h * area, nil
}

// DefaultWedgeLock returns the 6U-class retainer delivering the 2–5 W/K
// per edge the level-1 conduction-cooled capacity screen assumes.
func DefaultWedgeLock() *WedgeLock {
	return &WedgeLock{
		LengthM:   0.15,
		WidthM:    5e-3,
		TorqueNm:  0.6,
		ScrewDiaM: 4e-3,
	}
}
