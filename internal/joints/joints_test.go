package joints

import (
	"testing"

	"aeropack/internal/units"
)

func TestContactConductanceMagnitude(t *testing.T) {
	// Flat machined Al-Al at 1 MPa: CMY gives the classic 10⁴–10⁵ W/m²K.
	a := DefaultAl6061Surface()
	h, err := ContactConductance(a, a, 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h < 1e4 || h > 1e5 {
		t.Errorf("CMY h = %v W/m²K, want 1e4–1e5", h)
	}
}

func TestContactConductanceTrends(t *testing.T) {
	a := DefaultAl6061Surface()
	// Monotone in pressure.
	h1, _ := ContactConductance(a, a, 0.5e6, 1)
	h2, _ := ContactConductance(a, a, 2e6, 1)
	if h2 <= h1 {
		t.Error("conductance must grow with pressure")
	}
	// Rougher surfaces conduct worse.
	rough := a
	rough.RoughnessM = 4e-6
	hr, _ := ContactConductance(a, rough, 1e6, 1)
	hs, _ := ContactConductance(a, a, 1e6, 1)
	if hr >= hs {
		t.Error("roughness must hurt conductance")
	}
	// Dissimilar pair limited by the softer/worse conductor.
	steel := Surface{K: 16, RoughnessM: 1e-6, SlopeM: 0.1, HardnessPa: 2e9}
	hd, _ := ContactConductance(a, steel, 1e6, 1)
	if hd >= hs {
		t.Error("Al-steel should trail Al-Al")
	}
	// Pressure saturation at full yield: no blow-up beyond Hc.
	hy, err := ContactConductance(a, a, 5e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	hyRef, _ := ContactConductance(a, a, 1e9, 1)
	if !units.ApproxEqual(hy, hyRef, 1e-9) {
		t.Error("beyond-yield pressure should clamp")
	}
}

func TestContactConductanceValidation(t *testing.T) {
	a := DefaultAl6061Surface()
	if _, err := ContactConductance(a, a, -1, 1); err == nil {
		t.Error("negative pressure should error")
	}
	if _, err := ContactConductance(a, a, 1e6, 0); err == nil {
		t.Error("zero flatness should error")
	}
	if _, err := ContactConductance(a, a, 1e6, 2); err == nil {
		t.Error("flatness >1 should error")
	}
	bad := a
	bad.RoughnessM = 0
	if _, err := ContactConductance(a, bad, 1e6, 1); err == nil {
		t.Error("invalid surface should error")
	}
}

func TestBoltClampForce(t *testing.T) {
	// M4 at 1.2 N·m dry: F = 1.2/(0.2·0.004) = 1500 N.
	f, err := BoltClampForce(1.2, 0.2, 4e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(f, 1500, 1e-9) {
		t.Errorf("clamp force = %v", f)
	}
	if _, err := BoltClampForce(-1, 0.2, 4e-3); err == nil {
		t.Error("bad torque should error")
	}
}

func TestBoltedJointConductance(t *testing.T) {
	j := &BoltedJoint{
		SurfaceA: DefaultAl6061Surface(), SurfaceB: DefaultAl6061Surface(),
		Bolts: 4, TorqueNm: 1.2, BoltDiaM: 4e-3, ContactArea: 4e-4,
	}
	g, err := j.Conductance()
	if err != nil {
		t.Fatal(err)
	}
	// A four-bolt chassis joint lands in the tens of W/K.
	if g < 5 || g > 200 {
		t.Errorf("bolted joint G = %v W/K implausible", g)
	}
	// More torque → better joint.
	j2 := *j
	j2.TorqueNm = 2.4
	g2, _ := j2.Conductance()
	if g2 <= g {
		t.Error("torque should improve the joint")
	}
	j3 := *j
	j3.Bolts = 0
	if _, err := j3.Conductance(); err == nil {
		t.Error("boltless joint should error")
	}
}

func TestWedgeLockClass(t *testing.T) {
	// The handbook class for 6U wedge locks: 2–5 W/K per edge — the
	// number the core level-1 conduction screen assumes.
	w := DefaultWedgeLock()
	g, err := w.Conductance()
	if err != nil {
		t.Fatal(err)
	}
	if g < 1.5 || g > 6 {
		t.Errorf("wedge lock G = %v W/K, want the 2–5 class", g)
	}
	// Torque trend.
	w2 := *w
	w2.TorqueNm = 1.2
	g2, _ := w2.Conductance()
	if g2 <= g {
		t.Error("more torque should improve the lock")
	}
	// Resistance per lock: 0.2–0.5 K/W — consistent with the 15 K edge
	// budget at ~20 W/edge the level-2 model books.
	r := 1 / g
	if r < 0.15 || r > 0.7 {
		t.Errorf("per-lock resistance %v K/W outside practice", r)
	}
	bad := *w
	bad.LengthM = 0
	if _, err := bad.Conductance(); err == nil {
		t.Error("missing strip should error")
	}
	bad2 := *w
	bad2.TorqueNm = -1
	if _, err := bad2.Conductance(); err == nil {
		t.Error("bad torque should error")
	}
}
