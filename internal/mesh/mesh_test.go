package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	g, err := Uniform(4, 3, 2, 0.4, 0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 24 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	if !approx(g.DX(0), 0.1) || !approx(g.DY(0), 0.1) || !approx(g.DZ(0), 0.1) {
		t.Errorf("cell sizes: %v %v %v", g.DX(0), g.DY(0), g.DZ(0))
	}
	if !approx(g.TotalVolume(), 0.4*0.3*0.2) {
		t.Errorf("TotalVolume = %v", g.TotalVolume())
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12*(1+math.Abs(b)) }

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(0, 1, 1, 1, 1, 1); err == nil {
		t.Error("expected error for zero cells")
	}
	if _, err := Uniform(1, 1, 1, -1, 1, 1); err == nil {
		t.Error("expected error for negative extent")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges([]float64{0, 1, 3}, []float64{0, 2}, []float64{0, 0.5, 0.75, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Nx != 2 || g.Ny != 1 || g.Nz != 3 {
		t.Errorf("dims %d %d %d", g.Nx, g.Ny, g.Nz)
	}
	if !approx(g.DX(1), 2) || !approx(g.DZ(2), 0.25) {
		t.Error("non-uniform spacing wrong")
	}
	if _, err := FromEdges([]float64{0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("expected error for short edges")
	}
	if _, err := FromEdges([]float64{0, 0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("expected error for non-increasing edges")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g, _ := Uniform(5, 4, 3, 1, 1, 1)
	f := func(raw uint32) bool {
		idx := int(raw) % g.NumCells()
		i, j, k := g.Coords(idx)
		return g.InBounds(i, j, k) && g.Index(i, j, k) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInBounds(t *testing.T) {
	g, _ := Uniform(2, 2, 2, 1, 1, 1)
	if g.InBounds(-1, 0, 0) || g.InBounds(2, 0, 0) || g.InBounds(0, 0, 2) {
		t.Error("out-of-range indices reported in bounds")
	}
}

func TestCellCenterAndVolume(t *testing.T) {
	g, _ := Uniform(2, 2, 2, 2, 2, 2)
	x, y, z := g.CellCenter(0, 0, 0)
	if !approx(x, 0.5) || !approx(y, 0.5) || !approx(z, 0.5) {
		t.Errorf("center %v %v %v", x, y, z)
	}
	if !approx(g.CellVolume(1, 1, 1), 1) {
		t.Errorf("volume %v", g.CellVolume(1, 1, 1))
	}
}

func TestVolumeSum(t *testing.T) {
	// Sum of cell volumes equals total volume on non-uniform grids.
	g, _ := FromEdges(
		GradedEdges(0.3, 7, 1.4),
		GradedEdges(0.2, 5, 0.7),
		[]float64{0, 0.001, 0.01, 0.1},
	)
	sum := 0.0
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				sum += g.CellVolume(i, j, k)
			}
		}
	}
	if !approx(sum, g.TotalVolume()) {
		t.Errorf("cell volume sum %v vs total %v", sum, g.TotalVolume())
	}
}

func TestLocateBoxAndPaint(t *testing.T) {
	g, _ := Uniform(10, 10, 1, 1, 1, 0.01)
	// Paint a central region: centroids 0.25,0.35,…,0.75 qualify in each
	// direction (closed-interval centroid test) → 6×6 cells.
	n := g.PaintRegion(0.25, 0.75, 0.25, 0.75, 0, 0.01, 3)
	if n != 36 {
		t.Errorf("painted %d cells, want 36", n)
	}
	count := 0
	for _, m := range g.MatIdx {
		if m == 3 {
			count++
		}
	}
	if count != 36 {
		t.Errorf("MatIdx has %d painted cells", count)
	}
	// Half-open style selection avoiding centroid ties.
	if n := g.PaintRegion(0.2, 0.7, 0.2, 0.7, 0, 0.01, 4); n != 25 {
		t.Errorf("tie-free selection painted %d cells, want 25", n)
	}
	// Miss the grid entirely.
	if n := g.PaintRegion(5, 6, 5, 6, 0, 1, 9); n != 0 {
		t.Errorf("painting outside grid painted %d cells", n)
	}
}

func TestBoxEmpty(t *testing.T) {
	var b Box
	if !b.Empty() || b.NumCells() != 0 {
		t.Error("zero box should be empty")
	}
	b = Box{I0: 0, I1: 2, J0: 0, J1: 3, K0: 0, K1: 4}
	if b.Empty() || b.NumCells() != 24 {
		t.Error("box counting broken")
	}
}

func TestFaceAreas(t *testing.T) {
	g, _ := Uniform(2, 3, 4, 0.2, 0.3, 0.4)
	if !approx(g.TotalFaceArea(XMin), 0.3*0.4) {
		t.Errorf("x face area %v", g.TotalFaceArea(XMin))
	}
	if !approx(g.TotalFaceArea(YMax), 0.2*0.4) {
		t.Errorf("y face area %v", g.TotalFaceArea(YMax))
	}
	if !approx(g.TotalFaceArea(ZMin), 0.2*0.3) {
		t.Errorf("z face area %v", g.TotalFaceArea(ZMin))
	}
	// Per-cell face areas on each face must sum to the total.
	for f := XMin; f < NumFaces; f++ {
		sum := 0.0
		g.BoundaryCells(f, func(i, j, k int) {
			sum += g.FaceArea(f, i, j, k)
		})
		if !approx(sum, g.TotalFaceArea(f)) {
			t.Errorf("face %v: cell areas sum %v vs total %v", f, sum, g.TotalFaceArea(f))
		}
	}
}

func TestBoundaryCellCounts(t *testing.T) {
	g, _ := Uniform(3, 4, 5, 1, 1, 1)
	counts := map[Face]int{
		XMin: 4 * 5, XMax: 4 * 5,
		YMin: 3 * 5, YMax: 3 * 5,
		ZMin: 3 * 4, ZMax: 3 * 4,
	}
	for f, want := range counts {
		got := 0
		g.BoundaryCells(f, func(i, j, k int) { got++ })
		if got != want {
			t.Errorf("face %v: %d cells, want %d", f, got, want)
		}
	}
}

func TestFaceString(t *testing.T) {
	names := map[Face]string{XMin: "x-", XMax: "x+", YMin: "y-", YMax: "y+", ZMin: "z-", ZMax: "z+"}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("Face %d string %q", f, f.String())
		}
	}
	if Face(99).String() != "Face(99)" {
		t.Error("unknown face string")
	}
}

func TestGradedEdges(t *testing.T) {
	e := GradedEdges(1.0, 8, 1.5)
	if len(e) != 9 || e[0] != 0 || !approx(e[8], 1.0) {
		t.Fatalf("edges %v", e)
	}
	// Strictly increasing, widths growing by ratio 1.5.
	for i := 1; i < len(e); i++ {
		if e[i] <= e[i-1] {
			t.Fatal("edges not increasing")
		}
	}
	w0 := e[1] - e[0]
	w1 := e[2] - e[1]
	if !approx(w1/w0, 1.5) {
		t.Errorf("growth ratio %v", w1/w0)
	}
	// Degenerate parameters fall back safely.
	e = GradedEdges(1, 0, -1)
	if len(e) != 2 || !approx(e[1], 1) {
		t.Errorf("degenerate edges %v", e)
	}
}

func TestGradedEdgesProperty(t *testing.T) {
	// Property (testing/quick): for any sane (l, n, ratio) the edges span
	// exactly [0, l], strictly increasing.
	f := func(rawL, rawRatio float64, rawN uint8) bool {
		if math.IsNaN(rawL) || math.IsNaN(rawRatio) {
			return true
		}
		l := 0.01 + math.Abs(math.Mod(rawL, 10))
		// Keep ratio^n within float precision of the running sum — the
		// refinement range actually used for boundary-layer grading.
		ratio := 0.5 + math.Abs(math.Mod(rawRatio, 1.5))
		n := int(rawN%20) + 1
		e := GradedEdges(l, n, ratio)
		if len(e) != n+1 || e[0] != 0 {
			return false
		}
		for i := 1; i < len(e); i++ {
			if e[i] <= e[i-1] {
				return false
			}
		}
		return math.Abs(e[n]-l) < 1e-12*l+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
