// Package mesh provides the structured Cartesian grids used by aeropack's
// finite-volume thermal solver.  A Grid is a tensor-product mesh with
// (possibly non-uniform) spacing in each direction; every cell carries a
// material index so heterogeneous packaging stacks (die / TIM / lid /
// heatsink, or PCB / wedge-lock / chassis) are described by painting boxes
// of cells.
package mesh

import (
	"fmt"
	"math"
)

// Grid is a structured Cartesian mesh.  Cell (i,j,k) spans
// [XEdges[i], XEdges[i+1]] × [YEdges[j], YEdges[j+1]] × [ZEdges[k], ZEdges[k+1]].
type Grid struct {
	Nx, Ny, Nz int
	XEdges     []float64 // len Nx+1, strictly increasing, metres
	YEdges     []float64 // len Ny+1
	ZEdges     []float64 // len Nz+1
	// MatIdx assigns a material index to every cell (len Nx*Ny*Nz); the
	// meaning of indices is owned by the caller (thermal.Model keeps the
	// material table).
	MatIdx []int
}

// Uniform builds a uniform grid over the box [0,lx]×[0,ly]×[0,lz] with
// nx×ny×nz cells, all tagged with material 0.
func Uniform(nx, ny, nz int, lx, ly, lz float64) (*Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("mesh: cell counts must be ≥1, got %d×%d×%d", nx, ny, nz)
	}
	if lx <= 0 || ly <= 0 || lz <= 0 {
		return nil, fmt.Errorf("mesh: box dimensions must be positive, got %g×%g×%g", lx, ly, lz)
	}
	g := &Grid{
		Nx: nx, Ny: ny, Nz: nz,
		XEdges: linspace(0, lx, nx+1),
		YEdges: linspace(0, ly, ny+1),
		ZEdges: linspace(0, lz, nz+1),
		MatIdx: make([]int, nx*ny*nz),
	}
	return g, nil
}

// FromEdges builds a grid from explicit edge coordinate arrays.
func FromEdges(x, y, z []float64) (*Grid, error) {
	for _, e := range [][]float64{x, y, z} {
		if len(e) < 2 {
			return nil, fmt.Errorf("mesh: each edge array needs ≥2 entries")
		}
		for i := 1; i < len(e); i++ {
			if e[i] <= e[i-1] {
				return nil, fmt.Errorf("mesh: edge coordinates must be strictly increasing")
			}
		}
	}
	g := &Grid{
		Nx: len(x) - 1, Ny: len(y) - 1, Nz: len(z) - 1,
		XEdges: append([]float64(nil), x...),
		YEdges: append([]float64(nil), y...),
		ZEdges: append([]float64(nil), z...),
	}
	g.MatIdx = make([]int, g.Nx*g.Ny*g.Nz)
	return g, nil
}

func linspace(a, b float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	out[n-1] = b
	return out
}

// NumCells returns the total cell count.
func (g *Grid) NumCells() int { return g.Nx * g.Ny * g.Nz }

// Index linearises (i,j,k) with i fastest.
func (g *Grid) Index(i, j, k int) int {
	return i + g.Nx*(j+g.Ny*k)
}

// Coords inverts Index.
func (g *Grid) Coords(idx int) (i, j, k int) {
	i = idx % g.Nx
	j = (idx / g.Nx) % g.Ny
	k = idx / (g.Nx * g.Ny)
	return
}

// InBounds reports whether (i,j,k) addresses a valid cell.
func (g *Grid) InBounds(i, j, k int) bool {
	return i >= 0 && i < g.Nx && j >= 0 && j < g.Ny && k >= 0 && k < g.Nz
}

// DX returns the x-extent of column i.
func (g *Grid) DX(i int) float64 { return g.XEdges[i+1] - g.XEdges[i] }

// DY returns the y-extent of row j.
func (g *Grid) DY(j int) float64 { return g.YEdges[j+1] - g.YEdges[j] }

// DZ returns the z-extent of layer k.
func (g *Grid) DZ(k int) float64 { return g.ZEdges[k+1] - g.ZEdges[k] }

// CellVolume returns the volume of cell (i,j,k) in m³.
func (g *Grid) CellVolume(i, j, k int) float64 {
	return g.DX(i) * g.DY(j) * g.DZ(k)
}

// CellCenter returns the centroid of cell (i,j,k).
func (g *Grid) CellCenter(i, j, k int) (x, y, z float64) {
	return 0.5 * (g.XEdges[i] + g.XEdges[i+1]),
		0.5 * (g.YEdges[j] + g.YEdges[j+1]),
		0.5 * (g.ZEdges[k] + g.ZEdges[k+1])
}

// TotalVolume returns the mesh volume.
func (g *Grid) TotalVolume() float64 {
	lx := g.XEdges[g.Nx] - g.XEdges[0]
	ly := g.YEdges[g.Ny] - g.YEdges[0]
	lz := g.ZEdges[g.Nz] - g.ZEdges[0]
	return lx * ly * lz
}

// Box selects the half-open index ranges covering the physical box
// [x0,x1]×[y0,y1]×[z0,z1], snapping to the nearest cell boundaries.
type Box struct {
	I0, I1, J0, J1, K0, K1 int // half-open: I0 ≤ i < I1
}

// LocateBox returns the index Box whose cells have centroids inside the
// given physical box.  An empty selection is valid (I0==I1 etc.).
func (g *Grid) LocateBox(x0, x1, y0, y1, z0, z1 float64) Box {
	find := func(edges []float64, n int, lo, hi float64) (int, int) {
		a, b := n, 0
		for c := 0; c < n; c++ {
			mid := 0.5 * (edges[c] + edges[c+1])
			if mid >= lo && mid <= hi {
				if c < a {
					a = c
				}
				if c+1 > b {
					b = c + 1
				}
			}
		}
		if a > b {
			return 0, 0
		}
		return a, b
	}
	var bx Box
	bx.I0, bx.I1 = find(g.XEdges, g.Nx, x0, x1)
	bx.J0, bx.J1 = find(g.YEdges, g.Ny, y0, y1)
	bx.K0, bx.K1 = find(g.ZEdges, g.Nz, z0, z1)
	return bx
}

// Empty reports whether the box selects no cells.
func (b Box) Empty() bool {
	return b.I0 >= b.I1 || b.J0 >= b.J1 || b.K0 >= b.K1
}

// NumCells returns the number of cells inside the box.
func (b Box) NumCells() int {
	if b.Empty() {
		return 0
	}
	return (b.I1 - b.I0) * (b.J1 - b.J0) * (b.K1 - b.K0)
}

// Paint assigns material index mat to every cell inside the box.
func (g *Grid) Paint(b Box, mat int) {
	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				g.MatIdx[g.Index(i, j, k)] = mat
			}
		}
	}
}

// PaintRegion is LocateBox followed by Paint; it returns the number of
// cells painted so callers can detect a selection that missed the mesh.
func (g *Grid) PaintRegion(x0, x1, y0, y1, z0, z1 float64, mat int) int {
	b := g.LocateBox(x0, x1, y0, y1, z0, z1)
	g.Paint(b, mat)
	return b.NumCells()
}

// Face identifies one of the six outer boundary faces of the grid.
type Face int

// Boundary faces in ±x, ±y, ±z order.
const (
	XMin Face = iota
	XMax
	YMin
	YMax
	ZMin
	ZMax
	NumFaces
)

// String returns the face name.
func (f Face) String() string {
	switch f {
	case XMin:
		return "x-"
	case XMax:
		return "x+"
	case YMin:
		return "y-"
	case YMax:
		return "y+"
	case ZMin:
		return "z-"
	case ZMax:
		return "z+"
	}
	return fmt.Sprintf("Face(%d)", int(f))
}

// FaceArea returns the area of the boundary face of cell (i,j,k) lying on
// grid face f.
func (g *Grid) FaceArea(f Face, i, j, k int) float64 {
	switch f {
	case XMin, XMax:
		return g.DY(j) * g.DZ(k)
	case YMin, YMax:
		return g.DX(i) * g.DZ(k)
	default:
		return g.DX(i) * g.DY(j)
	}
}

// TotalFaceArea returns the full area of boundary face f.
func (g *Grid) TotalFaceArea(f Face) float64 {
	lx := g.XEdges[g.Nx] - g.XEdges[0]
	ly := g.YEdges[g.Ny] - g.YEdges[0]
	lz := g.ZEdges[g.Nz] - g.ZEdges[0]
	switch f {
	case XMin, XMax:
		return ly * lz
	case YMin, YMax:
		return lx * lz
	default:
		return lx * ly
	}
}

// BoundaryCells invokes fn for every cell adjacent to face f.
func (g *Grid) BoundaryCells(f Face, fn func(i, j, k int)) {
	switch f {
	case XMin, XMax:
		i := 0
		if f == XMax {
			i = g.Nx - 1
		}
		for k := 0; k < g.Nz; k++ {
			for j := 0; j < g.Ny; j++ {
				fn(i, j, k)
			}
		}
	case YMin, YMax:
		j := 0
		if f == YMax {
			j = g.Ny - 1
		}
		for k := 0; k < g.Nz; k++ {
			for i := 0; i < g.Nx; i++ {
				fn(i, j, k)
			}
		}
	default:
		k := 0
		if f == ZMax {
			k = g.Nz - 1
		}
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				fn(i, j, k)
			}
		}
	}
}

// GradedEdges generates n+1 edge coordinates over [0,l] geometrically
// refined toward the start (ratio < 1) or end (ratio > 1); ratio 1 gives a
// uniform spacing.  Useful for resolving thin TIM layers and boundary
// layers without exploding the cell count.
func GradedEdges(l float64, n int, ratio float64) []float64 {
	if n < 1 {
		n = 1
	}
	if ratio <= 0 {
		ratio = 1
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(ratio, float64(i))
		sum += w[i]
	}
	edges := make([]float64, n+1)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += w[i] / sum * l
		edges[i+1] = acc
	}
	edges[n] = l
	return edges
}
