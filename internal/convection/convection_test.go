package convection

import (
	"math"
	"testing"

	"aeropack/internal/materials"
	"aeropack/internal/units"
)

func TestNaturalVerticalPlateHandbook(t *testing.T) {
	// Classic textbook case: 0.25 m vertical plate at 70 °C in 25 °C air
	// gives h ≈ 4–6 W/m²K.
	h := NaturalVerticalPlate(0.25, units.CToK(70), units.CToK(25))
	if h < 3.5 || h > 7 {
		t.Errorf("vertical plate h = %v, want 4–6", h)
	}
}

func TestNaturalPlateOrientationOrdering(t *testing.T) {
	// Hot surface: facing up convects best, vertical next, facing down worst.
	L := 0.1
	Ts, Ta := units.CToK(80), units.CToK(20)
	up := NaturalHorizontalPlateUp(L, Ts, Ta)
	vert := NaturalVerticalPlate(L, Ts, Ta)
	down := NaturalHorizontalPlateDown(L, Ts, Ta)
	if !(up > down && vert > down) {
		t.Errorf("ordering broken: up=%v vert=%v down=%v", up, vert, down)
	}
}

func TestNaturalConvectionMonotoneInDT(t *testing.T) {
	prev := 0.0
	for dt := 5.0; dt <= 80; dt += 5 {
		h := NaturalVerticalPlate(0.2, units.CToK(20+dt), units.CToK(20))
		if h <= prev {
			t.Fatalf("h not increasing with ΔT at %v", dt)
		}
		prev = h
	}
}

func TestNaturalDegenerate(t *testing.T) {
	if NaturalVerticalPlate(0, 350, 300) != 0 {
		t.Error("zero length should give 0")
	}
	if NaturalVerticalPlate(0.1, 300, 300) != 0 {
		t.Error("zero ΔT should give 0")
	}
	if NaturalHorizontalPlateUp(-1, 350, 300) != 0 || NaturalHorizontalPlateDown(0, 350, 300) != 0 {
		t.Error("degenerate horizontal cases should give 0")
	}
}

func TestForcedFlatPlateHandbook(t *testing.T) {
	// Air at 3 m/s over a 0.1 m component at small ΔT: laminar,
	// h ≈ 15–25 W/m²K.
	h := ForcedFlatPlate(0.1, 3, units.CToK(60), units.CToK(40))
	if h < 12 || h > 30 {
		t.Errorf("forced plate h = %v, want 15–25", h)
	}
	// Turbulent branch at high velocity on a longer plate (Re ≈ 7×10⁵):
	// mixed-boundary-layer correlation gives h ≈ 20 W/m²K.
	hTurb := ForcedFlatPlate(1.0, 12, units.CToK(60), units.CToK(40))
	if hTurb < 17 || hTurb > 26 {
		t.Errorf("turbulent h = %v, want ≈20", hTurb)
	}
	if ForcedFlatPlate(0, 3, 350, 300) != 0 || ForcedFlatPlate(0.1, 0, 350, 300) != 0 {
		t.Error("degenerate forced cases should give 0")
	}
}

func TestForcedMonotoneInVelocity(t *testing.T) {
	prev := 0.0
	for v := 0.5; v <= 30; v *= 1.5 {
		h := ForcedFlatPlate(0.15, v, units.CToK(70), units.CToK(30))
		if h <= prev {
			t.Fatalf("h not increasing with V at %v (h=%v prev=%v)", v, h, prev)
		}
		prev = h
	}
}

func TestHydraulicDiameter(t *testing.T) {
	// Square duct: Dh = side.
	if got := HydraulicDiameter(0.02, 0.02); !units.ApproxEqual(got, 0.02, 1e-12) {
		t.Errorf("square duct Dh = %v", got)
	}
	// Wide channel limit: Dh → 2·gap.
	if got := HydraulicDiameter(0.005, 10); !units.ApproxEqual(got, 0.01, 0.01) {
		t.Errorf("parallel plate Dh = %v", got)
	}
	if HydraulicDiameter(0, 1) != 0 {
		t.Error("degenerate Dh should be 0")
	}
}

func TestDuctLaminarTurbulent(t *testing.T) {
	// Card channel: 5 mm gap, low velocity → laminar.
	lam, err := Duct(0.01, 0.2, 1.0, units.CToK(40))
	if err != nil {
		t.Fatal(err)
	}
	if lam.Re >= 2300 {
		t.Errorf("expected laminar, Re=%v", lam.Re)
	}
	if !units.ApproxEqual(lam.Nu, 8.23, 1e-9) {
		t.Errorf("laminar Nu = %v", lam.Nu)
	}
	// High velocity → turbulent, h larger.
	turb, err := Duct(0.01, 0.2, 15, units.CToK(40))
	if err != nil {
		t.Fatal(err)
	}
	if turb.Re < 2300 {
		t.Errorf("expected turbulent, Re=%v", turb.Re)
	}
	if turb.H <= lam.H {
		t.Error("turbulent h must exceed laminar h")
	}
	if turb.DP <= lam.DP {
		t.Error("turbulent pressure drop must exceed laminar")
	}
	if _, err := Duct(0, 1, 1, 300); err == nil {
		t.Error("bad duct params should error")
	}
}

func TestFanCurveValidation(t *testing.T) {
	if _, err := NewFanCurve([]float64{0}, []float64{100}); err == nil {
		t.Error("short curve should error")
	}
	if _, err := NewFanCurve([]float64{0, 0}, []float64{100, 50}); err == nil {
		t.Error("non-increasing flow should error")
	}
	if _, err := NewFanCurve([]float64{0, 1}, []float64{50, 100}); err == nil {
		t.Error("increasing pressure should error")
	}
}

func TestFanOperatingPoint(t *testing.T) {
	fan, err := NewFanCurve(
		[]float64{0, 0.01, 0.02, 0.03, 0.04},
		[]float64{120, 110, 85, 45, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Interpolation checks.
	if got := fan.PressureAt(0); got != 120 {
		t.Errorf("shutoff pressure = %v", got)
	}
	if got := fan.PressureAt(0.015); !units.ApproxEqual(got, 97.5, 1e-9) {
		t.Errorf("interpolated pressure = %v", got)
	}
	if got := fan.PressureAt(1); got != 0 {
		t.Errorf("beyond free delivery = %v", got)
	}
	// Operating point with a quadratic system curve.
	q, dp, err := fan.OperatingPoint(1e5)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(dp, 1e5*q*q, 1e-6) {
		t.Error("operating point not on system curve")
	}
	if !units.ApproxEqual(dp, fan.PressureAt(q), 1e-3) {
		t.Error("operating point not on fan curve")
	}
	if q <= 0 || q >= 0.04 {
		t.Errorf("operating flow %v out of plausible band", q)
	}
	// Unrestrictive system: free delivery.
	qf, _, err := fan.OperatingPoint(0)
	if err != nil || !units.ApproxEqual(qf, 0.04, 1e-9) {
		t.Errorf("free delivery flow = %v (%v)", qf, err)
	}
	if _, _, err := fan.OperatingPoint(-1); err == nil {
		t.Error("negative system coefficient should error")
	}
}

func TestARINCMassFlow(t *testing.T) {
	// 1 kW equipment → 220 kg/h = 0.0611 kg/s.
	got := ARINCMassFlow(1000)
	if !units.ApproxEqual(got, 220.0/3600, 1e-9) {
		t.Errorf("ARINC flow = %v", got)
	}
	// Scaling is linear in power.
	if !units.ApproxEqual(ARINCMassFlow(500), got/2, 1e-9) {
		t.Error("ARINC flow should scale with power")
	}
}

func TestAirTempRise(t *testing.T) {
	// 1 kW into ARINC 600 flow: ΔT = P/(ṁcp) ≈ 1000/(0.0611·1006) ≈ 16 K —
	// the design logic behind the 220 kg/h/kW allocation.
	mdot := ARINCMassFlow(1000)
	dt := AirTempRise(1000, mdot, units.CToK(30))
	if dt < 13 || dt > 19 {
		t.Errorf("ARINC air temperature rise = %v, want ≈16 K", dt)
	}
	if !math.IsInf(AirTempRise(100, 0, 300), 1) {
		t.Error("zero flow should give infinite rise")
	}
}

func TestRequiredH(t *testing.T) {
	// The paper's hot-spot arithmetic: 100 W/cm² = 1e6 W/m² at 60 K ΔT
	// needs h ≈ 16,700 W/m²K — far beyond air cooling (~100 W/m²K max).
	h := RequiredH(units.WPerCm2(100), 60)
	if !units.ApproxEqual(h, 1e6/60, 1e-9) {
		t.Errorf("required h = %v", h)
	}
	if h < 10000 {
		t.Error("hot spot must demand h ≫ air-cooling capability")
	}
	if !math.IsInf(RequiredH(1, 0), 1) {
		t.Error("zero ΔT needs infinite h")
	}
}

func TestMaxAirCoolableFluxIsFarBelowHotSpot(t *testing.T) {
	// Even aggressive forced air (10 m/s) over a 2 cm die at 60 K ΔT
	// handles only a few W/cm² — an order of magnitude below the paper's
	// 100 W/cm² hot-spot requirement.
	flux := MaxAirCoolableFlux(0.02, 10, units.CToK(85), units.CToK(25))
	fluxCm2 := units.ToWPerCm2(flux)
	if fluxCm2 > 10 {
		t.Errorf("air cooling capability %v W/cm² should be <10", fluxCm2)
	}
	if fluxCm2 < 0.2 {
		t.Errorf("air cooling capability %v W/cm² implausibly low", fluxCm2)
	}
}

func TestChannelVelocity(t *testing.T) {
	// ARINC flow for 100 W through a 100×10 mm card channel.
	mdot := ARINCMassFlow(100)
	v := ChannelVelocity(mdot, 0.1*0.01, units.CToK(30))
	if v <= 0 || v > 20 {
		t.Errorf("channel velocity = %v", v)
	}
	if ChannelVelocity(1, 0, 300) != 0 {
		t.Error("zero area should give 0")
	}
}

func TestNaturalHorizontalCylinder(t *testing.T) {
	// 40 mm rod at 60 °C in 25 °C air: h ≈ 5–8 W/m²K.
	h := NaturalHorizontalCylinder(0.04, units.CToK(60), units.CToK(25))
	if h < 4 || h > 10 {
		t.Errorf("cylinder h = %v, want 5–8", h)
	}
	if NaturalHorizontalCylinder(0, 330, 300) != 0 {
		t.Error("zero diameter should give 0")
	}
	if NaturalHorizontalCylinder(0.04, 300, 300) != 0 {
		t.Error("zero ΔT should give 0")
	}
	// Thinner cylinders have higher h (boundary-layer curvature).
	thin := NaturalHorizontalCylinder(0.01, units.CToK(60), units.CToK(25))
	if thin <= h {
		t.Error("thin cylinder should have higher h")
	}
}

func TestEnclosureVertical(t *testing.T) {
	// Narrow gap: conduction regime, h = k/l exactly.
	hNarrow := EnclosureVertical(0.002, 0.2, units.CToK(60), units.CToK(30))
	air := materials.Air(units.CToK(45), units.AtmPressure)
	if !units.ApproxEqual(hNarrow, air.K/0.002, 0.01) {
		t.Errorf("narrow gap h = %v, want conduction %v", hNarrow, air.K/0.002)
	}
	// Wide gap: convection augments (Nu > 1) so h exceeds pure conduction
	// for the same gap.
	hWide := EnclosureVertical(0.03, 0.3, units.CToK(60), units.CToK(30))
	if hWide <= air.K/0.03 {
		t.Errorf("wide gap h = %v should exceed conduction %v", hWide, air.K/0.03)
	}
	if EnclosureVertical(0, 1, 330, 300) != 0 {
		t.Error("degenerate gap should give 0")
	}
}

func TestPinFinArray(t *testing.T) {
	// 60 aluminium pins, 3 mm × 15 mm, 5 m/s: ≈1 W/K of fin conductance —
	// the clip-on heatsink class used in the hot-spot screens.
	g, err := PinFinArray(60, 3e-3, 15e-3, 167, 5, units.CToK(50))
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.4 || g > 5 {
		t.Errorf("pin-fin conductance = %v W/K, want ≈1", g)
	}
	// More velocity → more conductance.
	g2, _ := PinFinArray(60, 3e-3, 15e-3, 167, 10, units.CToK(50))
	if g2 <= g {
		t.Error("conductance must grow with velocity")
	}
	// Copper beats aluminium through fin efficiency.
	gCu, _ := PinFinArray(60, 3e-3, 15e-3, 398, 5, units.CToK(50))
	if gCu <= g {
		t.Error("copper pins should beat aluminium")
	}
	if _, err := PinFinArray(0, 3e-3, 15e-3, 167, 5, 300); err == nil {
		t.Error("zero fins should error")
	}
}
