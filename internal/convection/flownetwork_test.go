package convection

import (
	"math"
	"testing"

	"aeropack/internal/units"
)

func testRack() *RackFlow {
	return &RackFlow{
		InletC: 40,
		Channels: []Channel{
			{Name: "slot1", K: 4e6, PowerW: 60, Area: 0.1 * 0.01},
			{Name: "slot2", K: 4e6, PowerW: 60, Area: 0.1 * 0.01},
			{Name: "slot3", K: 4e6, PowerW: 30, Area: 0.1 * 0.01},
		},
	}
}

func TestSplitEqualChannels(t *testing.T) {
	r := testRack()
	s, err := r.SolveSplit(0.03)
	if err != nil {
		t.Fatal(err)
	}
	// Equal impedances: even thirds.
	for i, q := range s.Q {
		if !units.ApproxEqual(q, 0.01, 1e-9) {
			t.Errorf("channel %d flow %v, want 0.01", i, q)
		}
	}
	if !units.ApproxEqual(s.TotalQ(), 0.03, 1e-9) {
		t.Errorf("total flow %v", s.TotalQ())
	}
	// Common ΔP consistent with each channel: dp = K·q².
	want := 4e6 * 0.01 * 0.01
	if !units.ApproxEqual(s.DP, want, 1e-9) {
		t.Errorf("ΔP = %v, want %v", s.DP, want)
	}
	// Exit temps: the 60 W slots run hotter than the 30 W slot.
	if !(s.ExitC[0] > s.ExitC[2] && s.ExitC[1] > s.ExitC[2]) {
		t.Errorf("exit temps wrong: %v", s.ExitC)
	}
	if s.HottestExitC() != s.ExitC[0] {
		t.Error("hottest exit wrong")
	}
	// Velocities reported.
	if !units.ApproxEqual(s.VelocityMS[0], 0.01/0.001, 1e-9) {
		t.Errorf("velocity %v", s.VelocityMS[0])
	}
}

func TestSplitRestrictedChannelStarves(t *testing.T) {
	// Quadrupling one slot's impedance halves its flow share and doubles
	// its temperature rise — the classic starved-slot failure.
	r := testRack()
	r.Channels[0].K = 16e6
	s, err := r.SolveSplit(0.03)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(s.Q[0], s.Q[1]/2, 1e-9) {
		t.Errorf("restricted slot flow %v, want half of %v", s.Q[0], s.Q[1])
	}
	rise0 := s.ExitC[0] - 40
	rise1 := s.ExitC[1] - 40
	if !units.ApproxEqual(rise0, 2*rise1, 1e-9) {
		t.Errorf("starved slot rise %v, want 2× %v", rise0, rise1)
	}
}

func TestEffectiveImpedanceAndFan(t *testing.T) {
	r := testRack()
	keff, err := r.EffectiveImpedance()
	if err != nil {
		t.Fatal(err)
	}
	// Three equal channels in parallel: K_eff = K/9.
	if !units.ApproxEqual(keff, 4e6/9, 1e-9) {
		t.Errorf("K_eff = %v, want %v", keff, 4e6/9.0)
	}
	fan, err := NewFanCurve(
		[]float64{0, 0.01, 0.02, 0.03, 0.05},
		[]float64{900, 800, 600, 320, 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.SolveWithFan(fan)
	if err != nil {
		t.Fatal(err)
	}
	// Operating point on both curves.
	q := s.TotalQ()
	if !units.ApproxEqual(s.DP, keff*q*q, 1e-6) {
		t.Error("fan split not on the system curve")
	}
	if !units.ApproxEqual(s.DP, fan.PressureAt(q), 1e-2) {
		t.Error("fan split not on the fan curve")
	}
}

func TestRequiredFlowForExitLimit(t *testing.T) {
	r := testRack()
	q, err := r.RequiredFlowForExitLimit(55)
	if err != nil {
		t.Fatal(err)
	}
	// At exactly that flow, the hottest exit hits the limit.
	s, err := r.SolveSplit(q)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(s.HottestExitC(), 55, 1e-6) {
		t.Errorf("hottest exit %v at the sizing flow, want 55", s.HottestExitC())
	}
	// More flow → cooler.
	s2, _ := r.SolveSplit(q * 1.5)
	if s2.HottestExitC() >= 55 {
		t.Error("extra flow must cool the exits")
	}
	if _, err := r.RequiredFlowForExitLimit(30); err == nil {
		t.Error("limit below inlet should error")
	}
	cold := &RackFlow{InletC: 40, Channels: []Channel{{Name: "idle", K: 1e6}}}
	if _, err := cold.RequiredFlowForExitLimit(55); err == nil {
		t.Error("unpowered rack should error")
	}
}

func TestChannelImpedance(t *testing.T) {
	k, err := ChannelImpedance(0.01, 0.15, 0.2, 0.01, units.CToK(40))
	if err != nil {
		t.Fatal(err)
	}
	if k <= 0 || math.IsInf(k, 0) {
		t.Errorf("impedance %v invalid", k)
	}
	// Narrower gap → higher impedance.
	k2, _ := ChannelImpedance(0.005, 0.15, 0.2, 0.01, units.CToK(40))
	if k2 <= k {
		t.Error("narrow gap should be more restrictive")
	}
	if _, err := ChannelImpedance(0, 1, 1, 0.01, 300); err == nil {
		t.Error("bad geometry should error")
	}
}

func TestRackValidation(t *testing.T) {
	empty := &RackFlow{}
	if _, err := empty.SolveSplit(0.01); err == nil {
		t.Error("empty rack should error")
	}
	bad := testRack()
	bad.Channels[1].K = 0
	if _, err := bad.SolveSplit(0.01); err == nil {
		t.Error("zero impedance should error")
	}
	bad2 := testRack()
	bad2.Channels[0].PowerW = -1
	if _, err := bad2.SolveSplit(0.01); err == nil {
		t.Error("negative power should error")
	}
	if _, err := testRack().SolveSplit(-1); err == nil {
		t.Error("negative flow should error")
	}
}
