// Package convection provides the engineering convection correlations used
// by aeropack's equipment-level (level 1) and board-level (level 2) thermal
// models: natural convection from plates, forced convection in the card
// channels of avionics racks, fan/system operating points, and the
// ARINC 600 forced-air sizing rules the paper quotes (220 kg/h per kW).
//
// All heat transfer coefficients are returned in W/(m²·K); film properties
// are evaluated at the film temperature (Ts+T∞)/2 unless noted.
package convection

import (
	"fmt"
	"math"

	"aeropack/internal/materials"
	"aeropack/internal/units"
)

// rayleigh computes the Rayleigh number for characteristic length L and
// surface/ambient temperatures Ts, Tamb at 1 atm.
func rayleigh(L, Ts, Tamb float64) (ra float64, air materials.AirProps) {
	film := 0.5 * (Ts + Tamb)
	air = materials.Air(film, units.AtmPressure)
	dT := math.Abs(Ts - Tamb)
	// Ra = g·β·ΔT·L³/(ν·α) with thermal diffusivity α = ν/Pr.
	ra = units.Gravity * air.Beta * dT * L * L * L / (air.Nu * (air.Nu / air.Pr))
	return ra, air
}

// NaturalVerticalPlate returns the average natural-convection coefficient
// for a vertical plate of height L using the Churchill–Chu correlation
// (valid over the full laminar/turbulent Ra range).
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func NaturalVerticalPlate(L, Ts, Tamb float64) float64 {
	if L <= 0 {
		return 0
	}
	ra, air := rayleigh(L, Ts, Tamb)
	if ra <= 0 {
		return 0
	}
	pr := air.Pr
	den := math.Pow(1+math.Pow(0.492/pr, 9.0/16.0), 8.0/27.0)
	nu := math.Pow(0.825+0.387*math.Pow(ra, 1.0/6.0)/den, 2)
	return nu * air.K / L
}

// NaturalHorizontalPlateUp returns the coefficient for a hot surface facing
// up (or cold facing down); L is area/perimeter.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func NaturalHorizontalPlateUp(L, Ts, Tamb float64) float64 {
	if L <= 0 {
		return 0
	}
	ra, air := rayleigh(L, Ts, Tamb)
	if ra <= 0 {
		return 0
	}
	var nu float64
	switch {
	case ra < 1e7:
		nu = 0.54 * math.Pow(ra, 0.25)
	default:
		nu = 0.15 * math.Pow(ra, 1.0/3.0)
	}
	return nu * air.K / L
}

// NaturalHorizontalPlateDown returns the coefficient for a hot surface
// facing down (stably stratified, weak convection).
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func NaturalHorizontalPlateDown(L, Ts, Tamb float64) float64 {
	if L <= 0 {
		return 0
	}
	ra, air := rayleigh(L, Ts, Tamb)
	if ra <= 0 {
		return 0
	}
	nu := 0.27 * math.Pow(ra, 0.25)
	return nu * air.K / L
}

// ForcedFlatPlate returns the average coefficient for flow at velocity V
// over a plate of length L with mixed laminar/turbulent treatment
// (transition at Re = 5×10⁵).
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func ForcedFlatPlate(L, V, Ts, Tamb float64) float64 {
	if L <= 0 || V <= 0 {
		return 0
	}
	film := 0.5 * (Ts + Tamb)
	air := materials.Air(film, units.AtmPressure)
	re := V * L / air.Nu
	pr := air.Pr
	var nu float64
	const reCrit = 5e5
	if re <= reCrit {
		nu = 0.664 * math.Sqrt(re) * math.Cbrt(pr)
	} else {
		// Mixed boundary layer (Incropera eq. 7.38).
		nu = (0.037*math.Pow(re, 0.8) - 871) * math.Cbrt(pr)
	}
	return nu * air.K / L
}

// HydraulicDiameter returns 4A/P for a rectangular duct a×b.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func HydraulicDiameter(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// DuctFlow describes developed flow in a duct or card-to-card channel.
type DuctFlow struct {
	Re float64 // Reynolds number
	Nu float64 // Nusselt number
	H  float64 // heat transfer coefficient, W/(m²·K)
	F  float64 // Darcy friction factor
	DP float64 // pressure drop over the duct length, Pa
}

// Duct evaluates flow of air at bulk temperature Tbulk through a duct of
// hydraulic diameter dh and length l at mean velocity V.  Laminar flow
// uses the constant-heat-flux parallel-plate value Nu = 8.23; turbulent
// flow uses Dittus–Boelter (heating) with the Blasius friction factor.
func Duct(dh, l, V, Tbulk float64) (DuctFlow, error) {
	if dh <= 0 || l <= 0 || V <= 0 {
		return DuctFlow{}, fmt.Errorf("convection: duct parameters must be positive (dh=%g l=%g V=%g)", dh, l, V)
	}
	air := materials.Air(Tbulk, units.AtmPressure)
	re := V * dh / air.Nu
	var nu, f float64
	if re < 2300 {
		nu = 8.23
		f = 96 / re // parallel-plate laminar friction
	} else {
		nu = 0.023 * math.Pow(re, 0.8) * math.Pow(air.Pr, 0.4)
		f = 0.316 / math.Pow(re, 0.25)
	}
	h := nu * air.K / dh
	dp := f * l / dh * 0.5 * air.Rho * V * V
	return DuctFlow{Re: re, Nu: nu, H: h, F: f, DP: dp}, nil
}

// FanCurve is a static fan pressure curve given as (flow m³/s,
// pressure Pa) samples, monotone decreasing in pressure.
type FanCurve struct {
	Q  []float64
	DP []float64
}

// NewFanCurve validates and stores a fan curve.
func NewFanCurve(q, dp []float64) (*FanCurve, error) {
	if len(q) != len(dp) || len(q) < 2 {
		return nil, fmt.Errorf("convection: fan curve needs ≥2 matched samples")
	}
	for i := 1; i < len(q); i++ {
		if q[i] <= q[i-1] {
			return nil, fmt.Errorf("convection: fan curve flow must increase")
		}
		if dp[i] > dp[i-1] {
			return nil, fmt.Errorf("convection: fan curve pressure must not increase with flow")
		}
	}
	return &FanCurve{Q: append([]float64(nil), q...), DP: append([]float64(nil), dp...)}, nil
}

// PressureAt interpolates the fan pressure at flow q, clamping outside the
// sampled range (0 beyond free delivery).
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (f *FanCurve) PressureAt(q float64) float64 {
	if q <= f.Q[0] {
		return f.DP[0]
	}
	n := len(f.Q)
	if q >= f.Q[n-1] {
		return 0
	}
	for i := 1; i < n; i++ {
		if q <= f.Q[i] {
			t := (q - f.Q[i-1]) / (f.Q[i] - f.Q[i-1])
			return units.Lerp(f.DP[i-1], f.DP[i], t)
		}
	}
	return 0
}

// OperatingPoint intersects the fan curve with a quadratic system
// impedance dp = kSys·q² and returns (flow, pressure).  kSys in Pa/(m³/s)².
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (f *FanCurve) OperatingPoint(kSys float64) (float64, float64, error) {
	if kSys < 0 {
		return 0, 0, fmt.Errorf("convection: system coefficient must be ≥0")
	}
	// Bisection on g(q) = fanDP(q) − kSys·q², decreasing in q.
	lo, hi := f.Q[0], f.Q[len(f.Q)-1]
	g := func(q float64) float64 { return f.PressureAt(q) - kSys*q*q }
	if g(lo) < 0 {
		return 0, 0, fmt.Errorf("convection: system too restrictive for this fan")
	}
	if g(hi) > 0 {
		// System curve never reaches the fan curve inside range: free delivery.
		return hi, f.PressureAt(hi), nil
	}
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		if g(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	q := 0.5 * (lo + hi)
	return q, kSys * q * q, nil
}

// ARINCMassFlow returns the ARINC 600 standard cooling airflow allocation
// for an equipment dissipating power watts: 220 kg/h per kW, in kg/s.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func ARINCMassFlow(power float64) float64 {
	return units.KgPerHour(220 * power / 1000)
}

// AirTempRise returns the bulk air temperature rise ΔT = P/(ṁ·cp) for
// power P (W) absorbed by mass flow mdot (kg/s) entering at Tin (K).
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func AirTempRise(power, mdot, Tin float64) float64 {
	if mdot <= 0 {
		return math.Inf(1)
	}
	air := materials.Air(Tin, units.AtmPressure)
	return power / (mdot * air.Cp)
}

// RequiredH returns the convection coefficient needed to remove heat flux
// q″ (W/m²) at a film temperature difference dT (K).
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func RequiredH(flux, dT float64) float64 {
	if dT <= 0 {
		return math.Inf(1)
	}
	return flux / dT
}

// MaxAirCoolableFlux estimates the highest component heat flux (W/m²)
// plain forced air at channel velocity V over a component of length L can
// handle with surface-to-air difference dT — the quantity behind the
// paper's statement that ARINC-class airflow "cannot cope with the hot
// spot problems" at 100 W/cm².
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func MaxAirCoolableFlux(L, V, Ts, Tamb float64) float64 {
	h := ForcedFlatPlate(L, V, Ts, Tamb)
	return h * (Ts - Tamb)
}

// ChannelVelocity converts a mass flow (kg/s) through a card channel of
// cross-section area (m²) at temperature T into a mean velocity.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func ChannelVelocity(mdot, area, T float64) float64 {
	if area <= 0 {
		return 0
	}
	air := materials.Air(T, units.AtmPressure)
	return mdot / (air.Rho * area)
}

// NaturalHorizontalCylinder returns the average natural-convection
// coefficient for a horizontal cylinder of diameter d (Churchill–Chu) —
// the seat-structure rods of the COSEE study, conduit runs, connector
// shells.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func NaturalHorizontalCylinder(d, Ts, Tamb float64) float64 {
	if d <= 0 {
		return 0
	}
	ra, air := rayleigh(d, Ts, Tamb)
	if ra <= 0 {
		return 0
	}
	den := math.Pow(1+math.Pow(0.559/air.Pr, 9.0/16.0), 8.0/27.0)
	nu := math.Pow(0.60+0.387*math.Pow(ra, 1.0/6.0)/den, 2)
	return nu * air.K / d
}

// EnclosureVertical returns the effective convection coefficient for a
// sealed vertical air gap of thickness l and height h between plates at
// Th and Tc — the card-to-wall gaps of sealed boxes.  Below the critical
// Rayleigh number the gap behaves as pure conduction (Nu = 1).
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func EnclosureVertical(l, h, Th, Tc float64) float64 {
	if l <= 0 || h <= 0 {
		return 0
	}
	ra, air := rayleigh(l, Th, Tc)
	aspect := h / l
	nu := 1.0
	if ra > 1000 && aspect >= 1 {
		// Catton / ElSherbiny-class correlation for tall gaps.
		nu = math.Max(1, 0.42*math.Pow(ra, 0.25)*math.Pow(air.Pr, 0.012)*math.Pow(aspect, -0.3))
	}
	return nu * air.K / l
}

// PinFinArray sizes a staggered pin-fin heatsink's thermal conductance:
// nFins pins of diameter d and height hPin on a base, in a duct flow at
// velocity v and bulk temperature T.  Returns total conductance W/K using
// the Zukauskas cylinder-in-crossflow correlation with a fin-efficiency
// correction for conductivity kFin.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func PinFinArray(nFins int, d, hPin, kFin, v, T float64) (float64, error) {
	if nFins < 1 || d <= 0 || hPin <= 0 || kFin <= 0 || v <= 0 {
		return 0, fmt.Errorf("convection: invalid pin-fin inputs")
	}
	air := materials.Air(T, units.AtmPressure)
	re := v * d / air.Nu
	var c, m float64
	switch {
	case re < 40:
		c, m = 0.75, 0.4
	case re < 1000:
		c, m = 0.51, 0.5
	case re < 2e5:
		c, m = 0.26, 0.6
	default:
		c, m = 0.076, 0.7
	}
	nu := c * math.Pow(re, m) * math.Pow(air.Pr, 0.37)
	hFilm := nu * air.K / d
	// Fin efficiency for a pin: η = tanh(mL)/(mL), m = √(4h/(k·d)).
	mm := math.Sqrt(4 * hFilm / (kFin * d))
	ml := mm * hPin
	eta := 1.0
	if ml > 1e-9 {
		eta = math.Tanh(ml) / ml
	}
	aPin := math.Pi * d * hPin
	return float64(nFins) * eta * hFilm * aPin, nil
}
