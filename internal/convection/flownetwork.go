package convection

import (
	"fmt"
	"math"

	"aeropack/internal/materials"
	"aeropack/internal/units"
)

// Channel is one parallel air passage of a rack: a card-to-card slot with
// a quadratic impedance dp = K·q² and the power its board dumps into the
// passing air.
type Channel struct {
	Name   string
	K      float64 // impedance coefficient, Pa/(m³/s)²
	PowerW float64 // heat picked up by this channel's air
	// Area is the channel cross-section (for velocity reporting), m².
	Area float64
}

// ChannelImpedance estimates K for a rectangular card slot of gap g,
// width w and length l from the laminar/turbulent duct friction at a
// representative flow q0 — a one-point linearisation adequate for slot
// balancing.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func ChannelImpedance(gap, width, length, q0, T float64) (float64, error) {
	if gap <= 0 || width <= 0 || length <= 0 || q0 <= 0 {
		return 0, fmt.Errorf("convection: invalid channel geometry")
	}
	area := gap * width
	v := q0 / area
	d, err := Duct(HydraulicDiameter(gap, width), length, v, T)
	if err != nil {
		return 0, err
	}
	return d.DP / (q0 * q0), nil
}

// RackFlow is a parallel network of channels fed from a common plenum.
type RackFlow struct {
	Channels []Channel
	// InletC is the supply air temperature.
	InletC float64
}

// Validate checks the network.
func (r *RackFlow) Validate() error {
	if len(r.Channels) == 0 {
		return fmt.Errorf("convection: rack needs at least one channel")
	}
	for i, c := range r.Channels {
		if c.K <= 0 {
			return fmt.Errorf("convection: channel %d (%s) needs positive impedance", i, c.Name)
		}
		if c.PowerW < 0 {
			return fmt.Errorf("convection: channel %d (%s) negative power", i, c.Name)
		}
	}
	return nil
}

// Split is a solved flow distribution.
type Split struct {
	// Q[i] is channel i's volumetric flow, m³/s.
	Q []float64
	// DP is the common plenum-to-exhaust pressure drop, Pa.
	DP float64
	// ExitC[i] is channel i's air exit temperature, °C.
	ExitC []float64
	// VelocityMS[i] is the mean channel velocity (0 when Area unset).
	VelocityMS []float64
}

// TotalQ returns the summed flow.
func (s *Split) TotalQ() float64 {
	sum := 0.0
	for _, q := range s.Q {
		sum += q
	}
	return sum
}

// HottestExitC returns the worst channel exit temperature.
func (s *Split) HottestExitC() float64 {
	hot := math.Inf(-1)
	for _, t := range s.ExitC {
		if t > hot {
			hot = t
		}
	}
	return hot
}

// SolveSplit distributes a prescribed total volumetric flow (m³/s) across
// the parallel channels: equal pressure drop forces qᵢ ∝ 1/√Kᵢ, solved in
// closed form.
func (r *RackFlow) SolveSplit(totalQ float64) (*Split, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if totalQ <= 0 {
		return nil, fmt.Errorf("convection: total flow must be positive")
	}
	sumInv := 0.0
	for _, c := range r.Channels {
		sumInv += 1 / math.Sqrt(c.K)
	}
	dpSqrt := totalQ / sumInv // √ΔP
	out := &Split{DP: dpSqrt * dpSqrt}
	air := materials.Air(units.CToK(r.InletC), units.AtmPressure)
	for _, c := range r.Channels {
		q := dpSqrt / math.Sqrt(c.K)
		out.Q = append(out.Q, q)
		mdot := q * air.Rho
		rise := c.PowerW / (mdot * air.Cp)
		out.ExitC = append(out.ExitC, r.InletC+rise)
		v := 0.0
		if c.Area > 0 {
			v = q / c.Area
		}
		out.VelocityMS = append(out.VelocityMS, v)
	}
	return out, nil
}

// EffectiveImpedance returns the parallel network's combined K: the
// single-channel equivalent a fan curve can be intersected with.
func (r *RackFlow) EffectiveImpedance() (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	sumInv := 0.0
	for _, c := range r.Channels {
		sumInv += 1 / math.Sqrt(c.K)
	}
	return 1 / (sumInv * sumInv), nil
}

// SolveWithFan finds the operating point of the rack on a fan curve and
// returns the resulting split.
func (r *RackFlow) SolveWithFan(fan *FanCurve) (*Split, error) {
	keff, err := r.EffectiveImpedance()
	if err != nil {
		return nil, err
	}
	q, _, err := fan.OperatingPoint(keff)
	if err != nil {
		return nil, err
	}
	return r.SolveSplit(q)
}

// RequiredFlowForExitLimit returns the total flow that keeps every
// channel's exit below limitC, found in closed form from the worst
// power-to-flow-share ratio.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (r *RackFlow) RequiredFlowForExitLimit(limitC float64) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if limitC <= r.InletC {
		return 0, fmt.Errorf("convection: exit limit must exceed the inlet temperature")
	}
	air := materials.Air(units.CToK(r.InletC), units.AtmPressure)
	sumInv := 0.0
	for _, c := range r.Channels {
		sumInv += 1 / math.Sqrt(c.K)
	}
	need := 0.0
	for _, c := range r.Channels {
		if c.PowerW == 0 {
			continue
		}
		// Channel i's share: qᵢ = Q·(1/√Kᵢ)/sumInv; rise = P/(ρ·cp·qᵢ).
		share := (1 / math.Sqrt(c.K)) / sumInv
		q := c.PowerW / (air.Rho * air.Cp * (limitC - r.InletC) * share)
		if q > need {
			need = q
		}
	}
	if need == 0 {
		return 0, fmt.Errorf("convection: no powered channels")
	}
	return need, nil
}
