// Package mech implements the structural-dynamics models behind the
// paper's mechanical design flow (§II.A, Figs. 2–3): lumped mass–spring–
// damper assemblies for equipment-on-isolator studies (the inertial
// measurement unit with its "mechanical filtering function and dampers"),
// Euler–Bernoulli beam finite elements for chassis members and card
// strips, and classical plate modal formulas for PCBs (the Ariane power
// supply whose "main resonant mode [was] located around 500 Hz").
//
// Frequencies are Hz, stiffnesses N/m, masses kg.
package mech

import (
	"fmt"
	"math"
	"math/cmplx"

	"aeropack/internal/linalg"
	"aeropack/internal/units"
)

// Ground is the reserved node name for the fixed base in lumped systems.
const Ground = "ground"

// Lumped is a lumped-parameter structural system: point masses connected
// by springs and viscous dampers, optionally to ground.  The base can be
// excited to compute transmissibilities (isolator design).
type Lumped struct {
	names  map[string]int
	labels []string
	mass   []float64

	springs []coupling
	dampers []coupling
}

type coupling struct {
	a, b int // index; -1 = ground
	v    float64
}

// NewLumped returns an empty lumped system.
func NewLumped() *Lumped {
	return &Lumped{names: map[string]int{}}
}

func (s *Lumped) node(name string) int {
	if name == Ground {
		return -1
	}
	if id, ok := s.names[name]; ok {
		return id
	}
	id := len(s.labels)
	s.names[name] = id
	s.labels = append(s.labels, name)
	s.mass = append(s.mass, 0)
	return id
}

// AddMass assigns mass m (kg) to a node, accumulating over calls.
func (s *Lumped) AddMass(name string, m float64) error {
	if name == Ground {
		return fmt.Errorf("mech: cannot assign mass to ground")
	}
	if m <= 0 {
		return fmt.Errorf("mech: mass must be positive")
	}
	s.mass[s.node(name)] += m
	return nil
}

// AddSpring connects two nodes (or a node and Ground) with stiffness k.
func (s *Lumped) AddSpring(a, b string, k float64) error {
	if k <= 0 {
		return fmt.Errorf("mech: spring stiffness must be positive")
	}
	ia, ib := s.node(a), s.node(b)
	if ia == ib {
		return fmt.Errorf("mech: spring endpoints identical (%q)", a)
	}
	s.springs = append(s.springs, coupling{ia, ib, k})
	return nil
}

// AddDamper connects two nodes (or a node and Ground) with viscous damping
// coefficient c (N·s/m).
func (s *Lumped) AddDamper(a, b string, c float64) error {
	if c < 0 {
		return fmt.Errorf("mech: damping must be non-negative")
	}
	ia, ib := s.node(a), s.node(b)
	if ia == ib {
		return fmt.Errorf("mech: damper endpoints identical (%q)", a)
	}
	s.dampers = append(s.dampers, coupling{ia, ib, c})
	return nil
}

// matrices assembles K, C, M (dense) plus the base-coupling vectors kg, cg
// holding the stiffness/damping each DOF shares with ground.
func (s *Lumped) matrices() (k, c, m *linalg.Dense, kg, cg []float64, err error) {
	n := len(s.labels)
	if n == 0 {
		return nil, nil, nil, nil, nil, fmt.Errorf("mech: empty system")
	}
	for i, mv := range s.mass {
		if mv <= 0 {
			return nil, nil, nil, nil, nil, fmt.Errorf("mech: node %q has no mass", s.labels[i])
		}
	}
	k = linalg.NewDense(n, n)
	c = linalg.NewDense(n, n)
	m = linalg.NewDense(n, n)
	kg = make([]float64, n)
	cg = make([]float64, n)
	for i, mv := range s.mass {
		m.Set(i, i, mv)
	}
	apply := func(dst *linalg.Dense, gvec []float64, cpl coupling) {
		switch {
		case cpl.a < 0:
			dst.Add(cpl.b, cpl.b, cpl.v)
			gvec[cpl.b] += cpl.v
		case cpl.b < 0:
			dst.Add(cpl.a, cpl.a, cpl.v)
			gvec[cpl.a] += cpl.v
		default:
			dst.Add(cpl.a, cpl.a, cpl.v)
			dst.Add(cpl.b, cpl.b, cpl.v)
			dst.Add(cpl.a, cpl.b, -cpl.v)
			dst.Add(cpl.b, cpl.a, -cpl.v)
		}
	}
	for _, sp := range s.springs {
		apply(k, kg, sp)
	}
	for _, dp := range s.dampers {
		apply(c, cg, dp)
	}
	return k, c, m, kg, cg, nil
}

// Mode is one natural mode of a system.
type Mode struct {
	FreqHz float64
	Shape  map[string]float64 // mass-normalised displacement per node
}

// Modal returns the undamped natural modes, ascending in frequency.
func (s *Lumped) Modal() ([]Mode, error) {
	k, _, m, _, _, err := s.matrices()
	if err != nil {
		return nil, err
	}
	vals, vecs, err := linalg.EigenGeneral(k, m, 1e-12, 200)
	if err != nil {
		return nil, err
	}
	modes := make([]Mode, len(vals))
	for j := range vals {
		lam := vals[j]
		if lam < 0 {
			lam = 0
		}
		shape := make(map[string]float64, len(s.labels))
		for i, name := range s.labels {
			shape[name] = vecs.At(i, j)
		}
		modes[j] = Mode{FreqHz: math.Sqrt(lam) / (2 * math.Pi), Shape: shape}
	}
	return modes, nil
}

// Transmissibility returns |X_node/X_base| at frequency f (Hz) for
// harmonic base excitation applied through every ground-connected spring
// and damper.
func (s *Lumped) Transmissibility(node string, f float64) (float64, error) {
	if f < 0 {
		return 0, fmt.Errorf("mech: negative frequency")
	}
	id, ok := s.names[node]
	if !ok {
		return 0, fmt.Errorf("mech: unknown node %q", node)
	}
	k, c, m, kg, cg, err := s.matrices()
	if err != nil {
		return 0, err
	}
	n := len(s.labels)
	w := 2 * math.Pi * f
	// (−ω²M + iωC + K)·x = (K_g + iωC_g)·u, u = 1.
	a := make([]complex128, n*n)
	b := make([]complex128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = complex(k.At(i, j)-w*w*m.At(i, j), w*c.At(i, j))
		}
		b[i] = complex(kg[i], w*cg[i])
	}
	x, err := solveComplex(a, b, n)
	if err != nil {
		return 0, err
	}
	return cmplx.Abs(x[id]), nil
}

// TransmissibilitySweep evaluates Transmissibility over a log-spaced
// frequency grid [f0, f1] with npts points, returning parallel slices.
func (s *Lumped) TransmissibilitySweep(node string, f0, f1 float64, npts int) ([]float64, []float64, error) {
	if f0 <= 0 || f1 <= f0 || npts < 2 {
		return nil, nil, fmt.Errorf("mech: invalid sweep range")
	}
	fs := make([]float64, npts)
	ts := make([]float64, npts)
	for i := 0; i < npts; i++ {
		fs[i] = f0 * math.Pow(f1/f0, float64(i)/float64(npts-1))
		t, err := s.Transmissibility(node, fs[i])
		if err != nil {
			return nil, nil, err
		}
		ts[i] = t
	}
	return fs, ts, nil
}

// solveComplex performs Gaussian elimination with partial pivoting on an
// n×n complex system stored row-major.
func solveComplex(a []complex128, b []complex128, n int) ([]complex128, error) {
	for col := 0; col < n; col++ {
		// Pivot.
		p, best := col, cmplx.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a[r*n+col]); v > best {
				p, best = r, v
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("mech: singular dynamic stiffness matrix")
		}
		if p != col {
			for j := 0; j < n; j++ {
				a[p*n+j], a[col*n+j] = a[col*n+j], a[p*n+j]
			}
			b[p], b[col] = b[col], b[p]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]complex128, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i*n+j] * x[j]
		}
		x[i] = sum / a[i*n+i]
	}
	return x, nil
}

// SDOF helpers — the isolator designer's back-of-envelope formulas.

// NaturalFreqHz returns f_n = (1/2π)·√(k/m).
func NaturalFreqHz(k, m float64) float64 {
	if k <= 0 || m <= 0 {
		return 0
	}
	return math.Sqrt(k/m) / (2 * math.Pi)
}

// SDOFTransmissibility returns the classic base-excitation
// transmissibility of a single DOF at frequency ratio r = f/f_n with
// damping ratio zeta.
func SDOFTransmissibility(r, zeta float64) float64 {
	num := 1 + math.Pow(2*zeta*r, 2)
	den := math.Pow(1-r*r, 2) + math.Pow(2*zeta*r, 2)
	return math.Sqrt(num / den)
}

// IsolatorStiffness returns the spring rate (per isolator, count n) that
// places a mass m (kg) at natural frequency fn (Hz).
func IsolatorStiffness(m, fn float64, n int) (float64, error) {
	if m <= 0 || fn <= 0 || n < 1 {
		return 0, fmt.Errorf("mech: invalid isolator sizing inputs")
	}
	w := 2 * math.Pi * fn
	return m * w * w / float64(n), nil
}

// QFactor converts a damping ratio to the resonant amplification Q ≈ 1/(2ζ).
func QFactor(zeta float64) float64 {
	if zeta <= 0 {
		return math.Inf(1)
	}
	return 1 / (2 * zeta)
}

// StaticDeflection returns each node's quasi-static displacement (m)
// under a steady base acceleration of gLevel (g) — the 9 g sustained-
// acceleration clearance check: x = K⁻¹·M·1·a.
func (s *Lumped) StaticDeflection(gLevel float64) (map[string]float64, error) {
	k, _, m, _, _, err := s.matrices()
	if err != nil {
		return nil, err
	}
	n := len(s.labels)
	f := make([]float64, n)
	a := units.GLevel(gLevel)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f[i] += m.At(i, j) * a
		}
	}
	x, err := linalg.SolveDense(k, f)
	if err != nil {
		return nil, fmt.Errorf("mech: static solve failed (unconstrained system?): %w", err)
	}
	out := make(map[string]float64, n)
	for i, name := range s.labels {
		out[name] = x[i]
	}
	return out, nil
}
