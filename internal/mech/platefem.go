package mech

import (
	"fmt"
	"math"

	"aeropack/internal/linalg"
	"aeropack/internal/materials"
)

// PlateFEM is a rectangular Kirchhoff thin-plate finite-element model
// using the classical 4-node, 12-DOF ACM (Adini–Clough–Melosh) element —
// the workhorse for PCB modal analysis when the closed-form coefficients
// of Plate can't represent discrete component masses, local stiffeners or
// mixed edge support.  DOF per node: (w, θx = ∂w/∂y, θy = −∂w/∂x).
type PlateFEM struct {
	A, B      float64 // plate dimensions, m
	Thickness float64
	Material  materials.Material
	Nx, Ny    int // element grid
	// EdgesSupported marks simply supported (w=0) edges: x-, x+, y-, y+.
	EdgesSupported [4]bool
	// EdgesClamped additionally fixes both rotations on an edge.
	EdgesClamped [4]bool
	// MassLoadKgM2 smears distributed component mass.
	MassLoadKgM2 float64
	// PointMasses places discrete masses at physical (x, y) positions.
	PointMasses []PointMass
}

// PointMass is a discrete mass on the plate.
type PointMass struct {
	X, Y float64 // m
	Kg   float64
}

// NewPlateFEM builds a model with a default simply-supported boundary.
func NewPlateFEM(a, b, thickness float64, mat materials.Material, nx, ny int) (*PlateFEM, error) {
	if a <= 0 || b <= 0 || thickness <= 0 {
		return nil, fmt.Errorf("mech: plate dimensions must be positive")
	}
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("mech: need ≥2 elements per side")
	}
	if mat.E <= 0 || mat.Rho <= 0 {
		return nil, fmt.Errorf("mech: plate material needs E and rho")
	}
	return &PlateFEM{
		A: a, B: b, Thickness: thickness, Material: mat,
		Nx: nx, Ny: ny,
		EdgesSupported: [4]bool{true, true, true, true},
	}, nil
}

// acmElement returns the 12×12 stiffness and consistent mass matrices of
// an ACM element of half-dimensions (ax, by) with flexural rigidity d,
// Poisson nu and areal mass rhoH.  Built by numerical integration of the
// ACM shape functions (3×3 Gauss), which reproduces the classical closed
// forms to machine precision and keeps the code auditable.
func acmElement(ax, by, d, nu, rhoH float64) (k, m [12][12]float64) {
	// Shape functions in natural coords ξ,η ∈ [−1,1] for nodes
	// (−1,−1), (1,−1), (1,1), (−1,1); per node: (w, θx, θy).
	// ACM polynomial basis: the standard 12-term set.
	type shapeFn func(xi, eta float64) (n [12]float64)
	// Hermite-style products.
	nfunc := func(xi, eta float64) (n [12]float64) {
		xs := []float64{-1, 1, 1, -1}
		es := []float64{-1, -1, 1, 1}
		for i := 0; i < 4; i++ {
			x0, e0 := xs[i], es[i]
			xx := xi * x0
			ee := eta * e0
			n[3*i] = 0.125 * (1 + xx) * (1 + ee) * (2 + xx + ee - xi*xi - eta*eta)
			n[3*i+1] = 0.125 * by * e0 * (1 + xx) * (1 + ee) * (1 + ee) * (ee - 1)
			n[3*i+2] = -0.125 * ax * x0 * (1 + ee) * (1 + xx) * (1 + xx) * (xx - 1)
		}
		return n
	}
	var _ shapeFn = nfunc

	// Numerical second derivatives of the shape functions via central
	// differences in natural coordinates (the basis is polynomial, so a
	// modest step is exact to round-off).
	const h = 1e-4
	d2 := func(xi, eta float64) (nxx, nyy, nxy [12]float64) {
		np := nfunc(xi+h, eta)
		nm := nfunc(xi-h, eta)
		n0 := nfunc(xi, eta)
		ep := nfunc(xi, eta+h)
		em := nfunc(xi, eta-h)
		pp := nfunc(xi+h, eta+h)
		pm := nfunc(xi+h, eta-h)
		mp := nfunc(xi-h, eta+h)
		mm := nfunc(xi-h, eta-h)
		for j := 0; j < 12; j++ {
			// ∂²/∂x² = (1/ax²)·∂²/∂ξ² etc.
			nxx[j] = (np[j] - 2*n0[j] + nm[j]) / (h * h) / (ax * ax)
			nyy[j] = (ep[j] - 2*n0[j] + em[j]) / (h * h) / (by * by)
			nxy[j] = (pp[j] - pm[j] - mp[j] + mm[j]) / (4 * h * h) / (ax * by)
		}
		return
	}

	// 3-point Gauss rule.
	gp := []float64{-math.Sqrt(3.0 / 5.0), 0, math.Sqrt(3.0 / 5.0)}
	gw := []float64{5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0}
	jac := ax * by // dA = ax·by·dξ·dη
	for ix, xi := range gp {
		for ie, eta := range gp {
			w := gw[ix] * gw[ie] * jac
			nxx, nyy, nxy := d2(xi, eta)
			n := nfunc(xi, eta)
			for i := 0; i < 12; i++ {
				for j := 0; j < 12; j++ {
					k[i][j] += w * d * (nxx[i]*nxx[j] + nyy[i]*nyy[j] +
						nu*(nxx[i]*nyy[j]+nyy[i]*nxx[j]) +
						2*(1-nu)*nxy[i]*nxy[j])
					m[i][j] += w * rhoH * n[i] * n[j]
				}
			}
		}
	}
	return k, m
}

// assemble builds the constrained global matrices.
func (p *PlateFEM) assemble() (*linalg.Dense, *linalg.Dense, error) {
	nnx, nny := p.Nx+1, p.Ny+1
	ndof := 3 * nnx * nny
	kG := linalg.NewDense(ndof, ndof)
	mG := linalg.NewDense(ndof, ndof)
	ax := p.A / float64(p.Nx) / 2
	by := p.B / float64(p.Ny) / 2
	h := p.Thickness
	d := p.Material.E * h * h * h / (12 * (1 - p.Material.Nu*p.Material.Nu))
	rhoH := p.Material.Rho*h + p.MassLoadKgM2
	ke, me := acmElement(ax, by, d, p.Material.Nu, rhoH)

	nodeID := func(i, j int) int { return j*nnx + i }
	for ej := 0; ej < p.Ny; ej++ {
		for ei := 0; ei < p.Nx; ei++ {
			nodes := [4]int{
				nodeID(ei, ej), nodeID(ei+1, ej),
				nodeID(ei+1, ej+1), nodeID(ei, ej+1),
			}
			for a := 0; a < 4; a++ {
				for da := 0; da < 3; da++ {
					ga := 3*nodes[a] + da
					for b := 0; b < 4; b++ {
						for db := 0; db < 3; db++ {
							gb := 3*nodes[b] + db
							kG.Add(ga, gb, ke[3*a+da][3*b+db])
							mG.Add(ga, gb, me[3*a+da][3*b+db])
						}
					}
				}
			}
		}
	}
	// Point masses on the w-DOF of the nearest node.
	for _, pm := range p.PointMasses {
		if pm.Kg <= 0 {
			return nil, nil, fmt.Errorf("mech: point mass must be positive")
		}
		if pm.X < 0 || pm.X > p.A || pm.Y < 0 || pm.Y > p.B {
			return nil, nil, fmt.Errorf("mech: point mass at (%g,%g) off plate", pm.X, pm.Y)
		}
		i := int(math.Round(pm.X / p.A * float64(p.Nx)))
		j := int(math.Round(pm.Y / p.B * float64(p.Ny)))
		mG.Add(3*nodeID(i, j), 3*nodeID(i, j), pm.Kg)
	}

	// Boundary conditions: edge order x-, x+, y-, y+.
	fixed := map[int]bool{}
	mark := func(i, j, edge int) {
		id := nodeID(i, j)
		if p.EdgesSupported[edge] || p.EdgesClamped[edge] {
			fixed[3*id] = true
		}
		if p.EdgesClamped[edge] {
			fixed[3*id+1] = true
			fixed[3*id+2] = true
		}
	}
	for j := 0; j < nny; j++ {
		mark(0, j, 0)
		mark(nnx-1, j, 1)
	}
	for i := 0; i < nnx; i++ {
		mark(i, 0, 2)
		mark(i, nny-1, 3)
	}
	if len(fixed) == 0 {
		return nil, nil, fmt.Errorf("mech: free-free plates not supported (no constrained DOF)")
	}
	keep := make([]int, 0, ndof)
	for dd := 0; dd < ndof; dd++ {
		if !fixed[dd] {
			keep = append(keep, dd)
		}
	}
	kr := linalg.NewDense(len(keep), len(keep))
	mr := linalg.NewDense(len(keep), len(keep))
	for i, di := range keep {
		for j, dj := range keep {
			kr.Set(i, j, kG.At(di, dj))
			mr.Set(i, j, mG.At(di, dj))
		}
	}
	return kr, mr, nil
}

// ModalFrequencies returns the first nModes natural frequencies in Hz.
func (p *PlateFEM) ModalFrequencies(nModes int) ([]float64, error) {
	kr, mr, err := p.assemble()
	if err != nil {
		return nil, err
	}
	vals, _, err := linalg.EigenGeneral(kr, mr, 1e-10, 300)
	if err != nil {
		return nil, err
	}
	if nModes > len(vals) {
		nModes = len(vals)
	}
	out := make([]float64, 0, nModes)
	for _, lam := range vals[:nModes] {
		if lam < 0 {
			lam = 0
		}
		out = append(out, math.Sqrt(lam)/(2*math.Pi))
	}
	return out, nil
}

// FundamentalHz returns the first natural frequency.
func (p *PlateFEM) FundamentalHz() (float64, error) {
	f, err := p.ModalFrequencies(1)
	if err != nil {
		return 0, err
	}
	if len(f) == 0 {
		return 0, fmt.Errorf("mech: no flexible modes")
	}
	return f[0], nil
}

// BaseModes returns the first nModes base-excitation modes of the plate:
// mass-normalised translational shapes sampled on the node grid (row-major
// (Nx+1)×(Ny+1) flattened) with participation factors — the input
// vibration.DistributedRandomRMS needs for full-board random response.
func (p *PlateFEM) BaseModes(nModes int) ([]DistMode, error) {
	kr, mr, keep, err := p.assembleWithMap()
	if err != nil {
		return nil, err
	}
	vals, vecs, err := linalg.EigenGeneral(kr, mr, 1e-10, 300)
	if err != nil {
		return nil, err
	}
	if nModes > len(vals) {
		nModes = len(vals)
	}
	nn := (p.Nx + 1) * (p.Ny + 1)
	out := make([]DistMode, 0, nModes)
	for j := 0; j < nModes; j++ {
		lam := vals[j]
		if lam < 0 {
			lam = 0
		}
		phi := make([]float64, len(keep))
		for i := range keep {
			phi[i] = vecs.At(i, j)
		}
		gamma := 0.0
		for i := range keep {
			for l, dl := range keep {
				if dl%3 != 0 {
					continue // rotational DOF carry no base influence
				}
				gamma += phi[i] * mr.At(i, l)
			}
		}
		shape := make([]float64, nn)
		for i, d := range keep {
			if d%3 == 0 {
				shape[d/3] = phi[i]
			}
		}
		out = append(out, DistMode{
			FreqHz:        math.Sqrt(lam) / (2 * math.Pi),
			Shape:         shape,
			Participation: gamma,
		})
	}
	return out, nil
}

// assembleWithMap mirrors assemble but also returns the retained-DOF map.
func (p *PlateFEM) assembleWithMap() (*linalg.Dense, *linalg.Dense, []int, error) {
	// Reproduce assemble's constraint logic while capturing `keep`.
	kr, mr, err := p.assemble()
	if err != nil {
		return nil, nil, nil, err
	}
	// Rebuild the keep map the same way assemble does.
	nnx, nny := p.Nx+1, p.Ny+1
	ndof := 3 * nnx * nny
	nodeID := func(i, j int) int { return j*nnx + i }
	fixed := map[int]bool{}
	mark := func(i, j, edge int) {
		id := nodeID(i, j)
		if p.EdgesSupported[edge] || p.EdgesClamped[edge] {
			fixed[3*id] = true
		}
		if p.EdgesClamped[edge] {
			fixed[3*id+1] = true
			fixed[3*id+2] = true
		}
	}
	for j := 0; j < nny; j++ {
		mark(0, j, 0)
		mark(nnx-1, j, 1)
	}
	for i := 0; i < nnx; i++ {
		mark(i, 0, 2)
		mark(i, nny-1, 3)
	}
	keep := make([]int, 0, ndof)
	for d := 0; d < ndof; d++ {
		if !fixed[d] {
			keep = append(keep, d)
		}
	}
	return kr, mr, keep, nil
}
