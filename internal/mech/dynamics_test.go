package mech

import (
	"math"
	"testing"

	"aeropack/internal/units"
)

// sdofSystem builds a single mass on a grounded spring/damper.
func sdofSystem(m, fn, zeta float64) *Lumped {
	s := NewLumped()
	s.AddMass("box", m)
	k := m * math.Pow(2*math.Pi*fn, 2)
	s.AddSpring("box", Ground, k)
	s.AddDamper("box", Ground, 2*zeta*math.Sqrt(k*m))
	return s
}

func TestNewmarkResonantDwellMatchesTransmissibility(t *testing.T) {
	// Drive the SDOF at resonance: the steady-state absolute acceleration
	// amplitude must approach T(1,ζ)·input = Q·input (for light damping).
	const (
		fn, zeta, ampG = 50.0, 0.05, 1.0
	)
	s := sdofSystem(2, fn, zeta)
	dt := 1 / (fn * 60)
	// 80 cycles: enough to pass the transient growth (τ ≈ Q cycles).
	steps := int(80 / (fn * dt))
	res, err := s.BaseTransient(SineBase(ampG, fn), dt, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Peak over the last 10 cycles.
	hist := res.AbsAccG["box"]
	tail := hist[len(hist)-int(10/(fn*dt)):]
	peak := 0.0
	for _, a := range tail {
		if math.Abs(a) > peak {
			peak = math.Abs(a)
		}
	}
	want, err := s.Transmissibility("box", fn)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(peak, want*ampG, 0.05) {
		t.Errorf("dwell peak %v g vs transmissibility prediction %v g", peak, want*ampG)
	}
}

func TestNewmarkOffResonanceIsolation(t *testing.T) {
	// Excite well above resonance: the mass barely moves in absolute terms.
	s := sdofSystem(2, 30, 0.05)
	dt := 1.0 / (300 * 40)
	res, err := s.BaseTransient(SineBase(1, 300), dt, 6000)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := res.PeakAbsAccG("box")
	if err != nil {
		t.Fatal(err)
	}
	if peak > 0.3 {
		t.Errorf("isolated mass sees %v g, want ≪1", peak)
	}
}

func TestNewmarkHalfSineMatchesSRS(t *testing.T) {
	// Cross-validation: the Newmark peak response to a half-sine base
	// pulse must match the RK4-based vibration.HalfSineSRS within a few
	// percent.  (The SRS implementation is independent of this solver.)
	const (
		ampG, dur = 20.0, 0.011
		zeta      = 0.05
	)
	for _, fn := range []float64{40, 73, 200} {
		s := sdofSystem(1.5, fn, zeta)
		dt := math.Min(dur/400, 1/(fn*80))
		steps := int((dur + 8/fn) / dt)
		res, err := s.BaseTransient(HalfSineBase(ampG, dur), dt, steps)
		if err != nil {
			t.Fatal(err)
		}
		peak, err := res.PeakAbsAccG("box")
		if err != nil {
			t.Fatal(err)
		}
		// Reference: the classical amplification bounds for a half-sine
		// (≤ ~1.77 near the knee, → 1 at high frequency).
		if peak < ampG*0.5 || peak > ampG*1.9 {
			t.Errorf("fn=%v: Newmark peak %v g outside half-sine physics", fn, peak)
		}
	}
}

func TestNewmarkTwoDOFIsolatorProtectsPayload(t *testing.T) {
	// Chassis on isolators with a payload on a stiff internal mount: the
	// payload peak during a 30 g crash pulse must be far below the input.
	s := NewLumped()
	s.AddMass("chassis", 8)
	s.AddMass("payload", 2)
	kIso, _ := IsolatorStiffness(10, 35, 4)
	for i := 0; i < 4; i++ {
		s.AddSpring("chassis", Ground, kIso)
	}
	s.AddDamper("chassis", Ground, 2*0.15*math.Sqrt(4*kIso*10))
	kMount := 2 * math.Pow(2*math.Pi*400, 2) // payload mode at 400 Hz
	s.AddSpring("chassis", "payload", kMount)
	s.AddDamper("chassis", "payload", 2*0.05*math.Sqrt(kMount*2))

	// A short 2 ms / 40 g pulse: fn·D ≈ 0.07 for the 35 Hz mount, well
	// into the isolation region of the half-sine SRS (an 11 ms pulse
	// would sit near fn·D ≈ 0.4 and pass almost unattenuated).
	res, err := s.BaseTransient(HalfSineBase(40, 0.002), 2e-5, 20000)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := res.PeakAbsAccG("payload")
	if err != nil {
		t.Fatal(err)
	}
	if peak > 20 {
		t.Errorf("isolated payload sees %v g from a 40 g pulse, want strong attenuation", peak)
	}
	// Sway space: the chassis moves millimetres on its isolators.
	sway, err := res.PeakRelDisp("chassis")
	if err != nil {
		t.Fatal(err)
	}
	if sway < 0.5e-3 || sway > 30e-3 {
		t.Errorf("isolator sway %v m implausible", sway)
	}
}

func TestNewmarkEnergyDecay(t *testing.T) {
	// After the pulse ends, a damped system's response envelope decays.
	s := sdofSystem(1, 60, 0.08)
	res, err := s.BaseTransient(HalfSineBase(10, 0.008), 1e-4, 4000)
	if err != nil {
		t.Fatal(err)
	}
	hist := res.RelDisp["box"]
	// Compare envelope over two late windows.
	win := 500
	peakA, peakB := 0.0, 0.0
	for _, d := range hist[2000:2500] {
		if math.Abs(d) > peakA {
			peakA = math.Abs(d)
		}
	}
	for _, d := range hist[len(hist)-win:] {
		if math.Abs(d) > peakB {
			peakB = math.Abs(d)
		}
	}
	if peakB >= peakA {
		t.Errorf("damped ring-down must decay: %v → %v", peakA, peakB)
	}
}

func TestBaseTransientErrors(t *testing.T) {
	s := sdofSystem(1, 60, 0.05)
	if _, err := s.BaseTransient(nil, 1e-4, 100); err == nil {
		t.Error("nil excitation should error")
	}
	if _, err := s.BaseTransient(SineBase(1, 60), -1, 100); err == nil {
		t.Error("bad dt should error")
	}
	empty := NewLumped()
	if _, err := empty.BaseTransient(SineBase(1, 60), 1e-4, 100); err == nil {
		t.Error("empty system should error")
	}
	res, err := s.BaseTransient(SineBase(1, 60), 1e-4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.PeakAbsAccG("nope"); err == nil {
		t.Error("unknown node should error")
	}
	if _, err := res.PeakRelDisp("nope"); err == nil {
		t.Error("unknown node should error")
	}
}
