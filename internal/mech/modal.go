package mech

import (
	"fmt"
	"math"

	"aeropack/internal/linalg"
)

// DistMode is one base-excitation mode of a distributed structure: the
// natural frequency, the mass-normalised deflection shape sampled at the
// structural nodes, and the modal participation factor Γ = φᵀ·M·ι for the
// rigid-body influence vector ι (unit translation).
type DistMode struct {
	FreqHz        float64
	Shape         []float64 // translational DOF per node (0..Elements)
	Participation float64
}

// BaseModes returns the first nModes base-excitation modes of the beam,
// ready for modal-superposition response analysis (the level of rigour
// Steinberg's single-mode approximation upgrades to when a board has
// closely spaced modes).
func (b *Beam) BaseModes(nModes int) ([]DistMode, error) {
	kr, mr, keep, err := b.assemble()
	if err != nil {
		return nil, err
	}
	vals, vecs, err := linalg.EigenGeneral(kr, mr, 1e-11, 300)
	if err != nil {
		return nil, err
	}
	if nModes > len(vals) {
		nModes = len(vals)
	}
	nn := b.Elements + 1
	out := make([]DistMode, 0, nModes)
	for j := 0; j < nModes; j++ {
		lam := vals[j]
		if lam < 0 {
			lam = 0
		}
		// Influence vector ι: unit base translation maps to 1 on every
		// retained translational DOF (even global indices), 0 on
		// rotations; Γ = φᵀ·M·ι.
		phi := make([]float64, len(keep))
		for i := range keep {
			phi[i] = vecs.At(i, j)
		}
		gamma := 0.0
		for i := range keep {
			for l, dl := range keep {
				if dl%2 != 0 {
					continue
				}
				gamma += phi[i] * mr.At(i, l)
			}
		}
		// Sample the translational shape at every node (fixed nodes → 0).
		shape := make([]float64, nn)
		for i, d := range keep {
			if d%2 == 0 {
				shape[d/2] = phi[i]
			}
		}
		out = append(out, DistMode{
			FreqHz:        math.Sqrt(lam) / (2 * math.Pi),
			Shape:         shape,
			Participation: gamma,
		})
	}
	return out, nil
}

// EffectiveModalMass returns Γ² for a mass-normalised mode — the fraction
// of structural mass the mode carries under base excitation.  Summed over
// all modes it equals the total (translational) mass.
func (m DistMode) EffectiveModalMass() float64 {
	return m.Participation * m.Participation
}

// ModalMassFraction reports the cumulative effective mass fraction the
// given modes capture of totalMass — the standard ≥90% completeness check
// for modal-superposition analyses.
func ModalMassFraction(modes []DistMode, totalMass float64) (float64, error) {
	if totalMass <= 0 {
		return 0, fmt.Errorf("mech: total mass must be positive")
	}
	sum := 0.0
	for _, m := range modes {
		sum += m.EffectiveModalMass()
	}
	return sum / totalMass, nil
}
