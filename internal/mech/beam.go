package mech

import (
	"fmt"
	"math"

	"aeropack/internal/linalg"
	"aeropack/internal/materials"
)

// Support enumerates beam end conditions.
type Support int

// Beam end conditions.
const (
	Free Support = iota
	Pinned
	Clamped
)

// Beam is a transversely vibrating Euler–Bernoulli beam discretised with
// 2-node Hermitian elements (2 DOF/node: deflection w and rotation θ).
// It models chassis rails, card edges and wedge-lock-supported board
// strips in the mechanical design flow.
type Beam struct {
	Length   float64 // m
	EI       float64 // bending stiffness, N·m²
	RhoA     float64 // mass per length, kg/m
	Elements int     // number of elements (≥2)
	LeftBC   Support
	RightBC  Support
	// PointMasses maps node index (0..Elements) to added mass, kg —
	// mounted components.
	PointMasses map[int]float64
}

// NewBeamRect builds a beam from a rectangular cross-section b×h of the
// given material.
func NewBeamRect(mat materials.Material, length, width, height float64, elements int) (*Beam, error) {
	if length <= 0 || width <= 0 || height <= 0 {
		return nil, fmt.Errorf("mech: beam dimensions must be positive")
	}
	if elements < 2 {
		return nil, fmt.Errorf("mech: need ≥2 elements")
	}
	inertia := width * height * height * height / 12
	return &Beam{
		Length:   length,
		EI:       mat.E * inertia,
		RhoA:     mat.Rho * width * height,
		Elements: elements,
		LeftBC:   Pinned,
		RightBC:  Pinned,
	}, nil
}

// assemble builds the global stiffness and consistent-mass matrices with
// boundary conditions applied by DOF elimination; it returns the retained
// DOF map (global DOF → matrix row).
func (b *Beam) assemble() (*linalg.Dense, *linalg.Dense, []int, error) {
	if b.Elements < 2 || b.Length <= 0 || b.EI <= 0 || b.RhoA <= 0 {
		return nil, nil, nil, fmt.Errorf("mech: invalid beam definition")
	}
	ne := b.Elements
	nn := ne + 1
	ndof := 2 * nn
	l := b.Length / float64(ne)
	k := linalg.NewDense(ndof, ndof)
	m := linalg.NewDense(ndof, ndof)

	// Hermitian beam element matrices.
	ke := [4][4]float64{
		{12, 6 * l, -12, 6 * l},
		{6 * l, 4 * l * l, -6 * l, 2 * l * l},
		{-12, -6 * l, 12, -6 * l},
		{6 * l, 2 * l * l, -6 * l, 4 * l * l},
	}
	me := [4][4]float64{
		{156, 22 * l, 54, -13 * l},
		{22 * l, 4 * l * l, 13 * l, -3 * l * l},
		{54, 13 * l, 156, -22 * l},
		{-13 * l, -3 * l * l, -22 * l, 4 * l * l},
	}
	kf := b.EI / (l * l * l)
	mf := b.RhoA * l / 420
	for e := 0; e < ne; e++ {
		dofs := [4]int{2 * e, 2*e + 1, 2*e + 2, 2*e + 3}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				k.Add(dofs[i], dofs[j], kf*ke[i][j])
				m.Add(dofs[i], dofs[j], mf*me[i][j])
			}
		}
	}
	for node, pm := range b.PointMasses {
		if node < 0 || node >= nn {
			return nil, nil, nil, fmt.Errorf("mech: point mass node %d out of range", node)
		}
		m.Add(2*node, 2*node, pm)
	}

	// Fixed DOFs per end condition.
	fixed := map[int]bool{}
	switch b.LeftBC {
	case Pinned:
		fixed[0] = true
	case Clamped:
		fixed[0], fixed[1] = true, true
	}
	switch b.RightBC {
	case Pinned:
		fixed[2*(nn-1)] = true
	case Clamped:
		fixed[2*(nn-1)], fixed[2*(nn-1)+1] = true, true
	}
	keep := make([]int, 0, ndof)
	for d := 0; d < ndof; d++ {
		if !fixed[d] {
			keep = append(keep, d)
		}
	}
	kr := linalg.NewDense(len(keep), len(keep))
	mr := linalg.NewDense(len(keep), len(keep))
	for i, di := range keep {
		for j, dj := range keep {
			kr.Set(i, j, k.At(di, dj))
			mr.Set(i, j, m.At(di, dj))
		}
	}
	return kr, mr, keep, nil
}

// ModalFrequencies returns the first nModes natural frequencies in Hz.
func (b *Beam) ModalFrequencies(nModes int) ([]float64, error) {
	kr, mr, _, err := b.assemble()
	if err != nil {
		return nil, err
	}
	vals, _, err := linalg.EigenGeneral(kr, mr, 1e-11, 300)
	if err != nil {
		return nil, err
	}
	if nModes > len(vals) {
		nModes = len(vals)
	}
	out := make([]float64, 0, nModes)
	for _, lam := range vals[:nModes] {
		if lam < 0 {
			lam = 0
		}
		out = append(out, math.Sqrt(lam)/(2*math.Pi))
	}
	return out, nil
}

// FundamentalHz returns the first natural frequency.
func (b *Beam) FundamentalHz() (float64, error) {
	f, err := b.ModalFrequencies(1)
	if err != nil {
		return 0, err
	}
	if len(f) == 0 {
		return 0, fmt.Errorf("mech: no flexible modes")
	}
	return f[0], nil
}

// AnalyticBeamFreq returns the classical closed-form natural frequency
// (Hz) of mode n for the given end conditions — the verification reference
// for the FEM.  Supported pairs: Pinned-Pinned, Clamped-Clamped,
// Clamped-Free.
func AnalyticBeamFreq(ei, rhoA, length float64, leftBC, rightBC Support, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("mech: mode number must be ≥1")
	}
	var betaL float64
	switch {
	case leftBC == Pinned && rightBC == Pinned:
		betaL = float64(n) * math.Pi
	case leftBC == Clamped && rightBC == Clamped:
		roots := []float64{4.73004, 7.85320, 10.9956, 14.1372, 17.2788}
		if n <= len(roots) {
			betaL = roots[n-1]
		} else {
			betaL = (2*float64(n) + 1) * math.Pi / 2
		}
	case leftBC == Clamped && rightBC == Free:
		roots := []float64{1.87510, 4.69409, 7.85476, 10.9955, 14.1372}
		if n <= len(roots) {
			betaL = roots[n-1]
		} else {
			betaL = (2*float64(n) - 1) * math.Pi / 2
		}
	default:
		return 0, fmt.Errorf("mech: unsupported end-condition pair for the analytic formula")
	}
	w := betaL * betaL * math.Sqrt(ei/(rhoA*math.Pow(length, 4)))
	return w / (2 * math.Pi), nil
}
