package mech

import (
	"fmt"
	"math"

	"aeropack/internal/linalg"
	"aeropack/internal/units"
)

// DynResult is a base-excitation time history for a lumped system.
type DynResult struct {
	Times []float64
	// RelDisp[node] is displacement relative to the base, m.
	RelDisp map[string][]float64
	// AbsAccG[node] is absolute acceleration in g.
	AbsAccG map[string][]float64
}

// PeakAbsAccG returns the peak absolute acceleration (g) seen by a node.
func (r *DynResult) PeakAbsAccG(node string) (float64, error) {
	hist, ok := r.AbsAccG[node]
	if !ok {
		return 0, fmt.Errorf("mech: unknown node %q", node)
	}
	peak := 0.0
	for _, a := range hist {
		if a < 0 {
			a = -a
		}
		if a > peak {
			peak = a
		}
	}
	return peak, nil
}

// PeakRelDisp returns the peak relative displacement (m) of a node —
// the quantity isolator sway space is sized against.
func (r *DynResult) PeakRelDisp(node string) (float64, error) {
	hist, ok := r.RelDisp[node]
	if !ok {
		return 0, fmt.Errorf("mech: unknown node %q", node)
	}
	peak := 0.0
	for _, d := range hist {
		if d < 0 {
			d = -d
		}
		if d > peak {
			peak = d
		}
	}
	return peak, nil
}

// BaseTransient integrates the system's response to a prescribed base
// acceleration üb(t) (m/s²) using the unconditionally stable Newmark
// average-acceleration method on the relative-coordinate equation
// M·ÿ + C·ẏ + K·y = −M·1·üb.  The absolute acceleration reported is
// ÿ + üb, converted to g.
func (s *Lumped) BaseTransient(baseAccel func(t float64) float64, dt float64, steps int) (*DynResult, error) {
	if baseAccel == nil || dt <= 0 || steps <= 0 {
		return nil, fmt.Errorf("mech: transient needs an excitation, positive dt and steps")
	}
	k, c, m, _, _, err := s.matrices()
	if err != nil {
		return nil, err
	}
	n := len(s.labels)
	const (
		gamma = 0.5
		beta  = 0.25
	)
	// Effective stiffness Keff = K + γ/(βΔt)·C + 1/(βΔt²)·M.
	keff := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			keff.Set(i, j, k.At(i, j)+gamma/(beta*dt)*c.At(i, j)+1/(beta*dt*dt)*m.At(i, j))
		}
	}
	lu, err := linalg.FactorLU(keff)
	if err != nil {
		return nil, fmt.Errorf("mech: effective stiffness singular: %w", err)
	}

	y := make([]float64, n)  // relative displacement
	yd := make([]float64, n) // relative velocity
	ya := make([]float64, n) // relative acceleration
	// Initial acceleration from equilibrium at rest: M·ÿ = −M·1·üb(0).
	ub0 := baseAccel(0)
	for i := range ya {
		ya[i] = -ub0
	}

	res := &DynResult{
		RelDisp: make(map[string][]float64, n),
		AbsAccG: make(map[string][]float64, n),
	}
	record := func(tm, ub float64) {
		res.Times = append(res.Times, tm)
		for i, name := range s.labels {
			res.RelDisp[name] = append(res.RelDisp[name], y[i])
			res.AbsAccG[name] = append(res.AbsAccG[name], units.ToGLevel(ya[i]+ub))
		}
	}
	record(0, ub0)

	rhs := make([]float64, n)
	for step := 1; step <= steps; step++ {
		tm := float64(step) * dt
		ub := baseAccel(tm)
		// Newmark predictors folded into the RHS:
		// Keff·y₁ = F₁ + M·(y/βΔt² + ẏ/βΔt + (1/2β−1)·ÿ)
		//          + C·(γ/βΔt·y + (γ/β−1)·ẏ + Δt(γ/2β−1)·ÿ).
		for i := 0; i < n; i++ {
			fm := y[i]/(beta*dt*dt) + yd[i]/(beta*dt) + (1/(2*beta)-1)*ya[i]
			fc := gamma/(beta*dt)*y[i] + (gamma/beta-1)*yd[i] + dt*(gamma/(2*beta)-1)*ya[i]
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += m.At(i, j)*fm + c.At(i, j)*fc
			}
			// External force: −M·1·üb.
			f := 0.0
			for j := 0; j < n; j++ {
				f -= m.At(i, j) * ub
			}
			rhs[i] = f + sum
		}
		y1 := lu.Solve(rhs)
		// Correctors.
		for i := 0; i < n; i++ {
			ya1 := (y1[i]-y[i])/(beta*dt*dt) - yd[i]/(beta*dt) - (1/(2*beta)-1)*ya[i]
			yd1 := yd[i] + dt*((1-gamma)*ya[i]+gamma*ya1)
			y[i], yd[i], ya[i] = y1[i], yd1, ya1
		}
		record(tm, ub)
	}
	return res, nil
}

// HalfSineBase returns a base-acceleration function for a half-sine shock
// pulse of amplitude ampG (g) and duration durS (s).
func HalfSineBase(ampG, durS float64) func(t float64) float64 {
	return func(t float64) float64 {
		if t < 0 || t > durS {
			return 0
		}
		return units.GLevel(ampG) * math.Sin(math.Pi*t/durS)
	}
}

// SineBase returns a steady sinusoidal base acceleration of amplitude
// ampG (g) at frequency f (Hz) — for resonance-dwell simulations.
func SineBase(ampG, f float64) func(t float64) float64 {
	w := 2 * math.Pi * f
	return func(t float64) float64 {
		return units.GLevel(ampG) * math.Sin(w*t)
	}
}
