package mech

import (
	"math"
	"testing"

	"aeropack/internal/materials"
	"aeropack/internal/units"
)

func TestPlateFEMMatchesAnalyticSSSS(t *testing.T) {
	fr4 := materials.FR4
	ref := &Plate{A: 0.16, B: 0.10, Thickness: 1.6e-3, Material: fr4, Edges: SSSS}
	want, err := ref.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(got, want, 0.02) {
		t.Errorf("FEM f1 = %v vs analytic %v", got, want)
	}
	// Second mode against the closed-form (2,1) mode.
	f21, err := ref.ModeHz(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := p.ModalFrequencies(2)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(fs[1], f21, 0.03) {
		t.Errorf("FEM f2 = %v vs analytic (2,1) %v", fs[1], f21)
	}
}

func TestPlateFEMConvergesFromBelow(t *testing.T) {
	// The ACM element is non-conforming: frequencies converge to the exact
	// value from below, monotonically with refinement.
	fr4 := materials.FR4
	ref := &Plate{A: 0.16, B: 0.10, Thickness: 1.6e-3, Material: fr4, Edges: SSSS}
	exact, _ := ref.FundamentalHz()
	prev := 0.0
	for _, n := range []int{4, 6, 8} {
		p, _ := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, n, n)
		f, err := p.FundamentalHz()
		if err != nil {
			t.Fatal(err)
		}
		if f <= prev {
			t.Fatalf("refinement must raise the frequency: %v after %v", f, prev)
		}
		if f >= exact {
			t.Fatalf("ACM must converge from below: %v vs exact %v", f, exact)
		}
		prev = f
	}
}

func TestPlateFEMClampedStiffer(t *testing.T) {
	fr4 := materials.FR4
	ss, _ := NewPlateFEM(0.12, 0.10, 1.6e-3, fr4, 6, 6)
	fss, err := ss.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := NewPlateFEM(0.12, 0.10, 1.6e-3, fr4, 6, 6)
	cc.EdgesClamped = [4]bool{true, true, true, true}
	fcc, err := cc.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	if fcc <= fss {
		t.Errorf("clamped plate %v must beat simply supported %v", fcc, fss)
	}
	// Clamped/SSSS frequency ratio for a rectangular plate ≈ 1.8–2.1.
	ratio := fcc / fss
	if ratio < 1.6 || ratio > 2.3 {
		t.Errorf("CCCC/SSSS ratio = %v, want ≈1.9", ratio)
	}
}

func TestPlateFEMWedgeLockEdges(t *testing.T) {
	// Two opposite edges clamped (wedge locks), the others free: the
	// plate behaves like a clamped-clamped beam strip — finite frequency,
	// below the all-edges-supported case of the same plate.
	fr4 := materials.FR4
	wl, _ := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, 6, 6)
	wl.EdgesSupported = [4]bool{false, false, false, false}
	wl.EdgesClamped = [4]bool{true, true, false, false}
	f, err := wl.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 {
		t.Fatal("wedge-locked plate must have a flexible mode")
	}
	all, _ := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, 6, 6)
	fAll, _ := all.FundamentalHz()
	// Two free edges soften the plate relative to four supported edges…
	// unless clamping stiffens more than the free edges soften; just check
	// both are plausible board frequencies.
	if f < 50 || f > 3000 || fAll < 50 || fAll > 3000 {
		t.Errorf("frequencies implausible: wedge %v, SSSS %v", f, fAll)
	}
}

func TestPlateFEMPointMassLowersFrequency(t *testing.T) {
	fr4 := materials.FR4
	bare, _ := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, 6, 6)
	f0, err := bare.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	// A 100 g transformer at the centre.
	loaded, _ := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, 6, 6)
	loaded.PointMasses = []PointMass{{X: 0.08, Y: 0.05, Kg: 0.1}}
	f1, err := loaded.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	if f1 >= f0 {
		t.Errorf("centre mass must lower the mode: %v vs %v", f1, f0)
	}
	// The same mass near a supported corner barely matters.
	corner, _ := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, 6, 6)
	corner.PointMasses = []PointMass{{X: 0.01, Y: 0.01, Kg: 0.1}}
	f2, err := corner.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	if f2 <= f1 {
		t.Errorf("corner mass %v should hurt less than centre mass %v", f2, f1)
	}
	// Smeared mass load matches Plate's behaviour qualitatively.
	smeared, _ := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, 6, 6)
	smeared.MassLoadKgM2 = 3
	f3, _ := smeared.FundamentalHz()
	if f3 >= f0 {
		t.Error("smeared load must lower the mode")
	}
}

func TestPlateFEMValidation(t *testing.T) {
	fr4 := materials.FR4
	if _, err := NewPlateFEM(0, 0.1, 1e-3, fr4, 4, 4); err == nil {
		t.Error("zero dimension should error")
	}
	if _, err := NewPlateFEM(0.1, 0.1, 1e-3, fr4, 1, 4); err == nil {
		t.Error("too-coarse grid should error")
	}
	if _, err := NewPlateFEM(0.1, 0.1, 1e-3, materials.Material{}, 4, 4); err == nil {
		t.Error("empty material should error")
	}
	p, _ := NewPlateFEM(0.1, 0.1, 1e-3, fr4, 4, 4)
	p.PointMasses = []PointMass{{X: 5, Y: 5, Kg: 0.1}}
	if _, err := p.FundamentalHz(); err == nil {
		t.Error("off-plate mass should error")
	}
	p.PointMasses = []PointMass{{X: 0.05, Y: 0.05, Kg: -1}}
	if _, err := p.FundamentalHz(); err == nil {
		t.Error("negative mass should error")
	}
	free, _ := NewPlateFEM(0.1, 0.1, 1e-3, fr4, 4, 4)
	free.EdgesSupported = [4]bool{}
	if _, err := free.FundamentalHz(); err == nil {
		t.Error("free-free plate should error")
	}
}

func TestPlateFEMBaseModes(t *testing.T) {
	fr4 := materials.FR4
	p, _ := NewPlateFEM(0.16, 0.10, 1.6e-3, fr4, 6, 6)
	modes, err := p.BaseModes(4)
	if err != nil {
		t.Fatal(err)
	}
	// Frequencies agree with ModalFrequencies.
	freqs, _ := p.ModalFrequencies(4)
	for i := range modes {
		if !units.ApproxEqual(modes[i].FreqHz, freqs[i], 1e-9) {
			t.Errorf("mode %d frequency mismatch", i)
		}
	}
	// Mode 1 of an SSSS plate carries the lion's share of the mass:
	// (8/π²)² ≈ 0.657 of the total.
	total := (fr4.Rho*1.6e-3 + 0) * 0.16 * 0.10
	frac := modes[0].EffectiveModalMass() / total
	if frac < 0.5 || frac > 0.8 {
		t.Errorf("mode-1 effective mass fraction = %v, want ≈0.66", frac)
	}
	// Supported edges have zero shape; the interior peaks at the centre.
	shape := modes[0].Shape
	nnx := 7
	centre := math.Abs(shape[3*nnx+3])
	if centre == 0 {
		t.Fatal("centre shape must be nonzero")
	}
	for i := 0; i < nnx; i++ {
		if shape[i] != 0 || shape[6*nnx+i] != 0 {
			t.Error("supported edges must have zero deflection")
		}
	}
	for _, v := range shape {
		if math.Abs(v) > centre+1e-12 {
			t.Error("mode 1 must peak at the centre")
		}
	}
}

func TestPlateFEMRandomResponseIntegration(t *testing.T) {
	// Full-board random response: the plate's modal data feeds the
	// modal-superposition machinery; the centre response lands near the
	// classical Γφ·SDOF single-mode estimate.
	fr4 := materials.FR4
	p, _ := NewPlateFEM(0.16, 0.10, 2e-3, fr4, 6, 6)
	p.MassLoadKgM2 = 2
	modes, err := p.BaseModes(5)
	if err != nil {
		t.Fatal(err)
	}
	if modes[0].FreqHz < 100 || modes[0].FreqHz > 800 {
		t.Fatalf("loaded board f1 = %v Hz implausible", modes[0].FreqHz)
	}
	// Amplification of the centre: Γ₁·φ₁(centre) ≈ (4/π)² ≈ 1.62 for a
	// uniform SSSS plate.
	nnx := 7
	amp := math.Abs(modes[0].Participation * modes[0].Shape[3*nnx+3])
	if amp < 1.3 || amp > 1.95 {
		t.Errorf("plate mode-1 amplification = %v, want ≈1.62", amp)
	}
}
