package mech

import (
	"math"
	"testing"

	"aeropack/internal/materials"
	"aeropack/internal/units"
)

func TestSDOFNaturalFreq(t *testing.T) {
	// k = 4π²·m → f = 1 Hz.
	m := 2.5
	k := 4 * math.Pi * math.Pi * m
	if got := NaturalFreqHz(k, m); !units.ApproxEqual(got, 1, 1e-12) {
		t.Errorf("fn = %v", got)
	}
	if NaturalFreqHz(-1, 1) != 0 || NaturalFreqHz(1, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestSDOFTransmissibility(t *testing.T) {
	// At r ≪ 1: T → 1.  At resonance: T ≈ Q = 1/(2ζ).  At r = √2: T = 1.
	// Above: isolation (T < 1).
	zeta := 0.05
	if got := SDOFTransmissibility(0.01, zeta); !units.ApproxEqual(got, 1, 1e-3) {
		t.Errorf("low-freq T = %v", got)
	}
	q := SDOFTransmissibility(1, zeta)
	if !units.ApproxEqual(q, QFactor(zeta), 0.02) {
		t.Errorf("resonant T = %v, want ≈%v", q, QFactor(zeta))
	}
	if got := SDOFTransmissibility(math.Sqrt2, zeta); !units.ApproxEqual(got, 1, 0.01) {
		t.Errorf("crossover T = %v, want 1", got)
	}
	if got := SDOFTransmissibility(5, zeta); got >= 1 {
		t.Errorf("isolation region T = %v, want <1", got)
	}
}

func TestQFactor(t *testing.T) {
	if QFactor(0.05) != 10 {
		t.Errorf("Q = %v", QFactor(0.05))
	}
	if !math.IsInf(QFactor(0), 1) {
		t.Error("zero damping → infinite Q")
	}
}

func TestIsolatorStiffness(t *testing.T) {
	// 4 isolators placing a 6 kg IMU at 45 Hz.
	k, err := IsolatorStiffness(6, 45, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Verify round trip: total stiffness restores fn.
	if got := NaturalFreqHz(4*k, 6); !units.ApproxEqual(got, 45, 1e-9) {
		t.Errorf("round trip fn = %v", got)
	}
	if _, err := IsolatorStiffness(-1, 45, 4); err == nil {
		t.Error("bad inputs should error")
	}
}

func TestLumpedSDOFModal(t *testing.T) {
	s := NewLumped()
	if err := s.AddMass("box", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSpring("box", Ground, 2*4*math.Pi*math.Pi*100); err != nil {
		t.Fatal(err)
	}
	modes, err := s.Modal()
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 1 {
		t.Fatalf("expected 1 mode, got %d", len(modes))
	}
	if !units.ApproxEqual(modes[0].FreqHz, 10, 1e-9) {
		t.Errorf("fn = %v, want 10", modes[0].FreqHz)
	}
}

func TestLumpedTwoDOFModal(t *testing.T) {
	// Two equal masses, three equal springs (fixed-fixed chain):
	// ω₁ = √(k/m), ω₂ = √(3k/m).
	s := NewLumped()
	s.AddMass("m1", 1)
	s.AddMass("m2", 1)
	k := 1000.0
	s.AddSpring(Ground, "m1", k)
	s.AddSpring("m1", "m2", k)
	s.AddSpring("m2", Ground, k)
	modes, err := s.Modal()
	if err != nil {
		t.Fatal(err)
	}
	w1 := math.Sqrt(k / 1)
	w2 := math.Sqrt(3 * k / 1)
	if !units.ApproxEqual(modes[0].FreqHz, w1/(2*math.Pi), 1e-9) {
		t.Errorf("mode 1 = %v", modes[0].FreqHz)
	}
	if !units.ApproxEqual(modes[1].FreqHz, w2/(2*math.Pi), 1e-9) {
		t.Errorf("mode 2 = %v", modes[1].FreqHz)
	}
	// First mode: in-phase; second: out-of-phase.
	if modes[0].Shape["m1"]*modes[0].Shape["m2"] <= 0 {
		t.Error("first mode should be in phase")
	}
	if modes[1].Shape["m1"]*modes[1].Shape["m2"] >= 0 {
		t.Error("second mode should be out of phase")
	}
}

func TestLumpedTransmissibilityMatchesSDOF(t *testing.T) {
	// Numeric MDOF transmissibility must reproduce the closed-form SDOF
	// curve.
	m, fn, zeta := 3.0, 50.0, 0.08
	k := m * math.Pow(2*math.Pi*fn, 2)
	c := 2 * zeta * math.Sqrt(k*m)
	s := NewLumped()
	s.AddMass("eq", m)
	s.AddSpring("eq", Ground, k)
	s.AddDamper("eq", Ground, c)
	for _, r := range []float64{0.3, 0.9, 1.0, 1.5, 3} {
		got, err := s.Transmissibility("eq", r*fn)
		if err != nil {
			t.Fatal(err)
		}
		want := SDOFTransmissibility(r, zeta)
		if !units.ApproxEqual(got, want, 1e-6) {
			t.Errorf("T(r=%v) = %v, want %v", r, got, want)
		}
	}
}

func TestLumpedIsolationAttenuates(t *testing.T) {
	// The paper's IMU case: isolators filter high-frequency rack input.
	// Check >10× attenuation one decade above the mount frequency.
	s := NewLumped()
	s.AddMass("imu", 6)
	kIso, _ := IsolatorStiffness(6, 45, 4)
	for i := 0; i < 4; i++ {
		s.AddSpring("imu", Ground, kIso)
	}
	c := 2 * 0.1 * math.Sqrt(4*kIso*6)
	s.AddDamper("imu", Ground, c)
	tHigh, err := s.Transmissibility("imu", 450)
	if err != nil {
		t.Fatal(err)
	}
	if tHigh > 0.1 {
		t.Errorf("isolation at 10×fn = %v, want <0.1", tHigh)
	}
}

func TestLumpedSweep(t *testing.T) {
	s := NewLumped()
	s.AddMass("a", 1)
	s.AddSpring("a", Ground, 4e4)
	fs, ts, err := s.TransmissibilitySweep("a", 10, 1000, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 31 || len(ts) != 31 {
		t.Fatal("sweep sizes wrong")
	}
	if fs[0] != 10 || !units.ApproxEqual(fs[30], 1000, 1e-9) {
		t.Errorf("sweep endpoints %v %v", fs[0], fs[30])
	}
	if _, _, err := s.TransmissibilitySweep("a", -1, 10, 5); err == nil {
		t.Error("bad range should error")
	}
	if _, err := s.Transmissibility("nope", 10); err == nil {
		t.Error("unknown node should error")
	}
}

func TestLumpedErrors(t *testing.T) {
	s := NewLumped()
	if err := s.AddMass(Ground, 1); err == nil {
		t.Error("mass on ground should error")
	}
	if err := s.AddMass("a", -1); err == nil {
		t.Error("negative mass should error")
	}
	if err := s.AddSpring("a", "a", 10); err == nil {
		t.Error("self spring should error")
	}
	if err := s.AddSpring("a", "b", -1); err == nil {
		t.Error("negative stiffness should error")
	}
	if err := s.AddDamper("a", "a", 1); err == nil {
		t.Error("self damper should error")
	}
	if _, err := s.Modal(); err == nil {
		t.Error("massless node should error")
	}
	empty := NewLumped()
	if _, err := empty.Modal(); err == nil {
		t.Error("empty system should error")
	}
}

func TestBeamMatchesAnalytic(t *testing.T) {
	al := materials.Al6061
	for _, tc := range []struct {
		left, right Support
	}{
		{Pinned, Pinned},
		{Clamped, Clamped},
		{Clamped, Free},
	} {
		b, err := NewBeamRect(al, 0.3, 0.02, 0.004, 30)
		if err != nil {
			t.Fatal(err)
		}
		b.LeftBC, b.RightBC = tc.left, tc.right
		got, err := b.FundamentalHz()
		if err != nil {
			t.Fatal(err)
		}
		want, err := AnalyticBeamFreq(b.EI, b.RhoA, b.Length, tc.left, tc.right, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !units.ApproxEqual(got, want, 0.005) {
			t.Errorf("BC %v-%v: FEM %v vs analytic %v", tc.left, tc.right, got, want)
		}
	}
}

func TestBeamHigherModes(t *testing.T) {
	al := materials.Al6061
	b, _ := NewBeamRect(al, 0.3, 0.02, 0.004, 40)
	freqs, err := b.ModalFrequencies(3)
	if err != nil {
		t.Fatal(err)
	}
	// Pinned-pinned: f_n ∝ n².
	if !units.ApproxEqual(freqs[1]/freqs[0], 4, 0.01) {
		t.Errorf("mode ratio 2:1 = %v, want 4", freqs[1]/freqs[0])
	}
	if !units.ApproxEqual(freqs[2]/freqs[0], 9, 0.02) {
		t.Errorf("mode ratio 3:1 = %v, want 9", freqs[2]/freqs[0])
	}
}

func TestBeamPointMassLowersFrequency(t *testing.T) {
	al := materials.Al6061
	bare, _ := NewBeamRect(al, 0.3, 0.02, 0.004, 20)
	f0, err := bare.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := NewBeamRect(al, 0.3, 0.02, 0.004, 20)
	loaded.PointMasses = map[int]float64{10: 0.2} // mid-span transformer
	f1, err := loaded.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	if f1 >= f0 {
		t.Errorf("point mass must lower frequency: %v vs %v", f1, f0)
	}
	bad, _ := NewBeamRect(al, 0.3, 0.02, 0.004, 20)
	bad.PointMasses = map[int]float64{99: 1}
	if _, err := bad.FundamentalHz(); err == nil {
		t.Error("out-of-range point mass should error")
	}
}

func TestBeamValidation(t *testing.T) {
	al := materials.Al6061
	if _, err := NewBeamRect(al, 0, 0.02, 0.004, 10); err == nil {
		t.Error("zero length should error")
	}
	if _, err := NewBeamRect(al, 0.3, 0.02, 0.004, 1); err == nil {
		t.Error("too few elements should error")
	}
	if _, err := AnalyticBeamFreq(1, 1, 1, Free, Free, 1); err == nil {
		t.Error("free-free analytic not supported")
	}
	if _, err := AnalyticBeamFreq(1, 1, 1, Pinned, Pinned, 0); err == nil {
		t.Error("mode 0 should error")
	}
}

func TestPlateSSSSAnalytic(t *testing.T) {
	// Bare FR4 card 160×100×1.6 mm simply supported.
	p := &Plate{A: 0.16, B: 0.10, Thickness: 1.6e-3, Material: materials.FR4, Edges: SSSS}
	f, err := p.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against ModeHz(1,1).
	f11, err := p.ModeHz(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(f, f11, 1e-9) {
		t.Errorf("FundamentalHz %v != ModeHz(1,1) %v", f, f11)
	}
	// Magnitude: a bare Eurocard sits in the few-hundred-Hz range.
	if f < 100 || f > 1000 {
		t.Errorf("Eurocard fundamental = %v Hz, implausible", f)
	}
	// Higher modes ordered.
	f21, _ := p.ModeHz(2, 1)
	f12, _ := p.ModeHz(1, 2)
	if f21 <= f || f12 <= f {
		t.Error("higher modes must exceed the fundamental")
	}
}

func TestPlateEdgeStiffnessOrdering(t *testing.T) {
	mk := func(e PlateEdge) float64 {
		p := &Plate{A: 0.16, B: 0.10, Thickness: 1.6e-3, Material: materials.FR4, Edges: e}
		f, err := p.FundamentalHz()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	ssss := mk(SSSS)
	cccc := mk(CCCC)
	sssf := mk(SSSF)
	if !(cccc > ssss && ssss > sssf) {
		t.Errorf("edge ordering broken: CCCC=%v SSSS=%v SSSF=%v", cccc, ssss, sssf)
	}
}

func TestPlateMassLoadingLowersFrequency(t *testing.T) {
	bare := &Plate{A: 0.16, B: 0.10, Thickness: 1.6e-3, Material: materials.FR4, Edges: SSSS}
	loaded := *bare
	loaded.MassLoadKgM2 = 3 // populated board
	f0, _ := bare.FundamentalHz()
	f1, _ := loaded.FundamentalHz()
	if f1 >= f0 {
		t.Errorf("mass loading must lower frequency: %v vs %v", f1, f0)
	}
}

func TestPlateThicknessForFrequency(t *testing.T) {
	// The Ariane power-supply exercise: choose thickness to put the main
	// mode at 500 Hz.
	p := &Plate{A: 0.2, B: 0.15, Material: materials.FR4, Edges: CCCC, MassLoadKgM2: 2}
	thk, err := p.ThicknessForFrequency(500)
	if err != nil {
		t.Fatal(err)
	}
	p.Thickness = thk
	f, err := p.FundamentalHz()
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(f, 500, 1e-3) {
		t.Errorf("placed mode at %v Hz, want 500", f)
	}
	if _, err := p.ThicknessForFrequency(1e6); err == nil {
		t.Error("unachievable target should error")
	}
	if _, err := p.ThicknessForFrequency(-5); err == nil {
		t.Error("negative target should error")
	}
}

func TestPlateValidation(t *testing.T) {
	p := &Plate{}
	if _, err := p.FundamentalHz(); err == nil {
		t.Error("empty plate should error")
	}
	q := &Plate{A: 0.1, B: 0.1, Thickness: 1e-3, Material: materials.FR4, Edges: SSSS}
	if _, err := q.ModeHz(0, 1); err == nil {
		t.Error("mode 0 should error")
	}
	q.Edges = CCCC
	if _, err := q.ModeHz(2, 2); err == nil {
		t.Error("higher modes for CCCC should error")
	}
}

func TestOctaveRule(t *testing.T) {
	ratio, pass := OctaveRule(250, 600)
	if !pass || !units.ApproxEqual(ratio, 2.4, 1e-9) {
		t.Errorf("octave rule: ratio %v pass %v", ratio, pass)
	}
	if _, pass := OctaveRule(250, 400); pass {
		t.Error("1.6× should fail the octave rule")
	}
	if _, pass := OctaveRule(0, 400); !pass {
		t.Error("no carrier mode should pass trivially")
	}
}

func TestBaseModesParticipation(t *testing.T) {
	al := materials.Al6061
	b, _ := NewBeamRect(al, 0.3, 0.02, 0.004, 30)
	modes, err := b.BaseModes(6)
	if err != nil {
		t.Fatal(err)
	}
	// Frequencies match ModalFrequencies.
	freqs, _ := b.ModalFrequencies(6)
	for i := range modes {
		if !units.ApproxEqual(modes[i].FreqHz, freqs[i], 1e-9) {
			t.Errorf("mode %d frequency mismatch", i)
		}
	}
	// Pinned-pinned uniform beam: mode 1 carries ≈81% of the mass
	// (8/π²)²·… classical: Γ₁²/m_total = 8/π² ≈ 0.811 of the mass.
	total := b.RhoA * b.Length
	frac1 := modes[0].EffectiveModalMass() / total
	if !units.ApproxEqual(frac1, 0.811, 0.03) {
		t.Errorf("mode-1 effective mass fraction = %v, want ≈0.81", frac1)
	}
	// Antisymmetric modes (2, 4, …) have ≈zero participation.
	if math.Abs(modes[1].Participation) > 0.05*math.Abs(modes[0].Participation) {
		t.Errorf("mode 2 participation %v should vanish by symmetry", modes[1].Participation)
	}
	// Cumulative effective mass approaches the total.
	frac, err := ModalMassFraction(modes, total)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.85 || frac > 1.01 {
		t.Errorf("6-mode mass fraction = %v, want ≳0.9", frac)
	}
	if _, err := ModalMassFraction(modes, -1); err == nil {
		t.Error("bad total mass should error")
	}
}

func TestBaseModesShapeSampling(t *testing.T) {
	al := materials.Al6061
	b, _ := NewBeamRect(al, 0.3, 0.02, 0.004, 20)
	modes, err := b.BaseModes(1)
	if err != nil {
		t.Fatal(err)
	}
	shape := modes[0].Shape
	if len(shape) != 21 {
		t.Fatalf("shape should sample all %d nodes", 21)
	}
	// Pinned ends: zero deflection.
	if shape[0] != 0 || shape[20] != 0 {
		t.Error("pinned ends must be zero in the sampled shape")
	}
	// Mode 1 peaks at mid-span.
	mid := math.Abs(shape[10])
	for i, v := range shape {
		if math.Abs(v) > mid+1e-12 {
			t.Errorf("node %d exceeds mid-span deflection", i)
		}
	}
}

func TestStaticDeflection(t *testing.T) {
	// SDOF under 9 g: x = m·a/k = a/ω² — the textbook sag formula.
	fn := 45.0
	s := NewLumped()
	s.AddMass("imu", 6)
	k, _ := IsolatorStiffness(6, fn, 1)
	s.AddSpring("imu", Ground, k)
	defl, err := s.StaticDeflection(9)
	if err != nil {
		t.Fatal(err)
	}
	w := 2 * math.Pi * fn
	want := 9 * 9.80665 / (w * w)
	if !units.ApproxEqual(defl["imu"], want, 1e-9) {
		t.Errorf("9 g sag = %v, want %v", defl["imu"], want)
	}
	// Softer mount → more sag (the sway-space trade).
	s2 := NewLumped()
	s2.AddMass("imu", 6)
	k2, _ := IsolatorStiffness(6, 20, 1)
	s2.AddSpring("imu", Ground, k2)
	d2, _ := s2.StaticDeflection(9)
	if d2["imu"] <= defl["imu"] {
		t.Error("softer mount must sag more")
	}
	// Unconstrained system fails.
	free := NewLumped()
	free.AddMass("a", 1)
	free.AddMass("b", 1)
	free.AddSpring("a", "b", 100)
	if _, err := free.StaticDeflection(9); err == nil {
		t.Error("floating system should error")
	}
}
