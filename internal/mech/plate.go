package mech

import (
	"fmt"
	"math"

	"aeropack/internal/materials"
)

// PlateEdge enumerates the support conditions of a rectangular PCB.
type PlateEdge int

// Plate support configurations (all four edges).
const (
	// SSSS: simply supported on all edges — card guides on four sides.
	SSSS PlateEdge = iota
	// CCCC: clamped on all edges — bolted/bonded frame.
	CCCC
	// SSSF: simply supported on three edges, one free — typical plug-in
	// card held by guides on three sides.
	SSSF
	// WedgeLocked: clamped on two opposite edges (wedge locks), free on
	// the others — conduction-cooled modules.
	WedgeLocked
)

// Plate is a rectangular PCB (or panel) for modal placement studies — the
// tool behind the paper's Fig. 2 "power supply designed so that its main
// resonant mode be located around 500 Hz".
type Plate struct {
	A, B      float64 // in-plane dimensions, m (A along x)
	Thickness float64 // m
	Material  materials.Material
	Edges     PlateEdge
	// MassLoadKgM2 is smeared component mass per area (components +
	// conformal coat), kg/m².
	MassLoadKgM2 float64
}

// FlexuralRigidity returns D = E·h³/(12(1−ν²)).
func (p *Plate) FlexuralRigidity() float64 {
	h := p.Thickness
	return p.Material.E * h * h * h / (12 * (1 - p.Material.Nu*p.Material.Nu))
}

// arealMass returns structural plus component mass per area.
func (p *Plate) arealMass() float64 {
	return p.Material.Rho*p.Thickness + p.MassLoadKgM2
}

// Validate checks the plate definition.
func (p *Plate) Validate() error {
	if p.A <= 0 || p.B <= 0 || p.Thickness <= 0 {
		return fmt.Errorf("mech: plate dimensions must be positive")
	}
	if p.Material.E <= 0 || p.Material.Rho <= 0 {
		return fmt.Errorf("mech: plate material needs E and rho")
	}
	if p.MassLoadKgM2 < 0 {
		return fmt.Errorf("mech: negative mass loading")
	}
	return nil
}

// FundamentalHz returns the first natural frequency using classical plate
// theory with edge-condition coefficients (Leissa/Steinberg).
func (p *Plate) FundamentalHz() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	d := p.FlexuralRigidity()
	rho := p.arealMass()
	a, b := p.A, p.B
	r := a / b
	var lambda float64 // ω = λ/a²·√(D/ρh)
	switch p.Edges {
	case SSSS:
		lambda = math.Pi * math.Pi * (1 + r*r)
	case CCCC:
		// Leissa clamped-plate approximation.
		lambda = 36.0 * math.Sqrt(1+0.605*r*r+r*r*r*r) / math.Sqrt(1.605)
		// Normalised so a square clamped plate gives λ ≈ 35.99.
	case SSSF:
		// Steinberg: three supported edges, one free.
		lambda = math.Pi * math.Pi * (1 + 0.5*r*r)
	case WedgeLocked:
		// Clamped-free-clamped-free ≈ clamped-clamped beam strip along x.
		lambda = 22.37
	default:
		return 0, fmt.Errorf("mech: unknown edge condition")
	}
	w := lambda / (a * a) * math.Sqrt(d/rho)
	return w / (2 * math.Pi), nil
}

// ModeHz returns the (m,n) mode frequency for a simply supported plate
// (analytic); other edge conditions return an error.
func (p *Plate) ModeHz(m, n int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if m < 1 || n < 1 {
		return 0, fmt.Errorf("mech: mode indices must be ≥1")
	}
	if p.Edges != SSSS {
		return 0, fmt.Errorf("mech: closed-form higher modes only for SSSS plates")
	}
	d := p.FlexuralRigidity()
	rho := p.arealMass()
	w := math.Pi * math.Pi * (math.Pow(float64(m)/p.A, 2) + math.Pow(float64(n)/p.B, 2)) *
		math.Sqrt(d/rho)
	return w / (2 * math.Pi), nil
}

// ThicknessForFrequency inverts FundamentalHz: the board thickness that
// places the fundamental at target Hz (bisection over 0.4–10 mm).  This
// is the designer's knob in the frequency-allocation exercise of Fig. 2.
func (p *Plate) ThicknessForFrequency(target float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("mech: target frequency must be positive")
	}
	trial := *p
	lo, hi := 0.4e-3, 10e-3
	trial.Thickness = lo
	flo, err := trial.FundamentalHz()
	if err != nil {
		return 0, err
	}
	trial.Thickness = hi
	fhi, err := trial.FundamentalHz()
	if err != nil {
		return 0, err
	}
	if target < flo || target > fhi {
		return 0, fmt.Errorf("mech: target %g Hz outside achievable band [%g, %g]", target, flo, fhi)
	}
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		trial.Thickness = mid
		f, err := trial.FundamentalHz()
		if err != nil {
			return 0, err
		}
		if f < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// OctaveRule checks Steinberg's octave rule: a component's local resonance
// (or a subassembly's mode) should sit at least one octave above the
// board/carrier mode that drives it.  Returns the ratio and pass flag.
func OctaveRule(carrierHz, componentHz float64) (ratio float64, pass bool) {
	if carrierHz <= 0 {
		return math.Inf(1), true
	}
	ratio = componentHz / carrierHz
	return ratio, ratio >= 2
}
