package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// requestKey derives the cache/dedup key from the raw request bytes:
// the response is a pure function of the body, so the sha256 of the
// bytes identifies the study exactly.  No canonicalization is applied —
// two semantically equal requests with different whitespace are
// different cache entries, which errs on the side of recomputing rather
// than ever conflating two studies.
func requestKey(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// resultCache stores finished response bodies by request hash: an
// in-memory map always, plus best-effort persistence under dir when one
// is configured (survives server restarts; corrupt or missing files
// fall back to recompute).  Only successful (HTTP 200) complete-study
// bodies are stored — errors and partial keep-going results depend on
// transient conditions and must re-run.
type resultCache struct {
	mu  sync.RWMutex
	mem map[string][]byte
	dir string // "" = memory only
}

func newResultCache(dir string) (*resultCache, error) {
	c := &resultCache{mem: make(map[string][]byte), dir: dir}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating cache dir: %w", err)
		}
	}
	return c, nil
}

// path maps a key to its on-disk file.  Keys are hex sha256 strings, so
// they are always safe path components.
func (c *resultCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// get returns the stored body for key, or nil.  A disk hit is promoted
// into memory so the next lookup skips the filesystem.
func (c *resultCache) get(key string) []byte {
	c.mu.RLock()
	body := c.mem[key]
	c.mu.RUnlock()
	if body != nil || c.dir == "" {
		return body
	}
	body, err := os.ReadFile(c.path(key))
	if err != nil || len(body) == 0 {
		return nil
	}
	c.mu.Lock()
	c.mem[key] = body
	c.mu.Unlock()
	return body
}

// put stores a finished body.  The disk write is best-effort: a failed
// write only costs future recomputes, never correctness, so its error
// is reported to the caller for logging but the memory entry stands.
func (c *resultCache) put(key string, body []byte) error {
	c.mu.Lock()
	c.mem[key] = body
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	// Write-rename so a crashed server never leaves a torn file that a
	// restart would replay as a (corrupt) cached result.
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return fmt.Errorf("serve: persisting cache entry: %w", err)
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		return fmt.Errorf("serve: persisting cache entry: %w", err)
	}
	return nil
}

// len reports the number of in-memory entries (for tests and metrics).
func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem)
}
