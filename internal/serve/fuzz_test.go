package serve

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzStudyRequest checks the request decoder's invariants on arbitrary
// bytes: it never panics, never accepts a request its own validator
// rejects, and every accepted request survives a marshal → decode
// round-trip intact (the property that makes stored request documents
// replayable).  The seed corpus mirrors the contract fixtures plus the
// known-tricky shapes; regressions found by fuzzing land as files under
// testdata/fuzz/FuzzStudyRequest.
func FuzzStudyRequest(f *testing.F) {
	f.Add([]byte(`{"kind": "fig10"}`))
	f.Add([]byte(`{"kind": "fig10", "fig10": {"structure": "Al6061"}, "async": true}`))
	f.Add([]byte(`{"kind": "sweep", "keep_going": true, "sweep": {"use_lhp": true, "tilt_deg": 22, "powers_w": [30, 60]}}`))
	f.Add([]byte(`{"kind": "techmap", "budget": {"max_solver_iters": 100, "max_wall_ms": 50}, "techmap": {"powers_w": [10], "fluxes_w_cm2": [1]}}`))
	f.Add([]byte(`{"kind": "qualification", "qualification": {"extended": true, "article": {"name": "seb", "mass_kg": 3.5, "cosee": {"use_lhp": true}}}}`))
	f.Add([]byte(`{"kind": "study", "study": {"name": "b", "components": [{"refdes": "U1", "package": "BGA256", "power_w": 2, "x_mm": 1, "y_mm": 1}]}}`))
	f.Add([]byte(`{"schema": "aeropack-study-request/v1", "kind": "sweep", "sweep": {"powers_w": [-5]}}`))
	f.Add([]byte(`{"kind": "warp-field"}`))
	f.Add([]byte(`{"kind": "sweep"}`))
	f.Add([]byte(`{"kind": "fig10", "buget": {}}`))
	f.Add([]byte(`{"kind": "fig10", "budget": {"max_wall_ms": -1}}`))
	f.Add([]byte(`{"kind": "fig10", "fig10": {}, "sweep": {"powers_w": [1]}}`))
	f.Add([]byte(`{"kind": "fig10"}{"kind": "fig10"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, in []byte) {
		req, serr := decodeRequest(in)
		if serr != nil {
			if req != nil {
				t.Fatal("decodeRequest returned both a request and an error")
			}
			if serr.Status < 400 || serr.Status > 499 || serr.Code == "" {
				t.Fatalf("decode error has bad transport metadata: %+v", serr)
			}
			return
		}
		// Accepted requests must satisfy the validator (decode runs it,
		// so a violation means they disagree on a copy somewhere).
		if v := req.validate(); v != nil {
			t.Fatalf("accepted request fails validate: %s", v.Error)
		}
		// Round-trip: our own marshal must re-decode to the same value.
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshaling accepted request: %v", err)
		}
		req2, serr2 := decodeRequest(out)
		if serr2 != nil {
			t.Fatalf("re-decoding marshaled request: %s\nmarshaled: %s", serr2.Error, out)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("round-trip changed the request:\nin:  %+v\nout: %+v", req, req2)
		}
		// The cache key is a pure function of the bytes.
		if requestKey(in) != requestKey(bytes.Clone(in)) {
			t.Fatal("requestKey is not deterministic")
		}
	})
}
