package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aeropack/internal/obs"
)

// The contract tests pin the wire protocol with golden request/response
// pairs under testdata/contract: every study kind, every error shape
// (bad JSON, bad kind, missing section, unknown field, budget exceeded,
// queue-full 429) and the async job flow.  Run with -update after a
// deliberate protocol change to rewrite the goldens.

var update = flag.Bool("update", false, "rewrite the contract golden files")

// newTestServer builds a server with its own registry (so counters are
// test-local) and cleans it up with the test.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return s
}

func contractPath(name string) string {
	return filepath.Join("testdata", "contract", name)
}

func readContract(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(contractPath(name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// checkGolden compares got against the named golden file, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := contractPath(name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -run TestContract -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from golden %s\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// postStudy drives POST /v1/studies through the full handler stack.
func postStudy(s *Server, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/studies", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// getPath drives a GET route through the handler stack.
func getPath(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestContractStudies(t *testing.T) {
	cases := []struct {
		name       string
		wantStatus int
		wantCache  string // expected X-Aeropack-Cache on a fresh server
	}{
		{"fig10", 200, "miss"},
		{"sweep", 200, "miss"},
		{"sweep-keepgoing-partial", 200, "miss"},
		{"techmap", 200, "miss"},
		{"qualification", 200, "miss"},
		{"study", 200, "miss"},
		{"bad-json", 400, ""},
		{"bad-kind", 400, ""},
		{"missing-section", 400, ""},
		{"unknown-field", 400, ""},
		// unknown-material fails inside the compute path (the material
		// lookup is part of study execution), so it carries cache state.
		{"unknown-material", 400, "miss"},
		{"budget-exceeded", 422, "miss"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// A fresh server per case keeps the cache state
			// deterministic ("miss" on first contact).
			s := newTestServer(t, Options{Workers: 1})
			body := readContract(t, c.name+".request.json")
			w := postStudy(s, body)
			if w.Code != c.wantStatus {
				t.Fatalf("status = %d, want %d\nbody: %s", w.Code, c.wantStatus, w.Body.Bytes())
			}
			if got := w.Header().Get("X-Aeropack-Cache"); got != c.wantCache {
				t.Errorf("X-Aeropack-Cache = %q, want %q", got, c.wantCache)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			checkGolden(t, c.name+".response.json", w.Body.Bytes())
		})
	}
}

// TestContractQueueFull pins the 429 shape deterministically: the
// admission slot and the whole queue are occupied by hand, so the next
// request must be rejected with Retry-After.
func TestContractQueueFull(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, MaxInflight: 1, MaxQueue: 2})
	s.sem <- struct{}{} // occupy the only inflight slot
	s.waiting.Add(2)    // fill the queue
	defer func() {
		<-s.sem
		s.waiting.Add(-2)
	}()
	w := postStudy(s, readContract(t, "queue-full.request.json"))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\nbody: %s", w.Code, w.Body.Bytes())
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if reg := s.reg; reg.Counter("serve_rejected_total").Value() != 1 {
		t.Errorf("serve_rejected_total = %d, want 1", reg.Counter("serve_rejected_total").Value())
	}
	checkGolden(t, "queue-full.response.json", w.Body.Bytes())
}

// waitJobDone polls the job route until the state flips to done.
func waitJobDone(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		w := getPath(s, "/v1/jobs/"+id)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d\nbody: %s", id, w.Code, w.Body.Bytes())
		}
		var st jobState
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			return w.Body.Bytes()
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestContractAsyncFlow pins the async ticket, the done job document,
// the replayed result and the unknown-job 404 — and checks the result
// body is bitwise-identical across two submissions of the same bytes.
func TestContractAsyncFlow(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	body := readContract(t, "async-sweep.request.json")

	// Fresh server, so the first job id is deterministically j1.
	w := postStudy(s, body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202\nbody: %s", w.Code, w.Body.Bytes())
	}
	checkGolden(t, "async-ticket.response.json", w.Body.Bytes())

	done := waitJobDone(t, s, "j1")
	checkGolden(t, "job-done.response.json", done)

	res1 := getPath(s, "/v1/results/j1")
	if res1.Code != http.StatusOK {
		t.Fatalf("result status = %d\nbody: %s", res1.Code, res1.Body.Bytes())
	}
	checkGolden(t, "async-result.response.json", res1.Body.Bytes())

	// Second submission of the identical bytes: job j2, served from the
	// result cache, bitwise-identical body.
	w2 := postStudy(s, body)
	if w2.Code != http.StatusAccepted {
		t.Fatalf("second submit status = %d", w2.Code)
	}
	waitJobDone(t, s, "j2")
	res2 := getPath(s, "/v1/results/j2")
	if !bytes.Equal(res1.Body.Bytes(), res2.Body.Bytes()) {
		t.Error("async results for identical request bytes differ")
	}

	w404 := getPath(s, "/v1/jobs/nope")
	if w404.Code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", w404.Code)
	}
	checkGolden(t, "job-not-found.response.json", w404.Body.Bytes())
}

// TestContractResultNotReady pins the 409 shape: the job's singleflight
// key is pre-registered as an in-flight call the test controls, so the
// job is deterministically still running when the result is requested.
func TestContractResultNotReady(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	body := readContract(t, "async-sweep.request.json")
	key := requestKey(body)
	c := &call{done: make(chan struct{})}
	s.mu.Lock()
	s.inflight[key] = c
	s.mu.Unlock()

	w := postStudy(s, body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", w.Code)
	}
	// Wait until the job goroutine is parked on the fabricated call (it
	// bumps the dedup counter just before blocking), so completing the
	// call below deterministically completes the job.
	for deadline := time.Now().Add(10 * time.Second); s.reg.Counter("serve_dedup_hits_total").Value() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("job goroutine never joined the in-flight call")
		}
		time.Sleep(time.Millisecond)
	}

	running := getPath(s, "/v1/jobs/j1")
	checkGolden(t, "job-running.response.json", running.Body.Bytes())

	notReady := getPath(s, "/v1/results/j1")
	if notReady.Code != http.StatusConflict {
		t.Fatalf("status = %d, want 409\nbody: %s", notReady.Code, notReady.Body.Bytes())
	}
	checkGolden(t, "result-not-ready.response.json", notReady.Body.Bytes())

	// Complete the fabricated call; the job drains through Close.
	c.status, c.body = http.StatusOK, []byte("{}\n")
	close(c.done)
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	if got := waitJobDone(t, s, "j1"); got == nil {
		t.Fatal("job never completed")
	}
	res := getPath(s, "/v1/results/j1")
	if res.Code != http.StatusOK || res.Body.String() != "{}\n" {
		t.Errorf("result = %d %q, want the injected body", res.Code, res.Body.String())
	}
}

// TestOpsRoutes checks the obshttp ops endpoint shares the mux: the
// serve counters land on /metrics and /healthz answers.
func TestOpsRoutes(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	_ = postStudy(s, readContract(t, "techmap.request.json"))
	m := getPath(s, "/metrics")
	if m.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", m.Code)
	}
	if !bytes.Contains(m.Body.Bytes(), []byte("serve_requests_total 1")) {
		t.Errorf("/metrics misses serve_requests_total:\n%s", m.Body.Bytes())
	}
	if h := getPath(s, "/healthz"); h.Code != http.StatusOK {
		t.Errorf("/healthz = %d", h.Code)
	}
	if w := getPath(s, "/v1/studies"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/studies = %d, want 405", w.Code)
	}
}
