// Package serve is the aeropackd study server: an HTTP/JSON façade over
// the co-design engines (cosee Fig. 10, power sweeps, the level-1
// technology map, the qualification campaign and the full board study)
// with a content-hash result cache, singleflight deduplication of
// concurrent identical requests, admission control over the worker pool
// and per-request solver budgets threaded down to the linear-algebra
// Stop seam.
//
// The wire contract is deliberately bitwise-deterministic: the response
// body for a given request body is a pure function of its bytes, so the
// cache can replay stored bodies verbatim and dedup followers can share
// the leader's buffer.  Anything request-specific but non-deterministic
// (cache status, job identity) travels in headers, never in the body.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"aeropack/internal/compact"
	"aeropack/internal/core"
	"aeropack/internal/cosee"
	"aeropack/internal/envtest"
	"aeropack/internal/linalg"
	"aeropack/internal/materials"
	"aeropack/internal/robust"
	"aeropack/internal/units"
)

// Schema identifiers for the wire formats.  Versioned like
// aeropack-bench/v1 so future incompatible changes bump the suffix
// instead of silently changing field meaning.
const (
	RequestSchema  = "aeropack-study-request/v1"
	ResponseSchema = "aeropack-study-response/v1"
	ErrorSchema    = "aeropack-error/v1"
	JobSchema      = "aeropack-job/v1"
)

// Budget bounds one request's compute.  Both limits are optional; zero
// means unlimited.  MaxSolverIters counts Stop-seam polls, which the
// solvers issue once per inner iteration (and once per Picard pass), so
// it is a direct cap on linear-solver work regardless of study kind.
type Budget struct {
	MaxSolverIters int64 `json:"max_solver_iters,omitempty"`
	MaxWallMs      int64 `json:"max_wall_ms,omitempty"`
}

// stop compiles the budget into a linalg-style Stop callback, or nil
// when the budget is absent/unlimited.  The callback is safe for
// concurrent calls — parallel sweeps share it across workers — so the
// poll counter is atomic and the deadline is read-only after creation.
func (b *Budget) stop() func() bool {
	if b == nil || (b.MaxSolverIters <= 0 && b.MaxWallMs <= 0) {
		return nil
	}
	var polls atomic.Int64
	var deadline time.Time
	if b.MaxWallMs > 0 {
		deadline = time.Now().Add(time.Duration(b.MaxWallMs) * time.Millisecond)
	}
	maxIters := b.MaxSolverIters
	return func() bool {
		if maxIters > 0 && polls.Add(1) > maxIters {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}
}

// CoseeSpec selects one COSEE seat-electronics configuration — the
// common thermal model behind the fig10 sub-studies, the sweep kind and
// the qualification article's ΔT closure.  Zero values take the cosee
// package defaults (aluminium structure, 25 °C cabin, sea level).
type CoseeSpec struct {
	UseLHP          bool    `json:"use_lhp,omitempty"`
	TiltDeg         float64 `json:"tilt_deg,omitempty"`
	Structure       string  `json:"structure,omitempty"`
	AmbientC        float64 `json:"ambient_c,omitempty"`
	TIM             string  `json:"tim,omitempty"`
	CabinAltitudeM  float64 `json:"cabin_altitude_m,omitempty"`
	UseThermosyphon bool    `json:"use_thermosyphon,omitempty"`
}

// config converts the spec into a cosee.Config carrying the request's
// Stop seam.  The material lookup is the only fallible part.
func (cs *CoseeSpec) config(stop func() bool) (cosee.Config, error) {
	c := cosee.Config{
		UseLHP:          cs.UseLHP,
		TiltDeg:         cs.TiltDeg,
		AmbientC:        cs.AmbientC,
		TIMName:         cs.TIM,
		CabinAltitudeM:  cs.CabinAltitudeM,
		UseThermosyphon: cs.UseThermosyphon,
		Stop:            stop,
	}
	if cs.Structure != "" {
		m, err := materials.Get(cs.Structure)
		if err != nil {
			return cosee.Config{}, err
		}
		c.Structure = m
	}
	return c, nil
}

// Fig10Spec parameterizes the paper's Fig. 10 comparison study.
type Fig10Spec struct {
	Structure string `json:"structure,omitempty"`
}

// SweepSpec evaluates the ΔT(P) curve of one COSEE configuration.
type SweepSpec struct {
	CoseeSpec
	PowersW []float64 `json:"powers_w"`
}

// EnvelopeSpec is an equipment envelope in millimetres (matching the
// aeropack CLI's spec units).
type EnvelopeSpec struct {
	LMM float64 `json:"l_mm"`
	WMM float64 `json:"w_mm"`
	HMM float64 `json:"h_mm"`
}

// TechMapSpec screens the powers × fluxes grid with the level-1
// technology screen.  AmbientC 0 keeps the DefaultScreen 71 °C worst
// hot case; a nil envelope takes the demo 400×300×200 mm box.
type TechMapSpec struct {
	PowersW    []float64     `json:"powers_w"`
	FluxesWCm2 []float64     `json:"fluxes_w_cm2"`
	AmbientC   float64       `json:"ambient_c,omitempty"`
	Envelope   *EnvelopeSpec `json:"envelope,omitempty"`
}

// ArticleSpec is the qualification article on the wire.  The thermal
// model is a COSEE configuration evaluated at each test's power — the
// same DeltaTAt plumbing the envtest package uses natively.
type ArticleSpec struct {
	Name          string    `json:"name"`
	MassKg        float64   `json:"mass_kg"`
	MountFnHz     float64   `json:"mount_fn_hz"`
	DampingZeta   float64   `json:"damping_zeta"`
	MountAreaM2   float64   `json:"mount_area_m2"`
	MountYieldPa  float64   `json:"mount_yield_pa"`
	BoardSpanM    float64   `json:"board_span_m"`
	BoardThkM     float64   `json:"board_thk_m"`
	CompLenM      float64   `json:"comp_len_m"`
	CompConst     float64   `json:"comp_const"`
	PosFactor     float64   `json:"pos_factor"`
	FatigueExpB   float64   `json:"fatigue_exp_b"`
	PowerW        float64   `json:"power_w"`
	MaxPointC     float64   `json:"max_point_c"`
	MinStartC     float64   `json:"min_start_c"`
	ShockCycles   int       `json:"shock_cycles_required,omitempty"`
	JointDTFactor float64   `json:"joint_dt_factor,omitempty"`
	Cosee         CoseeSpec `json:"cosee"`
}

// QualSpec runs the environmental qualification campaign on an article.
type QualSpec struct {
	Article  ArticleSpec `json:"article"`
	Extended bool        `json:"extended,omitempty"`
}

// ComponentSpec mirrors the aeropack CLI component placement schema.
type ComponentSpec struct {
	RefDes  string  `json:"refdes"`
	Package string  `json:"package"`
	PowerW  float64 `json:"power_w"`
	XMM     float64 `json:"x_mm"`
	YMM     float64 `json:"y_mm"`
}

// BoardSpec mirrors the aeropack CLI's board specification JSON (the
// -spec file) plus the level-1 screen ambient, so a CLI spec file can be
// POSTed to the server wrapped in {"kind":"study","study":{...}}.
type BoardSpec struct {
	Name        string  `json:"name"`
	LengthMM    float64 `json:"length_mm"`
	WidthMM     float64 `json:"width_mm"`
	ThicknessMM float64 `json:"thickness_mm"`
	Copper      struct {
		Layers   int     `json:"layers"`
		Oz       float64 `json:"oz"`
		Coverage float64 `json:"coverage"`
	} `json:"copper"`
	Cooling        string          `json:"cooling,omitempty"`
	RailC          float64         `json:"rail_c,omitempty"`
	ChannelH       float64         `json:"channel_h_w_m2k,omitempty"`
	ChannelAirC    float64         `json:"channel_air_c,omitempty"`
	TargetModeHz   float64         `json:"target_mode_hz,omitempty"`
	MassLoad       float64         `json:"mass_load_kg_m2,omitempty"`
	Components     []ComponentSpec `json:"components"`
	Envelope       *EnvelopeSpec   `json:"envelope,omitempty"`
	ScreenAmbientC float64         `json:"screen_ambient_c,omitempty"`
}

// StudyRequest is the server's input document.  Exactly one of the
// kind-specific sections must be present and must match Kind.
type StudyRequest struct {
	Schema        string       `json:"schema,omitempty"`
	Kind          string       `json:"kind"`
	Async         bool         `json:"async,omitempty"`
	KeepGoing     bool         `json:"keep_going,omitempty"`
	Budget        *Budget      `json:"budget,omitempty"`
	Fig10         *Fig10Spec   `json:"fig10,omitempty"`
	Sweep         *SweepSpec   `json:"sweep,omitempty"`
	TechMap       *TechMapSpec `json:"techmap,omitempty"`
	Qualification *QualSpec    `json:"qualification,omitempty"`
	Study         *BoardSpec   `json:"study,omitempty"`
}

// Kinds the server accepts, in documentation order.
var studyKinds = []string{"fig10", "sweep", "techmap", "qualification", "study"}

// Wire-size caps: a request sizes the solver work and result payload by
// its point lists, so validate() bounds them before any allocation.
// 8k sweep points is half an hour of single-threaded solves — far past
// any legitimate curve — and a 1k×1k techmap grid is a million screen
// cells, two orders past the paper's 6×6 figure.
const (
	maxSweepPoints = 8192
	maxGridDim     = 1000
)

// validate checks structural invariants that do not need any solver
// work, so bad requests are rejected before admission control.  An
// unknown kind gets its own error code (bad_kind) so clients can tell
// "typoed field" from "this server has no such study".
func (r *StudyRequest) validate() *StudyError {
	if r.Schema != "" && r.Schema != RequestSchema {
		return studyErr(400, CodeBadRequest, "serve: unsupported schema %q (want %s)", r.Schema, RequestSchema)
	}
	if r.Budget != nil && (r.Budget.MaxSolverIters < 0 || r.Budget.MaxWallMs < 0) {
		return studyErr(400, CodeBadRequest, "serve: budget limits must be non-negative")
	}
	sections := 0
	for _, present := range []bool{r.Fig10 != nil, r.Sweep != nil,
		r.TechMap != nil, r.Qualification != nil, r.Study != nil} {
		if present {
			sections++
		}
	}
	if sections > 1 {
		return studyErr(400, CodeBadRequest, "serve: request carries %d study sections, want exactly the %q one", sections, r.Kind)
	}
	switch r.Kind {
	case "fig10":
		// A nil Fig10 section is allowed: the kind is fully usable with
		// defaults (aluminium structure).
	case "sweep":
		if r.Sweep == nil {
			return studyErr(400, CodeBadRequest, "serve: kind %q needs a \"sweep\" section", r.Kind)
		}
		if len(r.Sweep.PowersW) == 0 {
			return studyErr(400, CodeBadRequest, "serve: sweep needs at least one power point")
		}
		if len(r.Sweep.PowersW) > maxSweepPoints {
			return studyErr(400, CodeBadRequest, "serve: sweep carries %d power points, the cap is %d", len(r.Sweep.PowersW), maxSweepPoints)
		}
	case "techmap":
		if r.TechMap == nil {
			return studyErr(400, CodeBadRequest, "serve: kind %q needs a \"techmap\" section", r.Kind)
		}
		if len(r.TechMap.PowersW) == 0 || len(r.TechMap.FluxesWCm2) == 0 {
			return studyErr(400, CodeBadRequest, "serve: techmap needs non-empty powers_w and fluxes_w_cm2 grids")
		}
		if len(r.TechMap.PowersW) > maxGridDim || len(r.TechMap.FluxesWCm2) > maxGridDim {
			return studyErr(400, CodeBadRequest, "serve: techmap grid axes are capped at %d points each", maxGridDim)
		}
	case "qualification":
		if r.Qualification == nil {
			return studyErr(400, CodeBadRequest, "serve: kind %q needs a \"qualification\" section", r.Kind)
		}
	case "study":
		if r.Study == nil {
			return studyErr(400, CodeBadRequest, "serve: kind %q needs a \"study\" section", r.Kind)
		}
	default:
		return studyErr(400, CodeBadKind, "serve: unknown study kind %q (want one of %v)", r.Kind, studyKinds)
	}
	return nil
}

// PointErrorJSON is one keep-going point failure on the wire.
type PointErrorJSON struct {
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
	Error string `json:"error"`
}

// Fig10Result is the Fig. 10 summary with NaN-able fields as pointers:
// encoding/json cannot represent NaN, so a failed sub-study's field is
// null and the failure itself is listed under errors.
type Fig10Result struct {
	CapabilityNoLHPW *float64 `json:"capability_nolhp_w"`
	CapabilityLHPW   *float64 `json:"capability_lhp_w"`
	CapabilityTiltW  *float64 `json:"capability_tilt_w"`
	ImprovementPct   *float64 `json:"improvement_pct"`
	DeltaTNoLHP40WK  *float64 `json:"delta_t_nolhp_40w_k"`
	DeltaTLHP40WK    *float64 `json:"delta_t_lhp_40w_k"`
	CoolingAt40WK    *float64 `json:"cooling_at_40w_k"`
	LHPPowerAt100WW  *float64 `json:"lhp_power_at_100w_w"`
}

// SweepPointJSON is one power point of the ΔT(P) curve.  OK is false
// for keep-going points that failed; their values are null.
type SweepPointJSON struct {
	PowerW    float64  `json:"power_w"`
	DeltaTK   *float64 `json:"delta_t_k"`
	LHPPowerW *float64 `json:"lhp_power_w"`
	OK        bool     `json:"ok"`
}

// TechCellJSON is one grid cell of the technology map.
type TechCellJSON struct {
	PowerW     float64 `json:"power_w"`
	FluxWCm2   float64 `json:"flux_w_cm2"`
	Feasible   bool    `json:"feasible"`
	Tech       string  `json:"tech,omitempty"`
	Complexity int     `json:"complexity,omitempty"`
}

// TechMapResult is the screened grid in row-major powers × fluxes order.
type TechMapResult struct {
	PowersW    []float64        `json:"powers_w"`
	FluxesWCm2 []float64        `json:"fluxes_w_cm2"`
	Cells      [][]TechCellJSON `json:"cells"`
}

// QualResultJSON is one campaign test outcome.
type QualResultJSON struct {
	Test   string  `json:"test"`
	Pass   bool    `json:"pass"`
	Metric float64 `json:"metric"`
	Limit  float64 `json:"limit"`
	Units  string  `json:"units,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// MarginJSON is one component junction margin.
type MarginJSON struct {
	RefDes  string  `json:"refdes"`
	TjC     float64 `json:"tj_c"`
	MaxTjC  float64 `json:"max_tj_c"`
	MarginK float64 `json:"margin_k"`
	Pass    bool    `json:"pass"`
}

// StudyResultJSON is the full co-design report on the wire.  The
// per-level sections are omitted when keep-going lost them.
type StudyResultJSON struct {
	Feasible bool     `json:"feasible"`
	Findings []string `json:"findings,omitempty"`
	Level1   *struct {
		Tech        string  `json:"tech"`
		MaxPowerW   float64 `json:"max_power_w"`
		MaxFluxWCm2 float64 `json:"max_flux_w_cm2"`
		PowerMargin float64 `json:"power_margin"`
		FluxMargin  float64 `json:"flux_margin"`
		Feasible    bool    `json:"feasible"`
		Complexity  int     `json:"complexity"`
	} `json:"level1,omitempty"`
	Level2 *struct {
		MaxBoardC  float64 `json:"max_board_c"`
		MeanBoardC float64 `json:"mean_board_c"`
	} `json:"level2,omitempty"`
	Level3 *struct {
		WorstC  float64      `json:"worst_c"`
		AllPass bool         `json:"all_pass"`
		Margins []MarginJSON `json:"margins"`
	} `json:"level3,omitempty"`
	Mech *struct {
		FundamentalHz float64 `json:"fundamental_hz"`
		ModePlaced    bool    `json:"mode_placed"`
		ResponseGRMS  float64 `json:"response_grms"`
		Z3SigmaUm     float64 `json:"z3sigma_um"`
		SteinbergUm   float64 `json:"steinberg_um"`
		FatigueOK     bool    `json:"fatigue_ok"`
	} `json:"mech,omitempty"`
}

// StudyResponse is the server's output document.  Exactly one
// kind-specific section is populated.  Partial marks keep-going runs
// that lost at least one point; the losses are itemized under Errors.
type StudyResponse struct {
	Schema        string           `json:"schema"`
	Kind          string           `json:"kind"`
	RequestSHA256 string           `json:"request_sha256"`
	Partial       bool             `json:"partial,omitempty"`
	Errors        []PointErrorJSON `json:"errors,omitempty"`
	Fig10         *Fig10Result     `json:"fig10,omitempty"`
	Sweep         []SweepPointJSON `json:"sweep,omitempty"`
	TechMap       *TechMapResult   `json:"techmap,omitempty"`
	Qualification []QualResultJSON `json:"qualification,omitempty"`
	Study         *StudyResultJSON `json:"study,omitempty"`
}

// StudyError is the wire error document plus its transport metadata.
type StudyError struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
	Code   string `json:"code"`

	// HTTP transport status; not serialized (the status line carries it).
	Status int `json:"-"`
}

// Error codes with their canonical HTTP statuses.
const (
	CodeBadRequest     = "bad_request"     // 400: malformed JSON / invalid fields
	CodeBadKind        = "bad_kind"        // 400: unknown study kind
	CodeBudgetExceeded = "budget_exceeded" // 422: solver budget tripped
	CodeStudyFailed    = "study_failed"    // 422: the engines rejected the model
	CodeQueueFull      = "queue_full"      // 429: admission control rejected
	CodeNotFound       = "not_found"       // 404: unknown job/result id
	CodeNotReady       = "not_ready"       // 409: job still running
)

// studyErr builds a wire error.
func studyErr(status int, code, format string, args ...any) *StudyError {
	return &StudyError{
		Schema: ErrorSchema,
		Error:  fmt.Sprintf(format, args...),
		Code:   code,
		Status: status,
	}
}

// engineErr classifies an engine failure: a tripped budget surfaces as
// budget_exceeded, anything else as study_failed.
func engineErr(err error) *StudyError {
	if errors.Is(err, linalg.ErrStopped) {
		return studyErr(422, CodeBudgetExceeded, "serve: %v", err)
	}
	return studyErr(422, CodeStudyFailed, "serve: %v", err)
}

// nanPtr maps NaN (the engines' keep-going hole marker) to JSON null.
func nanPtr(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// pointErrsJSON converts engine point errors for the wire.
func pointErrsJSON(errs []*robust.PointError) []PointErrorJSON {
	if len(errs) == 0 {
		return nil
	}
	out := make([]PointErrorJSON, len(errs))
	for i, pe := range errs {
		out[i] = PointErrorJSON{Index: pe.Index, Label: pe.Label, Error: pe.Err.Error()}
	}
	return out
}

// executeStudy runs the request's study on the engines.  workers bounds
// the solver concurrency for this one request (the server's per-request
// share of the pool).  The returned response is fully deterministic for
// a given request; transport concerns (hashing, caching) are layered on
// by the server.
func executeStudy(req *StudyRequest, workers int) (*StudyResponse, *StudyError) {
	stop := req.Budget.stop()
	resp := &StudyResponse{Schema: ResponseSchema, Kind: req.Kind}
	switch req.Kind {
	case "fig10":
		structure := materials.Al6061
		if req.Fig10 != nil && req.Fig10.Structure != "" {
			m, err := materials.Get(req.Fig10.Structure)
			if err != nil {
				return nil, studyErr(400, CodeBadRequest, "serve: %v", err)
			}
			structure = m
		}
		sum, perrs, err := cosee.RunFig10Opts(cosee.Fig10Options{
			Structure: structure,
			Workers:   workers,
			KeepGoing: req.KeepGoing,
			Stop:      stop,
		})
		if err != nil {
			return nil, engineErr(err)
		}
		resp.Fig10 = &Fig10Result{
			CapabilityNoLHPW: nanPtr(sum.CapabilityNoLHP),
			CapabilityLHPW:   nanPtr(sum.CapabilityLHP),
			CapabilityTiltW:  nanPtr(sum.CapabilityTilt),
			ImprovementPct:   nanPtr(sum.ImprovementPct),
			DeltaTNoLHP40WK:  nanPtr(sum.DeltaTNoLHP40W),
			DeltaTLHP40WK:    nanPtr(sum.DeltaTLHP40W),
			CoolingAt40WK:    nanPtr(sum.CoolingAt40W),
			LHPPowerAt100WW:  nanPtr(sum.LHPPowerAt100W),
		}
		resp.Errors = pointErrsJSON(perrs)
	case "sweep":
		cfg, err := req.Sweep.config(stop)
		if err != nil {
			return nil, studyErr(400, CodeBadRequest, "serve: %v", err)
		}
		var points []cosee.Point
		var perrs []*robust.PointError
		if req.KeepGoing {
			points, perrs = cfg.SweepKeepGoing(req.Sweep.PowersW, workers)
		} else if points, err = cfg.SweepParallel(req.Sweep.PowersW, workers); err != nil {
			return nil, engineErr(err)
		}
		resp.Sweep = make([]SweepPointJSON, len(points))
		for i, p := range points {
			resp.Sweep[i] = SweepPointJSON{
				PowerW:    req.Sweep.PowersW[i],
				DeltaTK:   nanPtr(p.DeltaTK),
				LHPPowerW: nanPtr(p.LHPPower),
				OK:        !math.IsNaN(p.DeltaTK),
			}
		}
		resp.Errors = pointErrsJSON(perrs)
	case "techmap":
		env := core.Envelope{L: 0.4, W: 0.3, H: 0.2}
		if e := req.TechMap.Envelope; e != nil {
			env = core.Envelope{L: e.LMM * 1e-3, W: e.WMM * 1e-3, H: e.HMM * 1e-3}
		}
		screen := core.DefaultScreen(env)
		if req.TechMap.AmbientC != 0 {
			screen.AmbientC = req.TechMap.AmbientC
		}
		cells, err := screen.TechnologyMap(req.TechMap.PowersW, req.TechMap.FluxesWCm2, workers)
		if err != nil {
			return nil, engineErr(err)
		}
		tm := &TechMapResult{
			PowersW:    req.TechMap.PowersW,
			FluxesWCm2: req.TechMap.FluxesWCm2,
			Cells:      make([][]TechCellJSON, len(cells)),
		}
		for pi, row := range cells {
			tm.Cells[pi] = make([]TechCellJSON, len(row))
			for fi, c := range row {
				jc := TechCellJSON{PowerW: c.PowerW, FluxWCm2: c.FluxWCm2, Feasible: c.Feasible}
				if c.Feasible {
					jc.Tech = c.Recommended.Tech.String()
					jc.Complexity = c.Recommended.Complexity
				}
				tm.Cells[pi][fi] = jc
			}
		}
		resp.TechMap = tm
	case "qualification":
		art, serr := req.Qualification.Article.article(stop)
		if serr != nil {
			return nil, serr
		}
		var results []envtest.Result
		var perrs []*robust.PointError
		var err error
		if req.Qualification.Extended {
			ext := envtest.DefaultExtended()
			if req.KeepGoing {
				results, perrs = ext.RunAllKeepGoing(art, workers)
			} else {
				results, err = ext.RunAllParallel(art, workers)
			}
		} else {
			camp := envtest.DefaultCampaign()
			if req.KeepGoing {
				results, perrs = camp.RunAllKeepGoing(art, workers)
			} else {
				results, err = camp.RunAllParallel(art, workers)
			}
		}
		if err != nil {
			return nil, engineErr(err)
		}
		resp.Qualification = make([]QualResultJSON, len(results))
		for i, r := range results {
			resp.Qualification[i] = QualResultJSON{
				Test: r.Test, Pass: r.Pass, Metric: r.Metric,
				Limit: r.Limit, Units: r.Units, Detail: r.Detail,
			}
		}
		resp.Errors = pointErrsJSON(perrs)
	case "study":
		board, env, err := req.Study.design(stop)
		if err != nil {
			return nil, studyErr(400, CodeBadRequest, "serve: %v", err)
		}
		screen := core.DefaultScreen(env)
		if req.Study.ScreenAmbientC != 0 {
			screen.AmbientC = req.Study.ScreenAmbientC
		}
		var rep *core.Report
		var perrs []*robust.PointError
		if req.KeepGoing {
			rep, perrs = core.StudyKeepGoing(board, screen)
			if rep == nil {
				return nil, engineErr(robust.FirstError(perrs))
			}
		} else if rep, err = core.Study(board, screen); err != nil {
			return nil, engineErr(err)
		}
		resp.Study = studyResultJSON(rep)
		resp.Errors = pointErrsJSON(perrs)
	default:
		// Unreachable after validate, but keep the error total.
		return nil, studyErr(400, CodeBadKind, "serve: unknown study kind %q", req.Kind)
	}
	resp.Partial = len(resp.Errors) > 0
	return resp, nil
}

// article converts the wire article into an envtest.Article whose
// thermal model is the spec's COSEE configuration under the request's
// solver budget.
func (a *ArticleSpec) article(stop func() bool) (*envtest.Article, *StudyError) {
	cfg, err := a.Cosee.config(stop)
	if err != nil {
		return nil, studyErr(400, CodeBadRequest, "serve: %v", err)
	}
	art := &envtest.Article{
		Name:                a.Name,
		MassKg:              a.MassKg,
		MountFnHz:           a.MountFnHz,
		DampingZeta:         a.DampingZeta,
		MountArea:           a.MountAreaM2,
		MountYield:          a.MountYieldPa,
		BoardSpan:           a.BoardSpanM,
		BoardThk:            a.BoardThkM,
		CompLen:             a.CompLenM,
		CompConst:           a.CompConst,
		PosFactor:           a.PosFactor,
		FatigueExpB:         a.FatigueExpB,
		PowerW:              a.PowerW,
		MaxPointC:           a.MaxPointC,
		MinStartC:           a.MinStartC,
		ShockCyclesRequired: a.ShockCycles,
		JointDTFactor:       a.JointDTFactor,
		DeltaTAt: func(powerW float64) (float64, error) {
			pt, err := cfg.Solve(powerW)
			if err != nil {
				return 0, err
			}
			return pt.DeltaTK, nil
		},
	}
	return art, nil
}

// design converts the wire board spec into a BoardDesign carrying the
// request's Stop seam, mirroring the aeropack CLI's buildDesign.
func (b *BoardSpec) design(stop func() bool) (*core.BoardDesign, core.Envelope, error) {
	d := &core.BoardDesign{
		Name:         b.Name,
		LengthM:      b.LengthMM * 1e-3,
		WidthM:       b.WidthMM * 1e-3,
		ThicknessM:   b.ThicknessMM * 1e-3,
		CopperLayers: b.Copper.Layers,
		CopperOz:     b.Copper.Oz,
		CopperCover:  b.Copper.Coverage,
		RailTempC:    b.RailC,
		ChannelH:     b.ChannelH,
		ChannelAirC:  b.ChannelAirC,
		TargetModeHz: b.TargetModeHz,
		MassLoadKgM2: b.MassLoad,
		Stop:         stop,
	}
	switch b.Cooling {
	case "conduction", "":
		d.EdgeCooling = core.ConductionCooled
	case "forced-air":
		d.EdgeCooling = core.ForcedAir
	case "free-convection":
		d.EdgeCooling = core.FreeConvection
	default:
		return nil, core.Envelope{}, fmt.Errorf("unknown cooling %q", b.Cooling)
	}
	for _, c := range b.Components {
		pkg, err := compact.Get(c.Package)
		if err != nil {
			return nil, core.Envelope{}, err
		}
		d.Components = append(d.Components, &compact.Component{
			RefDes: c.RefDes, Pkg: pkg, Power: c.PowerW,
			X: c.XMM * 1e-3, Y: c.YMM * 1e-3,
		})
	}
	env := core.Envelope{L: 0.4, W: 0.3, H: 0.2}
	if e := b.Envelope; e != nil {
		env = core.Envelope{L: e.LMM * 1e-3, W: e.WMM * 1e-3, H: e.HMM * 1e-3}
	}
	return d, env, nil
}

// studyResultJSON flattens a co-design report for the wire.
func studyResultJSON(rep *core.Report) *StudyResultJSON {
	out := &StudyResultJSON{Feasible: rep.Feasible, Findings: rep.Findings}
	if rep.Level1.Tech != 0 || rep.Level1.Feasible {
		l1 := &struct {
			Tech        string  `json:"tech"`
			MaxPowerW   float64 `json:"max_power_w"`
			MaxFluxWCm2 float64 `json:"max_flux_w_cm2"`
			PowerMargin float64 `json:"power_margin"`
			FluxMargin  float64 `json:"flux_margin"`
			Feasible    bool    `json:"feasible"`
			Complexity  int     `json:"complexity"`
		}{
			Tech:        rep.Level1.Tech.String(),
			MaxPowerW:   rep.Level1.MaxPowerW,
			MaxFluxWCm2: rep.Level1.MaxFluxWCm2,
			PowerMargin: rep.Level1.PowerMargin,
			FluxMargin:  rep.Level1.FluxMargin,
			Feasible:    rep.Level1.Feasible,
			Complexity:  rep.Level1.Complexity,
		}
		out.Level1 = l1
	}
	if rep.Level2 != nil {
		l2 := &struct {
			MaxBoardC  float64 `json:"max_board_c"`
			MeanBoardC float64 `json:"mean_board_c"`
		}{MaxBoardC: rep.Level2.MaxBoardC, MeanBoardC: rep.Level2.MeanBoardC}
		out.Level2 = l2
	}
	if rep.Level3 != nil {
		l3 := &struct {
			WorstC  float64      `json:"worst_c"`
			AllPass bool         `json:"all_pass"`
			Margins []MarginJSON `json:"margins"`
		}{WorstC: rep.Level3.WorstC, AllPass: rep.Level3.AllPass}
		for _, m := range rep.Level3.Margins {
			l3.Margins = append(l3.Margins, MarginJSON{
				RefDes:  m.RefDes,
				TjC:     units.KToC(m.Tj),
				MaxTjC:  units.KToC(m.MaxTj),
				MarginK: m.Margin,
				Pass:    m.Pass,
			})
		}
		out.Level3 = l3
	}
	if rep.Mech != nil {
		me := &struct {
			FundamentalHz float64 `json:"fundamental_hz"`
			ModePlaced    bool    `json:"mode_placed"`
			ResponseGRMS  float64 `json:"response_grms"`
			Z3SigmaUm     float64 `json:"z3sigma_um"`
			SteinbergUm   float64 `json:"steinberg_um"`
			FatigueOK     bool    `json:"fatigue_ok"`
		}{
			FundamentalHz: rep.Mech.FundamentalHz,
			ModePlaced:    rep.Mech.ModePlaced,
			ResponseGRMS:  rep.Mech.ResponseGRMS,
			Z3SigmaUm:     rep.Mech.Z3SigmaUm,
			SteinbergUm:   rep.Mech.SteinbergUm,
			FatigueOK:     rep.Mech.FatigueOK,
		}
		out.Mech = me
	}
	return out
}

// marshalResponse renders a response with the canonical indentation the
// cache and dedup layers replay byte-for-byte.  json.Marshal is already
// deterministic for these fixed-field structs (maps never appear on the
// response, NaN is mapped to nil pointers before encoding), so
// identical requests produce bitwise-identical bodies.
func marshalResponse(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: marshaling response: %w", err)
	}
	return append(b, '\n'), nil
}
