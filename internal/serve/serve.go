package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"aeropack/internal/obs"
	"aeropack/internal/obs/obshttp"
)

// Options configures a study server.
type Options struct {
	// Workers bounds solver concurrency within one study (<= 0 means
	// GOMAXPROCS).  With several studies in flight each gets its own
	// pool of this size, so Workers × MaxInflight is the worst-case
	// goroutine fan-out.
	Workers int
	// MaxInflight is the number of studies computed concurrently; the
	// admission-control semaphore size (<= 0 means 4).
	MaxInflight int
	// MaxQueue bounds requests waiting for an admission slot.  A
	// request beyond the queue is rejected with 429 + Retry-After
	// (<= 0 means 64).
	MaxQueue int
	// CacheDir persists finished response bodies across restarts;
	// empty keeps the cache memory-only.
	CacheDir string
	// Registry receives the serve_* counters and backs the mounted
	// /metrics route.  Nil uses obs.Default(), creating a fresh
	// registry when that is unset too.
	Registry *obs.Registry
}

// call is one in-flight singleflight computation.  The leader fills
// status/body then closes done; followers block on done and replay the
// bytes, so N concurrent identical requests cost one computation and
// return bitwise-identical bodies.
type call struct {
	done   chan struct{}
	status int
	body   []byte
}

// job is one async study.  done is closed after status/body are set
// (the channel close publishes the fields to readers).
type job struct {
	done   chan struct{}
	status int
	body   []byte
}

// Server is the aeropackd HTTP handler: study routes plus the obshttp
// ops routes on one mux.
//
// Routes:
//
//	POST /v1/studies      run a study (sync, or async with "async":true)
//	GET  /v1/jobs/{id}    async job state
//	GET  /v1/results/{id} async job result (the sync body, verbatim)
//	GET  /metrics /healthz /events /progress   (obshttp)
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *resultCache
	reg   *obs.Registry

	// Admission control: sem holds the inflight slots, waiting counts
	// requests blocked on a slot (bounded by MaxQueue).
	sem     chan struct{}
	waiting atomic.Int64

	mu       sync.Mutex
	inflight map[string]*call
	jobs     map[string]*job

	jobSeq atomic.Int64
	jobsWG sync.WaitGroup
}

// NewServer builds a study server.  The returned server is ready to
// serve; Close waits out any async jobs still running.
func NewServer(opts Options) (*Server, error) {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.Registry == nil {
		if opts.Registry = obs.Default(); opts.Registry == nil {
			opts.Registry = obs.NewRegistry()
		}
	}
	cache, err := newResultCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:     opts,
		cache:    cache,
		reg:      opts.Registry,
		sem:      make(chan struct{}, opts.MaxInflight),
		inflight: make(map[string]*call),
		jobs:     make(map[string]*job),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", s.handleStudies)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	ops := obshttp.NewHandler(obshttp.Options{
		Registry: opts.Registry,
		Recorder: obs.CurrentRecorder(),
		Board:    obs.CurrentBoard(),
	})
	for _, route := range []string{"/metrics", "/healthz", "/events", "/progress"} {
		mux.Handle("GET "+route, ops)
	}
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close waits for outstanding async jobs to finish.  The HTTP listener
// (owned by the caller) must be shut down first so no new jobs start.
func (s *Server) Close() error {
	s.jobsWG.Wait()
	return nil
}

// count bumps a serve_* counter on the server's registry.
func (s *Server) count(name string) {
	s.reg.Counter(name).Inc()
}

// maxRequestBytes bounds a study request document.  The largest
// legitimate request (a board study with hundreds of components or a
// dense techmap grid) is well under this.
const maxRequestBytes = 1 << 20

// decodeRequest parses and validates a request body.  Unknown fields
// are rejected: a typoed "buget" silently ignored would run an
// unbudgeted study, the opposite of what the client asked for.
func decodeRequest(body []byte) (*StudyRequest, *StudyError) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req StudyRequest
	if err := dec.Decode(&req); err != nil {
		return nil, studyErr(400, CodeBadRequest, "serve: parsing request: %v", err)
	}
	if dec.More() {
		return nil, studyErr(400, CodeBadRequest, "serve: trailing data after request document")
	}
	if serr := req.validate(); serr != nil {
		return nil, serr
	}
	return &req, nil
}

// writeBody writes a finished response with its transport headers.
// cacheState is "hit", "miss" or "dedup" — it travels in a header, not
// the body, so cached/deduped replays stay bitwise-identical.
func writeBody(w http.ResponseWriter, status int, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	if cacheState != "" {
		w.Header().Set("X-Aeropack-Cache", cacheState)
	}
	if status == 429 {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_, _ = w.Write(body) // client gone is the client's problem
}

// writeErr renders a StudyError document.
func writeErr(w http.ResponseWriter, e *StudyError) {
	body, err := marshalResponse(e)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, e.Status, body, "")
}

// renderErr marshals a StudyError for storage in a call/job record.
func renderErr(e *StudyError) (int, []byte) {
	body, err := marshalResponse(e)
	if err != nil {
		return http.StatusInternalServerError, []byte(err.Error() + "\n")
	}
	return e.Status, body
}

// handleStudies is POST /v1/studies.
func (s *Server) handleStudies(w http.ResponseWriter, r *http.Request) {
	s.count("serve_requests_total")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeErr(w, studyErr(400, CodeBadRequest, "serve: reading request: %v", err))
		return
	}
	req, serr := decodeRequest(body)
	if serr != nil {
		writeErr(w, serr)
		return
	}
	key := requestKey(body)
	if req.Async {
		s.startJob(w, key, req)
		return
	}
	status, respBody, cacheState := s.compute(key, req)
	writeBody(w, status, respBody, cacheState)
}

// compute produces the response bytes for one request, going through
// the cache, the singleflight dedup and admission control in that
// order: a cache hit costs no slot, and N concurrent identical misses
// occupy one slot between them (followers wait on the leader, not in
// the admission queue).  The returned body is bitwise-identical across
// hit/miss/dedup for the same request bytes.
func (s *Server) compute(key string, req *StudyRequest) (status int, body []byte, cacheState string) {
	if b := s.cache.get(key); b != nil {
		s.count("serve_cache_hits_total")
		return http.StatusOK, b, "hit"
	}

	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.count("serve_dedup_hits_total")
		<-c.done
		return c.status, c.body, "dedup"
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()
	s.count("serve_cache_misses_total")
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(c.done)
	}()

	// Admission happens as the singleflight leader: followers of this
	// key share the leader's outcome — including a queue-full 429,
	// which is the honest answer for every caller of an overloaded key.
	if serr := s.admit(); serr != nil {
		c.status, c.body = renderErr(serr)
		return c.status, c.body, "miss"
	}
	defer s.release()

	resp, serr := executeStudy(req, s.opts.Workers)
	if serr != nil {
		c.status, c.body = renderErr(serr)
		return c.status, c.body, "miss"
	}
	resp.RequestSHA256 = key
	b, err := marshalResponse(resp)
	if err != nil {
		c.status, c.body = renderErr(studyErr(500, CodeStudyFailed, "%v", err))
		return c.status, c.body, "miss"
	}
	c.status, c.body = http.StatusOK, b
	// Budgeted results depend on wall clock and scheduling, so only
	// unbudgeted studies — pure functions of the request bytes — are
	// cached.  A failed disk write costs future recomputes only.
	if req.Budget == nil {
		if err := s.cache.put(key, b); err != nil {
			s.count("serve_cache_write_errors_total")
		}
	}
	return c.status, c.body, "miss"
}

// admit acquires an inflight slot, queueing up to MaxQueue requests
// when all slots are busy.  The state machine is ADMIT (free slot,
// immediate), QUEUE (all slots busy, queue has room: block until a
// slot frees) or REJECT (queue full too: 429 + Retry-After).
func (s *Server) admit() *StudyError {
	select {
	case s.sem <- struct{}{}:
		return nil // ADMIT
	default:
	}
	if s.waiting.Add(1) > int64(s.opts.MaxQueue) {
		s.waiting.Add(-1)
		s.count("serve_rejected_total")
		return studyErr(429, CodeQueueFull,
			"serve: %d studies in flight and %d queued; retry later",
			s.opts.MaxInflight, s.opts.MaxQueue) // REJECT
	}
	s.sem <- struct{}{} // QUEUE: block until a slot frees
	s.waiting.Add(-1)
	return nil
}

// release frees an admission slot.
func (s *Server) release() { <-s.sem }

// jobTicket is the 202 response to an async study submission.
type jobTicket struct {
	Schema    string `json:"schema"`
	JobID     string `json:"job_id"`
	JobURL    string `json:"job_url"`
	ResultURL string `json:"result_url"`
}

// jobState is the GET /v1/jobs/{id} document.
type jobState struct {
	Schema       string `json:"schema"`
	JobID        string `json:"job_id"`
	State        string `json:"state"` // "running" | "done"
	ResultStatus int    `json:"result_status,omitempty"`
	ResultURL    string `json:"result_url,omitempty"`
}

// startJob launches an async study and answers 202 with the job
// ticket.  The job goroutine reuses the sync compute path, so the
// eventual result body is bitwise-identical to the sync response for
// the same request bytes.
func (s *Server) startJob(w http.ResponseWriter, key string, req *StudyRequest) {
	id := fmt.Sprintf("j%d", s.jobSeq.Add(1))
	j := &job{done: make(chan struct{})}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	s.count("serve_jobs_total")
	s.jobsWG.Add(1)
	go func() {
		defer s.jobsWG.Done()
		status, body, _ := s.compute(key, req)
		j.status, j.body = status, body
		close(j.done) // publishes status/body to readers
	}()
	ticket, err := marshalResponse(jobTicket{
		Schema: JobSchema, JobID: id,
		JobURL:    "/v1/jobs/" + id,
		ResultURL: "/v1/results/" + id,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, http.StatusAccepted, ticket, "")
}

// lookupJob resolves {id} or writes the 404 document.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (string, *job) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, studyErr(404, CodeNotFound, "serve: unknown job %q", id))
		return id, nil
	}
	return id, j
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	state := jobState{Schema: JobSchema, JobID: id, State: "running"}
	select {
	case <-j.done:
		state.State = "done"
		state.ResultStatus = j.status
		state.ResultURL = "/v1/results/" + id
	default:
	}
	body, err := marshalResponse(state)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, http.StatusOK, body, "")
}

// handleResult is GET /v1/results/{id}: replays the finished job's
// body verbatim, or answers 409 while the study is still running.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	select {
	case <-j.done:
		writeBody(w, j.status, j.body, "")
	default:
		writeErr(w, studyErr(409, CodeNotReady, "serve: job %q still running", id))
	}
}
