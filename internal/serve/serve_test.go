package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aeropack/internal/obs"
)

// soloSolves measures the engine solve count of exactly one execution
// of body, on a private server and registry, for comparison against the
// deduplicated run.
func soloSolves(t *testing.T, body []byte) int64 {
	t.Helper()
	reg := obs.NewRegistry()
	old := obs.Default()
	obs.SetDefault(reg)
	defer obs.SetDefault(old)
	s := newTestServer(t, Options{Workers: 2, Registry: reg})
	if w := postStudy(s, body); w.Code != http.StatusOK {
		t.Fatalf("solo run status = %d", w.Code)
	}
	return reg.Counter("cosee_solves_total").Value()
}

// TestDedupConcurrentIdentical is the satellite race test: 100
// concurrent identical requests must trigger exactly one solver
// execution and return bitwise-identical bodies (run under -race in
// verify.sh).  The engines' solve counter lands on the obs default
// registry, so the test swaps in its own.
func TestDedupConcurrentIdentical(t *testing.T) {
	body := []byte(`{"kind": "sweep", "sweep": {"use_lhp": true, "tilt_deg": 22, "powers_w": [55, 85]}}`)
	want := soloSolves(t, body)
	if want == 0 {
		t.Fatal("solo run recorded no cosee solves; counter plumbing broken")
	}

	reg := obs.NewRegistry()
	old := obs.Default()
	obs.SetDefault(reg)
	defer obs.SetDefault(old)
	s := newTestServer(t, Options{Workers: 2, Registry: reg})

	const clients = 100
	start := make(chan struct{})
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			w := postStudy(s, body)
			statuses[i] = w.Code
			bodies[i] = w.Body.Bytes()
		}()
	}
	close(start)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d: body differs from client 0", i)
		}
	}
	if got := reg.Counter("cosee_solves_total").Value(); got != want {
		t.Errorf("cosee_solves_total = %d after 100 identical requests, want %d (one execution)", got, want)
	}
	misses := reg.Counter("serve_cache_misses_total").Value()
	dedup := reg.Counter("serve_dedup_hits_total").Value()
	hits := reg.Counter("serve_cache_hits_total").Value()
	if misses != 1 {
		t.Errorf("serve_cache_misses_total = %d, want 1", misses)
	}
	if dedup+hits != clients-1 {
		t.Errorf("dedup (%d) + cache hits (%d) = %d, want %d", dedup, hits, dedup+hits, clients-1)
	}
}

// TestCacheSpeedup pins the acceptance bound: a cache hit must be at
// least 100x faster than the cold computation of the same study.  The
// board study kind computes for tens of milliseconds cold, so the bound
// has orders of magnitude of headroom over a ~microsecond map lookup.
func TestCacheSpeedup(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	body := readContract(t, "study.request.json")

	t0 := time.Now()
	w := postStudy(s, body)
	cold := time.Since(t0)
	if w.Code != http.StatusOK || w.Header().Get("X-Aeropack-Cache") != "miss" {
		t.Fatalf("cold: status %d cache %q", w.Code, w.Header().Get("X-Aeropack-Cache"))
	}

	const hits = 20
	t1 := time.Now()
	var last *bytes.Buffer
	for i := 0; i < hits; i++ {
		hw := postStudy(s, body)
		if hw.Code != http.StatusOK || hw.Header().Get("X-Aeropack-Cache") != "hit" {
			t.Fatalf("hit %d: status %d cache %q", i, hw.Code, hw.Header().Get("X-Aeropack-Cache"))
		}
		last = hw.Body
	}
	avgHit := time.Since(t1) / hits
	if !bytes.Equal(last.Bytes(), w.Body.Bytes()) {
		t.Error("cached body differs from cold body")
	}
	if avgHit > cold/100 {
		t.Errorf("cache hit %v vs cold %v: speedup %.0fx < 100x", avgHit, cold, float64(cold)/float64(avgHit))
	}
	t.Logf("cold %v, avg hit %v (%.0fx)", cold, avgHit, float64(cold)/float64(avgHit))
}

// TestCacheDiskPersistence checks -cache-dir: a second server over the
// same directory serves the first server's results without recompute,
// and an empty (torn) file falls back to recompute instead of replaying
// garbage.
func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	body := readContract(t, "techmap.request.json")
	key := requestKey(body)

	s1 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	w1 := postStudy(s1, body)
	if w1.Code != http.StatusOK {
		t.Fatalf("status %d", w1.Code)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		t.Fatalf("cache entry not persisted: %v", err)
	}
	if !bytes.Equal(onDisk, w1.Body.Bytes()) {
		t.Error("persisted entry differs from served body")
	}

	s2 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	w2 := postStudy(s2, body)
	if w2.Code != http.StatusOK || w2.Header().Get("X-Aeropack-Cache") != "hit" {
		t.Fatalf("restart: status %d cache %q, want disk hit", w2.Code, w2.Header().Get("X-Aeropack-Cache"))
	}
	if !bytes.Equal(w2.Body.Bytes(), w1.Body.Bytes()) {
		t.Error("disk-cached body differs from original")
	}

	// Torn write: an empty file must recompute, not replay.
	if err := os.WriteFile(filepath.Join(dir, key+".json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	w3 := postStudy(s3, body)
	if w3.Code != http.StatusOK || w3.Header().Get("X-Aeropack-Cache") != "miss" {
		t.Fatalf("empty entry: status %d cache %q, want recompute", w3.Code, w3.Header().Get("X-Aeropack-Cache"))
	}
	if !bytes.Equal(w3.Body.Bytes(), w1.Body.Bytes()) {
		t.Error("recomputed body differs from original")
	}
}

// TestBudgetedNotCached checks budgeted studies bypass the result
// cache: their outcome depends on wall clock and scheduling, so every
// submission recomputes.
func TestBudgetedNotCached(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	// Generous budget: the study succeeds, but must still not be cached.
	body := []byte(`{"kind": "techmap", "budget": {"max_solver_iters": 1000000}, "techmap": {"powers_w": [20], "fluxes_w_cm2": [2]}}`)
	for i := 0; i < 2; i++ {
		w := postStudy(s, body)
		if w.Code != http.StatusOK || w.Header().Get("X-Aeropack-Cache") != "miss" {
			t.Fatalf("request %d: status %d cache %q, want recompute", i, w.Code, w.Header().Get("X-Aeropack-Cache"))
		}
	}
	if got := s.reg.Counter("serve_cache_misses_total").Value(); got != 2 {
		t.Errorf("serve_cache_misses_total = %d, want 2", got)
	}
	if s.cache.len() != 0 {
		t.Errorf("cache holds %d entries, want 0 for budgeted-only traffic", s.cache.len())
	}
}

// TestWallClockBudget checks the other budget axis: an already-expired
// wall-clock deadline trips the first poll and surfaces as 422.
func TestWallClockBudget(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	body := []byte(`{"kind": "fig10", "budget": {"max_wall_ms": 1}}`)
	time.Sleep(2 * time.Millisecond) // the deadline is taken at decode; ensure expiry
	w := postStudy(s, body)
	if w.Code != 422 {
		t.Fatalf("status = %d, want 422\nbody: %s", w.Code, w.Body.Bytes())
	}
	if !bytes.Contains(w.Body.Bytes(), []byte(`"code": "budget_exceeded"`)) {
		t.Errorf("error body misses budget_exceeded code:\n%s", w.Body.Bytes())
	}
}

// TestKeepGoingKinds drives the keep-going path of the remaining kinds
// (fig10 with a bad material cannot fail per-point, so fault injection
// is exercised at the cosee layer; here the qualification and study
// kinds run keep-going end-to-end on healthy inputs and must be
// non-partial and bitwise-stable).
func TestKeepGoingKinds(t *testing.T) {
	for _, kind := range []string{"qualification", "study", "fig10"} {
		t.Run(kind, func(t *testing.T) {
			base := readContract(t, kind+".request.json")
			var doc map[string]any
			if err := json.Unmarshal(base, &doc); err != nil {
				t.Fatal(err)
			}
			doc["keep_going"] = true
			body, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			s := newTestServer(t, Options{Workers: 2})
			w := postStudy(s, body)
			if w.Code != http.StatusOK {
				t.Fatalf("status = %d\nbody: %s", w.Code, w.Body.Bytes())
			}
			if bytes.Contains(w.Body.Bytes(), []byte(`"partial": true`)) {
				t.Errorf("healthy keep-going run reported partial:\n%s", w.Body.Bytes())
			}
			w2 := postStudy(s, body)
			if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
				t.Error("keep-going response not bitwise-stable")
			}
		})
	}
}

// TestExtendedQualification covers the extended campaign switch.
func TestExtendedQualification(t *testing.T) {
	base := readContract(t, "qualification.request.json")
	var doc map[string]any
	if err := json.Unmarshal(base, &doc); err != nil {
		t.Fatal(err)
	}
	doc["qualification"].(map[string]any)["extended"] = true
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Workers: 2})
	w := postStudy(s, body)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d\nbody: %s", w.Code, w.Body.Bytes())
	}
	// The extended campaign adds tests beyond the base four.
	if n := bytes.Count(w.Body.Bytes(), []byte(`"test":`)); n <= 4 {
		t.Errorf("extended campaign returned %d tests, want > 4", n)
	}
}

// TestQueueThenAdmit checks the QUEUE state of admission control: with
// the slot held, a request waits rather than rejects while the queue
// has room, and completes once the slot frees.
func TestQueueThenAdmit(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, MaxInflight: 1, MaxQueue: 4})
	s.sem <- struct{}{} // hold the only slot
	done := make(chan *bytes.Buffer, 1)
	go func() {
		w := postStudy(s, readContract(t, "techmap.request.json"))
		done <- w.Body
	}()
	// The request must be parked in the queue, not answered.
	select {
	case <-done:
		t.Fatal("request completed while the admission slot was held")
	case <-time.After(50 * time.Millisecond):
	}
	<-s.sem // free the slot
	select {
	case b := <-done:
		if !bytes.Contains(b.Bytes(), []byte(`"kind": "techmap"`)) {
			t.Errorf("queued request returned wrong body:\n%s", b.Bytes())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never completed after the slot freed")
	}
}

// TestRequestTooLarge checks the request size guard.
func TestRequestTooLarge(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	big := []byte(fmt.Sprintf(`{"kind": "fig10", "fig10": {"structure": %q}}`,
		bytes.Repeat([]byte("x"), maxRequestBytes)))
	w := postStudy(s, big)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
}
