// Package loadgen drives concurrent study-request load against an
// aeropackd endpoint and reduces the observed per-request durations to
// the aeropack-bench/v1 latency percentiles.  It is the measurement
// half of the serve acceptance story: thousands of concurrent requests,
// zero dropped jobs (429s are retried honoring Retry-After, never
// counted as completions), and latency tails recorded where the perf
// watchdog can see them.
package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"aeropack/internal/report"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Bodies are the request documents, assigned round-robin across
	// the request sequence.  At least one is required.
	Bodies [][]byte
	// Requests is the total number of studies to complete (<= 0 means
	// len(Bodies)).
	Requests int
	// Concurrency is the number of parallel clients (<= 0 means 8).
	Concurrency int
	// Client overrides the HTTP client (nil uses a dedicated client
	// with a generous per-request timeout).
	Client *http.Client
	// MaxRetries bounds 429-retries per request (<= 0 means 50).  A
	// request that exhausts its retries counts as dropped — the number
	// the acceptance gate requires to be zero.
	MaxRetries int
}

// Result is one load run's outcome.
type Result struct {
	Total     int // requests attempted
	Completed int // 2xx responses
	Dropped   int // retries exhausted or terminal non-2xx
	Retries   int // 429 responses that were retried
	CacheHits int // responses served with X-Aeropack-Cache: hit
	DedupHits int // responses served with X-Aeropack-Cache: dedup

	// DurationsNs are per-completed-request wall times (first attempt
	// to final byte, retry waits included — the honest tail under
	// overload), in request order.
	DurationsNs []float64
	// Elapsed is the whole run's wall time.
	Elapsed time.Duration
}

// ThroughputRPS is completed requests per second of run wall time.
func (r *Result) ThroughputRPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// Percentiles reduces the run to the standard latency metric map
// (p50_ms/p95_ms/p99_ms) plus throughput_rps — the units the bench
// pipeline round-trips into BENCH_serve.json.
func (r *Result) Percentiles() map[string]float64 {
	m := report.LatencyMetrics(r.DurationsNs)
	if m == nil {
		m = make(map[string]float64)
	}
	m["throughput_rps"] = r.ThroughputRPS()
	return m
}

// Run executes the load: Concurrency workers pull request indices from
// a shared sequence, POST their body, retry 429s honoring Retry-After,
// and record wall time per completed request.  The only returned error
// is a configuration error; transport-level failures are counted as
// drops so an overload test can assert Dropped == 0 without the run
// aborting mid-way.
func Run(o Options) (*Result, error) {
	if len(o.Bodies) == 0 {
		return nil, fmt.Errorf("loadgen: at least one request body is required")
	}
	if o.Requests <= 0 {
		o.Requests = len(o.Bodies)
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 50
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}

	outcomes := make([]outcome, o.Requests)
	var wg sync.WaitGroup
	var next int64
	var nextMu sync.Mutex
	claim := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= int64(o.Requests) {
			return -1
		}
		n := int(next)
		next++
		return n
	}
	start := time.Now()
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				body := o.Bodies[i%len(o.Bodies)]
				outcomes[i] = post(client, o.BaseURL, body, o.MaxRetries)
			}
		}()
	}
	wg.Wait()

	res := &Result{Total: o.Requests, Elapsed: time.Since(start)}
	for _, oc := range outcomes {
		res.Retries += oc.retries
		if !oc.completed {
			res.Dropped++
			continue
		}
		res.Completed++
		res.DurationsNs = append(res.DurationsNs, oc.durationNs)
		switch oc.cacheState {
		case "hit":
			res.CacheHits++
		case "dedup":
			res.DedupHits++
		}
	}
	return res, nil
}

// outcome is one request's fate.
type outcome struct {
	completed  bool
	durationNs float64
	retries    int
	cacheState string
}

// post runs one request to completion: POST, retry on 429 after the
// server's Retry-After (capped to keep tests fast), give up after
// maxRetries or on any terminal failure.
func post(client *http.Client, baseURL string, body []byte, maxRetries int) (oc outcome) {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(baseURL+"/v1/studies", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		if err := resp.Body.Close(); cerr == nil {
			cerr = err
		}
		if cerr != nil {
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if attempt >= maxRetries {
				return
			}
			oc.retries++
			time.Sleep(retryAfter(resp))
			continue
		}
		if resp.StatusCode/100 != 2 {
			return
		}
		oc.completed = true
		oc.durationNs = float64(time.Since(start).Nanoseconds())
		oc.cacheState = resp.Header.Get("X-Aeropack-Cache")
		return
	}
}

// retryAfter reads the server's backoff hint, clamped to [10ms, 1s] so
// a misbehaving header can neither hot-loop nor stall the run.
func retryAfter(resp *http.Response) time.Duration {
	d := 100 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			d = time.Duration(secs) * time.Second
		}
	}
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}
