package loadgen

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"aeropack/internal/obs"
	"aeropack/internal/report"
	"aeropack/internal/serve"
)

// sweepBodies builds n distinct sweep requests (different power
// points), so a load run mixes fresh computations with dedup/cache
// traffic the way real clients would.
func sweepBodies(n int) [][]byte {
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(
			`{"kind": "sweep", "sweep": {"use_lhp": true, "powers_w": [%d, %d]}}`,
			20+i, 60+i))
	}
	return bodies
}

// newLoadServer starts a study server on a real listener with a
// test-local registry.
func newLoadServer(t testing.TB, opts serve.Options) *httptest.Server {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s, err := serve.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return hs
}

// TestLoadGen1000Concurrent is the acceptance gate: 1,000 concurrent
// study requests against a small worker pool, zero dropped jobs.  The
// eight distinct bodies keep eight computations in play while dedup and
// the result cache absorb the rest.
func TestLoadGen1000Concurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-connection load run skipped in -short mode")
	}
	hs := newLoadServer(t, serve.Options{Workers: 1, MaxInflight: 4, MaxQueue: 64})
	res, err := Run(Options{
		BaseURL:     hs.URL,
		Bodies:      sweepBodies(8),
		Requests:    1000,
		Concurrency: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d of %d requests dropped (retries: %d)", res.Dropped, res.Total, res.Retries)
	}
	if res.Completed != 1000 || len(res.DurationsNs) != 1000 {
		t.Fatalf("completed %d / durations %d, want 1000", res.Completed, len(res.DurationsNs))
	}
	// 8 bodies compute at most once each (dedup may even merge a retry
	// into an earlier leader); everything else is served for free.
	if free := res.CacheHits + res.DedupHits; free < 1000-8 {
		t.Errorf("only %d of 1000 requests served via dedup/cache, want >= 992", free)
	}
	m := res.Percentiles()
	for _, unit := range []string{"p50_ms", "p95_ms", "p99_ms"} {
		if m[unit] <= 0 {
			t.Errorf("%s = %g, want > 0", unit, m[unit])
		}
	}
	if m["p50_ms"] > m["p99_ms"] {
		t.Errorf("p50 %g > p99 %g", m["p50_ms"], m["p99_ms"])
	}
	t.Logf("p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, %.0f req/s, %d dedup, %d cache hits, %d retries",
		m["p50_ms"], m["p95_ms"], m["p99_ms"], m["throughput_rps"],
		res.DedupHits, res.CacheHits, res.Retries)
}

// TestRunValidation covers the configuration errors and defaults.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("Run accepted zero bodies")
	}
	hs := newLoadServer(t, serve.Options{Workers: 1})
	res, err := Run(Options{BaseURL: hs.URL, Bodies: sweepBodies(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 2 || res.Completed != 2 {
		t.Errorf("defaulted run: total %d completed %d, want 2/2", res.Total, res.Completed)
	}
}

// TestRunCountsDrops checks a terminal client error is a drop, not a
// hang: bad request bodies complete the run with Dropped set.
func TestRunCountsDrops(t *testing.T) {
	hs := newLoadServer(t, serve.Options{Workers: 1})
	res, err := Run(Options{
		BaseURL: hs.URL,
		Bodies:  [][]byte{[]byte(`{"kind": "warp-field"}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 || res.Completed != 0 {
		t.Errorf("dropped %d completed %d, want 1/0", res.Dropped, res.Completed)
	}
}

// BenchmarkServe_LoadGen measures the serving stack under concurrent
// load and reports the latency percentiles plus throughput in the
// aeropack-bench/v1 metric units, so
//
//	go test -bench Serve_LoadGen -run '^$' ./internal/serve/loadgen | benchjson -o BENCH_serve.json
//
// lands the numbers where CompareBenchSets watches them.
func BenchmarkServe_LoadGen(b *testing.B) {
	var all []float64
	var completed int
	var elapsed float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		hs := newLoadServer(b, serve.Options{Workers: 1, MaxInflight: 4, MaxQueue: 64})
		b.StartTimer()
		res, err := Run(Options{
			BaseURL:     hs.URL,
			Bodies:      sweepBodies(8),
			Requests:    400,
			Concurrency: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Dropped != 0 {
			b.Fatalf("%d requests dropped", res.Dropped)
		}
		all = append(all, res.DurationsNs...)
		completed += res.Completed
		elapsed += res.Elapsed.Seconds()
	}
	m := report.LatencyMetrics(all)
	b.ReportMetric(m["p50_ms"], "p50_ms")
	b.ReportMetric(m["p95_ms"], "p95_ms")
	b.ReportMetric(m["p99_ms"], "p99_ms")
	b.ReportMetric(float64(completed)/elapsed, "throughput_rps")
	b.ReportMetric(0, "allocs/op") // allocation noise is not this bench's signal
}
