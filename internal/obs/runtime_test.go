package obs

import (
	"testing"
	"time"
)

func TestSamplerPublishesGauges(t *testing.T) {
	reg := NewRegistry()
	s := StartSampler(reg, time.Hour) // synchronous first sample; ticker never fires
	defer s.Stop()
	snap := reg.Snapshot()
	wantGauges := []string{
		"runtime_goroutines",
		"runtime_heap_alloc_bytes",
		"runtime_heap_objects",
		"runtime_sys_bytes",
		"runtime_gc_cycles",
		"runtime_gc_pause_total_seconds",
	}
	for _, name := range wantGauges {
		v, ok := snap.Gauges[name]
		if !ok {
			t.Fatalf("gauge %q not published", name)
		}
		if v < 0 {
			t.Fatalf("gauge %q = %g, want >= 0", name, v)
		}
	}
	if snap.Gauges["runtime_goroutines"] < 1 {
		t.Fatalf("runtime_goroutines = %g, want >= 1", snap.Gauges["runtime_goroutines"])
	}
	if snap.Gauges["runtime_heap_alloc_bytes"] <= 0 {
		t.Fatalf("runtime_heap_alloc_bytes = %g, want > 0", snap.Gauges["runtime_heap_alloc_bytes"])
	}
	if snap.Counters["runtime_samples_total"] < 1 {
		t.Fatalf("runtime_samples_total = %d, want >= 1", snap.Counters["runtime_samples_total"])
	}
}

func TestSamplerTicks(t *testing.T) {
	reg := NewRegistry()
	s := StartSampler(reg, time.Millisecond)
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Counters["runtime_samples_total"] >= 3 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("sampler never accumulated 3 ticks within 5s")
}

func TestSamplerStopIdempotentAndNilSafe(t *testing.T) {
	var nilS *Sampler
	nilS.Stop() // must not panic

	if s := StartSampler(nil, time.Second); s != nil {
		t.Fatal("StartSampler(nil, ...) should return nil")
	}

	s := StartSampler(NewRegistry(), time.Millisecond)
	s.Stop()
	s.Stop() // second Stop must not panic or deadlock
}
