package obs

import (
	"runtime"
	"sync"
	"time"
)

// Sampler periodically publishes Go runtime health into a metrics
// Registry so a long-running campaign can be watched live (the ops
// endpoint's /metrics route scrapes the same registry).  Gauges
// published every tick:
//
//	runtime_goroutines              goroutine count
//	runtime_heap_alloc_bytes        live heap bytes
//	runtime_heap_objects            live heap objects
//	runtime_sys_bytes               total bytes obtained from the OS
//	runtime_gc_cycles               completed GC cycles
//	runtime_gc_pause_total_seconds  cumulative stop-the-world pause
//	runtime_gc_last_pause_seconds   most recent GC pause
//	runtime_samples_total           counter, ticks taken
//
// The sampler owns one goroutine; Stop cancels and joins it, so the
// goroutine never outlives the run that started it (the goroleak
// contract for library goroutines).
type Sampler struct {
	reg      *Registry
	interval time.Duration
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartSampler begins sampling the runtime into reg every interval
// (<= 0 selects one second).  It samples once synchronously before
// returning, so a registry is never scraped empty, then ticks in a
// background goroutine until Stop.  A nil registry returns a nil
// sampler whose Stop is a no-op.
func StartSampler(reg *Registry, interval time.Duration) *Sampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{reg: reg, interval: interval, stop: make(chan struct{})}
	for name, help := range map[string]string{
		"runtime_goroutines":             "Current goroutine count.",
		"runtime_heap_alloc_bytes":       "Live heap bytes (MemStats.HeapAlloc).",
		"runtime_heap_objects":           "Live heap object count.",
		"runtime_sys_bytes":              "Total bytes obtained from the OS.",
		"runtime_gc_cycles":              "Completed GC cycles.",
		"runtime_gc_pause_total_seconds": "Cumulative stop-the-world GC pause.",
		"runtime_gc_last_pause_seconds":  "Most recent GC pause duration.",
		"runtime_samples_total":          "Runtime sampler ticks taken.",
	} {
		reg.SetHelp(name, help)
	}
	s.sample()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sample()
			}
		}
	}()
	return s
}

// Stop cancels the sampling goroutine and blocks until it has exited.
// Safe to call more than once and on a nil sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// sample takes one runtime reading.  ReadMemStats briefly stops the
// world, which is why the cadence is a knob: the one-second default
// costs microseconds per tick, invisible next to a steady solve.
func (s *Sampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.reg.Gauge("runtime_goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("runtime_heap_alloc_bytes").Set(float64(m.HeapAlloc))
	s.reg.Gauge("runtime_heap_objects").Set(float64(m.HeapObjects))
	s.reg.Gauge("runtime_sys_bytes").Set(float64(m.Sys))
	s.reg.Gauge("runtime_gc_cycles").Set(float64(m.NumGC))
	s.reg.Gauge("runtime_gc_pause_total_seconds").Set(float64(m.PauseTotalNs) / 1e9)
	if m.NumGC > 0 {
		last := m.PauseNs[(m.NumGC+255)%256]
		s.reg.Gauge("runtime_gc_last_pause_seconds").Set(float64(last) / 1e9)
	}
	s.reg.Counter("runtime_samples_total").Inc()
}
