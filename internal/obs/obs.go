// Package obs is aeropack's stdlib-only observability layer: hierarchical
// spans with monotonic timings and a Chrome trace-event exporter,
// process-wide metrics (counters, gauges, fixed-bucket histograms) with
// JSON and Prometheus text exporters, and per-iteration convergence
// traces for the iterative solvers.
//
// The layer is built around two process-global, test-injectable handles:
//
//   - the metrics Registry (Default / SetDefault), nil by default, and
//   - the span Tracer (Tracer / SetTracer), nil by default.
//
// Both default to disabled.  Every instrumented call site is guarded by a
// single atomic pointer load plus a nil check, and every method on a nil
// *Registry, *Counter, *Gauge, *Histogram, *Trace or *Span is a no-op, so
// the disabled fast path costs ≈1 ns and zero allocations per guarded
// call (see BenchmarkObsDisabled).  Instrumentation is therefore safe to
// leave in the hot paths of the solvers permanently.
//
// The span structure produced for a fixed workload is deterministic —
// span names, nesting and creation order depend only on the computation,
// never on scheduling (parallel regions excepted) — so golden tests can
// assert the span tree (see Trace.TreeString).  See DESIGN.md
// "Observability" for the span taxonomy and canonical metric names.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.  No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.  No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can be set or accumulated.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.  No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates v into the gauge (atomic compare-and-swap loop).
// No-op on a nil gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram.  Buckets are cumulative upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-accumulated
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.  No-op on a nil histogram; NaN samples are
// counted in the +Inf bucket so a poisoned solve still shows up.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	if math.IsNaN(v) {
		idx = len(h.bounds)
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Count returns the total number of samples (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket sample counts; the final entry is
// the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Registry holds named metrics.  All methods are safe for concurrent use;
// every accessor on a nil *Registry returns nil, which chains into the
// no-op collector methods — the disabled fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	helps    map[string]string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		helps:    make(map[string]string),
	}
}

// SetHelp attaches a one-line description to a metric name, emitted as
// the Prometheus "# HELP" line (with exposition-format escaping) ahead
// of the metric's TYPE line.  Nil-safe; the last call wins.  Metrics
// without help text export TYPE only, which the format permits.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helps[name] = help
}

// Help returns the help text registered for name ("" when unset).
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.helps[name]
}

// Counter returns (creating if needed) the named counter, or nil when the
// registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil when the
// registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram, or nil when
// the registry is nil.  The bucket bounds are fixed on first creation;
// later calls with different bounds return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// snapshot returns the sorted names of each metric kind for deterministic
// export order.
func (r *Registry) snapshot() (counters, gauges, hists []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return counters, gauges, hists
}

// ExpBuckets returns n histogram bounds start, start·factor,
// start·factor², … — the standard shape for latency and residual
// distributions.  Invalid arguments yield a single-bucket fallback
// rather than an error: bucket layout is a display concern, never worth
// failing a solve over.
func ExpBuckets(start, factor float64, n int) []float64 {
	if !(start > 0) || !(factor > 1) || n < 1 {
		return []float64{1}
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, start+2·width, …
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || !(width > 0) {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = start + float64(i)*width
	}
	return out
}

// defaultRegistry is the process-global metrics registry; nil means
// metrics are disabled (the default).
var defaultRegistry atomic.Pointer[Registry]

// Default returns the process-global registry, or nil when metrics are
// disabled.  The single atomic load is the whole cost of a disabled
// call site.
func Default() *Registry { return defaultRegistry.Load() }

// SetDefault installs r as the process-global registry (nil disables
// metrics) and returns the previous registry so tests can restore it.
func SetDefault(r *Registry) *Registry { return defaultRegistry.Swap(r) }
