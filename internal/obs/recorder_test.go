package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(8)
	if got := r.Capacity(); got != 8 {
		t.Fatalf("Capacity = %d, want 8", got)
	}
	if got := r.Recorded(); got != 0 {
		t.Fatalf("Recorded on empty = %d, want 0", got)
	}
	if got := r.Tail(0); len(got) != 0 {
		t.Fatalf("Tail on empty = %v, want empty", got)
	}
	r.Record("solver", "cg", Attr{Key: "iterations", Value: "42"})
	r.Record("fallback", "gmres")
	if got := r.Recorded(); got != 2 {
		t.Fatalf("Recorded = %d, want 2", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	tail := r.Tail(0)
	if len(tail) != 2 {
		t.Fatalf("Tail len = %d, want 2", len(tail))
	}
	if tail[0].Kind != "solver" || tail[0].Name != "cg" || tail[0].Seq != 0 {
		t.Fatalf("tail[0] = %+v", tail[0])
	}
	if len(tail[0].Attrs) != 1 || tail[0].Attrs[0].Key != "iterations" || tail[0].Attrs[0].Value != "42" {
		t.Fatalf("tail[0].Attrs = %+v", tail[0].Attrs)
	}
	if tail[1].Kind != "fallback" || tail[1].Seq != 1 {
		t.Fatalf("tail[1] = %+v", tail[1])
	}
	if tail[0].Time.IsZero() || tail[1].Time.Before(tail[0].Time) {
		t.Fatalf("event times out of order: %v then %v", tail[0].Time, tail[1].Time)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	if got := NewRecorder(0).Capacity(); got != defaultRecorderCapacity {
		t.Fatalf("default capacity = %d, want %d", got, defaultRecorderCapacity)
	}
	if got := NewRecorder(-3).Capacity(); got != defaultRecorderCapacity {
		t.Fatalf("negative capacity = %d, want %d", got, defaultRecorderCapacity)
	}
}

func TestRecorderWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record("solver", "e"+strconv.Itoa(i))
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	tail := r.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("Tail len = %d, want 4 (ring capacity)", len(tail))
	}
	for i, e := range tail {
		wantSeq := int64(6 + i)
		if e.Seq != wantSeq || e.Name != "e"+strconv.Itoa(6+i) {
			t.Fatalf("tail[%d] = {Seq:%d Name:%q}, want seq %d", i, e.Seq, e.Name, wantSeq)
		}
	}
	// A tail shorter than the ring returns the newest events.
	tail2 := r.Tail(2)
	if len(tail2) != 2 || tail2[0].Seq != 8 || tail2[1].Seq != 9 {
		t.Fatalf("Tail(2) = %+v, want seqs 8,9", tail2)
	}
	// Asking for more than buffered clamps to what the ring holds.
	if got := r.Tail(100); len(got) != 4 {
		t.Fatalf("Tail(100) len = %d, want 4", len(got))
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record("solver", "cg") // must not panic
	if r.Recorded() != 0 || r.Dropped() != 0 || r.Capacity() != 0 {
		t.Fatal("nil recorder counters nonzero")
	}
	if r.Tail(5) != nil {
		t.Fatal("nil recorder Tail != nil")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, 0); err == nil {
		t.Fatal("nil recorder WriteJSON should error")
	}
}

func TestRecorderGlobalHandle(t *testing.T) {
	prev := SetRecorder(nil)
	t.Cleanup(func() { SetRecorder(prev) })
	if CurrentRecorder() != nil {
		t.Fatal("recorder should be disabled")
	}
	r := NewRecorder(16)
	SetRecorder(r)
	if CurrentRecorder() != r {
		t.Fatal("CurrentRecorder did not return installed recorder")
	}
	if got := SetRecorder(nil); got != r {
		t.Fatal("SetRecorder did not return previous recorder")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			name := "worker" + strconv.Itoa(g)
			for i := 0; i < per; i++ {
				r.Record("pool", name, Attr{Key: "i", Value: strconv.Itoa(i)})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Recorded(); got != goroutines*per {
		t.Fatalf("Recorded = %d, want %d", got, goroutines*per)
	}
	tail := r.Tail(0)
	if len(tail) != 64 {
		t.Fatalf("Tail len = %d, want 64", len(tail))
	}
	// Seqs in the tail must be strictly increasing and contiguous: the
	// ring never tears an event even under concurrent writers.
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
}

func TestRecorderWriteJSONSchema(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record("cache", "hit", Attr{Key: "i", Value: strconv.Itoa(i)})
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema   string `json:"schema"`
		Capacity int    `json:"capacity"`
		Recorded int64  `json:"recorded"`
		Dropped  int64  `json:"dropped"`
		Events   []struct {
			Seq   int64  `json:"seq"`
			Time  string `json:"time"`
			Kind  string `json:"kind"`
			Name  string `json:"name"`
			Attrs []struct {
				Key   string `json:"key"`
				Value string `json:"value"`
			} `json:"attrs"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Schema != "aeropack-events/v1" {
		t.Fatalf("schema = %q, want aeropack-events/v1", doc.Schema)
	}
	if doc.Capacity != 4 || doc.Recorded != 6 || doc.Dropped != 2 {
		t.Fatalf("header = {cap:%d rec:%d drop:%d}, want {4 6 2}", doc.Capacity, doc.Recorded, doc.Dropped)
	}
	if len(doc.Events) != 4 || doc.Events[0].Seq != 2 || doc.Events[3].Seq != 5 {
		t.Fatalf("events = %+v", doc.Events)
	}
	if doc.Events[0].Kind != "cache" || doc.Events[0].Attrs[0].Key != "i" {
		t.Fatalf("event fields wrong: %+v", doc.Events[0])
	}
	if doc.Events[0].Time == "" {
		t.Fatal("event time not serialized")
	}
	// n > 0 limits the dump to the newest n events.
	buf.Reset()
	if err := r.WriteJSON(&buf, 2); err != nil {
		t.Fatal(err)
	}
	var doc2 struct {
		Events []struct {
			Seq int64 `json:"seq"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc2); err != nil {
		t.Fatal(err)
	}
	if len(doc2.Events) != 2 || doc2.Events[0].Seq != 4 {
		t.Fatalf("Tail-limited dump = %+v, want seqs 4,5", doc2.Events)
	}
}

func TestSpanEventsLandInRecorder(t *testing.T) {
	prevT := SetTracer(NewTrace())
	rec := NewRecorder(32)
	prevR := SetRecorder(rec)
	t.Cleanup(func() {
		SetTracer(prevT)
		SetRecorder(prevR)
	})
	sp := Start(nil, "thermal.SolveSteady")
	child := sp.Start("linalg.CG")
	child.End()
	child.End() // second End must not double-record
	sp.End()
	tail := rec.Tail(0)
	want := []struct{ kind, name string }{
		{"span_begin", "thermal.SolveSteady"},
		{"span_begin", "linalg.CG"},
		{"span_end", "linalg.CG"},
		{"span_end", "thermal.SolveSteady"},
	}
	if len(tail) != len(want) {
		t.Fatalf("recorded %d events, want %d: %+v", len(tail), len(want), tail)
	}
	for i, w := range want {
		if tail[i].Kind != w.kind || tail[i].Name != w.name {
			t.Fatalf("event %d = {%s %s}, want {%s %s}", i, tail[i].Kind, tail[i].Name, w.kind, w.name)
		}
	}
}

func TestDisabledSpansRecordNoEvents(t *testing.T) {
	prevT := SetTracer(nil)
	rec := NewRecorder(8)
	prevR := SetRecorder(rec)
	t.Cleanup(func() {
		SetTracer(prevT)
		SetRecorder(prevR)
	})
	sp := Start(nil, "cosee.Sweep")
	sp.End()
	if got := rec.Recorded(); got != 0 {
		t.Fatalf("disabled spans recorded %d events, want 0", got)
	}
}

// BenchmarkRecorderDisabled pins the disabled flight-recorder path — the
// single atomic load plus nil check guarding every Record call site —
// to the same ≤1 ns / 0 alloc budget as BenchmarkObsDisabledSpan.  This
// is what makes it safe to leave the recorder hooks in the solver hot
// loop permanently.
func BenchmarkRecorderDisabled(b *testing.B) {
	prev := SetRecorder(nil)
	b.Cleanup(func() { SetRecorder(prev) })
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if rec := CurrentRecorder(); rec != nil {
			rec.Record("solver", "cg")
			n++
		}
	}
	benchSink = n
}

// BenchmarkRecorderEnabled is the enabled counterpart for the README
// cost table: one mutex round-trip plus a copy into a preallocated ring
// slot.
func BenchmarkRecorderEnabled(b *testing.B) {
	prev := SetRecorder(NewRecorder(4096))
	b.Cleanup(func() { SetRecorder(prev) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := CurrentRecorder(); rec != nil {
			rec.Record("solver", "cg")
		}
	}
}
