package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Note: these tests mutate the process-global registry/tracer handles, so
// none of them may call t.Parallel.  Each saves the previous handle via
// the SetDefault/SetTracer return value and restores it on cleanup.

func swapGlobals(t *testing.T, reg *Registry, tr *Trace) {
	t.Helper()
	prevR := SetDefault(reg)
	prevT := SetTracer(tr)
	t.Cleanup(func() {
		SetDefault(prevR)
		SetTracer(prevT)
	})
}

func TestObsCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solves")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("solves") != c {
		t.Error("same name should return the same counter")
	}

	g := r.Gauge("util")
	g.Set(0.25)
	g.Add(0.5)
	if got := g.Value(); math.Abs(got-0.75) > 1e-15 {
		t.Errorf("gauge = %g, want 0.75", got)
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); math.Abs(got-555.5) > 1e-12 {
		t.Errorf("sum = %g, want 555.5", got)
	}
	if got, want := h.BucketCounts(), []int64{1, 1, 1, 1}; len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
	// NaN samples land in the +Inf bucket rather than corrupting an
	// interior one.
	h.Observe(math.NaN())
	if got := h.BucketCounts()[3]; got != 2 {
		t.Errorf("+Inf bucket after NaN = %d, want 2", got)
	}
}

func TestObsNilSafety(t *testing.T) {
	// Every collector method must be a no-op (not a panic) on nil.
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	if r.Counter("x").Value() != 0 {
		t.Error("nil counter value should be 0")
	}
	r.Gauge("x").Set(1)
	r.Gauge("x").Add(1)
	if r.Gauge("x").Value() != 0 {
		t.Error("nil gauge value should be 0")
	}
	h := r.Histogram("x", []float64{1})
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil histogram should read as empty")
	}
	if h.Bounds() != nil || h.BucketCounts() != nil {
		t.Error("nil histogram should have nil bounds/counts")
	}
	if snap := r.Snapshot(); snap.Schema != "aeropack-metrics/v1" {
		t.Error("nil registry snapshot should still carry the schema")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}

	var sp *Span
	sp.Attr("k", "v")
	sp.AttrF("k", 1.5)
	sp.AttrInt("k", 2)
	sp.End()
	if child := sp.Start("child"); child != nil {
		t.Error("child of nil span should be nil")
	}
	var tr *Trace
	if tr.Len() != 0 || tr.TreeString() != "" || tr.SpanNames() != nil {
		t.Error("nil trace accessors should read as empty")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("nil trace export should error rather than write an empty file")
	}

	// With both globals disabled, Start must return nil.
	swapGlobals(t, nil, nil)
	if s := Start(nil, "root"); s != nil {
		t.Error("Start with tracing disabled should return nil")
	}
	if Default() != nil {
		t.Error("Default should be nil after SetDefault(nil)")
	}
}

func TestObsBuckets(t *testing.T) {
	got := ExpBuckets(1e-3, 10, 4)
	want := []float64{1e-3, 1e-2, 1e-1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*want[i] {
			t.Errorf("ExpBuckets[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Degenerate arguments fall back to one bucket instead of failing.
	for _, bad := range [][]float64{
		ExpBuckets(0, 10, 4), ExpBuckets(1, 1, 4), ExpBuckets(1, 10, 0),
	} {
		if len(bad) != 1 {
			t.Errorf("degenerate ExpBuckets = %v, want single bucket", bad)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	if lin[0] != 10 || lin[1] != 15 || lin[2] != 20 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	if bad := LinearBuckets(10, 0, 3); len(bad) != 1 {
		t.Errorf("degenerate LinearBuckets = %v, want single bucket", bad)
	}
}

func TestObsSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("linalg_cg_solves_total").Add(7)
	r.Gauge("parallel_pool_utilization").Set(0.5)
	h := r.Histogram("linalg_residual", []float64{1e-9, 1e-6})
	h.Observe(5e-10)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if snap.Schema != "aeropack-metrics/v1" {
		t.Errorf("schema = %q", snap.Schema)
	}
	if snap.Counters["linalg_cg_solves_total"] != 7 {
		t.Errorf("counter = %d, want 7", snap.Counters["linalg_cg_solves_total"])
	}
	if snap.Gauges["parallel_pool_utilization"] != 0.5 {
		t.Errorf("gauge = %g, want 0.5", snap.Gauges["parallel_pool_utilization"])
	}
	hs, ok := snap.Histograms["linalg_residual"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 2 {
		t.Errorf("hist count = %d, want 2", hs.Count)
	}
	// Buckets are cumulative and the final le must round-trip as +Inf.
	last := hs.Buckets[len(hs.Buckets)-1]
	if !math.IsInf(float64(last.Le), +1) {
		t.Errorf("final bucket le = %v, want +Inf", last.Le)
	}
	if last.Count != 2 {
		t.Errorf("final cumulative count = %d, want 2", last.Count)
	}
	if hs.Buckets[0].Count != 1 {
		t.Errorf("first bucket cumulative count = %d, want 1", hs.Buckets[0].Count)
	}
}

func TestObsJSONFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, math.Inf(+1), math.Inf(-1), math.NaN()} {
		data, err := json.Marshal(jsonFloat(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back jsonFloat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		got := float64(back)
		if math.IsNaN(v) {
			if !math.IsNaN(got) {
				t.Errorf("NaN round-tripped to %v", got)
			}
		} else if got != v {
			t.Errorf("%v round-tripped to %v", v, got)
		}
	}
}

func TestObsPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("envtest_tests_total").Add(4)
	r.Gauge("thermal_matrix_nnz").Set(126000)
	h := r.Histogram("parallel_task_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE envtest_tests_total counter\nenvtest_tests_total 4\n",
		"# TYPE thermal_matrix_nnz gauge\nthermal_matrix_nnz 126000\n",
		"# TYPE parallel_task_seconds histogram\n",
		"parallel_task_seconds_bucket{le=\"0.01\"} 1\n",
		"parallel_task_seconds_bucket{le=\"+Inf\"} 2\n",
		"parallel_task_seconds_sum 0.505\n",
		"parallel_task_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestObsSpanTreeDeterminism(t *testing.T) {
	build := func() *Trace {
		tr := NewTrace()
		swapGlobals(t, nil, tr)
		root := Start(nil, "cosee.Sweep")
		root.AttrInt("points", 2)
		for i := 0; i < 2; i++ {
			solve := root.Start("cosee.Solve")
			inner := solve.Start("thermal.Network.SolveSteady")
			inner.End()
			solve.End()
		}
		root.End()
		return tr
	}
	a, b := build().TreeString(), build().TreeString()
	if a != b {
		t.Errorf("span tree not deterministic:\n%s\nvs\n%s", a, b)
	}
	want := "cosee.Sweep\n" +
		"  cosee.Solve\n" +
		"    thermal.Network.SolveSteady\n" +
		"  cosee.Solve\n" +
		"    thermal.Network.SolveSteady\n"
	if a != want {
		t.Errorf("tree = \n%s\nwant\n%s", a, want)
	}
	tr := build()
	if tr.Len() != 5 {
		t.Errorf("Len = %d, want 5", tr.Len())
	}
	names := tr.SpanNames()
	wantNames := []string{"cosee.Solve", "cosee.Sweep", "thermal.Network.SolveSteady"}
	if len(names) != len(wantNames) {
		t.Fatalf("names = %v", names)
	}
	for i := range wantNames {
		if names[i] != wantNames[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], wantNames[i])
		}
	}
}

func TestObsChromeTrace(t *testing.T) {
	tr := NewTrace()
	swapGlobals(t, nil, tr)
	root := Start(nil, "outer")
	root.Attr("solver", "cg")
	child := root.Start("inner")
	child.End()
	root.End()
	orphan := Start(nil, "second-root")
	orphan.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(file.TraceEvents))
	}
	if file.TraceEvents[0].Name != "outer" || file.TraceEvents[0].Args["solver"] != "cg" {
		t.Errorf("first event = %+v", file.TraceEvents[0])
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 {
			t.Errorf("event %q has negative duration", ev.Name)
		}
	}
	// Each root subtree gets its own thread lane.
	if file.TraceEvents[0].Tid != file.TraceEvents[1].Tid {
		t.Error("child should share its root's lane")
	}
	if file.TraceEvents[2].Tid == file.TraceEvents[0].Tid {
		t.Error("second root should get its own lane")
	}
}

func TestObsSetup(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	eventsPath := filepath.Join(dir, "events.json")

	prevR, prevT := Default(), CurrentTracer()
	prevRec := CurrentRecorder()
	t.Cleanup(func() {
		SetDefault(prevR)
		SetTracer(prevT)
		SetRecorder(prevRec)
	})
	flush := Setup(tracePath, metricsPath, eventsPath)
	sp := Start(nil, "setup-span")
	sp.End()
	Default().Counter("setup_total").Inc()
	if err := flush(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("setup-span")) {
		t.Error("trace file missing the recorded span")
	}
	raw, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not a snapshot: %v", err)
	}
	if snap.Counters["setup_total"] != 1 {
		t.Errorf("counter in file = %d, want 1", snap.Counters["setup_total"])
	}
	raw, err = os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("aeropack-events/v1")) ||
		!bytes.Contains(raw, []byte("span_begin")) ||
		!bytes.Contains(raw, []byte("setup-span")) {
		t.Errorf("events file missing schema or span events:\n%s", raw)
	}

	// Disabled Setup: no files, flush is a no-op.
	noneTrace := filepath.Join(dir, "none-trace.json")
	flush = Setup("", "", "")
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(noneTrace); !os.IsNotExist(err) {
		t.Error("disabled Setup should not create files")
	}
}

// TestObsConcurrent hammers one registry and one trace from many
// goroutines; run under -race (verify.sh does, at -cpu=1,4) this is the
// thread-safety gate for the whole package.
func TestObsConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace()
	swapGlobals(t, r, tr)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				Default().Counter("ops_total").Inc()
				Default().Gauge("depth").Add(1)
				Default().Histogram("lat", []float64{1, 10}).Observe(float64(i % 20))
				sp := Start(nil, "worker")
				sp.AttrInt("i", i)
				child := sp.Start("child")
				child.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := r.Counter("ops_total").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("depth").Value(); got != float64(total) {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	if got := r.Histogram("lat", nil).Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	if got := tr.Len(); got != int(2*total) {
		t.Errorf("trace len = %d, want %d", got, 2*total)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// benchSink defeats dead-code elimination in the disabled-path benches.
var benchSink int

// BenchmarkObsDisabled measures the disabled fast path of one guarded
// call site: the single atomic registry load plus nil check that leads
// every instrumented region (`if reg := obs.Default(); reg != nil`).
// The contract (DESIGN.md "Observability") is ≤1 ns and zero
// allocations, which is what makes it safe to leave instrumentation in
// the solver hot paths permanently.
func BenchmarkObsDisabled(b *testing.B) {
	prevR := SetDefault(nil)
	prevT := SetTracer(nil)
	b.Cleanup(func() {
		SetDefault(prevR)
		SetTracer(prevT)
	})
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if Default() != nil {
			n++
		}
	}
	benchSink = n
}

// BenchmarkObsDisabledCounter is the deeper disabled chain — a metric
// update written without the leading registry guard, riding on the
// nil-receiver no-ops instead (registry load, nil Counter, nil Inc).
func BenchmarkObsDisabledCounter(b *testing.B) {
	prevR := SetDefault(nil)
	prevT := SetTracer(nil)
	b.Cleanup(func() {
		SetDefault(prevR)
		SetTracer(prevT)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Default().Counter("linalg_solver_iterations_total").Inc()
	}
}

// BenchmarkObsDisabledSpan is the disabled span path: Start on a nil
// tracer plus the nil-safe annotation and End calls.
func BenchmarkObsDisabledSpan(b *testing.B) {
	prevR := SetDefault(nil)
	prevT := SetTracer(nil)
	b.Cleanup(func() {
		SetDefault(prevR)
		SetTracer(prevT)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Start(nil, "thermal.SolveSteady")
		sp.AttrInt("cells", i)
		sp.AttrF("residual", 1e-10)
		sp.End()
	}
}

// BenchmarkObsEnabledCounter is the enabled counterpart, for the
// README's cost table: one registry map lookup plus an atomic add.
func BenchmarkObsEnabledCounter(b *testing.B) {
	prevR := SetDefault(NewRegistry())
	b.Cleanup(func() { SetDefault(prevR) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Default().Counter("linalg_solver_iterations_total").Inc()
	}
}
