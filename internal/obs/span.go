package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or flight-recorder event.
// Values are stored pre-formatted so export is allocation-free and
// deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of work.  Spans form a tree: children are
// created with Start(parent, name) or parent.Start(name).  All methods
// are no-ops on a nil span, so call sites need no enabled/disabled
// branching.
type Span struct {
	tr     *Trace
	parent *Span
	name   string
	seq    int // creation order within the trace
	root   int // seq of the root span of this subtree (Chrome tid)

	start time.Time
	dur   time.Duration
	ended bool

	attrs    []Attr
	children []*Span
}

// Trace collects spans.  A Trace is safe for concurrent use; span
// creation order (the seq field) is the global mutation order, which for
// serial workloads makes the exported structure fully deterministic.
type Trace struct {
	mu    sync.Mutex
	base  time.Time
	spans []*Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{base: time.Now()}
}

// tracer is the process-global span collector; nil means tracing is
// disabled (the default).
var tracer atomic.Pointer[Trace]

// CurrentTracer returns the process-global trace, or nil when tracing is
// disabled.
func CurrentTracer() *Trace { return tracer.Load() }

// SetTracer installs t as the process-global trace (nil disables
// tracing) and returns the previous one so tests can restore it.
func SetTracer(t *Trace) *Trace { return tracer.Swap(t) }

// Start opens a span.  With a non-nil parent the span joins the parent's
// trace as a child; with a nil parent it becomes a root span of the
// process-global trace.  Returns nil (and costs one atomic load) when
// the relevant trace is disabled.
func Start(parent *Span, name string) *Span {
	if parent != nil {
		return parent.tr.newSpan(parent, name)
	}
	return CurrentTracer().newSpan(nil, name)
}

// Start opens a child span; nil-safe, so instrumented callees can accept
// a possibly-nil parent without branching.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, name)
}

func (t *Trace) newSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := &Span{tr: t, parent: parent, name: name, seq: len(t.spans), start: time.Now()}
	if parent == nil {
		s.root = s.seq
	} else {
		s.root = parent.root
		parent.children = append(parent.children, s)
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	// Flight-recorder hook lives on the enabled path only, so the
	// disabled span guard stays a single atomic load (the pinned
	// BenchmarkObsDisabledSpan budget).  Recorded after unlock to keep
	// the trace lock out of the recorder's.
	if rec := CurrentRecorder(); rec != nil {
		rec.Record("span_begin", name)
	}
	return s
}

// End closes the span, fixing its duration from the monotonic clock.
// Safe to call on nil; a second End keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	first := !s.ended
	if first {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
	if first {
		if rec := CurrentRecorder(); rec != nil {
			rec.Record("span_end", s.name)
		}
	}
}

// Attr attaches a string annotation; nil-safe.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AttrF attaches a float annotation formatted with %g; nil-safe (the
// nil check precedes formatting so disabled spans never allocate).
func (s *Span) AttrF(key string, v float64) {
	if s == nil {
		return
	}
	s.Attr(key, fmt.Sprintf("%g", v))
}

// AttrInt attaches an integer annotation; nil-safe without formatting
// cost on disabled spans.
func (s *Span) AttrInt(key string, v int) {
	if s == nil {
		return
	}
	s.Attr(key, fmt.Sprintf("%d", v))
}

// Len returns the number of spans recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// chromeEvent is one Chrome trace-event object ("X" complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // µs since trace start
	Dur  float64           `json:"dur"` // µs
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the Chrome trace-event JSON object form.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the trace in Chrome trace-event JSON format
// (load via chrome://tracing or https://ui.perfetto.dev).  Each root
// span's subtree is laid out on its own thread lane so sibling trees
// from parallel sweeps stay readable.  Spans never ended are exported
// with the duration observed at export time.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil trace")
	}
	t.mu.Lock()
	events := make([]chromeEvent, 0, len(t.spans))
	now := time.Now()
	for _, s := range t.spans {
		dur := s.dur
		if !s.ended {
			dur = now.Sub(s.start)
		}
		ev := chromeEvent{
			Name: s.name,
			Cat:  "aeropack",
			Ph:   "X",
			Ts:   float64(s.start.Sub(t.base)) / float64(time.Microsecond),
			Dur:  float64(dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  s.root + 1,
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// TreeString renders the span hierarchy as an indented name tree —
// timings and attributes excluded — in creation order.  For a fixed
// serial workload the output is bit-identical run to run, which is what
// the telemetry-determinism golden tests pin.
func (t *Trace) TreeString() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.name)
		b.WriteByte('\n')
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	for _, s := range t.spans {
		if s.parent == nil {
			walk(s, 0)
		}
	}
	return b.String()
}

// SpanNames returns the distinct span names seen, sorted — a quick
// integrity probe for tests and tooling.
func (t *Trace) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[string]bool)
	for _, s := range t.spans {
		seen[s.name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
