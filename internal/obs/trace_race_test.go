package obs_test

import (
	"io"
	"strings"
	"sync"
	"testing"

	"aeropack/internal/obs"
	"aeropack/internal/parallel"
)

// TestChromeTraceExportRacesWithParallelSpans pins the -race contract of
// the tracer: pool workers open nested spans (root → child → grandchild,
// with attributes landing on all three) while another goroutine exports
// the live trace as Chrome trace-event JSON in a loop.  Export must see
// a consistent tree — including spans that are still open — without a
// data race or a torn read of dur/ended/attrs.
func TestChromeTraceExportRacesWithParallelSpans(t *testing.T) {
	tr := obs.NewTrace()
	prev := obs.SetTracer(tr)
	defer obs.SetTracer(prev)

	const iterations = 64
	exportDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(exportDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tr.WriteChromeTrace(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	parallel.For(iterations, 8, func(i int) {
		root := obs.Start(nil, "race.worker")
		root.AttrInt("iteration", i)
		child := root.Start("race.child")
		child.Attr("phase", "inner")
		grand := child.Start("race.grandchild")
		grand.AttrF("value", float64(i))
		grand.End()
		child.End()
		root.End()
	})
	close(stop)
	<-exportDone

	if got := tr.Len(); got != 3*iterations {
		t.Fatalf("trace holds %d spans, want %d", got, 3*iterations)
	}
	// A final export after the barrier must be complete and well-formed.
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"race.worker", "race.child", "race.grandchild", `"displayTimeUnit":"ms"`} {
		if !strings.Contains(out, want) {
			t.Errorf("final export missing %q", want)
		}
	}
	// Every worker subtree must keep its parent-child shape: each root
	// has exactly one child and one grandchild under it in TreeString.
	tree := tr.TreeString()
	if n := strings.Count(tree, "race.worker"); n != iterations {
		t.Errorf("tree has %d roots, want %d", n, iterations)
	}
	if n := strings.Count(tree, "  race.child"); n != iterations {
		t.Errorf("tree has %d children, want %d", n, iterations)
	}
	if n := strings.Count(tree, "    race.grandchild"); n != iterations {
		t.Errorf("tree has %d grandchildren, want %d", n, iterations)
	}
}

// TestSpanEndRaceWithAttr drives End and Attr on sibling spans from many
// goroutines at once — the shape a keep-going sweep produces when one
// worker annotates its failure while another closes out cleanly.
func TestSpanEndRaceWithAttr(t *testing.T) {
	tr := obs.NewTrace()
	prev := obs.SetTracer(tr)
	defer obs.SetTracer(prev)

	root := obs.Start(nil, "race.root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.Start("race.sibling")
			s.AttrInt("worker", i)
			s.End()
			s.End() // double End must stay idempotent under contention
		}(i)
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != 17 {
		t.Fatalf("trace holds %d spans, want 17", got)
	}
}
