package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzChromeTrace builds span trees from fuzzed shapes — arbitrary
// names, attribute keys/values, nesting depth, and spans deliberately
// left unended — and asserts WriteChromeTrace always emits valid JSON
// with one event per span.  chrome://tracing silently drops malformed
// files, so validity is the whole contract.
func FuzzChromeTrace(f *testing.F) {
	f.Add("cosee.Sweep", "power_w", "40", 3, 1)
	f.Add("", "", "", 0, 0)
	f.Add("solve\nnewline \"quoted\"", "k\te(y", "v\\al", 7, 0)
	f.Add("robust.fallback", "rung", "cg-jacobi-relaxed", 1, 1)
	f.Add("\xff\xfe broken utf8", "\xc3(", "\xed\xa0\x80", 2, 1)
	f.Fuzz(func(t *testing.T, name, key, val string, depth, end int) {
		depth %= 32
		if depth < 0 {
			depth = -depth
		}
		endAll := end%2 != 0
		tr := NewTrace()
		prev := SetTracer(tr)
		defer SetTracer(prev)

		spans := make([]*Span, 0, depth+1)
		root := Start(nil, name)
		root.Attr(key, val)
		spans = append(spans, root)
		cur := root
		for i := 0; i < depth; i++ {
			cur = cur.Start(name)
			cur.Attr(key, val)
			cur.AttrInt("depth", i)
			spans = append(spans, cur)
		}
		if endAll {
			// End inner-out; otherwise every span stays open, exercising
			// the exporter's in-flight-duration path.
			for i := len(spans) - 1; i >= 0; i-- {
				spans[i].End()
			}
		}

		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("exporter produced invalid JSON:\n%s", buf.String())
		}
		var file struct {
			TraceEvents []struct {
				Ph   string            `json:"ph"`
				Args map[string]string `json:"args"`
			} `json:"traceEvents"`
			DisplayTimeUnit string `json:"displayTimeUnit"`
		}
		if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
			t.Fatalf("decoding trace file: %v", err)
		}
		if got, want := len(file.TraceEvents), len(spans); got != want {
			t.Fatalf("trace has %d events, want %d (one per span)", got, want)
		}
		for i, ev := range file.TraceEvents {
			if ev.Ph != "X" {
				t.Fatalf("event %d phase %q, want complete-event X", i, ev.Ph)
			}
		}
	})
}
