package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The Prometheus text exposition format (version 0.0.4) grammar pinned
// by TestPrometheusConformance:
//
//	metric name   [a-zA-Z_:][a-zA-Z0-9_:]*
//	comment       "# HELP <name> <escaped text>" / "# TYPE <name> <kind>"
//	sample        <name>[{le="<escaped>"}] <value>
//	value         Go %g floats plus +Inf/-Inf/NaN, integers for counters
var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="((?:[^"\\]|\\.)*)"\})? (NaN|[+-]Inf|[+-]?[0-9].*)$`)
)

// conformanceRegistry populates a registry the way a real run does, plus
// deliberately hostile names and help text for the escaping paths.
func conformanceRegistry() *Registry {
	r := NewRegistry()
	r.Counter("cosee_solves_total").Add(7)
	r.SetHelp("cosee_solves_total", "Steady solves attempted.")
	r.Gauge("lhp_conductance_w_per_k").Set(3.25)
	r.Gauge("runtime_negative").Set(-1.5)
	h := r.Histogram("linalg_residual", ExpBuckets(1e-12, 10, 6))
	h.Observe(1e-11)
	h.Observe(1e-9)
	h.Observe(42) // lands in +Inf
	r.SetHelp("linalg_residual", "Final residual with a \\ backslash and\na newline.")
	// Hostile dynamic name: must be sanitized, not emitted raw.
	r.Counter("article.SEB+seat (HP/LHP kit)-runs").Inc()
	return r
}

func promText(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestPrometheusConformance validates every emitted line against the
// exposition grammar and the structural rules scrapers rely on: one
// TYPE per metric preceding its samples, HELP (when present) adjacent
// and escaped, cumulative non-decreasing buckets ending at +Inf == the
// _count sample, and a trailing newline.
func TestPrometheusConformance(t *testing.T) {
	out := promText(t, conformanceRegistry())
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	typed := map[string]string{} // metric -> kind
	sampled := map[string]bool{} // base names that emitted samples
	var lastBucket struct {
		name string
		cum  int64
		inf  int64
	}
	counts := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := promHelpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed HELP line: %q", line)
			}
			if strings.ContainsAny(m[2], "\n") {
				t.Fatalf("unescaped newline in HELP: %q", line)
			}
			if typed[m[1]] != "" {
				t.Fatalf("HELP for %s after its TYPE line: %q", m[1], line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("duplicate TYPE for %s", m[1])
			}
			if sampled[m[1]] {
				t.Fatalf("TYPE for %s after its samples", m[1])
			}
			typed[m[1]] = m[2]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line: %q", line)
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed sample line: %q", line)
			}
			name, le, val := m[1], m[2], m[3]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if typed[name] == "" && typed[base] == "" {
				t.Fatalf("sample %q has no preceding TYPE", line)
			}
			sampled[name], sampled[base] = true, true
			if strings.HasSuffix(name, "_bucket") {
				if le == "" {
					t.Fatalf("bucket sample without le label: %q", line)
				}
				cum, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					t.Fatalf("non-integer bucket count: %q", line)
				}
				if lastBucket.name == name && cum < lastBucket.cum {
					t.Fatalf("bucket counts not cumulative at %q", line)
				}
				lastBucket.name, lastBucket.cum = name, cum
				if le == "+Inf" {
					lastBucket.inf = cum
				}
			}
			if strings.HasSuffix(name, "_count") {
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					t.Fatalf("non-integer _count: %q", line)
				}
				counts[base] = n
			}
			if typed[name] == "counter" {
				if _, err := strconv.ParseInt(val, 10, 64); err != nil {
					t.Fatalf("counter sample not an integer: %q", line)
				}
			}
		}
	}
	// Histogram invariant: the +Inf bucket equals _count.
	if got := counts["linalg_residual"]; got != 3 || lastBucket.inf != got {
		t.Fatalf("linalg_residual count %d, +Inf bucket %d, want 3 == 3", got, lastBucket.inf)
	}
	// Every TYPE must have at least one sample.
	for name := range typed {
		if !sampled[name] {
			t.Fatalf("TYPE %s emitted without samples", name)
		}
	}
}

func TestPrometheusHelpEscaping(t *testing.T) {
	out := promText(t, conformanceRegistry())
	want := `# HELP linalg_residual Final residual with a \\ backslash and\na newline.`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("escaped HELP line missing; output:\n%s", out)
	}
	if !strings.Contains(out, "# HELP cosee_solves_total Steady solves attempted.\n# TYPE cosee_solves_total counter\n") {
		t.Fatalf("HELP/TYPE adjacency broken; output:\n%s", out)
	}
}

func TestPrometheusNameSanitization(t *testing.T) {
	out := promText(t, conformanceRegistry())
	if strings.Contains(out, "article.SEB") {
		t.Fatalf("raw invalid metric name leaked into exposition:\n%s", out)
	}
	if !strings.Contains(out, "article_SEB_seat__HP_LHP_kit__runs 1\n") {
		t.Fatalf("sanitized metric name missing:\n%s", out)
	}
}

func TestPromNameTable(t *testing.T) {
	cases := map[string]string{
		"good_name":       "good_name",
		"ns:subsystem_ok": "ns:subsystem_ok",
		"":                "_",
		"9lives":          "_9lives",
		"a-b.c d":         "a_b_c_d",
		// Multi-byte runes sanitize per byte (names are ASCII by contract).
		"Ünïcode": "__n__code",
	}
	for in, want := range cases {
		got := promName(in)
		if got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
		if !promNameRe.MatchString(got) {
			t.Errorf("promName(%q) = %q is not a valid metric name", in, got)
		}
	}
}
