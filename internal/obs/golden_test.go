package obs_test

import (
	"testing"

	"aeropack/internal/cosee"
	"aeropack/internal/obs"
)

// TestObsGoldenFig10SpanTree pins the span tree produced by a fixed,
// serial Fig. 10 sweep.  The tree depends only on the computation —
// sweep length and the solver call graph — never on timing, so any
// change here is a real change to the instrumented control flow and
// should be reviewed (then reflected in DESIGN.md "Observability").
//
// The test swaps the process-global tracer, so it must not run in
// parallel with other tests.
func TestObsGoldenFig10SpanTree(t *testing.T) {
	run := func() string {
		tr := obs.NewTrace()
		prev := obs.SetTracer(tr)
		defer obs.SetTracer(prev)
		cfg := cosee.Config{UseLHP: true}
		if _, err := cfg.Sweep([]float64{20, 60}); err != nil {
			t.Fatal(err)
		}
		return tr.TreeString()
	}
	got := run()
	want := "cosee.Sweep\n" +
		"  cosee.Solve\n" +
		"    thermal.Network.SolveSteady\n" +
		"  cosee.Solve\n" +
		"    thermal.Network.SolveSteady\n"
	if got != want {
		t.Errorf("span tree changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if again := run(); again != got {
		t.Errorf("span tree not deterministic:\n--- first ---\n%s--- second ---\n%s", got, again)
	}
}

// TestObsGoldenCapabilityMetrics runs a capability bisection with a
// fresh registry and checks the cross-package metric contract: the
// solver counters and the residual histogram that cmd/cosee's -metrics
// snapshot promises (see the acceptance criteria in ISSUE 3 and the
// DESIGN.md metric-name table).
func TestObsGoldenCapabilityMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetDefault(reg)
	defer obs.SetDefault(prev)

	cfg := cosee.Config{UseLHP: true}
	if _, err := cfg.CapabilityAt(60); err != nil {
		t.Fatal(err)
	}
	solves := reg.Counter("cosee_solves_total").Value()
	if solves < 3 {
		t.Errorf("cosee_solves_total = %d, want ≥3 (bisection bracket + iterations)", solves)
	}
	cg := reg.Counter("linalg_cg_solves_total").Value()
	if cg < solves {
		t.Errorf("linalg_cg_solves_total = %d, want ≥ %d (one linear solve per network solve)", cg, solves)
	}
	if iters := reg.Counter("linalg_solver_iterations_total").Value(); iters < cg {
		t.Errorf("linalg_solver_iterations_total = %d, want ≥ %d", iters, cg)
	}
	h := reg.Histogram("linalg_residual", nil)
	if h.Count() != cg {
		t.Errorf("linalg_residual count = %d, want %d (one sample per solve)", h.Count(), cg)
	}
	if h.Mean() <= 0 || h.Mean() > 1e-3 {
		t.Errorf("linalg_residual mean = %g, want a small positive converged residual", h.Mean())
	}
	if fails := reg.Counter("linalg_solver_failures_total").Value(); fails != 0 {
		t.Errorf("linalg_solver_failures_total = %d, want 0", fails)
	}
}

// TestObsGoldenSetupCacheMetrics pins the solver-setup cache counter
// contract from PR 7: a serial sweep with a repeated power point must
// reuse the shared preconditioner setup (linalg_setup_prec_reuse_total),
// miss the result cache once per distinct linear system and hit it for
// every system the duplicate point repeats — and the hit/miss split must
// reconcile exactly with the CG solves actually run, since a result-cache
// hit skips the Krylov loop entirely.
func TestObsGoldenSetupCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetDefault(reg)
	defer obs.SetDefault(prev)

	cfg := cosee.Config{UseLHP: true}
	if _, err := cfg.Sweep([]float64{20, 20, 40}); err != nil {
		t.Fatal(err)
	}
	hits := reg.Counter("linalg_setup_result_hits_total").Value()
	misses := reg.Counter("linalg_setup_result_misses_total").Value()
	reuse := reg.Counter("linalg_setup_prec_reuse_total").Value()
	cg := reg.Counter("linalg_cg_solves_total").Value()
	if hits < 1 {
		t.Errorf("linalg_setup_result_hits_total = %d, want ≥1 (the duplicate 20 W point repeats identical systems)", hits)
	}
	if misses < 1 {
		t.Errorf("linalg_setup_result_misses_total = %d, want ≥1", misses)
	}
	if cg != misses {
		t.Errorf("linalg_cg_solves_total = %d, want %d: every miss runs CG, every hit skips it", cg, misses)
	}
	if reuse < 1 {
		t.Errorf("linalg_setup_prec_reuse_total = %d, want ≥1 (sweep points share the IC(0) setup)", reuse)
	}
	// A healthy network never degrades its preconditioner: both PR-7
	// degradation counters stay untouched (absent ≡ zero) on this run.
	snap := reg.Snapshot()
	for _, name := range []string{"robust_ic0_degraded_total", "thermal_ic0_degraded_total"} {
		if v, ok := snap.Counters[name]; ok && v != 0 {
			t.Errorf("%s = %d on a clean sweep, want 0", name, v)
		}
	}
}
