package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// StudyProgress tracks one running study — a Fig. 10 sweep, a
// qualification campaign, a fleet batch — as a done/total pair updated
// from worker goroutines with plain atomic adds.  All methods are
// no-ops on a nil *StudyProgress, so instrumented drivers need no
// enabled/disabled branching.
type StudyProgress struct {
	name     string
	start    time.Time
	total    atomic.Int64
	done     atomic.Int64
	finished atomic.Bool
}

// Step records n completed work items; nil-safe, callable from any
// goroutine (sweep workers call it as each point lands).
func (p *StudyProgress) Step(n int) {
	if p == nil {
		return
	}
	p.done.Add(int64(n))
}

// Finish marks the study complete (idempotent, nil-safe) and records a
// "study_end" flight-recorder event when the recorder is enabled.
func (p *StudyProgress) Finish() {
	if p == nil {
		return
	}
	if p.finished.Swap(true) {
		return
	}
	if rec := CurrentRecorder(); rec != nil {
		rec.Record("study_end", p.name,
			Attr{Key: "done", Value: itoa(p.done.Load())},
			Attr{Key: "total", Value: itoa(p.total.Load())})
	}
}

// Board is the process-wide registry of study progress, the source the
// ops endpoint's /progress route serves.  It keeps the most recent
// boardMaxStudies studies (oldest evicted first) so a long-running
// service never grows without bound.  A nil *Board no-ops everywhere.
type Board struct {
	mu      sync.Mutex
	studies []*StudyProgress
}

// boardMaxStudies bounds the study list; a multi-hour campaign is a
// handful of studies, a service run is many — 64 keeps the recent past
// visible either way.
const boardMaxStudies = 64

// NewBoard returns an empty progress board.
func NewBoard() *Board { return &Board{} }

// progressBoard is the process-global board; nil means progress
// tracking is disabled (the default).
var progressBoard atomic.Pointer[Board]

// CurrentBoard returns the process-global progress board, or nil when
// progress tracking is disabled.
func CurrentBoard() *Board { return progressBoard.Load() }

// SetBoard installs b as the process-global board (nil disables
// progress tracking) and returns the previous one so tests can restore
// it.
func SetBoard(b *Board) *Board { return progressBoard.Swap(b) }

// Begin registers a new study of total expected work items and returns
// its tracker.  On a nil board it returns nil — whose methods all
// no-op — so drivers call Begin/Step/Finish unconditionally.  A
// "study_begin" event lands in the flight recorder when one is enabled.
func (b *Board) Begin(name string, total int) *StudyProgress {
	if b == nil {
		return nil
	}
	p := &StudyProgress{name: name, start: time.Now()}
	p.total.Store(int64(total))
	b.mu.Lock()
	b.studies = append(b.studies, p)
	if len(b.studies) > boardMaxStudies {
		b.studies = b.studies[len(b.studies)-boardMaxStudies:]
	}
	b.mu.Unlock()
	if rec := CurrentRecorder(); rec != nil {
		rec.Record("study_begin", name, Attr{Key: "total", Value: itoa(int64(total))})
	}
	return p
}

// ProgressSnapshot is the exported state of one study.
type ProgressSnapshot struct {
	Name           string  `json:"name"`
	Total          int64   `json:"total"`
	Done           int64   `json:"done"`
	Percent        float64 `json:"percent"`
	Finished       bool    `json:"finished"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Snapshot returns the board's studies in registration order.
func (b *Board) Snapshot() []ProgressSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	studies := append([]*StudyProgress(nil), b.studies...)
	b.mu.Unlock()
	out := make([]ProgressSnapshot, 0, len(studies))
	for _, p := range studies {
		total, done := p.total.Load(), p.done.Load()
		pct := 0.0
		switch {
		case total > 0:
			pct = 100 * float64(done) / float64(total)
		case p.finished.Load():
			pct = 100
		}
		out = append(out, ProgressSnapshot{
			Name:           p.name,
			Total:          total,
			Done:           done,
			Percent:        pct,
			Finished:       p.finished.Load(),
			ElapsedSeconds: time.Since(p.start).Seconds(),
		})
	}
	return out
}

// progressFile is the aeropack-progress/v1 JSON schema.
type progressFile struct {
	Schema  string             `json:"schema"` // "aeropack-progress/v1"
	Studies []ProgressSnapshot `json:"studies"`
}

// WriteJSON writes the board as an aeropack-progress/v1 document — the
// payload of the ops endpoint's /progress route.
func (b *Board) WriteJSON(w io.Writer) error {
	studies := b.Snapshot()
	if studies == nil {
		studies = []ProgressSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(progressFile{Schema: "aeropack-progress/v1", Studies: studies})
}

// itoa formats an int64 without pulling fmt into the hot Step/Finish
// paths (strconv stays allocation-light for small integers).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
