package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one flight-recorder entry: a structured, timestamped record
// of something the solver stack decided or observed — a span opening or
// closing, a solver convergence summary, a fallback or degrade decision,
// a setup-cache hit, a saturated pool run.  Attrs follow the span
// convention: pre-formatted key/value strings, so export never has to
// re-interpret values.
type Event struct {
	// Seq is the event's position in the recorder's total history,
	// starting at 0.  Gaps never occur; a tail whose first Seq is
	// nonzero tells the reader exactly how many events were overwritten.
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	// Kind classifies the event: "span_begin", "span_end", "solver",
	// "fallback", "degrade", "cache", "pool", "study_begin", "study_end".
	Kind string `json:"kind"`
	// Name identifies the subject within the kind (span name, solver
	// method, chain rung, study label, ...).
	Name  string `json:"name"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Recorder is the flight recorder: a fixed-size ring buffer of Events
// that is cheap enough to leave always on.  Writes take one short
// mutex-guarded copy into a preallocated slot — no allocation, no
// growth — and once the ring wraps, the oldest events are overwritten,
// bounding memory for arbitrarily long campaigns.  All methods are safe
// for concurrent use and no-ops on a nil *Recorder, so call sites keep
// the usual single-guard shape:
//
//	if rec := obs.CurrentRecorder(); rec != nil {
//	    rec.Record("solver", "cg", obs.Attr{Key: "iterations", Value: "42"})
//	}
//
// The guard itself (one atomic pointer load plus a nil check) is the
// whole disabled-path cost — ≤1 ns and zero allocations, pinned by
// BenchmarkRecorderDisabled next to the span guard it mirrors.
type Recorder struct {
	mu  sync.Mutex
	buf []Event // ring storage, len == capacity
	seq int64   // total events ever recorded
}

// defaultRecorderCapacity bounds the ring when the caller does not:
// 4096 events cover minutes of a heavily instrumented sweep while
// costing ~1 MB at rest.
const defaultRecorderCapacity = 4096

// NewRecorder returns a flight recorder holding the most recent
// capacity events (<= 0 selects the 4096-event default).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultRecorderCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// flightRecorder is the process-global recorder; nil means the flight
// recorder is disabled (the default).
var flightRecorder atomic.Pointer[Recorder]

// CurrentRecorder returns the process-global flight recorder, or nil
// when recording is disabled.  The single atomic load is the whole cost
// of a disabled call site.
func CurrentRecorder() *Recorder { return flightRecorder.Load() }

// SetRecorder installs r as the process-global flight recorder (nil
// disables recording) and returns the previous one so tests can
// restore it.
func SetRecorder(r *Recorder) *Recorder { return flightRecorder.Swap(r) }

// Record appends one event to the ring, overwriting the oldest entry
// once full.  No-op on a nil recorder — but prefer guarding the call
// with CurrentRecorder() != nil so building the attrs (a variadic
// slice) is skipped entirely on the disabled path.
func (r *Recorder) Record(kind, name string, attrs ...Attr) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	e := &r.buf[r.seq%int64(len(r.buf))]
	e.Seq, e.Time, e.Kind, e.Name, e.Attrs = r.seq, now, kind, name, attrs
	r.seq++
	r.mu.Unlock()
}

// Recorded returns the total number of events ever recorded.
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many events have been overwritten by ring wrap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedLocked()
}

func (r *Recorder) droppedLocked() int64 {
	if d := r.seq - int64(len(r.buf)); d > 0 {
		return d
	}
	return 0
}

// Capacity returns the ring size (0 for nil).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Tail returns the most recent n events in chronological order (oldest
// of the tail first).  n <= 0 or n larger than the buffered count
// returns everything still in the ring.  The returned slice is a copy;
// callers may hold it indefinitely.
func (r *Recorder) Tail(n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held := r.seq - r.droppedLocked()
	if n <= 0 || int64(n) > held {
		n = int(held)
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		seq := r.seq - int64(n) + int64(i)
		out[i] = r.buf[seq%int64(len(r.buf))]
	}
	return out
}

// eventsFile is the aeropack-events/v1 JSON dump schema.
type eventsFile struct {
	Schema   string  `json:"schema"` // "aeropack-events/v1"
	Capacity int     `json:"capacity"`
	Recorded int64   `json:"recorded"`
	Dropped  int64   `json:"dropped"`
	Events   []Event `json:"events"`
}

// WriteJSON dumps the most recent n events (n <= 0 means everything
// still buffered) as an aeropack-events/v1 document — the on-demand and
// on-error dump format behind the CLIs' -events flag and the ops
// endpoint's /events route.
func (r *Recorder) WriteJSON(w io.Writer, n int) error {
	if r == nil {
		return fmt.Errorf("obs: nil recorder")
	}
	events := r.Tail(n)
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(eventsFile{
		Schema:   "aeropack-events/v1",
		Capacity: r.Capacity(),
		Recorded: r.Recorded(),
		Dropped:  r.Dropped(),
		Events:   events,
	})
}
