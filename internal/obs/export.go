package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// HistogramSnapshot is the exported form of one histogram.
type HistogramSnapshot struct {
	// Buckets holds cumulative counts per upper bound; the final entry
	// has Le = +Inf (encoded as the string "+Inf" in JSON).
	Buckets []BucketSnapshot `json:"buckets"`
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
}

// BucketSnapshot is one histogram bucket: the upper bound and the
// cumulative count of samples ≤ that bound.
type BucketSnapshot struct {
	Le    jsonFloat `json:"le"`
	Count int64     `json:"count"`
}

// jsonFloat marshals +Inf (which encoding/json rejects) as "+Inf".
type jsonFloat float64

// MarshalJSON encodes the value, mapping non-finite floats to strings.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, +1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON is the inverse of MarshalJSON, so metric snapshots
// round-trip.
func (f *jsonFloat) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"+Inf"`:
		*f = jsonFloat(math.Inf(+1))
		return nil
	case `"-Inf"`:
		*f = jsonFloat(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// MetricsSnapshot is the JSON export schema of a Registry.
type MetricsSnapshot struct {
	Schema     string                       `json:"schema"` // "aeropack-metrics/v1"
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state.  Nil registries yield
// an empty (but schema-stamped) snapshot.
func (r *Registry) Snapshot() *MetricsSnapshot {
	snap := &MetricsSnapshot{
		Schema:     "aeropack-metrics/v1",
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	counters, gauges, hists := r.snapshot()
	for _, n := range counters {
		snap.Counters[n] = r.Counter(n).Value()
	}
	for _, n := range gauges {
		snap.Gauges[n] = r.Gauge(n).Value()
	}
	for _, n := range hists {
		h := r.Histogram(n, nil)
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		bounds := h.Bounds()
		counts := h.BucketCounts()
		cum := int64(0)
		for i, c := range counts {
			cum += c
			le := math.Inf(+1)
			if i < len(bounds) {
				le = bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: jsonFloat(le), Count: cum})
		}
		snap.Histograms[n] = hs
	}
	return snap
}

// WriteJSON writes the registry as indented JSON (map keys sort, so the
// output is deterministic for a fixed state).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName sanitizes a metric name to the exposition-format charset
// [a-zA-Z_:][a-zA-Z0-9_:]* — every invalid rune becomes '_', and a
// leading digit gets a '_' prefix.  Registry names are code-authored and
// already valid; the sanitizer keeps a future dynamically-derived name
// (an article label, a file path) from corrupting the whole scrape.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	valid := func(i int, c byte) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i := 0; i < len(name); i++ {
		if !valid(i, name[i]) {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if valid(i, c) || (c >= '0' && c <= '9') {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promHelpEscaper escapes HELP text per the exposition format: backslash
// and newline only (double quotes are legal in help text).
var promHelpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// promLabelEscaper escapes label values: backslash, double quote and
// newline.
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// writePromHeader emits the optional # HELP line and the # TYPE line for
// one metric.
func (r *Registry) writePromHeader(b *strings.Builder, name, kind string) {
	if help := r.Help(name); help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", promName(name), promHelpEscaper.Replace(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", promName(name), kind)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name: an optional # HELP
// line (see SetHelp) and a # TYPE line per metric, histograms as
// cumulative _bucket series with le labels plus _sum and _count, names
// sanitized and label values escaped per the format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, hists := r.snapshot()
	var b strings.Builder
	for _, n := range counters {
		r.writePromHeader(&b, n, "counter")
		fmt.Fprintf(&b, "%s %d\n", promName(n), r.Counter(n).Value())
	}
	for _, n := range gauges {
		r.writePromHeader(&b, n, "gauge")
		fmt.Fprintf(&b, "%s %g\n", promName(n), r.Gauge(n).Value())
	}
	for _, n := range hists {
		h := r.Histogram(n, nil)
		r.writePromHeader(&b, n, "histogram")
		bounds := h.Bounds()
		counts := h.BucketCounts()
		cum := int64(0)
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(bounds) {
				le = fmt.Sprintf("%g", bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", promName(n), promLabelEscaper.Replace(le), cum)
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", promName(n), h.Sum(), promName(n), h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Setup enables process-global telemetry for a command-line run: a
// non-empty tracePath turns on span collection, a non-empty metricsPath
// turns on metrics, and a non-empty eventsPath turns on the flight
// recorder.  The returned flush function writes the collected telemetry
// to those files and should be called once, on the way out of main,
// before any os.Exit — which is what makes the event dump land both on
// demand (normal exit) and on error (the CLIs' fail paths flush too).
// All paths empty means telemetry stays disabled and flush is a cheap
// no-op.
func Setup(tracePath, metricsPath, eventsPath string) (flush func() error) {
	var tr *Trace
	var reg *Registry
	var rec *Recorder
	if tracePath != "" {
		tr = NewTrace()
		SetTracer(tr)
	}
	if metricsPath != "" {
		reg = NewRegistry()
		SetDefault(reg)
	}
	if eventsPath != "" {
		rec = NewRecorder(0)
		SetRecorder(rec)
	}
	return func() error {
		if tr != nil {
			if err := writeFile(tracePath, tr.WriteChromeTrace); err != nil {
				return fmt.Errorf("obs: writing trace: %w", err)
			}
		}
		if reg != nil {
			if err := writeFile(metricsPath, reg.WriteJSON); err != nil {
				return fmt.Errorf("obs: writing metrics: %w", err)
			}
		}
		if rec != nil {
			if err := writeFile(eventsPath, func(w io.Writer) error { return rec.WriteJSON(w, 0) }); err != nil {
				return fmt.Errorf("obs: writing events: %w", err)
			}
		}
		return nil
	}
}

// writeFile creates path and streams write(w) into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
