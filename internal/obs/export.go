package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// HistogramSnapshot is the exported form of one histogram.
type HistogramSnapshot struct {
	// Buckets holds cumulative counts per upper bound; the final entry
	// has Le = +Inf (encoded as the string "+Inf" in JSON).
	Buckets []BucketSnapshot `json:"buckets"`
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
}

// BucketSnapshot is one histogram bucket: the upper bound and the
// cumulative count of samples ≤ that bound.
type BucketSnapshot struct {
	Le    jsonFloat `json:"le"`
	Count int64     `json:"count"`
}

// jsonFloat marshals +Inf (which encoding/json rejects) as "+Inf".
type jsonFloat float64

// MarshalJSON encodes the value, mapping non-finite floats to strings.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, +1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON is the inverse of MarshalJSON, so metric snapshots
// round-trip.
func (f *jsonFloat) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"+Inf"`:
		*f = jsonFloat(math.Inf(+1))
		return nil
	case `"-Inf"`:
		*f = jsonFloat(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// MetricsSnapshot is the JSON export schema of a Registry.
type MetricsSnapshot struct {
	Schema     string                       `json:"schema"` // "aeropack-metrics/v1"
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state.  Nil registries yield
// an empty (but schema-stamped) snapshot.
func (r *Registry) Snapshot() *MetricsSnapshot {
	snap := &MetricsSnapshot{
		Schema:     "aeropack-metrics/v1",
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	counters, gauges, hists := r.snapshot()
	for _, n := range counters {
		snap.Counters[n] = r.Counter(n).Value()
	}
	for _, n := range gauges {
		snap.Gauges[n] = r.Gauge(n).Value()
	}
	for _, n := range hists {
		h := r.Histogram(n, nil)
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		bounds := h.Bounds()
		counts := h.BucketCounts()
		cum := int64(0)
		for i, c := range counts {
			cum += c
			le := math.Inf(+1)
			if i < len(bounds) {
				le = bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: jsonFloat(le), Count: cum})
		}
		snap.Histograms[n] = hs
	}
	return snap
}

// WriteJSON writes the registry as indented JSON (map keys sort, so the
// output is deterministic for a fixed state).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, hists := r.snapshot()
	var b strings.Builder
	for _, n := range counters {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, r.Counter(n).Value())
	}
	for _, n := range gauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", n, n, r.Gauge(n).Value())
	}
	for _, n := range hists {
		h := r.Histogram(n, nil)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		bounds := h.Bounds()
		counts := h.BucketCounts()
		cum := int64(0)
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(bounds) {
				le = fmt.Sprintf("%g", bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", n, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", n, h.Sum(), n, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Setup enables the process-global tracer and/or metrics registry for a
// command-line run: a non-empty tracePath turns on span collection, a
// non-empty metricsPath turns on metrics.  The returned flush function
// writes the collected telemetry to those files and should be called
// once, on the way out of main, before any os.Exit.  Both paths empty
// means telemetry stays disabled and flush is a cheap no-op.
func Setup(tracePath, metricsPath string) (flush func() error) {
	var tr *Trace
	var reg *Registry
	if tracePath != "" {
		tr = NewTrace()
		SetTracer(tr)
	}
	if metricsPath != "" {
		reg = NewRegistry()
		SetDefault(reg)
	}
	return func() error {
		if tr != nil {
			if err := writeFile(tracePath, tr.WriteChromeTrace); err != nil {
				return fmt.Errorf("obs: writing trace: %w", err)
			}
		}
		if reg != nil {
			if err := writeFile(metricsPath, reg.WriteJSON); err != nil {
				return fmt.Errorf("obs: writing metrics: %w", err)
			}
		}
		return nil
	}
}

// writeFile creates path and streams write(w) into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
