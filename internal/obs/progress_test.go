package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestBoardBeginStepFinish(t *testing.T) {
	b := NewBoard()
	p := b.Begin("fig10-sweep", 40)
	p.Step(10)
	p.Step(5)
	snap := b.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(snap))
	}
	s := snap[0]
	if s.Name != "fig10-sweep" || s.Total != 40 || s.Done != 15 || s.Finished {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Percent < 37 || s.Percent > 38 {
		t.Fatalf("Percent = %g, want 37.5", s.Percent)
	}
	p.Step(25)
	p.Finish()
	p.Finish() // idempotent
	s = b.Snapshot()[0]
	if !s.Finished || s.Done != 40 || s.Percent != 100 {
		t.Fatalf("finished snapshot = %+v", s)
	}
}

func TestBoardZeroTotal(t *testing.T) {
	b := NewBoard()
	p := b.Begin("unknown-size", 0)
	if got := b.Snapshot()[0].Percent; got != 0 {
		t.Fatalf("unfinished zero-total percent = %g, want 0", got)
	}
	p.Finish()
	if got := b.Snapshot()[0].Percent; got != 100 {
		t.Fatalf("finished zero-total percent = %g, want 100", got)
	}
}

func TestBoardNilSafe(t *testing.T) {
	var b *Board
	p := b.Begin("x", 10) // nil board → nil tracker
	if p != nil {
		t.Fatal("nil board Begin should return nil")
	}
	p.Step(1) // must not panic
	p.Finish()
	if b.Snapshot() != nil {
		t.Fatal("nil board Snapshot != nil")
	}
}

func TestBoardGlobalHandle(t *testing.T) {
	prev := SetBoard(nil)
	t.Cleanup(func() { SetBoard(prev) })
	if CurrentBoard() != nil {
		t.Fatal("board should be disabled")
	}
	b := NewBoard()
	SetBoard(b)
	if CurrentBoard() != b {
		t.Fatal("CurrentBoard did not return installed board")
	}
	// The disabled-by-default pattern every driver uses: Begin on a
	// possibly-nil board, then nil-safe Step/Finish.
	SetBoard(nil)
	p := CurrentBoard().Begin("study", 3)
	p.Step(3)
	p.Finish()
}

func TestBoardEviction(t *testing.T) {
	b := NewBoard()
	for i := 0; i < boardMaxStudies+10; i++ {
		b.Begin("s", 1)
	}
	if got := len(b.Snapshot()); got != boardMaxStudies {
		t.Fatalf("board holds %d studies, want %d", got, boardMaxStudies)
	}
}

func TestBoardConcurrentSteps(t *testing.T) {
	b := NewBoard()
	p := b.Begin("parallel-sweep", 800)
	var wg sync.WaitGroup
	wg.Add(8)
	for g := 0; g < 8; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Step(1)
			}
		}()
	}
	wg.Wait()
	p.Finish()
	s := b.Snapshot()[0]
	if s.Done != 800 || s.Percent != 100 {
		t.Fatalf("concurrent snapshot = %+v", s)
	}
}

func TestBoardWriteJSON(t *testing.T) {
	b := NewBoard()
	p := b.Begin("qual-campaign", 12)
	p.Step(3)
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Studies []struct {
			Name           string  `json:"name"`
			Total          int64   `json:"total"`
			Done           int64   `json:"done"`
			Percent        float64 `json:"percent"`
			Finished       bool    `json:"finished"`
			ElapsedSeconds float64 `json:"elapsed_seconds"`
		} `json:"studies"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("progress dump not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Schema != "aeropack-progress/v1" {
		t.Fatalf("schema = %q, want aeropack-progress/v1", doc.Schema)
	}
	if len(doc.Studies) != 1 || doc.Studies[0].Name != "qual-campaign" || doc.Studies[0].Done != 3 {
		t.Fatalf("studies = %+v", doc.Studies)
	}
	if doc.Studies[0].ElapsedSeconds < 0 {
		t.Fatalf("elapsed = %g, want >= 0", doc.Studies[0].ElapsedSeconds)
	}

	// An empty board still emits a well-formed document with an empty
	// (not null) studies array.
	buf.Reset()
	if err := NewBoard().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"studies": []`)) {
		t.Fatalf("empty board dump = %s", buf.String())
	}
}

func TestBoardEventsLandInRecorder(t *testing.T) {
	rec := NewRecorder(16)
	prevR := SetRecorder(rec)
	t.Cleanup(func() { SetRecorder(prevR) })
	b := NewBoard()
	p := b.Begin("fleet", 2)
	p.Step(2)
	p.Finish()
	tail := rec.Tail(0)
	if len(tail) != 2 {
		t.Fatalf("recorded %d events, want 2: %+v", len(tail), tail)
	}
	if tail[0].Kind != "study_begin" || tail[0].Name != "fleet" {
		t.Fatalf("event 0 = %+v", tail[0])
	}
	if tail[1].Kind != "study_end" || len(tail[1].Attrs) != 2 || tail[1].Attrs[0].Value != "2" {
		t.Fatalf("event 1 = %+v", tail[1])
	}
}

func TestItoa(t *testing.T) {
	cases := map[int64]string{0: "0", 7: "7", 42: "42", -5: "-5", 123456789: "123456789"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Fatalf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
