// Package obshttp is aeropack's embeddable ops endpoint: a small
// net/http handler that exposes the process's observability state —
// metrics, health, flight-recorder tail, and per-study progress — so a
// multi-hour qualification campaign or capability sweep can be watched
// live instead of post-mortem.  The CLIs mount it behind -serve; the
// planned aeropackd service mounts the same handler on its own mux.
//
// Routes:
//
//	GET /metrics   Prometheus text exposition (version 0.0.4) of the Registry
//	GET /healthz   JSON liveness: status, uptime, goroutines
//	GET /events    flight-recorder tail as aeropack-events/v1 (?n= limits)
//	GET /progress  per-study percent-complete as aeropack-progress/v1
//
// Everything is read-only and stdlib-only.  The Server owns exactly one
// goroutine and Close joins it, honouring the repo-wide goroleak
// contract that no library goroutine outlives the run that started it.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"aeropack/internal/obs"
)

// Options selects the observability state a handler serves.  Nil fields
// degrade gracefully: the corresponding route answers with an empty but
// well-formed document rather than an error, so a handler can be
// mounted before every subsystem is enabled.
type Options struct {
	Registry *obs.Registry // /metrics source
	Recorder *obs.Recorder // /events source
	Board    *obs.Board    // /progress source
}

// handler implements the four ops routes over a fixed Options snapshot.
type handler struct {
	opts  Options
	start time.Time
	mux   *http.ServeMux
}

// NewHandler returns an http.Handler serving /metrics, /healthz,
// /events and /progress from the given sources.
func NewHandler(o Options) http.Handler {
	h := &handler{opts: o, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/events", h.events)
	mux.HandleFunc("/progress", h.progress)
	h.mux = mux
	return h
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// WritePrometheus on a nil registry writes nothing, which is itself
	// a valid (empty) exposition.
	if err := h.opts.Registry.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// healthPayload is the /healthz JSON body.
type healthPayload struct {
	Status        string  `json:"status"` // always "ok" while the process answers
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(healthPayload{
		Status:        "ok",
		UptimeSeconds: time.Since(h.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *handler) events(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("obshttp: bad n=%q", q), http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	rec := h.opts.Recorder
	if rec == nil {
		// Recorder disabled: an empty document keeps scrapers simple.
		rec = obs.NewRecorder(1)
	}
	if err := rec.WriteJSON(w, n); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *handler) progress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b := h.opts.Board
	if b == nil {
		b = obs.NewBoard()
	}
	if err := b.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Server is a running ops endpoint: a listener plus the single
// goroutine driving http.Server.Serve.  Close shuts the listener down
// and joins that goroutine.
type Server struct {
	ln        net.Listener
	srv       *http.Server
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Start binds addr (":0" picks a free port) and serves the handler
// until Close.  The serve goroutine is owned by the returned Server and
// joined by Close, so callers hold the goroleak contract by pairing
// Start with a deferred Close.
func Start(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve always exits with ErrServerClosed after Shutdown; real
		// bind errors were already caught by Listen in Start.
		_ = s.srv.Serve(s.ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close drains in-flight requests (bounded by a short timeout), stops
// the listener and joins the serve goroutine.  Safe to call more than
// once and on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.closeErr = s.srv.Shutdown(ctx)
		s.wg.Wait()
	})
	return s.closeErr
}

// Ops bundles everything -serve turns on: the global observability
// state (registry, flight recorder, progress board — installed only
// where not already enabled), the runtime sampler, and the HTTP server.
// A nil *Ops no-ops on Close, so CLI exit paths can close it
// unconditionally.
type Ops struct {
	server  *Server
	sampler *obs.Sampler
}

// EnableOps switches the process into live-inspection mode and serves
// the ops endpoint on addr.  Observability state that is already
// enabled (e.g. a registry installed by -metrics) is reused; whatever
// is still disabled is created and installed globally, so -serve alone
// is enough to watch a run.  The runtime sampler ticks once a second.
// Close the returned Ops on every exit path.
func EnableOps(addr string) (*Ops, error) {
	reg := obs.Default()
	if reg == nil {
		reg = obs.NewRegistry()
		obs.SetDefault(reg)
	}
	rec := obs.CurrentRecorder()
	if rec == nil {
		rec = obs.NewRecorder(0)
		obs.SetRecorder(rec)
	}
	board := obs.CurrentBoard()
	if board == nil {
		board = obs.NewBoard()
		obs.SetBoard(board)
	}
	srv, err := Start(addr, NewHandler(Options{Registry: reg, Recorder: rec, Board: board}))
	if err != nil {
		return nil, err
	}
	return &Ops{server: srv, sampler: obs.StartSampler(reg, time.Second)}, nil
}

// Addr returns the ops endpoint's bound address ("" on nil).
func (o *Ops) Addr() string {
	if o == nil {
		return ""
	}
	return o.server.Addr()
}

// Close stops the sampler and the HTTP server, joining both goroutines.
// Nil-safe and idempotent.
func (o *Ops) Close() error {
	if o == nil {
		return nil
	}
	o.sampler.Stop()
	return o.server.Close()
}
