package obshttp_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aeropack/internal/cosee"
	"aeropack/internal/materials"
	"aeropack/internal/obs"
	"aeropack/internal/obs/obshttp"
)

// TestOpsEndpointDuringLiveSweep is the ISSUE acceptance scenario: a
// Fig. 10 power sweep runs on worker goroutines while the ops endpoint
// answers /metrics, /healthz, /events and /progress mid-flight.  The
// sweep is paused deterministically through cosee's fault-injection
// seam (FaultFn blocks after the first few points), the four routes are
// scraped while it hangs, and the sweep then resumes to a clean finish.
func TestOpsEndpointDuringLiveSweep(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(0)
	board := obs.NewBoard()
	prevReg := obs.SetDefault(reg)
	prevRec := obs.SetRecorder(rec)
	prevBoard := obs.SetBoard(board)
	t.Cleanup(func() {
		obs.SetDefault(prevReg)
		obs.SetRecorder(prevRec)
		obs.SetBoard(prevBoard)
	})

	ts := httptest.NewServer(obshttp.NewHandler(obshttp.Options{
		Registry: reg, Recorder: rec, Board: board,
	}))
	defer ts.Close()

	mat, err := materials.Get("Al6061")
	if err != nil {
		t.Fatal(err)
	}
	powers := make([]float64, 11)
	for i := range powers {
		powers[i] = 10 * float64(i+1)
	}

	// The first passPoints fault checks return immediately so real points
	// complete; every later check parks its worker on release, freezing
	// the sweep mid-run with the study open and counters hot.
	const passPoints = 3
	var calls atomic.Int64
	var startedOnce, releaseOnce sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(unblock) // never leave sweep workers parked on a failed test
	fault := func(powerW float64) error {
		if calls.Add(1) > passPoints {
			startedOnce.Do(func() { close(started) })
			<-release
		}
		return nil
	}

	type sweepResult struct {
		pts []cosee.Point
		err error
	}
	resultCh := make(chan sweepResult, 1)
	go func() {
		cfg := cosee.Config{UseLHP: true, Structure: mat, FaultFn: fault}
		pts, err := cfg.SweepParallel(powers, 2)
		resultCh <- sweepResult{pts, err}
	}()

	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never reached the blocking fault check")
	}

	// --- mid-run: all four routes must answer while workers are parked ---

	// /metrics: the fault seam sits after the cosee_solves_total
	// increment, so at least passPoints+1 solves are already counted.
	metrics := get(t, ts.URL+"/metrics")
	solves := counterValue(t, metrics, "cosee_solves_total")
	if solves < passPoints+1 {
		t.Errorf("mid-run cosee_solves_total = %d, want >= %d", solves, passPoints+1)
	}

	// /healthz answers even with the solver stalled.
	var health struct {
		Status     string `json:"status"`
		Goroutines int    `json:"goroutines"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/healthz")), &health); err != nil {
		t.Fatalf("mid-run /healthz: %v", err)
	}
	if health.Status != "ok" || health.Goroutines < 3 {
		t.Errorf("mid-run health = %+v", health)
	}

	// /events: the flight recorder already holds the sweep's study_begin.
	var events struct {
		Schema string `json:"schema"`
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/events")), &events); err != nil {
		t.Fatalf("mid-run /events: %v", err)
	}
	if events.Schema != "aeropack-events/v1" {
		t.Errorf("events schema = %q", events.Schema)
	}
	sawBegin := false
	for _, e := range events.Events {
		if e.Kind == "study_begin" && e.Name == "cosee.Sweep" {
			sawBegin = true
		}
	}
	if !sawBegin {
		t.Error("mid-run /events has no study_begin for cosee.Sweep")
	}

	// /progress: the completed head of the sweep lands while the tail is
	// parked, so poll until some points are done and assert the study is
	// visibly incomplete.
	deadline := time.Now().Add(30 * time.Second)
	var study *progressStudy
	for {
		study = findStudy(t, ts.URL, "cosee.Sweep")
		if study != nil && study.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no mid-run progress for cosee.Sweep, last = %+v", study)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if study.Total != int64(len(powers)) {
		t.Errorf("mid-run total = %d, want %d", study.Total, len(powers))
	}
	if study.Done >= study.Total || study.Finished {
		t.Errorf("sweep not blocked mid-run: %+v", study)
	}

	// --- release, join, and confirm the run completed cleanly ---
	unblock()
	var res sweepResult
	select {
	case res = <-resultCh:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep did not finish after release")
	}
	if res.err != nil {
		t.Fatalf("sweep failed after release: %v", res.err)
	}
	if len(res.pts) != len(powers) {
		t.Fatalf("sweep returned %d points, want %d", len(res.pts), len(powers))
	}
	for _, p := range res.pts {
		if !(p.DeltaTK > 0) {
			t.Fatalf("point %+v has non-positive deltaT", p)
		}
	}
	final := findStudy(t, ts.URL, "cosee.Sweep")
	if final == nil || !final.Finished || final.Done != final.Total {
		t.Errorf("final progress = %+v, want finished %d/%d", final, len(powers), len(powers))
	}
}

type progressStudy struct {
	Name     string  `json:"name"`
	Total    int64   `json:"total"`
	Done     int64   `json:"done"`
	Percent  float64 `json:"percent"`
	Finished bool    `json:"finished"`
}

// findStudy scrapes /progress and returns the named study, or nil.
func findStudy(t *testing.T, baseURL, name string) *progressStudy {
	t.Helper()
	var doc struct {
		Schema  string          `json:"schema"`
		Studies []progressStudy `json:"studies"`
	}
	if err := json.Unmarshal([]byte(get(t, baseURL+"/progress")), &doc); err != nil {
		t.Fatalf("/progress: %v", err)
	}
	if doc.Schema != "aeropack-progress/v1" {
		t.Fatalf("progress schema = %q", doc.Schema)
	}
	for i := range doc.Studies {
		if doc.Studies[i].Name == name {
			return &doc.Studies[i]
		}
	}
	return nil
}

// counterValue extracts an integer counter sample from Prometheus text.
func counterValue(t *testing.T, body, name string) int {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				t.Fatalf("counter %s: parsing %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("counter %s not found in:\n%s", name, body)
	return 0
}

// get fetches a URL and returns the body, failing the test on any error
// or non-200 status.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }() // read-only; nothing to do about a close error
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}
