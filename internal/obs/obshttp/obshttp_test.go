package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aeropack/internal/obs"
)

// get fetches a path from ts and returns status, content type and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerRoutes(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cosee_solves_total").Add(7)
	reg.Gauge("runtime_goroutines").Set(12)
	reg.Histogram("linalg_residual", obs.ExpBuckets(1e-12, 10, 6)).Observe(1e-9)
	rec := obs.NewRecorder(16)
	rec.Record("solver", "cg", obs.Attr{Key: "iterations", Value: "42"})
	rec.Record("fallback", "gmres")
	board := obs.NewBoard()
	p := board.Begin("fig10", 10)
	p.Step(4)

	ts := httptest.NewServer(NewHandler(Options{Registry: reg, Recorder: rec, Board: board}))
	defer ts.Close()

	status, ctype, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE cosee_solves_total counter",
		"cosee_solves_total 7",
		"# TYPE runtime_goroutines gauge",
		"# TYPE linalg_residual histogram",
		`linalg_residual_bucket{le="+Inf"} 1`,
		"linalg_residual_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	status, ctype, body = get(t, ts, "/healthz")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/healthz status=%d ctype=%q", status, ctype)
	}
	var health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Goroutines    int     `json:"goroutines"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Goroutines < 1 || health.UptimeSeconds < 0 {
		t.Fatalf("/healthz payload = %+v", health)
	}

	status, _, body = get(t, ts, "/events")
	if status != http.StatusOK {
		t.Fatalf("/events status = %d", status)
	}
	var events struct {
		Schema string `json:"schema"`
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/events not JSON: %v\n%s", err, body)
	}
	if events.Schema != "aeropack-events/v1" || len(events.Events) != 2 {
		t.Fatalf("/events payload = %+v", events)
	}
	if events.Events[0].Kind != "solver" || events.Events[1].Kind != "fallback" {
		t.Fatalf("/events order = %+v", events.Events)
	}

	// ?n= limits the tail; a bad n is a 400.
	_, _, body = get(t, ts, "/events?n=1")
	if err := json.Unmarshal([]byte(body), &events); err != nil || len(events.Events) != 1 {
		t.Fatalf("/events?n=1 = %+v (err %v)", events, err)
	}
	if status, _, _ = get(t, ts, "/events?n=bogus"); status != http.StatusBadRequest {
		t.Fatalf("/events?n=bogus status = %d, want 400", status)
	}

	status, _, body = get(t, ts, "/progress")
	if status != http.StatusOK {
		t.Fatalf("/progress status = %d", status)
	}
	var progress struct {
		Schema  string `json:"schema"`
		Studies []struct {
			Name    string  `json:"name"`
			Percent float64 `json:"percent"`
		} `json:"studies"`
	}
	if err := json.Unmarshal([]byte(body), &progress); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if progress.Schema != "aeropack-progress/v1" || len(progress.Studies) != 1 {
		t.Fatalf("/progress payload = %+v", progress)
	}
	if progress.Studies[0].Name != "fig10" || progress.Studies[0].Percent != 40 {
		t.Fatalf("/progress study = %+v", progress.Studies[0])
	}

	if status, _, _ = get(t, ts, "/nope"); status != http.StatusNotFound {
		t.Fatalf("/nope status = %d, want 404", status)
	}
}

func TestHandlerNilSources(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Options{}))
	defer ts.Close()
	for _, path := range []string{"/metrics", "/healthz", "/events", "/progress"} {
		status, _, body := get(t, ts, path)
		if status != http.StatusOK {
			t.Fatalf("%s with nil sources: status %d body %q", path, status, body)
		}
	}
	// /events and /progress stay schema-stamped even with nothing wired.
	_, _, body := get(t, ts, "/events")
	if !strings.Contains(body, "aeropack-events/v1") {
		t.Fatalf("/events nil-source body = %s", body)
	}
	_, _, body = get(t, ts, "/progress")
	if !strings.Contains(body, `"studies": []`) {
		t.Fatalf("/progress nil-source body = %s", body)
	}
}

func TestServerStartClose(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total").Inc()
	srv, err := Start("127.0.0.1:0", NewHandler(Options{Registry: reg}))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("Addr = %q", addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "x_total 1") {
		t.Fatalf("live /metrics = %d %q", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still answering after Close")
	}

	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Fatal("nil Server methods misbehaved")
	}
}

func TestStartBadAddr(t *testing.T) {
	if _, err := Start("definitely-not-an-addr", nil); err == nil {
		t.Fatal("Start on a bad address should error")
	}
}

func TestEnableOps(t *testing.T) {
	// EnableOps installs globals only where disabled; run with everything
	// disabled and restore afterwards.
	prevReg := obs.SetDefault(nil)
	prevRec := obs.SetRecorder(nil)
	prevBoard := obs.SetBoard(nil)
	t.Cleanup(func() {
		obs.SetDefault(prevReg)
		obs.SetRecorder(prevRec)
		obs.SetBoard(prevBoard)
	})

	ops, err := EnableOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	if obs.Default() == nil || obs.CurrentRecorder() == nil || obs.CurrentBoard() == nil {
		t.Fatal("EnableOps did not install global observability state")
	}

	// The sampler's synchronous first tick means /metrics already has
	// runtime gauges.
	resp, err := http.Get("http://" + ops.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "runtime_goroutines") {
		t.Fatalf("/metrics missing runtime gauges:\n%s", body)
	}

	// Events recorded after enabling show up on /events.
	obs.CurrentRecorder().Record("degrade", "ic0", obs.Attr{Key: "to", Value: "jacobi"})
	resp, err = http.Get("http://" + ops.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"degrade"`) {
		t.Fatalf("/events missing recorded event:\n%s", body)
	}

	if err := ops.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var nilOps *Ops
	if nilOps.Addr() != "" || nilOps.Close() != nil {
		t.Fatal("nil Ops methods misbehaved")
	}
}

func TestEnableOpsReusesExistingRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("preexisting_total").Add(3)
	prevReg := obs.SetDefault(reg)
	prevRec := obs.SetRecorder(nil)
	prevBoard := obs.SetBoard(nil)
	t.Cleanup(func() {
		obs.SetDefault(prevReg)
		obs.SetRecorder(prevRec)
		obs.SetBoard(prevBoard)
	})
	ops, err := EnableOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()
	if obs.Default() != reg {
		t.Fatal("EnableOps replaced an already-installed registry")
	}
	resp, err := http.Get("http://" + ops.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "preexisting_total 3") {
		t.Fatalf("/metrics lost preexisting counter:\n%s", body)
	}
}
