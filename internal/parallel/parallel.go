// Package parallel is aeropack's stdlib-only worker-pool layer: bounded
// fan-out over index ranges and slices, built for the embarrassingly
// parallel sweeps the paper's evaluation consists of (power sweeps,
// technology maps, qualification campaigns) and for the row-parallel
// kernels underneath them.
//
// Every entry point takes a workers knob: values <= 0 resolve to
// runtime.GOMAXPROCS(0), 1 selects the inline serial path (the
// default-verifiable baseline), and larger values bound the number of
// goroutines.  Work is distributed deterministically — contiguous
// blocks for For/Blocks, in-order dispatch for Map — and results land
// in exactly the positions a serial run would produce, so callers whose
// items are independent get bitwise-identical output at any worker
// count.
//
// A panic inside a worker is captured and re-raised in the caller's
// goroutine once every worker has stopped; when several work items
// panic, the one with the lowest block start (For/Blocks) or item index
// (Map) wins, which for a deterministic body is the same panic a serial
// loop would have surfaced.  The argument-contract panics of
// internal/linalg therefore survive pool boundaries unchanged.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n itself when positive,
// otherwise min(runtime.GOMAXPROCS(0), runtime.NumCPU()).  The cap
// matters under `go test -cpu=N` (and any other GOMAXPROCS raised above
// the machine's core count): spawning more workers than cores buys no
// parallelism but pays real synchronisation, which is exactly how the
// Par_SolveSteadyParallel benchmark came to lose to serial.  An explicit
// positive n is honoured untouched — oversubscription on purpose stays
// possible.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if ncpu := runtime.NumCPU(); runtime.GOMAXPROCS(0) > ncpu {
		return ncpu
	}
	return runtime.GOMAXPROCS(0)
}

// Ranges splits [0,n) into min(Workers(workers), n) contiguous
// near-equal [lo,hi) blocks covering every index exactly once.  The
// partition depends only on n and workers, never on scheduling, so the
// same knob always yields the same block boundaries.
func Ranges(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([][2]int, w)
	base, rem := n/w, n%w
	lo := 0
	for b := 0; b < w; b++ {
		hi := lo + base
		if b < rem {
			hi++
		}
		out[b] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// capture records the panic from the lowest-indexed work item so the
// re-raise is deterministic even when several workers panic at once.
type capture struct {
	mu  sync.Mutex
	set bool
	idx int
	val any
}

func (c *capture) record(idx int, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.set || idx < c.idx {
		c.set, c.idx, c.val = true, idx, val
	}
}

// rethrow re-raises a captured worker panic in the caller's goroutine.
func (c *capture) rethrow() {
	if c.set {
		panic(c.val) //lint:allow panicpolicy re-raising a captured worker panic keeps linalg contract checks observable across the pool
	}
}

// Blocks runs fn(b, lo, hi) for each block b of Ranges(n, workers), one
// goroutine per block (inline, without spawning, when a single block
// suffices).  It returns only after every block has finished; a worker
// panic is then re-raised in the caller.
func Blocks(n, workers int, fn func(b, lo, hi int)) {
	rs := Ranges(n, workers)
	if len(rs) == 0 {
		return
	}
	po := startPoolObs(len(rs))
	if len(rs) == 1 {
		t0 := po.taskStart()
		fn(0, rs[0][0], rs[0][1])
		po.taskEnd(t0)
		po.finish()
		return
	}
	var pc capture
	var wg sync.WaitGroup
	wg.Add(len(rs))
	for b, r := range rs {
		go func(b, lo, hi int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					pc.record(lo, v)
				}
			}()
			t0 := po.taskStart()
			fn(b, lo, hi)
			po.taskEnd(t0)
		}(b, r[0], r[1])
	}
	wg.Wait()
	po.finish()
	pc.rethrow()
}

// For runs fn(i) for every i in [0,n) across at most Workers(workers)
// goroutines with contiguous block assignment.  Each index is visited
// exactly once; workers == 1 degenerates to the plain serial loop.
func For(n, workers int, fn func(i int)) {
	Blocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map evaluates fn over items with at most Workers(workers) concurrent
// goroutines and returns the results in input order: out[i] is always
// fn(i, items[i]).  Items are dispatched in index order and no new item
// starts after a failure, so for a deterministic fn the returned error
// is the one a serial scan would have hit first.  A worker panic is
// re-raised in the caller after all workers stop; when both a panic and
// an error occur, whichever has the lower item index wins.
func Map[T, R any](items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	out := make([]R, n)
	if n == 0 {
		return out, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	po := startPoolObs(w)
	if w == 1 {
		for i, it := range items {
			t0 := po.taskStart()
			po.queueWait(t0)
			r, err := fn(i, it)
			po.taskEnd(t0)
			if err != nil {
				po.finish()
				return nil, err
			}
			out[i] = r
		}
		po.finish()
		return out, nil
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		pc      capture
		mu      sync.Mutex
		wg      sync.WaitGroup
	)
	errIdx, firstErr := n, error(nil)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							pc.record(i, v)
							stopped.Store(true)
						}
					}()
					t0 := po.taskStart()
					po.queueWait(t0)
					r, err := fn(i, items[i])
					po.taskEnd(t0)
					if err != nil {
						mu.Lock()
						if i < errIdx {
							errIdx, firstErr = i, err
						}
						mu.Unlock()
						stopped.Store(true)
						return
					}
					out[i] = r
				}()
			}
		}()
	}
	wg.Wait()
	po.finish()
	if pc.set && pc.idx < errIdx {
		pc.rethrow()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	pc.rethrow()
	return out, nil
}
