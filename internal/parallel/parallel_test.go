package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	// Explicit positive counts are honoured untouched, even above the
	// core count (deliberate oversubscription stays possible).
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	// The default resolves to min(GOMAXPROCS, NumCPU): under `go test
	// -cpu=N` with N above the machine's cores, spawning N workers would
	// only buy synchronisation overhead.
	want := runtime.GOMAXPROCS(0)
	if ncpu := runtime.NumCPU(); want > ncpu {
		want = ncpu
	}
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want min(GOMAXPROCS, NumCPU) = %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Errorf("Workers(-5) = %d, want min(GOMAXPROCS, NumCPU) = %d", got, want)
	}
}

func TestRangesCoverAndPartition(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {7, 3}, {100, 8}, {3, 10}, {6, 1}, {9, 0},
	} {
		rs := Ranges(tc.n, tc.workers)
		seen := make([]bool, tc.n)
		prev := 0
		for _, r := range rs {
			if r[0] != prev {
				t.Fatalf("Ranges(%d,%d): block starts at %d, want %d", tc.n, tc.workers, r[0], prev)
			}
			if r[1] <= r[0] {
				t.Fatalf("Ranges(%d,%d): empty block %v", tc.n, tc.workers, r)
			}
			for i := r[0]; i < r[1]; i++ {
				seen[i] = true
			}
			prev = r[1]
		}
		if prev != tc.n {
			t.Fatalf("Ranges(%d,%d): blocks end at %d", tc.n, tc.workers, prev)
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("Ranges(%d,%d): index %d not covered", tc.n, tc.workers, i)
			}
		}
		if tc.n > 0 && tc.workers > 0 && len(rs) > tc.workers {
			t.Fatalf("Ranges(%d,%d): %d blocks exceed worker cap", tc.n, tc.workers, len(rs))
		}
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		const n = 101
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForSerialVsParallelEquivalence(t *testing.T) {
	const n = 257
	want := make([]float64, n)
	For(n, 1, func(i int) { want[i] = float64(i) * 1.5 })
	for _, workers := range []int{2, 4, 9} {
		got := make([]float64, n)
		For(n, workers, func(i int) { got[i] = float64(i) * 1.5 })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d mismatch", workers, i)
			}
		}
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if s, ok := v.(string); !ok || s != "linalg: contract violated" {
					t.Fatalf("workers=%d: recovered %v, want original panic value", workers, v)
				}
			}()
			For(64, workers, func(i int) {
				if i == 17 {
					panic("linalg: contract violated")
				}
			})
		}()
	}
}

func TestForPanicLowestBlockWins(t *testing.T) {
	// Every block panics; the deterministic winner is the one from the
	// lowest block, which is what a serial loop would surface first.
	defer func() {
		v := recover()
		if v != "boom-0" {
			t.Fatalf("recovered %v, want boom-0", v)
		}
	}()
	Blocks(40, 4, func(b, lo, hi int) { panic(fmt.Sprintf("boom-%d", lo)) })
}

func TestMapOrderingAndEquivalence(t *testing.T) {
	items := make([]int, 97)
	for i := range items {
		items[i] = i * 3
	}
	want, err := Map(items, 1, func(i, v int) (string, error) {
		return fmt.Sprintf("%d:%d", i, v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Map(items, workers, func(i, v int) (string, error) {
			return fmt.Sprintf("%d:%d", i, v), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	items := make([]int, 64)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4, 8} {
		_, err := Map(items, workers, func(i, _ int) (int, error) {
			switch i {
			case 11:
				return 0, errLow
			case 50:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want the lowest-index error", workers, err)
		}
	}
}

func TestMapPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if v := recover(); v != "map-boom" {
					t.Fatalf("workers=%d: recovered %v, want map-boom", workers, v)
				}
			}()
			_, _ = Map(make([]int, 32), workers, func(i, _ int) (int, error) {
				if i == 5 {
					panic("map-boom")
				}
				return i, nil
			})
		}()
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(nil, 4, func(i, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(nil) = %v, %v", out, err)
	}
}
