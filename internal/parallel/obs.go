package parallel

import (
	"strconv"
	"sync/atomic"
	"time"

	"aeropack/internal/obs"
)

// taskBuckets span 1 µs to 1000 s, one decade per bucket — wide enough
// for both row-kernel blocks and whole qualification campaigns.
var taskBuckets = obs.ExpBuckets(1e-6, 10, 9)

// poolObs accumulates the telemetry of one pool invocation (one Blocks
// or Map call).  A nil *poolObs — returned when metrics are disabled —
// makes every method a no-op, so the hot paths carry only nil checks.
//
// Metric names (see DESIGN.md "Observability"):
//
//	parallel_tasks_total           counter, work items completed
//	parallel_task_seconds          histogram, per-item execution time
//	parallel_queue_wait_seconds    histogram, dispatch delay per item (Map)
//	parallel_pool_workers          gauge, workers of the last pool run
//	parallel_pool_utilization      gauge, busy/(workers·wall) of last run
//	parallel_worker_busy_seconds   histogram, mean per-worker busy time
type poolObs struct {
	reg     *obs.Registry
	start   time.Time
	workers int
	busy    atomic.Int64 // summed task nanoseconds across workers
	tasks   atomic.Int64
}

// startPoolObs opens a pool-telemetry scope, or returns nil (one atomic
// load) when the metrics registry is disabled.
func startPoolObs(workers int) *poolObs {
	reg := obs.Default()
	if reg == nil {
		return nil
	}
	return &poolObs{reg: reg, start: time.Now(), workers: workers}
}

// taskStart stamps the beginning of one work item; zero time when
// disabled so taskEnd can cheaply skip.
func (p *poolObs) taskStart() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// taskEnd records one finished work item.
func (p *poolObs) taskEnd(t0 time.Time) {
	if p == nil {
		return
	}
	d := time.Since(t0)
	p.busy.Add(int64(d))
	p.tasks.Add(1)
	p.reg.Histogram("parallel_task_seconds", taskBuckets).Observe(d.Seconds())
}

// queueWait records how long a work item sat between pool start and its
// dispatch to a worker.
func (p *poolObs) queueWait(dispatched time.Time) {
	if p == nil {
		return
	}
	p.reg.Histogram("parallel_queue_wait_seconds", taskBuckets).Observe(dispatched.Sub(p.start).Seconds())
}

// finish publishes the whole-pool gauges once every worker has stopped.
func (p *poolObs) finish() {
	if p == nil {
		return
	}
	wall := time.Since(p.start).Seconds()
	busy := time.Duration(p.busy.Load()).Seconds()
	p.reg.Counter("parallel_tasks_total").Add(p.tasks.Load())
	p.reg.Gauge("parallel_pool_workers").Set(float64(p.workers))
	util := 0.0
	if wall > 0 {
		util = busy / (float64(p.workers) * wall)
	}
	p.reg.Gauge("parallel_pool_utilization").Set(util)
	p.reg.Histogram("parallel_worker_busy_seconds", taskBuckets).Observe(busy / float64(p.workers))
	// Flight-recorder pool event, thresholded to substantial runs: row
	// kernels open a pool per SpMV (thousands per second inside CG), so
	// only multi-worker pools lasting ≥1 ms are worth a ring slot.
	if p.workers > 1 && wall >= 1e-3 {
		if rec := obs.CurrentRecorder(); rec != nil {
			rec.Record("pool", "parallel",
				obs.Attr{Key: "workers", Value: strconv.Itoa(p.workers)},
				obs.Attr{Key: "tasks", Value: strconv.FormatInt(p.tasks.Load(), 10)},
				obs.Attr{Key: "utilization", Value: strconv.FormatFloat(util, 'g', 3, 64)})
		}
	}
}
