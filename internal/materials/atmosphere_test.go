package materials

import (
	"testing"

	"aeropack/internal/units"
)

func TestISASeaLevel(t *testing.T) {
	isa, err := StandardAtmosphere(0)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(isa.T, 288.15, 1e-9) {
		t.Errorf("sea-level T = %v", isa.T)
	}
	if !units.ApproxEqual(isa.P, 101325, 1e-9) {
		t.Errorf("sea-level P = %v", isa.P)
	}
	if !units.ApproxEqual(isa.Rho, 1.225, 0.001) {
		t.Errorf("sea-level rho = %v", isa.Rho)
	}
}

func TestISAHandbookPoints(t *testing.T) {
	// 11 km (tropopause): T = 216.65 K, P ≈ 22,632 Pa.
	isa, err := StandardAtmosphere(11000)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(isa.T, 216.65, 1e-4) {
		t.Errorf("tropopause T = %v", isa.T)
	}
	if !units.ApproxEqual(isa.P, 22632, 0.002) {
		t.Errorf("tropopause P = %v", isa.P)
	}
	// 20 km: P ≈ 5474 Pa in the isothermal layer.
	isa20, _ := StandardAtmosphere(20000)
	if !units.ApproxEqual(isa20.P, 5474, 0.01) {
		t.Errorf("20 km P = %v", isa20.P)
	}
	if !units.ApproxEqual(isa20.T, 216.65, 1e-4) {
		t.Errorf("20 km T = %v (isothermal layer)", isa20.T)
	}
	// Cruise altitude 40,000 ft ≈ 12,192 m: ρ ≈ 0.30 kg/m³.
	cruise, _ := StandardAtmosphere(12192)
	if !units.ApproxEqual(cruise.Rho, 0.30, 0.03) {
		t.Errorf("FL400 rho = %v, want ≈0.30", cruise.Rho)
	}
}

func TestISAMonotone(t *testing.T) {
	prevP, prevRho := 1e9, 1e9
	for h := 0.0; h <= 25000; h += 500 {
		isa, err := StandardAtmosphere(h)
		if err != nil {
			t.Fatal(err)
		}
		if isa.P >= prevP || isa.Rho >= prevRho {
			t.Fatalf("pressure/density not monotone at %v m", h)
		}
		prevP, prevRho = isa.P, isa.Rho
	}
}

func TestISARange(t *testing.T) {
	if _, err := StandardAtmosphere(30000); err == nil {
		t.Error("beyond range should error")
	}
	if _, err := StandardAtmosphere(-1000); err == nil {
		t.Error("below range should error")
	}
}

func TestAirAtAltitude(t *testing.T) {
	a, isa, err := AirAtAltitude(12192, units.CToK(60))
	if err != nil {
		t.Fatal(err)
	}
	sl := Air(0.5*(units.CToK(60)+288.15), units.AtmPressure)
	if a.Rho >= sl.Rho/3 {
		t.Errorf("cruise film density %v should be ≪ sea level %v", a.Rho, sl.Rho)
	}
	if isa.T > 230 {
		t.Errorf("cruise static temperature %v implausible", isa.T)
	}
	if _, _, err := AirAtAltitude(99999, 300); err == nil {
		t.Error("bad altitude should error")
	}
}

func TestConvectionDerates(t *testing.T) {
	// Sea level: no derate.
	n0, _ := NaturalConvectionDerate(0)
	f0, _ := ForcedConvectionDerate(0)
	if !units.ApproxEqual(n0, 1, 1e-9) || !units.ApproxEqual(f0, 1, 1e-9) {
		t.Error("sea-level derates must be 1")
	}
	// 40,000 ft: natural convection halves; fan cooling drops to ~38%.
	n, err := NaturalConvectionDerate(12192)
	if err != nil {
		t.Fatal(err)
	}
	if n < 0.4 || n > 0.6 {
		t.Errorf("natural derate at FL400 = %v, want ≈0.5", n)
	}
	f, _ := ForcedConvectionDerate(12192)
	if f < 0.3 || f > 0.45 {
		t.Errorf("forced derate at FL400 = %v, want ≈0.38", f)
	}
	// Forced (exp 0.8) derates harder than natural (exp 0.5).
	if f >= n {
		t.Error("forced cooling should derate harder than natural")
	}
	// Cabin altitude: mild (~10%) natural derate — the COSEE cabin case.
	nc, _ := NaturalConvectionDerate(CabinAltitudeM)
	if nc < 0.85 || nc > 0.95 {
		t.Errorf("cabin derate = %v, want ≈0.9", nc)
	}
	if _, err := NaturalConvectionDerate(1e6); err == nil {
		t.Error("bad altitude should error")
	}
	if _, err := ForcedConvectionDerate(1e6); err == nil {
		t.Error("bad altitude should error")
	}
}
