package materials

import (
	"math"
	"testing"
	"testing/quick"

	"aeropack/internal/units"
)

func TestGetKnown(t *testing.T) {
	for _, name := range Names() {
		m, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("material %q has Name %q", name, m.Name)
		}
		if m.K <= 0 && m.KInPlane <= 0 {
			t.Errorf("material %q has no conductivity", name)
		}
		if m.Rho <= 0 || m.Cp <= 0 {
			t.Errorf("material %q missing rho/cp", name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("unobtainium"); err == nil {
		t.Fatal("expected error for unknown material")
	}
}

func TestAllMatchesNames(t *testing.T) {
	all := All()
	names := Names()
	if len(all) != len(names) {
		t.Fatalf("All returned %d materials, Names %d", len(all), len(names))
	}
	for i, m := range all {
		if m.Name != names[i] {
			t.Errorf("All()[%d] = %q, want %q", i, m.Name, names[i])
		}
	}
}

func TestRegister(t *testing.T) {
	m := Material{Name: "TestAlloy", K: 10, Rho: 1000, Cp: 500}
	if err := Register(m); err != nil {
		t.Fatal(err)
	}
	got, err := Get("TestAlloy")
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 10 {
		t.Errorf("registered K = %v", got.K)
	}
	if err := Register(Material{}); err == nil {
		t.Error("expected error for unnamed material")
	}
	if err := Register(Material{Name: "bad", K: -1}); err == nil {
		t.Error("expected error for negative conductivity")
	}
}

func TestOrthotropic(t *testing.T) {
	al := Al6061
	if al.Orthotropic() {
		t.Error("Al6061 should be isotropic")
	}
	if al.Kx() != al.K || al.Kz() != al.K {
		t.Error("isotropic fallback broken")
	}
	fr4 := FR4
	if !fr4.Orthotropic() {
		t.Error("FR4 laminate should be orthotropic")
	}
	if fr4.Kx() <= fr4.Kz() {
		t.Errorf("FR4 in-plane (%v) should exceed through-plane (%v)", fr4.Kx(), fr4.Kz())
	}
}

func TestDiffusivity(t *testing.T) {
	al := Al6061
	// Aluminium diffusivity ≈ 6.9e-5 m²/s.
	if got := al.Diffusivity(); !units.ApproxEqual(got, 6.9e-5, 0.05) {
		t.Errorf("Al6061 diffusivity = %v, want ≈6.9e-5", got)
	}
	var empty Material
	if empty.Diffusivity() != 0 {
		t.Error("empty material diffusivity should be 0")
	}
}

func TestCompositeVsAluminium(t *testing.T) {
	// The paper: composite seat has "rather poor thermal conductivity"
	// compared to aluminium — our DB must preserve that ordering strongly.
	al := Al6061
	cc := CarbonComposite
	if cc.Kx() > al.K/10 {
		t.Errorf("composite k=%v not ≪ aluminium k=%v", cc.Kx(), al.K)
	}
}

func TestPCBLumping(t *testing.T) {
	// 8-layer 1 oz board, 50% coverage, 1.6 mm thick: classic numbers give
	// in-plane k of a few tens of W/m·K, through-plane well below 1 W/m·K
	// territory (slightly above bare FR4).
	b := PCB(8, 1.0, 0.5, 1.6e-3)
	if b.Kx() < 10 || b.Kx() > 60 {
		t.Errorf("PCB in-plane k = %v, want 10–60", b.Kx())
	}
	if b.Kz() < 0.3 || b.Kz() > 1.0 {
		t.Errorf("PCB through-plane k = %v, want 0.3–1.0", b.Kz())
	}
	if b.Kx() < b.Kz() {
		t.Error("in-plane must exceed through-plane")
	}
	// More copper → higher conductivity, monotonically.
	b2 := PCB(12, 2.0, 0.8, 1.6e-3)
	if b2.Kx() <= b.Kx() {
		t.Error("more copper should raise in-plane k")
	}
}

func TestPCBCopperSaturation(t *testing.T) {
	// Pathological input: copper thicker than the board must clamp, giving
	// pure-copper properties, not k > k_Cu.
	b := PCB(100, 3.0, 1.0, 0.5e-3)
	cu := Copper
	if b.Kx() > cu.K*1.0001 {
		t.Errorf("clamped PCB k = %v exceeds copper %v", b.Kx(), cu.K)
	}
}

func TestPCBBounds(t *testing.T) {
	// Property: for any sane inputs the lumped conductivities respect the
	// Wiener bounds (series ≤ effective ≤ parallel) relative to FR4/Cu.
	fr4 := FR4
	cu := Copper
	f := func(layersRaw uint8, oz, cov float64) bool {
		layers := int(layersRaw%16) + 1
		oz = math.Abs(math.Mod(oz, 3)) + 0.1
		cov = math.Abs(math.Mod(cov, 1))
		b := PCB(layers, oz, cov, 1.6e-3)
		return b.Kx() >= fr4.Kz()*0.999 && b.Kx() <= cu.K*1.001 &&
			b.Kz() >= fr4.Kz()*0.999 && b.Kz() <= cu.K*1.001 &&
			b.Kx() >= b.Kz()*0.999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAirProperties(t *testing.T) {
	a := Air(units.CToK(20), units.AtmPressure)
	// Handbook values at 20 °C, 1 atm.
	if !units.ApproxEqual(a.Rho, 1.204, 0.01) {
		t.Errorf("air rho = %v, want ≈1.204", a.Rho)
	}
	if !units.ApproxEqual(a.K, 0.0257, 0.03) {
		t.Errorf("air k = %v, want ≈0.0257", a.K)
	}
	if !units.ApproxEqual(a.Mu, 1.82e-5, 0.03) {
		t.Errorf("air mu = %v, want ≈1.82e-5", a.Mu)
	}
	if a.Pr < 0.65 || a.Pr > 0.75 {
		t.Errorf("air Pr = %v, want ≈0.7", a.Pr)
	}
	if !units.ApproxEqual(a.Beta, 1/units.CToK(20), 1e-9) {
		t.Errorf("air beta = %v", a.Beta)
	}
}

func TestAirTrends(t *testing.T) {
	cold := Air(units.CToK(-45), units.AtmPressure) // thermal shock low end
	hot := Air(units.CToK(85), units.AtmPressure)   // avionics ambient limit
	if cold.Rho <= hot.Rho {
		t.Error("density must fall with temperature")
	}
	if cold.Mu >= hot.Mu {
		t.Error("viscosity must rise with temperature")
	}
	if cold.K >= hot.K {
		t.Error("conductivity must rise with temperature")
	}
	// Low-temperature clamp: no NaNs below validity range.
	a := Air(50, units.AtmPressure)
	if math.IsNaN(a.K) || a.K <= 0 {
		t.Errorf("clamped air props invalid: %+v", a)
	}
}

func TestVolumetricHeatCapacity(t *testing.T) {
	al := Al6061
	if got := al.VolumetricHeatCapacity(); !units.ApproxEqual(got, 2700*896, 1e-12) {
		t.Errorf("VolumetricHeatCapacity = %v", got)
	}
}
