package materials

import (
	"fmt"
	"math"

	"aeropack/internal/units"
)

// ISA implements the International Standard Atmosphere up to 25 km: the
// pressure and temperature an avionics box actually sees in a ventilated
// or unpressurized bay.  Altitude derating of convective cooling is one
// of the severe "environmental constraints" the paper's packaging design
// must absorb: at 40,000 ft the air density — and with it every
// convective film — has fallen to a quarter of sea level.
type ISA struct {
	AltitudeM float64
	T         float64 // K
	P         float64 // Pa
	Rho       float64 // kg/m³
}

// StandardAtmosphere evaluates the ISA at geometric altitude h (m),
// valid 0–25,000 m (troposphere + lower stratosphere).
func StandardAtmosphere(h float64) (ISA, error) {
	if h < -500 || h > 25000 {
		return ISA{}, fmt.Errorf("materials: altitude %g m outside ISA range", h)
	}
	const (
		T0    = 288.15 // K
		P0    = units.AtmPressure
		L     = 0.0065  // K/m tropospheric lapse
		hTrop = 11000.0 // m
		g     = units.Gravity
		R     = 287.058
	)
	var T, P float64
	if h <= hTrop {
		T = T0 - L*h
		P = P0 * math.Pow(T/T0, g/(L*R))
	} else {
		T = T0 - L*hTrop // isothermal 216.65 K
		pTrop := P0 * math.Pow(T/T0, g/(L*R))
		P = pTrop * math.Exp(-g*(h-hTrop)/(R*T))
	}
	return ISA{AltitudeM: h, T: T, P: P, Rho: P / (R * T)}, nil
}

// AirAtAltitude returns dry-air properties at ISA altitude h (m) for a
// surface running at temperature Tsurf — the film properties convection
// correlations need in flight.
func AirAtAltitude(h, Tsurf float64) (AirProps, ISA, error) {
	isa, err := StandardAtmosphere(h)
	if err != nil {
		return AirProps{}, ISA{}, err
	}
	film := 0.5 * (Tsurf + isa.T)
	return Air(film, isa.P), isa, nil
}

// NaturalConvectionDerate returns the factor by which buoyant convection
// weakens at altitude relative to sea level: h_alt/h_sl ≈ (ρ/ρ₀)^(1/2)
// for laminar natural convection (Ra ∝ ρ², Nu ∝ Ra^{1/4}).
func NaturalConvectionDerate(h float64) (float64, error) {
	isa, err := StandardAtmosphere(h)
	if err != nil {
		return 0, err
	}
	sl, _ := StandardAtmosphere(0)
	return math.Sqrt(isa.Rho / sl.Rho), nil
}

// ForcedConvectionDerate returns the factor for fan-driven (constant
// volumetric flow) forced convection: h ∝ (ρV)^0.8 at fixed V gives
// (ρ/ρ₀)^0.8.
func ForcedConvectionDerate(h float64) (float64, error) {
	isa, err := StandardAtmosphere(h)
	if err != nil {
		return 0, err
	}
	sl, _ := StandardAtmosphere(0)
	return math.Pow(isa.Rho/sl.Rho, 0.8), nil
}

// CabinAltitudeM is the standard pressurized-cabin equivalent altitude
// (8,000 ft) used for cabin equipment such as the COSEE seat boxes.
const CabinAltitudeM = 2438.4
