// Package materials provides the material property database used across
// aeropack's thermal, mechanical and reliability models.
//
// Properties follow the convention of the packaging literature: thermal
// conductivity k in W/(m·K), density rho in kg/m³, specific heat cp in
// J/(kg·K), Young's modulus E in Pa, CTE in 1/K.  Orthotropic thermal
// conductivity (needed for multilayer PCBs with copper planes) is expressed
// as separate in-plane and through-plane values.
package materials

import (
	"fmt"
	"math"
	"sort"

	"aeropack/internal/units"
)

// Material describes a homogeneous engineering material.  A zero value is
// not usable; obtain instances from Get or construct them fully.
type Material struct {
	Name string

	// Thermal properties.
	K        float64 // isotropic thermal conductivity, W/(m·K)
	KInPlane float64 // in-plane conductivity for orthotropic laminates (0 → use K)
	KThru    float64 // through-plane conductivity for orthotropic laminates (0 → use K)
	Rho      float64 // density, kg/m³
	Cp       float64 // specific heat, J/(kg·K)
	Emiss    float64 // total hemispherical emissivity (typical surface finish)

	// Mechanical properties.
	E        float64 // Young's modulus, Pa
	Nu       float64 // Poisson's ratio
	CTE      float64 // coefficient of thermal expansion, 1/K
	Yield    float64 // yield (or ultimate for brittle) strength, Pa
	FatigueB float64 // Basquin fatigue exponent b (S = Sf·N^b), negative
	FatigueS float64 // Basquin fatigue strength coefficient Sf, Pa

	// MaxServiceT is the maximum continuous service temperature, K.
	MaxServiceT float64
}

// Orthotropic reports whether the material has direction-dependent
// conductivity.
func (m *Material) Orthotropic() bool {
	return m.KInPlane != 0 || m.KThru != 0
}

// Kx returns the in-plane conductivity, falling back to the isotropic value.
func (m *Material) Kx() float64 {
	if m.KInPlane != 0 {
		return m.KInPlane
	}
	return m.K
}

// Kz returns the through-plane conductivity, falling back to the isotropic
// value.
func (m *Material) Kz() float64 {
	if m.KThru != 0 {
		return m.KThru
	}
	return m.K
}

// Diffusivity returns the thermal diffusivity k/(rho·cp) in m²/s using the
// isotropic (or in-plane) conductivity.
func (m *Material) Diffusivity() float64 {
	if m.Rho == 0 || m.Cp == 0 {
		return 0
	}
	return m.Kx() / (m.Rho * m.Cp)
}

// VolumetricHeatCapacity returns rho·cp in J/(m³·K).
func (m *Material) VolumetricHeatCapacity() float64 { return m.Rho * m.Cp }

// Canonical built-in materials.  Values are room-temperature handbook
// numbers typical of avionics packaging practice.  The instances are
// exported so that a misspelt material name is a compile error rather
// than a runtime lookup failure — the panic-free replacement for the old
// MustGet helper.  Dynamic (string-keyed) lookup remains available via
// Get.
var (
	Al6061 = Material{
		Name: "Al6061", K: 167, Rho: 2700, Cp: 896, Emiss: 0.09,
		E: 68.9e9, Nu: 0.33, CTE: 23.6e-6, Yield: 276e6,
		FatigueB: -0.085, FatigueS: 620e6, MaxServiceT: 450,
	}
	Al6061Anodized = Material{
		Name: "Al6061Anodized", K: 167, Rho: 2700, Cp: 896, Emiss: 0.84,
		E: 68.9e9, Nu: 0.33, CTE: 23.6e-6, Yield: 276e6,
		FatigueB: -0.085, FatigueS: 620e6, MaxServiceT: 450,
	}
	Al7075 = Material{
		Name: "Al7075", K: 130, Rho: 2810, Cp: 960, Emiss: 0.09,
		E: 71.7e9, Nu: 0.33, CTE: 23.4e-6, Yield: 503e6,
		FatigueB: -0.076, FatigueS: 886e6, MaxServiceT: 450,
	}
	Copper = Material{
		Name: "Copper", K: 398, Rho: 8960, Cp: 385, Emiss: 0.03,
		E: 117e9, Nu: 0.34, CTE: 16.5e-6, Yield: 70e6,
		FatigueB: -0.12, FatigueS: 300e6, MaxServiceT: 500,
	}
	Steel304 = Material{
		Name: "Steel304", K: 16.2, Rho: 8000, Cp: 500, Emiss: 0.35,
		E: 193e9, Nu: 0.29, CTE: 17.3e-6, Yield: 215e6,
		FatigueB: -0.09, FatigueS: 1000e6, MaxServiceT: 700,
	}
	Titanium = Material{
		Name: "Titanium", K: 6.7, Rho: 4430, Cp: 526, Emiss: 0.3,
		E: 113.8e9, Nu: 0.342, CTE: 8.6e-6, Yield: 880e6,
		FatigueB: -0.07, FatigueS: 1400e6, MaxServiceT: 600,
	}
	// FR4 with lumped copper layers is modelled separately by pcb helpers;
	// this entry is bare dielectric.
	FR4 = Material{
		Name: "FR4", K: 0.3, KInPlane: 0.8, KThru: 0.3, Rho: 1850, Cp: 1100,
		Emiss: 0.9, E: 22e9, Nu: 0.28, CTE: 16e-6, Yield: 310e6,
		FatigueB: -0.12, FatigueS: 500e6, MaxServiceT: 403,
	}
	// CarbonComposite is the COSEE composite seat frame material — the
	// paper stresses its "rather poor thermal conductivity" compared to
	// aluminium.
	CarbonComposite = Material{
		Name: "CarbonComposite", K: 5, KInPlane: 8, KThru: 0.8,
		Rho: 1600, Cp: 900, Emiss: 0.88,
		E: 70e9, Nu: 0.3, CTE: 2e-6, Yield: 600e6,
		FatigueB: -0.07, FatigueS: 900e6, MaxServiceT: 420,
	}
	Silicon = Material{
		Name: "Silicon", K: 148, Rho: 2330, Cp: 712, Emiss: 0.6,
		E: 130e9, Nu: 0.28, CTE: 2.6e-6, Yield: 7000e6,
		MaxServiceT: 500,
	}
	Alumina = Material{
		Name: "Alumina", K: 27, Rho: 3900, Cp: 880, Emiss: 0.8,
		E: 370e9, Nu: 0.22, CTE: 7.2e-6, Yield: 300e6,
		MaxServiceT: 1000,
	}
	AlN = Material{
		Name: "AlN", K: 170, Rho: 3260, Cp: 740, Emiss: 0.85,
		E: 330e9, Nu: 0.24, CTE: 4.5e-6, Yield: 300e6,
		MaxServiceT: 1000,
	}
	SolderSAC305 = Material{
		Name: "SolderSAC305", K: 58, Rho: 7400, Cp: 220, Emiss: 0.06,
		E: 51e9, Nu: 0.36, CTE: 21.7e-6, Yield: 45e6,
		FatigueB: -0.1, FatigueS: 100e6, MaxServiceT: 423,
	}
	MoldCompound = Material{
		Name: "MoldCompound", K: 0.9, Rho: 1970, Cp: 880, Emiss: 0.92,
		E: 24e9, Nu: 0.3, CTE: 12e-6, Yield: 120e6,
		MaxServiceT: 448,
	}
	// ThermalDrain is annealed pyrolytic graphite for conduction-cooled
	// boards.
	ThermalDrain = Material{
		Name: "ThermalDrain", K: 1200, KInPlane: 1600, KThru: 10,
		Rho: 2260, Cp: 710, Emiss: 0.85,
		E: 20e9, Nu: 0.25, CTE: 1e-6, Yield: 50e6,
		MaxServiceT: 500,
	}
)

// db is the built-in material library, keyed by name and built from the
// canonical instances above at package construction time.
var db = byName(
	Al6061, Al6061Anodized, Al7075, Copper, Steel304, Titanium, FR4,
	CarbonComposite, Silicon, Alumina, AlN, SolderSAC305, MoldCompound,
	ThermalDrain,
)

func byName(ms ...Material) map[string]Material {
	out := make(map[string]Material, len(ms))
	for _, m := range ms {
		out[m.Name] = m
	}
	return out
}

// Get returns the named material from the built-in library.
func Get(name string) (Material, error) {
	m, ok := db[name]
	if !ok {
		return Material{}, fmt.Errorf("materials: unknown material %q", name)
	}
	return m, nil
}

// Names returns the sorted list of built-in material names.
func Names() []string {
	names := make([]string, 0, len(db))
	for n := range db {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the library materials sorted by name.
func All() []Material {
	out := make([]Material, 0, len(db))
	for _, n := range Names() {
		out = append(out, db[n])
	}
	return out
}

// Register adds (or replaces) a material in the library.  It returns an
// error if the material has no name or non-positive density with a non-zero
// specific heat, which would break transient solvers.
func Register(m Material) error {
	if m.Name == "" {
		return fmt.Errorf("materials: cannot register unnamed material")
	}
	if m.K < 0 || m.Rho < 0 || m.Cp < 0 {
		return fmt.Errorf("materials: %q has negative thermal properties", m.Name)
	}
	db[m.Name] = m
	return nil
}

// PCB constructs an effective orthotropic laminate material for a printed
// circuit board with the given copper coverage.  layers is the number of
// copper layers, each ozCu ounces per square foot (1 oz = 35 µm),
// coverage is the average fractional copper area per layer (0..1), and
// boardThk is the total board thickness in metres.
//
// In-plane conductivity follows the parallel (rule-of-mixtures) bound and
// through-plane the series bound — the standard level-2 lumping used when a
// detailed layer stack is not simulated (paper §II.B, level 2).
func PCB(layers int, ozCu, coverage, boardThk float64) Material {
	fr4 := FR4
	cu := Copper
	tCu := float64(layers) * ozCu * 35e-6 * coverage
	if tCu > boardThk {
		tCu = boardThk
	}
	phi := tCu / boardThk // copper volume fraction
	kin := phi*cu.K + (1-phi)*fr4.Kx()
	kthru := 1 / (phi/cu.K + (1-phi)/fr4.Kz())
	rho := phi*cu.Rho + (1-phi)*fr4.Rho
	cp := (phi*cu.Rho*cu.Cp + (1-phi)*fr4.Rho*fr4.Cp) / rho
	return Material{
		Name:     fmt.Sprintf("PCB-%dL-%.1foz", layers, ozCu),
		K:        kin,
		KInPlane: kin,
		KThru:    kthru,
		Rho:      rho,
		Cp:       cp,
		Emiss:    0.9,
		E:        fr4.E, Nu: fr4.Nu, CTE: fr4.CTE, Yield: fr4.Yield,
		FatigueB: fr4.FatigueB, FatigueS: fr4.FatigueS,
		MaxServiceT: fr4.MaxServiceT,
	}
}

// Air returns the thermophysical properties of dry air at temperature T (K)
// and standard pressure, using polynomial fits valid for 200–600 K.
type AirProps struct {
	Rho  float64 // density, kg/m³
	Cp   float64 // specific heat, J/(kg·K)
	K    float64 // thermal conductivity, W/(m·K)
	Mu   float64 // dynamic viscosity, Pa·s
	Nu   float64 // kinematic viscosity, m²/s
	Pr   float64 // Prandtl number
	Beta float64 // thermal expansion coefficient, 1/K (ideal gas: 1/T)
}

// Air evaluates dry-air properties at temperature T in kelvin and pressure
// p in Pa (ideal-gas density scaling; transport properties are pressure-
// independent at these conditions).
func Air(T, p float64) AirProps {
	if T < 150 {
		T = 150
	}
	const Rair = 287.058
	const T0 = units.ZeroCelsius // Sutherland reference temperature
	rho := p / (Rair * T)
	// Sutherland's law for viscosity.
	mu := 1.716e-5 * (T / T0) * math.Sqrt(T/T0) * (T0 + 110.4) / (T + 110.4)
	// Conductivity: Sutherland-type fit.
	k := 0.0241 * (T / T0) * math.Sqrt(T/T0) * (T0 + 194) / (T + 194)
	cp := 1002.5 + 275e-6*(T-200)*(T-200) // weak quadratic rise
	nu := mu / rho
	pr := mu * cp / k
	return AirProps{Rho: rho, Cp: cp, K: k, Mu: mu, Nu: nu, Pr: pr, Beta: 1 / T}
}
