package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestToCSRCancellationDrop(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *COO
		wantNNZ int
		check   func(t *testing.T, m *CSR)
	}{
		{
			name: "exact cancellation dropped",
			build: func() *COO {
				c := NewCOO(3, 3)
				c.Add(1, 2, 5.0)
				c.Add(1, 2, -5.0) // duplicate sums to exactly zero
				c.Add(0, 0, 1.0)
				c.Add(2, 2, 3.0)
				return c
			},
			wantNNZ: 2,
			check: func(t *testing.T, m *CSR) {
				if v := m.At(1, 2); v != 0 {
					t.Errorf("At(1,2) = %g, want 0", v)
				}
				if m.RowPtr[2]-m.RowPtr[1] != 0 {
					t.Errorf("row 1 still stores %d entries", m.RowPtr[2]-m.RowPtr[1])
				}
			},
		},
		{
			name: "three-way cancellation dropped",
			build: func() *COO {
				c := NewCOO(2, 2)
				c.Add(0, 1, 2.5)
				c.Add(0, 1, 1.5)
				c.Add(0, 1, -4.0)
				c.Add(1, 1, 7.0)
				return c
			},
			wantNNZ: 1,
			check: func(t *testing.T, m *CSR) {
				if v := m.At(1, 1); v != 7.0 {
					t.Errorf("At(1,1) = %g, want 7", v)
				}
			},
		},
		{
			name: "near-zero residue kept",
			build: func() *COO {
				c := NewCOO(2, 2)
				c.Add(0, 0, 1.0)
				c.Add(0, 0, -1.0+1e-9) // does not cancel exactly
				return c
			},
			wantNNZ: 1,
			check: func(t *testing.T, m *CSR) {
				if v := m.At(0, 0); v == 0 {
					t.Error("tiny residue was incorrectly dropped")
				}
			},
		},
		{
			name: "all entries cancel",
			build: func() *COO {
				c := NewCOO(2, 2)
				c.Add(0, 0, 4.0)
				c.Add(0, 0, -4.0)
				c.Add(1, 0, 0.5)
				c.Add(1, 0, -0.5)
				return c
			},
			wantNNZ: 0,
			check: func(t *testing.T, m *CSR) {
				if m.RowPtr[len(m.RowPtr)-1] != 0 {
					t.Errorf("RowPtr ends at %d, want 0", m.RowPtr[len(m.RowPtr)-1])
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.build().ToCSR()
			if m.NNZ() != tc.wantNNZ {
				t.Errorf("NNZ = %d, want %d", m.NNZ(), tc.wantNNZ)
			}
			if len(m.ColIdx) != len(m.Val) {
				t.Fatalf("ColIdx/Val length mismatch: %d vs %d", len(m.ColIdx), len(m.Val))
			}
			if got := m.RowPtr[len(m.RowPtr)-1]; got != m.NNZ() {
				t.Errorf("RowPtr end %d inconsistent with NNZ %d", got, m.NNZ())
			}
			tc.check(t, m)
		})
	}
}

func TestMulVecAliasing(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(1, 1, 3)
	c.Add(1, 2, 1)
	c.Add(2, 2, 4)
	m := c.ToCSR()

	x := []float64{1, 2, 3}
	want := m.MulVec(x, nil) // non-aliased reference

	v := []float64{1, 2, 3}
	got := m.MulVec(v, v) // y aliases x
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if &got[0] != &v[0] {
		t.Error("aliased MulVec did not reuse the caller's slice")
	}
}

// randomSPDCSR builds a strictly diagonally dominant (hence usable) random
// sparse matrix with deterministic seeding.
func randomSPDCSR(n, perRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for k := 0; k < perRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64() - 0.5
			c.Add(i, j, v)
			rowSum += math.Abs(v)
		}
		c.Add(i, i, rowSum+1)
	}
	return c.ToCSR()
}

func TestMulVecParallelMatchesSerial(t *testing.T) {
	// Big enough to clear MulVecParallelNNZ so the parallel path runs.
	n := MulVecParallelNNZ / 4
	m := randomSPDCSR(n, 8, 42)
	if m.NNZ() < MulVecParallelNNZ {
		t.Fatalf("test matrix too sparse: %d nnz", m.NNZ())
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	want := m.MulVec(x, nil)
	for _, w := range []int{2, 4, 7} {
		m.SetWorkers(w)
		got := m.MulVec(x, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d differs: %g vs %g (must be bitwise identical)",
					w, i, got[i], want[i])
			}
		}
	}
	m.SetWorkers(0)
}

func TestDiagRowWalk(t *testing.T) {
	cases := []struct {
		name  string
		build func() *COO
	}{
		{"dense-ish", func() *COO {
			c := NewCOO(4, 4)
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					c.Add(i, j, float64(i*4+j+1))
				}
			}
			return c
		}},
		{"missing diagonal entries", func() *COO {
			c := NewCOO(4, 4)
			c.Add(0, 0, 2)
			c.Add(1, 3, 1) // row 1 has no diagonal
			c.Add(2, 2, 5)
			c.Add(3, 0, 1) // row 3 has no diagonal
			return c
		}},
		{"empty rows", func() *COO {
			c := NewCOO(3, 3)
			c.Add(2, 2, 9)
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.build().ToCSR()
			d := m.Diag()
			for i := 0; i < m.Rows; i++ {
				if want := m.At(i, i); d[i] != want {
					t.Errorf("Diag[%d] = %g, want %g", i, d[i], want)
				}
			}
		})
	}
}

func TestIsSymmetricRowWalk(t *testing.T) {
	sym := NewCOO(4, 4)
	sym.Add(0, 0, 2)
	sym.Add(0, 1, -1)
	sym.Add(1, 0, -1)
	sym.Add(1, 1, 2)
	sym.Add(1, 3, 0.5)
	sym.Add(3, 1, 0.5)
	sym.Add(2, 2, 1)
	sym.Add(3, 3, 2)
	if !sym.ToCSR().IsSymmetric(1e-12) {
		t.Error("symmetric matrix reported asymmetric")
	}

	val := NewCOO(3, 3)
	val.Add(0, 1, 1.0)
	val.Add(1, 0, 1.1) // value mismatch
	val.Add(0, 0, 1)
	val.Add(1, 1, 1)
	val.Add(2, 2, 1)
	m := val.ToCSR()
	if m.IsSymmetric(1e-3) {
		t.Error("value-asymmetric matrix reported symmetric")
	}
	if !m.IsSymmetric(0.2) {
		t.Error("asymmetry within tolerance rejected")
	}

	structural := NewCOO(3, 3)
	structural.Add(0, 2, 3) // no (2,0) mirror at all
	structural.Add(0, 0, 1)
	structural.Add(1, 1, 1)
	structural.Add(2, 2, 1)
	if structural.ToCSR().IsSymmetric(1e-9) {
		t.Error("structurally asymmetric matrix reported symmetric")
	}

	rect := NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if rect.ToCSR().IsSymmetric(1e-9) {
		t.Error("rectangular matrix reported symmetric")
	}

	// Consistency with the dense mirror on a random symmetric pattern.
	rng := rand.New(rand.NewSource(7))
	c := NewCOO(50, 50)
	for e := 0; e < 200; e++ {
		i, j := rng.Intn(50), rng.Intn(50)
		v := rng.Float64()
		c.Add(i, j, v)
		if i != j {
			c.Add(j, i, v)
		}
	}
	if !c.ToCSR().IsSymmetric(1e-12) {
		t.Error("random symmetric matrix reported asymmetric")
	}
}

func TestAppendAll(t *testing.T) {
	a := NewCOO(3, 3)
	a.Add(0, 0, 1)
	a.Add(1, 1, 2)
	b := NewCOO(3, 3)
	b.Add(1, 1, 3)
	b.Add(2, 0, 4)

	whole := NewCOO(3, 3)
	whole.Add(0, 0, 1)
	whole.Add(1, 1, 2)
	whole.Add(1, 1, 3)
	whole.Add(2, 0, 4)

	a.AppendAll(b)
	got, want := a.ToCSR(), whole.ToCSR()
	if got.NNZ() != want.NNZ() {
		t.Fatalf("NNZ %d, want %d", got.NNZ(), want.NNZ())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Errorf("At(%d,%d) = %g, want %g", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("AppendAll dimension mismatch did not panic")
		}
	}()
	a.AppendAll(NewCOO(2, 2))
}
