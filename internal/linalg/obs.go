package linalg

import (
	"strconv"

	"aeropack/internal/obs"
)

// residualBuckets cover the convergence range of interest: 1e-16 (beyond
// machine precision) up through 100 (a diverged solve), one decade per
// bucket.
var residualBuckets = obs.ExpBuckets(1e-16, 10, 18)

// recordSolve publishes the post-solve metrics of one iterative solve to
// the process-global registry.  When telemetry is disabled (the default)
// the cost is a single atomic load.  Metric names are part of the
// observability contract documented in DESIGN.md:
//
//	linalg_<method>_solves_total    counter, solves started
//	linalg_solver_iterations_total  counter, iterations across methods
//	linalg_solver_failures_total    counter, solves that returned an error
//	linalg_residual                 histogram, relative residual at exit
func recordSolve(method string, stats IterStats, err error) {
	if r := obs.Default(); r != nil {
		r.Counter("linalg_" + method + "_solves_total").Inc()
		r.Counter("linalg_solver_iterations_total").Add(int64(stats.Iterations))
		r.Histogram("linalg_residual", residualBuckets).Observe(stats.Residual)
		if err != nil {
			r.Counter("linalg_solver_failures_total").Inc()
		}
	}
	// Flight-recorder convergence summary: one event per solve with the
	// numbers an operator tails first when a run misbehaves.
	if rec := obs.CurrentRecorder(); rec != nil {
		attrs := []obs.Attr{
			{Key: "iterations", Value: strconv.Itoa(stats.Iterations)},
			{Key: "residual", Value: strconv.FormatFloat(stats.Residual, 'g', -1, 64)},
		}
		if err != nil {
			attrs = append(attrs, obs.Attr{Key: "error", Value: err.Error()})
		}
		rec.Record("solver", method, attrs...)
	}
}
