package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPD builds a seeded random sparse symmetric positive-definite
// matrix: a random symmetric sparsity pattern with the diagonal forced
// strictly dominant, plus a matching random right-hand side.  Same seed,
// same system — the property tables below are fully reproducible.
func randomSPD(seed int64, n int, fill float64) (*CSR, []float64) {
	rng := rand.New(rand.NewSource(seed))
	off := make([]map[int]float64, n)
	for i := range off {
		off[i] = map[int]float64{}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < fill {
				v := 2*rng.Float64() - 1
				off[i][j] = v
				off[j][i] = v
			}
		}
	}
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j, v := range off[i] {
			coo.Add(i, j, v)
			rowSum += math.Abs(v)
		}
		// Strict diagonal dominance with a random positive margin keeps
		// the matrix SPD for any sparsity draw.
		coo.Add(i, i, rowSum+0.5+rng.Float64())
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	return coo.ToCSR(), b
}

func relDiff(x, y []float64) float64 {
	num, den := 0.0, 0.0
	for i := range x {
		d := x[i] - y[i]
		num += d * d
		den += y[i] * y[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestPropertyIterativeAgreesWithDense is the table-driven property
// check: on seeded random SPD systems, CG and BiCGSTAB must agree with
// the dense LU reference solve to solver tolerance.
func TestPropertyIterativeAgreesWithDense(t *testing.T) {
	cases := []struct {
		seed int64
		n    int
		fill float64
	}{
		{1, 20, 0.30},
		{2, 40, 0.20},
		{3, 60, 0.10},
		{4, 80, 0.08},
		{5, 120, 0.05},
		{6, 120, 0.15},
	}
	for _, tc := range cases {
		a, b := randomSPD(tc.seed, tc.n, tc.fill)
		ref, err := SolveDense(a.ToDense(), b)
		if err != nil {
			t.Fatalf("seed %d n %d: dense reference failed: %v", tc.seed, tc.n, err)
		}
		xcg, stats, err := CG(a, b, nil, NewJacobiPrec(a), 1e-11, 10*tc.n+100)
		if err != nil {
			t.Errorf("seed %d n %d: CG failed: %v", tc.seed, tc.n, err)
		} else if d := relDiff(xcg, ref); d > 1e-8 {
			t.Errorf("seed %d n %d: CG differs from dense by %.3g (stats %+v)", tc.seed, tc.n, d, stats)
		}
		xbi, stats, err := BiCGSTAB(a, b, nil, NewJacobiPrec(a), 1e-11, 10*tc.n+100)
		if err != nil {
			t.Errorf("seed %d n %d: BiCGSTAB failed: %v", tc.seed, tc.n, err)
		} else if d := relDiff(xbi, ref); d > 1e-8 {
			t.Errorf("seed %d n %d: BiCGSTAB differs from dense by %.3g (stats %+v)", tc.seed, tc.n, d, stats)
		}
	}
}

// TestPropertyParallelMulVecPathBitwise drives the row-parallel MulVec
// path through a full CG solve: a banded system large enough to cross
// MulVecParallelNNZ must produce bitwise-identical iterates at any
// worker count (the SetWorkers contract), so the whole solve is too.
func TestPropertyParallelMulVecPathBitwise(t *testing.T) {
	const n, halfBand = 2200, 4
	rng := rand.New(rand.NewSource(11))
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for k := 1; k <= halfBand; k++ {
			if i+k < n {
				v := 2*rng.Float64() - 1
				coo.Add(i, i+k, v)
				coo.Add(i+k, i, v)
			}
		}
		for k := -halfBand; k <= halfBand; k++ {
			if k != 0 && i+k >= 0 && i+k < n {
				rowSum += 1 // bound below by the worst |entry| of 1
			}
		}
		coo.Add(i, i, rowSum+1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}

	serial := coo.ToCSR()
	if serial.NNZ() < MulVecParallelNNZ {
		t.Fatalf("system too small to exercise the parallel path: nnz %d < %d", serial.NNZ(), MulVecParallelNNZ)
	}
	xSerial, _, err := CG(serial, b, nil, NewJacobiPrec(serial), 1e-11, 5000)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		par := coo.ToCSR()
		par.SetWorkers(workers)
		xPar, _, err := CG(par, b, nil, NewJacobiPrec(par), 1e-11, 5000)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range xSerial {
			if math.Float64bits(xPar[i]) != math.Float64bits(xSerial[i]) {
				t.Fatalf("workers=%d: x[%d] = %x differs from serial %x",
					workers, i, math.Float64bits(xPar[i]), math.Float64bits(xSerial[i]))
			}
		}
	}
}
