package linalg

import (
	"strings"
	"testing"
)

// mustPanic runs fn and returns the panic message, failing the test if
// fn returns normally or panics with something other than the package's
// contract-check string messages.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected a contract panic, got normal return")
			}
			s, ok := r.(string)
			if !ok {
				t.Fatalf("contract panics must carry a string message, got %T (%v)", r, r)
			}
			msg = s
		}()
		fn()
	}()
	if !strings.HasPrefix(msg, "linalg: ") {
		t.Errorf("panic message %q should carry the linalg: prefix", msg)
	}
	return msg
}

// spd2 builds a well-conditioned 2×2 SPD matrix for factorization tests.
func spd2() *Dense {
	a := NewDense(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	return a
}

// TestContractPanics drives every documented panic path in dense.go and
// sparse.go through recover, checking both that the guard fires and that
// the message identifies the violated contract.
func TestContractPanics(t *testing.T) {
	lu, err := FactorLU(spd2())
	if err != nil {
		t.Fatal(err)
	}
	chol, err := FactorCholesky(spd2())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		want string // substring of the panic message
		fn   func()
	}{
		{"NewDense zero rows", "invalid dense dimensions",
			func() { NewDense(0, 3) }},
		{"NewDense negative cols", "invalid dense dimensions",
			func() { NewDense(2, -1) }},
		{"Dense MulVec length", "dimension mismatch in MulVec",
			func() { NewDense(2, 2).MulVec([]float64{1}) }},
		{"Dense Mul inner dims", "dimension mismatch in Mul",
			func() { NewDense(2, 3).Mul(NewDense(2, 3)) }},
		{"LU solve length", "dimension mismatch in LU solve",
			func() { lu.Solve([]float64{1}) }},
		{"Cholesky solve length", "dimension mismatch in Cholesky solve",
			func() { chol.Solve([]float64{1, 2, 3}) }},
		{"Dot length", "dimension mismatch in Dot",
			func() { Dot([]float64{1, 2}, []float64{1}) }},
		{"Axpy length", "dimension mismatch in Axpy",
			func() { Axpy(2, []float64{1, 2}, []float64{1}) }},
		{"NewCOO zero cols", "invalid COO dimensions",
			func() { NewCOO(3, 0) }},
		{"COO row out of range", "out of range",
			func() { NewCOO(2, 2).Add(2, 0, 1) }},
		{"COO negative col", "out of range",
			func() { NewCOO(2, 2).Add(0, -1, 1) }},
		{"CSR MulVec length", "dimension mismatch in CSR MulVec",
			func() {
				coo := NewCOO(2, 2)
				coo.Add(0, 0, 1)
				coo.ToCSR().MulVec([]float64{1}, nil)
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := mustPanic(t, tc.fn)
			if !strings.Contains(msg, tc.want) {
				t.Errorf("panic message %q should mention %q", msg, tc.want)
			}
		})
	}
}

// TestNoPanicOnValidInput is the complement: the same operations succeed
// quietly when the contracts hold.
func TestNoPanicOnValidInput(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 2)
	if got := a.MulVec([]float64{1, 1}); len(got) != 2 {
		t.Errorf("MulVec result length %d", len(got))
	}
	if got := a.Mul(NewDense(2, 2)); got.Rows != 2 || got.Cols != 2 {
		t.Error("Mul result has wrong shape")
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	if got := coo.ToCSR().MulVec([]float64{3, 4}, nil); got[0] != 3 || got[1] != 4 {
		t.Errorf("identity MulVec = %v", got)
	}
}
