package linalg

import (
	"strings"
	"testing"

	"aeropack/internal/obs"
)

// spdSystem builds a small SPD tridiagonal system for solver tests.
func spdSystem(n int) (*CSR, []float64) {
	coo := NewCOO(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -1)
		}
		b[i] = 1
	}
	return coo.ToCSR(), b
}

func TestConvergenceLogRing(t *testing.T) {
	l := NewConvergenceLog(3)
	for i := 1; i <= 5; i++ {
		l.Record(i, 1.0/float64(i))
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
	pts := l.Points()
	if len(pts) != 3 {
		t.Fatalf("retained %d points, want 3", len(pts))
	}
	// Oldest two samples overwritten; chronological order preserved.
	for i, want := range []int{3, 4, 5} {
		if pts[i].Iteration != want {
			t.Errorf("pts[%d].Iteration = %d, want %d", i, pts[i].Iteration, want)
		}
	}
	s := l.String()
	if !strings.Contains(s, "# 2 earlier samples overwritten") {
		t.Errorf("String missing overwrite note:\n%s", s)
	}
	if !strings.Contains(s, "5") {
		t.Errorf("String missing last iteration:\n%s", s)
	}
}

func TestConvergenceLogCapacityFloor(t *testing.T) {
	l := NewConvergenceLog(0)
	l.Record(1, 0.5)
	l.Record(2, 0.25)
	if got := l.Points(); len(got) != 1 || got[0].Iteration != 2 {
		t.Errorf("capacity-0 log retained %v, want just iteration 2", got)
	}
}

// TestCGOnIterationLog wires a ConvergenceLog into a real CG solve and
// checks the recorded history: one sample per iteration, monotone
// iteration numbers, final residual at the solver's converged value.
func TestCGOnIterationLog(t *testing.T) {
	a, b := spdSystem(50)
	log := NewConvergenceLog(256)
	_, stats, err := CGOpt(a, b, nil, &IterOptions{Tol: 1e-10, MaxIter: 500, OnIteration: log.Record})
	if err != nil {
		t.Fatal(err)
	}
	if log.Total() != stats.Iterations {
		t.Errorf("recorded %d samples for %d iterations", log.Total(), stats.Iterations)
	}
	pts := log.Points()
	last := pts[len(pts)-1]
	if last.Residual != stats.Residual {
		t.Errorf("last recorded residual %g != stats residual %g", last.Residual, stats.Residual)
	}
}

// TestBiCGSTABOnIteration checks the other solver's callback path.
func TestBiCGSTABOnIteration(t *testing.T) {
	a, b := spdSystem(50)
	count := 0
	_, stats, err := BiCGSTABOpt(a, b, nil, &IterOptions{Tol: 1e-10, MaxIter: 500,
		OnIteration: func(int, float64) { count++ }})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 || count < stats.Iterations {
		t.Errorf("callback fired %d times for %d iterations", count, stats.Iterations)
	}
}

// TestRecordSolveMetrics checks the metric side of a solve, including
// the failure counter on a non-converged run.
func TestRecordSolveMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetDefault(reg)
	defer obs.SetDefault(prev)

	a, b := spdSystem(50)
	_, stats, err := CGOpt(a, b, nil, &IterOptions{Tol: 1e-10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("linalg_cg_solves_total").Value(); n != 1 {
		t.Errorf("linalg_cg_solves_total = %d, want 1", n)
	}
	if n := reg.Counter("linalg_solver_iterations_total").Value(); n != int64(stats.Iterations) {
		t.Errorf("linalg_solver_iterations_total = %d, want %d", n, stats.Iterations)
	}
	if n := reg.Histogram("linalg_residual", nil).Count(); n != 1 {
		t.Errorf("linalg_residual count = %d, want 1", n)
	}

	// A capped solve fails and must hit the failure counter.
	if _, _, err := CGOpt(a, b, nil, &IterOptions{Tol: 1e-16, MaxIter: 2}); err == nil {
		t.Fatal("expected non-convergence with MaxIter=2")
	}
	if n := reg.Counter("linalg_solver_failures_total").Value(); n != 1 {
		t.Errorf("linalg_solver_failures_total = %d, want 1", n)
	}
	if n := reg.Counter("linalg_cg_solves_total").Value(); n != 2 {
		t.Errorf("linalg_cg_solves_total after failure = %d, want 2", n)
	}
}
