package linalg

import (
	"fmt"
	"sync"
	"testing"

	"aeropack/internal/obs"
)

func TestSolverSetupPrecReuse(t *testing.T) {
	s := NewSolverSetup()
	a, _ := randomSPD(1, 40, 0.1)
	for _, kind := range []string{"jacobi", "ssor", "ic0"} {
		p1, err := s.PrecFor(kind, a, 1.2)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		p2, err := s.PrecFor(kind, a, 1.2)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p1 != p2 {
			t.Errorf("%s: identical matrix content did not reuse the cached instance", kind)
		}
	}
	// Same structure, different values: a fresh preconditioner, but the
	// expensive IC(0) symbolic pattern is shared.
	a2 := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: a.RowPtr, ColIdx: a.ColIdx, Val: make([]float64, len(a.Val))}
	for i := range a.Val {
		a2.Val[i] = 2 * a.Val[i]
	}
	p1, _ := s.PrecFor("ic0", a, 1.2)
	p2, err := s.PrecFor("ic0", a2, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("value change reused a stale preconditioner")
	}
	if p1.(*ICPrec).sym != p2.(*ICPrec).sym {
		t.Error("same-structure matrices did not share the IC(0) symbolic pattern")
	}
	// A different SSOR omega is a different preconditioner.
	q1, _ := s.PrecFor("ssor", a, 1.2)
	q2, _ := s.PrecFor("ssor", a, 1.5)
	if q1 == q2 {
		t.Error("omega change reused a stale SSOR preconditioner")
	}
}

func TestSolverSetupIdentityAndUnknownKinds(t *testing.T) {
	s := NewSolverSetup()
	a, _ := randomSPD(2, 10, 0.2)
	for _, kind := range []string{"", "identity"} {
		p, err := s.PrecFor(kind, a, 0)
		if err != nil || p != nil {
			t.Errorf("PrecFor(%q) = %v, %v; want nil, nil", kind, p, err)
		}
	}
	if _, err := s.PrecFor("ilu-magic", a, 0); err == nil {
		t.Error("unknown kind accepted")
	}
	// IC(0) breakdown (indefinite matrix survives no shift rung) surfaces
	// as an error, leaving the caller to degrade.
	coo := NewCOO(2, 2)
	coo.Add(0, 0, -1)
	coo.Add(1, 1, 1)
	if _, err := s.PrecFor("ic0", coo.ToCSR(), 0); err == nil {
		t.Error("IC(0) breakdown did not surface as an error")
	}
}

func TestSolverSetupResultCache(t *testing.T) {
	s := NewSolverSetup()
	a, b := randomSPD(3, 20, 0.15)
	key := s.Key("test:cg", a, b, nil, 1e-10)
	if _, _, ok := s.Cached(key); ok {
		t.Fatal("hit on an empty cache")
	}
	x := []float64{1, 2, 3}
	s.Store(key, x, IterStats{Converged: true, Iterations: 7})
	x[0] = 99 // the cache must have taken a copy
	got, stats, ok := s.Cached(key)
	if !ok {
		t.Fatal("miss after Store")
	}
	if got[0] != 1 || stats.Iterations != 7 {
		t.Fatalf("cached = %v, stats %+v", got, stats)
	}
	got[1] = -5 // and hand out copies, never its private slice
	again, _, _ := s.Cached(key)
	if again[1] != 2 {
		t.Fatal("Cached returned a mutable reference to the stored slice")
	}
	// Non-converged results must never be cached.
	key2 := s.Key("test:cg", a, b, nil, 1e-14)
	s.Store(key2, x, IterStats{Converged: false, Iterations: 500})
	if _, _, ok := s.Cached(key2); ok {
		t.Fatal("non-converged solve was cached")
	}
}

func TestSolverSetupKeyDistinguishesContent(t *testing.T) {
	s := NewSolverSetup()
	a, b := randomSPD(4, 15, 0.2)
	base := s.Key("lbl", a, b, nil, 1e-10)
	zeros := make([]float64, len(b))
	for name, k := range map[string]SolveKey{
		"label":         s.Key("lbl2", a, b, nil, 1e-10),
		"tolerance":     s.Key("lbl", a, b, nil, 1e-8),
		"rhs":           s.Key("lbl", a, append([]float64{1}, b[1:]...), nil, 1e-10),
		"nil-vs-zero-x": s.Key("lbl", a, b, zeros, 1e-10),
	} {
		if k == base {
			t.Errorf("%s change did not alter the solve key", name)
		}
	}
	if s.Key("lbl", a, b, nil, 1e-10) != base {
		t.Error("identical content hashed to different keys")
	}
}

func TestSolverSetupFIFOBounds(t *testing.T) {
	s := NewSolverSetup()
	a, b := randomSPD(5, 12, 0.25)
	keys := make([]SolveKey, setupMaxResults+1)
	for i := range keys {
		keys[i] = s.Key(fmt.Sprintf("solve-%d", i), a, b, nil, 1e-10)
		s.Store(keys[i], b, IterStats{Converged: true, Iterations: i})
	}
	if _, _, ok := s.Cached(keys[0]); ok {
		t.Error("oldest result survived past the FIFO bound")
	}
	for i := 1; i < len(keys); i++ {
		if _, _, ok := s.Cached(keys[i]); !ok {
			t.Errorf("result %d evicted early", i)
		}
	}
	if len(s.results) != setupMaxResults || len(s.resOrd) != setupMaxResults {
		t.Errorf("result cache holds %d/%d entries, want %d", len(s.results), len(s.resOrd), setupMaxResults)
	}
	// Preconditioner FIFO: one more distinct matrix than the bound.
	for i := 0; i <= setupMaxPrecs; i++ {
		m, _ := randomSPD(int64(100+i), 10, 0.3)
		if _, err := s.PrecFor("jacobi", m, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.precs) != setupMaxPrecs || len(s.precOrd) != setupMaxPrecs {
		t.Errorf("prec cache holds %d/%d entries, want %d", len(s.precs), len(s.precOrd), setupMaxPrecs)
	}
}

func TestSolverSetupCounters(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetDefault(reg)
	defer obs.SetDefault(prev)
	s := NewSolverSetup()
	a, b := randomSPD(6, 30, 0.1)
	if _, err := s.PrecFor("ic0", a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PrecFor("ic0", a, 0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("linalg_setup_prec_reuse_total").Value(); got != 1 {
		t.Errorf("prec reuse counter = %v, want 1", got)
	}
	key := s.Key("c", a, b, nil, 1e-9)
	s.Cached(key)
	s.Store(key, b, IterStats{Converged: true})
	s.Cached(key)
	if got := reg.Counter("linalg_setup_result_misses_total").Value(); got != 1 {
		t.Errorf("miss counter = %v, want 1", got)
	}
	if got := reg.Counter("linalg_setup_result_hits_total").Value(); got != 1 {
		t.Errorf("hit counter = %v, want 1", got)
	}
}

// Concurrent mixed use must be race-free (run under -race in verify.sh)
// and always yield working preconditioners — the SweepParallel sharing
// pattern.
func TestSolverSetupConcurrent(t *testing.T) {
	s := NewSolverSetup()
	mats := make([]*CSR, 4)
	rhss := make([][]float64, 4)
	for i := range mats {
		mats[i], rhss[i] = randomSPD(int64(20+i), 35, 0.12)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				a, b := mats[(g+it)%len(mats)], rhss[(g+it)%len(mats)]
				p, err := s.PrecFor("ic0", a, 0)
				if err != nil {
					t.Error(err)
					return
				}
				key := s.Key("conc", a, b, nil, 1e-10)
				if x, _, ok := s.Cached(key); ok {
					if r := relResidual(a, x, b); r > 1e-8 {
						t.Errorf("cached residual %g", r)
						return
					}
					continue
				}
				x, stats, err := CG(a, b, nil, p, 1e-10, 400)
				if err != nil {
					t.Error(err)
					return
				}
				s.Store(key, x, stats)
			}
		}(g)
	}
	wg.Wait()
}
