package linalg

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// ErrStopped is wrapped into the error returned when an iterative solve
// is aborted by IterOptions.Stop before reaching its tolerance — the
// budget-exceeded signal fallback chains (internal/robust) test for with
// errors.Is.
var ErrStopped = errors.New("solve stopped by budget callback")

// Preconditioner applies z = M⁻¹·r for an approximate inverse M⁻¹.
type Preconditioner interface {
	Apply(r, z []float64)
}

// IdentityPrec is the trivial (no-op) preconditioner.
type IdentityPrec struct{}

// Apply copies r to z.
func (IdentityPrec) Apply(r, z []float64) { copy(z, r) }

// JacobiPrec is diagonal scaling: z_i = r_i / A_ii.
type JacobiPrec struct{ InvDiag []float64 }

// NewJacobiPrec builds a Jacobi preconditioner from matrix a.  Zero
// diagonal entries are treated as 1 so the preconditioner stays usable on
// semi-definite systems with constrained rows.
func NewJacobiPrec(a *CSR) *JacobiPrec {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			inv[i] = 1
		} else {
			inv[i] = 1 / v
		}
	}
	return &JacobiPrec{InvDiag: inv}
}

// Apply performs the diagonal scaling.
func (p *JacobiPrec) Apply(r, z []float64) {
	for i, v := range r {
		z[i] = v * p.InvDiag[i]
	}
}

// Refresh recomputes the inverse diagonal from a matrix with new values,
// reusing the existing storage — it allocates nothing, which is the
// point of hoisting one instance out of a time-stepping loop.  The
// caller must own the instance exclusively (no concurrent Apply) — shared
// instances handed out by SolverSetup are immutable and must not be
// refreshed.
func (p *JacobiPrec) Refresh(a *CSR) error {
	if a.Rows != len(p.InvDiag) {
		return fmt.Errorf("linalg: Jacobi refresh dimension %d, want %d", a.Rows, len(p.InvDiag))
	}
	for i := 0; i < a.Rows; i++ {
		v := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				v = a.Val[k]
				break
			}
		}
		if v == 0 {
			p.InvDiag[i] = 1
		} else {
			p.InvDiag[i] = 1 / v
		}
	}
	return nil
}

// SSORPrec is a symmetric successive-over-relaxation preconditioner for
// symmetric matrices with relaxation factor omega in (0,2).
//
// Apply needs an intermediate vector for the forward-sweep result; the
// instance keeps one cached in an atomic slot so the common serial case
// never re-allocates, while concurrent Apply calls on a shared instance
// (parallel sweep workers reusing one preconditioner) each claim or
// allocate their own scratch instead of silently sharing it — the
// original plain `tmp []float64` field was a data race.
type SSORPrec struct {
	a       *CSR
	diag    []float64
	omega   float64
	scratch atomic.Pointer[[]float64]
}

// NewSSORPrec builds an SSOR preconditioner; omega outside (0,2) is clamped
// to 1 (symmetric Gauss–Seidel).
func NewSSORPrec(a *CSR, omega float64) *SSORPrec {
	if omega <= 0 || omega >= 2 {
		omega = 1
	}
	d := a.Diag()
	for i, v := range d {
		if v == 0 {
			d[i] = 1
		}
	}
	p := &SSORPrec{a: a, diag: d, omega: omega}
	tmp := make([]float64, a.Rows)
	p.scratch.Store(&tmp)
	return p
}

// Refresh rebinds the preconditioner to a matrix with identical sparsity
// structure but new values.  The caller must own the instance exclusively
// (no concurrent Apply); SolverSetup-cached instances are immutable.
func (p *SSORPrec) Refresh(a *CSR) error {
	if a.Rows != p.a.Rows || a.Cols != p.a.Cols {
		return fmt.Errorf("linalg: SSOR refresh dimensions %d×%d, want %d×%d", a.Rows, a.Cols, p.a.Rows, p.a.Cols)
	}
	p.a = a
	d := a.Diag()
	for i, v := range d {
		if v == 0 {
			d[i] = 1
		}
	}
	p.diag = d
	return nil
}

// Apply performs one forward and one backward SOR sweep.
func (p *SSORPrec) Apply(r, z []float64) {
	n := p.a.Rows
	// Claim the cached scratch vector; a concurrent Apply that finds the
	// slot empty allocates its own, so two goroutines never write the
	// same buffer.
	var y []float64
	if t := p.scratch.Swap(nil); t != nil {
		y = *t
	} else {
		y = make([]float64, n)
	}
	// Forward sweep: (D/ω + L) y = r.
	for i := 0; i < n; i++ {
		s := r[i]
		for k := p.a.RowPtr[i]; k < p.a.RowPtr[i+1]; k++ {
			if j := p.a.ColIdx[k]; j < i {
				s -= p.a.Val[k] * y[j]
			}
		}
		y[i] = s * p.omega / p.diag[i]
	}
	// Scale by D/ω, then backward sweep (D/ω + U) z = (D/ω) y.
	for i := 0; i < n; i++ {
		y[i] *= p.diag[i] / p.omega
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := p.a.RowPtr[i]; k < p.a.RowPtr[i+1]; k++ {
			if j := p.a.ColIdx[k]; j > i {
				s -= p.a.Val[k] * z[j]
			}
		}
		z[i] = s * p.omega / p.diag[i]
	}
	p.scratch.Store(&y)
}

// checkFinite rejects NaN or Inf entries in the supplied vectors before a
// solve starts: an iterative method fed a poisoned right-hand side spins
// for maxIter iterations and returns garbage that is hard to trace back.
func checkFinite(method string, vecs ...[]float64) error {
	for _, v := range vecs {
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("linalg: %s input entry %d is %v", method, i, x)
			}
		}
	}
	return nil
}

// IterStats reports the outcome of an iterative solve.
type IterStats struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

// IterOptions bundles the optional controls of an iterative solve beyond
// the matrix and right-hand side.
type IterOptions struct {
	Tol     float64        // relative residual target
	MaxIter int            // iteration cap
	Prec    Preconditioner // nil means identity
	// OnIteration, if non-nil, is invoked once per iteration with the
	// 0-based iteration index and the relative residual reached at its
	// end — the hook behind convergence traces (see ConvergenceLog).
	// It runs on the solver goroutine; keep it cheap.
	OnIteration func(it int, residual float64)
	// Stop, if non-nil, is polled once per iteration after the
	// convergence check; returning true aborts the solve with an error
	// wrapping ErrStopped, keeping the best iterate so far.  It is the
	// hook behind wall-clock attempt budgets and forced-bailout fault
	// injection (internal/robust).
	Stop func() bool
}

// CG solves the SPD system A·x = b with the preconditioned conjugate
// gradient method.  x0 may be nil for a zero initial guess.  It iterates
// until the relative residual falls below tol or maxIter is reached.
//
//lint:allow nanguard input validation (checkFinite) lives in CGOpt
func CG(a *CSR, b, x0 []float64, prec Preconditioner, tol float64, maxIter int) ([]float64, IterStats, error) {
	return CGOpt(a, b, x0, &IterOptions{Tol: tol, MaxIter: maxIter, Prec: prec})
}

// CGOpt is CG with the full option set (per-iteration convergence
// callback included).  A nil options value selects identity
// preconditioning with zero tolerance and cap, like CG would.
func CGOpt(a *CSR, b, x0 []float64, o *IterOptions) ([]float64, IterStats, error) {
	var opt IterOptions
	if o != nil {
		opt = *o
	}
	if err := checkFinite("CG", b, x0); err != nil {
		return nil, IterStats{}, err
	}
	x, stats, err := cg(a, b, x0, &opt)
	recordSolve("cg", stats, err)
	return x, stats, err
}

func cg(a *CSR, b, x0 []float64, o *IterOptions) ([]float64, IterStats, error) {
	prec, tol, maxIter := o.Prec, o.Tol, o.MaxIter
	n := a.Rows
	if a.Cols != n {
		return nil, IterStats{}, fmt.Errorf("linalg: CG requires a square matrix")
	}
	if len(b) != n {
		return nil, IterStats{}, fmt.Errorf("linalg: CG rhs length %d, want %d", len(b), n)
	}
	if prec == nil {
		prec = IdentityPrec{}
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]float64, n)
	ax := a.MulVec(x, nil)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	normB := Norm2(b)
	if normB == 0 {
		return x, IterStats{Converged: true}, nil
	}
	z := make([]float64, n)
	prec.Apply(r, z)
	p := make([]float64, n)
	copy(p, z)
	rz := Dot(r, z)
	ap := make([]float64, n)
	var stats IterStats
	for it := 0; it < maxIter; it++ {
		stats.Iterations = it + 1
		a.MulVec(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return x, stats, fmt.Errorf("linalg: CG breakdown (matrix not SPD?), pᵀAp=%g at iter %d", pap, it)
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		res := Norm2(r) / normB
		stats.Residual = res
		if o.OnIteration != nil {
			o.OnIteration(it, res)
		}
		if res < tol {
			stats.Converged = true
			return x, stats, nil
		}
		if o.Stop != nil && o.Stop() {
			return x, stats, fmt.Errorf("linalg: CG %w after %d iterations (residual %.3g)", ErrStopped, stats.Iterations, stats.Residual)
		}
		prec.Apply(r, z)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, stats, fmt.Errorf("linalg: CG did not converge in %d iterations (residual %.3g)", maxIter, stats.Residual)
}

// BiCGSTAB solves the general (possibly unsymmetric) system A·x = b.
//
//lint:allow nanguard input validation (checkFinite) lives in BiCGSTABOpt
func BiCGSTAB(a *CSR, b, x0 []float64, prec Preconditioner, tol float64, maxIter int) ([]float64, IterStats, error) {
	return BiCGSTABOpt(a, b, x0, &IterOptions{Tol: tol, MaxIter: maxIter, Prec: prec})
}

// BiCGSTABOpt is BiCGSTAB with the full option set (per-iteration
// convergence callback included).
func BiCGSTABOpt(a *CSR, b, x0 []float64, o *IterOptions) ([]float64, IterStats, error) {
	var opt IterOptions
	if o != nil {
		opt = *o
	}
	if err := checkFinite("BiCGSTAB", b, x0); err != nil {
		return nil, IterStats{}, err
	}
	x, stats, err := bicgstab(a, b, x0, &opt)
	recordSolve("bicgstab", stats, err)
	return x, stats, err
}

func bicgstab(a *CSR, b, x0 []float64, o *IterOptions) ([]float64, IterStats, error) {
	prec, tol, maxIter := o.Prec, o.Tol, o.MaxIter
	n := a.Rows
	if a.Cols != n {
		return nil, IterStats{}, fmt.Errorf("linalg: BiCGSTAB requires a square matrix")
	}
	if len(b) != n {
		return nil, IterStats{}, fmt.Errorf("linalg: BiCGSTAB rhs length %d, want %d", len(b), n)
	}
	if prec == nil {
		prec = IdentityPrec{}
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]float64, n)
	ax := a.MulVec(x, nil)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	normB := Norm2(b)
	if normB == 0 {
		return x, IterStats{Converged: true}, nil
	}
	rhat := make([]float64, n)
	copy(rhat, r)
	var rho, alpha, omega float64 = 1, 1, 1
	v := make([]float64, n)
	p := make([]float64, n)
	phat := make([]float64, n)
	s := make([]float64, n)
	shat := make([]float64, n)
	t := make([]float64, n)
	var stats IterStats
	for it := 0; it < maxIter; it++ {
		stats.Iterations = it + 1
		rhoNew := Dot(rhat, r)
		if math.Abs(rhoNew) < 1e-300 {
			return x, stats, fmt.Errorf("linalg: BiCGSTAB breakdown (rho≈0) at iter %d", it)
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		prec.Apply(p, phat)
		a.MulVec(phat, v)
		alpha = rho / Dot(rhat, v)
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if res := Norm2(s) / normB; res < tol {
			Axpy(alpha, phat, x)
			stats.Residual = res
			stats.Converged = true
			if o.OnIteration != nil {
				o.OnIteration(it, res)
			}
			return x, stats, nil
		}
		prec.Apply(s, shat)
		a.MulVec(shat, t)
		tt := Dot(t, t)
		if tt == 0 {
			return x, stats, fmt.Errorf("linalg: BiCGSTAB breakdown (t=0) at iter %d", it)
		}
		omega = Dot(t, s) / tt
		Axpy(alpha, phat, x)
		Axpy(omega, shat, x)
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		res := Norm2(r) / normB
		stats.Residual = res
		if o.OnIteration != nil {
			o.OnIteration(it, res)
		}
		if res < tol {
			stats.Converged = true
			return x, stats, nil
		}
		if math.Abs(omega) < 1e-300 {
			return x, stats, fmt.Errorf("linalg: BiCGSTAB breakdown (omega≈0) at iter %d", it)
		}
		if o.Stop != nil && o.Stop() {
			return x, stats, fmt.Errorf("linalg: BiCGSTAB %w after %d iterations (residual %.3g)", ErrStopped, stats.Iterations, stats.Residual)
		}
	}
	return x, stats, fmt.Errorf("linalg: BiCGSTAB did not converge in %d iterations (residual %.3g)", maxIter, stats.Residual)
}
