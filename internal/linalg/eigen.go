package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi rotation method.  Eigenpairs are returned in
// ascending eigenvalue order; column j of the returned matrix is the
// eigenvector for eigenvalue j.  The input matrix is not modified.
//
// Jacobi is O(n³) per sweep but unconditionally stable and exact enough for
// the few-hundred-DOF modal problems aeropack solves; it also gives
// orthogonal vectors to machine precision, which the modal superposition
// code relies on.
func EigenSym(a *Dense, tol float64, maxSweeps int) ([]float64, *Dense, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a square matrix")
	}
	if !a.IsSymmetric(1e-8 * (1 + NormInf(a.Data))) {
		return nil, nil, fmt.Errorf("linalg: EigenSym requires a symmetric matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxSweeps <= 0 {
		maxSweeps = 100
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		scale := 0.0
		for i := 0; i < n; i++ {
			scale += w.At(i, i) * w.At(i, i)
		}
		if off <= tol*tol*(scale+off+1e-300) {
			return extractEigen(w, v)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation J(p,q,θ) on both sides of w.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("linalg: Jacobi eigensolver did not converge in %d sweeps", maxSweeps)
}

// extractEigen pulls the diagonal of w as eigenvalues and sorts eigenpairs
// ascending.
func extractEigen(w, v *Dense) ([]float64, *Dense, error) {
	n := w.Rows
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for newJ, oldJ := range order {
		sortedVals[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return sortedVals, sortedVecs, nil
}

// EigenGeneral solves the symmetric generalized eigenproblem
// K·x = λ·M·x with K symmetric and M symmetric positive definite — the
// structural-dynamics modal problem.  It reduces to a standard problem via
// the Cholesky factor of M and returns eigenvalues ascending with
// M-orthonormal eigenvectors as columns.
func EigenGeneral(k, m *Dense, tol float64, maxSweeps int) ([]float64, *Dense, error) {
	if k.Rows != k.Cols || m.Rows != m.Cols || k.Rows != m.Rows {
		return nil, nil, fmt.Errorf("linalg: EigenGeneral dimension mismatch")
	}
	n := k.Rows
	chol, err := FactorCholesky(m)
	if err != nil {
		return nil, nil, fmt.Errorf("linalg: mass matrix not SPD: %w", err)
	}
	l := chol.L()
	// C = L⁻¹·K·L⁻ᵀ in two triangular-solve passes.
	c := NewDense(n, n)
	// B = L⁻¹·K (solve L·B = K column-wise).
	b := NewDense(n, n)
	tmp := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			tmp[i] = k.At(i, j)
		}
		x := SolveLowerTri(l, tmp)
		for i := 0; i < n; i++ {
			b.Set(i, j, x[i])
		}
	}
	// C = B·L⁻ᵀ  ⇔  Cᵀ = L⁻¹·Bᵀ (solve L·Cᵀ = Bᵀ column-wise).
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			tmp[i] = b.At(j, i)
		}
		x := SolveLowerTri(l, tmp)
		for i := 0; i < n; i++ {
			c.Set(j, i, x[i])
		}
	}
	// Symmetrize to kill round-off asymmetry before Jacobi.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := 0.5 * (c.At(i, j) + c.At(j, i))
			c.Set(i, j, avg)
			c.Set(j, i, avg)
		}
	}
	vals, y, err := EigenSym(c, tol, maxSweeps)
	if err != nil {
		return nil, nil, err
	}
	// x = L⁻ᵀ·y per column.
	vecs := NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			tmp[i] = y.At(i, j)
		}
		x := SolveUpperTriT(l, tmp)
		for i := 0; i < n; i++ {
			vecs.Set(i, j, x[i])
		}
	}
	return vals, vecs, nil
}
