package linalg

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"aeropack/internal/obs"
)

// SolverSetup caches the reusable parts of iterative solves across the
// near-identical systems aeropack's workloads produce: a Fig. 10 sweep
// re-solves the same network topology at dozens of power points, a
// transient stepper refactors the same operator pattern every step, and
// benchmark or campaign loops re-solve bitwise-identical systems
// outright.  It mirrors the content-hash trick of the lint result cache
// (same inputs → cached output) at the linear-algebra layer:
//
//   - Preconditioner cache: keyed by (kind, structure hash, value hash).
//     Matrices sharing a sparsity pattern reuse the symbolic IC(0)
//     factorization; matrices identical in values reuse the finished
//     preconditioner.  Cached preconditioners are immutable once handed
//     out — a refresh never mutates an instance another goroutine may be
//     applying — so one setup can serve concurrent sweep workers.
//   - Result cache: keyed by the full solve content (method label,
//     matrix structure and values, right-hand side, warm-start vector,
//     tolerance).  A hit therefore returns a solution bitwise-identical
//     to the one re-running the deterministic solver would produce,
//     preserving aeropack's serial-vs-parallel identity guarantees.
//
// Both caches are bounded FIFO; eviction order is deterministic (no map
// iteration), keeping campaign runs reproducible.  All methods are safe
// for concurrent use.
type SolverSetup struct {
	mu      sync.Mutex
	syms    map[uint64]*icSymbolic // IC(0) symbolic patterns by structure hash
	symKeys []uint64
	precs   map[precKey]Preconditioner
	precOrd []precKey
	results map[SolveKey]*cachedSolve
	resOrd  []SolveKey
}

// setupMaxPrecs / setupMaxResults bound the FIFO caches; sweeps touch a
// handful of patterns and the result cache only pays off for exact
// repeats, so small bounds keep memory predictable.
const (
	setupMaxSyms    = 8
	setupMaxPrecs   = 16
	setupMaxResults = 32
)

type precKey struct {
	kind            string
	omega           uint64
	structH, valH   uint64
	structH2, valH2 uint64
}

// SolveKey identifies one exact solve content; obtain it from Cached and
// pass it back to Store.
type SolveKey struct{ h1, h2 uint64 }

type cachedSolve struct {
	x     []float64
	stats IterStats
}

// NewSolverSetup returns an empty setup cache.
func NewSolverSetup() *SolverSetup {
	return &SolverSetup{
		syms:    make(map[uint64]*icSymbolic),
		precs:   make(map[precKey]Preconditioner),
		results: make(map[SolveKey]*cachedSolve),
	}
}

// contentHash is a pair of independent 64-bit word mixers (splitmix-style
// finalisation), giving an effectively 128-bit content key: byte-wise
// FNV would walk the ~2.4 MB a big finite-volume solve hashes one byte
// at a time, this walks it one word at a time.
type contentHash struct{ a, b uint64 }

func newContentHash() contentHash {
	return contentHash{a: 0x9E3779B97F4A7C15, b: 0xC2B2AE3D27D4EB4F}
}

func (h *contentHash) word(w uint64) {
	h.a = (h.a ^ w) * 0xBF58476D1CE4E5B9
	h.a ^= h.a >> 29
	h.b = (h.b ^ bits.RotateLeft64(w, 31)) * 0x94D049BB133111EB
	h.b ^= h.b >> 31
}

func (h *contentHash) ints(xs []int) {
	h.word(uint64(len(xs)))
	for _, x := range xs {
		h.word(uint64(x))
	}
}

func (h *contentHash) floats(xs []float64) {
	h.word(uint64(len(xs)))
	for _, x := range xs {
		h.word(math.Float64bits(x))
	}
}

func (h *contentHash) str(s string) {
	h.word(uint64(len(s)))
	var w uint64
	var nb uint
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << nb
		if nb += 8; nb == 64 {
			h.word(w)
			w, nb = 0, 0
		}
	}
	if nb > 0 {
		h.word(w)
	}
}

// structHash digests the sparsity structure of a.
func structHash(a *CSR) contentHash {
	h := newContentHash()
	h.word(uint64(a.Rows))
	h.word(uint64(a.Cols))
	h.ints(a.RowPtr)
	h.ints(a.ColIdx)
	return h
}

// valHash digests the stored values of a.
func valHash(a *CSR) contentHash {
	h := newContentHash()
	h.floats(a.Val)
	return h
}

// PrecFor returns a preconditioner of the given kind ("jacobi", "ssor",
// "ic0"; "" or "identity" yields nil, the identity) for matrix a,
// reusing a cached instance when an identical-content matrix was seen
// before and the IC(0) symbolic pattern when only the values changed.
// omega is the SSOR relaxation factor (ignored by other kinds).  The
// returned preconditioner must be treated as immutable — never call
// Refresh on it.  An error (IC(0) breakdown surviving the whole shift
// ladder) leaves the caller free to degrade to a cheaper kind.
func (s *SolverSetup) PrecFor(kind string, a *CSR, omega float64) (Preconditioner, error) {
	switch kind {
	case "", "identity":
		return nil, nil
	case "jacobi", "ssor", "ic0":
	default:
		return nil, fmt.Errorf("linalg: unknown preconditioner kind %q", kind)
	}
	sh, vh := structHash(a), valHash(a)
	key := precKey{kind: kind, omega: math.Float64bits(omega),
		structH: sh.a, structH2: sh.b, valH: vh.a, valH2: vh.b}
	s.mu.Lock()
	if p, ok := s.precs[key]; ok {
		s.mu.Unlock()
		if r := obs.Default(); r != nil {
			r.Counter("linalg_setup_prec_reuse_total").Inc()
		}
		if rec := obs.CurrentRecorder(); rec != nil {
			rec.Record("cache", "prec_reuse", obs.Attr{Key: "kind", Value: kind})
		}
		return p, nil
	}
	var sym *icSymbolic
	if kind == "ic0" {
		sym = s.syms[sh.a]
	}
	s.mu.Unlock()

	// Build outside the lock: factorization may be expensive and must
	// never serialise concurrent sweep workers behind the mutex.
	var p Preconditioner
	switch kind {
	case "jacobi":
		p = NewJacobiPrec(a)
	case "ssor":
		p = NewSSORPrec(a, omega)
	case "ic0":
		if sym == nil || !sym.matches(a) {
			var err error
			if sym, err = icSymbolicFromCSR(a); err != nil {
				return nil, err
			}
		}
		ic, err := sym.factor(a)
		if err != nil {
			return nil, err
		}
		if ic.shift > 0 {
			if r := obs.Default(); r != nil {
				r.Counter("linalg_ic0_shifted_total").Inc()
			}
		}
		p = ic
		s.mu.Lock()
		if _, ok := s.syms[sh.a]; !ok {
			s.symKeys = append(s.symKeys, sh.a)
			s.syms[sh.a] = sym
			if len(s.symKeys) > setupMaxSyms {
				delete(s.syms, s.symKeys[0])
				s.symKeys = s.symKeys[1:]
			}
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	if _, ok := s.precs[key]; !ok {
		s.precOrd = append(s.precOrd, key)
		s.precs[key] = p
		if len(s.precOrd) > setupMaxPrecs {
			delete(s.precs, s.precOrd[0])
			s.precOrd = s.precOrd[1:]
		}
	} else {
		// A concurrent builder won the race; both instances were derived
		// from identical content, so either is correct — keep the stored
		// one for pointer-stable reuse.
		p = s.precs[key]
	}
	s.mu.Unlock()
	return p, nil
}

// Key digests one solve's full content: the solver/chain label (which
// must encode anything else that alters the iterate sequence, e.g. the
// preconditioner kind and relaxation factor), the matrix, right-hand
// side, warm-start vector and tolerance.  nil and zero-valued x0 hash
// differently, matching their different CG trajectories.
func (s *SolverSetup) Key(label string, a *CSR, b, x0 []float64, tol float64) SolveKey {
	h := newContentHash()
	h.str(label)
	h.word(uint64(a.Rows))
	h.word(uint64(a.Cols))
	h.ints(a.RowPtr)
	h.ints(a.ColIdx)
	h.floats(a.Val)
	h.floats(b)
	if x0 == nil {
		h.word(0)
	} else {
		h.word(1)
		h.floats(x0)
	}
	h.word(math.Float64bits(tol))
	return SolveKey{h1: h.a, h2: h.b}
}

// Cached returns the stored solution for key, if any.  The returned
// slice is a private copy — callers may mutate it freely.  A hit bumps
// linalg_setup_result_hits_total but records no solver iterations: the
// solver_iters metrics count work actually performed.
func (s *SolverSetup) Cached(key SolveKey) ([]float64, IterStats, bool) {
	s.mu.Lock()
	e, ok := s.results[key]
	s.mu.Unlock()
	if !ok {
		if r := obs.Default(); r != nil {
			r.Counter("linalg_setup_result_misses_total").Inc()
		}
		if rec := obs.CurrentRecorder(); rec != nil {
			rec.Record("cache", "result_miss")
		}
		return nil, IterStats{}, false
	}
	if r := obs.Default(); r != nil {
		r.Counter("linalg_setup_result_hits_total").Inc()
	}
	if rec := obs.CurrentRecorder(); rec != nil {
		rec.Record("cache", "result_hit")
	}
	out := make([]float64, len(e.x))
	copy(out, e.x)
	return out, e.stats, true
}

// Store records a converged solution under key.  The solution is copied;
// callers keep ownership of x.  Non-converged or failed solves must not
// be stored — a cached entry asserts "this exact system solves to this
// exact vector".
func (s *SolverSetup) Store(key SolveKey, x []float64, stats IterStats) {
	if !stats.Converged {
		return
	}
	cp := make([]float64, len(x))
	copy(cp, x)
	s.mu.Lock()
	if _, ok := s.results[key]; !ok {
		s.resOrd = append(s.resOrd, key)
		s.results[key] = &cachedSolve{x: cp, stats: stats}
		if len(s.resOrd) > setupMaxResults {
			delete(s.results, s.resOrd[0])
			s.resOrd = s.resOrd[1:]
		}
	}
	s.mu.Unlock()
}
