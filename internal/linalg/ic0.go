package linalg

import (
	"fmt"
	"math"
)

// ICPrec is an IC(0) incomplete-Cholesky preconditioner: A ≈ L·Lᵀ where
// L keeps exactly the sparsity of the lower triangle of A (diagonal
// included) and every fill-in entry the true factorization would create
// is dropped.  For the tree-like resistance networks and tightly-coupled
// finite-volume operators aeropack assembles, the dropped fill is small,
// so LLᵀ is close to a complete factorization and preconditioned CG
// converges in a handful of iterations where Jacobi needs dozens.
//
// Incomplete factorization of an SPD matrix can still break down (a
// pivot d ≤ 0 once fill is discarded — Kershaw's classic example).  The
// constructor then retries on the shifted matrix A + α·diag(A) with a
// growing ladder of shifts; Shift reports the α that succeeded.
//
// Apply is self-contained — the forward solve writes into z and the
// backward solve runs in place on z, so one ICPrec instance may be
// shared by concurrent solves without synchronisation (unlike the
// scratch-carrying SSOR preconditioner before it was made safe).
type ICPrec struct {
	sym   *icSymbolic
	val   []float64 // L values, row-major over sym pattern
	shift float64   // diagonal shift α used (0 for a clean factorization)
}

// icSymbolic is the reusable symbolic part of an IC(0) factorization:
// the lower-triangle pattern of A plus the mapping from L entries back
// into A's value array.  It is immutable after construction, so one
// instance can back many numeric factorizations (SolverSetup shares it
// across sweep points whose matrices have identical structure).
type icSymbolic struct {
	n       int
	rowPtr  []int
	colIdx  []int
	src     []int // index into a.Val feeding each L entry
	diagIdx []int // index into val of each row's diagonal (last in row)
}

// icShifts is the diagonal-shift ladder tried when the unshifted
// factorization breaks down.
var icShifts = []float64{0, 1e-3, 1e-2, 1e-1, 1, 10}

// NewICPrec builds an IC(0) preconditioner for the symmetric positive
// definite matrix a.  When the factorization breaks down it retries with
// progressively larger diagonal shifts; the error reports the final
// breakdown when even the largest shift fails (callers typically degrade
// to Jacobi — see robust.Chain).
func NewICPrec(a *CSR) (*ICPrec, error) {
	sym, err := icSymbolicFromCSR(a)
	if err != nil {
		return nil, err
	}
	return sym.factor(a)
}

// icSymbolicFromCSR extracts the lower-triangle pattern.  Every row must
// hold a diagonal entry — an SPD matrix always does, and a zero pivot
// could never be repaired by the multiplicative shift anyway.
func icSymbolicFromCSR(a *CSR) (*icSymbolic, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: IC(0) requires a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	s := &icSymbolic{n: n, rowPtr: make([]int, n+1), diagIdx: make([]int, n)}
	for i := 0; i < n; i++ {
		hasDiag := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j > i {
				break // columns are sorted within a row
			}
			s.colIdx = append(s.colIdx, j)
			s.src = append(s.src, k)
			if j == i {
				hasDiag = true
			}
		}
		if !hasDiag {
			return nil, fmt.Errorf("linalg: IC(0) row %d has no diagonal entry", i)
		}
		s.rowPtr[i+1] = len(s.colIdx)
		s.diagIdx[i] = s.rowPtr[i+1] - 1
	}
	return s, nil
}

// factor runs the numeric factorization against a, walking the shift
// ladder on breakdown.  The matrix must have the pattern the symbolic
// phase was built from (SolverSetup guarantees this by content hash;
// direct callers get it from NewICPrec).
func (s *icSymbolic) factor(a *CSR) (*ICPrec, error) {
	val := make([]float64, len(s.colIdx))
	var lastErr error
	for _, alpha := range icShifts {
		if err := s.factorShifted(a, alpha, val); err != nil {
			lastErr = err
			continue
		}
		return &ICPrec{sym: s, val: val, shift: alpha}, nil
	}
	return nil, fmt.Errorf("linalg: IC(0) breakdown persists through shift ladder: %w", lastErr)
}

// factorShifted computes L for A + alpha·diag(A) into val, returning an
// error on pivot breakdown (d ≤ 0 or non-finite).
func (s *icSymbolic) factorShifted(a *CSR, alpha float64, val []float64) error {
	for i := 0; i < s.n; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			j := s.colIdx[k]
			v := a.Val[s.src[k]]
			if j == i {
				v += alpha * v
			}
			// v -= Σ_t L[i,t]·L[j,t] over shared columns t < j: both row
			// segments are sorted, so a two-pointer merge visits each
			// stored entry once.
			pi, pj := s.rowPtr[i], s.rowPtr[j]
			for pi < k && pj < s.diagIdx[j] {
				ci, cj := s.colIdx[pi], s.colIdx[pj]
				switch {
				case ci == cj:
					v -= val[pi] * val[pj]
					pi++
					pj++
				case ci < cj:
					pi++
				default:
					pj++
				}
			}
			if j < i {
				val[k] = v / val[s.diagIdx[j]]
				continue
			}
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("linalg: IC(0) pivot %g at row %d (shift %g)", v, i, alpha)
			}
			val[k] = math.Sqrt(v)
		}
	}
	return nil
}

// Shift reports the diagonal shift α the factorization needed; 0 means
// the unshifted IC(0) factorization succeeded.
func (p *ICPrec) Shift() float64 { return p.shift }

// Apply computes z = (L·Lᵀ)⁻¹·r: a forward substitution into z followed
// by an in-place backward substitution.  No scratch state is touched, so
// concurrent Apply calls on a shared instance are safe.
func (p *ICPrec) Apply(r, z []float64) {
	s := p.sym
	// Forward: L·y = r, y accumulated directly in z.
	for i := 0; i < s.n; i++ {
		v := r[i]
		for k := s.rowPtr[i]; k < s.diagIdx[i]; k++ {
			v -= p.val[k] * z[s.colIdx[k]]
		}
		z[i] = v / p.val[s.diagIdx[i]]
	}
	// Backward: Lᵀ·z = y, in place, scattering each solved z_i back up
	// its column (stored as row i of L).
	for i := s.n - 1; i >= 0; i-- {
		v := z[i] / p.val[s.diagIdx[i]]
		z[i] = v
		for k := s.rowPtr[i]; k < s.diagIdx[i]; k++ {
			z[s.colIdx[k]] -= p.val[k] * v
		}
	}
}

// Refresh refactorizes in place from a matrix with the identical
// sparsity structure but (possibly) new values — the cheap path for
// transient steppers and Picard loops whose operator pattern never
// changes.  The caller must own the instance exclusively: a concurrent
// Apply during Refresh would read half-updated factors (SolverSetup
// instead builds immutable instances per value content).  On structure
// mismatch or unrecoverable breakdown the receiver is left unusable and
// the error tells the caller to rebuild.
func (p *ICPrec) Refresh(a *CSR) error {
	if !p.sym.matches(a) {
		return fmt.Errorf("linalg: IC(0) refresh with different sparsity structure")
	}
	var lastErr error
	for _, alpha := range icShifts {
		if err := p.sym.factorShifted(a, alpha, p.val); err != nil {
			lastErr = err
			continue
		}
		p.shift = alpha
		return nil
	}
	return fmt.Errorf("linalg: IC(0) refresh breakdown persists through shift ladder: %w", lastErr)
}

// matches reports whether a has exactly the lower-triangle pattern this
// symbolic factorization was built from.
func (s *icSymbolic) matches(a *CSR) bool {
	if a.Rows != s.n || a.Cols != s.n {
		return false
	}
	k := 0
	for i := 0; i < s.n; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			if j > i {
				break
			}
			if k >= s.rowPtr[i+1] || s.colIdx[k] != j || s.src[k] != q {
				return false
			}
			k++
		}
		if k != s.rowPtr[i+1] {
			return false
		}
	}
	return true
}
