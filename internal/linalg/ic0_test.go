package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// denseSPDCSR builds a seeded random dense SPD matrix (A = Bᵀ·B + n·I)
// stored sparsely, so its lower-triangle pattern is full and IC(0)
// coincides with the complete Cholesky factorization.
func denseSPDCSR(seed int64, n int) *CSR {
	rng := rand.New(rand.NewSource(seed))
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = 2*rng.Float64() - 1
		}
	}
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.0
			for k := 0; k < n; k++ {
				v += b[k][i] * b[k][j]
			}
			if i == j {
				v += float64(n)
			}
			coo.Add(i, j, v)
		}
	}
	return coo.ToCSR()
}

// relResidual returns ‖b − A·x‖/‖b‖.
func relResidual(a *CSR, x, b []float64) float64 {
	ax := a.MulVec(x, nil)
	r := make([]float64, len(b))
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	return Norm2(r) / Norm2(b)
}

// With a full lower-triangle pattern no fill is dropped, so IC(0) IS the
// Cholesky factorization and Apply must invert A to working precision —
// the dense-reference property of the preconditioner.
func TestICPrecExactOnDensePattern(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := denseSPDCSR(int64(n), n)
		p, err := NewICPrec(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.Shift() != 0 {
			t.Fatalf("n=%d: dense SPD needed shift %g", n, p.Shift())
		}
		rng := rand.New(rand.NewSource(int64(100 + n)))
		r := make([]float64, n)
		for i := range r {
			r[i] = 2*rng.Float64() - 1
		}
		z := make([]float64, n)
		p.Apply(r, z)
		if res := relResidual(a, z, r); res > 1e-10 {
			t.Errorf("n=%d: complete-factor Apply residual %g", n, res)
		}
	}
}

// Tridiagonal (tree-structured) matrices also factor without dropped
// fill — the case lumped thermal networks are close to.
func TestICPrecExactOnTridiagonal(t *testing.T) {
	n := 40
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2.5)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -1)
		}
	}
	a := coo.ToCSR()
	p, err := NewICPrec(a)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	z := make([]float64, n)
	p.Apply(r, z)
	if res := relResidual(a, z, r); res > 1e-12 {
		t.Errorf("tridiagonal Apply residual %g", res)
	}
}

// On general sparse SPD systems the preconditioned solve must agree with
// the dense reference solution.
func TestICPrecCGMatchesDenseReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		a, b := randomSPD(seed, 60, 0.08)
		p, err := NewICPrec(a)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		x, stats, err := CG(a, b, nil, p, 1e-12, 500)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := SolveDense(a.ToDense(), b)
		if err != nil {
			t.Fatalf("seed %d dense: %v", seed, err)
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-8*(1+math.Abs(ref[i])) {
				t.Fatalf("seed %d: x[%d] = %g, dense %g (in %d iters)", seed, i, x[i], ref[i], stats.Iterations)
			}
		}
	}
}

// kershawCSR is the classic 4×4 SPD matrix (leading minors 3, 5, 3, 1)
// whose incomplete factorization breaks down: the dropped (4,2) fill
// leaves pivot 4 at 3 − 4/3 − 20/3 < 0.
func kershawCSR() *CSR {
	rows := [4][4]float64{
		{3, -2, 0, 2},
		{-2, 3, -2, 0},
		{0, -2, 3, -2},
		{2, 0, -2, 3},
	}
	coo := NewCOO(4, 4)
	for i := range rows {
		for j, v := range rows[i] {
			if v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}

// Breakdown on an SPD matrix must engage the shifted-diagonal ladder and
// still yield a working preconditioner.
func TestICPrecShiftFallback(t *testing.T) {
	a := kershawCSR()
	p, err := NewICPrec(a)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shift() == 0 {
		t.Fatal("Kershaw matrix factored without a shift; breakdown case lost")
	}
	b := []float64{1, 2, 3, 4}
	x, _, err := CG(a, b, nil, p, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveDense(a.ToDense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-ref[i]) > 1e-8*(1+math.Abs(ref[i])) {
			t.Fatalf("x[%d] = %g, dense %g", i, x[i], ref[i])
		}
	}
}

// A structurally missing or non-positive diagonal cannot be repaired by
// the multiplicative shift; the constructor must say so.
func TestICPrecBreakdownErrors(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	// (1,1) diagonal structurally absent.
	if _, err := NewICPrec(coo.ToCSR()); err == nil {
		t.Error("missing diagonal accepted")
	}
	coo2 := NewCOO(2, 2)
	coo2.Add(0, 0, -1)
	coo2.Add(1, 1, 1)
	if _, err := NewICPrec(coo2.ToCSR()); err == nil {
		t.Error("negative diagonal accepted")
	}
	coo3 := NewCOO(2, 3)
	coo3.Add(0, 0, 1)
	if _, err := NewICPrec(coo3.ToCSR()); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

// The preconditioned CG trajectory must be bitwise-identical at any
// worker count — ICPrec.Apply is serial and MulVec guarantees bitwise
// stability, so the whole solve inherits the repo's serial-vs-parallel
// identity.
func TestICPrecBitwiseAcrossWorkers(t *testing.T) {
	a, b := randomSPD(11, 120, 0.05)
	p, err := NewICPrec(a)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(workers int) ([]float64, IterStats) {
		a.SetWorkers(workers)
		defer a.SetWorkers(1)
		x, stats, err := CG(a, b, nil, p, 1e-11, 500)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return x, stats
	}
	x1, s1 := solve(1)
	for _, w := range []int{2, 4, 7} {
		xw, sw := solve(w)
		if sw.Iterations != s1.Iterations {
			t.Fatalf("workers=%d: %d iterations, serial %d", w, sw.Iterations, s1.Iterations)
		}
		for i := range x1 {
			if x1[i] != xw[i] {
				t.Fatalf("workers=%d: x[%d] = %v, serial %v", w, i, xw[i], x1[i])
			}
		}
	}
}

// anisotropicFV assembles a 2D five-point finite-volume conduction
// operator with a 1000:1 conductivity anisotropy and a Dirichlet-style
// pinned boundary row — the stiff operator family the E5 workloads
// assemble, where unpreconditioned CG grinds.
func anisotropicFV(nx, ny int) (*CSR, []float64) {
	n := nx * ny
	idx := func(i, j int) int { return j*nx + i }
	coo := NewCOO(n, n)
	b := make([]float64, n)
	kx, ky := 1.0, 1000.0
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			at := idx(i, j)
			if i+1 < nx {
				nb := idx(i+1, j)
				coo.Add(at, at, kx)
				coo.Add(nb, nb, kx)
				coo.Add(at, nb, -kx)
				coo.Add(nb, at, -kx)
			}
			if j+1 < ny {
				nb := idx(i, j+1)
				coo.Add(at, at, ky)
				coo.Add(nb, nb, ky)
				coo.Add(at, nb, -ky)
				coo.Add(nb, at, -ky)
			}
		}
	}
	// Convective tie to ambient along one edge plus a heat source patch.
	for i := 0; i < nx; i++ {
		coo.Add(idx(i, 0), idx(i, 0), 0.5)
	}
	for i := nx / 4; i < nx/2; i++ {
		b[idx(i, ny-1)] = 1
	}
	return coo.ToCSR(), b
}

// The headline property: on an E5-sized anisotropic FV operator, IC(0)
// must save at least 10× the CG iterations of the unpreconditioned
// solve — the measured basis for the BENCH_solver.json trajectory.
func TestICPrecIterationBudget(t *testing.T) {
	a, b := anisotropicFV(40, 40)
	_, plain, err := CG(a, b, nil, nil, 1e-9, 20000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewICPrec(a)
	if err != nil {
		t.Fatal(err)
	}
	_, ic, err := CG(a, b, nil, p, 1e-9, 20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unpreconditioned %d iterations, IC(0) %d", plain.Iterations, ic.Iterations)
	if ic.Iterations*10 > plain.Iterations {
		t.Fatalf("IC(0) took %d iterations, unpreconditioned %d — less than the pinned 10× budget", ic.Iterations, plain.Iterations)
	}
}

// Refresh on same-structure matrices must reproduce a from-scratch
// factorization bitwise, and reject a different pattern.
func TestICPrecRefresh(t *testing.T) {
	a, _ := randomSPD(5, 50, 0.08)
	p, err := NewICPrec(a)
	if err != nil {
		t.Fatal(err)
	}
	// Same structure, scaled values.
	coo := NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			coo.Add(i, a.ColIdx[k], 2*a.Val[k])
		}
	}
	a2 := coo.ToCSR()
	if err := p.Refresh(a2); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewICPrec(a2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.val {
		if p.val[i] != fresh.val[i] {
			t.Fatalf("refreshed val[%d] = %v, fresh %v", i, p.val[i], fresh.val[i])
		}
	}
	b, _ := randomSPD(6, 49, 0.08)
	if err := p.Refresh(b); err == nil {
		t.Error("refresh with different structure accepted")
	}
}
