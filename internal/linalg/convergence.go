package linalg

import (
	"fmt"
	"strings"
)

// IterPoint is one sample of a convergence history.
type IterPoint struct {
	Iteration int
	Residual  float64
}

// ConvergenceLog is a fixed-capacity ring buffer of per-iteration
// residuals.  Its Record method matches IterOptions.OnIteration, so a
// failed or slow solve can be replayed:
//
//	log := linalg.NewConvergenceLog(256)
//	x, stats, err := linalg.CGOpt(a, b, nil, &linalg.IterOptions{
//		Tol: 1e-9, MaxIter: 5000, OnIteration: log.Record,
//	})
//	if err != nil { fmt.Print(log.String()) }
//
// When more iterations arrive than the buffer holds, the oldest samples
// are overwritten — the tail of a long stagnating solve is what matters
// for diagnosis.  A ConvergenceLog is not safe for concurrent use; give
// each solve its own.
type ConvergenceLog struct {
	pts   []IterPoint
	next  int
	total int
}

// NewConvergenceLog returns a ring buffer holding the last capacity
// samples (minimum 1).
func NewConvergenceLog(capacity int) *ConvergenceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &ConvergenceLog{pts: make([]IterPoint, 0, capacity)}
}

// Record appends one sample, overwriting the oldest once full.  Its
// signature matches IterOptions.OnIteration.
func (l *ConvergenceLog) Record(it int, residual float64) {
	l.total++
	if len(l.pts) < cap(l.pts) {
		l.pts = append(l.pts, IterPoint{Iteration: it, Residual: residual})
		return
	}
	l.pts[l.next] = IterPoint{Iteration: it, Residual: residual}
	l.next = (l.next + 1) % cap(l.pts)
}

// Total returns how many samples were recorded overall, including any
// that have been overwritten.
func (l *ConvergenceLog) Total() int { return l.total }

// Points returns the retained samples in chronological order.
func (l *ConvergenceLog) Points() []IterPoint {
	out := make([]IterPoint, 0, len(l.pts))
	out = append(out, l.pts[l.next:]...)
	out = append(out, l.pts[:l.next]...)
	return out
}

// String renders the retained history as "iteration residual" rows,
// ready for plotting or a bug report.
func (l *ConvergenceLog) String() string {
	var b strings.Builder
	if dropped := l.total - len(l.pts); dropped > 0 {
		fmt.Fprintf(&b, "# %d earlier samples overwritten\n", dropped)
	}
	for _, p := range l.Points() {
		fmt.Fprintf(&b, "%6d  %.6e\n", p.Iteration, p.Residual)
	}
	return b.String()
}
