package linalg

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix builder.  Duplicate entries are
// summed when converting to CSR, which is exactly the accumulation
// behaviour finite-volume and finite-element assembly need.
type COO struct {
	Rows, Cols int
	ri, ci     []int
	v          []float64
}

// NewCOO returns an empty builder for a Rows×Cols matrix.
func NewCOO(rows, cols int) *COO {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid COO dimensions %d×%d", rows, cols))
	}
	return &COO{Rows: rows, Cols: cols}
}

// Add accumulates v at (i,j).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("linalg: COO index (%d,%d) out of range %d×%d", i, j, c.Rows, c.Cols))
	}
	if v == 0 {
		return
	}
	c.ri = append(c.ri, i)
	c.ci = append(c.ci, j)
	c.v = append(c.v, v)
}

// NNZ returns the number of stored (pre-merge) entries.
func (c *COO) NNZ() int { return len(c.v) }

// ToCSR converts the builder to compressed-sparse-row form, merging
// duplicates by summation and dropping exact zeros produced by
// cancellation.
func (c *COO) ToCSR() *CSR {
	n := len(c.v)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if c.ri[ia] != c.ri[ib] {
			return c.ri[ia] < c.ri[ib]
		}
		return c.ci[ia] < c.ci[ib]
	})
	csr := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int, c.Rows+1)}
	lastR, lastC := -1, -1
	for _, idx := range order {
		r, col, v := c.ri[idx], c.ci[idx], c.v[idx]
		if r == lastR && col == lastC {
			csr.Val[len(csr.Val)-1] += v
			continue
		}
		csr.ColIdx = append(csr.ColIdx, col)
		csr.Val = append(csr.Val, v)
		csr.RowPtr[r+1]++
		lastR, lastC = r, col
	}
	for i := 0; i < c.Rows; i++ {
		csr.RowPtr[i+1] += csr.RowPtr[i]
	}
	return csr
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = M·x, reusing y if it has the right length.
func (m *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: dimension mismatch in CSR MulVec")
	}
	if len(y) != m.Rows {
		y = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
	return y
}

// At returns element (i,j) with a per-row binary search; O(log nnz_row).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := sort.SearchInts(m.ColIdx[lo:hi], j) + lo
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// Diag extracts the main diagonal.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// IsSymmetric reports whether the matrix is structurally and numerically
// symmetric to tolerance tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if d := m.Val[k] - m.At(j, i); d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}

// ToDense expands the matrix; for tests and small eigenproblems only.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}
