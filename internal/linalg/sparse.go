package linalg

import (
	"fmt"
	"sort"

	"aeropack/internal/parallel"
)

// COO is a coordinate-format sparse matrix builder.  Duplicate entries are
// summed when converting to CSR, which is exactly the accumulation
// behaviour finite-volume and finite-element assembly need.
type COO struct {
	Rows, Cols int
	ri, ci     []int
	v          []float64
}

// NewCOO returns an empty builder for a Rows×Cols matrix.
func NewCOO(rows, cols int) *COO {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid COO dimensions %d×%d", rows, cols))
	}
	return &COO{Rows: rows, Cols: cols}
}

// Add accumulates v at (i,j).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("linalg: COO index (%d,%d) out of range %d×%d", i, j, c.Rows, c.Cols))
	}
	if v == 0 {
		return
	}
	c.ri = append(c.ri, i)
	c.ci = append(c.ci, j)
	c.v = append(c.v, v)
}

// NNZ returns the number of stored (pre-merge) entries.
func (c *COO) NNZ() int { return len(c.v) }

// AppendAll appends every stored triplet of o to c in o's insertion
// order — the merge step for sharded parallel assembly, where each
// worker accumulates into a private builder and the shards are
// concatenated in shard order to reproduce the serial insertion
// sequence exactly.  Dimensions must match.
func (c *COO) AppendAll(o *COO) {
	if o.Rows != c.Rows || o.Cols != c.Cols {
		panic(fmt.Sprintf("linalg: COO AppendAll dimension mismatch %d×%d vs %d×%d",
			c.Rows, c.Cols, o.Rows, o.Cols))
	}
	c.ri = append(c.ri, o.ri...)
	c.ci = append(c.ci, o.ci...)
	c.v = append(c.v, o.v...)
}

// ToCSR converts the builder to compressed-sparse-row form, merging
// duplicates by summation and dropping exact zeros produced by
// cancellation, so assembly can never leave explicit zeros in the
// sparsity pattern.
func (c *COO) ToCSR() *CSR {
	n := len(c.v)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if c.ri[ia] != c.ri[ib] {
			return c.ri[ia] < c.ri[ib]
		}
		return c.ci[ia] < c.ci[ib]
	})
	csr := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int, c.Rows+1)}
	rows := make([]int, 0, n)
	lastR, lastC := -1, -1
	for _, idx := range order {
		r, col, v := c.ri[idx], c.ci[idx], c.v[idx]
		if r == lastR && col == lastC {
			csr.Val[len(csr.Val)-1] += v
			continue
		}
		csr.ColIdx = append(csr.ColIdx, col)
		csr.Val = append(csr.Val, v)
		rows = append(rows, r)
		lastR, lastC = r, col
	}
	// Compaction pass: duplicates that summed to exactly zero are
	// structural noise (Add already refuses literal zeros), so the test
	// below is an exact cancellation check, not a tolerance question.
	keep := 0
	for i, v := range csr.Val {
		if v == 0 { // exact cancellation check; zero compares are floatcmp-exempt
			continue
		}
		csr.Val[keep], csr.ColIdx[keep] = v, csr.ColIdx[i]
		csr.RowPtr[rows[i]+1]++
		keep++
	}
	csr.Val, csr.ColIdx = csr.Val[:keep], csr.ColIdx[:keep]
	for i := 0; i < c.Rows; i++ {
		csr.RowPtr[i+1] += csr.RowPtr[i]
	}
	return csr
}

// CSR is a compressed-sparse-row matrix.  Column indices are strictly
// increasing within each row (ToCSR guarantees this; hand-built
// matrices must preserve it).
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64

	// workers is the MulVec parallelism knob set via SetWorkers; 0 or 1
	// keeps the serial path.
	workers int
}

// MulVecParallelNNZ is the stored-entry count above which MulVec uses
// the row-parallel path once SetWorkers has enabled it; below it the
// goroutine fan-out costs more than the product.
const MulVecParallelNNZ = 1 << 14

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// SetWorkers sets the worker budget MulVec may spend on row-parallel
// products when the matrix holds at least MulVecParallelNNZ entries;
// n <= 1 restores the serial path and n <= 0 disables parallelism
// outright.  Rows are partitioned into contiguous blocks and each row's
// accumulation order is unchanged, so the parallel product is
// bitwise-identical to the serial one.  Set the knob before sharing the
// matrix between goroutines — it is not synchronised.
func (m *CSR) SetWorkers(n int) { m.workers = n }

// MulVec computes y = M·x, reusing y if it has the right length.
//
// Aliasing contract: y may be the identical slice as x (the product is
// then formed in a scratch buffer and copied back, so m.MulVec(v, v)
// yields the correct product); partially overlapping slices that share
// memory without sharing the first element are not detected and produce
// garbage.
func (m *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: dimension mismatch in CSR MulVec")
	}
	if len(y) != m.Rows {
		y = make([]float64, m.Rows)
	} else if len(y) > 0 && len(x) > 0 && &y[0] == &x[0] {
		// y aliases x: rows would read already-overwritten values, so
		// compute into a fresh buffer first.
		tmp := make([]float64, m.Rows)
		m.mulVecInto(x, tmp)
		copy(y, tmp)
		return y
	}
	m.mulVecInto(x, y)
	return y
}

// mulVecInto computes y = M·x into a non-aliasing y of length Rows.
//
//lint:hot
func (m *CSR) mulVecInto(x, y []float64) {
	if w := m.workers; w > 1 && m.NNZ() >= MulVecParallelNNZ {
		parallel.Blocks(m.Rows, w, func(_, lo, hi int) {
			m.mulRows(x, y, lo, hi)
		})
		return
	}
	m.mulRows(x, y, 0, m.Rows)
}

// mulRows computes the row range [lo,hi) of y = M·x.
//
//lint:hot
func (m *CSR) mulRows(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// At returns element (i,j) with a per-row binary search; O(log nnz_row).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := sort.SearchInts(m.ColIdx[lo:hi], j) + lo
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// Diag extracts the main diagonal with a single ordered row walk:
// column indices are sorted within each row, so scanning each row until
// the column passes i costs O(nnz) overall — the per-element binary
// search it replaces made Jacobi/SSOR preconditioner setup O(n·log nnz).
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if j := m.ColIdx[k]; j == i {
				d[i] = m.Val[k]
				break
			} else if j > i {
				break
			}
		}
	}
	return d
}

// IsSymmetric reports whether the matrix is structurally and numerically
// symmetric to tolerance tol.  It walks all rows once with a monotone
// cursor per row: as the outer row i advances, the mirror lookups into
// any row j arrive in increasing column order, so each cursor only ever
// moves forward and the whole check is O(nnz) instead of O(nnz·log nnz).
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	cur := make([]int, m.Rows)
	copy(cur, m.RowPtr[:m.Rows])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			for cur[j] < m.RowPtr[j+1] && m.ColIdx[cur[j]] < i {
				cur[j]++
			}
			mirror := 0.0
			if cur[j] < m.RowPtr[j+1] && m.ColIdx[cur[j]] == i {
				mirror = m.Val[cur[j]]
			}
			if d := m.Val[k] - mirror; d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}

// ToDense expands the matrix; for tests and small eigenproblems only.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}
