package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func denseFrom(rows, cols int, vals ...float64) *Dense {
	m := NewDense(rows, cols)
	copy(m.Data, vals)
	return m
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Errorf("At = %v", m.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Error("Clone aliases original")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 7 {
		t.Error("Transpose broken")
	}
}

func TestDenseMulVec(t *testing.T) {
	m := denseFrom(2, 2, 1, 2, 3, 4)
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestDenseMul(t *testing.T) {
	a := denseFrom(2, 2, 1, 2, 3, 4)
	b := denseFrom(2, 2, 5, 6, 7, 8)
	c := a.Mul(b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("Mul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestLUSolve(t *testing.T) {
	a := denseFrom(3, 3,
		2, 1, 1,
		1, 3, 2,
		1, 0, 0)
	b := []float64{4, 5, 6}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	ax := a.MulVec(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-10 {
			t.Errorf("residual at %d: %v vs %v", i, ax[i], b[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := denseFrom(2, 2, 1, 2, 2, 4)
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestLUDet(t *testing.T) {
	a := denseFrom(2, 2, 3, 0, 0, 4)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-12) > 1e-12 {
		t.Errorf("Det = %v, want 12", f.Det())
	}
	// Row swap flips sign bookkeeping but determinant stays correct.
	b := denseFrom(2, 2, 0, 1, 1, 0)
	f2, err := FactorLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f2.Det()+1) > 1e-12 {
		t.Errorf("Det = %v, want -1", f2.Det())
	}
}

func TestLUSolveRandomProperty(t *testing.T) {
	// Random diagonally dominant systems: solve then verify residual.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				sum += math.Abs(v)
			}
			a.Add(i, i, sum+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d: residual %v", trial, ax[i]-b[i])
			}
		}
	}
}

func TestCholesky(t *testing.T) {
	// SPD matrix.
	a := denseFrom(3, 3,
		4, 2, 0,
		2, 5, 1,
		0, 1, 3)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reproduce A.
	l := c.L()
	llt := l.Mul(l.Transpose())
	for i := range a.Data {
		if math.Abs(llt.Data[i]-a.Data[i]) > 1e-12 {
			t.Errorf("LLᵀ[%d] = %v, want %v", i, llt.Data[i], a.Data[i])
		}
	}
	b := []float64{1, 2, 3}
	x := c.Solve(b)
	ax := a.MulVec(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-10 {
			t.Errorf("Cholesky solve residual %v", ax[i]-b[i])
		}
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := denseFrom(2, 2, 1, 2, 2, 1) // indefinite
	if _, err := FactorCholesky(a); err == nil {
		t.Fatal("expected not-SPD error")
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Error("Norm2 broken")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Error("NormInf broken")
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[2] != 7 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[2] != 3.5 {
		t.Errorf("Scale = %v", y)
	}
}

func TestCOOToCSRMergesDuplicates(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2)
	c.Add(1, 1, 5)
	c.Add(0, 1, 3)
	c.Add(1, 0, 0) // exact zero dropped at Add
	m := c.ToCSR()
	if m.At(0, 0) != 3 {
		t.Errorf("merged (0,0) = %v, want 3", m.At(0, 0))
	}
	if m.At(0, 1) != 3 || m.At(1, 1) != 5 || m.At(1, 0) != 0 {
		t.Error("CSR values wrong")
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		coo := NewCOO(n, n)
		d := NewDense(n, n)
		for k := 0; k < n*3; k++ {
			i, j := r.Intn(n), r.Intn(n)
			v := r.NormFloat64()
			coo.Add(i, j, v)
			d.Add(i, j, v)
		}
		csr := coo.ToCSR()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := csr.MulVec(x, nil)
		y2 := d.MulVec(x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSRDiagAndSymmetric(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 2)
	c.Add(1, 1, 3)
	c.Add(2, 2, 4)
	c.Add(0, 1, -1)
	c.Add(1, 0, -1)
	m := c.ToCSR()
	d := m.Diag()
	if d[0] != 2 || d[1] != 3 || d[2] != 4 {
		t.Errorf("Diag = %v", d)
	}
	if !m.IsSymmetric(1e-14) {
		t.Error("should be symmetric")
	}
	c.Add(0, 2, 9)
	if c.ToCSR().IsSymmetric(1e-14) {
		t.Error("should not be symmetric")
	}
}

// laplacian1D builds the standard SPD tridiagonal system.
func laplacian1D(n int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

func TestCGLaplacian(t *testing.T) {
	n := 100
	a := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	for _, prec := range []Preconditioner{nil, NewJacobiPrec(a), NewSSORPrec(a, 1.2)} {
		x, stats, err := CG(a, b, nil, prec, 1e-10, 1000)
		if err != nil {
			t.Fatalf("prec %T: %v", prec, err)
		}
		if !stats.Converged {
			t.Fatalf("prec %T: not converged", prec)
		}
		ax := a.MulVec(x, nil)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-7 {
				t.Fatalf("prec %T: residual %v at %d", prec, ax[i]-b[i], i)
			}
		}
	}
}

func TestSSORConvergesFaster(t *testing.T) {
	n := 400
	a := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 7)
	}
	_, plain, err := CG(a, b, nil, nil, 1e-8, 5000)
	if err != nil {
		t.Fatal(err)
	}
	_, ssor, err := CG(a, b, nil, NewSSORPrec(a, 1.5), 1e-8, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if ssor.Iterations >= plain.Iterations {
		t.Errorf("SSOR iterations %d should beat plain %d", ssor.Iterations, plain.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian1D(5)
	x, stats, err := CG(a, make([]float64, 5), nil, nil, 1e-10, 10)
	if err != nil || !stats.Converged {
		t.Fatal("zero RHS should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Error("zero RHS should give zero solution")
		}
	}
}

func TestCGNotSPD(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, -1)
	c.Add(1, 1, -1)
	a := c.ToCSR()
	if _, _, err := CG(a, []float64{1, 1}, nil, nil, 1e-10, 10); err == nil {
		t.Fatal("expected breakdown on negative definite matrix")
	}
}

func TestBiCGSTABUnsymmetric(t *testing.T) {
	// Convection-diffusion-like unsymmetric tridiagonal system.
	n := 80
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.Add(i, i-1, -2.5)
		}
		if i < n-1 {
			c.Add(i, i+1, -0.5)
		}
	}
	a := c.ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x, stats, err := BiCGSTAB(a, b, nil, NewJacobiPrec(a), 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatal("not converged")
	}
	ax := a.MulVec(x, nil)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-7 {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := denseFrom(3, 3,
		3, 0, 0,
		0, 1, 0,
		0, 0, 2)
	vals, vecs, err := EigenSym(a, 1e-12, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
	// Eigenvector for λ=1 is e₁ (up to sign).
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-12 {
		t.Error("eigenvector wrong")
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := denseFrom(2, 2, 2, 1, 1, 2)
	vals, vecs, err := EigenSym(a, 1e-14, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Errorf("eigenvalues = %v", vals)
	}
	// Check A·v = λ·v for both pairs.
	for j := 0; j < 2; j++ {
		v := []float64{vecs.At(0, j), vecs.At(1, j)}
		av := a.MulVec(v)
		for i := range v {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-12 {
				t.Errorf("pair %d residual", j)
			}
		}
	}
}

func TestEigenSymRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a, 1e-12, 100)
		if err != nil {
			t.Fatal(err)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatal("eigenvalues not sorted")
			}
		}
		// Trace preserved.
		tr, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
			sum += vals[i]
		}
		if math.Abs(tr-sum) > 1e-8*(1+math.Abs(tr)) {
			t.Fatalf("trace %v vs eigenvalue sum %v", tr, sum)
		}
		// Orthonormal vectors.
		for j := 0; j < n; j++ {
			vj := make([]float64, n)
			for i := 0; i < n; i++ {
				vj[i] = vecs.At(i, j)
			}
			if math.Abs(Norm2(vj)-1) > 1e-8 {
				t.Fatal("eigenvector not unit norm")
			}
		}
	}
}

func TestEigenSymNotSymmetric(t *testing.T) {
	a := denseFrom(2, 2, 1, 2, 3, 4)
	if _, _, err := EigenSym(a, 1e-12, 50); err == nil {
		t.Fatal("expected symmetry error")
	}
}

func TestEigenGeneralSDOF(t *testing.T) {
	// Two uncoupled oscillators: k=[4,9], m=[1,1] → λ = 4, 9.
	k := denseFrom(2, 2, 4, 0, 0, 9)
	m := denseFrom(2, 2, 1, 0, 0, 1)
	vals, _, err := EigenGeneral(k, m, 1e-14, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-4) > 1e-10 || math.Abs(vals[1]-9) > 1e-10 {
		t.Errorf("eigenvalues = %v", vals)
	}
}

func TestEigenGeneralMassScaling(t *testing.T) {
	// k=8, m=2 → ω² = 4.
	k := denseFrom(1, 1, 8)
	m := denseFrom(1, 1, 2)
	vals, vecs, err := EigenGeneral(k, m, 1e-14, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-4) > 1e-12 {
		t.Errorf("λ = %v, want 4", vals[0])
	}
	// M-orthonormality: vᵀMv = 1 → v = 1/√2.
	if math.Abs(math.Abs(vecs.At(0, 0))-1/math.Sqrt2) > 1e-12 {
		t.Errorf("vector = %v", vecs.At(0, 0))
	}
}

func TestEigenGeneralCoupled(t *testing.T) {
	// Classic 2-mass chain: m=1 each, springs k-k-k fixed-fixed:
	// K = [[2k,-k],[-k,2k]], eigenvalues k and 3k (k=1).
	k := denseFrom(2, 2, 2, -1, -1, 2)
	m := denseFrom(2, 2, 1, 0, 0, 1)
	vals, vecs, err := EigenGeneral(k, m, 1e-14, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Errorf("eigenvalues = %v", vals)
	}
	// Verify K·v = λ·M·v.
	for j := 0; j < 2; j++ {
		v := []float64{vecs.At(0, j), vecs.At(1, j)}
		kv := k.MulVec(v)
		mv := m.MulVec(v)
		for i := range v {
			if math.Abs(kv[i]-vals[j]*mv[i]) > 1e-10 {
				t.Errorf("generalized residual pair %d", j)
			}
		}
	}
}

func TestEigenGeneralNotSPDMass(t *testing.T) {
	k := denseFrom(1, 1, 1)
	m := denseFrom(1, 1, -1)
	if _, _, err := EigenGeneral(k, m, 1e-12, 50); err == nil {
		t.Fatal("expected SPD mass error")
	}
}
