package linalg

import (
	"sync"
	"testing"
)

// Concurrent Apply on one shared SSORPrec must be race-free and give
// each caller a correct result.  Before the scratch buffer became
// per-call claimable, two sweep workers sharing a preconditioner wrote
// interleaved garbage into one tmp slice — this test (under the -race
// run in verify.sh) is the regression pin.
func TestSSORPrecConcurrentApply(t *testing.T) {
	a, _ := randomSPD(7, 80, 0.08)
	p := NewSSORPrec(a, 1.2)
	n := a.Rows
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%11) - 5
	}
	want := make([]float64, n)
	p.Apply(r, want)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			z := make([]float64, n)
			for it := 0; it < 50; it++ {
				p.Apply(r, z)
				for i := range z {
					if z[i] != want[i] {
						t.Errorf("concurrent Apply diverged at %d: %v != %v", i, z[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// Refresh must rebind same-structure values bitwise-identically to a
// fresh construction, without allocating (Jacobi), and reject dimension
// mismatches — the contract the transient stepper's hoisted
// preconditioner relies on.
func TestJacobiPrecRefresh(t *testing.T) {
	a, _ := randomSPD(8, 60, 0.1)
	p := NewJacobiPrec(a)
	a2 := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: a.RowPtr, ColIdx: a.ColIdx, Val: make([]float64, len(a.Val))}
	for i := range a.Val {
		a2.Val[i] = 3 * a.Val[i]
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := p.Refresh(a2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("JacobiPrec.Refresh allocates %v times per call, want 0", allocs)
	}
	fresh := NewJacobiPrec(a2)
	r := make([]float64, a.Rows)
	for i := range r {
		r[i] = float64(i) - 30
	}
	zp := make([]float64, a.Rows)
	zf := make([]float64, a.Rows)
	p.Apply(r, zp)
	fresh.Apply(r, zf)
	for i := range zp {
		if zp[i] != zf[i] {
			t.Fatalf("refreshed Apply diverges from fresh at %d", i)
		}
	}
	small, _ := randomSPD(9, 59, 0.1)
	if err := p.Refresh(small); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSSORPrecRefresh(t *testing.T) {
	a, _ := randomSPD(10, 60, 0.1)
	p := NewSSORPrec(a, 1.3)
	a2 := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: a.RowPtr, ColIdx: a.ColIdx, Val: make([]float64, len(a.Val))}
	for i := range a.Val {
		a2.Val[i] = 0.5 * a.Val[i]
	}
	if err := p.Refresh(a2); err != nil {
		t.Fatal(err)
	}
	fresh := NewSSORPrec(a2, 1.3)
	r := make([]float64, a.Rows)
	for i := range r {
		r[i] = float64(i%13) + 1
	}
	zp := make([]float64, a.Rows)
	zf := make([]float64, a.Rows)
	p.Apply(r, zp)
	fresh.Apply(r, zf)
	for i := range zp {
		if zp[i] != zf[i] {
			t.Fatalf("refreshed Apply diverges from fresh at %d", i)
		}
	}
	small, _ := randomSPD(12, 61, 0.1)
	if err := p.Refresh(small); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
