// Package linalg implements the dense and sparse linear algebra needed by
// aeropack's finite-volume thermal solver and finite-element structural
// solver: LU and Cholesky factorisations, preconditioned conjugate-gradient
// and BiCGSTAB iterations on CSR matrices, and symmetric (including
// generalized) eigensolvers for modal analysis.
//
// Everything is written against float64 slices with row-major dense storage;
// there are no external dependencies.
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dense dimensions %d×%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i,j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: dimension mismatch in MulVec")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns M·B.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic("linalg: dimension mismatch in Mul")
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns Mᵀ.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// IsSymmetric reports whether the matrix is symmetric to tolerance tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// LU holds an LU factorisation with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// FactorLU computes the LU factorisation of a square matrix A with partial
// pivoting.  It returns an error if A is singular to working precision.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU requires a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search.
		p, maxv := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at pivot %d", k)
		}
		if p != k {
			ri, rk := lu.Data[p*n:(p+1)*n], lu.Data[k*n:(k+1)*n]
			for j := range ri {
				ri[j], rk[j] = rk[j], ri[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			rowi := lu.Data[i*n : (i+1)*n]
			rowk := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowi[j] -= f * rowk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: dimension mismatch in LU solve")
	}
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense solves A·x = b via LU for one right-hand side.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Cholesky holds the lower-triangular factor of a symmetric positive
// definite matrix: A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorCholesky computes the Cholesky factorisation of an SPD matrix.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: matrix not positive definite at row %d (d=%g)", j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A·x = b.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic("linalg: dimension mismatch in Cholesky solve")
	}
	// L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// L returns the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l }

// SolveLowerTri solves L·x = b for lower-triangular L.
func SolveLowerTri(l *Dense, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveUpperTriT solves Lᵀ·x = b for lower-triangular L.
func SolveUpperTriT(l *Dense, b []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// Vector helpers.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dimension mismatch in Dot")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y ← y + alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: dimension mismatch in Axpy")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}
