// Package fluids provides saturation-state property correlations for the
// working fluids used in avionics two-phase cooling devices (heat pipes,
// loop heat pipes, thermosyphons): water, ammonia, methanol, acetone.
//
// Each fluid carries Antoine-equation vapour-pressure coefficients plus
// temperature-linear fits for the remaining properties anchored at two
// reference temperatures.  Accuracy is the few-percent class appropriate
// for device-level design calculations (the same class as the handbook
// tables in Peterson, "An Introduction to Heat Pipes", the paper's ref [3]).
package fluids

import (
	"fmt"
	"math"
	"sort"

	"aeropack/internal/units"
)

// State is the saturated-fluid property set at one temperature.
type State struct {
	T        float64 // temperature, K
	Psat     float64 // saturation pressure, Pa
	Hfg      float64 // latent heat of vaporisation, J/kg
	RhoL     float64 // liquid density, kg/m³
	RhoV     float64 // vapour density, kg/m³
	MuL      float64 // liquid dynamic viscosity, Pa·s
	MuV      float64 // vapour dynamic viscosity, Pa·s
	KL       float64 // liquid thermal conductivity, W/(m·K)
	CpL      float64 // liquid specific heat, J/(kg·K)
	Sigma    float64 // surface tension, N/m
	GammaV   float64 // vapour specific-heat ratio
	MolarMas float64 // molar mass, kg/mol
}

// MeritNumber returns the liquid transport factor
// N = rho_l·sigma·h_fg / mu_l (W/m²), the standard figure of merit for
// capillary-driven two-phase devices.
func (s State) MeritNumber() float64 {
	if s.MuL == 0 {
		return 0
	}
	return s.RhoL * s.Sigma * s.Hfg / s.MuL
}

// anchor is a property sample at one temperature used for linear fits.
type anchor struct {
	T     float64
	Hfg   float64
	RhoL  float64
	MuL   float64
	MuV   float64
	KL    float64
	CpL   float64
	Sigma float64
}

// Fluid is a two-phase working fluid with property correlations valid over
// [Tmin, Tmax].
type Fluid struct {
	Name string
	// Antoine coefficients: log10(P[mmHg]) = A - B/(C + T[°C]).
	AntA, AntB, AntC float64
	Tmin, Tmax       float64 // validity range, K
	Tcrit            float64 // critical temperature, K
	MolarMass        float64 // kg/mol
	GammaV           float64 // vapour cp/cv
	FreezeT          float64 // freezing point, K
	lo, hi           anchor
}

const mmHg = 133.322 // Pa

// Sat evaluates saturated properties at temperature T (K).  Temperatures
// outside the validity range are clamped; callers that care should check
// with InRange first.
func (f *Fluid) Sat(T float64) State {
	Tc := T
	if Tc < f.Tmin {
		Tc = f.Tmin
	}
	if Tc > f.Tmax {
		Tc = f.Tmax
	}
	c := units.KToC(Tc)
	psat := mmHg * math.Pow(10, f.AntA-f.AntB/(f.AntC+c))
	t := (Tc - f.lo.T) / (f.hi.T - f.lo.T)
	lerp := func(a, b float64) float64 { return a + (b-a)*t }
	// Viscosity varies exponentially with T; interpolate in log space.
	loglerp := func(a, b float64) float64 {
		return math.Exp(math.Log(a) + (math.Log(b)-math.Log(a))*t)
	}
	hfg := lerp(f.lo.Hfg, f.hi.Hfg)
	// Ideal-gas vapour density at saturation.
	rhoV := psat * f.MolarMass / (units.GasConstant * Tc)
	return State{
		T:        Tc,
		Psat:     psat,
		Hfg:      hfg,
		RhoL:     lerp(f.lo.RhoL, f.hi.RhoL),
		RhoV:     rhoV,
		MuL:      loglerp(f.lo.MuL, f.hi.MuL),
		MuV:      loglerp(f.lo.MuV, f.hi.MuV),
		KL:       lerp(f.lo.KL, f.hi.KL),
		CpL:      lerp(f.lo.CpL, f.hi.CpL),
		Sigma:    math.Max(1e-4, lerp(f.lo.Sigma, f.hi.Sigma)),
		GammaV:   f.GammaV,
		MolarMas: f.MolarMass,
	}
}

// InRange reports whether T lies inside the correlation validity range.
func (f *Fluid) InRange(T float64) bool { return T >= f.Tmin && T <= f.Tmax }

// SonicVelocity returns the vapour sonic velocity at saturation
// temperature T, sqrt(gamma·R·T/M).
func (f *Fluid) SonicVelocity(T float64) float64 {
	return math.Sqrt(f.GammaV * units.GasConstant * T / f.MolarMass)
}

// Canonical built-in fluids.  The instances are exported so known fluids
// are referenced by identifier (compile-checked) instead of through a
// panicking MustGet; Get remains for dynamic string-keyed lookup.
var (
	// Water: the dominant heat-pipe fluid in the 30–200 °C band used by
	// avionics cooling (COSEE heat pipes).
	Water = &Fluid{
		Name: "water",
		AntA: 8.07131, AntB: 1730.63, AntC: 233.426,
		Tmin: 274, Tmax: 473, Tcrit: 647.1,
		MolarMass: 18.015e-3, GammaV: 1.33, FreezeT: units.ZeroCelsius,
		lo: anchor{T: 293.15, Hfg: 2.454e6, RhoL: 998.2, MuL: 1.002e-3,
			MuV: 9.7e-6, KL: 0.598, CpL: 4182, Sigma: 0.0728},
		hi: anchor{T: 393.15, Hfg: 2.202e6, RhoL: 943.1, MuL: 0.232e-3,
			MuV: 12.9e-6, KL: 0.683, CpL: 4244, Sigma: 0.0550},
	}
	// Ammonia: the classic LHP fluid (the ITP loop heat pipes in COSEE are
	// ammonia-charged); excellent merit number at cabin temperatures.
	Ammonia = &Fluid{
		Name: "ammonia",
		AntA: 7.36050, AntB: 926.132, AntC: 240.17,
		Tmin: 200, Tmax: 370, Tcrit: 405.5,
		MolarMass: 17.031e-3, GammaV: 1.31, FreezeT: 195.4,
		lo: anchor{T: 239.15, Hfg: 1.369e6, RhoL: 681.0, MuL: 0.285e-3,
			MuV: 8.1e-6, KL: 0.547, CpL: 4472, Sigma: 0.0340},
		hi: anchor{T: 313.15, Hfg: 1.099e6, RhoL: 579.5, MuL: 0.125e-3,
			MuV: 10.4e-6, KL: 0.447, CpL: 4877, Sigma: 0.0181},
	}
	// Methanol: low-temperature heat pipes (starts below water's freeze).
	Methanol = &Fluid{
		Name: "methanol",
		AntA: 7.89750, AntB: 1474.08, AntC: 229.13,
		Tmin: 240, Tmax: 400, Tcrit: 512.6,
		MolarMass: 32.042e-3, GammaV: 1.26, FreezeT: 175.6,
		lo: anchor{T: units.ZeroCelsius, Hfg: 1.20e6, RhoL: 810.0, MuL: 0.817e-3,
			MuV: 8.8e-6, KL: 0.210, CpL: 2430, Sigma: 0.0245},
		hi: anchor{T: 373.15, Hfg: 1.05e6, RhoL: 714.0, MuL: 0.210e-3,
			MuV: 12.4e-6, KL: 0.186, CpL: 2920, Sigma: 0.0150},
	}
	// R134a: the pumped-two-phase and thermosyphon refrigerant option for
	// cabin-temperature loops; modest merit number but high vapour density
	// (small lines) and full aluminium compatibility.
	R134a = &Fluid{
		Name: "r134a",
		AntA: 7.034, AntB: 912.6, AntC: 245.6,
		Tmin: 230, Tmax: 360, Tcrit: 374.2,
		MolarMass: 102.03e-3, GammaV: 1.12, FreezeT: 169.85,
		lo: anchor{T: units.ZeroCelsius, Hfg: 198.6e3, RhoL: 1295, MuL: 2.67e-4,
			MuV: 1.07e-5, KL: 0.092, CpL: 1341, Sigma: 0.0115},
		hi: anchor{T: 313.15, Hfg: 163.0e3, RhoL: 1147, MuL: 1.61e-4,
			MuV: 1.20e-5, KL: 0.075, CpL: 1498, Sigma: 0.0061},
	}
	// Acetone: mid-range alternative for aluminium-compatible devices
	// (water attacks aluminium envelopes).
	Acetone = &Fluid{
		Name: "acetone",
		AntA: 7.11714, AntB: 1210.595, AntC: 229.664,
		Tmin: 250, Tmax: 400, Tcrit: 508.1,
		MolarMass: 58.08e-3, GammaV: 1.12, FreezeT: 178.5,
		lo: anchor{T: units.ZeroCelsius, Hfg: 0.564e6, RhoL: 812.0, MuL: 0.395e-3,
			MuV: 6.8e-6, KL: 0.171, CpL: 2110, Sigma: 0.0262},
		hi: anchor{T: 373.15, Hfg: 0.495e6, RhoL: 696.0, MuL: 0.192e-3,
			MuV: 9.8e-6, KL: 0.146, CpL: 2380, Sigma: 0.0137},
	}
)

// registry is the name-keyed index over the canonical instances above.
var registry = byName(Water, Ammonia, Methanol, R134a, Acetone)

func byName(fs ...*Fluid) map[string]*Fluid {
	out := make(map[string]*Fluid, len(fs))
	for _, f := range fs {
		out[f.Name] = f
	}
	return out
}

// Get returns the named built-in fluid.
func Get(name string) (*Fluid, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("fluids: unknown fluid %q", name)
	}
	return f, nil
}

// Names returns the sorted built-in fluid names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the built-in fluids sorted by name.
func All() []*Fluid {
	out := make([]*Fluid, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// SatTemperature inverts the Antoine equation: the saturation temperature
// (K) at pressure p (Pa).
func (f *Fluid) SatTemperature(p float64) float64 {
	if p <= 0 {
		return f.Tmin
	}
	logp := math.Log10(p / mmHg)
	c := f.AntB/(f.AntA-logp) - f.AntC
	return units.CToK(c)
}

// ClausiusClapeyronSlope returns dP/dT (Pa/K) at temperature T from the
// latent heat via the Clausius–Clapeyron relation, used by tests to check
// internal consistency between Psat and Hfg data.
func (f *Fluid) ClausiusClapeyronSlope(T float64) float64 {
	s := f.Sat(T)
	// dP/dT = hfg·P·M / (R·T²) in the ideal-vapour limit.
	return s.Hfg * s.Psat * f.MolarMass / (units.GasConstant * T * T)
}
