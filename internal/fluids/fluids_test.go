package fluids

import (
	"math"
	"testing"
	"testing/quick"

	"aeropack/internal/units"
)

func TestWaterSatPressure(t *testing.T) {
	w := Water
	// Water boils at 100 °C under 1 atm.
	s := w.Sat(units.CToK(100))
	if !units.ApproxEqual(s.Psat, units.AtmPressure, 0.02) {
		t.Errorf("water Psat(100°C) = %v Pa, want ≈101325", s.Psat)
	}
	// At 20 °C: ≈2339 Pa.
	s = w.Sat(units.CToK(20))
	if !units.ApproxEqual(s.Psat, 2339, 0.03) {
		t.Errorf("water Psat(20°C) = %v Pa, want ≈2339", s.Psat)
	}
}

func TestWaterProperties(t *testing.T) {
	w := Water
	s := w.Sat(units.CToK(20))
	if !units.ApproxEqual(s.RhoL, 998, 0.01) {
		t.Errorf("water rhoL = %v", s.RhoL)
	}
	if !units.ApproxEqual(s.Hfg, 2.454e6, 0.02) {
		t.Errorf("water hfg = %v", s.Hfg)
	}
	if !units.ApproxEqual(s.Sigma, 0.0728, 0.02) {
		t.Errorf("water sigma = %v", s.Sigma)
	}
	if !units.ApproxEqual(s.MuL, 1.002e-3, 0.02) {
		t.Errorf("water muL = %v", s.MuL)
	}
	// Vapour density at 100 °C ≈ 0.598 kg/m³ (ideal-gas approx gives ~0.59).
	s100 := w.Sat(units.CToK(100))
	if !units.ApproxEqual(s100.RhoV, 0.59, 0.05) {
		t.Errorf("water rhoV(100°C) = %v, want ≈0.59", s100.RhoV)
	}
}

func TestAmmoniaSatPressure(t *testing.T) {
	a := Ammonia
	// Ammonia boils at −33.3 °C under 1 atm.
	s := a.Sat(units.CToK(-33.3))
	if !units.ApproxEqual(s.Psat, units.AtmPressure, 0.05) {
		t.Errorf("ammonia Psat(-33.3°C) = %v, want ≈1 atm", s.Psat)
	}
}

func TestMeritNumberOrdering(t *testing.T) {
	// At cabin temperature water has the best merit number, then ammonia,
	// then methanol/acetone — the standard fluid-selection chart ordering.
	T := units.CToK(40)
	w := Water.Sat(T).MeritNumber()
	am := Ammonia.Sat(T).MeritNumber()
	me := Methanol.Sat(T).MeritNumber()
	ac := Acetone.Sat(T).MeritNumber()
	if !(w > am && am > me && me > ac*0.5) {
		t.Errorf("merit ordering broken: water=%.3g ammonia=%.3g methanol=%.3g acetone=%.3g",
			w, am, me, ac)
	}
	// Water's merit number at 40 °C is ≈4–5×10¹¹ W/m².
	if w < 2e11 || w > 8e11 {
		t.Errorf("water merit = %.3g, want O(4e11)", w)
	}
}

func TestMeritNumberZeroViscosity(t *testing.T) {
	var s State
	if s.MeritNumber() != 0 {
		t.Error("zero state should have zero merit number")
	}
}

func TestSatMonotonicity(t *testing.T) {
	// Psat strictly increases with T; rhoL decreases; muL decreases.
	for _, f := range All() {
		name := f.Name
		prev := f.Sat(f.Tmin)
		for T := f.Tmin + 5; T <= f.Tmax; T += 5 {
			s := f.Sat(T)
			if s.Psat <= prev.Psat {
				t.Errorf("%s: Psat not increasing at T=%v", name, T)
			}
			if s.RhoL > prev.RhoL {
				t.Errorf("%s: rhoL not decreasing at T=%v", name, T)
			}
			if s.MuL > prev.MuL {
				t.Errorf("%s: muL not decreasing at T=%v", name, T)
			}
			prev = s
		}
	}
}

func TestSatClamping(t *testing.T) {
	w := Water
	below := w.Sat(100)
	atMin := w.Sat(w.Tmin)
	if below != atMin {
		t.Error("below-range evaluation should clamp to Tmin")
	}
	if w.InRange(100) {
		t.Error("100 K should be out of range for water")
	}
	if !w.InRange(300) {
		t.Error("300 K should be in range for water")
	}
}

func TestSatTemperatureInverse(t *testing.T) {
	// SatTemperature(Sat(T).Psat) == T, property-checked in range.
	for _, f := range All() {
		name := f.Name
		g := func(raw float64) bool {
			frac := math.Abs(math.Mod(raw, 1))
			T := f.Tmin + frac*(f.Tmax-f.Tmin)
			p := f.Sat(T).Psat
			Tback := f.SatTemperature(p)
			return units.ApproxEqual(Tback, T, 1e-6)
		}
		if err := quick.Check(g, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSatTemperatureNonPositive(t *testing.T) {
	w := Water
	if got := w.SatTemperature(0); got != w.Tmin {
		t.Errorf("SatTemperature(0) = %v, want Tmin", got)
	}
}

func TestClausiusClapeyronConsistency(t *testing.T) {
	// The Antoine-derived dP/dT must agree with the Clausius–Clapeyron
	// slope computed from hfg to within ~10% — a cross-check that the
	// pressure and latent-heat data describe the same fluid.  The CC slope
	// here assumes an ideal vapour, which is ~15–20% off for dense
	// refrigerant vapours above a few bar, so those get a wider band.
	for _, f := range All() {
		name := f.Name
		T := (f.Tmin + f.Tmax) / 2
		dT := 0.01
		s := f.Sat(T)
		tol := 0.12
		if s.Psat > 5e5 {
			tol = 0.25
		}
		numerical := (f.Sat(T+dT).Psat - f.Sat(T-dT).Psat) / (2 * dT)
		analytic := f.ClausiusClapeyronSlope(T)
		if !units.ApproxEqual(numerical, analytic, tol) {
			t.Errorf("%s: dP/dT numeric=%.4g vs CC=%.4g", name, numerical, analytic)
		}
	}
}

func TestSonicVelocity(t *testing.T) {
	// Water vapour sonic velocity at 373 K ≈ sqrt(1.33·8.314·373/0.018) ≈ 478 m/s.
	w := Water
	if got := w.SonicVelocity(373.15); !units.ApproxEqual(got, 478, 0.03) {
		t.Errorf("water sonic velocity = %v, want ≈478", got)
	}
}

func TestGetUnknownFluid(t *testing.T) {
	if _, err := Get("helium3"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Get("water"); err != nil {
		t.Fatalf("known fluid should resolve: %v", err)
	}
}

func TestAllFluidsPositiveProperties(t *testing.T) {
	for _, f := range All() {
		name := f.Name
		for T := f.Tmin; T <= f.Tmax; T += 10 {
			s := f.Sat(T)
			for label, v := range map[string]float64{
				"Psat": s.Psat, "Hfg": s.Hfg, "RhoL": s.RhoL, "RhoV": s.RhoV,
				"MuL": s.MuL, "MuV": s.MuV, "KL": s.KL, "CpL": s.CpL,
				"Sigma": s.Sigma,
			} {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s at T=%v: %s = %v", name, T, label, v)
				}
			}
			if s.RhoV >= s.RhoL {
				t.Fatalf("%s at T=%v: vapour denser than liquid", name, T)
			}
		}
	}
}

func TestR134aHandbook(t *testing.T) {
	r := R134a
	// Boils at −26.1 °C under 1 atm.
	s := r.Sat(units.CToK(-26.1))
	if !units.ApproxEqual(s.Psat, units.AtmPressure, 0.05) {
		t.Errorf("r134a Psat(-26.1°C) = %v, want ≈1 atm", s.Psat)
	}
	// ≈6.6 bar at 25 °C (accept the Antoine fit's few-% band).
	s25 := r.Sat(units.CToK(25))
	if s25.Psat < 5.8e5 || s25.Psat > 7.2e5 {
		t.Errorf("r134a Psat(25°C) = %v, want ≈6.6 bar", s25.Psat)
	}
	// Dense vapour is the fluid's selling point: far denser than water's.
	w := Water.Sat(units.CToK(25))
	if s25.RhoV < 10*w.RhoV {
		t.Errorf("r134a vapour %v kg/m³ should dwarf water's %v", s25.RhoV, w.RhoV)
	}
	// But the merit number is far below water's — it is not a heat-pipe
	// fluid of choice.
	if s25.MeritNumber() > Water.Sat(units.CToK(25)).MeritNumber()/20 {
		t.Error("r134a merit should be ≪ water")
	}
}
