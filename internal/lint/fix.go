// Machine-applicable fixes.  A rule that can prove the rewrite attaches
// a Fix — an edit list in byte offsets — to its finding; the exporters
// carry it (JSON `fix`, SARIF `fixes`) and `aeropacklint -fix` applies
// it in place, gofmt-ing every touched file.  Fixes are deliberately
// rare: only rewrites that preserve semantics byte-for-provable, like
// `err == Sentinel` → `errors.Is(err, Sentinel)` and `x + 273.15` →
// `units.CToK(x)`, qualify.
package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// TextEdit replaces the half-open byte range [Offset, End) of File with
// New.  File is module-root-relative after RunModule (like finding
// positions); an insertion has Offset == End.
type TextEdit struct {
	File   string `json:"file"`
	Offset int    `json:"offset"`
	End    int    `json:"end"`
	New    string `json:"new"`
}

// Fix is one machine-applicable rewrite resolving a finding.
type Fix struct {
	// Desc is a one-line description of what the rewrite does.
	Desc string `json:"desc"`
	// Edits are applied together; they never overlap.
	Edits []TextEdit `json:"edits"`
}

// ApplyFixes applies every fix in findings to the files under root,
// reformatting each touched file with gofmt.  With dryRun no file is
// written.  Returns the root-relative files that changed (or would
// change), sorted.  Edits whose byte ranges fall outside the current
// file, or that overlap an already-applied edit, are skipped — the
// sources moved under us and a stale rewrite is worse than none.
func ApplyFixes(root string, findings []Finding, dryRun bool) ([]string, error) {
	byFile := make(map[string][]TextEdit)
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	files := make([]string, 0, len(byFile))
	for file := range byFile {
		files = append(files, file)
	}
	sort.Strings(files)
	var changed []string
	for _, file := range files {
		path := file
		if !filepath.IsAbs(path) {
			path = filepath.Join(root, file)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return changed, fmt.Errorf("lint: applying fixes: %w", err)
		}
		edits := byFile[file]
		// Bottom-up so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].Offset > edits[j].Offset })
		out := data
		lastStart := len(data) + 1
		applied := 0
		for _, e := range edits {
			if e.Offset < 0 || e.End < e.Offset || e.End > len(data) || e.End > lastStart {
				continue // out of range or overlapping: stale edit
			}
			out = append(out[:e.Offset], append([]byte(e.New), out[e.End:]...)...)
			lastStart = e.Offset
			applied++
		}
		if applied == 0 {
			continue
		}
		formatted, err := format.Source(out)
		if err != nil {
			return changed, fmt.Errorf("lint: fix for %s produced unparsable code: %w", file, err)
		}
		changed = append(changed, file)
		if dryRun {
			continue
		}
		mode := os.FileMode(0o644)
		if st, err := os.Stat(path); err == nil {
			mode = st.Mode().Perm()
		}
		if err := os.WriteFile(path, formatted, mode); err != nil {
			return changed, fmt.Errorf("lint: applying fixes: %w", err)
		}
	}
	return changed, nil
}

// PendingFixes counts findings carrying a machine-applicable fix.
func PendingFixes(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if f.Fix != nil {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------
// Fix builders.

// fixSentinelCompare rewrites `err == Sentinel` → `errors.Is(err,
// Sentinel)` (and != → !errors.Is), adding "errors" to the file's
// grouped import block when missing.  Returns nil when the file has no
// grouped import to extend or the operand order cannot be established.
func (p *Package) fixSentinelCompare(f *ast.File, be *ast.BinaryExpr) *Fix {
	xStr, yStr := types.ExprString(be.X), types.ExprString(be.Y)
	errStr, sentStr := xStr, yStr
	if p.packageLevelErrorVar(be.X) != nil && p.packageLevelErrorVar(be.Y) == nil {
		// errors.Is(err, target): the sentinel is the target.
		errStr, sentStr = yStr, xStr
	}
	neg := ""
	if be.Op == token.NEQ {
		neg = "!"
	}
	start := p.Fset.Position(be.Pos())
	end := p.Fset.Position(be.End())
	if start.Offset <= 0 && start.Line == 0 {
		return nil
	}
	edits := []TextEdit{{
		File:   start.Filename,
		Offset: start.Offset,
		End:    end.Offset,
		New:    neg + "errors.Is(" + errStr + ", " + sentStr + ")",
	}}
	if imp := importInsertion(p, f, "errors"); imp != nil {
		edits = append(edits, *imp)
	} else if !fileImports(f, "errors") {
		return nil // no grouped import block to extend
	}
	return &Fix{Desc: "replace sentinel comparison with errors.Is", Edits: edits}
}

// fixUnitLiteral rewrites `x + 273.15` → `units.CToK(x)` and
// `x - 273.15` → `units.KToC(x)` when the file already imports the
// units package under its default name.  lit must be the 273.15
// literal the finding is about.
func (p *Package) fixUnitLiteral(f *ast.File, lit *ast.BasicLit) *Fix {
	if lit.Value != "273.15" || !fileImportsSuffix(f, "/internal/units") {
		return nil
	}
	be := enclosingBinary(f, lit)
	if be == nil {
		return nil
	}
	var repl string
	switch {
	case be.Op == token.ADD && be.Y == lit:
		repl = "units.CToK(" + types.ExprString(be.X) + ")"
	case be.Op == token.ADD && be.X == lit:
		repl = "units.CToK(" + types.ExprString(be.Y) + ")"
	case be.Op == token.SUB && be.Y == lit:
		repl = "units.KToC(" + types.ExprString(be.X) + ")"
	default:
		return nil
	}
	start := p.Fset.Position(be.Pos())
	end := p.Fset.Position(be.End())
	return &Fix{
		Desc: "replace the ±273.15 arithmetic with the units conversion helper",
		Edits: []TextEdit{{
			File:   start.Filename,
			Offset: start.Offset,
			End:    end.Offset,
			New:    repl,
		}},
	}
}

// enclosingBinary finds the binary expression having lit as a direct
// operand.
func enclosingBinary(f *ast.File, lit *ast.BasicLit) *ast.BinaryExpr {
	var found *ast.BinaryExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok && (be.X == lit || be.Y == lit) {
			found = be
			return false
		}
		return true
	})
	return found
}

// fileImports reports whether f imports the exact path.
func fileImports(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if v, err := strconv.Unquote(imp.Path.Value); err == nil && v == path {
			return true
		}
	}
	return false
}

// fileImportsSuffix reports whether f imports a path with the given
// suffix under its default package name (no rename).
func fileImportsSuffix(f *ast.File, suffix string) bool {
	for _, imp := range f.Imports {
		v, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !strings.HasSuffix(v, suffix) {
			continue
		}
		if imp.Name == nil {
			return true
		}
	}
	return false
}

// importInsertion builds the edit adding path to f's first grouped
// import block; nil when the path is already imported or no grouped
// block exists.
func importInsertion(p *Package, f *ast.File, path string) *TextEdit {
	if fileImports(f, path) {
		return nil
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		pos := p.Fset.Position(gd.Lparen)
		off := pos.Offset + 1 // just past the '('
		return &TextEdit{
			File:   pos.Filename,
			Offset: off,
			End:    off,
			New:    "\n\t" + strconv.Quote(path),
		}
	}
	return nil
}
