// The taintsize rule: a request- or flag-derived integer must not size
// an allocation, bound a loop, or set a worker count without passing
// through a proven clamp.  aeropackd turns wire payloads into solver
// work; an unclamped `make([]float64, req.N)` is a one-request
// denial-of-service.
//
// Sources: json-tagged fields (integers, and the lengths of slices and
// maps) of structs declared in packages that import net/http, plus
// dereferences of flag.Int-family variables.  Sinks: make() sizes,
// for-loop bound comparisons, SetWorkers calls, and — through the
// value-flow summaries — any callee parameter that reaches one of
// those, reported at the caller with the full chain.  Clamps are
// ordering comparisons, min/max with a constant bound, %-arithmetic,
// and the module-wide clamped-field fact (the field is ordering-
// compared in its declaring package, the validate()-caps idiom).
package lint

import (
	"go/ast"
	"strings"
)

type taintsizeRule struct{}

func init() { Register(taintsizeRule{}) }

func (taintsizeRule) Name() string { return "taintsize" }

func (taintsizeRule) Doc() string {
	return "request- or flag-derived sizes must be clamped before reaching make, loop bounds or SetWorkers"
}

func (taintsizeRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	seen := make(map[string]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			t := newTaintTracker(p, p.Facts.summaries(), fd, true)
			t.onSink = func(h sizeSinkHit) {
				pos := p.Fset.Position(h.pos)
				key := pos.String() + "|" + h.origin.desc
				if seen[key] {
					return
				}
				seen[key] = true
				msg := h.origin.desc + " reaches " + h.sink + " without a clamp"
				fd := Finding{
					Pos:  pos,
					Rule: "taintsize",
					Msg:  msg,
					Hint: "bound the value first (validate() cap, if-clamp, or min with a constant)",
				}
				if len(h.chain) > 0 {
					fd.Msg += " via " + strings.Join(h.chain, " → ")
					if h.target.IsValid() {
						fd.Related = []Related{{Pos: h.target, Msg: "the unclamped " + h.sink + " sink is here"}}
					}
				}
				out = append(out, fd)
			}
			t.run()
		}
	}
	return out
}
