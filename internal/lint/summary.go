// Interprocedural analysis: a module-wide call graph with per-function
// summaries.  The fact store builds one funcNode per function
// declaration across every loaded package and computes, on demand with
// memoization, what a call to that function implies for the caller:
//
//   - blocking: does the body (transitively) perform a channel op, a
//     Wait, or enter an iterative solver?  Consumed by lockheld.
//   - span parameters: for each *obs.Span parameter, does the body end
//     it on every path, merely use it, or take ownership (store/return/
//     forward it)?  Consumed by spanleak.
//   - error origin: for a pass-through wrapper (`return f()`), which
//     call does the returned error actually come from?  Consumed by
//     errdrop to point through wrappers.
//   - goroutine signals: does the body mark a WaitGroup done or carry a
//     cancellation path (receive/select/range-chan)?  Consumed by
//     goroleak to accept self-managing workers.
//   - solver reach: which linalg iterative-solver entries does the body
//     (transitively) call without an IterOptions.Stop/budget?  Consumed
//     by budgetstop.
//
// Summaries follow call edges resolved through types.Info.Uses, so only
// static calls are followed; calls through interfaces or function values
// have no summary and every consumer treats that as "unknown" and stays
// silent (conservative toward no false positives).  Recursion is handled
// with an on-stack marker: a summary requested while it is being
// computed resolves to the safe "unknown" answer, which makes mutual
// recursion terminate and keeps the result a least fixpoint.
//
// Because rules may run concurrently, Facts.Gather forces every summary
// eagerly (in deterministic order — the memoized cycle answers depend on
// traversal order); afterwards the store is read-only.
//
// Soundness with the result cache: a summary consumed while linting
// package P only describes functions of P itself or of packages P
// (transitively) imports, so P's content-hash cache key — which already
// folds in the transitive in-module dependency sources — rotates
// whenever any summarized body changes.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// maxChain bounds the call-chain breadcrumbs carried in summaries.
const maxChain = 6

// maxSolverFacts bounds the unbudgeted-solver sites recorded per
// function; one is enough to flag the caller, a few keep messages useful.
const maxSolverFacts = 4

// BlockFact says a function (transitively) performs a blocking
// operation.
type BlockFact struct {
	// What names the operation, in lockheld's vocabulary ("channel
	// send", "Wait()", "solver entry CG", ...).
	What string
	// Pos is where the underlying operation happens.
	Pos token.Position
	// Chain lists the intermediate callees between the summarized
	// function and the operation (empty for a direct operation).
	Chain []string
}

// SolverFact says a function (transitively) calls a linalg iterative
// solver without an IterOptions.Stop or budget.
type SolverFact struct {
	// Entry is the solver entry point, e.g. "linalg.CG".
	Entry string
	// Pos is the unbudgeted call site.
	Pos token.Position
	// Chain lists the intermediate callees between the summarized
	// function and the solver call.
	Chain []string
}

// ErrOrigin says where the error a wrapper returns actually comes from.
type ErrOrigin struct {
	// From names the originating callee, e.g. "os.Close".
	From string
	// Pos is the originating call site.
	Pos token.Position
}

// spanBehavior classifies what a callee does with a *obs.Span parameter.
type spanBehavior uint8

const (
	// bhUnknown: not a span parameter, an unresolved callee, or a
	// summary cycle.  Consumers treat it as an ownership transfer.
	bhUnknown spanBehavior = iota
	// bhNeutral: the callee uses the span but neither ends it nor takes
	// ownership — the caller still owes an End.
	bhNeutral
	// bhEnds: the callee ends the span on every path.
	bhEnds
	// bhEscapes: the callee stores, returns or forwards the span.
	bhEscapes
)

// summary computation states.
const (
	stTodo uint8 = iota
	stInProgress
	stDone
)

// funcNode is one function declaration in the module-wide call graph,
// with its lazily-computed summaries.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	blockState uint8
	block      *BlockFact

	spanState uint8
	spans     []spanBehavior

	solverState uint8
	solver      []SolverFact

	errState  uint8
	errOrigin *ErrOrigin

	goroState  uint8
	goroDone   bool // body (transitively) calls WaitGroup.Done
	goroCancel bool // body (transitively) receives/selects/ranges a channel

	sizeState uint8
	sizes     []SizeFact // parameters that size allocations unclamped

	lockState uint8
	locks     []LockFact // mutexes the body (transitively) acquires

	touchState uint8
	touch      *SolverFact // reaches any iterative-solver entry at all

	stopState   uint8
	stopCompile bool // body (transitively) compiles a Budget stop predicate
}

// summaries is the call-graph fact kind stored alongside the
// types.Object facts.  A nil *summaries behaves like an empty store.
type summaries struct {
	nodes map[*types.Func]*funcNode
}

func newSummaries() *summaries {
	return &summaries{nodes: make(map[*types.Func]*funcNode)}
}

// index registers every function declaration of p as a call-graph node.
func (s *summaries) index(p *Package) {
	if p == nil || p.Info == nil {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, seen := s.nodes[fn]; seen {
				continue
			}
			s.nodes[fn] = &funcNode{fn: fn, decl: fd, pkg: p}
		}
	}
}

// forceAll computes every summary eagerly.  Order matters: the memoized
// answer a cycle member sees depends on which member is forced first, so
// nodes are visited in (file, offset) order to keep runs deterministic.
// After forceAll the store is read-only and safe for concurrent rules.
func (s *summaries) forceAll() {
	for _, n := range s.orderedNodes() {
		s.blocking(n)
		s.spanParams(n)
		s.solverReach(n)
		s.errOriginOf(n)
		s.goroSignals(n)
		s.sizeFacts(n)
		s.lockFacts(n)
		s.solverTouch(n)
		s.compilesStop(n)
	}
}

// orderedNodes returns every call-graph node in deterministic (file,
// offset) order — the traversal order forceAll and the lock-edge gather
// share.
func (s *summaries) orderedNodes() []*funcNode {
	ordered := make([]*funcNode, 0, len(s.nodes))
	for _, n := range s.nodes {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a := ordered[i].pkg.Fset.Position(ordered[i].decl.Pos())
		b := ordered[j].pkg.Fset.Position(ordered[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return ordered
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// calleeFunc resolves a call to the static *types.Func it invokes, or
// nil for calls through interfaces, function values or builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// shortFuncName renders fn as "pkgname.Name" for messages.
func shortFuncName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// prependChain builds a breadcrumb chain with the immediate callee in
// front, capped at maxChain entries.
func prependChain(head string, rest []string) []string {
	chain := append([]string{head}, rest...)
	if len(chain) > maxChain {
		chain = chain[:maxChain]
	}
	return chain
}

// ---------------------------------------------------------------------
// Blocking summaries (lockheld).

// blocking returns the function's blocking fact, nil when the body
// cannot block.  A cycle resolves to "does not block": on a recursive
// path the first iteration already exhibits any direct operation, and
// anything only reachable through the back edge is unproven.
func (s *summaries) blocking(n *funcNode) *BlockFact {
	switch n.blockState {
	case stInProgress:
		return nil
	case stDone:
		return n.block
	}
	n.blockState = stInProgress
	n.block = s.blockScan(n)
	n.blockState = stDone
	return n.block
}

func (s *summaries) blockScan(n *funcNode) *BlockFact {
	p := n.pkg
	var found *BlockFact
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		if found != nil {
			return false
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			return false // runs later, not during this call
		case *ast.GoStmt:
			return false // concurrent; does not block the caller
		case *ast.DeferStmt:
			return false // runs on the way out; out of scope here
		case *ast.SendStmt:
			found = &BlockFact{What: "channel send", Pos: p.Fset.Position(x.Pos())}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = &BlockFact{What: "channel receive", Pos: p.Fset.Position(x.Pos())}
			}
		case *ast.SelectStmt:
			found = &BlockFact{What: "select", Pos: p.Fset.Position(x.Pos())}
			return false
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = &BlockFact{What: "range over channel", Pos: p.Fset.Position(x.Pos())}
					return false
				}
			}
		case *ast.CallExpr:
			if what, bad := p.blockingCall(x); bad {
				found = &BlockFact{What: what, Pos: p.Fset.Position(x.Pos())}
				return false
			}
			fn := calleeFunc(p, x)
			if fn == nil || fn == n.fn {
				return true
			}
			cn := s.nodes[fn]
			if cn == nil {
				return true
			}
			if bf := s.blocking(cn); bf != nil {
				found = &BlockFact{What: bf.What, Pos: bf.Pos, Chain: prependChain(shortFuncName(fn), bf.Chain)}
				return false
			}
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------
// Span-parameter summaries (spanleak).

// spanParams classifies each parameter of n (flattened, receiver
// excluded).  nil means "unknown" — the summary is mid-computation
// (recursion) — and callers must treat every argument as escaping.
func (s *summaries) spanParams(n *funcNode) []spanBehavior {
	switch n.spanState {
	case stInProgress:
		return nil
	case stDone:
		return n.spans
	}
	n.spanState = stInProgress
	n.spans = s.spanParamScan(n)
	n.spanState = stDone
	return n.spans
}

func (s *summaries) spanParamScan(n *funcNode) []spanBehavior {
	if n.decl.Type.Params == nil {
		return nil
	}
	p := n.pkg
	var out []spanBehavior
	for _, field := range n.decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, bhUnknown) // unnamed: the body cannot use it
			continue
		}
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil || !isObsSpanPtr(obj.Type()) {
				out = append(out, bhUnknown)
				continue
			}
			out = append(out, s.spanObjBehavior(n, obj))
		}
	}
	return out
}

// spanObjBehavior decides what n's body does with the span parameter.
func (s *summaries) spanObjBehavior(n *funcNode, obj types.Object) spanBehavior {
	p := n.pkg
	fl := s.spanFlow(p, n.decl.Body, obj)
	if fl.escapes {
		return bhEscapes
	}
	if fl.deferredEnd || hasDeferredEnd(p, n.decl.Body, obj) {
		return bhEnds
	}
	if _, leaked := firstLeakyReturn(p, n.decl.Body, obj, n.decl.Body.Pos(), fl.extraEnds); !leaked {
		return bhEnds
	}
	return bhNeutral
}

// spanPass records one call a span was handed to without being ended.
type spanPass struct {
	pos    token.Pos
	callee *types.Func
}

// spanFlowResult is the shared span data-flow answer consumed by both
// the spanleak rule and the span-parameter summaries.
type spanFlowResult struct {
	// escapes: ownership left the function (returned, stored, captured
	// by a goroutine, or handed to a callee that keeps/forwards it).
	escapes bool
	// deferredEnd: a deferred call ends the span on every exit.
	deferredEnd bool
	// extraEnds are call positions that end the span — interprocedural
	// End sites to merge with the literal v.End() calls.
	extraEnds []token.Pos
	// neutrals are calls the span was passed to that use it without
	// ending it; the caller still owes the End.
	neutrals []spanPass
}

// spanFlow classifies every use of the span object in body.  Works on a
// nil receiver (no summaries): every hand-off is then an escape, which
// reproduces the intraprocedural v2 behavior.
func (s *summaries) spanFlow(p *Package, body *ast.BlockStmt, obj types.Object) spanFlowResult {
	var fl spanFlowResult
	goCalls := make(map[*ast.CallExpr]bool)
	deferCalls := make(map[*ast.CallExpr]bool)
	inspectSkipFuncLits(body, func(m ast.Node) {
		if fl.escapes {
			return
		}
		switch x := m.(type) {
		case *ast.GoStmt:
			goCalls[x.Call] = true
		case *ast.DeferStmt:
			deferCalls[x.Call] = true
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObject(p, r, obj) {
					fl.escapes = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if usesObject(p, r, obj) {
					fl.escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				if usesObject(p, e, obj) {
					fl.escapes = true
				}
			}
		case *ast.CallExpr:
			if isEndCallOn(p, x, obj) {
				return // counted by firstLeakyReturn / hasDeferredEnd
			}
			for i, a := range x.Args {
				if !usesObject(p, a, obj) {
					continue
				}
				// Only a bare `sp` argument is classifiable through the
				// callee summary; &sp, wrapper{sp} etc. hand it off.
				id, isIdent := unparen(a).(*ast.Ident)
				if !isIdent || p.Info.Uses[id] != obj {
					fl.escapes = true
					continue
				}
				if goCalls[x] {
					fl.escapes = true // the goroutine owns it now
					continue
				}
				switch fn, beh := s.argBehavior(p, x, i); beh {
				case bhEnds:
					if deferCalls[x] {
						fl.deferredEnd = true
					} else {
						fl.extraEnds = append(fl.extraEnds, x.Pos())
					}
				case bhNeutral:
					fl.neutrals = append(fl.neutrals, spanPass{pos: x.Pos(), callee: fn})
				default:
					fl.escapes = true
				}
			}
		}
	})
	return fl
}

// argBehavior looks up what the call's callee does with its argIdx-th
// parameter.
func (s *summaries) argBehavior(p *Package, call *ast.CallExpr, argIdx int) (*types.Func, spanBehavior) {
	if s == nil {
		return nil, bhUnknown
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil, bhUnknown
	}
	cn := s.nodes[fn]
	if cn == nil {
		return fn, bhUnknown
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || argIdx >= sig.Params().Len() ||
		(sig.Variadic() && argIdx >= sig.Params().Len()-1) {
		return fn, bhUnknown
	}
	params := s.spanParams(cn)
	if argIdx >= len(params) {
		return fn, bhUnknown
	}
	return fn, params[argIdx]
}

// ---------------------------------------------------------------------
// Error-origin summaries (errdrop).

// errOriginOf reports where the error returned by a pass-through
// wrapper originates, nil when n is not a wrapper.
func (s *summaries) errOriginOf(n *funcNode) *ErrOrigin {
	switch n.errState {
	case stInProgress:
		return nil
	case stDone:
		return n.errOrigin
	}
	n.errState = stInProgress
	n.errOrigin = s.errOriginScan(n)
	n.errState = stDone
	return n.errOrigin
}

func (s *summaries) errOriginScan(n *funcNode) *ErrOrigin {
	p := n.pkg
	sig, ok := n.fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	returnsErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			returnsErr = true
		}
	}
	if !returnsErr {
		return nil
	}
	var origin *ErrOrigin
	inspectSkipFuncLits(n.decl.Body, func(m ast.Node) {
		if origin != nil {
			return
		}
		ret, ok := m.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, r := range ret.Results {
			call, ok := unparen(r).(*ast.CallExpr)
			if !ok || !p.resultsIncludeError(call) {
				continue
			}
			origin = s.callOrigin(p, call)
			return
		}
	})
	return origin
}

// callOrigin chases the error through nested wrappers to the innermost
// producing call.
func (s *summaries) callOrigin(p *Package, call *ast.CallExpr) *ErrOrigin {
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil // interface/function-value call: nothing nameable
	}
	if cn := s.nodes[fn]; cn != nil {
		if inner := s.errOriginOf(cn); inner != nil {
			return inner
		}
	}
	return &ErrOrigin{From: shortFuncName(fn), Pos: p.Fset.Position(call.Pos())}
}

// ---------------------------------------------------------------------
// Goroutine summaries (goroleak).

// goroSignals reports whether n's body (transitively, skipping nested
// literals) marks a WaitGroup done or has a cancellation path.
func (s *summaries) goroSignals(n *funcNode) (done, cancel bool) {
	switch n.goroState {
	case stInProgress:
		return false, false
	case stDone:
		return n.goroDone, n.goroCancel
	}
	n.goroState = stInProgress
	n.goroDone, n.goroCancel = s.goroScan(n)
	n.goroState = stDone
	return n.goroDone, n.goroCancel
}

func (s *summaries) goroScan(n *funcNode) (done, cancel bool) {
	p := n.pkg
	inspectSkipFuncLits(n.decl.Body, func(m ast.Node) {
		switch x := m.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				cancel = true
			}
		case *ast.SelectStmt:
			cancel = true
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					cancel = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(p, x) {
				done = true
				return
			}
			fn := calleeFunc(p, x)
			if fn == nil || fn == n.fn {
				return
			}
			if cn := s.nodes[fn]; cn != nil {
				d, c := s.goroSignals(cn)
				done = done || d
				cancel = cancel || c
			}
		}
	})
	return done, cancel
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup receiver.
func isWaitGroupDone(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// ---------------------------------------------------------------------
// Solver-reach summaries (budgetstop).

// solverReach lists the unbudgeted iterative-solver call sites reachable
// from n.  linalg's own internals are exempt (the entry points wrap the
// kernels).  A cycle resolves to "no reach" — anything only visible
// through the back edge is already recorded on the first pass.
func (s *summaries) solverReach(n *funcNode) []SolverFact {
	switch n.solverState {
	case stInProgress:
		return nil
	case stDone:
		return n.solver
	}
	n.solverState = stInProgress
	n.solver = s.solverScan(n)
	n.solverState = stDone
	return n.solver
}

func (s *summaries) solverScan(n *funcNode) []SolverFact {
	if strings.HasSuffix(n.pkg.ImportPath, "/internal/linalg") {
		return nil
	}
	p := n.pkg
	var out []SolverFact
	seen := make(map[token.Position]bool)
	add := func(sf SolverFact) {
		if len(out) < maxSolverFacts && !seen[sf.Pos] {
			seen[sf.Pos] = true
			out = append(out, sf)
		}
	}
	// Function literals and go statements are included: sweep drivers do
	// their solves inside closures handed to the parallel pool.
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, isEntry := solverEntryCall(p, call); isEntry {
			if !callCarriesBudget(p, call, n.decl) {
				add(SolverFact{Entry: "linalg." + name, Pos: p.Fset.Position(call.Pos())})
			}
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn == n.fn {
			return true
		}
		cn := s.nodes[fn]
		if cn == nil {
			return true
		}
		for _, sf := range s.solverReach(cn) {
			add(SolverFact{Entry: sf.Entry, Pos: sf.Pos, Chain: prependChain(shortFuncName(fn), sf.Chain)})
		}
		return true
	})
	return out
}

// solverEntryCall matches calls to the linalg iterative entry points.
func solverEntryCall(p *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "/internal/linalg") {
		return "", false
	}
	switch fn.Name() {
	case "CG", "CGOpt", "BiCGSTAB", "BiCGSTABOpt":
		return fn.Name(), true
	}
	return "", false
}

// callCarriesBudget decides whether a solver entry call threads a
// Stop/budget.  decl is the enclosing function declaration, scanned for
// how the options value was built.  Unresolvable shapes err toward
// "budgeted" (silence); the plain CG/BiCGSTAB entries — which take no
// options at all — and a missing or nil options argument are unbudgeted.
func callCarriesBudget(p *Package, call *ast.CallExpr, decl *ast.FuncDecl) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return true
	}
	if fn.Name() == "CG" || fn.Name() == "BiCGSTAB" {
		return false
	}
	for _, a := range call.Args {
		if !isIterOptionsPtr(p, a) {
			continue
		}
		return iterOptionsHasStop(p, a, decl)
	}
	return false // *Opt entry with a nil/absent options argument
}

// isIterOptionsPtr reports whether e has type *linalg.IterOptions
// (matched by path suffix so test stubs work).
func isIterOptionsPtr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() != nil &&
		named.Obj().Name() == "IterOptions" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "/internal/linalg")
}

// iterOptionsHasStop decides whether the options expression carries a
// Stop: a composite literal with a Stop key, an identifier that is a
// parameter (the caller's budget is checked at the caller's site), an
// identifier whose Stop field is assigned in decl, or an identifier
// built by a helper call.  Anything unrecognizable counts as budgeted.
func iterOptionsHasStop(p *Package, arg ast.Expr, decl *ast.FuncDecl) bool {
	switch x := unparen(arg).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := x.X.(*ast.CompositeLit); ok {
				return compositeHasStop(cl)
			}
		}
		return true
	case *ast.CompositeLit:
		return compositeHasStop(x)
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			return true
		}
		return identOptionsHasStop(p, obj, decl)
	default:
		return true
	}
}

// compositeHasStop reports whether the literal sets the Stop field.
func compositeHasStop(cl *ast.CompositeLit) bool {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Stop" {
			return true
		}
	}
	return false
}

// identOptionsHasStop traces an options identifier through decl: is it a
// parameter, was its Stop field ever assigned, or was it defined from a
// Stop-carrying literal or a builder call?
func identOptionsHasStop(p *Package, obj types.Object, decl *ast.FuncDecl) bool {
	if decl == nil {
		return true
	}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if p.Info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	definedWithStop, stopAssigned, definedPlain := false, false, false
	ast.Inspect(decl.Body, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					stopAssigned = true
				}
				continue
			}
			id, ok := lhs.(*ast.Ident)
			if !ok || (p.Info.Defs[id] != obj && p.Info.Uses[id] != obj) {
				continue
			}
			if i >= len(as.Rhs) {
				continue // multi-value assignment; opaque, leave undecided
			}
			switch rhs := unparen(as.Rhs[i]).(type) {
			case *ast.UnaryExpr:
				if cl, ok := rhs.X.(*ast.CompositeLit); ok && rhs.Op == token.AND {
					if compositeHasStop(cl) {
						definedWithStop = true
					} else {
						definedPlain = true
					}
				}
			case *ast.CompositeLit:
				if compositeHasStop(rhs) {
					definedWithStop = true
				} else {
					definedPlain = true
				}
			case *ast.CallExpr:
				definedWithStop = true // a builder constructed it; trust it
			}
		}
		return true
	})
	if stopAssigned || definedWithStop {
		return true
	}
	if definedPlain {
		return false // literal without Stop and never patched
	}
	return true // origin unknown (package-level, closure capture, ...)
}
