// Content-hash result cache.  Lint findings for a package are a pure
// function of (a) the package's own non-test sources, (b) the sources
// of its transitive module-internal dependencies — facts and type
// information flow only along the import graph — and (c) the rule set.
// The cache key folds all three together, so a hit can skip parsing,
// type-checking and rule execution for the package entirely; a cached
// whole-module re-run touches nothing but file bytes and import lines.
//
// Keys are computed concurrently: every package directory is hashed and
// imports-scanned on its own goroutine (token.FileSet and
// parser.ParseFile are safe for concurrent use), then the dependency
// closure is folded over the memoized per-directory hashes.
package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// cacheSchemaVersion invalidates every entry when the on-disk format or
// the analysis semantics change in a way the rule-set salt cannot see.
// v2: findings carry related locations; interprocedural summaries feed
// the rules (the key already covers callee sources via the dep closure).
// v3: findings carry machine-applicable fixes; the value-flow engine
// (taint, lock-order, atomic-mix facts) feeds four new rules.
const cacheSchemaVersion = "aeropacklint-cache/v3"

// Cache is a directory of per-package finding files keyed by content
// hash.  The zero value (empty Dir) is a disabled cache.
type Cache struct {
	// Dir holds one JSON file per (package, content) key.
	Dir string
}

// DefaultCacheDir returns the per-user cache directory for the module
// rooted at root, namespaced by the root path so two checkouts never
// share entries.
func DefaultCacheDir(root string) string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	h := sha256.Sum256([]byte(root))
	return filepath.Join(base, "aeropacklint", hex.EncodeToString(h[:8]))
}

// cachedFinding is the serialized form of a Finding; positions are
// module-root-relative so entries survive checkout moves.
type cachedFinding struct {
	File    string          `json:"file"`
	Line    int             `json:"line"`
	Column  int             `json:"column"`
	Rule    string          `json:"rule"`
	Msg     string          `json:"msg"`
	Hint    string          `json:"hint,omitempty"`
	Related []cachedRelated `json:"related,omitempty"`
	Fix     *Fix            `json:"fix,omitempty"`
}

// cachedRelated is the serialized form of one Related location.
type cachedRelated struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Msg    string `json:"msg"`
}

// Get returns the cached findings for key, with ok=false on any miss or
// decode problem (a corrupt entry behaves like a miss).
func (c *Cache) Get(key string) ([]Finding, bool) {
	if c == nil || c.Dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.Dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var cfs []cachedFinding
	if err := json.Unmarshal(data, &cfs); err != nil {
		return nil, false
	}
	findings := make([]Finding, len(cfs))
	for i, cf := range cfs {
		findings[i] = Finding{
			Pos:  token.Position{Filename: cf.File, Line: cf.Line, Column: cf.Column},
			Rule: cf.Rule,
			Msg:  cf.Msg,
			Hint: cf.Hint,
			Fix:  cf.Fix,
		}
		for _, cr := range cf.Related {
			findings[i].Related = append(findings[i].Related, Related{
				Pos: token.Position{Filename: cr.File, Line: cr.Line, Column: cr.Column},
				Msg: cr.Msg,
			})
		}
	}
	return findings, true
}

// Put stores findings (already root-relative) under key.  The write is
// atomic-enough for a cache: a rename from a temp file in the same dir.
func (c *Cache) Put(key string, findings []Finding) error {
	if c == nil || c.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	cfs := make([]cachedFinding, len(findings))
	for i, f := range findings {
		cfs[i] = cachedFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
			Rule: f.Rule, Msg: f.Msg, Hint: f.Hint, Fix: f.Fix,
		}
		for _, r := range f.Related {
			cfs[i].Related = append(cfs[i].Related, cachedRelated{
				File: r.Pos.Filename, Line: r.Pos.Line, Column: r.Pos.Column, Msg: r.Msg,
			})
		}
	}
	data, err := json.Marshal(cfs)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(c.Dir, key+".json"))
}

// ruleSalt folds the active rule set (names and docs — a reworded doc
// implies reworded hints) into every key.
func ruleSalt(rules []Rule) string {
	h := sha256.New()
	fmt.Fprintln(h, cacheSchemaVersion)
	for _, r := range rules {
		fmt.Fprintln(h, r.Name(), r.Doc())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// dirState is the concurrently-computed per-directory raw material for
// key derivation.
type dirState struct {
	ownHash string   // hash of file names + contents
	deps    []string // module-internal dependency directories
	err     error
}

// keyer computes cache keys for package directories of one module.
type keyer struct {
	l      *Loader
	salt   string
	states map[string]*dirState
	keys   map[string]string
}

// newKeyer hashes and imports-scans every directory reachable from dirs
// (the requested set plus the module-internal dependency closure), each
// on its own goroutine.
func newKeyer(l *Loader, rules []Rule, dirs []string) *keyer {
	k := &keyer{l: l, salt: ruleSalt(rules), states: make(map[string]*dirState), keys: make(map[string]string)}
	pending := append([]string(nil), dirs...)
	var mu sync.Mutex
	for len(pending) > 0 {
		batch := pending
		pending = nil
		var wg sync.WaitGroup
		for _, dir := range batch {
			mu.Lock()
			_, seen := k.states[dir]
			if !seen {
				k.states[dir] = &dirState{} // reserve
			}
			mu.Unlock()
			if seen {
				continue
			}
			wg.Add(1)
			go func(dir string) {
				defer wg.Done()
				st := k.scanDir(dir)
				mu.Lock()
				k.states[dir] = st
				mu.Unlock()
			}(dir)
		}
		wg.Wait()
		// Queue newly-discovered dependency directories.
		for _, dir := range batch {
			st := k.states[dir]
			if st.err != nil {
				continue
			}
			for _, dep := range st.deps {
				if _, seen := k.states[dep]; !seen {
					pending = append(pending, dep)
				}
			}
		}
	}
	return k
}

// scanDir hashes the directory's non-test sources and extracts its
// module-internal imports with an imports-only parse.
func (k *keyer) scanDir(dir string) *dirState {
	st := &dirState{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		st.err = err
		return st
	}
	h := sha256.New()
	fset := token.NewFileSet()
	depSet := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			st.err = err
			return st
		}
		fmt.Fprintln(h, name, len(data))
		h.Write(data)
		f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
		if err != nil {
			st.err = err
			return st
		}
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if depDir, ok := k.l.dirFor(ipath); ok {
				depSet[depDir] = true
			}
		}
	}
	st.ownHash = hex.EncodeToString(h.Sum(nil))
	for dep := range depSet {
		if dep != dir {
			st.deps = append(st.deps, dep)
		}
	}
	sort.Strings(st.deps)
	return st
}

// Key returns the cache key for dir: a hash over the rule salt, the
// directory's own content hash and the keys of its dependency closure.
// The error reports the first unreadable directory in the closure.
func (k *keyer) Key(dir string) (string, error) {
	if key, ok := k.keys[dir]; ok {
		return key, nil
	}
	st, ok := k.states[dir]
	if !ok {
		return "", fmt.Errorf("lint: cache key requested for unscanned dir %s", dir)
	}
	if st.err != nil {
		return "", st.err
	}
	// Mark in progress; Go forbids import cycles so recursion terminates,
	// but a malformed tree should error instead of recursing forever.
	k.keys[dir] = ""
	h := sha256.New()
	fmt.Fprintln(h, k.salt)
	// The package's identity (its module-relative path) is part of the
	// key: findings embed file paths, so two content-identical packages
	// must not share an entry.
	if rel, err := filepath.Rel(k.l.Root, dir); err == nil {
		fmt.Fprintln(h, filepath.ToSlash(rel))
	}
	fmt.Fprintln(h, st.ownHash)
	for _, dep := range st.deps {
		depKey, err := k.Key(dep)
		if err != nil {
			return "", err
		}
		if depKey == "" {
			return "", fmt.Errorf("lint: import cycle through %s", dep)
		}
		fmt.Fprintln(h, depKey)
	}
	key := hex.EncodeToString(h.Sum(nil))
	k.keys[dir] = key
	return key, nil
}
