package lint

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// loadTestPackage parses one testdata source file and type-checks it
// under a fake import path, so each rule sees the package scope it would
// see in the real tree (nanguard and panicpolicy key off the path).
func loadTestPackage(t *testing.T, path, importPath string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	pkg, _ := conf.Check(importPath, l.Fset, []*ast.File{f}, info)
	p := &Package{
		ImportPath: importPath,
		Fset:       l.Fset,
		Files:      []*ast.File{f},
		Pkg:        pkg,
		Info:       info,
	}
	// Gather cross-package facts over the dependencies the import above
	// pulled in (e.g. linalg's %w wrap of ErrStopped) plus the test
	// package itself, mirroring the RunModule pipeline.
	facts := NewFacts()
	facts.Gather(append(l.Loaded(), p))
	p.Facts = facts
	return p
}

func ruleByName(t *testing.T, name string) Rule {
	t.Helper()
	for _, r := range Rules() {
		if r.Name() == name {
			return r
		}
	}
	t.Fatalf("rule %q not registered", name)
	return nil
}

// TestGolden runs each rule over its testdata source and compares the
// surviving findings (after //lint:allow filtering) against a golden
// file.  Every source demonstrates at least one flagged violation and
// one suppressed line; run with -update to regenerate.
func TestGolden(t *testing.T) {
	cases := []struct {
		name       string
		rule       string
		src        string
		importPath string
	}{
		{"unitsafety", "unitsafety", "testdata/unitsafety_src.go", "aeropack/internal/thermal"},
		{"unitsafety_fact", "unitsafety", "testdata/unitsafety_fact_src.go", "aeropack/internal/cosee"},
		{"floatcmp", "floatcmp", "testdata/floatcmp_src.go", "aeropack/internal/thermal"},
		{"panicpolicy", "panicpolicy", "testdata/panicpolicy_src.go", "aeropack/internal/thermal"},
		{"panicpolicy_linalg", "panicpolicy", "testdata/panicpolicy_linalg_src.go", "aeropack/internal/linalg"},
		{"nanguard", "nanguard", "testdata/nanguard_src.go", "aeropack/internal/thermal"},
		{"spanleak", "spanleak", "testdata/spanleak_src.go", "aeropack/internal/thermal"},
		{"spanleak_ipa", "spanleak", "testdata/spanleak_ipa_src.go", "aeropack/internal/thermal"},
		{"detguard", "detguard", "testdata/detguard_src.go", "aeropack/internal/cosee"},
		{"errdrop", "errdrop", "testdata/errdrop_src.go", "aeropack/internal/cosee"},
		{"lockheld", "lockheld", "testdata/lockheld_src.go", "aeropack/internal/cosee"},
		{"lockheld_ipa", "lockheld", "testdata/lockheld_ipa_src.go", "aeropack/internal/cosee"},
		{"budgetstop", "budgetstop", "testdata/budgetstop_src.go", "aeropack/internal/cosee"},
		{"goroleak", "goroleak", "testdata/goroleak_src.go", "aeropack/internal/cosee"},
		{"hotalloc", "hotalloc", "testdata/hotalloc_src.go", "aeropack/internal/cosee"},
		{"taintsize", "taintsize", "testdata/taintsize_src.go", "aeropack/internal/serve"},
		{"stopflow", "stopflow", "testdata/stopflow_src.go", "aeropack/internal/serve"},
		{"lockorder", "lockorder", "testdata/lockorder_src.go", "aeropack/internal/cosee"},
		{"atomicmix", "atomicmix", "testdata/atomicmix_src.go", "aeropack/internal/cosee"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := loadTestPackage(t, tc.src, tc.importPath)
			findings := RunRules([]*Package{p}, []Rule{ruleByName(t, tc.rule)})
			var b strings.Builder
			for _, f := range findings {
				b.WriteString(f.String())
				b.WriteByte('\n')
			}
			got := b.String()
			if len(findings) == 0 {
				t.Fatal("testdata must demonstrate at least one flagged violation")
			}

			golden := "testdata/" + tc.name + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run go test -run Golden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}

			// The allow directive in the source must have suppressed its
			// line: no reported position may coincide with a directive.
			src, err := os.ReadFile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(src), allowDirective) {
				t.Fatalf("%s must demonstrate a //lint:allow suppression", tc.src)
			}
			for i, line := range strings.Split(string(src), "\n") {
				if !strings.Contains(line, allowDirective) {
					continue
				}
				for _, f := range findings {
					if f.Pos.Line == i+1 || f.Pos.Line == i+2 {
						t.Errorf("finding at line %d should be suppressed by the directive at line %d", f.Pos.Line, i+1)
					}
				}
			}
		})
	}
}

// TestRulesRegistered pins the rule set: all fifteen analyzers register
// themselves and come back sorted by name.
func TestRulesRegistered(t *testing.T) {
	var names []string
	for _, r := range Rules() {
		names = append(names, r.Name())
		if r.Doc() == "" {
			t.Errorf("rule %s has no doc line", r.Name())
		}
	}
	want := []string{"atomicmix", "budgetstop", "detguard", "errdrop", "floatcmp",
		"goroleak", "hotalloc", "lockheld", "lockorder", "nanguard", "panicpolicy",
		"spanleak", "stopflow", "taintsize", "unitsafety"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("registered rules = %v, want %v", names, want)
	}
}

// TestAllowDirectiveCoversBothPlacements checks the directive covers its
// own line (trailing placement) and the next line (preceding placement).
func TestAllowDirectiveCoversBothPlacements(t *testing.T) {
	p := loadTestPackage(t, "testdata/floatcmp_src.go", "aeropack/internal/thermal")
	found := false
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				if !p.Allowed("floatcmp", line) || !p.Allowed("floatcmp", line+1) {
					t.Errorf("directive at line %d should cover lines %d and %d", line, line, line+1)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no allow directive found in floatcmp testdata")
	}
	if p.Allowed("floatcmp", 1) {
		t.Error("line 1 should not be suppressed")
	}
}

// TestLoadAllWholeModule smoke-tests the loader against the real module:
// it must discover a healthy number of packages, including this one.
func TestLoadAllWholeModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll(l.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("LoadAll found only %d packages", len(pkgs))
	}
	seen := false
	for _, p := range pkgs {
		if p.ImportPath == "aeropack/internal/lint" {
			seen = true
		}
		if p.Pkg == nil {
			t.Errorf("%s: no type information", p.ImportPath)
		}
	}
	if !seen {
		t.Error("LoadAll missed aeropack/internal/lint")
	}
}
