// The spanleak rule: every obs.Span started in a function must be
// ended on every return path.  A leaked span never gets a duration, so
// the Chrome trace shows a region that swallows everything after it and
// the span tree golden tests drift — the telemetry equivalent of a
// resource leak.
//
// The check is lexical, which matches how the codebase writes spans:
// either `defer sp.End()` right after the start, or explicit `sp.End()`
// calls that appear before every subsequent `return`.  Span values that
// escape the function (returned, stored in a struct field or another
// variable, or passed to another function) are out of scope: ownership
// moved, and the receiver is responsible for ending them.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

type spanleakRule struct{}

func init() { Register(spanleakRule{}) }

func (spanleakRule) Name() string { return "spanleak" }

func (spanleakRule) Doc() string {
	return "every obs span started on a path must be End()ed on all returns (defer sp.End() or explicit End before each return)"
}

// isObsSpanPtr reports whether t is *obs.Span (matched by package path
// suffix so the rule also works on testdata packages).
func isObsSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Span" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "/internal/obs")
}

// spanStart is one tracked `v := ...Start(...)` site.
type spanStart struct {
	name *ast.Ident // the span variable
	pos  token.Pos  // position of the start call
}

func (spanleakRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	// The obs package itself constructs and hands out spans; its
	// internals are the one place unended spans are legitimate.
	if strings.HasSuffix(p.ImportPath, "/internal/obs") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, checkSpanBody(p, body)...)
			}
			return true
		})
	}
	return out
}

// checkSpanBody analyses one function body.  Nested function literals
// are separate scopes: starts inside them are checked when ast.Inspect
// reaches the literal, and their bodies are ignored here.
//
// Hand-offs are resolved through the call-graph summaries: passing the
// span to a callee that ends it counts as an End, a callee that merely
// uses it leaves the obligation with this function (and is cited in the
// finding), and a callee that stores or forwards it — or one without a
// summary — is an ownership transfer that ends the analysis, exactly as
// in the intraprocedural v2 rule.
func checkSpanBody(p *Package, body *ast.BlockStmt) []Finding {
	starts := collectSpanStarts(p, body)
	if len(starts) == 0 {
		return nil
	}
	sums := p.Facts.summaries()
	var out []Finding
	for _, st := range starts {
		obj := p.Info.Defs[st.name]
		if obj == nil {
			obj = p.Info.Uses[st.name]
		}
		if obj == nil {
			continue
		}
		fl := sums.spanFlow(p, body, obj)
		if fl.escapes {
			continue
		}
		if fl.deferredEnd || hasDeferredEnd(p, body, obj) {
			continue
		}
		if line, leaked := firstLeakyReturn(p, body, obj, st.pos, fl.extraEnds); leaked {
			f := Finding{
				Pos:  p.Fset.Position(st.pos),
				Rule: "spanleak",
				Msg:  "span " + st.name.Name + " is not ended on the return path at line " + strconv.Itoa(line),
				Hint: "defer " + st.name.Name + ".End() after the Start, or call End before every return",
			}
			for _, np := range fl.neutrals {
				f.Msg += "; " + shortFuncName(np.callee) + " uses it without ending it"
				f.Related = append(f.Related, Related{
					Pos: p.Fset.Position(np.pos),
					Msg: shortFuncName(np.callee) + " uses the span but never calls End",
				})
			}
			out = append(out, f)
		}
	}
	return out
}

// collectSpanStarts finds `v := call(...)` / `v = call(...)` where the
// call yields *obs.Span, skipping nested function literals.
func collectSpanStarts(p *Package, body *ast.BlockStmt) []spanStart {
	var starts []spanStart
	inspectSkipFuncLits(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tv, ok := p.Info.Types[call]
		if !ok || tv.Type == nil || !isObsSpanPtr(tv.Type) {
			return
		}
		starts = append(starts, spanStart{name: id, pos: call.Pos()})
	})
	return starts
}

// inspectSkipFuncLits walks the body without descending into nested
// function literals (they are independent span scopes).
func inspectSkipFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// usesObject reports whether expr mentions obj as a bare identifier.
func usesObject(p *Package, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasDeferredEnd reports whether the body contains `defer v.End()`.
func hasDeferredEnd(p *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	inspectSkipFuncLits(body, func(n ast.Node) {
		ds, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return
		}
		if isEndCallOn(p, ds.Call, obj) {
			found = true
		}
	})
	return found
}

// isEndCallOn reports whether call is v.End() for the given span object.
func isEndCallOn(p *Package, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && p.Info.Uses[id] == obj
}

// firstLeakyReturn scans every return statement lexically after the
// start call; a return leaks the span unless an End call on it appears
// lexically in between, or the return sits under a `v == nil` guard.
// A function body that falls off its closing brace is treated as one
// more return at the brace.  extraEnds are additional positions that
// end the span — calls to callees whose summary proves they End it.
func firstLeakyReturn(p *Package, body *ast.BlockStmt, obj types.Object, startPos token.Pos, extraEnds []token.Pos) (int, bool) {
	// Positions of every v.End() call (deferred or not), plus the
	// interprocedural End sites.
	ends := append([]token.Pos(nil), extraEnds...)
	inspectSkipFuncLits(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && isEndCallOn(p, call, obj) {
			ends = append(ends, call.Pos())
		}
	})
	endedBefore := func(pos token.Pos) bool {
		for _, e := range ends {
			if e > startPos && e < pos {
				return true
			}
		}
		return false
	}

	leakLine, leaked := 0, false
	var walk func(n ast.Node, guarded bool)
	walk = func(n ast.Node, guarded bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if leaked {
				return false
			}
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.IfStmt:
				// Recurse manually so the nil-guard flag tracks scope.
				g := guarded || condNilChecks(p, x.Cond, obj)
				if x.Init != nil {
					walk(x.Init, guarded)
				}
				walk(x.Body, g)
				if x.Else != nil {
					walk(x.Else, guarded)
				}
				return false
			case *ast.ReturnStmt:
				if x.Pos() > startPos && !guarded && !endedBefore(x.Pos()) {
					leakLine, leaked = p.Fset.Position(x.Pos()).Line, true
				}
				return false
			}
			return true
		})
	}
	walk(body, false)
	if leaked {
		return leakLine, true
	}
	// Implicit return at the closing brace.
	if body.End() > startPos && !endedBefore(body.End()) {
		return p.Fset.Position(body.Rbrace).Line, true
	}
	return 0, false
}

// condNilChecks reports whether the condition contains `v == nil`
// (possibly inside a && / || chain), which marks the branch as the
// span-disabled path where returning without End is fine.
func condNilChecks(p *Package, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		x, y := be.X, be.Y
		if isNilIdent(y) && usesObject(p, x, obj) || isNilIdent(x) && usesObject(p, y, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
