// The budgetstop rule: every path from a co-design driver package
// (internal/cosee, internal/envtest, internal/core) into the linalg
// iterative solvers must carry an IterOptions.Stop or wall-clock/
// iteration budget.  A sweep evaluates thousands of candidate designs;
// one near-singular operator without a budget wedges the whole campaign
// — and the upcoming placement-optimization and aeropackd workloads
// inherit whatever discipline these drivers enforce today.
//
// The check roots at every exported function of a driver package and
// uses the call-graph summaries to follow helpers — including closures
// handed to the parallel pool and helpers in other in-module packages —
// down to the solver entries.  Plain linalg.CG / linalg.BiCGSTAB take
// no options and are always unbudgeted; the *Opt variants are budgeted
// when their IterOptions demonstrably carries a Stop (composite literal
// with a Stop key, a Stop field assignment, a parameter threaded from
// the caller, or a builder call).  Unresolvable shapes err toward
// silence.  Findings land at the driver's call site and carry the full
// call chain plus a related location at the unbudgeted solver call.
package lint

import (
	"go/ast"
	"strings"
)

type budgetstopRule struct{}

func init() { Register(budgetstopRule{}) }

func (budgetstopRule) Name() string { return "budgetstop" }

func (budgetstopRule) Doc() string {
	return "every linalg iterative solve reachable from a cosee/envtest/core driver must carry an IterOptions.Stop/budget"
}

// budgetHint is the shared fix hint.
const budgetHint = "thread a linalg.IterOptions.Stop (wall-clock or iteration budget) down this path, or solve through robust.Chain"

// driverPackage reports whether importPath is one of the sweep/campaign
// driver packages the rule roots at.
func driverPackage(importPath string) bool {
	for _, suffix := range []string{"/internal/cosee", "/internal/envtest", "/internal/core"} {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

func (budgetstopRule) Check(p *Package) []Finding {
	if p.Info == nil || !driverPackage(p.ImportPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			out = append(out, checkBudgetRoots(p, fd)...)
		}
	}
	return out
}

// checkBudgetRoots walks one exported driver function — including its
// function literals and go statements, where the sweep work actually
// lives — and flags every call that is, or transitively reaches, an
// unbudgeted solver entry.  Unexported helpers of the driver package
// are covered through the summaries of the calls that reach them.
func checkBudgetRoots(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, isEntry := solverEntryCall(p, call); isEntry {
			if !callCarriesBudget(p, call, fd) {
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "budgetstop",
					Msg: "driver " + fd.Name.Name + " calls linalg." + name +
						" without a Stop/budget",
					Hint: budgetHint,
				})
			}
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		for _, sf := range p.Facts.SolverReach(fn) {
			chain := prependChain(shortFuncName(fn), sf.Chain)
			out = append(out, Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "budgetstop",
				Msg: "driver " + fd.Name.Name + " reaches unbudgeted " + sf.Entry +
					" via " + strings.Join(chain, " → "),
				Hint: budgetHint,
				Related: []Related{{
					Pos: sf.Pos,
					Msg: sf.Entry + " is called without IterOptions.Stop here",
				}},
			})
		}
		return true
	})
	return out
}
