// The goroleak rule: library code must not start goroutines it never
// joins or cancels.  aeropack's concurrency is funnelled through
// internal/parallel precisely so the solver stack stays synchronous
// from the caller's point of view; a stray `go` whose lifetime nobody
// bounds outlives the request that spawned it, keeps captured matrices
// alive, and races with the next sweep's telemetry.
//
// A goroutine counts as managed when any of these hold:
//
//   - the launching function also waits: a `.Wait()` call, a channel
//     receive, a select, or ranging over a channel appears in the same
//     body (the join lives next to the launch, as in internal/parallel);
//   - the goroutine is self-terminating: its function literal calls
//     `wg.Done()` on a sync.WaitGroup (someone is waiting on that
//     group) or invokes a cancel/stop path;
//   - a named callee's call-graph summary proves the same — its body
//     signals a WaitGroup or cancels a context.
//
// Everything else is flagged at the `go` statement.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type goroleakRule struct{}

func init() { Register(goroleakRule{}) }

func (goroleakRule) Name() string { return "goroleak" }

func (goroleakRule) Doc() string {
	return "no goroutine in library code without a join (Wait/channel) in the launcher or a WaitGroup/cancel signal in the goroutine"
}

func (goroleakRule) Check(p *Package) []Finding {
	if p.Info == nil || !strings.Contains(p.ImportPath, "/internal/") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, checkGoroBody(p, body)...)
			}
			return true
		})
	}
	return out
}

// checkGoroBody flags unmanaged go statements launched directly from
// one function body (nested literals are their own launchers and are
// visited separately by Check's walk).
func checkGoroBody(p *Package, body *ast.BlockStmt) []Finding {
	var gos []*ast.GoStmt
	inspectSkipFuncLits(body, func(n ast.Node) {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
	})
	if len(gos) == 0 {
		return nil
	}
	if bodyHasJoin(p, body) {
		return nil
	}
	var out []Finding
	for _, g := range gos {
		if goroutineSelfManaged(p, g.Call) {
			continue
		}
		out = append(out, Finding{
			Pos:  p.Fset.Position(g.Pos()),
			Rule: "goroleak",
			Msg:  "goroutine is started but never joined or cancelled",
			Hint: "wg.Add/defer wg.Done + wg.Wait in the launcher, or hand the work to internal/parallel",
		})
	}
	return out
}

// bodyHasJoin reports whether the launching body itself waits on
// something: a .Wait() call, a channel receive, a select, or a range
// over a channel.  Function literals are skipped — a join inside a
// different goroutine does not bound this launcher's children.
func bodyHasJoin(p *Package, body *ast.BlockStmt) bool {
	found := false
	inspectSkipFuncLits(body, func(n ast.Node) {
		if found {
			return
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
	})
	return found
}

// goroutineSelfManaged reports whether the spawned call's own body
// signals completion — calls wg.Done (deferred or not) or runs a
// cancel path — either directly (function literal) or per the named
// callee's summary.
func goroutineSelfManaged(p *Package, call *ast.CallExpr) bool {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return funcLitSignals(p, lit.Body)
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		// Function value / interface method: unresolvable, stay silent.
		return true
	}
	done, cancel, known := p.Facts.GoroSignals(fn)
	if !known {
		// No summary (std lib or out-of-module): conservative silence.
		return true
	}
	return done || cancel
}

// funcLitSignals scans a goroutine literal's body for a WaitGroup.Done
// call or a cancel()/Stop() invocation, including deferred ones.
func funcLitSignals(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWaitGroupDone(p, call) || isCancelCall(p, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCancelCall recognises invoking a context.CancelFunc value or a
// method named Cancel/Stop — the goroutine is tearing something down,
// which bounds its own lifetime.
func isCancelCall(p *Package, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[fun]; obj != nil {
			if named, ok := obj.Type().(*types.Named); ok {
				if named.Obj().Name() == "CancelFunc" && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == "context" {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Cancel" || fun.Sel.Name == "Stop" {
			return true
		}
	}
	return false
}
