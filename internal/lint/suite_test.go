package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempModule lays out a throwaway module so suite tests can mutate
// sources without touching the real tree.  files maps module-relative
// paths to contents; a go.mod for module tmpmod is added automatically.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestRunModuleCache drives the content-hash cache through its three
// states: cold miss, warm hit with identical findings, and invalidation
// after the package content changes.
func TestRunModuleCache(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n\n// Offset trips unitsafety.\nfunc Offset(c float64) float64 { return c + 273.15 }\n",
	})
	cache := &Cache{Dir: filepath.Join(root, "lintcache")}
	opts := ModuleOptions{Dir: root, Patterns: []string{"./..."}, Cache: cache}

	cold, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != 1 {
		t.Errorf("cold run: hits=%d misses=%d, want 0/1", cold.CacheHits, cold.CacheMisses)
	}
	if len(cold.Findings) != 1 || cold.Findings[0].Rule != "unitsafety" {
		t.Fatalf("cold findings = %v, want one unitsafety hit", cold.Findings)
	}
	if got := filepath.ToSlash(cold.Findings[0].Pos.Filename); got != "pkg/pkg.go" {
		t.Errorf("finding position %q not module-root-relative", got)
	}

	warm, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 1 || warm.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want 1/0", warm.CacheHits, warm.CacheMisses)
	}
	if len(warm.Findings) != 1 || warm.Findings[0].String() != cold.Findings[0].String() {
		t.Errorf("cached findings diverge: cold %v, warm %v", cold.Findings, warm.Findings)
	}

	// Touching the content must invalidate the key and surface the new
	// finding alongside the old one.
	src := "package pkg\n\n// Offset trips unitsafety.\nfunc Offset(c float64) float64 { return c + 273.15 }\n\n// Spin trips it again.\nfunc Spin(rpm float64) float64 { return rpm / 3600 }\n"
	if err := os.WriteFile(filepath.Join(root, "pkg", "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if edited.CacheHits != 0 || edited.CacheMisses != 1 {
		t.Errorf("edited run: hits=%d misses=%d, want 0/1 (content change must invalidate)",
			edited.CacheHits, edited.CacheMisses)
	}
	if len(edited.Findings) != 2 {
		t.Errorf("edited findings = %v, want both literals flagged", edited.Findings)
	}
}

// TestRunModuleCacheDependencyInvalidation checks the key covers
// transitive in-module deps: editing an imported package invalidates the
// importer even though its own files are untouched.
func TestRunModuleCacheDependencyInvalidation(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"base/base.go": "package base\n\n// Scale is a harmless constant.\nconst Scale = 2.0\n",
		"app/app.go":   "package app\n\nimport \"tmpmod/base\"\n\n// Use keeps the import live.\nfunc Use(x float64) float64 { return x * base.Scale }\n",
	})
	cache := &Cache{Dir: filepath.Join(root, "lintcache")}
	opts := ModuleOptions{Dir: root, Patterns: []string{"app"}, Cache: cache}

	if _, err := RunModule(opts); err != nil {
		t.Fatal(err)
	}
	warm, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 1 {
		t.Fatalf("warm run should hit, got hits=%d misses=%d", warm.CacheHits, warm.CacheMisses)
	}

	// Redefine the dependency's constant as a conversion factor: app's
	// own bytes are unchanged, but its key must rotate with base.
	src := "package base\n\n// Scale became a conversion factor.\nconst Scale = 3600.0\n"
	if err := os.WriteFile(filepath.Join(root, "base", "base.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if edited.CacheMisses != 1 {
		t.Errorf("dependency edit did not invalidate the importer: hits=%d misses=%d",
			edited.CacheHits, edited.CacheMisses)
	}
	// And the cross-package fact now fires in app without any literal.
	if len(edited.Findings) != 1 || edited.Findings[0].Rule != "unitsafety" ||
		!strings.Contains(edited.Findings[0].Msg, "base.Scale") {
		t.Errorf("findings = %v, want a unitsafety fact hit on base.Scale", edited.Findings)
	}
}

// TestSummaryCacheInvalidation is the interprocedural twin of the
// dependency-invalidation test: a caller is flagged because its callee's
// summary blocks; editing only the callee's body must rotate the
// caller's key and flip the caller's findings — a cached interprocedural
// result may never outlive the callee body it was derived from.
func TestSummaryCacheInvalidation(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"internal/util/util.go": "package util\n\n// Ping blocks on its channel.\nfunc Ping(c chan int) int { return <-c }\n",
		"internal/app/app.go": strings.Join([]string{
			"package app",
			"",
			"import (",
			"\t\"sync\"",
			"",
			"\t\"tmpmod/internal/util\"",
			")",
			"",
			"var mu sync.Mutex",
			"",
			"// Get calls the helper under the lock.",
			"func Get(c chan int) int {",
			"\tmu.Lock()",
			"\tv := util.Ping(c)",
			"\tmu.Unlock()",
			"\treturn v",
			"}",
			"",
		}, "\n"),
	})
	cache := &Cache{Dir: filepath.Join(root, "lintcache")}
	opts := ModuleOptions{Dir: root, Patterns: []string{"internal/app"}, Cache: cache}

	cold, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Findings) != 1 || cold.Findings[0].Rule != "lockheld" ||
		!strings.Contains(cold.Findings[0].Msg, "util.Ping") {
		t.Fatalf("cold findings = %v, want one interprocedural lockheld hit through util.Ping", cold.Findings)
	}
	if len(cold.Findings[0].Related) != 1 {
		t.Errorf("interprocedural finding should carry the blocking site as a related location, got %v",
			cold.Findings[0].Related)
	}

	warm, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 1 || len(warm.Findings) != 1 {
		t.Fatalf("warm run: hits=%d findings=%v, want a hit reproducing the finding", warm.CacheHits, warm.Findings)
	}
	if len(warm.Findings[0].Related) != 1 {
		t.Errorf("related locations must survive the cache round-trip, got %v", warm.Findings[0].Related)
	}

	// Make the callee non-blocking.  app's own bytes are untouched, but
	// its summary-derived finding must disappear, so the key must rotate.
	src := "package util\n\n// Ping no longer blocks.\nfunc Ping(c chan int) int { return len(c) }\n"
	if err := os.WriteFile(filepath.Join(root, "internal", "util", "util.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if edited.CacheMisses != 1 {
		t.Errorf("callee body edit did not invalidate the caller: hits=%d misses=%d",
			edited.CacheHits, edited.CacheMisses)
	}
	if len(edited.Findings) != 0 {
		t.Errorf("findings = %v, want none after the callee stopped blocking", edited.Findings)
	}
}

// TestSummaryMutualRecursionTerminates feeds the summary engine a
// mutually recursive pair; the computation must terminate (the on-stack
// marker breaks the cycle) and still see the blocking op through the
// recursion.
func TestSummaryMutualRecursionTerminates(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"internal/rec/rec.go": strings.Join([]string{
			"package rec",
			"",
			"import \"sync\"",
			"",
			"var mu sync.Mutex",
			"",
			"// Even and Odd recurse into each other; Odd blocks at the base",
			"// case.",
			"func Even(n int, c chan int) bool {",
			"\tif n == 0 {",
			"\t\treturn true",
			"\t}",
			"\treturn Odd(n-1, c)",
			"}",
			"",
			"func Odd(n int, c chan int) bool {",
			"\tif n == 0 {",
			"\t\t<-c",
			"\t\treturn false",
			"\t}",
			"\treturn Even(n-1, c)",
			"}",
			"",
			"// Run holds the lock across the recursive descent.",
			"func Run(c chan int) bool {",
			"\tmu.Lock()",
			"\tv := Even(3, c)",
			"\tmu.Unlock()",
			"\treturn v",
			"}",
			"",
		}, "\n"),
	})
	res, err := RunModule(ModuleOptions{Dir: root, Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	var hits []Finding
	for _, f := range res.Findings {
		if f.Rule == "lockheld" {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 || !strings.Contains(hits[0].Msg, "rec.Even") ||
		!strings.Contains(hits[0].Msg, "channel receive") {
		t.Errorf("lockheld findings = %v, want one reaching the receive through rec.Even", hits)
	}
}

// TestRunModuleAudit seeds one directive of each failure class plus a
// healthy one and checks the audit classifies them exactly.
func TestRunModuleAudit(t *testing.T) {
	src := strings.Join([]string{
		"package pkg",
		"",
		"// Good is a justified suppression: the directive matches a real",
		"// finding and carries a reason.",
		"func Good(c float64) float64 {",
		"\treturn c + 273.15 //lint:allow unitsafety fixture mirrors a data sheet",
		"}",
		"",
		"// Stale suppresses nothing: the line below has no finding.",
		"func Stale(c float64) float64 {",
		"\t//lint:allow unitsafety nothing here anymore",
		"\treturn c + 1",
		"}",
		"",
		"// Unknown names a rule that does not exist.",
		"func Unknown(c float64) float64 {",
		"\t//lint:allow nosuchrule typo preserved for the audit",
		"\treturn c + 2",
		"}",
		"",
		"// Bare has a real finding but no reason text.",
		"func Bare(c float64) float64 {",
		"\treturn c + 273.15 //lint:allow unitsafety",
		"}",
		"",
	}, "\n")
	root := writeTempModule(t, map[string]string{"pkg/pkg.go": src})

	res, err := RunModule(ModuleOptions{Dir: root, Patterns: []string{"./..."}, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	byWhy := make(map[string][]StaleAllow)
	for _, s := range res.Stale {
		byWhy[s.Why] = append(byWhy[s.Why], s)
	}
	if len(res.Stale) != 3 {
		t.Fatalf("audit reported %d problems, want 3: %v", len(res.Stale), res.Stale)
	}
	if got := byWhy["stale"]; len(got) != 1 || got[0].Rule != "unitsafety" || got[0].Pos.Line != 11 {
		t.Errorf("stale reports = %v, want one unitsafety at line 11", got)
	}
	if got := byWhy["unknown-rule"]; len(got) != 1 || got[0].Rule != "nosuchrule" {
		t.Errorf("unknown-rule reports = %v", got)
	}
	if got := byWhy["no-reason"]; len(got) != 1 || got[0].Pos.Line != 23 {
		t.Errorf("no-reason reports = %v, want the bare directive at line 23", got)
	}
	for _, s := range res.Stale {
		if !strings.HasPrefix(filepath.ToSlash(s.Pos.Filename), "pkg/") {
			t.Errorf("audit position %q not module-root-relative", s.Pos.Filename)
		}
	}
}
