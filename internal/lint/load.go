// Module loading and type-checking for the lint framework.
//
// The loader resolves imports with nothing but the standard library:
// packages inside this module are parsed and type-checked recursively
// from source, and standard-library imports are delegated to the
// "source" compiler importer (which also works from source, so no
// pre-built export data is required).
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader parses and type-checks the packages of one Go module.
type Loader struct {
	// Fset is shared by every file the loader touches.
	Fset *token.FileSet
	// Root is the module root directory (the one holding go.mod).
	Root string
	// ModPath is the module path declared in go.mod.
	ModPath string
	// TypeErrors collects non-fatal type-checker diagnostics.  Lint rules
	// tolerate incomplete type info; the driver surfaces these as
	// warnings so missing info is never silent.
	TypeErrors []string

	std      types.Importer
	cache    map[string]*types.Package
	pkgs     map[string]*Package
	checking map[string]bool

	mu        sync.Mutex
	preparsed map[string][]*ast.File
}

// NewLoader locates the module root at or above dir and reads the module
// path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		Root:      root,
		ModPath:   modPath,
		std:       importer.ForCompiler(fset, "source", nil),
		cache:     make(map[string]*types.Package),
		pkgs:      make(map[string]*Package),
		checking:  make(map[string]bool),
		preparsed: make(map[string][]*ast.File),
	}, nil
}

// Import implements types.Importer: module-internal paths are resolved
// from source under Root, everything else is assumed to be standard
// library and handed to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModPath {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// importPathFor maps a directory under Root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir (non-test files
// only).  Results are memoized per import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(abs, path)
}

func (l *Loader) load(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			l.TypeErrors = append(l.TypeErrors, err.Error())
		},
	}
	// Check never fully fails here: the error callback above swallows
	// diagnostics so rules get the best partial info available.
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	p := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}
	l.cache[path] = tpkg
	l.pkgs[path] = p
	return p, nil
}

// PreparseParallel parses the sources of every given directory
// concurrently and memoizes the results, so the sequential type-check
// phase finds its ASTs ready.  token.FileSet and parser.ParseFile are
// safe for concurrent use; errors are deferred to the eventual LoadDir.
func (l *Loader) PreparseParallel(dirs []string) {
	var wg sync.WaitGroup
	for _, dir := range dirs {
		l.mu.Lock()
		_, seen := l.preparsed[dir]
		l.mu.Unlock()
		if seen {
			continue
		}
		wg.Add(1)
		go func(dir string) {
			defer wg.Done()
			files, err := l.parseDirUncached(dir)
			if err != nil {
				return // LoadDir will re-parse and surface the error
			}
			l.mu.Lock()
			l.preparsed[dir] = files
			l.mu.Unlock()
		}(dir)
	}
	wg.Wait()
}

// Loaded returns every package the loader has type-checked so far —
// the requested ones plus everything pulled in as a dependency — sorted
// by import path.  Fact gathering runs over this set.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// parseDir returns the directory's parsed sources, consuming a
// PreparseParallel result when one exists.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	l.mu.Lock()
	files, ok := l.preparsed[dir]
	l.mu.Unlock()
	if ok {
		return files, nil
	}
	return l.parseDirUncached(dir)
}

// parseDirUncached parses the non-test .go files of one directory.  When
// a directory holds more than one package name (rare outside testdata),
// the majority package wins and the rest are skipped.
func (l *Loader) parseDirUncached(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := make(map[string][]*ast.File)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	var best string
	for name, fs := range byPkg {
		if best == "" || len(fs) > len(byPkg[best]) {
			best = name
		}
	}
	return byPkg[best], nil
}

// PackageDirs walks the subtree at start (inside the module) and returns
// every directory holding non-test Go files, skipping testdata, vendor
// and hidden directories.
func (l *Loader) PackageDirs(start string) ([]string, error) {
	start, err := filepath.Abs(start)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != start && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadAll loads every package under start ("" means the module root).
func (l *Loader) LoadAll(start string) ([]*Package, error) {
	if start == "" {
		start = l.Root
	}
	dirs, err := l.PackageDirs(start)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
