// Module loading and type-checking for the lint framework.
//
// The loader resolves imports with nothing but the standard library:
// packages inside this module are parsed and type-checked recursively
// from source, and standard-library imports are delegated to the
// "source" compiler importer (which also works from source, so no
// pre-built export data is required).
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"aeropack/internal/parallel"
)

// Loader parses and type-checks the packages of one Go module.
type Loader struct {
	// Fset is shared by every file the loader touches.
	Fset *token.FileSet
	// Root is the module root directory (the one holding go.mod).
	Root string
	// ModPath is the module path declared in go.mod.
	ModPath string
	// TypeErrors collects non-fatal type-checker diagnostics.  Lint rules
	// tolerate incomplete type info; the driver surfaces these as
	// warnings so missing info is never silent.
	TypeErrors []string

	std      types.Importer
	cache    map[string]*types.Package
	pkgs     map[string]*Package
	checking map[string]bool

	// mu guards cache, pkgs, checking, TypeErrors and preparsed; it is
	// held only around map/slice accesses, never across a type-check, so
	// LoadDirsParallel can run independent packages concurrently.
	mu        sync.Mutex
	preparsed map[string][]*ast.File
	// stdMu serializes the source importer: srcimporter keeps an
	// unlocked package map internally and is not safe for concurrent use.
	stdMu sync.Mutex
}

// NewLoader locates the module root at or above dir and reads the module
// path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:      fset,
		Root:      root,
		ModPath:   modPath,
		std:       importer.ForCompiler(fset, "source", nil),
		cache:     make(map[string]*types.Package),
		pkgs:      make(map[string]*Package),
		checking:  make(map[string]bool),
		preparsed: make(map[string][]*ast.File),
	}, nil
}

// Import implements types.Importer: module-internal paths are resolved
// from source under Root, everything else is assumed to be standard
// library and handed to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModPath {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// importPathFor maps a directory under Root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir (non-test files
// only).  Results are memoized per import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(abs, path)
}

func (l *Loader) load(dir, path string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if l.checking[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.checking, path)
		l.mu.Unlock()
	}()

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			l.mu.Lock()
			l.TypeErrors = append(l.TypeErrors, err.Error())
			l.mu.Unlock()
		},
	}
	// Check never fully fails here: the error callback above swallows
	// diagnostics so rules get the best partial info available.
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	p := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}
	l.mu.Lock()
	l.cache[path] = tpkg
	l.pkgs[path] = p
	l.mu.Unlock()
	return p, nil
}

// PreparseParallel parses the sources of every given directory
// concurrently and memoizes the results, so the sequential type-check
// phase finds its ASTs ready.  token.FileSet and parser.ParseFile are
// safe for concurrent use; errors are deferred to the eventual LoadDir.
func (l *Loader) PreparseParallel(dirs []string) {
	var wg sync.WaitGroup
	for _, dir := range dirs {
		l.mu.Lock()
		_, seen := l.preparsed[dir]
		l.mu.Unlock()
		if seen {
			continue
		}
		wg.Add(1)
		go func(dir string) {
			defer wg.Done()
			files, err := l.parseDirUncached(dir)
			if err != nil {
				return // LoadDir will re-parse and surface the error
			}
			l.mu.Lock()
			l.preparsed[dir] = files
			l.mu.Unlock()
		}(dir)
	}
	wg.Wait()
}

// Loaded returns every package the loader has type-checked so far —
// the requested ones plus everything pulled in as a dependency — sorted
// by import path.  Fact gathering runs over this set.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// parseDir returns the directory's parsed sources, consuming a
// PreparseParallel result when one exists.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	l.mu.Lock()
	files, ok := l.preparsed[dir]
	l.mu.Unlock()
	if ok {
		return files, nil
	}
	return l.parseDirUncached(dir)
}

// parseDirUncached parses the non-test .go files of one directory.  When
// a directory holds more than one package name (rare outside testdata),
// the majority package wins and the rest are skipped.
func (l *Loader) parseDirUncached(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := make(map[string][]*ast.File)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	var best string
	for name, fs := range byPkg {
		if best == "" || len(fs) > len(byPkg[best]) {
			best = name
		}
	}
	return byPkg[best], nil
}

// PackageDirs walks the subtree at start (inside the module) and returns
// every directory holding non-test Go files, skipping testdata, vendor
// and hidden directories.
func (l *Loader) PackageDirs(start string) ([]string, error) {
	start, err := filepath.Abs(start)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != start && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// moduleImports returns dir's module-internal imports as directories,
// from an AST-level scan of its (pre)parsed sources.
func (l *Loader) moduleImports(dir string) ([]string, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var deps []string
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if depDir, ok := l.dirFor(ipath); ok && depDir != dir && !seen[depDir] {
				seen[depDir] = true
				deps = append(deps, depDir)
			}
		}
	}
	sort.Strings(deps)
	return deps, nil
}

// LoadDirsParallel type-checks the packages of dirs using every core:
// it discovers the module-internal dependency closure from import
// lines, pre-parses it concurrently, then type-checks in topological
// layers — every package of a layer depends only on finished layers,
// so the layer's members check on separate goroutines (standard-library
// imports stay serialized behind the source importer's lock).  A final
// memoized sequential pass returns the requested packages in input
// order and surfaces any load error exactly as LoadDir would have.
func (l *Loader) LoadDirsParallel(dirs []string) ([]*Package, error) {
	abs := make([]string, len(dirs))
	for i, d := range dirs {
		a, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		abs[i] = a
	}

	// Closure discovery in parse waves: each frontier is parsed
	// concurrently, then its imports name the next frontier.
	deps := make(map[string][]string)
	frontier := abs
	for len(frontier) > 0 {
		l.PreparseParallel(frontier)
		var next []string
		for _, dir := range frontier {
			if _, ok := deps[dir]; ok {
				continue
			}
			ds, err := l.moduleImports(dir)
			if err != nil {
				deps[dir] = nil // the sequential pass reports it
				continue
			}
			deps[dir] = ds
			for _, d := range ds {
				if _, ok := deps[d]; !ok {
					next = append(next, d)
				}
			}
		}
		frontier = next
	}

	// Kahn layering over the discovered graph.  Directories are sorted
	// within each layer so the work distribution — and with it the order
	// of any type-checker diagnostics after the suite's sort — is stable.
	all := make([]string, 0, len(deps))
	for d := range deps {
		all = append(all, d)
	}
	sort.Strings(all)
	done := make(map[string]bool, len(all))
	for len(done) < len(all) {
		var layer []string
		for _, dir := range all {
			if done[dir] {
				continue
			}
			ready := true
			for _, d := range deps[dir] {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				layer = append(layer, dir)
			}
		}
		if len(layer) == 0 {
			break // import cycle; the sequential pass reports it
		}
		for _, d := range layer {
			done[d] = true
		}
		parallel.For(len(layer), 0, func(i int) {
			_, _ = l.LoadDir(layer[i]) // errors re-surface below
		})
	}

	// Canonical pass: all hits are memoized, all errors deterministic.
	pkgs := make([]*Package, len(abs))
	for i, dir := range abs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		pkgs[i] = p
	}
	return pkgs, nil
}

// LoadAll loads every package under start ("" means the module root).
func (l *Loader) LoadAll(start string) ([]*Package, error) {
	if start == "" {
		start = l.Root
	}
	dirs, err := l.PackageDirs(start)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
