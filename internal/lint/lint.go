// Package lint is aeropack's in-tree static-analysis framework.  It
// enforces the project-wide physical-modelling invariants that the Go
// compiler cannot see: the strict-SI unit convention of internal/units,
// the no-exact-float-comparison rule, the library panic policy, and the
// NaN-propagation contract of the solver entry points.
//
// The framework is deliberately dependency-free: it is built only on
// go/ast, go/parser, go/token and go/types, so the lint gate runs
// anywhere the Go toolchain runs.  Each check is a Rule; rules register
// themselves at init time and the cmd/aeropacklint driver runs every
// registered rule over every package of the module.
//
// Findings can be suppressed for a single line with a directive comment:
//
//	//lint:allow <rule>[,<rule>...] [reason]
//
// placed either at the end of the offending line or on the line
// immediately above it.  Suppressions are deliberate, reviewable
// exceptions; the reason text is free-form but encouraged.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	Hint string
	// Related points at secondary locations — the callee site an
	// interprocedural finding reaches through, or a %w wrap site.  It is
	// carried into the JSON and SARIF exports but not into String().
	Related []Related
	// Fix, when non-nil, is a machine-applicable rewrite that resolves
	// the finding.  Exported as a JSON fix object / SARIF fixes entry
	// and applied by `aeropacklint -fix`.
	Fix *Fix
}

// Related is one secondary location attached to a finding.
type Related struct {
	Pos token.Position
	Msg string
}

// String renders the finding in the conventional file:line:col form used
// by Go tooling, with the fix hint in parentheses.
func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
	if f.Hint != "" {
		s += " (" + f.Hint + ")"
	}
	return s
}

// Package is one type-checked package presented to rules.  Test files are
// never included: every rule either ignores tests by policy (floatcmp,
// panicpolicy, nanguard) or treats them as out of scope (unitsafety).
type Package struct {
	// ImportPath is the package's import path, e.g.
	// "aeropack/internal/thermal".
	ImportPath string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset is the file set positions resolve against.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package (possibly incomplete if the
	// checker reported errors; rules must tolerate missing info).
	Pkg *types.Package
	// Info carries expression types, definitions and uses.
	Info *types.Info
	// Facts is the cross-package fact store for this run (may be nil;
	// rules that consume facts must tolerate that).
	Facts *Facts

	// allow maps rule name → source line → suppressed.
	allow map[string]map[int]bool
	// directives lists every parsed //lint:allow directive, for the
	// -audit-allows mode.
	directives []AllowDirective
}

// AllowDirective is one parsed //lint:allow comment.
type AllowDirective struct {
	// Pos is the directive comment's position.
	Pos token.Position
	// Rules are the rule names the directive suppresses.
	Rules []string
	// Reason is the free-form justification text after the rule list.
	Reason string
}

// Rule is one self-contained analysis pass.
type Rule interface {
	// Name is the rule identifier used in reports and allow directives.
	Name() string
	// Doc is a one-line description shown by the driver's -rules flag.
	Doc() string
	// Check inspects one package and returns raw findings; the framework
	// applies //lint:allow filtering afterwards.
	Check(p *Package) []Finding
}

var registry []Rule

// Register adds a rule to the global registry.  Rules call it from init.
func Register(r Rule) { registry = append(registry, r) }

// Rules returns the registered rules sorted by name.
func Rules() []Rule {
	out := append([]Rule(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// allowDirective is the comment prefix that suppresses findings.
const allowDirective = "//lint:allow"

// buildAllow scans the package's comments for //lint:allow directives and
// records, per rule, the lines they cover (the directive's own line and
// the line below, so both trailing and preceding placements work).
func (p *Package) buildAllow() {
	p.allow = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := AllowDirective{Pos: pos, Reason: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))}
				for _, rule := range strings.Split(fields[0], ",") {
					if rule == "" {
						continue
					}
					d.Rules = append(d.Rules, rule)
					if p.allow[rule] == nil {
						p.allow[rule] = make(map[int]bool)
					}
					p.allow[rule][pos.Line] = true
					p.allow[rule][pos.Line+1] = true
				}
				p.directives = append(p.directives, d)
			}
		}
	}
}

// Allowed reports whether findings for rule are suppressed at line.
func (p *Package) Allowed(rule string, line int) bool {
	if p.allow == nil {
		p.buildAllow()
	}
	return p.allow[rule][line]
}

// Directives returns every //lint:allow directive in the package.
func (p *Package) Directives() []AllowDirective {
	if p.allow == nil {
		p.buildAllow()
	}
	return p.directives
}

// Run executes every registered rule over the given packages, applies
// //lint:allow filtering, and returns the surviving findings sorted by
// position.
func Run(pkgs []*Package) []Finding {
	return RunRules(pkgs, Rules())
}

// RunRules is Run restricted to an explicit rule set (used by tests).
func RunRules(pkgs []*Package, rules []Rule) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, f := range RunRulesRaw(p, rules) {
			if p.Allowed(f.Rule, f.Pos.Line) {
				continue
			}
			out = append(out, f)
		}
	}
	SortFindings(out)
	return out
}

// RunRulesRaw runs rules over one package and returns every finding
// before //lint:allow filtering — the audit mode needs the raw set to
// decide which directives still suppress something.
func RunRulesRaw(p *Package, rules []Rule) []Finding {
	var out []Finding
	for _, r := range rules {
		out = append(out, r.Check(p)...)
	}
	return out
}

// SortFindings orders findings by file, line, column, then rule name.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Rule < out[j].Rule
	})
}

// isFloat64 reports whether t is (an alias of) float64.
func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Float64 || b.Kind() == types.UntypedFloat
}

// exprIsFloat64 reports whether the expression has type float64 according
// to the (possibly incomplete) type info.
func (p *Package) exprIsFloat64(e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isFloat64(tv.Type)
}
