// The value-flow engine: def-use taint tracking over the typed AST,
// layered on the PR 6 call-graph summaries so taint and lock facts
// propagate across function and package boundaries.
//
// Three analyses share the machinery:
//
//   - size taint (taintsize): an integer derived from a wire-level
//     request field (a json-tagged struct field of a package that talks
//     HTTP) or from a command-line flag reaches an allocation-sized
//     sink — a make() size, a loop bound, a SetWorkers call — without
//     passing through a proven clamp.  Per-function summaries record
//     which parameters flow into such sinks, so the caller is flagged
//     with the full call chain.
//   - lock acquisition (lockorder): per-function summaries of which
//     sync.Mutex/RWMutex objects a call (transitively) acquires; the
//     fact store combines them with lexical held-set tracking into a
//     module-wide lock-order graph.
//   - solver touch (stopflow): whether a function (transitively)
//     reaches any linalg iterative-solver entry at all, budgeted or
//     not, and whether it compiles a request Budget's stop predicate.
//
// Taint is deliberately narrow: it flows through assignments, +,-,*
// arithmetic, conversions, len()/cap() of tainted slices and min/max of
// all-tainted arguments.  It does NOT flow through other call results
// or composite literals — silence on an unproven path beats a false
// positive.  Taint dies at a clamp:
//
//   - an ordering comparison (<, <=, >, >=) mentioning the value (or
//     len() of it) anywhere before the sink — the if-clamp idiom;
//   - min()/max() with at least one untainted bound;
//   - %, / and & arithmetic (the result is bounded by the operands);
//   - re-assignment from an untainted expression;
//   - a module-wide clamped-field fact: the json field is ordering-
//     compared against something in its declaring package (the
//     validate()-caps idiom), which sanitizes every use of the field.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// maxSizeFacts bounds the size-sink facts recorded per function.
const maxSizeFacts = 8

// maxLockFacts bounds the mutex acquisitions recorded per function.
const maxLockFacts = 8

// SizeFact says a call to the summarized function lets its Param-th
// argument (flattened index, receiver excluded) size an allocation or
// bound a loop without a clamp.
type SizeFact struct {
	// Param is the flattened parameter index the taint enters through.
	Param int
	// Sink names the sink kind: "make size", "loop bound", "SetWorkers".
	Sink string
	// Pos is the sink site.
	Pos token.Position
	// Chain lists intermediate callees between the summarized function
	// and the sink (empty for a direct sink).
	Chain []string
}

// LockFact says the summarized function (transitively) acquires a
// mutex.  Obj identifies the mutex variable or field; Name is the
// receiver's printed form at the acquisition site.
type LockFact struct {
	Obj   types.Object
	Name  string
	Pos   token.Position
	Chain []string
}

// taintOrigin describes where a tainted value came from.
type taintOrigin struct {
	// desc names the source for messages, e.g. `request field "powers_w"`
	// or `flag -workers` or `parameter n`.
	desc string
	// param is the flattened parameter index in summary mode, -1 when the
	// source is a request field or flag.
	param int
}

// sizeSinkHit is one taint-reaches-sink event reported by the tracker.
type sizeSinkHit struct {
	origin *taintOrigin
	// sink names the sink kind ("make size", "loop bound", "SetWorkers").
	sink string
	// pos is the site in the tracked function (argument or bound).
	pos token.Pos
	// target is the underlying sink when it lives in a callee (zero
	// Position for a direct sink).
	target token.Position
	// chain lists the callees between the tracked function and target.
	chain []string
}

// taintTracker walks one function body in source order, maintaining
// int- and slice-taint maps plus a sanitized set, and reports every
// taint-reaches-sink event through onSink.
type taintTracker struct {
	p    *Package
	s    *summaries
	decl *ast.FuncDecl

	// wireSource seeds json-tagged wire fields and flag derefs as taint
	// sources (rule mode); summary mode seeds parameters instead.
	wireSource bool

	intTaint   map[types.Object]*taintOrigin
	sliceTaint map[types.Object]*taintOrigin
	// flagPtr tracks locals bound to flag.Int()-family results.
	flagPtr map[types.Object]string
	// sanitized marks objects (locals and field objects) that passed an
	// ordering comparison before the current program point.
	sanitized map[types.Object]bool
	// loopConds marks for-condition expressions: their comparisons are
	// sinks, not clamps.
	loopConds map[ast.Expr]bool

	onSink func(sizeSinkHit)
}

func newTaintTracker(p *Package, s *summaries, decl *ast.FuncDecl, wireSource bool) *taintTracker {
	return &taintTracker{
		p: p, s: s, decl: decl, wireSource: wireSource,
		intTaint:   make(map[types.Object]*taintOrigin),
		sliceTaint: make(map[types.Object]*taintOrigin),
		flagPtr:    make(map[types.Object]string),
		sanitized:  make(map[types.Object]bool),
		loopConds:  make(map[ast.Expr]bool),
	}
}

// run walks the function body.  ast.Inspect's pre-order traversal
// visits statements in source order, which is what the flow-sensitive
// sanitized set needs; branch joins are handled optimistically (a clamp
// on either path counts), trading soundness for near-zero false
// positives.
func (t *taintTracker) run() {
	if t.decl.Body == nil {
		return
	}
	ast.Inspect(t.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			if be, ok := x.Cond.(*ast.BinaryExpr); ok && isComparison(be.Op) {
				t.loopConds[x.Cond] = true
				t.checkLoopBound(be)
			}
		case *ast.BinaryExpr:
			if isOrdering(x.Op) && !t.loopConds[x] {
				t.sanitizeExpr(x.X)
				t.sanitizeExpr(x.Y)
			}
		case *ast.AssignStmt:
			t.assign(x)
		case *ast.CallExpr:
			t.callSinks(x)
		}
		return true
	})
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// isOrdering reports the clamp-shaped comparison operators.  ==/!= test
// identity, not magnitude, and do not bound anything.
func isOrdering(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// checkLoopBound flags tainted operands of a for-condition comparison.
func (t *taintTracker) checkLoopBound(be *ast.BinaryExpr) {
	for _, side := range []ast.Expr{be.X, be.Y} {
		if o := t.intTaintOf(side); o != nil {
			t.hit(sizeSinkHit{origin: o, sink: "loop bound", pos: side.Pos()})
		}
	}
}

func (t *taintTracker) hit(h sizeSinkHit) {
	if t.onSink != nil {
		t.onSink(h)
	}
}

// sanitizeExpr marks the objects an ordering comparison proves bounded:
// identifiers, flag derefs, json fields (by field object, so every
// later use of the field in this function is clean) and len()/cap() of
// any of those.
func (t *taintTracker) sanitizeExpr(e ast.Expr) {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if obj := t.p.Info.Uses[x]; obj != nil {
			t.sanitized[obj] = true
		}
	case *ast.SelectorExpr:
		if fv, _ := jsonFieldOf(t.p, x); fv != nil {
			t.sanitized[fv] = true
		}
	case *ast.StarExpr:
		t.sanitizeExpr(x.X)
	case *ast.CallExpr:
		if isLenOrCap(t.p, x) {
			t.sanitizeExpr(x.Args[0])
		}
	case *ast.BinaryExpr:
		t.sanitizeExpr(x.X)
		t.sanitizeExpr(x.Y)
	}
}

// assign propagates taint from RHS to LHS with strong updates: an
// untainted right-hand side kills any previous taint on the target.
func (t *taintTracker) assign(as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			t.assignOne(as.Lhs[i], as.Rhs[i])
		}
		return
	}
	// Multi-value assignment from one call: call results are trusted
	// (taint does not cross call returns), so clear the targets.
	for _, l := range as.Lhs {
		if obj := lhsObject(t.p, l); obj != nil {
			t.clearTaint(obj)
		}
	}
}

func (t *taintTracker) assignOne(l, r ast.Expr) {
	obj := lhsObject(t.p, l)
	if obj == nil {
		return
	}
	if call, ok := unparen(r).(*ast.CallExpr); ok {
		if name := flagIntCall(t.p, call); name != "" {
			t.flagPtr[obj] = name
			return
		}
	}
	if o := t.intTaintOf(r); o != nil {
		t.intTaint[obj] = o
		delete(t.sliceTaint, obj)
		delete(t.sanitized, obj) // re-tainted after a clamp
		return
	}
	if o := t.sliceTaintOf(r); o != nil {
		t.sliceTaint[obj] = o
		delete(t.intTaint, obj)
		delete(t.sanitized, obj)
		return
	}
	t.clearTaint(obj)
}

func (t *taintTracker) clearTaint(obj types.Object) {
	delete(t.intTaint, obj)
	delete(t.sliceTaint, obj)
}

// lhsObject resolves an assignment target to its object; nil for
// blanks, selectors, and index expressions (field/element stores are
// not tracked).
func lhsObject(p *Package, l ast.Expr) types.Object {
	id, ok := unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// intTaintOf reports the taint origin of an integer-valued expression,
// nil when clean.
func (t *taintTracker) intTaintOf(e ast.Expr) *taintOrigin {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := t.p.Info.Uses[x]
		if obj == nil || t.sanitized[obj] {
			return nil
		}
		return t.intTaint[obj]
	case *ast.SelectorExpr:
		return t.fieldTaint(x, false)
	case *ast.StarExpr:
		return t.flagDerefTaint(x)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.SHL:
			if o := t.intTaintOf(x.X); o != nil {
				return o
			}
			return t.intTaintOf(x.Y)
		}
		return nil // %, /, &, shifts right: bounded by the operands
	case *ast.CallExpr:
		return t.callTaint(x)
	}
	return nil
}

// flagDerefTaint reports taint for *p where p is a flag.Int-family
// pointer (a tracked local or a package-level flag var fact).
func (t *taintTracker) flagDerefTaint(star *ast.StarExpr) *taintOrigin {
	id, ok := unparen(star.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := t.p.Info.Uses[id]
	if obj == nil || t.sanitized[obj] {
		return nil
	}
	if name, ok := t.flagPtr[obj]; ok {
		return &taintOrigin{desc: "flag -" + name, param: -1}
	}
	if name := t.p.Facts.FlagVar(obj); name != "" {
		return &taintOrigin{desc: "flag -" + name, param: -1}
	}
	return nil
}

// sliceTaintOf reports the taint origin of a slice/map-valued
// expression — its *length* is what taints downstream len() calls.
func (t *taintTracker) sliceTaintOf(e ast.Expr) *taintOrigin {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := t.p.Info.Uses[x]
		if obj == nil || t.sanitized[obj] {
			return nil
		}
		return t.sliceTaint[obj]
	case *ast.SelectorExpr:
		return t.fieldTaint(x, true)
	case *ast.SliceExpr:
		return t.sliceTaintOf(x.X)
	}
	return nil
}

// fieldTaint decides whether a selector denotes a taint source: a
// json-tagged field (int-ish or slice-like, per wantSlice) of a struct
// declared in a wire package, not clamped anywhere in its declaring
// package and not sanitized earlier in this function.
func (t *taintTracker) fieldTaint(sel *ast.SelectorExpr, wantSlice bool) *taintOrigin {
	if !t.wireSource {
		return nil
	}
	fv, tag := jsonFieldOf(t.p, sel)
	if fv == nil || t.sanitized[fv] {
		return nil
	}
	name := jsonTagName(tag)
	if name == "" {
		return nil
	}
	if wantSlice {
		if !isSliceLike(fv.Type()) {
			return nil
		}
	} else if !isIntish(fv.Type()) {
		return nil
	}
	if !wirePackage(fv.Pkg()) || t.p.Facts.FieldClamped(fv) {
		return nil
	}
	return &taintOrigin{desc: "request field " + strconv.Quote(name), param: -1}
}

// callTaint handles the few calls taint crosses: len/cap of a tainted
// slice, min/max with every argument tainted, and conversions.
func (t *taintTracker) callTaint(call *ast.CallExpr) *taintOrigin {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := t.p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				if len(call.Args) == 1 {
					return t.sliceTaintOf(call.Args[0])
				}
			case "min", "max":
				var origin *taintOrigin
				for _, a := range call.Args {
					o := t.intTaintOf(a)
					if o == nil {
						return nil // an untainted bound clamps the result
					}
					origin = o
				}
				return origin
			}
			return nil
		}
	}
	if tv, ok := t.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return t.intTaintOf(call.Args[0]) // conversion preserves the value
	}
	return nil // other call results are trusted
}

// callSinks checks one call expression for size sinks: make() sizes,
// SetWorkers arguments, and — interprocedurally — arguments flowing
// into a callee whose summary says the parameter sizes an allocation.
func (t *taintTracker) callSinks(call *ast.CallExpr) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := t.p.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "make" && len(call.Args) > 1 {
				for _, a := range call.Args[1:] {
					if o := t.intTaintOf(a); o != nil {
						t.hit(sizeSinkHit{origin: o, sink: "make size", pos: a.Pos()})
					}
				}
			}
			return
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "SetWorkers" {
		for _, a := range call.Args {
			if o := t.intTaintOf(a); o != nil {
				t.hit(sizeSinkHit{origin: o, sink: "SetWorkers", pos: a.Pos()})
			}
		}
		return
	}
	fn := calleeFunc(t.p, call)
	if fn == nil || t.s == nil {
		return
	}
	cn := t.s.nodes[fn]
	if cn == nil {
		return
	}
	facts := t.s.sizeFacts(cn)
	if len(facts) == 0 {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	for i, a := range call.Args {
		if sig != nil && sig.Variadic() && i >= sig.Params().Len()-1 {
			break // variadic tail: element, not size, semantics
		}
		o := t.intTaintOf(a)
		if o == nil {
			o = t.sliceTaintOf(a)
		}
		if o == nil {
			continue
		}
		for _, sf := range facts {
			if sf.Param != i {
				continue
			}
			t.hit(sizeSinkHit{
				origin: o, sink: sf.Sink, pos: a.Pos(),
				target: sf.Pos, chain: prependChain(shortFuncName(fn), sf.Chain),
			})
		}
	}
}

// ---------------------------------------------------------------------
// Type and tag helpers.

// isIntish reports integer-kinded types (sizes, counts, worker knobs).
func isIntish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isSliceLike reports slices and maps — the types whose len() a wire
// payload controls.
func isSliceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func isLenOrCap(p *Package, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}

// jsonFieldOf resolves a selector to a struct-field variable and its
// raw struct tag; (nil, "") for non-field selectors.
func jsonFieldOf(p *Package, sel *ast.SelectorExpr) (*types.Var, string) {
	selInfo := p.Info.Selections[sel]
	if selInfo == nil || selInfo.Kind() != types.FieldVal {
		return nil, ""
	}
	fv, ok := selInfo.Obj().(*types.Var)
	if !ok {
		return nil, ""
	}
	// Walk the index path to the field's declaring struct for the tag.
	typ := selInfo.Recv()
	var tag string
	for _, idx := range selInfo.Index() {
		if ptr, ok := typ.Underlying().(*types.Pointer); ok {
			typ = ptr.Elem()
		}
		st, ok := typ.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return nil, ""
		}
		tag = st.Tag(idx)
		typ = st.Field(idx).Type()
	}
	return fv, tag
}

// jsonTagName extracts the wire name from a `json:"..."` tag; "" when
// the field has no json tag or is explicitly skipped.
func jsonTagName(tag string) string {
	v, ok := reflect.StructTag(tag).Lookup("json")
	if !ok {
		return ""
	}
	name, _, _ := strings.Cut(v, ",")
	if name == "-" {
		return ""
	}
	return name
}

// wirePackage reports whether pkg speaks HTTP (imports net/http
// directly) — the heuristic for "this package's json-tagged structs
// are wire payloads", which keeps trusted local JSON (benchmark files,
// reports) out of scope.
func wirePackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	for _, im := range pkg.Imports() {
		if im.Path() == "net/http" {
			return true
		}
	}
	return false
}

// flagIntCall matches flag.Int/Int64/Uint/Uint64(...) and returns the
// flag name, "" otherwise.
func flagIntCall(p *Package, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "flag" {
		return ""
	}
	switch sel.Sel.Name {
	case "Int", "Int64", "Uint", "Uint64":
	default:
		return ""
	}
	lit, ok := unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return name
}

// ---------------------------------------------------------------------
// Size-flow summaries (taintsize).

// sizeFacts reports which parameters of n flow, unclamped, into a size
// sink.  A cycle resolves to "no flow" (anything only reachable through
// the back edge is unproven).
func (s *summaries) sizeFacts(n *funcNode) []SizeFact {
	switch n.sizeState {
	case stInProgress:
		return nil
	case stDone:
		return n.sizes
	}
	n.sizeState = stInProgress
	n.sizes = s.sizeScan(n)
	n.sizeState = stDone
	return n.sizes
}

func (s *summaries) sizeScan(n *funcNode) []SizeFact {
	if n.decl.Type.Params == nil || n.decl.Body == nil {
		return nil
	}
	p := n.pkg
	t := newTaintTracker(p, s, n.decl, false)
	idx := 0
	for _, field := range n.decl.Type.Params.List {
		if len(field.Names) == 0 {
			idx++ // unnamed parameter: the body cannot use it
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				origin := &taintOrigin{desc: "parameter " + name.Name, param: idx}
				switch {
				case isIntish(obj.Type()):
					t.intTaint[obj] = origin
				case isSliceLike(obj.Type()):
					t.sliceTaint[obj] = origin
				}
			}
			idx++
		}
	}
	if len(t.intTaint)+len(t.sliceTaint) == 0 {
		return nil
	}
	var out []SizeFact
	seen := make(map[string]bool)
	t.onSink = func(h sizeSinkHit) {
		if h.origin.param < 0 || len(out) >= maxSizeFacts {
			return
		}
		pos := h.target
		if !pos.IsValid() {
			pos = p.Fset.Position(h.pos)
		}
		key := strconv.Itoa(h.origin.param) + "|" + h.sink + "|" + pos.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, SizeFact{Param: h.origin.param, Sink: h.sink, Pos: pos, Chain: h.chain})
	}
	t.run()
	return out
}

// ---------------------------------------------------------------------
// Solver-touch summaries (stopflow).

// solverTouch reports whether n (transitively) reaches any linalg
// iterative-solver entry at all — budgeted or not.  stopflow uses it to
// decide which calls on a handler path must carry the compiled stop.
func (s *summaries) solverTouch(n *funcNode) *SolverFact {
	switch n.touchState {
	case stInProgress:
		return nil
	case stDone:
		return n.touch
	}
	n.touchState = stInProgress
	n.touch = s.touchScan(n)
	n.touchState = stDone
	return n.touch
}

func (s *summaries) touchScan(n *funcNode) *SolverFact {
	if strings.HasSuffix(n.pkg.ImportPath, "/internal/linalg") {
		return nil // the entry points wrap the kernels
	}
	p := n.pkg
	var found *SolverFact
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, isEntry := solverEntryCall(p, call); isEntry {
			found = &SolverFact{Entry: "linalg." + name, Pos: p.Fset.Position(call.Pos())}
			return false
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn == n.fn {
			return true
		}
		if cn := s.nodes[fn]; cn != nil {
			if sf := s.solverTouch(cn); sf != nil {
				found = &SolverFact{Entry: sf.Entry, Pos: sf.Pos, Chain: prependChain(shortFuncName(fn), sf.Chain)}
				return false
			}
		}
		return true
	})
	return found
}

// compilesStop reports whether n's body (transitively) calls the
// Budget.stop compiler — i.e. the request budget is turned into a stop
// predicate somewhere at or below this call.
func (s *summaries) compilesStop(n *funcNode) bool {
	switch n.stopState {
	case stInProgress:
		return false
	case stDone:
		return n.stopCompile
	}
	n.stopState = stInProgress
	n.stopCompile = s.stopScan(n)
	n.stopState = stDone
	return n.stopCompile
}

func (s *summaries) stopScan(n *funcNode) bool {
	p := n.pkg
	found := false
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBudgetStopCall(p, call) {
			found = true
			return false
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn == n.fn {
			return true
		}
		if cn := s.nodes[fn]; cn != nil && s.compilesStop(cn) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBudgetStopCall matches b.stop() / b.Stop() on a type named Budget —
// the request-budget-to-predicate compiler in internal/serve.
func isBudgetStopCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "stop" && sel.Sel.Name != "Stop") {
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	typ := tv.Type
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	named, ok := typ.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "Budget"
}

// ---------------------------------------------------------------------
// Lock-acquisition summaries (lockorder).

// lockFacts lists the mutexes n (transitively) acquires.  Function
// literals, go statements and defers are skipped: they run outside the
// caller's current acquisition order.
func (s *summaries) lockFacts(n *funcNode) []LockFact {
	switch n.lockState {
	case stInProgress:
		return nil
	case stDone:
		return n.locks
	}
	n.lockState = stInProgress
	n.locks = s.lockScan(n)
	n.lockState = stDone
	return n.locks
}

func (s *summaries) lockScan(n *funcNode) []LockFact {
	p := n.pkg
	var out []LockFact
	seen := make(map[types.Object]bool)
	add := func(lf LockFact) {
		if len(out) < maxLockFacts && !seen[lf.Obj] {
			seen[lf.Obj] = true
			out = append(out, lf)
		}
	}
	ast.Inspect(n.decl.Body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if obj, name, ok := mutexAcquire(p, x); ok {
				add(LockFact{Obj: obj, Name: name, Pos: p.Fset.Position(x.Pos())})
				return true
			}
			fn := calleeFunc(p, x)
			if fn == nil || fn == n.fn {
				return true
			}
			if cn := s.nodes[fn]; cn != nil {
				for _, lf := range s.lockFacts(cn) {
					add(LockFact{Obj: lf.Obj, Name: lf.Name, Pos: lf.Pos, Chain: prependChain(shortFuncName(fn), lf.Chain)})
				}
			}
		}
		return true
	})
	return out
}

// mutexAcquire matches x.Lock() / x.RLock() on a sync.Mutex/RWMutex and
// resolves the mutex's identity object (the field or variable).
func mutexAcquire(p *Package, call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return nil, "", false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncMutex(tv.Type) {
		return nil, "", false
	}
	obj := mutexObject(p, sel.X)
	if obj == nil {
		return nil, "", false
	}
	return obj, types.ExprString(sel.X), true
}

// mutexObject resolves the mutex expression to the variable or field
// object that identifies it module-wide.
func mutexObject(p *Package, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[x]
	case *ast.SelectorExpr:
		return p.Info.Uses[x.Sel]
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return mutexObject(p, x.X)
		}
	}
	return nil
}

// importClosure returns the import paths visible to p: itself plus its
// transitive imports.  Facts originating outside this set must not be
// consumed while linting p (the content-hash cache key only covers the
// closure).
func importClosure(p *Package) map[string]bool {
	seen := map[string]bool{p.ImportPath: true}
	if p.Pkg == nil {
		return seen
	}
	var walk func(tp *types.Package)
	walk = func(tp *types.Package) {
		for _, im := range tp.Imports() {
			if !seen[im.Path()] {
				seen[im.Path()] = true
				walk(im)
			}
		}
	}
	walk(p.Pkg)
	return seen
}
