package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func exportFixture() []Finding {
	return []Finding{{
		Pos:  token.Position{Filename: "internal/thermal/solve.go", Line: 42, Column: 7},
		Rule: "unitsafety",
		Msg:  "inline unit-conversion literal 273.15",
		Hint: "use units.CToK/units.KToC (or units.ZeroCelsius for the constant itself)",
		Fix: &Fix{
			Desc: "replace the ±273.15 arithmetic with the units conversion helper",
			Edits: []TextEdit{{
				File: "internal/thermal/solve.go", Offset: 980, End: 990, New: "units.CToK(tC)",
			}},
		},
	}, {
		Pos:  token.Position{Filename: "internal/core/flow.go", Line: 166, Column: 13},
		Rule: "budgetstop",
		Msg:  "driver Study reaches unbudgeted linalg.CGOpt via core.level2 → thermal.linSolve",
		Hint: "thread a linalg.IterOptions.Stop (wall-clock or iteration budget) down this path, or solve through robust.Chain",
		Related: []Related{{
			Pos: token.Position{Filename: "internal/thermal/solve.go", Line: 335, Column: 20},
			Msg: "linalg.CGOpt is called without IterOptions.Stop here",
		}},
	}}
}

// TestWriteJSONFindings pins the aeropacklint/v1 envelope.
func TestWriteJSONFindings(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONFindings(&buf, exportFixture()); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Version  string `json:"version"`
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Rule    string `json:"rule"`
			Msg     string `json:"msg"`
			Hint    string `json:"hint"`
			Related []struct {
				File   string `json:"file"`
				Line   int    `json:"line"`
				Column int    `json:"column"`
				Msg    string `json:"msg"`
			} `json:"related"`
			Fix *struct {
				Desc  string `json:"desc"`
				Edits []struct {
					File   string `json:"file"`
					Offset int    `json:"offset"`
					End    int    `json:"end"`
					New    string `json:"new"`
				} `json:"edits"`
			} `json:"fix"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != "aeropacklint/v1" {
		t.Errorf("version = %q, want aeropacklint/v1", rep.Version)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.File != "internal/thermal/solve.go" || f.Line != 42 || f.Column != 7 ||
		f.Rule != "unitsafety" || f.Msg == "" || f.Hint == "" {
		t.Errorf("finding fields off: %+v", f)
	}
	if len(f.Related) != 0 {
		t.Errorf("finding without related locations serialized %d of them", len(f.Related))
	}
	if f.Fix == nil || f.Fix.Desc == "" || len(f.Fix.Edits) != 1 {
		t.Fatalf("fix not serialized: %+v", f.Fix)
	}
	if e := f.Fix.Edits[0]; e.File != "internal/thermal/solve.go" || e.Offset != 980 ||
		e.End != 990 || e.New != "units.CToK(tC)" {
		t.Errorf("fix edit fields off: %+v", e)
	}
	ipa := rep.Findings[1]
	if len(ipa.Related) != 1 {
		t.Fatalf("interprocedural finding related = %d, want 1", len(ipa.Related))
	}
	r := ipa.Related[0]
	if r.File != "internal/thermal/solve.go" || r.Line != 335 || r.Column != 20 || r.Msg == "" {
		t.Errorf("related fields off: %+v", r)
	}
}

// TestWriteSARIFShape pins the SARIF 2.1.0 document shape by walking the
// emitted JSON generically — a renamed or dropped field fails here even
// if the Go structs stay internally consistent.
func TestWriteSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, Rules(), exportFixture()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got := doc["$schema"]; got != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %v", got)
	}
	if got := doc["version"]; got != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", got)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", doc["runs"])
	}
	run := runs[0].(map[string]any)

	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "aeropacklint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	ruleTable := driver["rules"].([]any)
	if len(ruleTable) != len(Rules()) {
		t.Errorf("driver rule table has %d entries, want all %d registered rules",
			len(ruleTable), len(Rules()))
	}
	ruleIndex := -1
	for i, r := range ruleTable {
		rm := r.(map[string]any)
		if rm["id"] == "" || rm["shortDescription"].(map[string]any)["text"] == "" {
			t.Errorf("rule table entry %d missing id or shortDescription.text", i)
		}
		if rm["id"] == "unitsafety" {
			ruleIndex = i
		}
	}

	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	res := results[0].(map[string]any)
	if res["ruleId"] != "unitsafety" {
		t.Errorf("ruleId = %v", res["ruleId"])
	}
	if int(res["ruleIndex"].(float64)) != ruleIndex {
		t.Errorf("ruleIndex = %v, want %d (position in the driver table)", res["ruleIndex"], ruleIndex)
	}
	if res["level"] != "error" {
		t.Errorf("level = %v", res["level"])
	}
	msg := res["message"].(map[string]any)["text"].(string)
	if !strings.Contains(msg, "273.15") || !strings.Contains(msg, "units.CToK") {
		t.Errorf("message.text should carry msg and hint, got %q", msg)
	}
	loc := res["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/thermal/solve.go" {
		t.Errorf("artifactLocation.uri = %v", uri)
	}
	region := loc["region"].(map[string]any)
	if int(region["startLine"].(float64)) != 42 || int(region["startColumn"].(float64)) != 7 {
		t.Errorf("region = %v, want startLine 42 startColumn 7", region)
	}
	if _, present := res["relatedLocations"]; present {
		t.Error("finding without related locations emitted relatedLocations")
	}

	// The fix rides along as a SARIF fixes entry with charOffset /
	// charLength replacements.
	fixes, ok := res["fixes"].([]any)
	if !ok || len(fixes) != 1 {
		t.Fatalf("fixes = %v, want exactly one", res["fixes"])
	}
	fx := fixes[0].(map[string]any)
	if txt := fx["description"].(map[string]any)["text"].(string); txt == "" {
		t.Error("fix description.text empty")
	}
	ac := fx["artifactChanges"].([]any)[0].(map[string]any)
	if uri := ac["artifactLocation"].(map[string]any)["uri"]; uri != "internal/thermal/solve.go" {
		t.Errorf("fix artifactLocation.uri = %v", uri)
	}
	repl := ac["replacements"].([]any)[0].(map[string]any)
	dr := repl["deletedRegion"].(map[string]any)
	if int(dr["charOffset"].(float64)) != 980 || int(dr["charLength"].(float64)) != 10 {
		t.Errorf("deletedRegion = %v, want charOffset 980 charLength 10", dr)
	}
	if txt := repl["insertedContent"].(map[string]any)["text"]; txt != "units.CToK(tC)" {
		t.Errorf("insertedContent.text = %v", txt)
	}
	if _, present := results[1].(map[string]any)["fixes"]; present {
		t.Error("finding without a fix emitted fixes")
	}

	// The interprocedural finding carries its secondary position as a
	// SARIF relatedLocation with both a physicalLocation and a message.
	ipa := results[1].(map[string]any)
	rel, ok := ipa["relatedLocations"].([]any)
	if !ok || len(rel) != 1 {
		t.Fatalf("relatedLocations = %v, want exactly one", ipa["relatedLocations"])
	}
	rl := rel[0].(map[string]any)
	rloc := rl["physicalLocation"].(map[string]any)
	if uri := rloc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/thermal/solve.go" {
		t.Errorf("relatedLocation uri = %v", uri)
	}
	rregion := rloc["region"].(map[string]any)
	if int(rregion["startLine"].(float64)) != 335 {
		t.Errorf("relatedLocation startLine = %v, want 335", rregion["startLine"])
	}
	if txt := rl["message"].(map[string]any)["text"].(string); !strings.Contains(txt, "IterOptions.Stop") {
		t.Errorf("relatedLocation message = %q", txt)
	}
}
