// The detguard rule: bodies handed to the parallel engine must be
// deterministic.  internal/parallel guarantees bitwise-identical results
// between a serial and a parallel run of the same workload; that
// guarantee dies the moment a worker body reads the wall clock, draws
// from math/rand, or iterates a map (whose order differs run to run).
// The rule inspects every function literal passed to parallel.For,
// parallel.Blocks, parallel.Map and robust.MapKeepGoing and flags those
// three nondeterminism sources inside it, including in nested literals.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// detguardEntry names one parallel entry point whose closure arguments
// are in scope.
type detguardEntry struct {
	pkgSuffix string // import-path suffix of the defining package
	name      string // function name
}

var detguardEntries = []detguardEntry{
	{"/internal/parallel", "For"},
	{"/internal/parallel", "Blocks"},
	{"/internal/parallel", "Map"},
	{"/internal/robust", "MapKeepGoing"},
}

type detguardRule struct{}

func init() { Register(detguardRule{}) }

func (detguardRule) Name() string { return "detguard" }

func (detguardRule) Doc() string {
	return "no time.Now/math/rand/map-range inside closures passed to parallel.For/Blocks/Map or robust.MapKeepGoing (breaks the bitwise serial-vs-parallel guarantee)"
}

func (detguardRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isDetguardEntry(call.Fun) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				out = append(out, p.checkDeterministic(lit.Body)...)
			}
			return true
		})
	}
	return out
}

// isDetguardEntry reports whether fun resolves to one of the guarded
// parallel entry points.  Resolution is by type information when
// available (so aliased imports and same-package calls work), with a
// syntactic parallel.X fallback for packages with incomplete info.
func (p *Package) isDetguardEntry(fun ast.Expr) bool {
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.IndexExpr: // explicit instantiation: parallel.Map[T, R](...)
		return p.isDetguardEntry(x.X)
	case *ast.IndexListExpr:
		return p.isDetguardEntry(x.X)
	default:
		return false
	}
	if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() != nil {
		for _, e := range detguardEntries {
			if id.Name == e.name && strings.HasSuffix(obj.Pkg().Path(), e.pkgSuffix) {
				return true
			}
		}
		return false
	}
	// Fallback: selector on a package ident named like the entry's package.
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	for _, e := range detguardEntries {
		if sel.Sel.Name == e.name && strings.HasSuffix(e.pkgSuffix, "/"+pkgID.Name) {
			return true
		}
	}
	return false
}

// checkDeterministic flags wall-clock reads, math/rand draws and map
// iteration anywhere inside the worker body, nested literals included —
// a closure spawned from a worker still runs on the worker.
func (p *Package) checkDeterministic(body *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, bad := p.nondeterministicCall(x); bad {
				out = append(out, Finding{
					Pos:  p.Fset.Position(x.Pos()),
					Rule: "detguard",
					Msg:  name + " inside a parallel worker body",
					Hint: "hoist the call out of the worker or derive the value deterministically from the item index",
				})
			}
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[x.X]
			if ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					out = append(out, Finding{
						Pos:  p.Fset.Position(x.Pos()),
						Rule: "detguard",
						Msg:  "map iteration inside a parallel worker body",
						Hint: "iterate a sorted key slice instead; map order is randomized per run",
					})
				}
			}
		}
		return true
	})
	return out
}

// nondeterministicCall reports whether call reads the wall clock
// (time.Now/Since/After/Tick) or draws from math/rand.
func (p *Package) nondeterministicCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	// Resolve the qualifier to a package name when type info knows it.
	pkgPath := pkgID.Name
	if obj := p.Info.Uses[pkgID]; obj != nil {
		if pn, ok := obj.(*types.PkgName); ok {
			pkgPath = pn.Imported().Path()
		} else {
			return "", false // a value, not a package qualifier
		}
	}
	switch pkgPath {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "After", "Tick":
			return "time." + sel.Sel.Name, true
		}
	case "math/rand", "math/rand/v2", "rand":
		return pkgPath + "." + sel.Sel.Name, true
	}
	return "", false
}
