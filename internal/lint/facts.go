// Cross-package facts.  A Fact is a statement about a types.Object that
// one package proves and another package's rule consumes — the mechanism
// that lets rules see through exported boundaries the way go/analysis
// facts do, without leaving the stdlib.
//
// Two fact kinds exist today:
//
//   - wrapped sentinel: a package-level error variable is wrapped with
//     fmt.Errorf("... %w ...", ..., Sentinel) somewhere in the module.
//     Once wrapped, `err == Sentinel` can never match the wrapped chain,
//     so the errdrop rule upgrades such comparisons from a convention
//     violation to a proven bug.
//   - magic constant: an exported constant whose value equals one of the
//     unitsafety conversion factors.  The defining package is flagged by
//     the literal scan; the fact lets unitsafety also flag *uses* of the
//     constant from other packages, which contain no literal at all.
//
// Facts are gathered in a pass over every loaded package (including
// packages loaded only as dependencies) before any rule runs, so checks
// observe a complete store.  Fact flow follows the import graph: a fact
// about an object in package P can only be consumed by packages that
// (transitively) import P, which keeps the content-hash cache sound —
// a package's cache key already covers its transitive in-module deps.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Facts is the cross-package fact store shared by one lint run.
type Facts struct {
	// wrappedSentinel maps a package-level error variable to the import
	// path of one package that wraps it with fmt.Errorf("%w").
	wrappedSentinel map[types.Object]string
	// wrappedSentinelAt records the wrap site itself, for related
	// locations in exported findings.
	wrappedSentinelAt map[types.Object]token.Position
	// magicConst maps an exported constant object to the units hint for
	// the conversion factor its value equals.
	magicConst map[types.Object]string
	// sums is the call-graph summary store (interprocedural fact kind).
	sums *summaries
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{
		wrappedSentinel:   make(map[types.Object]string),
		wrappedSentinelAt: make(map[types.Object]token.Position),
		magicConst:        make(map[types.Object]string),
		sums:              newSummaries(),
	}
}

// WrappedIn returns the import path of a package that wraps the
// sentinel object with %w, or "" when none is known.
func (fs *Facts) WrappedIn(obj types.Object) string {
	if fs == nil || obj == nil {
		return ""
	}
	return fs.wrappedSentinel[obj]
}

// WrappedAt returns the recorded %w wrap site for the sentinel object.
func (fs *Facts) WrappedAt(obj types.Object) (token.Position, bool) {
	if fs == nil || obj == nil {
		return token.Position{}, false
	}
	pos, ok := fs.wrappedSentinelAt[obj]
	return pos, ok
}

// summaries exposes the call-graph store to rules; nil-safe.
func (fs *Facts) summaries() *summaries {
	if fs == nil {
		return nil
	}
	return fs.sums
}

// CallBlocks reports whether the statically-resolved callee of call
// (transitively) blocks, with the callee's name prepended to the chain.
func (fs *Facts) CallBlocks(p *Package, call *ast.CallExpr) *BlockFact {
	s := fs.summaries()
	if s == nil {
		return nil
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil
	}
	cn := s.nodes[fn]
	if cn == nil {
		return nil
	}
	bf := s.blocking(cn)
	if bf == nil {
		return nil
	}
	return &BlockFact{What: bf.What, Pos: bf.Pos, Chain: prependChain(shortFuncName(fn), bf.Chain)}
}

// ErrOriginOf reports where the error returned by fn (a pass-through
// wrapper) originates, nil when unknown or fn produces its own errors.
func (fs *Facts) ErrOriginOf(fn *types.Func) *ErrOrigin {
	s := fs.summaries()
	if s == nil || fn == nil {
		return nil
	}
	cn := s.nodes[fn]
	if cn == nil {
		return nil
	}
	return s.errOriginOf(cn)
}

// SolverReach lists the unbudgeted solver sites reachable through fn.
func (fs *Facts) SolverReach(fn *types.Func) []SolverFact {
	s := fs.summaries()
	if s == nil || fn == nil {
		return nil
	}
	cn := s.nodes[fn]
	if cn == nil {
		return nil
	}
	return s.solverReach(cn)
}

// GoroSignals reports whether fn marks a WaitGroup done or carries a
// cancellation path (used by goroleak for `go worker()` launches).
func (fs *Facts) GoroSignals(fn *types.Func) (done, cancel, known bool) {
	s := fs.summaries()
	if s == nil || fn == nil {
		return false, false, false
	}
	cn := s.nodes[fn]
	if cn == nil {
		return false, false, false
	}
	done, cancel = s.goroSignals(cn)
	return done, cancel, true
}

// MagicHint returns the units hint for an exported constant equal to a
// unit-conversion factor, or "" when the object carries no such fact.
func (fs *Facts) MagicHint(obj types.Object) string {
	if fs == nil || obj == nil {
		return ""
	}
	return fs.magicConst[obj]
}

// Gather scans pkgs and records every fact they prove.  Call it with
// every loaded package (the Loader's Loaded() slice) before running
// rules, so consumers in importing packages see a complete store.  The
// call-graph summaries are indexed and forced here too, eagerly, so the
// rule phase can run concurrently against a read-only store.
func (fs *Facts) Gather(pkgs []*Package) {
	for _, p := range pkgs {
		fs.gatherWrappedSentinels(p)
		fs.gatherMagicConsts(p)
	}
	if fs.sums != nil {
		for _, p := range pkgs {
			fs.sums.index(p)
		}
		fs.sums.forceAll()
	}
}

// gatherWrappedSentinels records package-level error variables that are
// wrapped with fmt.Errorf("... %w ...", ..., sentinel) in p.
func (fs *Facts) gatherWrappedSentinels(p *Package) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "fmt" {
				return true
			}
			format, ok := call.Args[0].(*ast.BasicLit)
			if !ok || format.Kind != token.STRING || !strings.Contains(format.Value, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				obj := fs.sentinelObject(p, arg)
				if obj == nil {
					continue
				}
				if _, seen := fs.wrappedSentinel[obj]; !seen {
					fs.wrappedSentinel[obj] = p.ImportPath
					fs.wrappedSentinelAt[obj] = p.Fset.Position(call.Pos())
				}
			}
			return true
		})
	}
}

// sentinelObject resolves e to a package-level variable of type error,
// or nil.
func (fs *Facts) sentinelObject(p *Package, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	return obj
}

// gatherMagicConsts records exported package-level constants whose value
// equals a unitsafety conversion factor.  internal/units (the canonical
// home of those constants) and internal/lint (the table itself) are
// exempt, mirroring the literal scan.
func (fs *Facts) gatherMagicConsts(p *Package) {
	if p.Info == nil ||
		strings.HasSuffix(p.ImportPath, "/internal/units") ||
		strings.HasSuffix(p.ImportPath, "/internal/lint") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !name.IsExported() {
						continue
					}
					obj := p.Info.Defs[name]
					c, ok := obj.(*types.Const)
					if !ok || c.Val() == nil {
						continue
					}
					if c.Val().Kind() != constant.Float && c.Val().Kind() != constant.Int {
						continue
					}
					v, _ := constant.Float64Val(constant.ToFloat(c.Val()))
					for _, m := range unitMagic {
						if v == m.val { //lint:allow floatcmp exact table lookup by value
							fs.magicConst[obj] = m.hint
							break
						}
					}
				}
			}
		}
	}
}
