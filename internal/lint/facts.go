// Cross-package facts.  A Fact is a statement about a types.Object that
// one package proves and another package's rule consumes — the mechanism
// that lets rules see through exported boundaries the way go/analysis
// facts do, without leaving the stdlib.
//
// Two fact kinds exist today:
//
//   - wrapped sentinel: a package-level error variable is wrapped with
//     fmt.Errorf("... %w ...", ..., Sentinel) somewhere in the module.
//     Once wrapped, `err == Sentinel` can never match the wrapped chain,
//     so the errdrop rule upgrades such comparisons from a convention
//     violation to a proven bug.
//   - magic constant: an exported constant whose value equals one of the
//     unitsafety conversion factors.  The defining package is flagged by
//     the literal scan; the fact lets unitsafety also flag *uses* of the
//     constant from other packages, which contain no literal at all.
//
// Facts are gathered in a pass over every loaded package (including
// packages loaded only as dependencies) before any rule runs, so checks
// observe a complete store.  Fact flow follows the import graph: a fact
// about an object in package P can only be consumed by packages that
// (transitively) import P, which keeps the content-hash cache sound —
// a package's cache key already covers its transitive in-module deps.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Facts is the cross-package fact store shared by one lint run.
type Facts struct {
	// wrappedSentinel maps a package-level error variable to the import
	// path of one package that wraps it with fmt.Errorf("%w").
	wrappedSentinel map[types.Object]string
	// wrappedSentinelAt records the wrap site itself, for related
	// locations in exported findings.
	wrappedSentinelAt map[types.Object]token.Position
	// magicConst maps an exported constant object to the units hint for
	// the conversion factor its value equals.
	magicConst map[types.Object]string
	// flagVar maps a package-level variable bound to flag.Int-family
	// results to the flag's name (taintsize source).
	flagVar map[types.Object]string
	// clampedField marks json-tagged fields that are ordering-compared
	// somewhere in their declaring package — the validate()-caps idiom
	// that sanitizes the field module-wide (taintsize).
	clampedField map[types.Object]bool
	// atomicAccess maps a variable or field object to the sync/atomic
	// call that touches it (atomicmix).
	atomicAccess map[types.Object]AtomicFact
	// lockEdges is the module-wide lock-order graph: every observed
	// "acquire B while holding A" pair, tagged with the package that
	// proves it (lockorder).
	lockEdges    []LockEdge
	lockEdgeSeen map[lockEdgeKey]bool
	// sums is the call-graph summary store (interprocedural fact kind).
	sums *summaries
}

// AtomicFact records one sync/atomic access to a variable or field.
type AtomicFact struct {
	// Fn names the atomic operation, e.g. "atomic.AddInt64".
	Fn string
	// Pos is the atomic call site.
	Pos token.Position
	// Pkg is the import path of the package performing the access; the
	// fact is only visible to packages whose import closure contains it.
	Pkg string
}

// LockEdge is one observed ordered pair of mutex acquisitions: To was
// acquired (directly or through a callee) while From was held.
type LockEdge struct {
	From, To types.Object
	// FromName/ToName are the receivers' printed forms at the sites.
	FromName, ToName string
	// FromPos is where the held lock was taken.
	FromPos token.Position
	// Pos is the second acquisition site, inside Pkg.
	Pos token.Position
	// AcqPos is the underlying Lock() site when the acquisition happens
	// in a callee (zero for a direct acquisition).
	AcqPos token.Position
	// Chain lists the callees between Pos and AcqPos.
	Chain []string
	// Pkg is the import path of the package the edge was observed in.
	Pkg string
}

type lockEdgeKey struct {
	from, to types.Object
	pkg      string
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{
		wrappedSentinel:   make(map[types.Object]string),
		wrappedSentinelAt: make(map[types.Object]token.Position),
		magicConst:        make(map[types.Object]string),
		flagVar:           make(map[types.Object]string),
		clampedField:      make(map[types.Object]bool),
		atomicAccess:      make(map[types.Object]AtomicFact),
		lockEdgeSeen:      make(map[lockEdgeKey]bool),
		sums:              newSummaries(),
	}
}

// WrappedIn returns the import path of a package that wraps the
// sentinel object with %w, or "" when none is known.
func (fs *Facts) WrappedIn(obj types.Object) string {
	if fs == nil || obj == nil {
		return ""
	}
	return fs.wrappedSentinel[obj]
}

// WrappedAt returns the recorded %w wrap site for the sentinel object.
func (fs *Facts) WrappedAt(obj types.Object) (token.Position, bool) {
	if fs == nil || obj == nil {
		return token.Position{}, false
	}
	pos, ok := fs.wrappedSentinelAt[obj]
	return pos, ok
}

// summaries exposes the call-graph store to rules; nil-safe.
func (fs *Facts) summaries() *summaries {
	if fs == nil {
		return nil
	}
	return fs.sums
}

// CallBlocks reports whether the statically-resolved callee of call
// (transitively) blocks, with the callee's name prepended to the chain.
func (fs *Facts) CallBlocks(p *Package, call *ast.CallExpr) *BlockFact {
	s := fs.summaries()
	if s == nil {
		return nil
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil
	}
	cn := s.nodes[fn]
	if cn == nil {
		return nil
	}
	bf := s.blocking(cn)
	if bf == nil {
		return nil
	}
	return &BlockFact{What: bf.What, Pos: bf.Pos, Chain: prependChain(shortFuncName(fn), bf.Chain)}
}

// ErrOriginOf reports where the error returned by fn (a pass-through
// wrapper) originates, nil when unknown or fn produces its own errors.
func (fs *Facts) ErrOriginOf(fn *types.Func) *ErrOrigin {
	s := fs.summaries()
	if s == nil || fn == nil {
		return nil
	}
	cn := s.nodes[fn]
	if cn == nil {
		return nil
	}
	return s.errOriginOf(cn)
}

// SolverReach lists the unbudgeted solver sites reachable through fn.
func (fs *Facts) SolverReach(fn *types.Func) []SolverFact {
	s := fs.summaries()
	if s == nil || fn == nil {
		return nil
	}
	cn := s.nodes[fn]
	if cn == nil {
		return nil
	}
	return s.solverReach(cn)
}

// GoroSignals reports whether fn marks a WaitGroup done or carries a
// cancellation path (used by goroleak for `go worker()` launches).
func (fs *Facts) GoroSignals(fn *types.Func) (done, cancel, known bool) {
	s := fs.summaries()
	if s == nil || fn == nil {
		return false, false, false
	}
	cn := s.nodes[fn]
	if cn == nil {
		return false, false, false
	}
	done, cancel = s.goroSignals(cn)
	return done, cancel, true
}

// MagicHint returns the units hint for an exported constant equal to a
// unit-conversion factor, or "" when the object carries no such fact.
func (fs *Facts) MagicHint(obj types.Object) string {
	if fs == nil || obj == nil {
		return ""
	}
	return fs.magicConst[obj]
}

// FlagVar returns the flag name a package-level variable was bound to
// via flag.Int and friends, or "".
func (fs *Facts) FlagVar(obj types.Object) string {
	if fs == nil || obj == nil {
		return ""
	}
	return fs.flagVar[obj]
}

// FieldClamped reports whether the json-tagged field is ordering-
// compared in its declaring package (a module-wide clamp).
func (fs *Facts) FieldClamped(obj types.Object) bool {
	return fs != nil && obj != nil && fs.clampedField[obj]
}

// AtomicAccess returns the sync/atomic access fact for a variable or
// field object.
func (fs *Facts) AtomicAccess(obj types.Object) (AtomicFact, bool) {
	if fs == nil || obj == nil {
		return AtomicFact{}, false
	}
	af, ok := fs.atomicAccess[obj]
	return af, ok
}

// LockEdges returns the module-wide lock-order graph.  Consumers must
// filter by their import closure (LockEdge.Pkg) to stay cache-sound.
func (fs *Facts) LockEdges() []LockEdge {
	if fs == nil {
		return nil
	}
	return fs.lockEdges
}

// SizeFactsOf lists fn's parameters that size an allocation or bound a
// loop without a clamp.
func (fs *Facts) SizeFactsOf(fn *types.Func) []SizeFact {
	s := fs.summaries()
	if s == nil || fn == nil {
		return nil
	}
	cn := s.nodes[fn]
	if cn == nil {
		return nil
	}
	return s.sizeFacts(cn)
}

// SolverTouch reports whether fn (transitively) reaches any iterative-
// solver entry, budgeted or not.
func (fs *Facts) SolverTouch(fn *types.Func) *SolverFact {
	s := fs.summaries()
	if s == nil || fn == nil {
		return nil
	}
	cn := s.nodes[fn]
	if cn == nil {
		return nil
	}
	return s.solverTouch(cn)
}

// CompilesStop reports whether fn (transitively) compiles a request
// Budget into a stop predicate.
func (fs *Facts) CompilesStop(fn *types.Func) bool {
	s := fs.summaries()
	if s == nil || fn == nil {
		return false
	}
	cn := s.nodes[fn]
	if cn == nil {
		return false
	}
	return s.compilesStop(cn)
}

// Gather scans pkgs and records every fact they prove.  Call it with
// every loaded package (the Loader's Loaded() slice) before running
// rules, so consumers in importing packages see a complete store.  The
// call-graph summaries are indexed and forced here too, eagerly, so the
// rule phase can run concurrently against a read-only store.
func (fs *Facts) Gather(pkgs []*Package) {
	for _, p := range pkgs {
		fs.gatherWrappedSentinels(p)
		fs.gatherMagicConsts(p)
		fs.gatherFlagVars(p)
		fs.gatherClampedFields(p)
		fs.gatherAtomicAccess(p)
	}
	if fs.sums != nil {
		for _, p := range pkgs {
			fs.sums.index(p)
		}
		fs.sums.forceAll()
		fs.gatherLockEdges()
	}
}

// gatherWrappedSentinels records package-level error variables that are
// wrapped with fmt.Errorf("... %w ...", ..., sentinel) in p.
func (fs *Facts) gatherWrappedSentinels(p *Package) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "fmt" {
				return true
			}
			format, ok := call.Args[0].(*ast.BasicLit)
			if !ok || format.Kind != token.STRING || !strings.Contains(format.Value, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				obj := fs.sentinelObject(p, arg)
				if obj == nil {
					continue
				}
				if _, seen := fs.wrappedSentinel[obj]; !seen {
					fs.wrappedSentinel[obj] = p.ImportPath
					fs.wrappedSentinelAt[obj] = p.Fset.Position(call.Pos())
				}
			}
			return true
		})
	}
}

// sentinelObject resolves e to a package-level variable of type error,
// or nil.
func (fs *Facts) sentinelObject(p *Package, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return nil
	}
	return obj
}

// gatherMagicConsts records exported package-level constants whose value
// equals a unitsafety conversion factor.  internal/units (the canonical
// home of those constants) and internal/lint (the table itself) are
// exempt, mirroring the literal scan.
func (fs *Facts) gatherMagicConsts(p *Package) {
	if p.Info == nil ||
		strings.HasSuffix(p.ImportPath, "/internal/units") ||
		strings.HasSuffix(p.ImportPath, "/internal/lint") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !name.IsExported() {
						continue
					}
					obj := p.Info.Defs[name]
					c, ok := obj.(*types.Const)
					if !ok || c.Val() == nil {
						continue
					}
					if c.Val().Kind() != constant.Float && c.Val().Kind() != constant.Int {
						continue
					}
					v, _ := constant.Float64Val(constant.ToFloat(c.Val()))
					for _, m := range unitMagic {
						if v == m.val { //lint:allow floatcmp exact table lookup by value
							fs.magicConst[obj] = m.hint
							break
						}
					}
				}
			}
		}
	}
}

// gatherFlagVars records package-level variables bound to flag.Int-
// family results; derefs of such vars are taintsize sources everywhere
// the variable is visible.
func (fs *Facts) gatherFlagVars(p *Package) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					call, ok := unparen(vs.Values[i]).(*ast.CallExpr)
					if !ok {
						continue
					}
					flagName := flagIntCall(p, call)
					if flagName == "" {
						continue
					}
					if obj := p.Info.Defs[name]; obj != nil {
						fs.flagVar[obj] = flagName
					}
				}
			}
		}
	}
}

// gatherClampedFields records json-tagged fields that are ordering-
// compared (directly or via len()) in their own declaring package —
// the validate()-caps idiom.  Restricting the record to the declaring
// package keeps fact flow aligned with the import graph: every
// consumer of the field necessarily imports its declaring package.
func (fs *Facts) gatherClampedFields(p *Package) {
	if p.Info == nil || p.Pkg == nil {
		return
	}
	record := func(e ast.Expr) {
		sel, ok := unparen(e).(*ast.SelectorExpr)
		if !ok {
			return
		}
		fv, tag := jsonFieldOf(p, sel)
		if fv == nil || jsonTagName(tag) == "" || fv.Pkg() != p.Pkg {
			return
		}
		fs.clampedField[fv] = true
	}
	for _, f := range p.Files {
		// A for-condition comparison is a sink (the field *drives* the
		// iteration count), not a clamp; exclude it from the record.
		loopConds := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if fo, ok := n.(*ast.ForStmt); ok && fo.Cond != nil {
				loopConds[fo.Cond] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !isOrdering(be.Op) || loopConds[be] {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				record(side)
				if call, ok := unparen(side).(*ast.CallExpr); ok && isLenOrCap(p, call) {
					record(call.Args[0])
				}
			}
			return true
		})
	}
}

// gatherAtomicAccess records variables and fields passed by address to
// sync/atomic operations.  The smallest position wins so concurrent
// load orders cannot change which site a finding cites.
func (fs *Facts) gatherAtomicAccess(p *Package) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, target := atomicCallTarget(p, call)
			if target == nil {
				return true
			}
			af := AtomicFact{Fn: "atomic." + name, Pos: p.Fset.Position(call.Pos()), Pkg: p.ImportPath}
			if old, seen := fs.atomicAccess[target]; !seen || posLess(af.Pos, old.Pos) {
				fs.atomicAccess[target] = af
			}
			return true
		})
	}
}

// atomicCallTarget matches atomic.LoadInt64(&x.f) and friends and
// resolves the target object.
func atomicCallTarget(p *Package, call *ast.CallExpr) (string, types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return "", nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", nil
	}
	name := sel.Sel.Name
	prefixed := false
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			prefixed = true
			break
		}
	}
	if !prefixed {
		return "", nil
	}
	amp, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || amp.Op != token.AND {
		return "", nil
	}
	switch x := unparen(amp.X).(type) {
	case *ast.Ident:
		return name, p.Info.Uses[x]
	case *ast.SelectorExpr:
		return name, p.Info.Uses[x.Sel]
	}
	return "", nil
}

// posLess orders positions by (filename, offset) — the forceAll order.
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Offset < b.Offset
}

// ---------------------------------------------------------------------
// Lock-order edges.

// heldLock is one mutex in the lexical held set.
type heldLock struct {
	obj  types.Object
	name string
	pos  token.Position
}

// gatherLockEdges walks every function with the lexical held-set
// discipline of lockheld and records an edge each time a second mutex
// is acquired — directly, or transitively through a callee's lock
// summary — while another is held.  Runs after forceAll, in the same
// deterministic node order.
func (fs *Facts) gatherLockEdges() {
	for _, n := range fs.sums.orderedNodes() {
		fs.lockEdgeBlock(n, n.decl.Body, nil)
	}
}

func (fs *Facts) lockEdgeBlock(n *funcNode, block *ast.BlockStmt, held []heldLock) {
	p := n.pkg
	cur := append([]heldLock(nil), held...)
	for _, stmt := range block.List {
		if obj, name, method, isDefer, pos := lockStmt(p, stmt); method != "" {
			switch method {
			case "Lock", "RLock":
				for _, h := range cur {
					fs.addLockEdge(n, h, obj, name, pos, token.Position{}, nil)
				}
				if !isDefer {
					cur = append(cur, heldLock{obj: obj, name: name, pos: pos})
				}
			case "Unlock", "RUnlock":
				// A plain Unlock releases; `defer Unlock` keeps the
				// region open to the end of the function.
				if !isDefer {
					for i := len(cur) - 1; i >= 0; i-- {
						if cur[i].name == name {
							cur = append(cur[:i], cur[i+1:]...)
							break
						}
					}
				}
			}
			continue
		}
		if len(cur) > 0 {
			fs.lockEdgeShallow(n, stmt, cur)
		}
		fs.lockEdgeNested(n, stmt, cur)
	}
}

// lockStmt classifies a statement as a Lock-family call on a sync
// mutex, resolving the mutex's identity object.
func lockStmt(p *Package, stmt ast.Stmt) (obj types.Object, name, method string, isDefer bool, pos token.Position) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call, isDefer = s.Call, true
	}
	if call == nil {
		return nil, "", "", false, token.Position{}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", "", false, token.Position{}
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", "", false, token.Position{}
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncMutex(tv.Type) {
		return nil, "", "", false, token.Position{}
	}
	obj = mutexObject(p, sel.X)
	if obj == nil {
		return nil, "", "", false, token.Position{}
	}
	return obj, types.ExprString(sel.X), sel.Sel.Name, isDefer, p.Fset.Position(call.Pos())
}

// lockEdgeShallow inspects one statement (not descending into nested
// blocks — the recursion handles those — nor into literals, go or defer
// statements, which run outside the current acquisition order) for
// acquisitions while held.
func (fs *Facts) lockEdgeShallow(n *funcNode, stmt ast.Stmt, held []heldLock) {
	p := n.pkg
	ast.Inspect(stmt, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.BlockStmt, *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if obj, name, ok := mutexAcquire(p, x); ok {
				for _, h := range held {
					fs.addLockEdge(n, h, obj, name, p.Fset.Position(x.Pos()), token.Position{}, nil)
				}
				return true
			}
			fn := calleeFunc(p, x)
			if fn == nil {
				return true
			}
			if cn := fs.sums.nodes[fn]; cn != nil {
				for _, lf := range fs.sums.lockFacts(cn) {
					for _, h := range held {
						fs.addLockEdge(n, h, lf.Obj, lf.Name, p.Fset.Position(x.Pos()), lf.Pos,
							prependChain(shortFuncName(fn), lf.Chain))
					}
				}
			}
		}
		return true
	})
}

// lockEdgeNested recurses into the block children of stmt with the
// current held set.
func (fs *Facts) lockEdgeNested(n *funcNode, stmt ast.Stmt, held []heldLock) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		fs.lockEdgeBlock(n, s, held)
	case *ast.IfStmt:
		fs.lockEdgeBlock(n, s.Body, held)
		if s.Else != nil {
			fs.lockEdgeNested(n, s.Else, held)
		}
	case *ast.ForStmt:
		fs.lockEdgeBlock(n, s.Body, held)
	case *ast.RangeStmt:
		fs.lockEdgeBlock(n, s.Body, held)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				fs.lockEdgeBlock(n, &ast.BlockStmt{List: cc.Body}, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				fs.lockEdgeBlock(n, &ast.BlockStmt{List: cc.Body}, held)
			}
		}
	}
}

// addLockEdge records one ordered acquisition pair, deduplicated per
// (from, to, package).  Re-acquiring the same mutex object under a
// different receiver expression (a.mu then b.mu) is two instances, not
// an ordering edge; the same printed form is a genuine self-deadlock.
func (fs *Facts) addLockEdge(n *funcNode, h heldLock, to types.Object, toName string, pos, acqPos token.Position, chain []string) {
	if to == nil || h.obj == nil {
		return
	}
	if h.obj == to && h.name != toName {
		return
	}
	key := lockEdgeKey{from: h.obj, to: to, pkg: n.pkg.ImportPath}
	if fs.lockEdgeSeen[key] {
		return
	}
	fs.lockEdgeSeen[key] = true
	fs.lockEdges = append(fs.lockEdges, LockEdge{
		From: h.obj, To: to,
		FromName: h.name, ToName: toName,
		FromPos: h.pos, Pos: pos, AcqPos: acqPos,
		Chain: chain, Pkg: n.pkg.ImportPath,
	})
}
