package lint

import (
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixableModule lays out a module with one errdrop sentinel comparison
// and one unitsafety conversion literal, both carrying machine-
// applicable fixes.
func fixableModule(t *testing.T) string {
	t.Helper()
	return writeTempModule(t, map[string]string{
		"internal/units/units.go": strings.Join([]string{
			"// Package units mirrors the real conversion helpers.",
			"package units",
			"",
			"// CToK converts Celsius to Kelvin.",
			"func CToK(c float64) float64 { return c + 273.15 }",
			"",
			"// KToC converts Kelvin to Celsius.",
			"func KToC(k float64) float64 { return k - 273.15 }",
			"",
		}, "\n"),
		"app/app.go": strings.Join([]string{
			"package app",
			"",
			"import (",
			"\t\"fmt\"",
			"",
			"\t\"tmpmod/internal/units\"",
			")",
			"",
			"var _ = units.CToK",
			"",
			"// ErrStopped mirrors a solver sentinel.",
			"var ErrStopped = fmt.Errorf(\"stopped\")",
			"",
			"// Stopped compares with == where errors.Is is required.",
			"func Stopped(err error) bool {",
			"\treturn err == ErrStopped",
			"}",
			"",
			"// Offset does the inline conversion the units helper exists for.",
			"func Offset(c float64) float64 {",
			"\treturn c + 273.15",
			"}",
			"",
		}, "\n"),
	})
}

// TestFixRoundTrip proves the full -fix pipeline: findings carry fixes
// with root-relative edits, dry-run changes nothing, a real apply
// rewrites the file, and the result re-lints clean and is gofmt-clean.
func TestFixRoundTrip(t *testing.T) {
	root := fixableModule(t)
	opts := ModuleOptions{Dir: root, Patterns: []string{"./..."}}

	res, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := PendingFixes(res.Findings); got != 2 {
		t.Fatalf("PendingFixes = %d, want 2 (errdrop + unitsafety): %v", got, res.Findings)
	}
	for _, f := range res.Findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			if filepath.ToSlash(e.File) != "app/app.go" {
				t.Errorf("fix edit file %q not module-root-relative", e.File)
			}
		}
	}

	appPath := filepath.Join(root, "app", "app.go")
	before, err := os.ReadFile(appPath)
	if err != nil {
		t.Fatal(err)
	}

	// Dry-run: the changed list is populated, the file is untouched.
	changed, err := ApplyFixes(root, res.Findings, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || filepath.ToSlash(changed[0]) != "app/app.go" {
		t.Fatalf("dry-run changed = %v, want [app/app.go]", changed)
	}
	after, err := os.ReadFile(appPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("dry-run must not write the file")
	}

	// Real apply: both rewrites land in one pass.
	if _, err := ApplyFixes(root, res.Findings, false); err != nil {
		t.Fatal(err)
	}
	fixed, err := os.ReadFile(appPath)
	if err != nil {
		t.Fatal(err)
	}
	src := string(fixed)
	if !strings.Contains(src, "errors.Is(err, ErrStopped)") {
		t.Errorf("sentinel comparison not rewritten:\n%s", src)
	}
	if !strings.Contains(src, "\"errors\"") {
		t.Errorf("errors import not added:\n%s", src)
	}
	if !strings.Contains(src, "units.CToK(c)") {
		t.Errorf("conversion literal not rewritten:\n%s", src)
	}

	// The applied file is gofmt-clean.
	formatted, err := format.Source(fixed)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if string(formatted) != src {
		t.Errorf("fixed file is not gofmt-clean:\n%s", src)
	}

	// And the module re-lints clean.
	again, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Findings) != 0 {
		t.Errorf("findings after -fix = %v, want none", again.Findings)
	}
}

// TestFixSurvivesCache proves a Fix round-trips through the content-hash
// result cache: the warm run's findings still carry applicable edits.
func TestFixSurvivesCache(t *testing.T) {
	root := fixableModule(t)
	cache := &Cache{Dir: filepath.Join(root, "lintcache")}
	opts := ModuleOptions{Dir: root, Patterns: []string{"./..."}, Cache: cache}

	if _, err := RunModule(opts); err != nil {
		t.Fatal(err)
	}
	warm, err := RunModule(opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheMisses != 0 {
		t.Fatalf("warm run missed the cache: hits=%d misses=%d", warm.CacheHits, warm.CacheMisses)
	}
	if got := PendingFixes(warm.Findings); got != 2 {
		t.Fatalf("cached PendingFixes = %d, want 2", got)
	}
	if _, err := ApplyFixes(root, warm.Findings, false); err != nil {
		t.Fatal(err)
	}
	again, err := RunModule(ModuleOptions{Dir: root, Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Findings) != 0 {
		t.Errorf("findings after cached -fix = %v, want none", again.Findings)
	}
}

// TestApplyFixesSkipsStaleEdits proves out-of-range and overlapping
// edits are dropped instead of corrupting the file.
func TestApplyFixesSkipsStaleEdits(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"app/app.go": "package app\n",
	})
	findings := []Finding{
		{Fix: &Fix{Desc: "stale", Edits: []TextEdit{{File: "app/app.go", Offset: 5000, End: 5004, New: "nope"}}}},
	}
	changed, err := ApplyFixes(root, findings, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Errorf("stale out-of-range edit applied: %v", changed)
	}
	data, err := os.ReadFile(filepath.Join(root, "app", "app.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "package app\n" {
		t.Errorf("file corrupted by stale edit: %q", data)
	}
}
