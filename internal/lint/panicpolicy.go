// The panicpolicy rule: library packages return errors, they do not
// panic.  The only tolerated panics are the argument-contract checks in
// internal/linalg (dimension mismatches) and internal/mesh (index range),
// which panic with a constant message — never with a wrapped error value.
package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

type panicpolicyRule struct{}

func init() { Register(panicpolicyRule{}) }

func (panicpolicyRule) Name() string { return "panicpolicy" }

func (panicpolicyRule) Doc() string {
	return "forbid panics in library packages (contract-check panics in linalg/mesh excepted)"
}

// contractPanicArg reports whether the panic argument is the shape used
// by the sanctioned contract checks: a string literal, or fmt.Sprintf of
// a string literal.  panic(err) never matches.
func contractPanicArg(e ast.Expr) bool {
	switch a := e.(type) {
	case *ast.BasicLit:
		return a.Kind == token.STRING
	case *ast.CallExpr:
		sel, ok := a.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sprintf" {
			return false
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "fmt" {
			return false
		}
		if len(a.Args) == 0 {
			return false
		}
		lit, ok := a.Args[0].(*ast.BasicLit)
		return ok && lit.Kind == token.STRING
	}
	return false
}

func (panicpolicyRule) Check(p *Package) []Finding {
	if !strings.Contains(p.ImportPath, "/internal/") {
		return nil // commands and examples may abort however they like
	}
	contractPkg := strings.HasSuffix(p.ImportPath, "/internal/linalg") ||
		strings.HasSuffix(p.ImportPath, "/internal/mesh")
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" || len(call.Args) != 1 {
				return true
			}
			if contractPkg && contractPanicArg(call.Args[0]) {
				return true
			}
			msg := "panic in library package"
			if contractPkg {
				msg = "non-contract panic in " + p.ImportPath
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "panicpolicy",
				Msg:  msg,
				Hint: "return an error to the caller instead of panicking",
			})
			return true
		})
	}
	return out
}
