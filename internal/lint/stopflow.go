// The stopflow rule: on a handler path in internal/serve, the request's
// compiled stop predicate must provably reach every iterative-solver
// call.  budgetstop already rejects solver calls with *no* Stop at all;
// stopflow is the stronger property — the Stop that is threaded must be
// *the request's own* (a Budget.stop() result or a func() bool stop
// parameter), not some unrelated or forgotten one, so an admission
// budget the client asked for cannot silently fail to bound the solve.
//
// Mechanics, per function in a */internal/serve package:
//
//   - carry seeds: results of b.stop()/b.Stop() calls on a type named
//     Budget, and parameters of type func() bool.  Carry propagates
//     through assignments whose right-hand side mentions a carrying
//     value (cfg, err := req.Sweep.config(stop) makes cfg carry).
//   - every call whose callee (transitively, via the solver-touch
//     summary) reaches a linalg iterative entry must either mention a
//     carrying value in its arguments/receiver, or resolve to a callee
//     that compiles the stop itself further down (the handler →
//     executeStudy hop).
//   - a function that is in request scope (mentions a StudyRequest
//     value) but never compiles any stop is flagged on every solver-
//     touching call: the budget the wire promised never materialized.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

type stopflowRule struct{}

func init() { Register(stopflowRule{}) }

func (stopflowRule) Name() string { return "stopflow" }

func (stopflowRule) Doc() string {
	return "the request's compiled stop predicate must reach every iterative-solver call on serve handler paths"
}

func (stopflowRule) Check(p *Package) []Finding {
	if p.Info == nil || !strings.HasSuffix(p.ImportPath, "/internal/serve") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, p.stopflowFunc(fd)...)
		}
	}
	return out
}

// stopflowFunc analyzes one function: seeds the carry set, walks the
// body in source order propagating carry through assignments, and
// checks every solver-touching call.
func (p *Package) stopflowFunc(fd *ast.FuncDecl) []Finding {
	carry := make(map[types.Object]bool)
	hasStop := false
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj != nil && isStopPredicate(obj.Type()) {
					carry[obj] = true
					hasStop = true
				}
			}
		}
	}
	inReqScope := p.mentionsStudyRequest(fd.Body)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// b.stop() results and anything derived from a carrying
			// value start/continue the carry chain.
			rhsCarries := false
			for _, r := range x.Rhs {
				if call, ok := unparen(r).(*ast.CallExpr); ok && isBudgetStopCall(p, call) {
					rhsCarries = true
					hasStop = true
					break
				}
				if usesAnyObject(p, r, carry) {
					rhsCarries = true
					break
				}
			}
			if rhsCarries {
				for _, l := range x.Lhs {
					if obj := lhsObject(p, l); obj != nil {
						carry[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if f := p.stopflowCall(fd, x, carry, hasStop, inReqScope); f != nil {
				out = append(out, *f)
			}
		}
		return true
	})
	if !hasStop && !inReqScope {
		return nil // not a handler path; budgetstop covers the rest
	}
	return out
}

// stopflowCall checks one call: if it (transitively) touches a solver,
// it must carry the stop or compile one downstream.
func (p *Package) stopflowCall(fd *ast.FuncDecl, call *ast.CallExpr, carry map[types.Object]bool, hasStop, inReqScope bool) *Finding {
	if !hasStop && !inReqScope {
		return nil
	}
	var touch *SolverFact
	if name, isEntry := solverEntryCall(p, call); isEntry {
		touch = &SolverFact{Entry: "linalg." + name, Pos: p.Fset.Position(call.Pos())}
	} else {
		fn := calleeFunc(p, call)
		if fn == nil {
			return nil
		}
		if p.Facts.CompilesStop(fn) {
			return nil // the stop is compiled further down this path
		}
		sf := p.Facts.SolverTouch(fn)
		if sf == nil {
			return nil
		}
		touch = &SolverFact{Entry: sf.Entry, Pos: sf.Pos, Chain: prependChain(shortFuncName(fn), sf.Chain)}
	}
	if usesAnyObject(p, call, carry) {
		return nil // the request's stop (or a value built with it) is threaded
	}
	msg := "handler path reaches " + touch.Entry
	if len(touch.Chain) > 0 {
		msg += " via " + strings.Join(touch.Chain, " → ")
	}
	if hasStop {
		msg += " without the request's compiled stop predicate"
	} else {
		msg += " but never compiles the request's budget into a stop"
	}
	f := &Finding{
		Pos:  p.Fset.Position(call.Pos()),
		Rule: "stopflow",
		Msg:  msg,
		Hint: "thread the Budget.stop() predicate (or the stop parameter) into this call's options",
	}
	if len(touch.Chain) > 0 || touch.Pos != f.Pos {
		f.Related = []Related{{Pos: touch.Pos, Msg: "the iterative-solver call is here"}}
	}
	return f
}

// isStopPredicate matches func() bool — the compiled stop's type.
func isStopPredicate(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// mentionsStudyRequest reports whether the body touches a value of a
// type named StudyRequest — the wire request a handler is driven by.
func (p *Package) mentionsStudyRequest(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil {
			return true
		}
		t := obj.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok &&
			named.Obj() != nil && named.Obj().Name() == "StudyRequest" {
			found = true
			return false
		}
		return true
	})
	return found
}

// usesAnyObject reports whether any identifier under n resolves to an
// object in set.
func usesAnyObject(p *Package, n ast.Node, set map[types.Object]bool) bool {
	if len(set) == 0 {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && set[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
