// The lockheld rule: no blocking operation while a sync.Mutex or
// sync.RWMutex is held.  The telemetry registry and the parallel pool
// both take short critical sections on hot paths; a channel op, a
// WaitGroup.Wait or a solver entry inside one turns a bounded lock into
// an unbounded convoy (or a deadlock once the blocked goroutine is the
// one that would release the lock).
//
// The analysis is lexical per block: a region starts at `x.Lock()` /
// `x.RLock()` and ends at the matching `x.Unlock()` / `x.RUnlock()`
// statement in the same block; `defer x.Unlock()` extends the region to
// the end of the function.  Inside a region the rule flags channel
// sends and receives, select statements, ranging over a channel, any
// `.Wait()` call, and calls into the linalg/robust/thermal solver entry
// points.  Function literals are skipped: they run later, usually after
// the lock is gone.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type lockheldRule struct{}

func init() { Register(lockheldRule{}) }

func (lockheldRule) Name() string { return "lockheld" }

func (lockheldRule) Doc() string {
	return "no blocking call (channel op, Wait, solver entry) while a sync.Mutex/RWMutex is held"
}

func (lockheldRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, p.lockheldBlock(body, nil)...)
			}
			return true
		})
	}
	return out
}

// mutexCall classifies an expression statement as a Lock/Unlock-family
// call on a sync mutex and returns the receiver's printed form as the
// region key.
func (p *Package) mutexCall(stmt ast.Stmt) (key, method string) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncMutex(tv.Type) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// lockheldBlock walks one block, tracking which mutexes are held after
// each statement, and flags blocking operations inside held regions.
// held maps region key → the Lock call's position line (for messages).
func (p *Package) lockheldBlock(block *ast.BlockStmt, held map[string]bool) []Finding {
	cur := make(map[string]bool, len(held))
	for k := range held {
		cur[k] = true
	}
	var out []Finding
	for _, stmt := range block.List {
		if key, method := p.mutexCall(stmt); key != "" {
			switch method {
			case "Lock", "RLock":
				if _, isDefer := stmt.(*ast.DeferStmt); !isDefer {
					cur[key] = true
				}
			case "Unlock", "RUnlock":
				// A plain Unlock releases; `defer Unlock` keeps the
				// region open to the end of the function.
				if _, isDefer := stmt.(*ast.DeferStmt); !isDefer {
					delete(cur, key)
				}
			}
			continue
		}
		if len(cur) > 0 {
			out = append(out, p.flagBlockingShallow(stmt)...)
		}
		out = append(out, p.lockheldNested(stmt, cur)...)
	}
	return out
}

// lockheldNested recurses into the block children of stmt with the
// current held set.
func (p *Package) lockheldNested(stmt ast.Stmt, held map[string]bool) []Finding {
	var out []Finding
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, p.lockheldBlock(s, held)...)
	case *ast.IfStmt:
		out = append(out, p.lockheldBlock(s.Body, held)...)
		if s.Else != nil {
			out = append(out, p.lockheldNested(s.Else, held)...)
		}
	case *ast.ForStmt:
		out = append(out, p.lockheldBlock(s.Body, held)...)
	case *ast.RangeStmt:
		out = append(out, p.lockheldBlock(s.Body, held)...)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, p.lockheldBlock(&ast.BlockStmt{List: cc.Body}, held)...)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, p.lockheldBlock(&ast.BlockStmt{List: cc.Body}, held)...)
			}
		}
	}
	return out
}

// flagBlockingShallow inspects one statement (not descending into nested
// blocks or function literals — the recursion handles blocks) for
// blocking operations.
func (p *Package) flagBlockingShallow(stmt ast.Stmt) []Finding {
	var out []Finding
	flag := func(n ast.Node, what string) {
		out = append(out, Finding{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: "lockheld",
			Msg:  what + " while a mutex is held",
			Hint: "release the lock first (copy what you need out of the critical section)",
		})
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BlockStmt:
			return false // handled by the block recursion
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			flag(x, "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				flag(x, "channel receive")
			}
		case *ast.SelectStmt:
			flag(x, "select")
			return false
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					flag(x, "range over channel")
				}
			}
		case *ast.CallExpr:
			if what, bad := p.blockingCall(x); bad {
				flag(x, what)
			} else if bf := p.Facts.CallBlocks(p, x); bf != nil {
				// Interprocedural: the callee's summary proves it (or
				// something it calls) blocks.
				out = append(out, Finding{
					Pos:  p.Fset.Position(x.Pos()),
					Rule: "lockheld",
					Msg: "call to " + strings.Join(bf.Chain, " → ") +
						" reaches " + bf.What + " while a mutex is held",
					Hint: "release the lock first (copy what you need out of the critical section)",
					Related: []Related{{
						Pos: bf.Pos,
						Msg: bf.What + " happens here",
					}},
				})
			}
		}
		return true
	})
	return out
}

// blockingCall reports whether the call is a Wait (sync.WaitGroup and
// friends) or a solver entry point in linalg/robust/thermal.
func (p *Package) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name == "Wait" {
		return "Wait()", true
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	for _, suffix := range []string{"/internal/linalg", "/internal/robust", "/internal/thermal"} {
		if strings.HasSuffix(path, suffix) {
			name := sel.Sel.Name
			if strings.HasPrefix(name, "CG") || strings.HasPrefix(name, "BiCGSTAB") ||
				strings.Contains(name, "Solve") {
				return "solver entry " + name, true
			}
		}
	}
	return "", false
}
