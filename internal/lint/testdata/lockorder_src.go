// Fixture for the lockorder rule: the module-wide lock-acquisition
// graph must be acyclic.  One direction of the cycle is hidden one call
// deep in the ipahelp package.
package cosee

import (
	"sync"

	"aeropack/internal/lint/testdata/ipahelp"
)

var local sync.Mutex

// aThenB holds MuA while the callee acquires MuB one package over
// (edge MuA→MuB, via ipahelp.UnderB).
func aThenB() int {
	ipahelp.MuA.Lock()
	defer ipahelp.MuA.Unlock()
	return ipahelp.UnderB() // want: closes the cycle with bThenA
}

// bThenA takes the same locks in the reverse order.
func bThenA() {
	ipahelp.MuB.Lock()
	ipahelp.MuA.Lock() // want: closes the cycle with aThenB
	ipahelp.MuA.Unlock()
	ipahelp.MuB.Unlock()
}

// ordered keeps a consistent local→MuB order: no reverse edge exists,
// so the graph stays acyclic through here.
func ordered() int {
	local.Lock()
	defer local.Unlock()
	return ipahelp.UnderB() // clean: consistent order
}

// reenter re-acquires a mutex it already holds — an immediate
// self-deadlock, suppressed here as the allow-directive demo.
func reenter() {
	local.Lock()
	local.Lock() //lint:allow lockorder deliberate self-deadlock demo
	local.Unlock()
	local.Unlock()
}
