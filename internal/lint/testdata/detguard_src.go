// Package scope exercises the detguard rule: wall-clock reads, math/rand
// draws and map iteration inside closures handed to the parallel engine
// are flagged; deterministic bodies and hoisted nondeterminism are fine;
// //lint:allow suppresses one call.
package scope

import (
	"math/rand"
	"time"

	"aeropack/internal/parallel"
	"aeropack/internal/robust"
)

// WallClock is flagged: time.Now inside a parallel.Map body.
func WallClock(xs []float64) ([]float64, error) {
	return parallel.Map(xs, 2, func(i int, x float64) (float64, error) {
		t := time.Now()
		return x * float64(t.Nanosecond()), nil
	})
}

// Random is flagged: math/rand inside a parallel.For body.
func Random(out []float64) {
	parallel.For(len(out), 2, func(i int) {
		out[i] = rand.Float64()
	})
}

// MapOrder is flagged: map iteration inside a parallel.Blocks body.
func MapOrder(w map[string]float64, out []float64) {
	parallel.Blocks(len(out), 2, func(b, lo, hi int) {
		s := 0.0
		for _, v := range w {
			s += v
		}
		for i := lo; i < hi; i++ {
			out[i] = s
		}
	})
}

// KeepGoingClock is flagged: time.Since inside a robust.MapKeepGoing
// body.
func KeepGoingClock(xs []float64) ([]float64, []*robust.PointError) {
	start := time.Now()
	return robust.MapKeepGoing(xs, 2, nil, func(i int, x float64) (float64, error) {
		return x + time.Since(start).Seconds(), nil
	})
}

// Deterministic is fine: the body derives everything from the index.
func Deterministic(xs []float64) ([]float64, error) {
	return parallel.Map(xs, 2, func(i int, x float64) (float64, error) {
		return x * float64(i), nil
	})
}

// Hoisted is fine: the clock is read once, outside the worker.
func Hoisted(out []float64) {
	now := float64(time.Now().Unix())
	parallel.For(len(out), 2, func(i int) {
		out[i] = now
	})
}

// Suppressed is tolerated by the trailing allow directive.
func Suppressed(out []float64) {
	parallel.For(len(out), 2, func(i int) {
		out[i] = float64(time.Now().Unix()) //lint:allow detguard coarse timestamp tag, not part of the numeric result
	})
}
