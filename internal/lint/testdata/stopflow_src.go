// Fixture for the stopflow rule: on serve handler paths, the request's
// compiled stop predicate must reach every iterative-solver call — a
// budget the wire promised must actually bound the solve.
package serve

import (
	"aeropack/internal/linalg"
	"aeropack/internal/lint/testdata/ipahelp"
)

// Budget mirrors the wire budget; stop compiles it into a predicate.
type Budget struct{ MaxIter int }

func (b *Budget) stop() func() bool {
	n := 0
	return func() bool { n++; return n > b.MaxIter }
}

// StudyRequest mirrors the wire request the handlers are driven by.
type StudyRequest struct {
	Budget *Budget
}

// goodDirect threads the compiled stop into the budgeted callee.
func goodDirect(req *StudyRequest, a *linalg.CSR, b []float64) ([]float64, error) {
	stop := req.Budget.stop()
	return ipahelp.SolveBudgeted(a, b, stop) // clean: carries the stop
}

// goodParam threads its stop parameter straight through.
func goodParam(a *linalg.CSR, b []float64, stop func() bool) ([]float64, error) {
	return ipahelp.SolveBudgeted(a, b, stop) // clean: carries the stop
}

// badForgotten compiles the stop and then solves without it — the
// solver call is one package over, one call deep.
func badForgotten(req *StudyRequest, a *linalg.CSR, b []float64) ([]float64, error) {
	stop := req.Budget.stop()
	_ = stop
	return ipahelp.SolveLoose(a, b) // want: without the compiled stop
}

// badNeverCompiled is in request scope but never turns the budget into
// a stop at all.
func badNeverCompiled(req *StudyRequest, a *linalg.CSR, b []float64) ([]float64, error) {
	if req.Budget == nil {
		return nil, nil
	}
	return ipahelp.SolveLoose(a, b) // want: never compiles the budget
}

// plainHelper is outside request scope entirely: stopflow leaves it to
// budgetstop.
func plainHelper(a *linalg.CSR, b []float64) ([]float64, error) {
	return ipahelp.SolveLoose(a, b) // clean here (budgetstop's domain)
}

// allowed demonstrates the suppression escape hatch.
func allowed(req *StudyRequest, a *linalg.CSR, b []float64) ([]float64, error) {
	stop := req.Budget.stop()
	_ = stop
	return ipahelp.SolveLoose(a, b) //lint:allow stopflow preview endpoint runs unbudgeted by design
}
