// Package scope exercises the panicpolicy rule in an ordinary library
// package: every panic is flagged, //lint:allow suppresses one line.
package scope

import "errors"

var errBroken = errors.New("broken")

// Explode is flagged: library code returns errors, it does not panic.
func Explode() {
	panic(errBroken)
}

// ExplodeString is flagged too: outside linalg/mesh even constant-message
// panics are forbidden.
func ExplodeString() {
	panic("unreachable")
}

// ExplodeAllowed is suppressed by the trailing allow directive.
func ExplodeAllowed() {
	panic("impossible state") //lint:allow panicpolicy demonstrating the escape hatch
}
