// Package scope exercises the errdrop rule: discarded error returns and
// ==/!= sentinel comparisons are flagged (the linalg.ErrStopped compare
// carries the cross-package wrapped-with-%w fact), explicit discards
// and errors.Is are fine, and //lint:allow suppresses one drop.
package scope

import (
	"errors"
	"fmt"

	"aeropack/internal/linalg"
)

// ErrScope is a local package-level sentinel.
var ErrScope = errors.New("scope failed")

func mayFail() error { return nil }

// errDeep seeds mayFailDeep with a non-call return, so the origin chase
// stops at the function itself.
var errDeep = errors.New("scope: deep failure")

func mayFailDeep() error { return errDeep }

// wrapDeep is a pass-through wrapper: the error it returns actually
// comes from mayFailDeep.
func wrapDeep() error { return mayFailDeep() }

// DroppedViaWrapper is flagged with the interprocedural origin: the
// summary sees through wrapDeep to mayFailDeep.
func DroppedViaWrapper() {
	wrapDeep()
}

// Dropped is flagged: the error result vanishes.
func Dropped() {
	mayFail()
}

// DroppedDefer is flagged: a deferred call drops its error too.
func DroppedDefer() {
	defer mayFail()
}

// CompareStopped is flagged with the cross-package fact: internal/linalg
// wraps ErrStopped with %w, so == can never match.
func CompareStopped(err error) bool {
	return err == linalg.ErrStopped
}

// CompareLocalSentinel is flagged: package-level sentinel compared with !=.
func CompareLocalSentinel(err error) bool {
	return err != ErrScope
}

// ExplicitDiscard is fine: the blank assignment is a visible decision.
func ExplicitDiscard() {
	_ = mayFail()
}

// Handled is fine.
func Handled() error {
	if err := mayFail(); err != nil {
		return fmt.Errorf("scope: %w", err)
	}
	return nil
}

// IsStopped is fine: errors.Is unwraps.
func IsStopped(err error) bool {
	return errors.Is(err, linalg.ErrStopped)
}

// NilCheck is fine: nil comparison is the canonical success test.
func NilCheck(err error) bool {
	return err == nil
}

// PrintFamily is fine: fmt's print family is exempt.
func PrintFamily() {
	fmt.Println("scope")
}

// Suppressed is tolerated by the trailing allow directive.
func Suppressed() {
	mayFail() //lint:allow errdrop best-effort cleanup, failure changes nothing
}
