// Package ipahelp is the cross-package helper for the interprocedural
// golden tests: each function has a deliberately simple body whose
// call-graph summary (span behavior, blocking, solver reach, goroutine
// signals) the spanleak/lockheld/budgetstop/goroleak fixtures consume
// from one call away.  Living under testdata keeps it out of go build
// and module-wide lint runs.
package ipahelp

import (
	"sync"
	"sync/atomic"

	"aeropack/internal/linalg"
	"aeropack/internal/obs"
)

// kept receives spans handed to Keep; the escape is the point.
var kept *obs.Span

// Annotate uses the span without ending it: the caller still owes the
// End (summary: neutral).
func Annotate(sp *obs.Span) {
	sp.Attr("phase", "ipa")
}

// Finish ends the span on every path (summary: ends).
func Finish(sp *obs.Span) {
	sp.End()
}

// Keep stores the span; ownership transfers (summary: escapes).
func Keep(sp *obs.Span) {
	kept = sp
}

// Recv blocks on a channel receive (summary: blocking).
func Recv(c chan int) int {
	return <-c
}

// RecvIndirect blocks one call deeper (summary: blocking via Recv).
func RecvIndirect(c chan int) int {
	return Recv(c)
}

// Pure cannot block.
func Pure() int {
	return 1
}

// SolveLoose enters CG with no budget (summary: unbudgeted solver
// reach).
func SolveLoose(a *linalg.CSR, b []float64) ([]float64, error) {
	x, _, err := linalg.CG(a, b, nil, nil, 1e-9, 500)
	return x, err
}

// SolveBudgeted threads its caller's stop into the solve (summary: no
// unbudgeted reach).
func SolveBudgeted(a *linalg.CSR, b []float64, stop func() bool) ([]float64, error) {
	x, _, err := linalg.CGOpt(a, b, nil, &linalg.IterOptions{Tol: 1e-9, MaxIter: 500, Stop: stop})
	return x, err
}

// Worker marks the group done and drains the feed channel (summary:
// done and cancel signals).
func Worker(wg *sync.WaitGroup, c chan int) {
	defer wg.Done()
	<-c
}

// Drift neither signals a WaitGroup nor consumes a cancellation channel
// (summary: no signals — launching it unjoined is a leak).
func Drift(c chan int) {
	c <- 1
}

// Alloc sizes an allocation straight from its parameter (summary: size
// fact on param 0).
func Alloc(n int) []float64 {
	return make([]float64, n)
}

// AllocCapped clamps before allocating (summary: no size fact).
func AllocCapped(n int) []float64 {
	if n > 4096 {
		n = 4096
	}
	return make([]float64, n)
}

// FillFrom allocates one slot per input point — the input's *length*
// sizes the result (summary: size fact on param 0).
func FillFrom(points []float64) []float64 {
	out := make([]float64, len(points))
	copy(out, points)
	return out
}

// MuA and MuB are the module-visible mutexes of the lockorder fixtures.
var (
	MuA sync.Mutex
	MuB sync.Mutex
)

// UnderB runs one step under MuB (summary: acquires MuB) — the
// acquisition the lockorder fixtures reach one package over.
func UnderB() int {
	MuB.Lock()
	defer MuB.Unlock()
	return 1
}

// HotCounter's N is only ever bumped atomically here; any plain access
// elsewhere in the module mixes disciplines (atomicmix's fact source).
type HotCounter struct{ N int64 }

// Bump increments the counter atomically.
func Bump(h *HotCounter) {
	atomic.AddInt64(&h.N, 1)
}
