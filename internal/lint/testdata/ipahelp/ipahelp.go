// Package ipahelp is the cross-package helper for the interprocedural
// golden tests: each function has a deliberately simple body whose
// call-graph summary (span behavior, blocking, solver reach, goroutine
// signals) the spanleak/lockheld/budgetstop/goroleak fixtures consume
// from one call away.  Living under testdata keeps it out of go build
// and module-wide lint runs.
package ipahelp

import (
	"sync"

	"aeropack/internal/linalg"
	"aeropack/internal/obs"
)

// kept receives spans handed to Keep; the escape is the point.
var kept *obs.Span

// Annotate uses the span without ending it: the caller still owes the
// End (summary: neutral).
func Annotate(sp *obs.Span) {
	sp.Attr("phase", "ipa")
}

// Finish ends the span on every path (summary: ends).
func Finish(sp *obs.Span) {
	sp.End()
}

// Keep stores the span; ownership transfers (summary: escapes).
func Keep(sp *obs.Span) {
	kept = sp
}

// Recv blocks on a channel receive (summary: blocking).
func Recv(c chan int) int {
	return <-c
}

// RecvIndirect blocks one call deeper (summary: blocking via Recv).
func RecvIndirect(c chan int) int {
	return Recv(c)
}

// Pure cannot block.
func Pure() int {
	return 1
}

// SolveLoose enters CG with no budget (summary: unbudgeted solver
// reach).
func SolveLoose(a *linalg.CSR, b []float64) ([]float64, error) {
	x, _, err := linalg.CG(a, b, nil, nil, 1e-9, 500)
	return x, err
}

// SolveBudgeted threads its caller's stop into the solve (summary: no
// unbudgeted reach).
func SolveBudgeted(a *linalg.CSR, b []float64, stop func() bool) ([]float64, error) {
	x, _, err := linalg.CGOpt(a, b, nil, &linalg.IterOptions{Tol: 1e-9, MaxIter: 500, Stop: stop})
	return x, err
}

// Worker marks the group done and drains the feed channel (summary:
// done and cancel signals).
func Worker(wg *sync.WaitGroup, c chan int) {
	defer wg.Done()
	<-c
}

// Drift neither signals a WaitGroup nor consumes a cancellation channel
// (summary: no signals — launching it unjoined is a leak).
func Drift(c chan int) {
	c <- 1
}
