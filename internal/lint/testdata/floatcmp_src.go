// Package scope exercises the floatcmp rule: exact ==/!= between
// float64 expressions is flagged, zero-sentinel checks are exempt, and
// //lint:allow suppresses one line.
package scope

// Equal is flagged: exact float equality.
func Equal(a, b float64) bool { return a == b }

// NotEqual is flagged: exact float inequality.
func NotEqual(a, b float64) bool { return a != b }

// ExactHit is suppressed by the preceding allow directive.
func ExactHit(a, b float64) bool {
	//lint:allow floatcmp exact table hit is intentional
	return a == b
}

// ZeroSentinel is exempt: comparison against constant zero is the
// idiomatic "field not set" check.
func ZeroSentinel(a float64) bool { return a == 0 }

// IntCompare is exempt: not a float comparison.
func IntCompare(a, b int) bool { return a == b }
