// Fixture for the taintsize rule: request-derived sizes must be
// clamped before sizing an allocation, bounding a loop, or setting a
// worker count.  The net/http import marks this package's json-tagged
// structs as wire payloads.
package serve

import (
	"flag"
	"net/http"

	"aeropack/internal/lint/testdata/ipahelp"
)

var _ = http.StatusOK

var workersFlag = flag.Int("workers", 0, "worker count")

// sweepReq is a wire payload: every json-tagged size-ish field is a
// taint source until clamped.
type sweepReq struct {
	N      int       `json:"n"`
	Points []float64 `json:"points"`
	Capped int       `json:"capped"`
}

// direct sizes a make() straight from the wire.
func direct(r *sweepReq) []float64 {
	return make([]float64, r.N) // want: make size
}

// crossPkg hides the allocation one call deep, one package over.
func crossPkg(r *sweepReq) []float64 {
	return ipahelp.Alloc(r.N) // want: make size via ipahelp.Alloc
}

// sliceLen taints through the slice's length: the wire controls
// len(Points), which sizes the callee's allocation.
func sliceLen(r *sweepReq) []float64 {
	return ipahelp.FillFrom(r.Points) // want: make size via ipahelp.FillFrom
}

// loopBound drives an iteration count from the wire.
func loopBound(r *sweepReq) int {
	s := 0
	for i := 0; i < r.N; i++ { // want: loop bound
		s += i
	}
	return s
}

// flagSized sizes an allocation from a command-line flag.
func flagSized() []float64 {
	return make([]float64, *workersFlag) // want: flag -workers
}

// clampedLocal bounds the value first: the if-clamp idiom.
func clampedLocal(r *sweepReq) []float64 {
	n := r.N
	if n > 512 {
		n = 512
	}
	return make([]float64, n) // clean: clamped above
}

// cappedCallee delegates to a callee that clamps internally, so the
// summary carries no size fact.
func cappedCallee(r *sweepReq) []float64 {
	return ipahelp.AllocCapped(r.N) // clean: callee clamps
}

// validateCapped ordering-compares the field itself, which records the
// module-wide clamped-field fact: every use of Capped is then clean.
func validateCapped(r *sweepReq) []float64 {
	if r.Capped > 512 {
		return nil
	}
	return make([]float64, r.Capped) // clean: field clamped in validate
}

// allowed demonstrates the suppression escape hatch.
func allowed(r *sweepReq) []float64 {
	return make([]float64, r.N) //lint:allow taintsize trusted internal test harness
}
