// Package scope exercises the unitsafety rule: inline unit-conversion
// literals are flagged, //lint:allow suppresses one line.
package scope

// CelsiusOffset is flagged: inline absolute-zero offset.
func CelsiusOffset(c float64) float64 { return c + 273.15 }

// FluxToSI is flagged: inline W/cm² conversion factor.
func FluxToSI(f float64) float64 { return f * 1e4 }

// SecondsPerHour is suppressed by the trailing allow directive.
func SecondsPerHour(h float64) float64 {
	return h * 3600 //lint:allow unitsafety demonstrating the escape hatch
}

// PlainNumber is clean: 42 is not a unit-conversion constant.
func PlainNumber(x float64) float64 { return x * 42 }
