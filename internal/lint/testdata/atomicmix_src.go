// Fixture for the atomicmix rule: HotCounter.N is accessed through
// sync/atomic in the ipahelp package, so a plain load here — one
// package over — mixes disciplines and voids the atomicity guarantee.
package cosee

import (
	"sync/atomic"

	"aeropack/internal/lint/testdata/ipahelp"
)

// readPlain loads the counter without atomic.
func readPlain(h *ipahelp.HotCounter) int64 {
	return h.N // want: plain read of an atomically-accessed field
}

// readAtomic uses the matching atomic operation.
func readAtomic(h *ipahelp.HotCounter) int64 {
	return atomic.LoadInt64(&h.N) // clean: atomic access
}

// fresh initializes via a composite literal — pre-publication, exempt.
func fresh() *ipahelp.HotCounter {
	return &ipahelp.HotCounter{N: 1} // clean: composite-literal key
}

// allowed demonstrates the suppression escape hatch.
func allowed(h *ipahelp.HotCounter) int64 {
	return h.N //lint:allow atomicmix read happens before the counter is shared
}
