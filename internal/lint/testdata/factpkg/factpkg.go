// Package factpkg exists for the unitsafety fact golden test: it
// exports one constant whose value equals a unit-conversion factor
// (the fact gatherer records it) and one unit-free constant.  Living
// under testdata keeps it out of go build and module-wide lint runs.
package factpkg

// SecondsPerHour duplicates the 3600 conversion factor; the
// cross-package fact store records it against this object.
const SecondsPerHour = 3600.0

// Columns is not a conversion factor and carries no fact.
const Columns = 12
