// Package scope exercises the cross-package side of the unitsafety
// rule: a use of an exported constant from another package whose value
// is a conversion factor is flagged via the fact store even though this
// file contains no magic literal; unit-free constants are fine, and
// //lint:allow suppresses one use.
package scope

import "aeropack/internal/lint/testdata/factpkg"

// HoursToSeconds is flagged: factpkg.SecondsPerHour carries the
// magic-constant fact, so the conversion must come from internal/units.
func HoursToSeconds(h float64) float64 {
	return h * factpkg.SecondsPerHour
}

// Grid is fine: factpkg.Columns is not a conversion factor.
func Grid(rows int) int {
	return rows * factpkg.Columns
}

// Suppressed is tolerated by the trailing allow directive.
func Suppressed(h float64) float64 {
	return h * factpkg.SecondsPerHour //lint:allow unitsafety test fixture mirrors an external data sheet verbatim
}
