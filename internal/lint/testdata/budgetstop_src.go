// Package scope exercises the budgetstop rule: every path from an
// exported driver function into the linalg iterative solvers must carry
// an IterOptions.Stop/budget.  Direct unbudgeted entries and entries
// hidden one call deep in another package are flagged with the call
// chain; budgeted composites and budget-threading helpers are fine, and
// //lint:allow suppresses one call.
package scope

import (
	"aeropack/internal/linalg"
	"aeropack/internal/lint/testdata/ipahelp"
)

// SweepDirect is flagged: the driver enters CG with no budget at all.
func SweepDirect(a *linalg.CSR, b []float64) ([]float64, error) {
	x, _, err := linalg.CG(a, b, nil, nil, 1e-9, 500)
	return x, err
}

// SweepViaHelper is flagged one call deep across the package boundary:
// ipahelp.SolveLoose reaches linalg.CG without a Stop.
func SweepViaHelper(a *linalg.CSR, b []float64) ([]float64, error) {
	return ipahelp.SolveLoose(a, b)
}

// SweepBudgetedOK is fine: the options composite carries a Stop.
func SweepBudgetedOK(a *linalg.CSR, b []float64, stop func() bool) ([]float64, error) {
	x, _, err := linalg.CGOpt(a, b, nil, &linalg.IterOptions{Tol: 1e-9, MaxIter: 500, Stop: stop})
	return x, err
}

// SweepHelperBudgetedOK is fine: the helper threads its stop argument
// down into the solve.
func SweepHelperBudgetedOK(a *linalg.CSR, b []float64, stop func() bool) ([]float64, error) {
	return ipahelp.SolveBudgeted(a, b, stop)
}

// sweepUnexported is out of scope: only exported functions root the
// driver check, so an unbudgeted solve here is reported at whichever
// exported caller reaches it, not at this body.
func sweepUnexported(a *linalg.CSR, b []float64) ([]float64, error) {
	x, _, err := linalg.CG(a, b, nil, nil, 1e-9, 500)
	return x, err
}

// Suppressed is tolerated by the trailing allow directive.
func Suppressed(a *linalg.CSR, b []float64) ([]float64, error) {
	x, _, err := linalg.CG(a, b, nil, nil, 1e-9, 500) //lint:allow budgetstop qualification harness wants the raw, unbudgeted entry
	return x, err
}
