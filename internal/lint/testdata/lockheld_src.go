// Package scope exercises the lockheld rule: channel ops, Wait calls
// and solver entries inside a mutex critical section are flagged,
// lock-free blocking and post-Unlock blocking are fine, and
// //lint:allow suppresses one site.
package scope

import (
	"sync"

	"aeropack/internal/linalg"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

// SendHeld is flagged: channel send between Lock and Unlock.
func (g *guarded) SendHeld(v int) {
	g.mu.Lock()
	g.ch <- v
	g.mu.Unlock()
}

// RecvDeferHeld is flagged: defer keeps the lock to function end.
func (g *guarded) RecvDeferHeld() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch
}

// WaitReadHeld is flagged: WaitGroup.Wait under an RLock.
func (g *guarded) WaitReadHeld() {
	g.rw.RLock()
	g.wg.Wait()
	g.rw.RUnlock()
}

// SolveHeld is flagged: a CG solve is unbounded work inside the
// critical section.
func (g *guarded) SolveHeld(a *linalg.CSR, b, x0 []float64) []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	x, _, _ := linalg.CG(a, b, x0, nil, 1e-9, 100)
	return x
}

// SelectHeld is flagged: select blocks with the lock held.
func (g *guarded) SelectHeld() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		return v
	default:
		return 0
	}
}

// RecvAfterUnlock is fine: the lock is released first.
func (g *guarded) RecvAfterUnlock() int {
	g.mu.Lock()
	g.mu.Unlock()
	return <-g.ch
}

// NoLock is fine: blocking without any lock held.
func (g *guarded) NoLock(v int) {
	g.ch <- v
	g.wg.Wait()
}

// Suppressed is tolerated by the trailing allow directive.
func (g *guarded) Suppressed(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- v //lint:allow lockheld the channel is buffered and drained by the same goroutine
}
