// Package scope exercises the panicpolicy contract-package exception:
// loaded under the internal/linalg import path, constant-message panics
// pass while panic(err) is still flagged.
package scope

import (
	"errors"
	"fmt"
)

var errDim = errors.New("dimension mismatch")

// CheckSquare is clean: a contract panic with a constant message.
func CheckSquare(n, m int) {
	if n != m {
		panic("linalg: matrix must be square")
	}
}

// CheckRange is clean: fmt.Sprintf of a literal is still contract shape.
func CheckRange(i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("linalg: index %d out of range [0,%d)", i, n))
	}
}

// WrapError is flagged: panicking with an error value is never contract
// shape, even inside linalg.
func WrapError() {
	panic(errDim)
}

// WrapErrorAllowed is suppressed by the trailing allow directive.
func WrapErrorAllowed() {
	panic(errDim) //lint:allow panicpolicy demonstrating the escape hatch
}
