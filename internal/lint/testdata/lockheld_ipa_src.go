// Package scope exercises the interprocedural side of the lockheld
// rule: a helper whose call-graph summary proves it (transitively)
// blocks is flagged when called under a held mutex, with the call chain
// in the message; a helper that cannot block stays silent.
// //lint:allow suppresses one call.
package scope

import (
	"sync"

	"aeropack/internal/lint/testdata/ipahelp"
)

var mu sync.Mutex

// RecvViaHelper is flagged: the helper blocks on a channel receive one
// call away while mu is held.
func RecvViaHelper(c chan int) int {
	mu.Lock()
	v := ipahelp.Recv(c)
	mu.Unlock()
	return v
}

// RecvTwoDeep is flagged through two hops: RecvIndirect → Recv.
func RecvTwoDeep(c chan int) int {
	mu.Lock()
	v := ipahelp.RecvIndirect(c)
	mu.Unlock()
	return v
}

// PureHelperOK is fine: the helper's summary proves it cannot block.
func PureHelperOK() int {
	mu.Lock()
	v := ipahelp.Pure()
	mu.Unlock()
	return v
}

// Suppressed is tolerated by the trailing allow directive.
func Suppressed(c chan int) int {
	mu.Lock()
	v := ipahelp.Recv(c) //lint:allow lockheld fixture: the channel is buffered and always ready
	mu.Unlock()
	return v
}
