// Package scope exercises the spanleak rule: a span that is not ended
// on every return path is flagged, defer/explicit-End/nil-guard/escape
// patterns are fine, and //lint:allow suppresses one start site.
package scope

import (
	"errors"

	"aeropack/internal/obs"
)

// LeakEarlyReturn is flagged: the error return leaks sp.
func LeakEarlyReturn(fail bool) error {
	sp := obs.Start(nil, "scope.leaky")
	if fail {
		return errors.New("early")
	}
	sp.End()
	return nil
}

// LeakFallsOffEnd is flagged: sp is never ended before the closing
// brace.
func LeakFallsOffEnd() {
	sp := obs.Start(nil, "scope.noend")
	sp.Attr("k", "v")
}

// DeferOK is fine: the canonical defer covers every path.
func DeferOK(fail bool) error {
	sp := obs.Start(nil, "scope.defer")
	defer sp.End()
	if fail {
		return errors.New("early")
	}
	return nil
}

// ExplicitOK is fine: End appears before each return, and the early
// return sits under the span-disabled nil guard.
func ExplicitOK(n int) int {
	sp := obs.Start(nil, "scope.explicit")
	if sp == nil {
		return n
	}
	sp.AttrInt("n", n)
	sp.End()
	return n + 1
}

// EscapeOK is out of scope: the span is handed to the caller, who owns
// ending it.
func EscapeOK() *obs.Span {
	sp := obs.Start(nil, "scope.escape")
	sp.Attr("owner", "caller")
	return sp
}

// ChildOK is fine: a child span pattern with explicit End before the
// lone return.
func ChildOK(parent *obs.Span) int {
	sp := parent.Start("scope.child")
	sp.End()
	return 1
}

// Suppressed is tolerated by the preceding allow directive.
func Suppressed(fail bool) error {
	//lint:allow spanleak deliberate leak demonstrating the escape hatch
	sp := obs.Start(nil, "scope.allowed")
	if fail {
		return errors.New("early")
	}
	sp.End()
	return nil
}
