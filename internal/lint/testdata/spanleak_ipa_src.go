// Package scope exercises the interprocedural side of the spanleak
// rule: a span handed to another package's helper is resolved through
// the helper's call-graph summary — a helper that merely uses the span
// leaves the End obligation here (and is cited in the finding), a
// helper that ends it counts as the End, and a helper that stores it
// takes ownership.  //lint:allow suppresses one start site.
package scope

import (
	"errors"

	"aeropack/internal/lint/testdata/ipahelp"
	"aeropack/internal/obs"
)

// LeakViaHelper is flagged: ipahelp.Annotate uses the span but never
// ends it, so the early return still leaks sp.
func LeakViaHelper(fail bool) error {
	sp := obs.Start(nil, "scope.ipa.leak")
	ipahelp.Annotate(sp)
	if fail {
		return errors.New("early")
	}
	sp.End()
	return nil
}

// DeferredHelperEndOK is fine: the deferred helper ends the span on
// every path — an interprocedural defer sp.End().
func DeferredHelperEndOK(fail bool) error {
	sp := obs.Start(nil, "scope.ipa.deferred")
	defer ipahelp.Finish(sp)
	if fail {
		return errors.New("early")
	}
	return nil
}

// ExplicitHelperEndOK is fine: the helper End covers the lone return.
func ExplicitHelperEndOK() int {
	sp := obs.Start(nil, "scope.ipa.explicit")
	ipahelp.Finish(sp)
	return 1
}

// HandoffOK is out of scope: the helper stores the span, so ownership
// moved with the call.
func HandoffOK() {
	sp := obs.Start(nil, "scope.ipa.handoff")
	ipahelp.Keep(sp)
}

// Suppressed is tolerated by the preceding allow directive.
func Suppressed() {
	//lint:allow spanleak deliberate leak through a helper for the golden test
	sp := obs.Start(nil, "scope.ipa.allowed")
	ipahelp.Annotate(sp)
}
