// Package scope exercises the hotalloc rule: per-iteration make / map /
// composite-literal / closure allocations inside loops of a //lint:hot
// kernel are flagged, hoisted scratch and non-hot functions are fine,
// and //lint:allow suppresses one allocation.
package scope

// HotKernel is flagged three times: make, slice literal and closure
// allocate on every iteration.
//
//lint:hot
func HotKernel(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		buf := make([]float64, 4)
		w := []float64{1, 2}
		f := func() float64 { return xs[i] }
		buf[0] = f() + w[0]
		s += buf[0]
	}
	return s
}

// HotMap is flagged: a map literal per iteration.
//
//lint:hot
func HotMap(xs []float64) int {
	n := 0
	for range xs {
		m := map[string]int{"k": 1}
		n += m["k"]
	}
	return n
}

// HotHoisted is fine: the scratch buffer is allocated once, outside the
// loop, and reused.
//
//lint:hot
func HotHoisted(xs []float64) float64 {
	buf := make([]float64, 4)
	s := 0.0
	for i := range xs {
		buf[0] = xs[i]
		s += buf[0]
	}
	return s
}

// ColdKernel has the same body as HotKernel but no directive: out of
// scope.
func ColdKernel(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		buf := make([]float64, 4)
		buf[0] = xs[i]
		s += buf[0]
	}
	return s
}

// HotSuppressed is tolerated by the trailing allow directive.
//
//lint:hot
func HotSuppressed(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		buf := make([]float64, 1) //lint:allow hotalloc grows rarely; kept simple on purpose
		buf[0] = xs[i]
		s += buf[0]
	}
	return s
}
