// Package scope exercises the goroleak rule: a goroutine started in
// library code must be joined by its launcher (Wait/channel/select) or
// prove via its own body — or its named callee's call-graph summary —
// that it signals a WaitGroup or runs a cancellation path.
// //lint:allow suppresses one launch.
package scope

import (
	"sync"

	"aeropack/internal/lint/testdata/ipahelp"
)

// FireAndForget is flagged: nothing joins or cancels the goroutine.
func FireAndForget(work func()) {
	go func() {
		work()
	}()
}

// HelperDrift is flagged across the package boundary: ipahelp.Drift
// neither signals a WaitGroup nor consumes a cancellation channel.
func HelperDrift(c chan int) {
	go ipahelp.Drift(c)
}

// JoinedOK is fine: the launcher waits for the group.
func JoinedOK(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// SelfManagedOK is fine: the goroutine marks the caller-owned group
// done, so whoever Adds also Waits.
func SelfManagedOK(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// HelperWorkerOK is fine across the package boundary: ipahelp.Worker's
// summary proves it marks the group done and drains its feed channel.
func HelperWorkerOK(wg *sync.WaitGroup, c chan int) {
	wg.Add(1)
	go ipahelp.Worker(wg, c)
}

// Suppressed is tolerated by the preceding allow directive.
func Suppressed(work func()) {
	//lint:allow goroleak detached telemetry flusher, bounded by process exit
	go func() { work() }()
}
