// Package scope exercises the nanguard rule: exported solver entry
// points with float inputs and float results must validate against
// NaN/Inf, document propagation, or carry an allow directive.
package scope

import "math"

// Unguarded is flagged: float in, float out, no validation and no
// propagation marker.
func Unguarded(q, area float64) float64 { return q / area }

// Validated is clean: it checks its inputs with math.IsNaN/IsInf.
func Validated(q, area float64) float64 {
	if math.IsNaN(q) || math.IsInf(q, 0) || area <= 0 {
		return math.NaN()
	}
	return q / area
}

// Documented is clean: the doc comment declares the contract.
//
// nanguard: propagates
func Documented(q, area float64) float64 { return q / area }

// Suppressed is excused by the preceding allow directive.
//
//lint:allow nanguard demonstrating the escape hatch
func Suppressed(q, area float64) float64 { return q / area }

// noFloats is out of scope: unexported.
func noFloats(q, area float64) float64 { return q / area }

// IntOnly is out of scope: no float parameters or results.
func IntOnly(n int) int { return n * 2 }
