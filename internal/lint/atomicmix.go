// The atomicmix rule: a field or variable accessed through sync/atomic
// anywhere in the module must never also be read or written plainly.
// Mixing the two voids the atomicity guarantee entirely — the plain
// access races with every atomic one, and the race detector only
// catches the interleavings that actually happen in a test run.
//
// The fact store records every `atomic.XxxInt64(&v)`-style target
// module-wide; this rule flags plain mentions of those objects.  The
// atomic sites themselves, composite-literal keys (pre-publication
// initialization) and test files are exempt.  Facts are consumed only
// from the package's import closure, keeping the result cache sound.
package lint

import (
	"go/ast"
	"go/token"
)

type atomicmixRule struct{}

func init() { Register(atomicmixRule{}) }

func (atomicmixRule) Name() string { return "atomicmix" }

func (atomicmixRule) Doc() string {
	return "no plain loads/stores of fields that are accessed via sync/atomic elsewhere"
}

func (atomicmixRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	visible := importClosure(p)
	var out []Finding
	for _, f := range p.Files {
		// Spans of atomic-call arguments: mentions inside them ARE the
		// atomic accesses and must not be flagged.
		type span struct{ lo, hi token.Pos }
		var atomicSpans []span
		compositeKeys := make(map[*ast.Ident]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if _, target := atomicCallTarget(p, x); target != nil {
					atomicSpans = append(atomicSpans, span{lo: x.Args[0].Pos(), hi: x.Args[0].End()})
				}
			case *ast.KeyValueExpr:
				if id, ok := x.Key.(*ast.Ident); ok {
					compositeKeys[id] = true
				}
			}
			return true
		})
		inAtomic := func(pos token.Pos) bool {
			for _, s := range atomicSpans {
				if s.lo <= pos && pos < s.hi {
					return true
				}
			}
			return false
		}
		flagged := make(map[*ast.Ident]bool)
		flag := func(id *ast.Ident) {
			// A selector's Sel is visited both as part of the selector
			// and as a bare Ident; flag it once.
			if flagged[id] {
				return
			}
			flagged[id] = true
			obj := p.Info.Uses[id]
			if obj == nil || compositeKeys[id] || inAtomic(id.Pos()) {
				return
			}
			af, ok := p.Facts.AtomicAccess(obj)
			if !ok || !visible[af.Pkg] {
				return
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(id.Pos()),
				Rule: "atomicmix",
				Msg:  obj.Name() + " is accessed with " + af.Fn + " elsewhere but read/written plainly here",
				Hint: "use the matching sync/atomic operation (or an atomic.Int64-style typed field) for every access",
				Related: []Related{{
					Pos: af.Pos,
					Msg: "the atomic access is here",
				}},
			})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				flag(x.Sel)
				// Keep descending: the base expression may itself
				// mention another tracked object.
				return true
			case *ast.Ident:
				flag(x)
			}
			return true
		})
	}
	return out
}
