// The unitsafety rule: inline unit-conversion arithmetic is forbidden
// outside internal/units.
package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// magicConstant is one literal value that encodes a unit conversion or a
// physical constant already provided by internal/units.
type magicConstant struct {
	val  float64
	hint string
}

// unitMagic lists the conversion factors and physical constants that must
// come from internal/units.  Matching is by numeric value, so 273.15,
// 2.7315e2 and 27315e-2 all hit the same entry.
var unitMagic = []magicConstant{
	{273.15, "use units.CToK/units.KToC (or units.ZeroCelsius for the constant itself)"},
	{3600, "use units.Hour/units.ToHour (or units.KgPerHour for mass flow)"},
	{25.4e-6, "use units.Mil"},
	{9.80665, "use units.Gravity or units.GLevel"},
	{101325, "use units.AtmPressure"},
	{8.314462618, "use units.GasConstant"},
	{5.670374419e-8, "use units.StefanBoltzmann"},
	{1.380649e-23, "use units.Boltzmann"},
	{4.719474432e-4, "use units.CFM"},
	{60000, "use units.LPerMin"},
	{1e4, "use units.WPerCm2"},
}

type unitsafetyRule struct{}

func init() { Register(unitsafetyRule{}) }

func (unitsafetyRule) Name() string { return "unitsafety" }

func (unitsafetyRule) Doc() string {
	return "forbid inline unit-conversion literals (273.15, 3600, 9.80665, ...) outside internal/units"
}

// checkFactUses flags uses of exported constants from *other* packages
// whose value equals a conversion factor — sites that contain no
// literal at all, so the textual scan below cannot see them.  The facts
// store carries the constant's value across the package boundary.
func checkFactUses(p *Package, f *ast.File) []Finding {
	if p.Info == nil || p.Facts == nil {
		return nil
	}
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || obj.Pkg() == nil || obj.Pkg() == p.Pkg {
			return true
		}
		hint := p.Facts.MagicHint(obj)
		if hint == "" {
			return true
		}
		out = append(out, Finding{
			Pos:  p.Fset.Position(id.Pos()),
			Rule: "unitsafety",
			Msg:  "use of unit-conversion constant " + obj.Pkg().Name() + "." + obj.Name(),
			Hint: hint,
		})
		return true
	})
	return out
}

func (unitsafetyRule) Check(p *Package) []Finding {
	// internal/units is where conversions live; internal/lint holds the
	// magic-number table itself.
	if strings.HasSuffix(p.ImportPath, "/internal/units") ||
		strings.HasSuffix(p.ImportPath, "/internal/lint") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		out = append(out, checkFactUses(p, f)...)
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || (lit.Kind != token.FLOAT && lit.Kind != token.INT) {
				return true
			}
			v, err := strconv.ParseFloat(lit.Value, 64)
			if err != nil {
				return true
			}
			for _, m := range unitMagic {
				if v == m.val { //lint:allow floatcmp exact table lookup by value

					out = append(out, Finding{
						Pos:  p.Fset.Position(lit.Pos()),
						Rule: "unitsafety",
						Msg:  "inline unit-conversion literal " + lit.Value,
						Hint: m.hint,
						Fix:  p.fixUnitLiteral(f, lit),
					})
					break
				}
			}
			return true
		})
	}
	return out
}
