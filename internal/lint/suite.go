// The module-level pipeline behind cmd/aeropacklint: pattern expansion,
// cache probing, layered parallel parse + type-check, fact and summary
// gathering, parallel rule execution and the //lint:allow audit.  The
// driver and BenchmarkLintModule share this entry point.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aeropack/internal/parallel"
)

// ModuleOptions configures one RunModule call.
type ModuleOptions struct {
	// Dir is where the module root search starts (usually ".").
	Dir string
	// Patterns are package directories; a trailing /... expands to the
	// subtree.  Empty means ./...
	Patterns []string
	// Rules restricts the run; nil means every registered rule.
	Rules []Rule
	// Cache enables the content-hash result cache when non-nil.
	Cache *Cache
	// Audit switches to the //lint:allow audit: instead of findings, the
	// result reports directives that no longer suppress anything (or
	// carry no reason).  The cache is bypassed — the audit needs raw,
	// pre-suppression findings for every requested package.
	Audit bool
}

// StaleAllow is one audit report line.
type StaleAllow struct {
	Pos token.Position
	// Rule is the directive rule name this report is about.
	Rule string
	// Why classifies the problem: "stale" (nothing suppressed),
	// "unknown-rule", or "no-reason".
	Why string
}

func (s StaleAllow) String() string {
	switch s.Why {
	case "stale":
		return fmt.Sprintf("%s: stale //lint:allow %s: no %s finding on this or the next line", s.Pos, s.Rule, s.Rule)
	case "unknown-rule":
		return fmt.Sprintf("%s: //lint:allow names unknown rule %q", s.Pos, s.Rule)
	default:
		return fmt.Sprintf("%s: //lint:allow %s has no reason text", s.Pos, s.Rule)
	}
}

// ModuleResult is what RunModule produces.
type ModuleResult struct {
	// Root is the module root directory.
	Root string
	// Findings are the surviving findings, positions module-root-relative.
	Findings []Finding
	// Stale holds the audit reports (Audit mode only).
	Stale []StaleAllow
	// TypeErrors are non-fatal type-checker diagnostics.
	TypeErrors []string
	// Packages is the number of requested packages.
	Packages int
	// CacheHits / CacheMisses count requested packages served from /
	// missing the cache.
	CacheHits, CacheMisses int
}

// RunModule executes the configured suite and returns the merged,
// sorted result.
func RunModule(opts ModuleOptions) (*ModuleResult, error) {
	if opts.Dir == "" {
		opts.Dir = "."
	}
	loader, err := NewLoader(opts.Dir)
	if err != nil {
		return nil, err
	}
	rules := opts.Rules
	if rules == nil {
		rules = Rules()
	}
	dirs, err := expandPatterns(loader, opts.Dir, opts.Patterns)
	if err != nil {
		return nil, err
	}
	res := &ModuleResult{Root: loader.Root, Packages: len(dirs)}

	// Phase 1: probe the cache.
	var missDirs []string
	var cached []Finding
	keyByDir := make(map[string]string)
	if opts.Cache != nil && !opts.Audit {
		ky := newKeyer(loader, rules, dirs)
		for _, dir := range dirs {
			key, err := ky.Key(dir)
			if err != nil {
				return nil, err
			}
			keyByDir[dir] = key
			if fs, ok := opts.Cache.Get(key); ok {
				res.CacheHits++
				cached = append(cached, fs...)
				continue
			}
			res.CacheMisses++
			missDirs = append(missDirs, dir)
		}
	} else {
		missDirs = dirs
		res.CacheMisses = len(dirs)
	}

	// Phase 2: parse and type-check the misses in parallel topological
	// layers (the loader serializes shared standard-library imports).
	pkgs, err := loader.LoadDirsParallel(missDirs)
	if err != nil {
		return nil, err
	}

	// Phase 3: gather cross-package facts over everything the loader
	// touched (requested packages and dependencies alike), then attach
	// the store.
	facts := NewFacts()
	loaded := loader.Loaded()
	facts.Gather(loaded)
	for _, p := range loaded {
		p.Facts = facts
	}

	// Phase 4: run rules (or the audit) per package.  The fact store is
	// read-only after Gather, so the rule phase fans out per package; the
	// audit stays sequential (it is the rare administrative path).
	if opts.Audit {
		for _, p := range pkgs {
			res.Stale = append(res.Stale, auditPackage(p, rules)...)
		}
	} else {
		perPkg, err := parallel.Map(pkgs, 0, func(_ int, p *Package) ([]Finding, error) {
			findings := RunRules([]*Package{p}, rules)
			for i := range findings {
				findings[i].Pos = relPosition(loader.Root, findings[i].Pos)
				for j := range findings[i].Related {
					findings[i].Related[j].Pos = relPosition(loader.Root, findings[i].Related[j].Pos)
				}
				if fix := findings[i].Fix; fix != nil {
					for j := range fix.Edits {
						fix.Edits[j].File = relPath(loader.Root, fix.Edits[j].File)
					}
				}
			}
			if key := keyByDir[p.Dir]; key != "" {
				if err := opts.Cache.Put(key, findings); err != nil {
					return nil, fmt.Errorf("lint: writing cache: %w", err)
				}
			}
			return findings, nil
		})
		if err != nil {
			return nil, err
		}
		for _, findings := range perPkg {
			res.Findings = append(res.Findings, findings...)
		}
	}
	res.Findings = append(res.Findings, cached...)
	SortFindings(res.Findings)
	for i := range res.Stale {
		res.Stale[i].Pos = relPosition(loader.Root, res.Stale[i].Pos)
	}
	sort.Slice(res.Stale, func(i, j int) bool {
		a, b := res.Stale[i], res.Stale[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	// Parallel type-checking makes the arrival order of diagnostics
	// scheduling-dependent; sort so the surfaced warnings are stable.
	res.TypeErrors = append([]string(nil), loader.TypeErrors...)
	sort.Strings(res.TypeErrors)
	return res, nil
}

// auditPackage reports the package's //lint:allow directives that are
// stale (no raw finding of the named rule on the directive's line or
// the next), name an unregistered rule, or lack reason text.
func auditPackage(p *Package, rules []Rule) []StaleAllow {
	raw := RunRulesRaw(p, rules)
	// matched[(rule, file, line)] — a raw finding whose position a
	// directive at that line would cover.
	type key struct {
		rule, file string
		line       int
	}
	matched := make(map[key]bool)
	for _, f := range raw {
		matched[key{f.Rule, f.Pos.Filename, f.Pos.Line}] = true
	}
	known := make(map[string]bool, len(rules))
	for _, r := range rules {
		known[r.Name()] = true
	}
	var out []StaleAllow
	for _, d := range p.Directives() {
		pos := d.Pos // absolute here; RunModule relativizes
		for _, rule := range d.Rules {
			if !known[rule] {
				out = append(out, StaleAllow{Pos: pos, Rule: rule, Why: "unknown-rule"})
				continue
			}
			if !matched[key{rule, d.Pos.Filename, d.Pos.Line}] &&
				!matched[key{rule, d.Pos.Filename, d.Pos.Line + 1}] {
				out = append(out, StaleAllow{Pos: pos, Rule: rule, Why: "stale"})
			}
		}
		if d.Reason == "" {
			out = append(out, StaleAllow{Pos: pos, Rule: strings.Join(d.Rules, ","), Why: "no-reason"})
		}
	}
	return out
}

// expandPatterns resolves the CLI package arguments to directories.
func expandPatterns(l *Loader, base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range patterns {
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			if rest == "" {
				rest = "."
			}
			if !filepath.IsAbs(rest) {
				rest = filepath.Join(base, rest)
			}
			sub, err := l.PackageDirs(rest)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		dir := arg
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", arg, err)
		}
		add(abs)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// relPosition rewrites the position's filename to be root-relative.
func relPosition(root string, pos token.Position) token.Position {
	pos.Filename = relPath(root, pos.Filename)
	return pos
}

// relPath strips the root prefix from a file path.
func relPath(root, path string) string {
	if root == "" {
		return path
	}
	if rest, ok := strings.CutPrefix(path, root+string(os.PathSeparator)); ok {
		return rest
	}
	return path
}
