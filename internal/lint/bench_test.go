package lint

import (
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkLintModule measures the full fifteen-rule suite over the real
// module, cold (empty cache, full parse + type-check) and warm (every
// package served from the content-hash cache, so only hashing and key
// derivation remain).  The warm/cold ratio is the headline number for
// the cache: it should be well under 0.5.
func BenchmarkLintModule(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := &Cache{Dir: filepath.Join(b.TempDir(), "cache")}
			b.StartTimer()
			res, err := RunModule(ModuleOptions{Dir: "../..", Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheHits != 0 {
				b.Fatalf("cold run hit the cache %d times", res.CacheHits)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := &Cache{Dir: filepath.Join(b.TempDir(), "cache")}
		if _, err := RunModule(ModuleOptions{Dir: "../..", Cache: cache}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := RunModule(ModuleOptions{Dir: "../..", Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheMisses != 0 {
				b.Fatalf("warm run missed the cache %d times", res.CacheMisses)
			}
		}
	})
}

// BenchmarkLintPhases isolates the two phases the interprocedural engine
// touched: type-checking (serial baseline vs the layered parallel
// loader) and fact/summary gathering over the fully loaded module.  The
// serial/parallel pair quantifies what LoadDirsParallel buys; the
// summaries number is the marginal cost of the call-graph engine.
func BenchmarkLintPhases(b *testing.B) {
	probe, err := NewLoader("../..")
	if err != nil {
		b.Fatal(err)
	}
	dirs, err := probe.PackageDirs(probe.Root)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("typecheck-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l, err := NewLoader("../..")
			if err != nil {
				b.Fatal(err)
			}
			l.PreparseParallel(dirs)
			for _, dir := range dirs {
				if _, err := l.LoadDir(dir); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("typecheck-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l, err := NewLoader("../..")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := l.LoadDirsParallel(dirs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("summaries", func(b *testing.B) {
		l, err := NewLoader("../..")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.LoadDirsParallel(dirs); err != nil {
			b.Fatal(err)
		}
		loaded := l.Loaded()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			facts := NewFacts()
			facts.Gather(loaded)
		}
	})
}

// BenchmarkValueFlow isolates the value-flow engine: a fresh fact
// gather (taint/lock/solver summaries included) plus the four new rules
// over the pre-loaded module — the marginal cost v4 added on top of the
// parse/type-check baseline.
func BenchmarkValueFlow(b *testing.B) {
	l, err := NewLoader("../..")
	if err != nil {
		b.Fatal(err)
	}
	dirs, err := l.PackageDirs(l.Root)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := l.LoadDirsParallel(dirs); err != nil {
		b.Fatal(err)
	}
	loaded := l.Loaded()
	rules := []Rule{taintsizeRule{}, stopflowRule{}, lockorderRule{}, atomicmixRule{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		facts := NewFacts()
		facts.Gather(loaded)
		for _, p := range loaded {
			p.Facts = facts
			RunRulesRaw(p, rules)
		}
	}
}

// TestWarmRunUnder50ms pins the headline cache promise: a fully warm
// cached run of the whole module stays under 50 ms.  Best-of-three
// absorbs scheduler noise; the real warm runs sit in single-digit
// milliseconds (see BENCH_lint.json), so the margin is wide.
func TestWarmRunUnder50ms(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion")
	}
	cache := &Cache{Dir: filepath.Join(t.TempDir(), "cache")}
	if _, err := RunModule(ModuleOptions{Dir: "../..", Cache: cache}); err != nil {
		t.Fatal(err)
	}
	best := time.Duration(1) << 62
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := RunModule(ModuleOptions{Dir: "../..", Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheMisses != 0 {
			t.Fatalf("warm run missed the cache %d times", res.CacheMisses)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best > 50*time.Millisecond {
		t.Errorf("best warm cached run took %v, want under 50ms", best)
	}
}
