package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkLintModule measures the full nine-rule suite over the real
// module, cold (empty cache, full parse + type-check) and warm (every
// package served from the content-hash cache, so only hashing and key
// derivation remain).  The warm/cold ratio is the headline number for
// the cache: it should be well under 0.5.
func BenchmarkLintModule(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := &Cache{Dir: filepath.Join(b.TempDir(), "cache")}
			b.StartTimer()
			res, err := RunModule(ModuleOptions{Dir: "../..", Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheHits != 0 {
				b.Fatalf("cold run hit the cache %d times", res.CacheHits)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := &Cache{Dir: filepath.Join(b.TempDir(), "cache")}
		if _, err := RunModule(ModuleOptions{Dir: "../..", Cache: cache}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := RunModule(ModuleOptions{Dir: "../..", Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheMisses != 0 {
				b.Fatalf("warm run missed the cache %d times", res.CacheMisses)
			}
		}
	})
}
