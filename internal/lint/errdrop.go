// The errdrop rule: errors are part of the solver contract and may be
// neither silently discarded nor compared to sentinels with ==.
//
// Two checks:
//
//  1. A call whose results include an error, used as a bare statement
//     (or go/defer call), drops that error on the floor.  Print-family
//     functions of fmt and methods on strings.Builder / bytes.Buffer
//     (documented to never fail) are exempt; an explicit `_ =` discard
//     is also accepted as a visible, reviewable decision.
//  2. `err == Sentinel` / `err != Sentinel` where the sentinel is a
//     package-level error variable.  The solver stack wraps sentinels
//     with fmt.Errorf("%w") — linalg.ErrStopped arrives wrapped in
//     "linalg: CG ... stopped" — so == can never match; errors.Is is
//     required.  When the cross-package fact store has proof of a %w
//     wrap site, the finding cites it.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type errdropRule struct{}

func init() { Register(errdropRule{}) }

func (errdropRule) Name() string { return "errdrop" }

func (errdropRule) Doc() string {
	return "no discarded error returns and no ==/!= sentinel comparisons where errors.Is is required"
}

func (errdropRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					out = append(out, p.checkDroppedError(call)...)
				}
			case *ast.GoStmt:
				out = append(out, p.checkDroppedError(x.Call)...)
			case *ast.DeferStmt:
				out = append(out, p.checkDroppedError(x.Call)...)
			case *ast.BinaryExpr:
				out = append(out, p.checkSentinelCompare(f, x)...)
			}
			return true
		})
	}
	return out
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// resultsIncludeError reports whether the call's type is error or a
// tuple with an error member.
func (p *Package) resultsIncludeError(call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// errdropExempt reports whether the callee is on the never-fails list:
// fmt's print family, strings.Builder / bytes.Buffer methods, and the
// error-returning no-ops of hash writers are out of scope.
func (p *Package) errdropExempt(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-qualified: fmt.Println / fmt.Fprintf and friends.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path() == "fmt" &&
					strings.Contains(sel.Sel.Name, "rint") // Print*, Fprint*, Sprint* family
			}
		}
	}
	// Method on a receiver documented to never return a write error.
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	name := types.TypeString(tv.Type, nil)
	for _, exempt := range []string{"*strings.Builder", "strings.Builder", "*bytes.Buffer", "bytes.Buffer", "hash.Hash"} {
		if name == exempt {
			return true
		}
	}
	return false
}

func (p *Package) checkDroppedError(call *ast.CallExpr) []Finding {
	if !p.resultsIncludeError(call) || p.errdropExempt(call) {
		return nil
	}
	f := Finding{
		Pos:  p.Fset.Position(call.Pos()),
		Rule: "errdrop",
		Msg:  "call discards its error result",
		Hint: "handle the error, or make the discard explicit with `_ =` plus a reason",
	}
	// When the callee is a pass-through wrapper, the summary names the
	// call the dropped error actually comes from.
	if origin := p.Facts.ErrOriginOf(calleeFunc(p, call)); origin != nil {
		f.Msg += "; the error originates in " + origin.From
		f.Related = []Related{{
			Pos: origin.Pos,
			Msg: "the dropped error originates here, in " + origin.From,
		}}
	}
	return []Finding{f}
}

// checkSentinelCompare flags err ==/!= Sentinel, attaching the
// errors.Is rewrite as a machine-applicable fix.
func (p *Package) checkSentinelCompare(f *ast.File, be *ast.BinaryExpr) []Finding {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return nil
	}
	if !p.exprIsError(be.X) || !p.exprIsError(be.Y) {
		return nil
	}
	// nil comparisons are the canonical success check.
	if isNilIdent(be.X) || isNilIdent(be.Y) {
		return nil
	}
	sentinel := p.sentinelName(be.X)
	if sentinel == "" {
		sentinel = p.sentinelName(be.Y)
	}
	if sentinel == "" {
		return nil // error-typed but neither side is a package-level sentinel
	}
	fnd := Finding{
		Pos:  p.Fset.Position(be.OpPos),
		Rule: "errdrop",
		Msg:  "error compared to sentinel " + sentinel + " with " + be.Op.String(),
		Hint: "use errors.Is; wrapped errors never match ==",
		Fix:  p.fixSentinelCompare(f, be),
	}
	if obj := p.sentinelObjectOf(be.X, be.Y); obj != nil {
		if in := p.Facts.WrappedIn(obj); in != "" {
			fnd.Msg += "; the sentinel is wrapped with %w in " + in + ", so == can never match"
			if at, ok := p.Facts.WrappedAt(obj); ok {
				fnd.Related = []Related{{Pos: at, Msg: sentinel + " is wrapped with %w here"}}
			}
		}
	}
	return []Finding{fnd}
}

func (p *Package) exprIsError(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return true // untyped nil in an error comparison
	}
	return types.Identical(tv.Type, errorType)
}

// sentinelName returns the printed name of e when it denotes a
// package-level error variable, else "".
func (p *Package) sentinelName(e ast.Expr) string {
	if obj := p.packageLevelErrorVar(e); obj != nil {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				return id.Name + "." + sel.Sel.Name
			}
		}
		return obj.Name()
	}
	return ""
}

// sentinelObjectOf returns the package-level error-var object among the
// two operands, preferring x.
func (p *Package) sentinelObjectOf(x, y ast.Expr) types.Object {
	if obj := p.packageLevelErrorVar(x); obj != nil {
		return obj
	}
	return p.packageLevelErrorVar(y)
}

func (p *Package) packageLevelErrorVar(e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj := p.Info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Identical(v.Type(), errorType) {
		return nil
	}
	return obj
}
