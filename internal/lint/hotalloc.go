// The hotalloc rule: no per-iteration heap allocation inside the
// designated hot kernels.  The CSR sparse kernels and the FV assembly
// inner loops dominate solve time; a make / composite literal / closure
// inside their loops turns an O(nnz) arithmetic pass into an allocation
// storm the GC has to clean up mid-solve.
//
// Scope is opt-in: a function whose doc comment (or the line directly
// above the declaration) carries the region directive
//
//	//lint:hot
//
// is a hot region, and every for / range loop body inside it is
// checked.  Flagged constructs: make of a slice or map, slice / map /
// pointer composite literals, new(T), and function literals (a closure
// allocates its capture environment every time the expression is
// evaluated).  Allocations outside loops — the usual hoisted scratch
// buffers — are fine.
package lint

import (
	"go/ast"
	"go/types"
)

// hotDirective marks a function as a hot region for the hotalloc rule.
const hotDirective = "//lint:hot"

type hotallocRule struct{}

func init() { Register(hotallocRule{}) }

func (hotallocRule) Name() string { return "hotalloc" }

func (hotallocRule) Doc() string {
	return "no per-iteration slice/map/closure allocation inside loops of //lint:hot kernels"
}

func (hotallocRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		hotLines := hotDirectiveLines(p, f)
		if len(hotLines) == 0 {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.funcIsHot(fd, hotLines) {
				continue
			}
			out = append(out, p.checkHotFunc(fd)...)
		}
	}
	return out
}

// hotDirectiveLines collects the source lines holding a //lint:hot
// comment.
func hotDirectiveLines(p *Package, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == hotDirective {
				lines[p.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// funcIsHot reports whether a //lint:hot directive sits inside the
// function's doc comment block or on the line immediately above the
// declaration.
func (p *Package) funcIsHot(fd *ast.FuncDecl, hotLines map[int]bool) bool {
	declLine := p.Fset.Position(fd.Pos()).Line
	if fd.Doc != nil {
		start := p.Fset.Position(fd.Doc.Pos()).Line
		for l := start; l < declLine; l++ {
			if hotLines[l] {
				return true
			}
		}
	}
	return hotLines[declLine-1]
}

// checkHotFunc flags per-iteration allocations in every loop body of the
// hot function.
func (p *Package) checkHotFunc(fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
		default:
			return true
		}
		out = append(out, p.flagLoopAllocs(body, fd.Name.Name)...)
		return false // flagLoopAllocs covers nested loops itself
	})
	return out
}

// flagLoopAllocs walks one loop body (including nested loops) and flags
// allocating constructs.
func (p *Package) flagLoopAllocs(body *ast.BlockStmt, fn string) []Finding {
	var out []Finding
	flag := func(n ast.Node, what, hint string) {
		out = append(out, Finding{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: "hotalloc",
			Msg:  what + " inside a loop of hot kernel " + fn,
			Hint: hint,
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && p.Info.Uses[id] == types.Universe.Lookup(id.Name) {
				switch id.Name {
				case "make":
					if len(x.Args) > 0 && p.typeExprAllocates(x.Args[0]) {
						flag(x, "make", "hoist the buffer out of the loop and reuse it")
					}
				case "new":
					flag(x, "new", "hoist the allocation out of the loop")
				}
			}
		case *ast.CompositeLit:
			if p.compositeAllocates(x) {
				flag(x, "slice/map composite literal", "hoist the allocation out of the loop and reset in place")
			}
			return false // elements of a flagged literal are covered
		case *ast.FuncLit:
			flag(x, "closure", "hoist the function literal out of the loop; each evaluation allocates its captures")
			return false
		}
		return true
	})
	return out
}

// typeExprAllocates reports whether the make() type argument is a slice
// or map (make(chan) in a kernel would be flagged by lockheld usage
// anyway and is left alone).
func (p *Package) typeExprAllocates(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	}
	switch e.(type) {
	case *ast.ArrayType, *ast.MapType:
		return true
	}
	return false
}

// compositeAllocates reports whether the composite literal builds a
// slice or map (struct and array values stay on the stack).
func (p *Package) compositeAllocates(cl *ast.CompositeLit) bool {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		switch cl.Type.(type) {
		case *ast.ArrayType, *ast.MapType:
			return true
		}
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
