// The lockorder rule: the module-wide lock-acquisition graph must be
// acyclic.  The fact store records an edge A→B whenever some function
// acquires B — directly or through a callee's lock summary — while
// holding A; two goroutines traversing a cycle in opposite directions
// deadlock.  A self-edge (re-acquiring the same mutex under the same
// receiver expression) is an immediate self-deadlock with sync.Mutex.
//
// Each package reports only the edges observed in its own sources, and
// searches for the closing path only through edges from its import
// closure — fact flow follows the import graph, which keeps the
// content-hash result cache sound.  The full acquisition chain of the
// cycle is attached as related locations (SARIF relatedLocations).
package lint

import (
	"go/types"
	"sort"
	"strings"
)

type lockorderRule struct{}

func init() { Register(lockorderRule{}) }

func (lockorderRule) Name() string { return "lockorder" }

func (lockorderRule) Doc() string {
	return "the module-wide mutex acquisition graph must have no cycles (potential deadlock)"
}

func (lockorderRule) Check(p *Package) []Finding {
	edges := p.Facts.LockEdges()
	if len(edges) == 0 {
		return nil
	}
	visible := importClosure(p)
	var vis []LockEdge
	for _, e := range edges {
		if visible[e.Pkg] {
			vis = append(vis, e)
		}
	}
	// Adjacency over the visible graph, self-edges excluded (they are
	// reported directly, and would short-circuit every path search).
	adj := make(map[types.Object][]LockEdge)
	for _, e := range vis {
		if e.From != e.To {
			adj[e.From] = append(adj[e.From], e)
		}
	}
	for from := range adj {
		sort.Slice(adj[from], func(i, j int) bool {
			a, b := adj[from][i], adj[from][j]
			if a.ToName != b.ToName {
				return a.ToName < b.ToName
			}
			return posLess(a.Pos, b.Pos)
		})
	}
	var out []Finding
	for _, e := range vis {
		if e.Pkg != p.ImportPath {
			continue // another package's edge; reported there
		}
		if e.From == e.To {
			out = append(out, Finding{
				Pos:  e.Pos,
				Rule: "lockorder",
				Msg:  "re-acquiring " + e.ToName + " while already holding it — self-deadlock",
				Hint: "sync.Mutex is not reentrant; restructure so the lock is taken once",
				Related: []Related{{
					Pos: e.FromPos,
					Msg: e.FromName + " was acquired here",
				}},
			})
			continue
		}
		path := lockPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		f := Finding{
			Pos:  e.Pos,
			Rule: "lockorder",
			Msg: "acquiring " + e.ToName + " while holding " + e.FromName +
				" closes a lock-order cycle — potential deadlock",
			Hint: "pick one global acquisition order and take the locks in it everywhere",
			Related: []Related{{
				Pos: e.FromPos,
				Msg: e.FromName + " was acquired here",
			}},
		}
		if len(e.Chain) > 0 && e.AcqPos.IsValid() {
			f.Msg += " (via " + strings.Join(e.Chain, " → ") + ")"
			f.Related = append(f.Related, Related{
				Pos: e.AcqPos,
				Msg: e.ToName + " is acquired here, inside the callee",
			})
		}
		for _, pe := range path {
			msg := "the reverse order — " + pe.ToName + " while holding " + pe.FromName + " — is taken here"
			if len(pe.Chain) > 0 {
				msg += " (via " + strings.Join(pe.Chain, " → ") + ")"
			}
			f.Related = append(f.Related, Related{Pos: pe.Pos, Msg: msg})
		}
		out = append(out, f)
	}
	return out
}

// lockPath finds a path from → to over the acquisition graph with a
// deterministic breadth-first search, returning the edge sequence.
func lockPath(adj map[types.Object][]LockEdge, from, to types.Object) []LockEdge {
	type queued struct {
		node types.Object
		path []LockEdge
	}
	queue := []queued{{node: from}}
	seen := map[types.Object]bool{from: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.node] {
			if seen[e.To] {
				continue
			}
			path := append(append([]LockEdge(nil), cur.path...), e)
			if e.To == to {
				return path
			}
			seen[e.To] = true
			queue = append(queue, queued{node: e.To, path: path})
		}
	}
	return nil
}
