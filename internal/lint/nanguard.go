// The nanguard rule: solver entry points either validate their float
// inputs against NaN/Inf or explicitly document that they propagate
// non-finite values.  A NaN that slips into an iterative solve corrupts
// every temperature downstream without crashing — exactly the silent
// failure class the paper's multi-level consistency flow is meant to
// exclude.
package lint

import (
	"go/ast"
	"strings"
)

// nanguardPkgs are the import-path suffixes whose whole package is in
// scope.
var nanguardPkgs = []string{
	"/internal/thermal",
	"/internal/convection",
	"/internal/twophase",
}

// nanguardDoc is the doc-comment marker that declares a function
// deliberately propagates NaN/Inf to its caller.
const nanguardDoc = "nanguard: propagates"

type nanguardRule struct{}

func init() { Register(nanguardRule{}) }

func (nanguardRule) Name() string { return "nanguard" }

func (nanguardRule) Doc() string {
	return "solver entry points must validate float inputs (math.IsNaN/IsInf or a *Finite helper) or document '// nanguard: propagates'"
}

// floatType reports whether the type expression is syntactically float64,
// []float64, [N]float64 or ...float64.
func floatType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "float64"
	case *ast.ArrayType:
		return floatType(t.Elt)
	case *ast.Ellipsis:
		return floatType(t.Elt)
	}
	return false
}

// fieldsHaveFloat reports whether any field in the list has a float
// type per floatType.
func fieldsHaveFloat(fl *ast.FieldList) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		if floatType(f.Type) {
			return true
		}
	}
	return false
}

// callsNaNCheck reports whether the body contains a direct call to
// math.IsNaN or math.IsInf, or to a validation helper whose name
// mentions "Finite" (e.g. checkFinite) — the idiom packages use to
// share one input-validation routine across several entry points.
func callsNaNCheck(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "IsNaN" || fun.Sel.Name == "IsInf" {
				if id, ok := fun.X.(*ast.Ident); ok && id.Name == "math" {
					found = true
					return false
				}
			}
			if strings.Contains(fun.Sel.Name, "Finite") {
				found = true
				return false
			}
		case *ast.Ident:
			if strings.Contains(fun.Name, "Finite") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exportedEntry reports whether the declaration is an exported function,
// or an exported method on an exported receiver type.
func exportedEntry(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func (nanguardRule) Check(p *Package) []Finding {
	inScope := false
	for _, suf := range nanguardPkgs {
		if strings.HasSuffix(p.ImportPath, suf) {
			inScope = true
			break
		}
	}
	linalg := strings.HasSuffix(p.ImportPath, "/internal/linalg")
	if !inScope && !linalg {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if linalg {
			// Only the iterative solvers are in scope for linalg.
			name := p.Fset.Position(f.Pos()).Filename
			if !strings.HasSuffix(name, "iterative.go") {
				continue
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedEntry(fd) {
				continue
			}
			if !fieldsHaveFloat(fd.Type.Params) || !fieldsHaveFloat(fd.Type.Results) {
				continue
			}
			if callsNaNCheck(fd.Body) {
				continue
			}
			if fd.Doc != nil && strings.Contains(fd.Doc.Text(), nanguardDoc) {
				continue
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(fd.Name.Pos()),
				Rule: "nanguard",
				Msg:  "exported solver entry point " + fd.Name.Name + " neither validates float inputs nor documents NaN propagation",
				Hint: "check inputs with math.IsNaN/math.IsInf or add '// nanguard: propagates' to the doc comment",
			})
		}
	}
	return out
}
