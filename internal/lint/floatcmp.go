// The floatcmp rule: exact ==/!= between float64 expressions hides
// rounding bugs; compare with a tolerance instead.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

type floatcmpRule struct{}

func init() { Register(floatcmpRule{}) }

func (floatcmpRule) Name() string { return "floatcmp" }

func (floatcmpRule) Doc() string {
	return "forbid exact ==/!= between float64 expressions outside test files"
}

// isZeroConst reports whether the expression is a compile-time constant
// equal to zero.  Zero-value sentinel checks (`if cfg.AmbientC == 0`) are
// the idiomatic Go "field not set" test and are deliberately exempt; every
// other exact float comparison is flagged.
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return false
	}
	v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	return v == 0
}

func (floatcmpRule) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !p.exprIsFloat64(be.X) || !p.exprIsFloat64(be.Y) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(be.OpPos),
				Rule: "floatcmp",
				Msg:  "exact " + be.Op.String() + " comparison between float64 expressions",
				Hint: "use units.ApproxEqual or an explicit tolerance",
			})
			return true
		})
	}
	return out
}
