// Machine-readable finding exporters: a compact JSON form for scripts
// and SARIF 2.1.0 for editor and CI integrations.  Both take findings
// whose positions have already been made module-root-relative, so the
// emitted URIs are stable across checkouts.
package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// jsonReport is the aeropacklint/v1 JSON envelope.
type jsonReport struct {
	Version  string        `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	File    string        `json:"file"`
	Line    int           `json:"line"`
	Column  int           `json:"column"`
	Rule    string        `json:"rule"`
	Msg     string        `json:"msg"`
	Hint    string        `json:"hint,omitempty"`
	Related []jsonRelated `json:"related,omitempty"`
	// Fix, when present, is the machine-applicable rewrite resolving the
	// finding: byte-offset edits against the named (root-relative) files.
	Fix *Fix `json:"fix,omitempty"`
}

// jsonRelated is one secondary location of an interprocedural finding —
// the blocking/solver call deep in a callee, or a sentinel's wrap site.
type jsonRelated struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Msg    string `json:"msg"`
}

// WriteJSONFindings emits the aeropacklint/v1 JSON report.
func WriteJSONFindings(w io.Writer, findings []Finding) error {
	rep := jsonReport{Version: "aeropacklint/v1", Findings: make([]jsonFinding, len(findings))}
	for i, f := range findings {
		rep.Findings[i] = jsonFinding{
			File: filepath.ToSlash(f.Pos.Filename), Line: f.Pos.Line, Column: f.Pos.Column,
			Rule: f.Rule, Msg: f.Msg, Hint: f.Hint, Fix: f.Fix,
		}
		for _, r := range f.Related {
			rep.Findings[i].Related = append(rep.Findings[i].Related, jsonRelated{
				File: filepath.ToSlash(r.Pos.Filename), Line: r.Pos.Line, Column: r.Pos.Column,
				Msg: r.Msg,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SARIF 2.1.0 document shape (the subset aeropacklint emits).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// RelatedLocations carries the secondary positions of
	// interprocedural findings; SARIF viewers render them as linked
	// sub-locations of the result.
	RelatedLocations []sarifRelatedLocation `json:"relatedLocations,omitempty"`
	// Fixes carries machine-applicable rewrites; SARIF viewers offer them
	// as quick-fixes.
	Fixes []sarifFix `json:"fixes,omitempty"`
}

type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifCharRegion    `json:"deletedRegion"`
	InsertedContent sarifContentToText `json:"insertedContent"`
}

// sarifCharRegion addresses a byte range with SARIF's charOffset /
// charLength region form (offsets are what the fix engine works in).
type sarifCharRegion struct {
	CharOffset int `json:"charOffset"`
	CharLength int `json:"charLength"`
}

type sarifContentToText struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifRelatedLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	Message          sarifMessage          `json:"message"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log.  Every registered
// rule appears in the driver's rule table whether or not it fired, so
// consumers can render the full policy.
func WriteSARIF(w io.Writer, rules []Rule, findings []Finding) error {
	driver := sarifDriver{Name: "aeropacklint"}
	index := make(map[string]int, len(rules))
	for i, r := range rules {
		index[r.Name()] = i
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Name(),
			ShortDescription: sarifMessage{Text: r.Doc()},
		})
	}
	results := make([]sarifResult, len(findings))
	for i, f := range findings {
		msg := f.Msg
		if f.Hint != "" {
			msg += " (" + f.Hint + ")"
		}
		results[i] = sarifResult{
			RuleID:    f.Rule,
			RuleIndex: index[f.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		}
		for _, r := range f.Related {
			results[i].RelatedLocations = append(results[i].RelatedLocations, sarifRelatedLocation{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(r.Pos.Filename)},
					Region:           sarifRegion{StartLine: r.Pos.Line, StartColumn: r.Pos.Column},
				},
				Message: sarifMessage{Text: r.Msg},
			})
		}
		if f.Fix != nil {
			results[i].Fixes = []sarifFix{sarifFixOf(f.Fix)}
		}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifFixOf converts a Fix to the SARIF fixes shape, grouping edits by
// file into one artifactChange each.
func sarifFixOf(fix *Fix) sarifFix {
	byFile := make(map[string][]sarifReplacement)
	var order []string
	for _, e := range fix.Edits {
		uri := filepath.ToSlash(e.File)
		if _, seen := byFile[uri]; !seen {
			order = append(order, uri)
		}
		byFile[uri] = append(byFile[uri], sarifReplacement{
			DeletedRegion:   sarifCharRegion{CharOffset: e.Offset, CharLength: e.End - e.Offset},
			InsertedContent: sarifContentToText{Text: e.New},
		})
	}
	out := sarifFix{Description: sarifMessage{Text: fix.Desc}}
	for _, uri := range order {
		out.ArtifactChanges = append(out.ArtifactChanges, sarifArtifactChange{
			ArtifactLocation: sarifArtifactLocation{URI: uri},
			Replacements:     byFile[uri],
		})
	}
	return out
}
