package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTemperatureConversion(t *testing.T) {
	if got := CToK(0); got != 273.15 {
		t.Errorf("CToK(0) = %v, want 273.15", got)
	}
	if got := CToK(125); got != 398.15 {
		t.Errorf("CToK(125) = %v, want 398.15", got)
	}
	if got := KToC(273.15); got != 0 {
		t.Errorf("KToC(273.15) = %v, want 0", got)
	}
}

func TestTemperatureRoundTrip(t *testing.T) {
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		return ApproxEqual(KToC(CToK(c)), c, 1e-12) || c == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeatFlux(t *testing.T) {
	// The paper's hot-spot figure: 100 W/cm² = 1 MW/m².
	if got := WPerCm2(100); got != 1e6 {
		t.Errorf("WPerCm2(100) = %v, want 1e6", got)
	}
	if got := ToWPerCm2(1e6); got != 100 {
		t.Errorf("ToWPerCm2(1e6) = %v, want 100", got)
	}
}

func TestMassFlow(t *testing.T) {
	// ARINC 600: 220 kg/h/kW.
	got := KgPerHour(220)
	want := 220.0 / 3600
	if !ApproxEqual(got, want, 1e-12) {
		t.Errorf("KgPerHour(220) = %v, want %v", got, want)
	}
	if !ApproxEqual(ToKgPerHour(got), 220, 1e-12) {
		t.Errorf("round trip failed")
	}
}

func TestGLevel(t *testing.T) {
	// COSEE acceleration test level: 9 g.
	if got := GLevel(9); !ApproxEqual(got, 88.25985, 1e-6) {
		t.Errorf("GLevel(9) = %v", got)
	}
	if got := ToGLevel(GLevel(9)); !ApproxEqual(got, 9, 1e-12) {
		t.Errorf("g round trip = %v", got)
	}
}

func TestLengthUnits(t *testing.T) {
	if got := Mil(1); !ApproxEqual(got, 25.4e-6, 1e-12) {
		t.Errorf("Mil(1) = %v", got)
	}
	if got := Micron(20); !ApproxEqual(got, 20e-6, 1e-12) {
		t.Errorf("Micron(20) = %v", got)
	}
	if got := ToMicron(Micron(17.5)); !ApproxEqual(got, 17.5, 1e-12) {
		t.Errorf("micron round trip = %v", got)
	}
	if got := Millimetre(3); !ApproxEqual(got, 0.003, 1e-12) {
		t.Errorf("Millimetre(3) = %v", got)
	}
}

func TestInterfaceResistance(t *testing.T) {
	// NANOPACK target: 5 K·mm²/W = 5e-6 K·m²/W.
	if got := KMm2PerW(5); !ApproxEqual(got, 5e-6, 1e-12) {
		t.Errorf("KMm2PerW(5) = %v", got)
	}
	if got := ToKMm2PerW(KMm2PerW(5)); !ApproxEqual(got, 5, 1e-12) {
		t.Errorf("round trip = %v", got)
	}
}

func TestFlowUnits(t *testing.T) {
	if got := LPerMin(60000); !ApproxEqual(got, 1, 1e-12) {
		t.Errorf("LPerMin(60000) = %v, want 1", got)
	}
	if got := ToCFM(CFM(25)); !ApproxEqual(got, 25, 1e-12) {
		t.Errorf("CFM round trip = %v", got)
	}
}

func TestTimeAndFIT(t *testing.T) {
	if got := Hour(40000); got != 40000*3600 {
		t.Errorf("Hour(40000) = %v", got)
	}
	if got := ToHour(Hour(40000)); got != 40000 {
		t.Errorf("hour round trip = %v", got)
	}
	// 1000 FIT = 1e-6 failures/hour → MTBF 1e6 h.
	if got := FIT(1000); !ApproxEqual(got, 1e-6, 1e-12) {
		t.Errorf("FIT(1000) = %v", got)
	}
	if got := ToFIT(FIT(123.4)); !ApproxEqual(got, 123.4, 1e-12) {
		t.Errorf("FIT round trip = %v", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(10, 20, 0.5); got != 15 {
		t.Errorf("Lerp(10,20,0.5) = %v", got)
	}
	if got := Lerp(10, 20, 0); got != 10 {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := Lerp(10, 20, 1); got != 20 {
		t.Errorf("Lerp t=1 = %v", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-10, 1e-9) {
		t.Error("should be approx equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-3) {
		t.Error("should not be approx equal")
	}
	if !ApproxEqual(0, 0, 1e-9) {
		t.Error("zero should equal zero")
	}
}

func TestEngineering(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{0, "W", "0 W"},
		{2.5e-6, "m", "2.5 µm"},
		{1500, "W", "1.5 kW"},
		{0.02, "K/W", "20 mK/W"},
	}
	for _, c := range cases {
		if got := Engineering(c.v, c.unit); got != c.want {
			t.Errorf("Engineering(%v,%q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}
