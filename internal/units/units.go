// Package units provides physical constants, unit conversions and small
// quantity-formatting helpers shared by every aeropack simulation package.
//
// All aeropack packages work internally in strict SI units:
// metres, kilograms, seconds, kelvin, watts, pascals.  This package is the
// single place where non-SI engineering units used in the avionics world
// (°C, W/cm², kg/h, g-levels, mil, K·mm²/W) are converted.
package units

import (
	"fmt"
	"math"
)

// Physical constants (SI).
const (
	// StefanBoltzmann is the Stefan–Boltzmann constant in W/(m²·K⁴).
	StefanBoltzmann = 5.670374419e-8
	// Gravity is standard gravitational acceleration in m/s².
	Gravity = 9.80665
	// GasConstant is the universal gas constant in J/(mol·K).
	GasConstant = 8.314462618
	// Boltzmann is the Boltzmann constant in J/K (used by Arrhenius models).
	Boltzmann = 1.380649e-23
	// ElectronVolt in joules (activation energies are quoted in eV).
	ElectronVolt = 1.602176634e-19
	// BoltzmannEV is the Boltzmann constant in eV/K.
	BoltzmannEV = Boltzmann / ElectronVolt
	// AtmPressure is standard sea-level pressure in Pa.
	AtmPressure = 101325.0
	// ZeroCelsius is 0 °C in kelvin.
	ZeroCelsius = 273.15
)

// CToK converts a temperature from degrees Celsius to kelvin.
func CToK(c float64) float64 { return c + ZeroCelsius }

// KToC converts a temperature from kelvin to degrees Celsius.
func KToC(k float64) float64 { return k - ZeroCelsius }

// WPerCm2 converts a heat flux expressed in W/cm² to W/m².
func WPerCm2(f float64) float64 { return f * 1e4 }

// ToWPerCm2 converts a heat flux expressed in W/m² to W/cm².
func ToWPerCm2(f float64) float64 { return f * 1e-4 }

// KgPerHour converts a mass flow from kg/h to kg/s.
func KgPerHour(m float64) float64 { return m / 3600 }

// ToKgPerHour converts a mass flow from kg/s to kg/h.
func ToKgPerHour(m float64) float64 { return m * 3600 }

// GLevel converts an acceleration in g to m/s².
func GLevel(g float64) float64 { return g * Gravity }

// ToGLevel converts an acceleration in m/s² to g.
func ToGLevel(a float64) float64 { return a / Gravity }

// Mil converts thousandths of an inch to metres.
func Mil(m float64) float64 { return m * 25.4e-6 }

// Micron converts micrometres to metres.
func Micron(um float64) float64 { return um * 1e-6 }

// ToMicron converts metres to micrometres.
func ToMicron(m float64) float64 { return m * 1e6 }

// Millimetre converts millimetres to metres.
func Millimetre(mm float64) float64 { return mm * 1e-3 }

// KMm2PerW converts a specific thermal interface resistance from K·mm²/W
// (the unit used throughout the NANOPACK results) to SI K·m²/W.
func KMm2PerW(r float64) float64 { return r * 1e-6 }

// ToKMm2PerW converts a specific thermal resistance from K·m²/W to K·mm²/W.
func ToKMm2PerW(r float64) float64 { return r * 1e6 }

// LPerMin converts a volumetric flow from litres per minute to m³/s.
func LPerMin(q float64) float64 { return q / 60000 }

// CFM converts a volumetric flow from cubic feet per minute to m³/s.
func CFM(q float64) float64 { return q * 4.719474432e-4 }

// ToCFM converts a volumetric flow from m³/s to cubic feet per minute.
func ToCFM(q float64) float64 { return q / 4.719474432e-4 }

// Hour converts hours to seconds.
func Hour(h float64) float64 { return h * 3600 }

// ToHour converts seconds to hours.
func ToHour(s float64) float64 { return s / 3600 }

// FIT converts failures-in-time (failures per 10⁹ device-hours) to
// failures per hour.
func FIT(f float64) float64 { return f * 1e-9 }

// ToFIT converts a failure rate in failures per hour to FIT.
func ToFIT(l float64) float64 { return l * 1e9 }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a (t=0) and b (t=1).
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// ApproxEqual reports whether a and b agree to within relative tolerance
// rel, falling back to an absolute comparison near zero.
func ApproxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-300 {
		return diff == 0
	}
	if scale < 1 {
		return diff <= rel
	}
	return diff <= rel*scale
}

// Engineering formats a value with an SI prefix and the given unit,
// e.g. Engineering(2.5e-6, "m") == "2.50 µm".
func Engineering(v float64, unit string) string {
	if v == 0 {
		return fmt.Sprintf("0 %s", unit)
	}
	prefixes := []struct {
		exp  float64
		name string
	}{
		{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"},
	}
	a := math.Abs(v)
	for _, p := range prefixes {
		if a >= p.exp {
			return fmt.Sprintf("%.3g %s%s", v/p.exp, p.name, unit)
		}
	}
	return fmt.Sprintf("%.3g %s", v, unit)
}
