package radiation

import (
	"math"
	"testing"

	"aeropack/internal/units"
)

func TestViewFactorParallelLimits(t *testing.T) {
	// Very close plates: F → 1.
	f, err := ViewFactorParallelRects(1, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.99 || f > 1 {
		t.Errorf("close plates F = %v, want →1", f)
	}
	// Very distant plates: F → 0.
	f, _ = ViewFactorParallelRects(1, 1, 100)
	if f > 0.001 {
		t.Errorf("distant plates F = %v, want →0", f)
	}
	// Chart value: unit squares at unit distance, F ≈ 0.1998.
	f, _ = ViewFactorParallelRects(1, 1, 1)
	if !units.ApproxEqual(f, 0.1998, 0.01) {
		t.Errorf("unit-square F = %v, want ≈0.20", f)
	}
	if _, err := ViewFactorParallelRects(0, 1, 1); err == nil {
		t.Error("degenerate dims should error")
	}
}

func TestViewFactorPerpendicular(t *testing.T) {
	// Equal square plates sharing an edge: F ≈ 0.20004.
	f, err := ViewFactorPerpendicularRects(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(f, 0.2, 0.02) {
		t.Errorf("perpendicular square F = %v, want ≈0.20", f)
	}
	// Reciprocity for unequal plates: A1·F12 = A2·F21.
	f12, _ := ViewFactorPerpendicularRects(1, 0.5, 2)
	f21, _ := ViewFactorPerpendicularRects(1, 2, 0.5)
	if !units.ApproxEqual(1*0.5*f12, 1*2*f21, 1e-6) {
		t.Errorf("reciprocity broken: %v vs %v", 0.5*f12, 2*f21)
	}
	if _, err := ViewFactorPerpendicularRects(1, -1, 1); err == nil {
		t.Error("degenerate dims should error")
	}
}

func TestTwoSurfaceExchangeBlackBodyPlates(t *testing.T) {
	// Two close black plates: q = σA(T1⁴−T2⁴).
	q, err := TwoSurfaceExchange(1, 1, 400, 1, 1, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := units.StefanBoltzmann * (math.Pow(400, 4) - math.Pow(300, 4))
	if !units.ApproxEqual(q, want, 1e-9) {
		t.Errorf("black plates q = %v, want %v", q, want)
	}
	// Grey surfaces reduce exchange.
	qGrey, _ := TwoSurfaceExchange(1, 0.5, 400, 1, 0.5, 300, 1)
	if qGrey >= q {
		t.Error("grey exchange must be below black")
	}
	// Anti-symmetric in temperatures.
	qRev, _ := TwoSurfaceExchange(1, 0.5, 300, 1, 0.5, 400, 1)
	if !units.ApproxEqual(qRev, -qGrey, 1e-9) {
		t.Error("exchange should be antisymmetric")
	}
	if _, err := TwoSurfaceExchange(0, 1, 400, 1, 1, 300, 1); err == nil {
		t.Error("zero area should error")
	}
	if _, err := TwoSurfaceExchange(1, 2, 400, 1, 1, 300, 1); err == nil {
		t.Error("emissivity > 1 should error")
	}
}

func TestRadiativeCoefficient(t *testing.T) {
	// ε=0.9 surface at 85 °C facing 25 °C surroundings: h_rad ≈ 7 W/m²K —
	// comparable to natural convection, which is why sealed avionics boxes
	// must be anodized/painted (high ε).
	h := RadiativeCoefficient(0.9, units.CToK(85), units.CToK(25))
	if h < 5.5 || h > 8.5 {
		t.Errorf("h_rad = %v, want ≈7", h)
	}
	if RadiativeCoefficient(0, 400, 300) != 0 {
		t.Error("zero emissivity gives zero coefficient")
	}
	// Linearisation consistency: q = h·ΔT equals exact σε(T⁴ difference).
	Ts, Ta := 360.0, 300.0
	exact := 0.8 * units.StefanBoltzmann * (math.Pow(Ts, 4) - math.Pow(Ta, 4))
	lin := RadiativeCoefficient(0.8, Ts, Ta) * (Ts - Ta)
	if !units.ApproxEqual(exact, lin, 1e-9) {
		t.Errorf("linearisation inconsistent: %v vs %v", exact, lin)
	}
}

// twoPlateEnclosure builds the classic two-parallel-plate enclosure where
// each plate sees only the other (F12 = F21 = 1).
func twoPlateEnclosure(eps1, T1, eps2, T2 float64) *Enclosure {
	return &Enclosure{
		Surfaces: []Surface{
			{Name: "hot", Area: 1, Emiss: eps1, T: T1},
			{Name: "cold", Area: 1, Emiss: eps2, T: T2},
		},
		F: [][]float64{{0, 1}, {1, 0}},
	}
}

func TestEnclosureTwoPlatesMatchesAnalytic(t *testing.T) {
	// Infinite parallel grey plates: q = σ(T1⁴−T2⁴)/(1/ε1 + 1/ε2 − 1).
	e := twoPlateEnclosure(0.8, 420, 0.6, 320)
	q, err := e.SolveNetFlux()
	if err != nil {
		t.Fatal(err)
	}
	want := units.StefanBoltzmann * (math.Pow(420, 4) - math.Pow(320, 4)) / (1/0.8 + 1/0.6 - 1)
	if !units.ApproxEqual(q[0], want, 1e-9) {
		t.Errorf("net flux = %v, want %v", q[0], want)
	}
	// Closed enclosure: fluxes sum to zero.
	if math.Abs(q[0]+q[1]) > 1e-9*math.Abs(q[0]) {
		t.Errorf("fluxes do not balance: %v", q)
	}
}

func TestEnclosureThreeSurface(t *testing.T) {
	// Equilateral triangular cavity (2-D analogy): each surface sees the
	// other two equally, F = 0.5 each.  Equal areas and emissivities, two
	// hot one cold: hot surfaces lose, cold gains, total zero.
	e := &Enclosure{
		Surfaces: []Surface{
			{Name: "a", Area: 1, Emiss: 0.9, T: 400},
			{Name: "b", Area: 1, Emiss: 0.9, T: 400},
			{Name: "c", Area: 1, Emiss: 0.9, T: 300},
		},
		F: [][]float64{
			{0, 0.5, 0.5},
			{0.5, 0, 0.5},
			{0.5, 0.5, 0},
		},
	}
	q, err := e.SolveNetFlux()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] <= 0 || q[1] <= 0 || q[2] >= 0 {
		t.Errorf("flux signs wrong: %v", q)
	}
	if math.Abs(q[0]+q[1]+q[2]) > 1e-8*math.Abs(q[2]) {
		t.Errorf("enclosure not balanced: %v", q)
	}
	// Symmetry: the two hot surfaces are identical.
	if !units.ApproxEqual(q[0], q[1], 1e-9) {
		t.Errorf("symmetric surfaces differ: %v vs %v", q[0], q[1])
	}
}

func TestEnclosureValidation(t *testing.T) {
	e := &Enclosure{}
	if err := e.Validate(0); err == nil {
		t.Error("empty enclosure should fail")
	}
	// Rows not summing to 1.
	bad := twoPlateEnclosure(0.8, 400, 0.8, 300)
	bad.F[0][1] = 0.5
	if err := bad.Validate(0); err == nil {
		t.Error("open row sum should fail")
	}
	// Reciprocity violation via unequal areas with symmetric F.
	rec := twoPlateEnclosure(0.8, 400, 0.8, 300)
	rec.Surfaces[1].Area = 2
	if err := rec.Validate(0); err == nil {
		t.Error("reciprocity violation should fail")
	}
	// Bad emissivity.
	eps := twoPlateEnclosure(0, 400, 0.8, 300)
	if err := eps.Validate(0); err == nil {
		t.Error("zero emissivity should fail")
	}
	// Mis-shaped F.
	mis := twoPlateEnclosure(0.8, 400, 0.8, 300)
	mis.F = mis.F[:1]
	if err := mis.Validate(0); err == nil {
		t.Error("short F should fail")
	}
}
