// Package radiation implements grey-body surface radiation exchange:
// analytic view factors for the plate configurations common in card cages
// and sealed boxes, and a radiosity network solver for N-surface
// enclosures.  It backs the sealed-equipment cases (paper §III: "radiation
// and free convection in the air") where radiation carries a comparable
// share of the load to natural convection.
package radiation

import (
	"fmt"
	"math"

	"aeropack/internal/linalg"
	"aeropack/internal/units"
)

// ViewFactorParallelRects returns the view factor F₁₂ between two directly
// opposed, aligned a×b rectangles separated by distance c (standard
// Hottel/Incropera chart formula).
func ViewFactorParallelRects(a, b, c float64) (float64, error) {
	if a <= 0 || b <= 0 || c <= 0 {
		return 0, fmt.Errorf("radiation: dimensions must be positive")
	}
	X := a / c
	Y := b / c
	x2 := 1 + X*X
	y2 := 1 + Y*Y
	term1 := math.Log(math.Sqrt(x2 * y2 / (x2 + Y*Y)))
	term2 := X * math.Sqrt(y2) * math.Atan(X/math.Sqrt(y2))
	term3 := Y * math.Sqrt(x2) * math.Atan(Y/math.Sqrt(x2))
	term4 := X*math.Atan(X) + Y*math.Atan(Y)
	f := 2 / (math.Pi * X * Y) * (term1 + term2 + term3 - term4)
	return f, nil
}

// ViewFactorPerpendicularRects returns F₁₂ for two rectangles sharing a
// common edge of length l and forming a 90° corner: surface 1 is l×w1 and
// surface 2 is l×w2 (Incropera eq. 13.8, H = w2/l, W = w1/l).
func ViewFactorPerpendicularRects(l, w1, w2 float64) (float64, error) {
	if l <= 0 || w1 <= 0 || w2 <= 0 {
		return 0, fmt.Errorf("radiation: dimensions must be positive")
	}
	H := w2 / l
	W := w1 / l
	h2 := H * H
	w2s := W * W
	a := W * math.Atan(1/W)
	b := H * math.Atan(1/H)
	c := math.Sqrt(h2+w2s) * math.Atan(1/math.Sqrt(h2+w2s))
	lg := math.Log((1 + w2s) * (1 + h2) / (1 + w2s + h2))
	lg += w2s * math.Log(w2s*(1+w2s+h2)/((1+w2s)*(w2s+h2)))
	lg += h2 * math.Log(h2*(1+h2+w2s)/((1+h2)*(h2+w2s)))
	f := (a + b - c + 0.25*lg) / (math.Pi * W)
	return f, nil
}

// TwoSurfaceExchange returns the net radiative heat flow (W) from surface
// 1 to surface 2 for two grey diffuse surfaces forming an enclosure with
// view factor f12: q = σ(T1⁴−T2⁴)/(ρ₁/(ε₁A₁) + 1/(A₁F₁₂) + ρ₂/(ε₂A₂)).
func TwoSurfaceExchange(a1, eps1, T1, a2, eps2, T2, f12 float64) (float64, error) {
	if a1 <= 0 || a2 <= 0 || f12 <= 0 || f12 > 1 {
		return 0, fmt.Errorf("radiation: invalid areas or view factor")
	}
	if eps1 <= 0 || eps1 > 1 || eps2 <= 0 || eps2 > 1 {
		return 0, fmt.Errorf("radiation: emissivities must be in (0,1]")
	}
	r := (1-eps1)/(eps1*a1) + 1/(a1*f12) + (1-eps2)/(eps2*a2)
	return units.StefanBoltzmann * (math.Pow(T1, 4) - math.Pow(T2, 4)) / r, nil
}

// RadiativeCoefficient linearises radiation between a surface at Ts and
// surroundings at Ta: h_rad = εσ(Ts²+Ta²)(Ts+Ta), in W/(m²·K).
func RadiativeCoefficient(eps, Ts, Ta float64) float64 {
	if eps <= 0 {
		return 0
	}
	return eps * units.StefanBoltzmann * (Ts*Ts + Ta*Ta) * (Ts + Ta)
}

// Surface is one grey diffuse surface of an enclosure.
type Surface struct {
	Name  string
	Area  float64 // m²
	Emiss float64 // (0,1]
	T     float64 // K (used when solving for flux)
}

// Enclosure is an N-surface radiosity problem with a full view-factor
// matrix F where F[i][j] is the fraction of radiation leaving i that
// reaches j.  Rows must sum to 1 for a closed enclosure.
type Enclosure struct {
	Surfaces []Surface
	F        [][]float64
}

// Validate checks the enclosure's consistency: square F, rows summing to
// ≈1, and reciprocity Aᵢ·Fᵢⱼ = Aⱼ·Fⱼᵢ within tolerance.
func (e *Enclosure) Validate(tol float64) error {
	n := len(e.Surfaces)
	if n == 0 {
		return fmt.Errorf("radiation: enclosure has no surfaces")
	}
	if len(e.F) != n {
		return fmt.Errorf("radiation: F has %d rows, want %d", len(e.F), n)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	for i, row := range e.F {
		if len(row) != n {
			return fmt.Errorf("radiation: F row %d has %d cols, want %d", i, len(row), n)
		}
		sum := 0.0
		for _, v := range row {
			if v < 0 || v > 1 {
				return fmt.Errorf("radiation: F[%d] contains value outside [0,1]", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-3 {
			return fmt.Errorf("radiation: F row %d sums to %g, want 1 (closed enclosure)", i, sum)
		}
	}
	for i := 0; i < n; i++ {
		if e.Surfaces[i].Area <= 0 {
			return fmt.Errorf("radiation: surface %d area must be positive", i)
		}
		if e.Surfaces[i].Emiss <= 0 || e.Surfaces[i].Emiss > 1 {
			return fmt.Errorf("radiation: surface %d emissivity must be in (0,1]", i)
		}
		for j := 0; j < n; j++ {
			lhs := e.Surfaces[i].Area * e.F[i][j]
			rhs := e.Surfaces[j].Area * e.F[j][i]
			if math.Abs(lhs-rhs) > tol*(1+math.Abs(lhs)) {
				return fmt.Errorf("radiation: reciprocity violated between %d and %d (%g vs %g)", i, j, lhs, rhs)
			}
		}
	}
	return nil
}

// SolveNetFlux solves the radiosity system for the given surface
// temperatures and returns the net heat flow (W, positive leaving) per
// surface.  Fluxes sum to ≈0 for a closed enclosure.
func (e *Enclosure) SolveNetFlux() ([]float64, error) {
	if err := e.Validate(1e-6); err != nil {
		return nil, err
	}
	n := len(e.Surfaces)
	// Radiosity J solves (δij − (1−εi)·Fij)·Jj = εi·σ·Ti⁴.
	a := linalg.NewDense(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		si := e.Surfaces[i]
		for j := 0; j < n; j++ {
			v := -(1 - si.Emiss) * e.F[i][j]
			if i == j {
				v += 1
			}
			a.Set(i, j, v)
		}
		b[i] = si.Emiss * units.StefanBoltzmann * math.Pow(si.T, 4)
	}
	j, err := linalg.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("radiation: radiosity solve failed: %w", err)
	}
	q := make([]float64, n)
	for i := 0; i < n; i++ {
		si := e.Surfaces[i]
		// Net flux qᵢ = Aᵢ·(Jᵢ − Gᵢ), G = Σ Fij·Jj.
		g := 0.0
		for jj := 0; jj < n; jj++ {
			g += e.F[i][jj] * j[jj]
		}
		q[i] = si.Area * (j[i] - g)
	}
	return q, nil
}
