// Package reliability implements the failure-rate and lifetime
// calculations the paper's level-3 junction temperatures feed ("the
// temperature will be used as an input data for the safety and reliability
// calculations — typical MTBF for aerospace applications is about
// 40,000 h").
//
// The model is a MIL-HDBK-217F-class parts-stress method: per-part base
// failure rates scaled by an Arrhenius temperature factor, a quality
// factor and an application-environment factor, rolled up in series.
// Norris–Landzberg / Coffin–Manson give thermal-cycling solder fatigue.
package reliability

import (
	"fmt"
	"math"
	"sort"

	"aeropack/internal/units"
)

// Environment is the 217F-style application environment.
type Environment int

// Application environments, mildest first.
const (
	GroundBenign Environment = iota
	GroundFixed
	AirborneInhabitedCargo
	AirborneInhabitedFighter
	AirborneUninhabitedCargo
	AirborneUninhabitedFighter
	SpaceFlight
	Launch
)

// piE returns the environment factor.
func (e Environment) piE() (float64, error) {
	switch e {
	case GroundBenign:
		return 0.5, nil
	case GroundFixed:
		return 2.0, nil
	case AirborneInhabitedCargo:
		return 4.0, nil
	case AirborneInhabitedFighter:
		return 5.0, nil
	case AirborneUninhabitedCargo:
		return 5.5, nil
	case AirborneUninhabitedFighter:
		return 8.0, nil
	case SpaceFlight:
		return 0.5, nil
	case Launch:
		return 12.0, nil
	}
	return 0, fmt.Errorf("reliability: unknown environment %d", int(e))
}

// String names the environment.
func (e Environment) String() string {
	names := []string{"GB", "GF", "AIC", "AIF", "AUC", "AUF", "SF", "ML"}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("Env(%d)", int(e))
}

// Quality is the part screening level.
type Quality int

// Screening levels.
const (
	QualSpace Quality = iota // class S
	QualMil                  // class B / mil-screened
	QualIndustrial
	QualCommercial // COTS plastic — the paper's cost play
)

func (q Quality) piQ() (float64, error) {
	switch q {
	case QualSpace:
		return 0.25, nil
	case QualMil:
		return 1.0, nil
	case QualIndustrial:
		return 3.0, nil
	case QualCommercial:
		return 6.0, nil
	}
	return 0, fmt.Errorf("reliability: unknown quality %d", int(q))
}

// Arrhenius returns the acceleration factor between junction temperatures
// Tuse and Tstress (K) for activation energy ea (eV): failures accelerate
// by this factor at the hotter temperature.
func Arrhenius(ea, Tuse, Tstress float64) float64 {
	if Tuse <= 0 || Tstress <= 0 {
		return math.NaN()
	}
	return math.Exp(ea / units.BoltzmannEV * (1/Tuse - 1/Tstress))
}

// Part is one reliability item on the bill of materials.
type Part struct {
	Name string
	// BaseFIT is the base failure rate in FIT (failures per 10⁹ h) at the
	// reference junction temperature TRef and GB environment, mil quality.
	BaseFIT float64
	// EaEV is the Arrhenius activation energy, eV (typical 0.3–0.8).
	EaEV float64
	// TRef is the reference junction temperature, K (default 313.15 =
	// 40 °C if zero).
	TRef float64
	// Quality screening level.
	Quality Quality
	// Quantity of identical parts.
	Quantity int
}

// FITAt returns the part's failure rate (total for Quantity parts, FIT)
// at junction temperature tj in environment env.
func (p *Part) FITAt(tj float64, env Environment) (float64, error) {
	if p.BaseFIT < 0 || p.Quantity < 1 {
		return 0, fmt.Errorf("reliability: part %q invalid", p.Name)
	}
	tref := p.TRef
	if tref == 0 {
		tref = 313.15
	}
	piT := Arrhenius(p.EaEV, tref, tj)
	if math.IsNaN(piT) {
		return 0, fmt.Errorf("reliability: invalid junction temperature %g", tj)
	}
	piE, err := env.piE()
	if err != nil {
		return 0, err
	}
	piQ, err := p.Quality.piQ()
	if err != nil {
		return 0, err
	}
	return p.BaseFIT * piT * piE * piQ * float64(p.Quantity), nil
}

// Board is a series reliability roll-up of parts.
type Board struct {
	Name  string
	Parts []Part
}

// Contribution is one part's share of the failure budget.
type Contribution struct {
	Name     string
	FIT      float64
	Fraction float64
}

// Prediction is the roll-up result.
type Prediction struct {
	TotalFIT      float64
	MTBFHours     float64
	Contributions []Contribution // descending FIT
}

// Predict computes the series MTBF with per-part junction temperatures:
// tj maps part name to junction kelvin; parts absent from the map run at
// fallbackTj.
func (b *Board) Predict(tj map[string]float64, fallbackTj float64, env Environment) (*Prediction, error) {
	if len(b.Parts) == 0 {
		return nil, fmt.Errorf("reliability: board %q has no parts", b.Name)
	}
	var total float64
	contribs := make([]Contribution, 0, len(b.Parts))
	for i := range b.Parts {
		p := &b.Parts[i]
		t, ok := tj[p.Name]
		if !ok {
			t = fallbackTj
		}
		fit, err := p.FITAt(t, env)
		if err != nil {
			return nil, err
		}
		total += fit
		contribs = append(contribs, Contribution{Name: p.Name, FIT: fit})
	}
	if total <= 0 {
		return nil, fmt.Errorf("reliability: zero total failure rate")
	}
	for i := range contribs {
		contribs[i].Fraction = contribs[i].FIT / total
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i].FIT > contribs[j].FIT })
	return &Prediction{
		TotalFIT:      total,
		MTBFHours:     1 / units.FIT(total), // = 1e9/total hours
		Contributions: contribs,
	}, nil
}

// CoffinManson returns the cycles-to-failure of a solder joint under
// thermal cycling of range dT (K): Nf = C·dT^(−q).  C and q default to
// SAC305 values (C = 4.5e5 at q = 2.0 against dT in K) when zero.
func CoffinManson(dT, c, q float64) (float64, error) {
	if dT <= 0 {
		return 0, fmt.Errorf("reliability: cycle range must be positive")
	}
	if c == 0 {
		c = 4.5e5
	}
	if q == 0 {
		q = 2.0
	}
	if c <= 0 || q <= 0 {
		return 0, fmt.Errorf("reliability: invalid Coffin–Manson constants")
	}
	return c * math.Pow(dT, -q), nil
}

// NorrisLandzberg returns the acceleration factor from field to test
// thermal cycling: AF = (dTtest/dTfield)^n · (fField/fTest)^m ·
// exp(Ea/k·(1/TmaxField − 1/TmaxTest)), with SAC defaults n=2.65, m=0.136,
// Ea=0.136 eV (pass zeros to use them).  f are cycle frequencies per day,
// Tmax in K.
func NorrisLandzberg(dTField, dTTest, fField, fTest, TmaxField, TmaxTest, n, m, eaEV float64) (float64, error) {
	if dTField <= 0 || dTTest <= 0 || fField <= 0 || fTest <= 0 || TmaxField <= 0 || TmaxTest <= 0 {
		return 0, fmt.Errorf("reliability: Norris–Landzberg inputs must be positive")
	}
	if n == 0 {
		n = 2.65
	}
	if m == 0 {
		m = 0.136
	}
	if eaEV == 0 {
		eaEV = 0.136
	}
	return math.Pow(dTTest/dTField, n) *
		math.Pow(fField/fTest, m) *
		math.Exp(eaEV/units.BoltzmannEV*(1/TmaxField-1/TmaxTest)), nil
}

// MissionSegment is one phase of a mission profile.
type MissionSegment struct {
	Name     string
	Fraction float64 // duty fraction of total life, 0..1
	TjOffset float64 // junction temperature delta vs the base case, K
	Env      Environment
}

// MissionMTBF computes the duty-weighted MTBF of a board across mission
// segments; tjBase maps part → junction K in the reference segment.
func (b *Board) MissionMTBF(tjBase map[string]float64, fallbackTj float64, segments []MissionSegment) (float64, error) {
	if len(segments) == 0 {
		return 0, fmt.Errorf("reliability: empty mission profile")
	}
	total := 0.0
	fracSum := 0.0
	for _, seg := range segments {
		if seg.Fraction < 0 {
			return 0, fmt.Errorf("reliability: segment %q has negative fraction", seg.Name)
		}
		fracSum += seg.Fraction
		adj := make(map[string]float64, len(tjBase))
		for k, v := range tjBase {
			adj[k] = v + seg.TjOffset
		}
		pred, err := b.Predict(adj, fallbackTj+seg.TjOffset, seg.Env)
		if err != nil {
			return 0, err
		}
		total += seg.Fraction * pred.TotalFIT
	}
	if math.Abs(fracSum-1) > 1e-6 {
		return 0, fmt.Errorf("reliability: mission fractions sum to %g, want 1", fracSum)
	}
	return 1e9 / total, nil
}

// RedundantMTBF returns the MTBF of an active-parallel group that needs k
// of its n identical units (each with exponential MTBF m) to function:
// MTBF = m·Σ_{i=k..n} 1/i — the standard order-statistics result.  Active
// redundancy is the usual avionics pattern for power supplies and fans.
func RedundantMTBF(m float64, k, n int) (float64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("reliability: unit MTBF must be positive")
	}
	if k < 1 || n < k {
		return 0, fmt.Errorf("reliability: need 1 ≤ k ≤ n, got k=%d n=%d", k, n)
	}
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += 1 / float64(i)
	}
	return m * sum, nil
}

// StandbyMTBF returns the MTBF of a 1-of-n cold-standby group with
// perfect switching: the spare is unstressed until promoted, so the group
// lasts n lifetimes.
func StandbyMTBF(m float64, n int) (float64, error) {
	if m <= 0 || n < 1 {
		return 0, fmt.Errorf("reliability: invalid standby inputs")
	}
	return m * float64(n), nil
}

// MissionReliability returns exp(−t/MTBF): the probability of surviving a
// mission of duration t hours on an exponential failure model.
func MissionReliability(mtbfHours, tHours float64) (float64, error) {
	if mtbfHours <= 0 || tHours < 0 {
		return 0, fmt.Errorf("reliability: invalid mission inputs")
	}
	return math.Exp(-tHours / mtbfHours), nil
}
