package reliability

import (
	"math"
	"testing"

	"aeropack/internal/units"
)

func TestArrhenius(t *testing.T) {
	// Same temperature → factor 1.
	if got := Arrhenius(0.7, 350, 350); !units.ApproxEqual(got, 1, 1e-12) {
		t.Errorf("AF(same T) = %v", got)
	}
	// Hotter stress → factor >1, and strongly so for 0.7 eV over 30 K.
	af := Arrhenius(0.7, units.CToK(55), units.CToK(85))
	if af < 3 || af > 15 {
		t.Errorf("AF(55→85°C, 0.7eV) = %v, want ≈6–8", af)
	}
	// Inverse direction reciprocates.
	inv := Arrhenius(0.7, units.CToK(85), units.CToK(55))
	if !units.ApproxEqual(af*inv, 1, 1e-9) {
		t.Error("Arrhenius should reciprocate")
	}
	if !math.IsNaN(Arrhenius(0.7, -1, 300)) {
		t.Error("invalid T should give NaN")
	}
}

func TestPartFIT(t *testing.T) {
	p := Part{Name: "CPU", BaseFIT: 100, EaEV: 0.7, Quality: QualMil, Quantity: 1}
	// At reference temperature, GB env, mil quality: λ = 100·0.5 = 50 FIT.
	fit, err := p.FITAt(313.15, GroundBenign)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(fit, 50, 1e-9) {
		t.Errorf("FIT = %v, want 50", fit)
	}
	// Hotter junction raises it.
	hot, _ := p.FITAt(units.CToK(100), GroundBenign)
	if hot <= fit {
		t.Error("hot junction must raise FIT")
	}
	// Environment severity ordering.
	aic, _ := p.FITAt(313.15, AirborneInhabitedCargo)
	auf, _ := p.FITAt(313.15, AirborneUninhabitedFighter)
	if !(aic > fit && auf > aic) {
		t.Errorf("environment ordering broken: GB=%v AIC=%v AUF=%v", fit, aic, auf)
	}
	// COTS quality penalty (the paper's trade-off).
	cots := p
	cots.Quality = QualCommercial
	cfit, _ := cots.FITAt(313.15, GroundBenign)
	if !units.ApproxEqual(cfit/fit, 6, 1e-9) {
		t.Errorf("COTS penalty = %v, want 6×", cfit/fit)
	}
	// Quantity scaling.
	multi := p
	multi.Quantity = 4
	mfit, _ := multi.FITAt(313.15, GroundBenign)
	if !units.ApproxEqual(mfit, 4*fit, 1e-9) {
		t.Error("quantity scaling broken")
	}
}

func TestPartErrors(t *testing.T) {
	p := Part{Name: "bad", BaseFIT: -1, Quantity: 1}
	if _, err := p.FITAt(300, GroundBenign); err == nil {
		t.Error("negative FIT should error")
	}
	p = Part{Name: "bad", BaseFIT: 10, Quantity: 0}
	if _, err := p.FITAt(300, GroundBenign); err == nil {
		t.Error("zero quantity should error")
	}
	p = Part{Name: "ok", BaseFIT: 10, Quantity: 1}
	if _, err := p.FITAt(-5, GroundBenign); err == nil {
		t.Error("bad temperature should error")
	}
	if _, err := p.FITAt(300, Environment(99)); err == nil {
		t.Error("bad environment should error")
	}
	p.Quality = Quality(99)
	if _, err := p.FITAt(300, GroundBenign); err == nil {
		t.Error("bad quality should error")
	}
}

// avionicsBoard builds a representative computer-module BOM.
func avionicsBoard() *Board {
	return &Board{
		Name: "processing-module",
		Parts: []Part{
			{Name: "CPU", BaseFIT: 120, EaEV: 0.7, Quality: QualMil, Quantity: 1},
			{Name: "DSP", BaseFIT: 90, EaEV: 0.7, Quality: QualMil, Quantity: 2},
			{Name: "SDRAM", BaseFIT: 40, EaEV: 0.6, Quality: QualMil, Quantity: 4},
			{Name: "PowerFET", BaseFIT: 35, EaEV: 0.5, Quality: QualMil, Quantity: 6},
			{Name: "Passives", BaseFIT: 2, EaEV: 0.3, Quality: QualMil, Quantity: 200},
			{Name: "Connector", BaseFIT: 10, EaEV: 0.4, Quality: QualMil, Quantity: 3},
		},
	}
}

func TestBoardPredictMTBFBand(t *testing.T) {
	// The paper: "typical MTBF for aerospace applications is about
	// 40,000 h".  Our representative module at moderate junction
	// temperatures in an airborne-inhabited environment must land in the
	// 20k–100k hour decade.
	b := avionicsBoard()
	tj := map[string]float64{
		"CPU": units.CToK(95), "DSP": units.CToK(85), "SDRAM": units.CToK(75),
		"PowerFET": units.CToK(90),
	}
	pred, err := b.Predict(tj, units.CToK(70), AirborneInhabitedCargo)
	if err != nil {
		t.Fatal(err)
	}
	if pred.MTBFHours < 15000 || pred.MTBFHours > 150000 {
		t.Errorf("MTBF = %v h, want the ~40k decade", pred.MTBFHours)
	}
	// Contributions sorted descending and summing to 1.
	sum := 0.0
	for i, c := range pred.Contributions {
		sum += c.Fraction
		if i > 0 && c.FIT > pred.Contributions[i-1].FIT {
			t.Error("contributions not sorted")
		}
	}
	if !units.ApproxEqual(sum, 1, 1e-9) {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestHotterRunningKillsMTBF(t *testing.T) {
	// The design rule behind keeping Tj ≤ 125 °C: reliability collapses
	// with temperature.
	b := avionicsBoard()
	cool, err := b.Predict(nil, units.CToK(70), AirborneInhabitedCargo)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := b.Predict(nil, units.CToK(125), AirborneInhabitedCargo)
	if err != nil {
		t.Fatal(err)
	}
	if hot.MTBFHours >= cool.MTBFHours/2 {
		t.Errorf("125 °C MTBF %v should be ≪ 70 °C MTBF %v", hot.MTBFHours, cool.MTBFHours)
	}
}

func TestPredictErrors(t *testing.T) {
	empty := &Board{Name: "empty"}
	if _, err := empty.Predict(nil, 300, GroundBenign); err == nil {
		t.Error("empty board should error")
	}
}

func TestCoffinManson(t *testing.T) {
	// Defaults: Nf = 4.5e5·dT⁻²; at 100 K swing, 45 cycles… that's severe
	// shock; at 20 K swing, 1125 cycles.  Check scaling: quadrupling the
	// swing cuts life 16×.
	n1, err := CoffinManson(25, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := CoffinManson(100, 0, 0)
	if !units.ApproxEqual(n1/n2, 16, 1e-9) {
		t.Errorf("CM scaling = %v, want 16", n1/n2)
	}
	if _, err := CoffinManson(-5, 0, 0); err == nil {
		t.Error("negative swing should error")
	}
	if _, err := CoffinManson(10, -1, 2); err == nil {
		t.Error("bad constants should error")
	}
}

func TestNorrisLandzberg(t *testing.T) {
	// The COSEE thermal shock test (−45/+55 °C) versus a mild daily field
	// cycle (20 K): the test must accelerate strongly (AF ≫ 1).
	af, err := NorrisLandzberg(20, 100, 1, 6, units.CToK(40), units.CToK(55), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if af < 10 {
		t.Errorf("AF = %v, want ≫1 for a 100 K test vs 20 K field", af)
	}
	// Identity case.
	one, _ := NorrisLandzberg(50, 50, 2, 2, 330, 330, 0, 0, 0)
	if !units.ApproxEqual(one, 1, 1e-12) {
		t.Errorf("identity AF = %v", one)
	}
	if _, err := NorrisLandzberg(0, 100, 1, 1, 330, 330, 0, 0, 0); err == nil {
		t.Error("zero field swing should error")
	}
}

func TestMissionMTBF(t *testing.T) {
	b := avionicsBoard()
	segs := []MissionSegment{
		{Name: "ground", Fraction: 0.3, TjOffset: -20, Env: GroundFixed},
		{Name: "cruise", Fraction: 0.6, TjOffset: 0, Env: AirborneInhabitedCargo},
		{Name: "hot-day-climb", Fraction: 0.1, TjOffset: 15, Env: AirborneInhabitedCargo},
	}
	mtbf, err := b.MissionMTBF(nil, units.CToK(80), segs)
	if err != nil {
		t.Fatal(err)
	}
	// The weighted value must sit between the best and worst segment MTBFs.
	best, _ := b.Predict(nil, units.CToK(60), GroundFixed)
	worst, _ := b.Predict(nil, units.CToK(95), AirborneInhabitedCargo)
	if mtbf < worst.MTBFHours || mtbf > best.MTBFHours {
		t.Errorf("mission MTBF %v outside [%v, %v]", mtbf, worst.MTBFHours, best.MTBFHours)
	}
	// Fractions must sum to 1.
	bad := segs[:2]
	if _, err := b.MissionMTBF(nil, units.CToK(80), bad); err == nil {
		t.Error("non-unity fractions should error")
	}
	if _, err := b.MissionMTBF(nil, units.CToK(80), nil); err == nil {
		t.Error("empty profile should error")
	}
}

func TestEnvironmentString(t *testing.T) {
	if GroundBenign.String() != "GB" || AirborneUninhabitedFighter.String() != "AUF" {
		t.Error("environment names wrong")
	}
	if Environment(42).String() != "Env(42)" {
		t.Error("unknown environment name wrong")
	}
}

func TestRedundantMTBF(t *testing.T) {
	// 1-of-2 active: MTBF = m·(1 + 1/2) = 1.5m.
	got, err := RedundantMTBF(40000, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(got, 60000, 1e-12) {
		t.Errorf("1-of-2 = %v, want 60000", got)
	}
	// k=n degenerates to the series of last survivor: m/n... actually
	// k-of-n with k=n: MTBF = m/n (first failure kills the group).
	got, _ = RedundantMTBF(40000, 2, 2)
	if !units.ApproxEqual(got, 20000, 1e-12) {
		t.Errorf("2-of-2 = %v, want 20000", got)
	}
	// Adding spares always helps.
	g2, _ := RedundantMTBF(40000, 1, 2)
	g3, _ := RedundantMTBF(40000, 1, 3)
	if g3 <= g2 {
		t.Error("more spares should raise MTBF")
	}
	if _, err := RedundantMTBF(-1, 1, 2); err == nil {
		t.Error("bad MTBF should error")
	}
	if _, err := RedundantMTBF(100, 3, 2); err == nil {
		t.Error("k>n should error")
	}
}

func TestStandbyBeatsActive(t *testing.T) {
	active, _ := RedundantMTBF(40000, 1, 2)
	standby, err := StandbyMTBF(40000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if standby <= active {
		t.Errorf("cold standby %v should beat active %v", standby, active)
	}
	if _, err := StandbyMTBF(0, 2); err == nil {
		t.Error("bad inputs should error")
	}
}

func TestMissionReliability(t *testing.T) {
	// 10 h mission on a 40,000 h MTBF box: R ≈ 0.99975.
	r, err := MissionReliability(40000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(r, math.Exp(-10.0/40000), 1e-12) {
		t.Errorf("R = %v", r)
	}
	if r < 0.999 {
		t.Error("short mission on long MTBF must be near certain")
	}
	// Identity: t=0 → R=1.
	if r, _ := MissionReliability(100, 0); r != 1 {
		t.Error("zero-duration mission should be certain")
	}
	if _, err := MissionReliability(-1, 10); err == nil {
		t.Error("bad MTBF should error")
	}
}
