// Package thermal implements aeropack's heat-transfer solvers:
//
//   - a finite-volume conduction solver on structured Cartesian meshes with
//     orthotropic materials, volumetric and surface heat sources, and
//     convective / radiative / fixed-temperature boundary conditions (the
//     role FloTHERM plays in the paper's level-2/level-3 simulations);
//   - a lumped thermal resistance network solver (the "resistive network
//     model" of the paper's Fig. 4, used at level 1 and level 3 and by the
//     compact component models and two-phase device models).
//
// Temperatures are kelvin, powers watts, conductances W/K.
package thermal

import (
	"fmt"

	"aeropack/internal/linalg"
	"aeropack/internal/materials"
	"aeropack/internal/mesh"
)

// BCKind enumerates boundary-condition types on mesh faces.
type BCKind int

// Supported boundary condition kinds.
const (
	// Adiabatic is a zero-flux boundary (the default).
	Adiabatic BCKind = iota
	// FixedT pins the boundary surface to temperature T.
	FixedT
	// Convection applies Newton cooling q = h·(Ts − T∞) with h in
	// W/(m²·K) and ambient T.
	Convection
	// ConvectionRadiation adds grey-body radiation to a Convection
	// boundary using the surface material's emissivity and the same
	// ambient as the radiative sink.
	ConvectionRadiation
)

// BC is one boundary condition.
type BC struct {
	Kind  BCKind
	T     float64 // ambient or wall temperature, K
	H     float64 // convection coefficient, W/(m²·K)
	Emiss float64 // surface emissivity override; 0 → use cell material
}

// patch applies a BC to a sub-box of one boundary face.
type patch struct {
	face mesh.Face
	box  mesh.Box
	bc   BC
}

// volSource is a uniformly distributed power over a box of cells.
type volSource struct {
	box   mesh.Box
	power float64 // total W spread over the box volume
}

// Model is a finite-volume conduction problem definition.
type Model struct {
	Grid *mesh.Grid
	// Mats maps the grid's material indices to materials.
	Mats []materials.Material
	// FaceBC holds the default BC per outer face (Adiabatic if unset).
	FaceBC [mesh.NumFaces]BC

	patches []patch
	sources []volSource

	// setup, when non-nil (EnableSolverReuse), persists preconditioner
	// factors and exact-solve results across SolveSteady/SolveTransient
	// calls.  By default each solve gets a private setup so repeated
	// benchmark ops and independent studies never observe each other's
	// cache state.
	setup *linalg.SolverSetup
}

// EnableSolverReuse makes the model keep one linalg.SolverSetup across
// solve calls, so a caller issuing many solves on the same geometry
// (placement optimizers, parameter sweeps driving one Model) reuses
// preconditioner factorizations and exact-repeat solve results between
// calls.  Without it every solve call still gets a private setup that is
// reused across its own Picard passes and transient steps.  The shared
// setup is safe for concurrent solves.
func (m *Model) EnableSolverReuse() { m.setup = linalg.NewSolverSetup() }

// NewModel creates a model over grid with the given material table.  Every
// material index used in the grid must be < len(mats).
func NewModel(grid *mesh.Grid, mats []materials.Material) (*Model, error) {
	if grid == nil {
		return nil, fmt.Errorf("thermal: nil grid")
	}
	if len(mats) == 0 {
		return nil, fmt.Errorf("thermal: empty material table")
	}
	for idx, m := range grid.MatIdx {
		if m < 0 || m >= len(mats) {
			return nil, fmt.Errorf("thermal: cell %d references material %d outside table of %d", idx, m, len(mats))
		}
	}
	return &Model{Grid: grid, Mats: mats}, nil
}

// SetFaceBC sets the default boundary condition for an entire outer face.
func (m *Model) SetFaceBC(f mesh.Face, bc BC) {
	m.FaceBC[f] = bc
}

// AddPatchBC applies bc to the sub-area of face f whose cells fall in the
// physical box; it overrides the face default there.  Returns the number
// of boundary cells covered.
func (m *Model) AddPatchBC(f mesh.Face, x0, x1, y0, y1, z0, z1 float64, bc BC) int {
	b := m.Grid.LocateBox(x0, x1, y0, y1, z0, z1)
	// Clamp the box to the boundary layer of cells for the face.
	switch f {
	case mesh.XMin:
		b.I0, b.I1 = 0, 1
	case mesh.XMax:
		b.I0, b.I1 = m.Grid.Nx-1, m.Grid.Nx
	case mesh.YMin:
		b.J0, b.J1 = 0, 1
	case mesh.YMax:
		b.J0, b.J1 = m.Grid.Ny-1, m.Grid.Ny
	case mesh.ZMin:
		b.K0, b.K1 = 0, 1
	case mesh.ZMax:
		b.K0, b.K1 = m.Grid.Nz-1, m.Grid.Nz
	}
	if b.Empty() {
		return 0
	}
	m.patches = append(m.patches, patch{face: f, box: b, bc: bc})
	return b.NumCells()
}

// AddVolumeSource spreads power (W) uniformly over the cells inside the
// physical box; it returns the number of cells covered (0 means the source
// missed the mesh — callers should treat that as a modelling error).
func (m *Model) AddVolumeSource(x0, x1, y0, y1, z0, z1, power float64) int {
	b := m.Grid.LocateBox(x0, x1, y0, y1, z0, z1)
	if b.Empty() {
		return 0
	}
	m.sources = append(m.sources, volSource{box: b, power: power})
	return b.NumCells()
}

// TotalSourcePower returns the sum of all volumetric source powers.
func (m *Model) TotalSourcePower() float64 {
	sum := 0.0
	for _, s := range m.sources {
		sum += s.power
	}
	return sum
}

// bcAt resolves the effective BC for boundary cell (i,j,k) on face f,
// honouring patch overrides (later patches win).
func (m *Model) bcAt(f mesh.Face, i, j, k int) BC {
	bc := m.FaceBC[f]
	for _, p := range m.patches {
		if p.face != f {
			continue
		}
		if i >= p.box.I0 && i < p.box.I1 &&
			j >= p.box.J0 && j < p.box.J1 &&
			k >= p.box.K0 && k < p.box.K1 {
			bc = p.bc
		}
	}
	return bc
}

// matAt returns the material of cell (i,j,k).
func (m *Model) matAt(i, j, k int) *materials.Material {
	return &m.Mats[m.Grid.MatIdx[m.Grid.Index(i, j, k)]]
}

// kDir returns the directional conductivity of a material for axis 0(x),
// 1(y), 2(z).  In-plane is x/y; through-plane is z, matching how PCBs and
// laminates are laid into the mesh.
func kDir(mat *materials.Material, axis int) float64 {
	if axis == 2 {
		return mat.Kz()
	}
	return mat.Kx()
}
