package thermal

import (
	"fmt"
	"math"

	"aeropack/internal/linalg"
)

// TransientResult holds a network time history.
type TransientResult struct {
	Times []float64
	// T[node] is the temperature history for each node, same length as
	// Times.
	T map[string][]float64
}

// At returns the temperature of a node at the sample closest to time t.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (r *TransientResult) At(node string, t float64) (float64, error) {
	hist, ok := r.T[node]
	if !ok {
		return 0, fmt.Errorf("thermal: unknown node %q", node)
	}
	if len(r.Times) == 0 {
		return 0, fmt.Errorf("thermal: empty transient result")
	}
	best, bestD := 0, math.Inf(1)
	for i, tt := range r.Times {
		if d := math.Abs(tt - t); d < bestD {
			best, bestD = i, d
		}
	}
	return hist[best], nil
}

// Final returns each node's temperature at the last time step.
func (r *TransientResult) Final() map[string]float64 {
	out := make(map[string]float64, len(r.T))
	n := len(r.Times)
	for k, v := range r.T {
		out[k] = v[n-1]
	}
	return out
}

// TimeToReach returns the first time a node crosses the given temperature
// (rising or falling), or an error if it never does within the history.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (r *TransientResult) TimeToReach(node string, target float64) (float64, error) {
	hist, ok := r.T[node]
	if !ok {
		return 0, fmt.Errorf("thermal: unknown node %q", node)
	}
	for i := 1; i < len(hist); i++ {
		if (hist[i-1] < target && hist[i] >= target) ||
			(hist[i-1] > target && hist[i] <= target) {
			return r.Times[i], nil
		}
	}
	return 0, fmt.Errorf("thermal: node %q never reaches %.2f K", node, target)
}

// SolveTransient integrates the network from a uniform initial temperature
// T0 with implicit Euler: nodes with zero capacitance are treated as
// quasi-steady (massless).  Variable resistors are re-evaluated each step
// from the previous step's temperatures.  Ambient (fixed) nodes may be
// rescheduled over time via schedule, mapping node name to a temperature
// profile T(t); nil entries keep the fixed value.
func (n *Network) SolveTransient(T0, dt float64, steps int, schedule map[string]func(t float64) float64) (*TransientResult, error) {
	if dt <= 0 || steps <= 0 {
		return nil, fmt.Errorf("thermal: transient needs positive dt and steps")
	}
	num := len(n.labels)
	if num == 0 {
		return nil, fmt.Errorf("thermal: empty network")
	}
	if len(n.fixed) == 0 {
		return nil, fmt.Errorf("thermal: transient network needs a fixed node")
	}

	rs := make([]float64, len(n.resistors))
	for i, e := range n.resistors {
		rs[i] = e.r
	}
	T := make([]float64, num)
	for i := range T {
		T[i] = T0
	}
	for id, t := range n.fixed {
		T[id] = t
	}

	res := &TransientResult{T: make(map[string][]float64, num)}
	record := func(tm float64) {
		res.Times = append(res.Times, tm)
		for i, name := range n.labels {
			res.T[name] = append(res.T[name], T[i])
		}
	}
	record(0)

	isFixed := func(id int) bool { _, ok := n.fixed[id]; return ok }
	// The operator pattern never changes across steps (only values do, and
	// only when variable resistors or scheduled ambients move), so the
	// preconditioner is hoisted out of the step loop and refreshed in
	// place instead of being rebuilt every step.  This loop owns prec
	// exclusively, which is what Refresh requires.
	var prec *linalg.JacobiPrec
	for step := 1; step <= steps; step++ {
		tm := float64(step) * dt
		// Update scheduled ambient temperatures.
		fixedNow := make(map[int]float64, len(n.fixed))
		for id, tv := range n.fixed {
			fixedNow[id] = tv
			if schedule != nil {
				if fn, ok := schedule[n.labels[id]]; ok && fn != nil {
					fixedNow[id] = fn(tm)
				}
			}
		}
		// Refresh variable resistances from the previous state.
		for i, e := range n.resistors {
			if e.fn == nil {
				continue
			}
			q := (T[e.a] - T[e.b]) / rs[i]
			rNew := e.fn(T[e.a], T[e.b], q)
			if rNew <= 0 || math.IsNaN(rNew) || math.IsInf(rNew, 0) {
				return nil, fmt.Errorf("thermal: variable resistor %d invalid at t=%.1f s", i, tm)
			}
			rs[i] = rNew
		}
		// Assemble (C/dt + G)·T^{n+1} = C/dt·T^n + b.
		coo := linalg.NewCOO(num, num)
		b := make([]float64, num)
		for i, e := range n.resistors {
			g := 1 / rs[i]
			for _, end := range []struct{ self, other int }{{e.a, e.b}, {e.b, e.a}} {
				if isFixed(end.self) {
					continue
				}
				coo.Add(end.self, end.self, g)
				if isFixed(end.other) {
					b[end.self] += g * fixedNow[end.other]
				} else {
					coo.Add(end.self, end.other, -g)
				}
			}
		}
		for id, p := range n.sources {
			if !isFixed(id) {
				b[id] += p
			}
		}
		for id := 0; id < num; id++ {
			if isFixed(id) {
				coo.Add(id, id, 1)
				b[id] = fixedNow[id]
				continue
			}
			if c := n.caps[id]; c > 0 {
				coo.Add(id, id, c/dt)
				b[id] += c / dt * T[id]
			}
		}
		a := coo.ToCSR()
		if prec == nil || prec.Refresh(a) != nil {
			prec = linalg.NewJacobiPrec(a)
		}
		x, _, err := linalg.CGOpt(a, b, T, &linalg.IterOptions{
			Tol: 1e-11, MaxIter: 40*num + 400,
			Prec: prec,
			Stop: defaultSolveStop(),
		})
		if err != nil {
			// Transient operators with scheduled ambients can lose
			// symmetry in corner cases; fall back to a dense solve.
			if num <= 600 {
				xd, derr := linalg.SolveDense(a.ToDense(), b)
				if derr != nil {
					return nil, err
				}
				x = xd
			} else {
				return nil, err
			}
		}
		copy(T, x)
		record(tm)
	}
	return res, nil
}

// TimeConstant returns the dominant RC time constant of a node: its
// capacitance times the parallel resistance of its attachments (frozen at
// the seed values) — a quick estimate for choosing transient step sizes.
func (n *Network) TimeConstant(name string) (float64, error) {
	id, ok := n.names[name]
	if !ok {
		return 0, fmt.Errorf("thermal: unknown node %q", name)
	}
	c := n.caps[id]
	if c <= 0 {
		return 0, fmt.Errorf("thermal: node %q has no capacitance", name)
	}
	g := 0.0
	for _, e := range n.resistors {
		if e.a == id || e.b == id {
			g += 1 / e.r
		}
	}
	if g == 0 {
		return 0, fmt.Errorf("thermal: node %q has no resistive attachments", name)
	}
	return c / g, nil
}
