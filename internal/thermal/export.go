package thermal

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"aeropack/internal/units"
)

// WriteCSV dumps the solved field as "x,y,z,T_C" rows (cell centroids,
// metres, degrees Celsius) for plotting with any external tool — the
// hand-off surface to the visualisation step of the design flow.
func (r *Result) WriteCSV(w io.Writer) error {
	if r.T == nil || r.g == nil {
		return fmt.Errorf("thermal: empty result")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "x_m,y_m,z_m,T_C"); err != nil {
		return err
	}
	for k := 0; k < r.g.Nz; k++ {
		for j := 0; j < r.g.Ny; j++ {
			for i := 0; i < r.g.Nx; i++ {
				x, y, z := r.g.CellCenter(i, j, k)
				t := units.KToC(r.T[r.g.Index(i, j, k)])
				if _, err := fmt.Fprintf(bw, "%.6g,%.6g,%.6g,%.4f\n", x, y, z, t); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// SliceZ extracts layer k as a [Ny][Nx] matrix of temperatures (K) for
// quick contour inspection.
func (r *Result) SliceZ(k int) ([][]float64, error) {
	if r.g == nil || k < 0 || k >= r.g.Nz {
		return nil, fmt.Errorf("thermal: layer %d out of range", k)
	}
	out := make([][]float64, r.g.Ny)
	for j := 0; j < r.g.Ny; j++ {
		out[j] = make([]float64, r.g.Nx)
		for i := 0; i < r.g.Nx; i++ {
			out[j][i] = r.T[r.g.Index(i, j, k)]
		}
	}
	return out, nil
}

// HotSpot returns the location (cell centroid) and temperature of the
// hottest cell — the quantity a thermal engineer marks first on a plot.
func (r *Result) HotSpot() (x, y, z, T float64) {
	best := math.Inf(-1)
	for k := 0; k < r.g.Nz; k++ {
		for j := 0; j < r.g.Ny; j++ {
			for i := 0; i < r.g.Nx; i++ {
				if t := r.T[r.g.Index(i, j, k)]; t > best {
					best = t
					x, y, z = r.g.CellCenter(i, j, k)
				}
			}
		}
	}
	return x, y, z, best
}
