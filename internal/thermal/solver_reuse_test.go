package thermal

import (
	"math"
	"testing"

	"aeropack/internal/linalg"
	"aeropack/internal/units"
)

// finNetwork is a small conduction chain with one flow-dependent
// resistor, so steady solves take several Picard passes.
func finNetwork(power float64) *Network {
	n := NewNetwork()
	n.SetCapacitance("chip", 20)
	n.SetCapacitance("plate", 120)
	n.AddResistor("chip", "plate", 0.8)
	if err := n.AddVariableResistor("plate", "amb", 1.5, func(Ta, Tb, Q float64) float64 {
		// Convective film whose resistance drops gently with drive.
		return 1.5 / (1 + 0.02*math.Abs(Ta-Tb))
	}); err != nil {
		panic(err)
	}
	n.AddSource("chip", power)
	n.FixT("amb", 300)
	return n
}

// The transient stepper reuses one hoisted Jacobi preconditioner across
// steps (the system pattern never changes mid-run) instead of rebuilding
// it every step.  Pin the marginal allocation count per step so the
// rebuild cannot quietly come back: before the hoist the stepper sat
// ~3 allocations/step higher.
func TestTransientPerStepAllocationsPinned(t *testing.T) {
	n := rcNetwork(200, 2, 10, 300)
	n.SetCapacitance("fin", 40)
	n.AddResistor("mass", "fin", 0.7)
	n.AddResistor("fin", "amb", 1.1)
	run := func(steps int) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := n.SolveTransient(300, 1, steps, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	perStep := (run(250) - run(50)) / 200
	t.Logf("marginal allocations per transient step: %.2f", perStep)
	if perStep > 40 {
		t.Errorf("transient stepper allocates %.2f per step, budget 40 — is the preconditioner being rebuilt every step again?", perStep)
	}
}

// Warm-started steady solves must (a) reproduce the cold-start solution
// and (b) converge in fewer Picard passes when continuing from a nearby
// operating point — the property the capability bisection leans on.
func TestSolveSteadyWarmMatchesColdWithFewerPasses(t *testing.T) {
	cold10, err := finNetwork(10).SolveSteadyTol(1e-4, 60)
	if err != nil {
		t.Fatal(err)
	}
	warm := &NetworkState{}
	if _, err := finNetwork(9.5).SolveSteadyWarm(1e-4, 60, warm); err != nil {
		t.Fatal(err)
	}
	warm10, err := finNetwork(10).SolveSteadyWarm(1e-4, 60, warm)
	if err != nil {
		t.Fatal(err)
	}
	for name, Tc := range cold10.T {
		if !units.ApproxEqual(warm10.T[name], Tc, 1e-3) {
			t.Errorf("node %s: warm %v vs cold %v", name, warm10.T[name], Tc)
		}
	}
	if warm10.Iterations >= cold10.Iterations {
		t.Errorf("warm start took %d passes, cold start %d — state not being reused", warm10.Iterations, cold10.Iterations)
	}
	// An incompatible state (different topology) must be ignored, not
	// corrupt the solve.
	stale := &NetworkState{T: []float64{1, 2}, Rs: []float64{3}}
	res, err := finNetwork(10).SolveSteadyWarm(1e-4, 60, stale)
	if err != nil {
		t.Fatal(err)
	}
	for name, Tc := range cold10.T {
		if !units.ApproxEqual(res.T[name], Tc, 1e-3) {
			t.Errorf("node %s after stale warm state: %v vs %v", name, res.T[name], Tc)
		}
	}
}

// A shared SolverSetup across repeated solves of the same network must
// not change the answer — caching is an optimisation, never a semantic.
func TestNetworkSharedSetupSameResult(t *testing.T) {
	ref, err := finNetwork(12).SolveSteadyTol(1e-4, 60)
	if err != nil {
		t.Fatal(err)
	}
	shared := finNetwork(12)
	shared.Setup = linalg.NewSolverSetup()
	for trial := 0; trial < 3; trial++ {
		got, err := shared.SolveSteadyTol(1e-4, 60)
		if err != nil {
			t.Fatal(err)
		}
		for name, Tr := range ref.T {
			if got.T[name] != Tr {
				t.Errorf("trial %d node %s: %v, fresh-setup reference %v", trial, name, got.T[name], Tr)
			}
		}
	}
}
