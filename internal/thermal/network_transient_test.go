package thermal

import (
	"math"
	"testing"

	"aeropack/internal/units"
)

// rcNetwork builds the canonical single-RC warm-up problem.
func rcNetwork(c, r, power, Tamb float64) *Network {
	n := NewNetwork()
	n.SetCapacitance("mass", c)
	n.AddResistor("mass", "amb", r)
	n.AddSource("mass", power)
	n.FixT("amb", Tamb)
	return n
}

func TestTransientRCAnalytic(t *testing.T) {
	// T(t) = Tamb + P·R·(1 − e^{−t/RC}); check at t = τ and t = 5τ.
	const (
		c, r, p, Tamb = 200.0, 2.0, 10.0, 300.0
	)
	tau := c * r
	n := rcNetwork(c, r, p, Tamb)
	dt := tau / 200
	res, err := n.SolveTransient(Tamb, dt, 1200, nil)
	if err != nil {
		t.Fatal(err)
	}
	atTau, err := res.At("mass", tau)
	if err != nil {
		t.Fatal(err)
	}
	want := Tamb + p*r*(1-math.Exp(-1))
	if !units.ApproxEqual(atTau, want, 0.01) {
		t.Errorf("T(τ) = %v, want %v", atTau, want)
	}
	final := res.Final()["mass"]
	if !units.ApproxEqual(final, Tamb+p*r, 0.01) {
		t.Errorf("steady limit = %v, want %v", final, Tamb+p*r)
	}
}

func TestTransientMatchesSteady(t *testing.T) {
	// A two-node chain with capacitances must converge to SolveSteady.
	n := NewNetwork()
	n.SetCapacitance("a", 50)
	n.SetCapacitance("b", 80)
	n.AddResistor("a", "b", 1.5)
	n.AddResistor("b", "amb", 2.5)
	n.AddSource("a", 6)
	n.FixT("amb", 295)
	steady, err := n.SolveSteady()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := n.SolveTransient(295, 5, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	fin := tr.Final()
	if !units.ApproxEqual(fin["a"], steady.T["a"], 1e-3) {
		t.Errorf("node a: transient %v vs steady %v", fin["a"], steady.T["a"])
	}
	if !units.ApproxEqual(fin["b"], steady.T["b"], 1e-3) {
		t.Errorf("node b: transient %v vs steady %v", fin["b"], steady.T["b"])
	}
}

func TestTransientMasslessNodesQuasiSteady(t *testing.T) {
	// A massless mid node must track its divider position at every step.
	n := NewNetwork()
	n.SetCapacitance("box", 100)
	n.AddResistor("box", "mid", 1)
	n.AddResistor("mid", "amb", 1)
	n.AddSource("box", 4)
	n.FixT("amb", 300)
	res, err := n.SolveTransient(300, 2, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range res.Times {
		box := res.T["box"][i]
		mid := res.T["mid"][i]
		want := 300 + (box-300)/2 + 0*tm
		if math.Abs(mid-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("massless node off divider at t=%v: %v vs %v", tm, mid, want)
		}
	}
}

func TestTransientMonotoneWarmup(t *testing.T) {
	n := rcNetwork(100, 1, 5, 300)
	res, err := n.SolveTransient(300, 1, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	hist := res.T["mass"]
	for i := 1; i < len(hist); i++ {
		if hist[i] < hist[i-1]-1e-12 {
			t.Fatal("warm-up must be monotone")
		}
	}
}

func TestTransientScheduledAmbient(t *testing.T) {
	// Thermal-shock style: ambient ramps −45 → +55 °C at 5 °C/min; the
	// mass lags behind the ramp.
	n := NewNetwork()
	n.SetCapacitance("unit", 500)
	n.AddResistor("unit", "chamber", 0.8)
	n.FixT("chamber", units.CToK(-45))
	rate := 5.0 / 60 // K/s
	sched := map[string]func(float64) float64{
		"chamber": func(tm float64) float64 {
			T := units.CToK(-45) + rate*tm
			return math.Min(T, units.CToK(55))
		},
	}
	res, err := n.SolveTransient(units.CToK(-45), 5, 600, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without schedule: nothing happens.
	if math.Abs(res.Final()["unit"]-units.CToK(-45)) > 1e-6 {
		t.Error("unscheduled chamber should stay cold")
	}
	res, err = n.SolveTransient(units.CToK(-45), 5, 600, sched)
	if err != nil {
		t.Fatal(err)
	}
	// At the end (3000 s) the chamber has finished its 1200 s ramp and the
	// unit must be near +55 °C but always lagging the chamber on the way.
	for i, tm := range res.Times {
		unit := res.T["unit"][i]
		chamber := sched["chamber"](tm)
		if unit > chamber+1e-9 {
			t.Fatalf("unit leads the chamber at t=%v", tm)
		}
	}
	if got := res.Final()["unit"]; !units.ApproxEqual(got, units.CToK(55), 0.01) {
		t.Errorf("final unit T = %v, want ≈328", got)
	}
	// Crossing time of 0 °C is strictly after the chamber's own crossing
	// (900 s into the ramp).
	tc, err := res.TimeToReach("unit", units.CToK(0))
	if err != nil {
		t.Fatal(err)
	}
	if tc <= 540 {
		t.Errorf("unit crossed 0 °C at %v s, should lag the chamber's 540 s", tc)
	}
}

func TestTransientVariableResistor(t *testing.T) {
	// A natural-convection film during warm-up: must still converge to the
	// nonlinear steady state.
	n := NewNetwork()
	n.SetCapacitance("plate", 150)
	const C = 5.0
	n.AddVariableResistor("plate", "air", 2, func(Ta, Tb, Q float64) float64 {
		dT := math.Max(0.1, Ta-Tb)
		return C / math.Pow(dT, 0.25)
	})
	n.AddSource("plate", 20)
	n.FixT("air", 300)
	res, err := n.SolveTransient(300, 2, 3000, nil)
	if err != nil {
		t.Fatal(err)
	}
	dT := res.Final()["plate"] - 300
	want := math.Pow(20*C, 1/1.25)
	if !units.ApproxEqual(dT, want, 0.02) {
		t.Errorf("nonlinear steady limit %v, want %v", dT, want)
	}
}

func TestTransientErrors(t *testing.T) {
	n := rcNetwork(10, 1, 1, 300)
	if _, err := n.SolveTransient(300, -1, 10, nil); err == nil {
		t.Error("negative dt should error")
	}
	if _, err := n.SolveTransient(300, 1, 0, nil); err == nil {
		t.Error("zero steps should error")
	}
	empty := NewNetwork()
	if _, err := empty.SolveTransient(300, 1, 10, nil); err == nil {
		t.Error("empty network should error")
	}
	noFix := NewNetwork()
	noFix.AddResistor("a", "b", 1)
	if _, err := noFix.SolveTransient(300, 1, 10, nil); err == nil {
		t.Error("network without fixed node should error")
	}
	bad := NewNetwork()
	bad.SetCapacitance("x", 10)
	bad.AddVariableResistor("x", "amb", 1, func(a, b, q float64) float64 { return -1 })
	bad.FixT("amb", 300)
	if _, err := bad.SolveTransient(310, 1, 5, nil); err == nil {
		t.Error("invalid variable resistance should error")
	}
}

func TestTransientResultQueries(t *testing.T) {
	n := rcNetwork(10, 1, 1, 300)
	res, err := n.SolveTransient(300, 1, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.At("nope", 5); err == nil {
		t.Error("unknown node should error")
	}
	if _, err := res.TimeToReach("nope", 301); err == nil {
		t.Error("unknown node should error")
	}
	if _, err := res.TimeToReach("mass", 9999); err == nil {
		t.Error("unreachable target should error")
	}
	empty := &TransientResult{T: map[string][]float64{"x": nil}}
	if _, err := empty.At("x", 0); err == nil {
		t.Error("empty result should error")
	}
}

func TestTimeConstant(t *testing.T) {
	n := rcNetwork(200, 2, 10, 300)
	tau, err := n.TimeConstant("mass")
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(tau, 400, 1e-9) {
		t.Errorf("τ = %v, want 400", tau)
	}
	if _, err := n.TimeConstant("amb"); err == nil {
		t.Error("capacitance-less node should error")
	}
	if _, err := n.TimeConstant("nope"); err == nil {
		t.Error("unknown node should error")
	}
	lone := NewNetwork()
	lone.SetCapacitance("x", 5)
	if _, err := lone.TimeConstant("x"); err == nil {
		t.Error("unattached node should error")
	}
}
