package thermal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"aeropack/internal/linalg"
	"aeropack/internal/obs"
	"aeropack/internal/robust"
)

// Network is a lumped thermal resistance network — the "resistive network
// model" the paper uses at level 1 (equipment) and level 3 (component
// packaging models).  Nodes are named; edges are thermal resistances in
// K/W; nodes may carry power sources (W) or be pinned to a temperature.
//
// Nonlinear elements (temperature- or power-dependent conductances, e.g. a
// loop heat pipe or a natural-convection film) are supported through
// VariableResistor callbacks, resolved by Picard iteration.
type Network struct {
	names  map[string]int
	labels []string
	caps   []float64 // lumped capacitance per node, J/K (0 for massless)

	resistors []resistor
	sources   map[int]float64
	fixed     map[int]float64

	// Obs, when non-nil, is the parent span under which the network
	// solver records its telemetry.  When nil, the solver span attaches
	// to the process-global tracer.
	Obs *obs.Span

	// Setup, when non-nil, caches preconditioner factors and exact-repeat
	// solve results across solve calls.  Sweep drivers (internal/cosee)
	// install one shared setup on every network they build for the same
	// configuration, so near-identical bisection and sweep points reuse
	// the IC(0) symbolic pattern and factors instead of re-deriving them.
	// Safe for concurrent solves; nil means each solve call builds a
	// private one.
	Setup *linalg.SolverSetup

	// Stop, when non-nil, is the per-request budget seam: it is forwarded
	// to every linear solve's linalg.IterOptions.Stop (through the robust
	// chain) and polled between Picard passes.  Returning true aborts the
	// solve with an error wrapping linalg.ErrStopped.  Budgeted solves
	// skip the exact-result cache — a cache hit would never poll the
	// callback, hiding fault-injection stops (the same reasoning as
	// thermal.SolveOptions).  Must be safe for concurrent calls when the
	// network is solved from a parallel sweep.
	Stop func() bool
}

type resistor struct {
	a, b int
	r    float64
	// fn, if non-nil, recomputes the resistance from the current endpoint
	// temperatures and the heat flow through the element on the previous
	// iteration.
	fn func(Ta, Tb, Q float64) float64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		names:   make(map[string]int),
		sources: make(map[int]float64),
		fixed:   make(map[int]float64),
	}
}

// AddNode creates (or returns) the node with the given name.
func (n *Network) AddNode(name string) int {
	if id, ok := n.names[name]; ok {
		return id
	}
	id := len(n.labels)
	n.names[name] = id
	n.labels = append(n.labels, name)
	n.caps = append(n.caps, 0)
	return id
}

// SetCapacitance assigns a lumped thermal capacitance (J/K) to a node for
// transient solves.
func (n *Network) SetCapacitance(name string, c float64) {
	id := n.AddNode(name)
	n.caps[id] = c
}

// Nodes returns the node names in creation order.
func (n *Network) Nodes() []string {
	return append([]string(nil), n.labels...)
}

// AddResistor connects nodes a and b with resistance r (K/W).
func (n *Network) AddResistor(a, b string, r float64) error {
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return fmt.Errorf("thermal: resistance %g between %q and %q must be positive and finite", r, a, b)
	}
	ia, ib := n.AddNode(a), n.AddNode(b)
	if ia == ib {
		return fmt.Errorf("thermal: self-loop resistor on %q", a)
	}
	n.resistors = append(n.resistors, resistor{a: ia, b: ib, r: r})
	return nil
}

// AddVariableResistor connects a and b with a resistance recomputed each
// Picard pass from endpoint temperatures and previous-iteration heat flow.
// fn must return a positive finite resistance; r0 seeds the iteration.
func (n *Network) AddVariableResistor(a, b string, r0 float64, fn func(Ta, Tb, Q float64) float64) error {
	if r0 <= 0 || fn == nil {
		return fmt.Errorf("thermal: variable resistor needs positive seed and non-nil fn")
	}
	ia, ib := n.AddNode(a), n.AddNode(b)
	if ia == ib {
		return fmt.Errorf("thermal: self-loop resistor on %q", a)
	}
	n.resistors = append(n.resistors, resistor{a: ia, b: ib, r: r0, fn: fn})
	return nil
}

// AddSource injects power (W, positive heating) at a node; repeated calls
// accumulate.
func (n *Network) AddSource(name string, power float64) {
	id := n.AddNode(name)
	n.sources[id] += power
}

// FixT pins a node to temperature T (K).
func (n *Network) FixT(name string, T float64) {
	id := n.AddNode(name)
	n.fixed[id] = T
}

// SteadyResult maps node names to solved temperatures plus element flows.
type SteadyResult struct {
	T map[string]float64
	// Flow[i] is the heat flow (W) through resistor i, positive a→b, in
	// the order resistors were added.
	Flow []float64
	// Iterations is the number of Picard passes used.
	Iterations int
}

// SolveSteady solves the network.  Purely linear networks converge in one
// pass; networks with variable resistors iterate until the max node
// temperature change falls below tolK (default 1e-3 K) or maxIter passes.
func (n *Network) SolveSteady() (*SteadyResult, error) {
	return n.SolveSteadyTol(1e-3, 60)
}

// NetworkState carries the converged Picard state (node temperatures and
// frozen resistances) of one steady solve, for warm-starting the next.
// It is only meaningful between networks of identical topology — same
// nodes in the same order, same resistor list — such as the ones a
// capability bisection rebuilds at successive power levels.
type NetworkState struct {
	T  []float64
	Rs []float64
}

// SolveSteadyTol is SolveSteady with explicit Picard controls.
func (n *Network) SolveSteadyTol(tolK float64, maxIter int) (*SteadyResult, error) {
	return n.solveSteady(tolK, maxIter, nil)
}

// SolveSteadyWarm is SolveSteadyTol continuing from (and updating) a
// prior solve's Picard state: near-identical systems then converge in a
// couple of passes instead of restarting from the cold seeds.  Callers
// must use one NetworkState sequentially — sharing it across concurrent
// solves would make results depend on scheduling order (the parallel
// sweep paths deliberately pass nil for exactly that reason).
func (n *Network) SolveSteadyWarm(tolK float64, maxIter int, warm *NetworkState) (*SteadyResult, error) {
	return n.solveSteady(tolK, maxIter, warm)
}

func (n *Network) solveSteady(tolK float64, maxIter int, warm *NetworkState) (*SteadyResult, error) {
	num := len(n.labels)
	if num == 0 {
		return nil, fmt.Errorf("thermal: empty network")
	}
	if len(n.fixed) == 0 {
		return nil, fmt.Errorf("thermal: network has no fixed-temperature node; steady problem is singular")
	}
	if tolK <= 0 {
		tolK = 1e-3
	}
	if maxIter <= 0 {
		maxIter = 60
	}

	sp := obs.Start(n.Obs, "thermal.Network.SolveSteady")
	sp.AttrInt("nodes", num)
	sp.AttrInt("resistors", len(n.resistors))
	defer sp.End()

	rs := make([]float64, len(n.resistors))
	for i, e := range n.resistors {
		rs[i] = e.r
	}
	T := make([]float64, num)
	// Seed all nodes at the mean fixed temperature.
	mean := 0.0
	for _, t := range n.fixed {
		mean += t
	}
	mean /= float64(len(n.fixed))
	for i := range T {
		T[i] = mean
	}
	for id, t := range n.fixed {
		T[id] = t
	}

	hasVariable := false
	for _, e := range n.resistors {
		if e.fn != nil {
			hasVariable = true
			break
		}
	}

	// Continue from a compatible prior state: temperatures and frozen
	// resistances seed within a few Picard passes of the new fixed point
	// when only sources or fixed temperatures moved.  Fixed nodes are
	// re-pinned — this network's boundary values win over the old ones.
	if warm != nil && len(warm.T) == num && len(warm.Rs) == len(rs) {
		copy(T, warm.T)
		for id, t := range n.fixed {
			T[id] = t
		}
		copy(rs, warm.Rs)
	}
	saveWarm := func() {
		if warm != nil {
			warm.T = append(warm.T[:0], T...)
			warm.Rs = append(warm.Rs[:0], rs...)
		}
	}

	setup := n.Setup
	if setup == nil {
		setup = linalg.NewSolverSetup()
	}
	// Variable resistances are under-relaxed for stability, but a fixed
	// 0.5 factor makes the whole Picard iteration converge at rate ~0.5
	// per pass (~16 passes to drive a 60 K ΔT under 1e-3 K).  theta
	// adapts instead: while successive passes shrink the temperature
	// update monotonically the relaxation opens up toward 1 (plain
	// Picard), and any growth — the h(T) oscillation the damping exists
	// for — halves it again.  The schedule depends only on the iteration
	// history, so solves stay deterministic.
	theta := 0.5
	prevDelta := math.Inf(1)
	var result *SteadyResult
	for pass := 0; pass < maxIter; pass++ {
		// The budget callback is polled between passes as well as inside
		// the linear solver: a tiny network's CG may finish (or fall back
		// to the dense solve) before the budget trips, and without this
		// check the Picard loop would burn the rest of its passes on a
		// request that already exceeded its allowance.
		if n.Stop != nil && pass > 0 && n.Stop() {
			return nil, fmt.Errorf("thermal: network %w after %d Picard passes", linalg.ErrStopped, pass)
		}
		// T warm-starts the linear solve: on the first pass it is the
		// seeded field, afterwards the previous Picard iterate, which is
		// within tolK of the solution near convergence.
		Tnew, err := n.solveLinear(sp, rs, T, setup)
		if err != nil {
			return nil, err
		}
		maxDelta := 0.0
		for i := range Tnew {
			if d := math.Abs(Tnew[i] - T[i]); d > maxDelta {
				maxDelta = d
			}
		}
		copy(T, Tnew)
		flows := make([]float64, len(n.resistors))
		for i, e := range n.resistors {
			flows[i] = (T[e.a] - T[e.b]) / rs[i]
		}
		result = &SteadyResult{T: n.labelled(T), Flow: flows, Iterations: pass + 1}
		if !hasVariable {
			saveWarm()
			return result, nil
		}
		// Update variable resistances.
		changed := false
		for i, e := range n.resistors {
			if e.fn == nil {
				continue
			}
			rNew := e.fn(T[e.a], T[e.b], flows[i])
			if rNew <= 0 || math.IsNaN(rNew) || math.IsInf(rNew, 0) {
				return nil, fmt.Errorf("thermal: variable resistor %d returned invalid resistance %g", i, rNew)
			}
			// Under-relax for stability (adaptive theta, see above).
			rNew = (1-theta)*rs[i] + theta*rNew
			if math.Abs(rNew-rs[i]) > 1e-9*rs[i] {
				changed = true
			}
			rs[i] = rNew
		}
		if maxDelta < prevDelta {
			theta = math.Min(1, 1.5*theta)
		} else {
			theta = math.Max(0.25, 0.5*theta)
		}
		prevDelta = maxDelta
		if maxDelta < tolK && !changed {
			saveWarm()
			return result, nil
		}
		if maxDelta < tolK && pass > 2 {
			saveWarm()
			return result, nil
		}
	}
	return result, fmt.Errorf("thermal: network Picard iteration did not converge in %d passes", maxIter)
}

// solveLinear solves the network with frozen resistances.  sp parents
// the fallback spans when the primary solve fails; x0 (may be nil) warm
// starts the iteration and setup carries the preconditioner/result
// caches shared across passes and sweep points.
func (n *Network) solveLinear(sp *obs.Span, rs []float64, x0 []float64, setup *linalg.SolverSetup) ([]float64, error) {
	num := len(n.labels)
	coo := linalg.NewCOO(num, num)
	b := make([]float64, num)
	isFixed := func(id int) bool { _, ok := n.fixed[id]; return ok }

	for i, e := range n.resistors {
		g := 1 / rs[i]
		for _, end := range []struct{ self, other int }{{e.a, e.b}, {e.b, e.a}} {
			if isFixed(end.self) {
				continue
			}
			coo.Add(end.self, end.self, g)
			if isFixed(end.other) {
				b[end.self] += g * n.fixed[end.other]
			} else {
				coo.Add(end.self, end.other, -g)
			}
		}
	}
	for id, p := range n.sources {
		if !isFixed(id) {
			b[id] += p
		}
	}
	for id, t := range n.fixed {
		coo.Add(id, id, 1)
		b[id] = t
	}
	// Detect floating nodes (no resistor, not fixed): pin them to NaN-safe
	// isolated equations so the solve doesn't go singular.
	deg := make([]int, num)
	for _, e := range n.resistors {
		deg[e.a]++
		deg[e.b]++
	}
	for id := 0; id < num; id++ {
		if deg[id] == 0 && !isFixed(id) {
			return nil, fmt.Errorf("thermal: node %q is floating (no resistor, not fixed)", n.labels[id])
		}
	}

	a := coo.ToCSR()
	tol := 1e-12
	// Budgeted solves bypass the exact-result cache: a hit would return
	// without ever polling Stop, so a fault-injection or budget callback
	// could never observe the solve (mirrors thermal.SolveOptions).
	useCache := setup != nil && n.Stop == nil
	var key linalg.SolveKey
	if useCache {
		key = setup.Key("network:cg-ic0", a, b, x0, tol)
		if x, _, ok := setup.Cached(key); ok {
			return x, nil
		}
	}
	// Network matrices are symmetric positive definite after Dirichlet
	// elimination; IC(0) is near-exact on their mostly tree-like graphs,
	// so the warm-started CG converges in a handful of iterations.  On
	// IC(0) breakdown the rung degrades to Jacobi; on solve failure the
	// robust chain walks the fallback ladder before the last-resort dense
	// solve for tiny ill-conditioned nets.
	chain := robust.ChainFor("cg-ic0", 0, tol, 20*num+200)
	chain.Span = sp
	chain.Setup = setup
	chain.Stop = n.Stop
	x, out, err := chain.Solve(a, b, x0)
	if err != nil {
		// A tripped budget must surface as ErrStopped, not be papered
		// over by the dense last resort.
		if errors.Is(err, linalg.ErrStopped) {
			return nil, err
		}
		if num <= 600 {
			xd, derr := linalg.SolveDense(a.ToDense(), b)
			if derr == nil {
				return xd, nil
			}
		}
		return nil, err
	}
	if useCache && out.AttemptUsed == 0 && !out.Relaxed {
		setup.Store(key, x, out.Stats)
	}
	return x, nil
}

func (n *Network) labelled(T []float64) map[string]float64 {
	out := make(map[string]float64, len(T))
	for i, name := range n.labels {
		out[name] = T[i]
	}
	return out
}

// NodePower returns the net power (W) injected at the named node by
// sources (not flows); 0 for unknown nodes.
func (n *Network) NodePower(name string) float64 {
	id, ok := n.names[name]
	if !ok {
		return 0
	}
	return n.sources[id]
}

// FlowBetween returns the total heat flow a→b (W) summed over all parallel
// resistors between the two named nodes, given a solved result.
func (n *Network) FlowBetween(res *SteadyResult, a, b string) float64 {
	ia, ok1 := n.names[a]
	ib, ok2 := n.names[b]
	if !ok1 || !ok2 {
		return 0
	}
	sum := 0.0
	for i, e := range n.resistors {
		if e.a == ia && e.b == ib {
			sum += res.Flow[i]
		} else if e.a == ib && e.b == ia {
			sum -= res.Flow[i]
		}
	}
	return sum
}

// SeriesResistance is a helper composing a one-dimensional stack of
// conductive layers plus optional interface resistances: layers are
// (thickness m, conductivity W/mK) pairs over area m², interfaces are
// specific resistances in K·m²/W.  Returns total K/W.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func SeriesResistance(area float64, layers [][2]float64, interfaces []float64) (float64, error) {
	if area <= 0 {
		return 0, fmt.Errorf("thermal: non-positive area")
	}
	r := 0.0
	for i, l := range layers {
		thk, k := l[0], l[1]
		if thk < 0 || k <= 0 {
			return 0, fmt.Errorf("thermal: layer %d invalid (thk=%g, k=%g)", i, thk, k)
		}
		r += thk / (k * area)
	}
	for i, ri := range interfaces {
		if ri < 0 {
			return 0, fmt.Errorf("thermal: interface %d negative", i)
		}
		r += ri / area
	}
	return r, nil
}

// SortedNodeNames returns node names sorted alphabetically — handy for
// deterministic report output.
func (n *Network) SortedNodeNames() []string {
	out := n.Nodes()
	sort.Strings(out)
	return out
}
