package thermal

import (
	"testing"

	"aeropack/internal/materials"
	"aeropack/internal/mesh"
)

// parallelTestModel builds a multi-slab heated plate with mixed BCs,
// including radiation so the Picard outer loop runs more than once.
func parallelTestModel(t *testing.T) *Model {
	t.Helper()
	g, err := mesh.Uniform(12, 10, 6, 0.12, 0.1, 0.012)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(g, []materials.Material{materials.Al6061})
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaceBC(mesh.ZMin, BC{Kind: Convection, T: 300, H: 25})
	m.SetFaceBC(mesh.ZMax, BC{Kind: ConvectionRadiation, T: 290, H: 8, Emiss: 0.8})
	m.SetFaceBC(mesh.XMin, BC{Kind: FixedT, T: 310})
	if m.AddVolumeSource(0.03, 0.08, 0.02, 0.07, 0, 0.012, 18) == 0 {
		t.Fatal("source missed mesh")
	}
	return m
}

func TestSolveSteadyParallelMatchesSerial(t *testing.T) {
	m := parallelTestModel(t)
	serial, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 4} {
		par, err := m.SolveSteady(&SolveOptions{Parallel: true, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par.OuterIterations != serial.OuterIterations {
			t.Errorf("workers=%d: outer iterations %d vs serial %d",
				w, par.OuterIterations, serial.OuterIterations)
		}
		for i := range serial.T {
			if par.T[i] != serial.T[i] {
				t.Fatalf("workers=%d: cell %d: %v vs serial %v (must be bitwise identical)",
					w, i, par.T[i], serial.T[i])
			}
		}
	}
}

func TestSolveTransientParallelMatchesSerial(t *testing.T) {
	m := parallelTestModel(t)
	opts := TransientOptions{Dt: 2, Steps: 5}
	serial, err := m.SolveTransient(300, &opts)
	if err != nil {
		t.Fatal(err)
	}
	popts := TransientOptions{Dt: 2, Steps: 5}
	popts.Parallel = true
	popts.Workers = 4
	par, err := m.SolveTransient(300, &popts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.T {
		if par.T[i] != serial.T[i] {
			t.Fatalf("cell %d: %v vs serial %v (must be bitwise identical)", i, par.T[i], serial.T[i])
		}
	}
}

// TestAssembleParallelIdentical pins the stronger property the solver
// relies on: the sharded assembly produces an operator whose CSR arrays
// are identical element-for-element, not merely a matrix with equal
// entries.
func TestAssembleParallelIdentical(t *testing.T) {
	m := parallelTestModel(t)
	n := m.Grid.NumCells()
	Tsurf := make([]float64, n)
	for i := range Tsurf {
		Tsurf[i] = 305
	}
	a1, b1 := m.assemble(Tsurf, 1)
	for _, w := range []int{2, 3, 5, 16} {
		a2, b2 := m.assemble(Tsurf, w)
		if a1.NNZ() != a2.NNZ() {
			t.Fatalf("workers=%d: nnz %d vs %d", w, a2.NNZ(), a1.NNZ())
		}
		for i := range a1.RowPtr {
			if a1.RowPtr[i] != a2.RowPtr[i] {
				t.Fatalf("workers=%d: RowPtr[%d] differs", w, i)
			}
		}
		for i := range a1.Val {
			if a1.Val[i] != a2.Val[i] || a1.ColIdx[i] != a2.ColIdx[i] {
				t.Fatalf("workers=%d: entry %d differs", w, i)
			}
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("workers=%d: rhs[%d] differs", w, i)
			}
		}
	}
}
