package thermal

import (
	"testing"

	"aeropack/internal/units"
)

func TestSpreadingResistanceLimits(t *testing.T) {
	// Source as large as the plate minus epsilon: spreading term vanishes
	// and the 1-D + film result dominates.
	rNear, err := SpreadingResistance(0.0499, 0.05, 2e-3, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rSmall, err := SpreadingResistance(0.005, 0.05, 2e-3, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall <= rNear {
		t.Errorf("smaller source must spread harder: %v vs %v", rSmall, rNear)
	}
}

func TestSpreadingResistanceMonotoneInK(t *testing.T) {
	prev := 1e9
	for _, k := range []float64{20, 50, 167, 398, 1500} {
		r, err := SpreadingResistance(0.0075, 0.03, 3e-3, k, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if r >= prev {
			t.Fatalf("spreading must fall with conductivity at k=%v", k)
		}
		prev = r
	}
}

func TestSpreadingResistanceMagnitude(t *testing.T) {
	// 15 mm die on a 60 mm copper lid, 3 mm thick, liquid cooled: the
	// spreading term is a few hundredths of a K/W — the classic handbook
	// scale.
	r1 := EquivalentRadius(15e-3, 15e-3)
	r2 := EquivalentRadius(60e-3, 60e-3)
	r, err := SpreadingResistance(r1, r2, 3e-3, 398, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.01 || r > 0.3 {
		t.Errorf("spreading R = %v K/W, want handbook 0.02–0.2 scale", r)
	}
}

func TestSpreadingValidation(t *testing.T) {
	if _, err := SpreadingResistance(0, 1, 1, 1, 1); err == nil {
		t.Error("zero source should error")
	}
	if _, err := SpreadingResistance(2, 1, 1, 1, 1); err == nil {
		t.Error("source larger than plate should error")
	}
	if _, err := SpreadingResistance(0.1, 1, -1, 1, 1); err == nil {
		t.Error("negative thickness should error")
	}
}

func TestEquivalentRadius(t *testing.T) {
	// Unit square → r = 1/√π.
	if got := EquivalentRadius(1, 1); !units.ApproxEqual(got, 0.5641895835, 1e-9) {
		t.Errorf("EquivalentRadius = %v", got)
	}
	if EquivalentRadius(0, 1) != 0 {
		t.Error("degenerate radius should be 0")
	}
}

func TestPlateSourceResistance(t *testing.T) {
	// Full stack must exceed the bare film resistance and shrink as the
	// plate conductivity rises.
	aSrc, aPlate := 2.25e-4, 36e-4
	rAl, err := PlateSourceResistance(aSrc, aPlate, 3e-3, 167, 2000)
	if err != nil {
		t.Fatal(err)
	}
	rCu, err := PlateSourceResistance(aSrc, aPlate, 3e-3, 398, 2000)
	if err != nil {
		t.Fatal(err)
	}
	film := 1 / (2000 * aPlate)
	if rAl <= film || rCu <= film {
		t.Error("stack must exceed the bare film")
	}
	if rCu >= rAl {
		t.Error("copper must beat aluminium")
	}
	if _, err := PlateSourceResistance(1, 0.5, 1e-3, 100, 100); err == nil {
		t.Error("source bigger than plate should error")
	}
}
