package thermal

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"aeropack/internal/materials"
	"aeropack/internal/mesh"
	"aeropack/internal/units"
)

func almost(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if !units.ApproxEqual(got, want, rel) {
		t.Errorf("%s: got %v, want %v (rel %v)", msg, got, want, rel)
	}
}

// slabModel builds a 1-D slab along x with fixed temperatures on both ends.
func slabModel(t *testing.T, nx int, k float64, T1, T2 float64) (*Model, *mesh.Grid) {
	t.Helper()
	g, err := mesh.Uniform(nx, 1, 1, 0.1, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	mat := materials.Material{Name: "slab", K: k, Rho: 1000, Cp: 1000}
	m, err := NewModel(g, []materials.Material{mat})
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaceBC(mesh.XMin, BC{Kind: FixedT, T: T1})
	m.SetFaceBC(mesh.XMax, BC{Kind: FixedT, T: T2})
	return m, g
}

func TestSlabLinearProfile(t *testing.T) {
	// Steady 1-D conduction between fixed temperatures: linear profile,
	// flux q = k·ΔT/L.
	m, g := slabModel(t, 20, 10, 350, 300)
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Check linearity at the quarter points.
	for i := 0; i < g.Nx; i++ {
		x, _, _ := g.CellCenter(i, 0, 0)
		want := 350 - (350-300)*x/0.1
		almost(t, res.At(i, 0, 0), want, 1e-6, "slab profile")
	}
	// Boundary heat flow: q = kAΔT/L = 10·(0.05·0.02)·50/0.1 = 5 W.
	// BoundaryHeatFlow is positive out of the domain: heat leaves through
	// the cold face and enters (negative) through the hot face.
	qOut := m.BoundaryHeatFlow(res, mesh.XMax)
	almost(t, qOut, 5, 1e-6, "heat flow out of cold face")
	qIn := m.BoundaryHeatFlow(res, mesh.XMin)
	almost(t, qIn, -5, 1e-6, "heat flow into hot face")
}

func TestSlabConvectionBC(t *testing.T) {
	// Slab heated by a fixed-T face, cooled by convection: the series
	// resistance formula gives the surface temperature exactly.
	g, _ := mesh.Uniform(30, 1, 1, 0.01, 0.1, 0.1)
	mat := materials.Material{Name: "al", K: 167, Rho: 2700, Cp: 896}
	m, _ := NewModel(g, []materials.Material{mat})
	const Thot, Tamb, h = 373.15, 293.15, 50.0
	m.SetFaceBC(mesh.XMin, BC{Kind: FixedT, T: Thot})
	m.SetFaceBC(mesh.XMax, BC{Kind: Convection, T: Tamb, H: h})
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	area := 0.1 * 0.1
	rTot := 0.01/(167*area) + 1/(h*area)
	qWant := (Thot - Tamb) / rTot
	q := m.BoundaryHeatFlow(res, mesh.XMax)
	almost(t, q, qWant, 1e-6, "convective heat flow")
}

func TestVolumeSourceEnergyBalance(t *testing.T) {
	// All injected power must leave through the boundaries.
	g, _ := mesh.Uniform(8, 8, 4, 0.1, 0.1, 0.01)
	mat := materials.Al6061
	m, _ := NewModel(g, []materials.Material{mat})
	m.SetFaceBC(mesh.ZMin, BC{Kind: Convection, T: 300, H: 20})
	m.SetFaceBC(mesh.ZMax, BC{Kind: Convection, T: 300, H: 20})
	if n := m.AddVolumeSource(0.02, 0.05, 0.02, 0.05, 0, 0.01, 7.5); n == 0 {
		t.Fatal("source missed mesh")
	}
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := 0.0
	for f := mesh.XMin; f < mesh.NumFaces; f++ {
		out += m.BoundaryHeatFlow(res, f)
	}
	almost(t, out, 7.5, 1e-6, "energy balance")
	if res.Max() <= 300 {
		t.Error("heated plate should be above ambient")
	}
}

func TestEnergyBalanceProperty(t *testing.T) {
	// Randomized sources and BCs: conservation must hold regardless.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		g, _ := mesh.Uniform(4+rng.Intn(5), 4+rng.Intn(5), 2+rng.Intn(3), 0.1, 0.08, 0.02)
		mat := materials.Copper
		m, _ := NewModel(g, []materials.Material{mat})
		m.SetFaceBC(mesh.XMin, BC{Kind: Convection, T: 280 + 40*rng.Float64(), H: 5 + 100*rng.Float64()})
		m.SetFaceBC(mesh.YMax, BC{Kind: FixedT, T: 280 + 40*rng.Float64()})
		total := 0.0
		for s := 0; s < 3; s++ {
			p := rng.Float64() * 20
			if m.AddVolumeSource(0, 0.1*rng.Float64()+0.01, 0, 0.08, 0, 0.02, p) > 0 {
				total += p
			}
		}
		res, err := m.SolveSteady(&SolveOptions{Tol: 1e-11})
		if err != nil {
			t.Fatal(err)
		}
		out := 0.0
		for f := mesh.XMin; f < mesh.NumFaces; f++ {
			out += m.BoundaryHeatFlow(res, f)
		}
		if !units.ApproxEqual(out, total, 1e-5) && math.Abs(out-total) > 1e-7 {
			t.Fatalf("trial %d: out %v vs injected %v", trial, out, total)
		}
	}
}

func TestOrthotropicPCB(t *testing.T) {
	// A PCB slab conducts far better in-plane than through-plane: compare
	// two slabs with the same geometry, one heated along x, one along z.
	pcb := materials.PCB(8, 1, 0.5, 1.6e-3)
	gx, _ := mesh.Uniform(20, 4, 4, 0.1, 0.05, 1.6e-3)
	mx, _ := NewModel(gx, []materials.Material{pcb})
	mx.SetFaceBC(mesh.XMin, BC{Kind: FixedT, T: 350})
	mx.SetFaceBC(mesh.XMax, BC{Kind: FixedT, T: 300})
	rx, err := mx.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	qx := mx.BoundaryHeatFlow(rx, mesh.XMin)

	gz, _ := mesh.Uniform(4, 4, 20, 1.6e-3, 0.05, 0.1)
	mz, _ := NewModel(gz, []materials.Material{pcb})
	mz.SetFaceBC(mesh.ZMin, BC{Kind: FixedT, T: 350})
	mz.SetFaceBC(mesh.ZMax, BC{Kind: FixedT, T: 300})
	rz, err := mz.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	qz := mz.BoundaryHeatFlow(rz, mesh.ZMin)
	// Same geometry (area/length swapped consistently); ratio of flows is
	// the anisotropy ratio kx/kz.
	almost(t, qx/qz, pcb.Kx()/pcb.Kz(), 1e-6, "anisotropy ratio")
}

func TestTwoMaterialSeriesSlab(t *testing.T) {
	// Half aluminium, half FR4 in series along x — interface temperature
	// from series resistance.
	g, _ := mesh.Uniform(40, 1, 1, 0.02, 0.1, 0.1)
	al := materials.Al6061
	fr4 := materials.Material{Name: "fr4iso", K: 0.3, Rho: 1850, Cp: 1100}
	m, _ := NewModel(g, []materials.Material{al, fr4})
	g.PaintRegion(0.01, 0.02, 0, 0.1, 0, 0.1, 1)
	m.SetFaceBC(mesh.XMin, BC{Kind: FixedT, T: 400})
	m.SetFaceBC(mesh.XMax, BC{Kind: FixedT, T: 300})
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	area := 0.01
	rAl := 0.01 / (al.K * area)
	rFr := 0.01 / (0.3 * area)
	qWant := 100 / (rAl + rFr)
	q := m.BoundaryHeatFlow(res, mesh.XMax) // positive out through cold face
	almost(t, q, qWant, 1e-4, "series two-material flux")
}

func TestRadiationBoundary(t *testing.T) {
	// A hot plate cooled only by radiation: verify Stefan–Boltzmann
	// balance  P = εσA(Ts⁴ − Ta⁴).
	g, _ := mesh.Uniform(4, 4, 1, 0.1, 0.1, 0.005)
	mat := materials.Material{Name: "blk", K: 200, Rho: 2700, Cp: 900, Emiss: 0.9}
	m, _ := NewModel(g, []materials.Material{mat})
	m.SetFaceBC(mesh.ZMax, BC{Kind: ConvectionRadiation, T: 300, H: 0})
	const P = 10.0
	m.AddVolumeSource(0, 0.1, 0, 0.1, 0, 0.005, P)
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	Ts := res.Mean() // high conductivity → nearly isothermal
	lhs := 0.9 * units.StefanBoltzmann * 0.01 * (math.Pow(Ts, 4) - math.Pow(300, 4))
	almost(t, lhs, P, 0.02, "radiative balance")
	if res.OuterIterations < 2 {
		t.Error("radiation should take >1 outer pass")
	}
}

func TestPatchBCOverride(t *testing.T) {
	// Cold plate on part of the bottom face only: patch must dominate the
	// default adiabatic face.
	g, _ := mesh.Uniform(10, 10, 2, 0.1, 0.1, 0.004)
	m, _ := NewModel(g, []materials.Material{materials.Al6061})
	if n := m.AddPatchBC(mesh.ZMin, 0, 0.05, 0, 0.1, 0, 0.004, BC{Kind: FixedT, T: 290}); n == 0 {
		t.Fatal("patch missed")
	}
	m.AddVolumeSource(0, 0.1, 0, 0.1, 0, 0.004, 5)
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := m.BoundaryHeatFlow(res, mesh.ZMin)
	almost(t, out, 5, 1e-6, "all power exits through patch")
	// The cooled half must be colder than the free half.
	coldSide := res.MeanInBox(0, 0.05, 0, 0.1, 0, 0.004)
	hotSide := res.MeanInBox(0.05, 0.1, 0, 0.1, 0, 0.004)
	if coldSide >= hotSide {
		t.Errorf("cooled side %v should be colder than free side %v", coldSide, hotSide)
	}
}

func TestSolverVariantsAgree(t *testing.T) {
	build := func() *Model {
		g, _ := mesh.Uniform(6, 6, 3, 0.06, 0.06, 0.01)
		m, _ := NewModel(g, []materials.Material{materials.Al6061})
		m.SetFaceBC(mesh.ZMin, BC{Kind: Convection, T: 300, H: 30})
		m.AddVolumeSource(0.02, 0.04, 0.02, 0.04, 0, 0.01, 3)
		return m
	}
	ref, err := build().SolveSteady(&SolveOptions{Solver: "cg"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"cg-jacobi", "cg-ssor", "bicgstab"} {
		res, err := build().SolveSteady(&SolveOptions{Solver: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		almost(t, res.Max(), ref.Max(), 1e-6, "solver "+s)
	}
	if _, err := build().SolveSteady(&SolveOptions{Solver: "gauss"}); err == nil {
		t.Error("unknown solver should error")
	}
}

func TestTransientApproachesSteady(t *testing.T) {
	g, _ := mesh.Uniform(6, 6, 2, 0.05, 0.05, 0.003)
	m, _ := NewModel(g, []materials.Material{materials.Al6061})
	m.SetFaceBC(mesh.ZMin, BC{Kind: Convection, T: 300, H: 40})
	m.AddVolumeSource(0, 0.05, 0, 0.05, 0, 0.003, 4)
	steady, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	tr, err := m.SolveTransient(300, &TransientOptions{
		Dt: 20, Steps: 400,
		Snapshot: func(tm float64, T []float64) { times = append(times, tm) },
	})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, tr.Max(), steady.Max(), 0.01, "transient → steady limit")
	if len(times) != 400 || !units.ApproxEqual(times[len(times)-1], 8000, 1e-9) {
		t.Error("snapshot callback wrong")
	}
}

func TestTransientMonotoneHeating(t *testing.T) {
	g, _ := mesh.Uniform(4, 4, 1, 0.02, 0.02, 0.002)
	m, _ := NewModel(g, []materials.Material{materials.Copper})
	m.SetFaceBC(mesh.XMin, BC{Kind: Convection, T: 300, H: 10})
	m.AddVolumeSource(0, 0.02, 0, 0.02, 0, 0.002, 1)
	var maxes []float64
	_, err := m.SolveTransient(300, &TransientOptions{
		Dt: 5, Steps: 50,
		Snapshot: func(tm float64, T []float64) {
			mx := T[0]
			for _, v := range T {
				if v > mx {
					mx = v
				}
			}
			maxes = append(maxes, mx)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(maxes); i++ {
		if maxes[i] < maxes[i-1]-1e-9 {
			t.Fatal("heating transient must be monotone")
		}
	}
}

func TestTransientBadOptions(t *testing.T) {
	g, _ := mesh.Uniform(2, 2, 1, 0.01, 0.01, 0.001)
	m, _ := NewModel(g, []materials.Material{materials.Al6061})
	if _, err := m.SolveTransient(300, nil); err == nil {
		t.Error("nil options should error")
	}
	if _, err := m.SolveTransient(300, &TransientOptions{Dt: -1, Steps: 5}); err == nil {
		t.Error("negative dt should error")
	}
}

func TestNewModelValidation(t *testing.T) {
	g, _ := mesh.Uniform(2, 2, 1, 1, 1, 1)
	if _, err := NewModel(nil, []materials.Material{{}}); err == nil {
		t.Error("nil grid should error")
	}
	if _, err := NewModel(g, nil); err == nil {
		t.Error("empty material table should error")
	}
	g.MatIdx[0] = 5
	if _, err := NewModel(g, []materials.Material{materials.Al6061}); err == nil {
		t.Error("out-of-range material index should error")
	}
}

func TestResultProbes(t *testing.T) {
	m, _ := slabModel(t, 10, 10, 350, 300)
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Max() <= res.Min() {
		t.Error("Max should exceed Min for a gradient field")
	}
	mean := res.Mean()
	if mean <= res.Min() || mean >= res.Max() {
		t.Error("Mean must be interior")
	}
	hot := res.MaxInBox(0, 0.02, 0, 1, 0, 1)
	cold := res.MaxInBox(0.08, 0.1, 0, 1, 0, 1)
	if hot <= cold {
		t.Error("hot-end probe should exceed cold-end probe")
	}
	if !math.IsNaN(res.MeanInBox(5, 6, 5, 6, 5, 6)) {
		t.Error("empty box mean should be NaN")
	}
}

func TestMissedSourceReturnsZero(t *testing.T) {
	g, _ := mesh.Uniform(2, 2, 1, 0.01, 0.01, 0.001)
	m, _ := NewModel(g, []materials.Material{materials.Al6061})
	if n := m.AddVolumeSource(1, 2, 1, 2, 1, 2, 10); n != 0 {
		t.Error("source outside mesh should report 0 cells")
	}
	if m.TotalSourcePower() != 0 {
		t.Error("missed source must not contribute power")
	}
}

func TestWriteCSVAndSlice(t *testing.T) {
	m, g := slabModel(t, 4, 10, 350, 300)
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+g.NumCells() {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+g.NumCells())
	}
	if lines[0] != "x_m,y_m,z_m,T_C" {
		t.Errorf("header = %q", lines[0])
	}
	sl, err := res.SliceZ(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sl) != g.Ny || len(sl[0]) != g.Nx {
		t.Error("slice dimensions wrong")
	}
	// Slab hot end on the left: row values decrease along x.
	if sl[0][0] <= sl[0][g.Nx-1] {
		t.Error("slice gradient direction wrong")
	}
	if _, err := res.SliceZ(99); err == nil {
		t.Error("out-of-range layer should error")
	}
	empty := &Result{}
	if err := empty.WriteCSV(&buf); err == nil {
		t.Error("empty result should error")
	}
}

func TestHotSpotLocation(t *testing.T) {
	g, _ := mesh.Uniform(10, 10, 1, 0.1, 0.1, 0.002)
	m, _ := NewModel(g, []materials.Material{materials.FR4})
	m.SetFaceBC(mesh.ZMin, BC{Kind: Convection, T: 300, H: 15})
	// Source in the upper-right quadrant.
	m.AddVolumeSource(0.07, 0.09, 0.07, 0.09, 0, 0.002, 2)
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	x, y, _, T := res.HotSpot()
	if x < 0.06 || y < 0.06 {
		t.Errorf("hot spot at (%v,%v), want inside the source patch", x, y)
	}
	if T != res.Max() {
		t.Error("hot-spot temperature must equal the field max")
	}
}
