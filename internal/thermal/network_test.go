package thermal

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aeropack/internal/units"
)

func TestNetworkSeriesDivider(t *testing.T) {
	// junction -R1- mid -R2- ambient, source at junction.
	n := NewNetwork()
	if err := n.AddResistor("junction", "mid", 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AddResistor("mid", "ambient", 3); err != nil {
		t.Fatal(err)
	}
	n.AddSource("junction", 10)
	n.FixT("ambient", 300)
	res, err := n.SolveSteady()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.T["junction"], 300+10*5, 1e-9, "junction T")
	almost(t, res.T["mid"], 300+10*3, 1e-9, "mid T")
	almost(t, n.FlowBetween(res, "junction", "mid"), 10, 1e-9, "series flow")
}

func TestNetworkParallelPaths(t *testing.T) {
	// Two parallel resistances 4 and 4 → effective 2.
	n := NewNetwork()
	n.AddResistor("chip", "sink", 4)
	n.AddResistor("chip", "sink", 4)
	n.AddSource("chip", 8)
	n.FixT("sink", 320)
	res, err := n.SolveSteady()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.T["chip"], 320+8*2, 1e-9, "parallel chip T")
	almost(t, n.FlowBetween(res, "chip", "sink"), 8, 1e-9, "total parallel flow")
}

func TestNetworkFlowConservation(t *testing.T) {
	// At every interior node, inflow = outflow.
	n := NewNetwork()
	n.AddResistor("a", "b", 1)
	n.AddResistor("b", "c", 2)
	n.AddResistor("b", "d", 3)
	n.AddResistor("c", "d", 4)
	n.AddSource("a", 5)
	n.FixT("d", 300)
	res, err := n.SolveSteady()
	if err != nil {
		t.Fatal(err)
	}
	inB := n.FlowBetween(res, "a", "b")
	outB := n.FlowBetween(res, "b", "c") + n.FlowBetween(res, "b", "d")
	almost(t, inB, outB, 1e-9, "node b conservation")
	almost(t, inB, 5, 1e-9, "all source power through b")
}

func TestNetworkMultipleFixed(t *testing.T) {
	// Heat flows between two fixed nodes through a resistor chain.
	n := NewNetwork()
	n.AddResistor("hot", "mid", 1)
	n.AddResistor("mid", "cold", 1)
	n.FixT("hot", 400)
	n.FixT("cold", 300)
	res, err := n.SolveSteady()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.T["mid"], 350, 1e-9, "midpoint of divider")
	almost(t, n.FlowBetween(res, "hot", "mid"), 50, 1e-9, "divider flow")
}

func TestNetworkVariableResistor(t *testing.T) {
	// Natural-convection-like film: R ∝ ΔT^(−1/4).  Solve and verify the
	// fixed point satisfies the nonlinear relation.
	n := NewNetwork()
	const C = 5.0 // R = C/ΔT^0.25
	n.AddVariableResistor("plate", "air", 2, func(Ta, Tb, Q float64) float64 {
		dT := math.Max(0.1, Ta-Tb)
		return C / math.Pow(dT, 0.25)
	})
	n.AddSource("plate", 20)
	n.FixT("air", 300)
	res, err := n.SolveSteady()
	if err != nil {
		t.Fatal(err)
	}
	dT := res.T["plate"] - 300
	// Fixed point: dT = Q·R(dT) = 20·C/dT^0.25 → dT^1.25 = 100.
	want := math.Pow(20*C, 1/1.25)
	almost(t, dT, want, 1e-3, "nonlinear film fixed point")
	if res.Iterations < 2 {
		t.Error("variable resistor should need >1 Picard pass")
	}
}

func TestNetworkVariableResistorInvalid(t *testing.T) {
	n := NewNetwork()
	n.AddVariableResistor("a", "b", 1, func(Ta, Tb, Q float64) float64 { return -1 })
	n.AddSource("a", 1)
	n.FixT("b", 300)
	if _, err := n.SolveSteady(); err == nil {
		t.Fatal("invalid variable resistance should error")
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork()
	if _, err := n.SolveSteady(); err == nil {
		t.Error("empty network should error")
	}
	n.AddResistor("a", "b", 1)
	if _, err := n.SolveSteady(); err == nil {
		t.Error("network without fixed node should error")
	}
	if err := n.AddResistor("a", "a", 1); err == nil {
		t.Error("self loop should error")
	}
	if err := n.AddResistor("a", "b", -2); err == nil {
		t.Error("negative resistance should error")
	}
	if err := n.AddVariableResistor("a", "b", 0, nil); err == nil {
		t.Error("bad variable resistor should error")
	}
	n.FixT("b", 300)
	n.AddNode("orphan")
	if _, err := n.SolveSteady(); err == nil {
		t.Error("floating node should error")
	}
}

func TestNetworkSourceAccumulation(t *testing.T) {
	n := NewNetwork()
	n.AddResistor("x", "amb", 1)
	n.AddSource("x", 3)
	n.AddSource("x", 4)
	n.FixT("amb", 300)
	if n.NodePower("x") != 7 {
		t.Errorf("NodePower = %v", n.NodePower("x"))
	}
	if n.NodePower("nope") != 0 {
		t.Error("unknown node power should be 0")
	}
	res, err := n.SolveSteady()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.T["x"], 307, 1e-9, "accumulated sources")
}

func TestSeriesResistanceHelper(t *testing.T) {
	// Die-attach stack: 1 mm Al (k=200) + TIM interface 5 K·mm²/W over 1 cm².
	area := 1e-4
	r, err := SeriesResistance(area,
		[][2]float64{{1e-3, 200}},
		[]float64{units.KMm2PerW(5)},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-3/(200*area) + 5e-6/area
	almost(t, r, want, 1e-12, "series stack")

	if _, err := SeriesResistance(0, nil, nil); err == nil {
		t.Error("zero area should error")
	}
	if _, err := SeriesResistance(1, [][2]float64{{1, -1}}, nil); err == nil {
		t.Error("bad layer should error")
	}
	if _, err := SeriesResistance(1, nil, []float64{-1}); err == nil {
		t.Error("negative interface should error")
	}
}

func TestNetworkNodesListing(t *testing.T) {
	n := NewNetwork()
	n.AddResistor("b", "a", 1)
	n.FixT("a", 300)
	nodes := n.Nodes()
	if len(nodes) != 2 || nodes[0] != "b" || nodes[1] != "a" {
		t.Errorf("Nodes = %v", nodes)
	}
	sorted := n.SortedNodeNames()
	if sorted[0] != "a" || sorted[1] != "b" {
		t.Errorf("SortedNodeNames = %v", sorted)
	}
}

func TestNetworkCapacitance(t *testing.T) {
	n := NewNetwork()
	n.SetCapacitance("mass", 50)
	if id := n.AddNode("mass"); n.caps[id] != 50 {
		t.Error("capacitance not stored")
	}
}

func TestNetworkChainProperty(t *testing.T) {
	// Property (testing/quick): for a random series chain of resistors
	// with a single source, the junction temperature is exactly
	// T_amb + P·ΣR and every element carries the full power.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork()
		nLinks := 2 + rng.Intn(8)
		sum := 0.0
		prev := "n0"
		for i := 1; i <= nLinks; i++ {
			r := 0.1 + rng.Float64()*5
			sum += r
			cur := fmt.Sprintf("n%d", i)
			if err := n.AddResistor(prev, cur, r); err != nil {
				return false
			}
			prev = cur
		}
		p := 0.5 + rng.Float64()*50
		n.AddSource("n0", p)
		n.FixT(prev, 300)
		res, err := n.SolveSteady()
		if err != nil {
			return false
		}
		if !units.ApproxEqual(res.T["n0"], 300+p*sum, 1e-6) {
			return false
		}
		for _, q := range res.Flow {
			if !units.ApproxEqual(q, p, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNetworkParallelProperty(t *testing.T) {
	// Property: k random parallel resistors between source and sink give
	// T = T_amb + P/(Σ 1/Rᵢ) with flows splitting ∝ 1/Rᵢ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork()
		k := 2 + rng.Intn(6)
		gsum := 0.0
		rs := make([]float64, k)
		for i := 0; i < k; i++ {
			rs[i] = 0.2 + rng.Float64()*8
			gsum += 1 / rs[i]
			if err := n.AddResistor("hot", "amb", rs[i]); err != nil {
				return false
			}
		}
		p := 1 + rng.Float64()*30
		n.AddSource("hot", p)
		n.FixT("amb", 290)
		res, err := n.SolveSteady()
		if err != nil {
			return false
		}
		dT := res.T["hot"] - 290
		if !units.ApproxEqual(dT, p/gsum, 1e-6) {
			return false
		}
		for i, q := range res.Flow {
			if !units.ApproxEqual(q, dT/rs[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
