package thermal

import (
	"fmt"
	"math"
	"time"

	"aeropack/internal/linalg"
	"aeropack/internal/mesh"
	"aeropack/internal/obs"
	"aeropack/internal/parallel"
	"aeropack/internal/robust"
	"aeropack/internal/units"
)

// Result is a solved temperature field.
type Result struct {
	T []float64 // cell temperatures, K, indexed by Grid.Index
	g *mesh.Grid
	// Iterations performed by the linear solver on the last (outer) pass.
	Iterations int
	// OuterIterations counts radiation linearisation passes.
	OuterIterations int
}

// At returns the temperature of cell (i,j,k).
func (r *Result) At(i, j, k int) float64 { return r.T[r.g.Index(i, j, k)] }

// Max returns the hottest cell temperature.
func (r *Result) Max() float64 {
	m := math.Inf(-1)
	for _, t := range r.T {
		if t > m {
			m = t
		}
	}
	return m
}

// Min returns the coldest cell temperature.
func (r *Result) Min() float64 {
	m := math.Inf(1)
	for _, t := range r.T {
		if t < m {
			m = t
		}
	}
	return m
}

// Mean returns the volume-weighted mean temperature.
func (r *Result) Mean() float64 {
	sumVT, sumV := 0.0, 0.0
	for k := 0; k < r.g.Nz; k++ {
		for j := 0; j < r.g.Ny; j++ {
			for i := 0; i < r.g.Nx; i++ {
				v := r.g.CellVolume(i, j, k)
				sumVT += v * r.T[r.g.Index(i, j, k)]
				sumV += v
			}
		}
	}
	return sumVT / sumV
}

// MaxInBox returns the hottest temperature among cells with centroids in
// the physical box — used to probe component regions.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (r *Result) MaxInBox(x0, x1, y0, y1, z0, z1 float64) float64 {
	b := r.g.LocateBox(x0, x1, y0, y1, z0, z1)
	m := math.Inf(-1)
	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				if t := r.T[r.g.Index(i, j, k)]; t > m {
					m = t
				}
			}
		}
	}
	return m
}

// MeanInBox returns the volume-weighted mean temperature in the box.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (r *Result) MeanInBox(x0, x1, y0, y1, z0, z1 float64) float64 {
	b := r.g.LocateBox(x0, x1, y0, y1, z0, z1)
	sumVT, sumV := 0.0, 0.0
	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				v := r.g.CellVolume(i, j, k)
				sumVT += v * r.T[r.g.Index(i, j, k)]
				sumV += v
			}
		}
	}
	if sumV == 0 {
		return math.NaN()
	}
	return sumVT / sumV
}

// SolveOptions tunes the steady solver.
type SolveOptions struct {
	Tol        float64 // linear relative residual target (default 1e-9)
	MaxIter    int     // linear iteration cap (default 20·n^(2/3)+2000)
	MaxOuter   int     // radiation linearisation passes (default 12)
	RadTol     float64 // outer convergence on max |ΔT| in K (default 0.01)
	InitialT   float64 // initial field guess, K (default: mean of BC temps or 300)
	Solver     string  // "cg-ic0" (default), "cg", "cg-jacobi", "cg-ssor", "bicgstab"
	SSOROmega  float64 // relaxation for cg-ssor (default 1.2)
	ReturnLast bool    // if true, return best-effort field on non-convergence

	// Fallback routes the linear solve through the robust fallback
	// chain (robust.ChainFor): when the configured Solver fails, the
	// remaining rungs of the default ladder are tried before the solve
	// is reported failed.  A solve that succeeds on the first rung is
	// bitwise-identical to a non-Fallback solve, so enabling it only
	// changes behaviour on systems that would otherwise error out.
	Fallback bool

	// Parallel enables slab-parallel FV assembly and row-parallel
	// matrix-vector products.  Both paths are bitwise-identical to the
	// serial ones (see DESIGN.md "Parallel execution"), but serial stays
	// the default so the baseline remains trivially verifiable.
	Parallel bool
	// Workers bounds the worker count when Parallel is set; <= 0 means
	// runtime.GOMAXPROCS.
	Workers int

	// Span, when non-nil, is the parent under which the solver's
	// telemetry spans (thermal.SolveSteady → thermal.assemble /
	// thermal.linSolve) are recorded.  When nil, the solver span attaches
	// to the process-global tracer — and costs one atomic load when
	// tracing is disabled.
	Span *obs.Span
	// OnIteration is forwarded to the linear solver (see
	// linalg.IterOptions.OnIteration).  It fires for every inner
	// iteration of every outer pass; pair with linalg.ConvergenceLog to
	// capture convergence traces.
	OnIteration func(it int, residual float64)
	// Stop is forwarded to the linear solver (see
	// linalg.IterOptions.Stop).  When nil, a defaultSolveBudget
	// wall-clock guard is installed, so one near-singular operator in a
	// sweep aborts with linalg.ErrStopped instead of wedging the
	// campaign.
	Stop func() bool
}

// defaultSolveBudget is the wall-clock ceiling applied to linear solves
// whose caller supplies no Stop of its own.
const defaultSolveBudget = 5 * time.Minute

// defaultSolveStop returns a fresh wall-clock guard for one solve.
func defaultSolveStop() func() bool {
	deadline := time.Now().Add(defaultSolveBudget)
	return func() bool { return time.Now().After(deadline) }
}

// workerCount resolves the assembly/kernel worker budget: 1 unless
// Parallel is set.
func (o *SolveOptions) workerCount() int {
	if !o.Parallel {
		return 1
	}
	return parallel.Workers(o.Workers)
}

func (o *SolveOptions) defaults(n int) {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 20*int(math.Cbrt(float64(n))*math.Cbrt(float64(n))) + 2000
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 40
	}
	if o.RadTol <= 0 {
		o.RadTol = 0.01
	}
	if o.Solver == "" {
		// IC(0)-preconditioned CG is the default: on the FV conduction
		// operators it converges in an order of magnitude fewer
		// iterations than Jacobi or SSOR, and breakdown degrades to
		// Jacobi inside linSolve rather than failing the solve.
		o.Solver = "cg-ic0"
	}
	if o.SSOROmega <= 0 || o.SSOROmega >= 2 {
		o.SSOROmega = 1.2
	}
}

// SolveSteady solves the steady conduction problem.  Radiative boundaries
// make the problem mildly nonlinear; they are handled by Picard iteration
// on a linearised radiation coefficient.
func (m *Model) SolveSteady(opts *SolveOptions) (*Result, error) {
	n := m.Grid.NumCells()
	var o SolveOptions
	if opts != nil {
		o = *opts
	}
	o.defaults(n)

	sp := obs.Start(o.Span, "thermal.SolveSteady")
	defer sp.End()
	sp.AttrInt("cells", n)
	sp.Attr("solver", o.Solver)

	// Initial surface-temperature estimate for radiation linearisation.
	Tinit := o.InitialT
	if Tinit <= 0 {
		Tinit = m.guessInitialT()
	}
	Tsurf := make([]float64, n)
	for i := range Tsurf {
		Tsurf[i] = Tinit
	}

	w := o.workerCount()
	res := &Result{g: m.Grid}
	setup := m.solverSetup()
	var prev []float64
	for outer := 0; outer < o.MaxOuter; outer++ {
		res.OuterIterations = outer + 1
		a, b := m.assembleObs(Tsurf, w, sp)
		a.SetWorkers(w)
		t, stats, err := m.linSolve(a, b, prev, &o, setup, sp)
		res.Iterations = stats.Iterations
		if err != nil {
			if o.ReturnLast && t != nil {
				res.T = t
				return res, err
			}
			return nil, err
		}
		if !m.hasRadiation() {
			res.T = t
			return res, nil
		}
		// Outer convergence check on the radiating surface estimate, with
		// under-relaxation to damp the h_rad(T⁴) oscillation.
		maxDelta := 0.0
		for i := range t {
			if d := math.Abs(t[i] - Tsurf[i]); d > maxDelta {
				maxDelta = d
			}
			Tsurf[i] = 0.5*Tsurf[i] + 0.5*t[i]
		}
		prev = t
		if maxDelta < o.RadTol {
			res.T = t
			return res, nil
		}
	}
	if o.ReturnLast {
		res.T = Tsurf
		return res, fmt.Errorf("thermal: radiation linearisation did not converge in %d passes", o.MaxOuter)
	}
	return nil, fmt.Errorf("thermal: radiation linearisation did not converge in %d passes", o.MaxOuter)
}

func (m *Model) guessInitialT() float64 {
	sum, cnt := 0.0, 0
	for f := mesh.XMin; f < mesh.NumFaces; f++ {
		if bc := m.FaceBC[f]; bc.Kind != Adiabatic {
			sum += bc.T
			cnt++
		}
	}
	for _, p := range m.patches {
		if p.bc.Kind != Adiabatic {
			sum += p.bc.T
			cnt++
		}
	}
	if cnt == 0 {
		return 300
	}
	return sum / float64(cnt)
}

func (m *Model) hasRadiation() bool {
	for f := mesh.XMin; f < mesh.NumFaces; f++ {
		if m.FaceBC[f].Kind == ConvectionRadiation {
			return true
		}
	}
	for _, p := range m.patches {
		if p.bc.Kind == ConvectionRadiation {
			return true
		}
	}
	return false
}

// assembleObs wraps assemble with a child span and the assembly metrics
// (thermal_matrix_nnz gauge, thermal_assembly_seconds histogram).  With
// telemetry disabled it reduces to the bare assemble call plus two nil
// checks.
func (m *Model) assembleObs(Tsurf []float64, workers int, parent *obs.Span) (*linalg.CSR, []float64) {
	sp := parent.Start("thermal.assemble")
	reg := obs.Default()
	if sp == nil && reg == nil {
		return m.assemble(Tsurf, workers)
	}
	start := time.Now()
	a, b := m.assemble(Tsurf, workers)
	nnz := len(a.Val)
	sp.AttrInt("nnz", nnz)
	sp.End()
	if reg != nil {
		reg.Gauge("thermal_matrix_nnz").Set(float64(nnz))
		reg.Histogram("thermal_assembly_seconds", assemblyBuckets).Observe(time.Since(start).Seconds())
	}
	return a, b
}

// assemblyBuckets span 1 µs to 1000 s, one decade per bucket.
var assemblyBuckets = obs.ExpBuckets(1e-6, 10, 9)

// solverSetup returns the setup one solve call should thread through its
// inner linear solves: the persistent one when EnableSolverReuse was
// called, otherwise a fresh private instance (still shared by all Picard
// passes and transient steps of that call).
func (m *Model) solverSetup() *linalg.SolverSetup {
	if m.setup != nil {
		return m.setup
	}
	return linalg.NewSolverSetup()
}

// precKindFor maps a SolveOptions.Solver name to the preconditioner kind
// its primary attempt uses.
func precKindFor(solver string) string {
	switch solver {
	case "cg-jacobi", "bicgstab":
		return "jacobi"
	case "cg-ssor":
		return "ssor"
	case "cg-ic0":
		return "ic0"
	default:
		return ""
	}
}

// solveLabel keys the result cache with everything beyond the system
// content that can change the outcome of a solve.
func solveLabel(o *SolveOptions) string {
	return fmt.Sprintf("thermal:%s:omega=%g:fallback=%t:maxiter=%d", o.Solver, o.SSOROmega, o.Fallback, o.MaxIter)
}

func (m *Model) linSolve(a *linalg.CSR, b []float64, x0 []float64, o *SolveOptions, setup *linalg.SolverSetup, parent *obs.Span) ([]float64, linalg.IterStats, error) {
	switch o.Solver {
	case "cg", "cg-jacobi", "cg-ssor", "cg-ic0", "bicgstab":
	default:
		return nil, linalg.IterStats{}, fmt.Errorf("thermal: unknown solver %q", o.Solver)
	}
	sp := parent.Start("thermal.linSolve")
	sp.Attr("solver", o.Solver)

	// Exact-content repeats (a transient stepper that has reached steady
	// state, replayed sweep points) skip the solve outright.  The cache
	// is bypassed when the caller installed per-iteration hooks: a hit
	// performs no iterations, so OnIteration traces would silently go
	// missing and a fault-injection Stop would never be polled.
	useCache := o.OnIteration == nil && o.Stop == nil
	var key linalg.SolveKey
	if useCache {
		key = setup.Key(solveLabel(o), a, b, x0, o.Tol)
		if x, stats, ok := setup.Cached(key); ok {
			sp.Attr("cache", "hit")
			sp.AttrInt("iterations", 0)
			sp.AttrF("residual", stats.Residual)
			sp.End()
			return x, stats, nil
		}
	}

	io := &linalg.IterOptions{Tol: o.Tol, MaxIter: o.MaxIter, OnIteration: o.OnIteration, Stop: o.Stop}
	if io.Stop == nil {
		io.Stop = defaultSolveStop()
	}
	if kind := precKindFor(o.Solver); kind != "" {
		prec, perr := setup.PrecFor(kind, a, o.SSOROmega)
		if perr != nil {
			// Only IC(0) can fail (breakdown through the whole shift
			// ladder); degrade to Jacobi — weaker, never failing.
			obs.Default().Counter("thermal_ic0_degraded_total").Add(1)
			if rec := obs.CurrentRecorder(); rec != nil {
				rec.Record("degrade", "thermal.linSolve",
					obs.Attr{Key: "from", Value: kind},
					obs.Attr{Key: "to", Value: "jacobi"},
					obs.Attr{Key: "cause", Value: perr.Error()})
			}
			sp.Attr("prec_degraded", "jacobi")
			prec, _ = setup.PrecFor("jacobi", a, o.SSOROmega)
		}
		io.Prec = prec
	}

	var (
		x     []float64
		stats linalg.IterStats
		err   error
	)
	if o.Fallback {
		chain := robust.ChainFor(o.Solver, o.SSOROmega, o.Tol, o.MaxIter)
		chain.Span = sp
		chain.OnIteration = o.OnIteration
		chain.Setup = setup
		var out robust.Outcome
		x, out, err = chain.Solve(a, b, x0)
		stats = out.Stats
		if out.Fallbacks > 0 {
			sp.AttrInt("fallbacks", out.Fallbacks)
		}
	} else if o.Solver == "bicgstab" {
		x, stats, err = linalg.BiCGSTABOpt(a, b, x0, io)
	} else {
		x, stats, err = linalg.CGOpt(a, b, x0, io)
	}
	sp.AttrInt("iterations", stats.Iterations)
	sp.AttrF("residual", stats.Residual)
	sp.End()
	if err != nil {
		// The wrapped linalg error already carries the iteration count
		// and final residual; prefixing only the failing solver name
		// keeps the figures from appearing twice in the message.
		err = fmt.Errorf("thermal: %s solve failed: %w", o.Solver, err)
	} else if useCache {
		setup.Store(key, x, stats)
	}
	return x, stats, err
}

// assembleInterior accumulates the interior-face conductances for the
// k-slab range [k0,k1): series half-cell resistances (harmonic mean),
// per direction.  Each cell owns its +x/+y/+z faces, so distinct k
// ranges touch disjoint faces and the slabs can be assembled into
// private builders concurrently.
//
//lint:hot
func (m *Model) assembleInterior(coo *linalg.COO, k0, k1 int) {
	g := m.Grid
	for k := k0; k < k1; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				idx := g.Index(i, j, k)
				// +x neighbour.
				if i+1 < g.Nx {
					nIdx := g.Index(i+1, j, k)
					area := g.DY(j) * g.DZ(k)
					k1x := kDir(m.matAt(i, j, k), 0)
					k2x := kDir(m.matAt(i+1, j, k), 0)
					gcond := faceConductance(area, g.DX(i), k1x, g.DX(i+1), k2x)
					addPair(coo, idx, nIdx, gcond)
				}
				// +y neighbour.
				if j+1 < g.Ny {
					nIdx := g.Index(i, j+1, k)
					area := g.DX(i) * g.DZ(k)
					k1y := kDir(m.matAt(i, j, k), 1)
					k2y := kDir(m.matAt(i, j+1, k), 1)
					gcond := faceConductance(area, g.DY(j), k1y, g.DY(j+1), k2y)
					addPair(coo, idx, nIdx, gcond)
				}
				// +z neighbour.
				if k+1 < g.Nz {
					nIdx := g.Index(i, j, k+1)
					area := g.DX(i) * g.DY(j)
					k1z := kDir(m.matAt(i, j, k), 2)
					k2z := kDir(m.matAt(i, j, k+1), 2)
					gcond := faceConductance(area, g.DZ(k), k1z, g.DZ(k+1), k2z)
					addPair(coo, idx, nIdx, gcond)
				}
			}
		}
	}
}

// assemble builds the steady FV system A·T = b given the current surface
// temperature estimate (for radiation linearisation).  With workers > 1
// the interior-face loop is sharded by k-slab into private COO builders
// that are concatenated in slab order, which reproduces the serial
// triplet insertion sequence exactly — the assembled CSR is
// bitwise-identical at any worker count.
func (m *Model) assemble(Tsurf []float64, workers int) (*linalg.CSR, []float64) {
	g := m.Grid
	n := g.NumCells()
	coo := linalg.NewCOO(n, n)
	b := make([]float64, n)

	if workers > 1 && g.Nz > 1 {
		rs := parallel.Ranges(g.Nz, workers)
		parts := make([]*linalg.COO, len(rs))
		parallel.Blocks(g.Nz, workers, func(bi, lo, hi int) {
			part := linalg.NewCOO(n, n)
			m.assembleInterior(part, lo, hi)
			parts[bi] = part
		})
		for _, part := range parts {
			coo.AppendAll(part)
		}
	} else {
		m.assembleInterior(coo, 0, g.Nz)
	}

	// Boundary conditions.
	for f := mesh.XMin; f < mesh.NumFaces; f++ {
		face := f
		g.BoundaryCells(face, func(i, j, k int) {
			bc := m.bcAt(face, i, j, k)
			if bc.Kind == Adiabatic {
				return
			}
			idx := g.Index(i, j, k)
			area := g.FaceArea(face, i, j, k)
			mat := m.matAt(i, j, k)
			axis := faceAxis(face)
			kc := kDir(mat, axis)
			halfDist := 0.5 * cellExtent(g, face, i, j, k)
			rCond := halfDist / (kc * area)

			var gTot float64
			switch bc.Kind {
			case FixedT:
				gTot = 1 / rCond
			case Convection, ConvectionRadiation:
				h := bc.H
				if bc.Kind == ConvectionRadiation {
					eps := bc.Emiss
					if eps == 0 {
						eps = mat.Emiss
					}
					Ts := Tsurf[idx]
					Ta := bc.T
					h += eps * units.StefanBoltzmann * (Ts*Ts + Ta*Ta) * (Ts + Ta)
				}
				if h <= 0 {
					return
				}
				rFilm := 1 / (h * area)
				gTot = 1 / (rCond + rFilm)
			}
			coo.Add(idx, idx, gTot)
			b[idx] += gTot * bc.T
		})
	}

	// Volumetric sources.
	for _, s := range m.sources {
		// Spread power by cell volume fraction.
		vol := 0.0
		for k := s.box.K0; k < s.box.K1; k++ {
			for j := s.box.J0; j < s.box.J1; j++ {
				for i := s.box.I0; i < s.box.I1; i++ {
					vol += g.CellVolume(i, j, k)
				}
			}
		}
		if vol == 0 {
			continue
		}
		for k := s.box.K0; k < s.box.K1; k++ {
			for j := s.box.J0; j < s.box.J1; j++ {
				for i := s.box.I0; i < s.box.I1; i++ {
					b[g.Index(i, j, k)] += s.power * g.CellVolume(i, j, k) / vol
				}
			}
		}
	}

	return coo.ToCSR(), b
}

// addPair adds a symmetric conductance between cells a and b.
func addPair(coo *linalg.COO, a, b int, g float64) {
	coo.Add(a, a, g)
	coo.Add(b, b, g)
	coo.Add(a, b, -g)
	coo.Add(b, a, -g)
}

// faceConductance is the series (harmonic-mean) conductance between two
// adjacent cell centres through their shared face.
func faceConductance(area, d1, k1, d2, k2 float64) float64 {
	r := d1/(2*k1*area) + d2/(2*k2*area)
	return 1 / r
}

// faceAxis maps a face to its normal axis index.
func faceAxis(f mesh.Face) int {
	switch f {
	case mesh.XMin, mesh.XMax:
		return 0
	case mesh.YMin, mesh.YMax:
		return 1
	default:
		return 2
	}
}

// cellExtent returns the cell size normal to face f.
func cellExtent(g *mesh.Grid, f mesh.Face, i, j, k int) float64 {
	switch f {
	case mesh.XMin, mesh.XMax:
		return g.DX(i)
	case mesh.YMin, mesh.YMax:
		return g.DY(j)
	default:
		return g.DZ(k)
	}
}

// BoundaryHeatFlow returns the net heat flow (W, positive out of the
// domain) through face f for a solved field — used by energy-conservation
// checks and by exchanger sizing.
func (m *Model) BoundaryHeatFlow(res *Result, f mesh.Face) float64 {
	g := m.Grid
	total := 0.0
	g.BoundaryCells(f, func(i, j, k int) {
		bc := m.bcAt(f, i, j, k)
		if bc.Kind == Adiabatic {
			return
		}
		idx := g.Index(i, j, k)
		area := g.FaceArea(f, i, j, k)
		mat := m.matAt(i, j, k)
		kc := kDir(mat, faceAxis(f))
		halfDist := 0.5 * cellExtent(g, f, i, j, k)
		rCond := halfDist / (kc * area)
		var gTot float64
		switch bc.Kind {
		case FixedT:
			gTot = 1 / rCond
		case Convection, ConvectionRadiation:
			h := bc.H
			if bc.Kind == ConvectionRadiation {
				eps := bc.Emiss
				if eps == 0 {
					eps = mat.Emiss
				}
				Ts := res.T[idx]
				h += eps * units.StefanBoltzmann * (Ts*Ts + bc.T*bc.T) * (Ts + bc.T)
			}
			if h <= 0 {
				return
			}
			gTot = 1 / (rCond + 1/(h*area))
		}
		total += gTot * (res.T[idx] - bc.T)
	})
	return total
}

// TransientOptions tunes the transient solver.
type TransientOptions struct {
	SolveOptions
	Dt    float64 // time step, s (required)
	Steps int     // number of steps (required)
	// Snapshot, if non-nil, is called after every step with the time and
	// current field (aliased — copy if retained).
	Snapshot func(t float64, T []float64)
}

// SolveTransient integrates ∂(ρc_p T)/∂t = ∇·(k∇T) + q with implicit
// (backward) Euler from a uniform initial temperature T0.  Radiative BCs
// are linearised about the previous step's field.
func (m *Model) SolveTransient(T0 float64, opts *TransientOptions) (*Result, error) {
	if opts == nil || opts.Dt <= 0 || opts.Steps <= 0 {
		return nil, fmt.Errorf("thermal: transient solve requires positive Dt and Steps")
	}
	g := m.Grid
	n := g.NumCells()
	o := opts.SolveOptions
	o.defaults(n)

	T := make([]float64, n)
	for i := range T {
		T[i] = T0
	}
	// Per-cell heat capacity C = rho·cp·V.
	cap := make([]float64, n)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				mat := m.matAt(i, j, k)
				cap[g.Index(i, j, k)] = mat.VolumetricHeatCapacity() * g.CellVolume(i, j, k)
			}
		}
	}

	sp := obs.Start(o.Span, "thermal.SolveTransient")
	defer sp.End()
	sp.AttrInt("cells", n)
	sp.AttrInt("steps", opts.Steps)

	w := o.workerCount()
	res := &Result{g: g}
	setup := m.solverSetup()
	rhs := make([]float64, n)
	t := 0.0
	for step := 0; step < opts.Steps; step++ {
		a, b := m.assembleObs(T, w, sp)
		// (C/dt + A)·T^{n+1} = C/dt·T^n + b — fold capacity into a copy of
		// the assembled operator.
		coo := linalg.NewCOO(n, n)
		for i := 0; i < n; i++ {
			for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
				coo.Add(i, a.ColIdx[kk], a.Val[kk])
			}
			coo.Add(i, i, cap[i]/opts.Dt)
			rhs[i] = b[i] + cap[i]/opts.Dt*T[i]
		}
		sys := coo.ToCSR()
		sys.SetWorkers(w)
		Tn, stats, err := m.linSolve(sys, rhs, T, &o, setup, sp)
		res.Iterations = stats.Iterations
		if err != nil {
			return nil, fmt.Errorf("thermal: transient step %d: %w", step, err)
		}
		copy(T, Tn)
		t += opts.Dt
		if opts.Snapshot != nil {
			opts.Snapshot(t, T)
		}
	}
	res.T = T
	res.OuterIterations = opts.Steps
	return res, nil
}
