package thermal

import (
	"fmt"
	"math"
)

// SpreadingResistance returns the constriction/spreading resistance (K/W)
// of a circular heat source of radius r1 centred on a circular plate of
// radius r2 and thickness t with conductivity k, cooled on the far face by
// an effective film coefficient h — the Song–Lee–Yovanovich closed form
// used throughout heatsink and heat-spreader design.
//
// It is the quantity that makes the paper's hot-spot problem hard: a die
// at 100 W/cm² on a plain aluminium lid loses most of its budget to
// spreading before the coolant ever sees the heat.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func SpreadingResistance(r1, r2, t, k, h float64) (float64, error) {
	if r1 <= 0 || r2 <= r1 || t <= 0 || k <= 0 || h <= 0 {
		return 0, fmt.Errorf("thermal: spreading inputs invalid (r1=%g r2=%g t=%g k=%g h=%g)", r1, r2, t, k, h)
	}
	eps := r1 / r2
	tau := t / r2
	bi := h * r2 / k
	lambda := math.Pi + 1/(math.Sqrt(math.Pi)*eps)
	phi := (math.Tanh(lambda*tau) + lambda/bi) / (1 + lambda/bi*math.Tanh(lambda*tau))
	psi := eps*tau/math.Sqrt(math.Pi) + 1/math.Sqrt(math.Pi)*(1-eps)*phi
	return psi / (k * r1 * math.Sqrt(math.Pi)), nil
}

// EquivalentRadius returns the radius of the circle with the same area as
// an a×b rectangle — the standard mapping for using circular spreading
// formulas with rectangular dies and plates.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func EquivalentRadius(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Sqrt(a * b / math.Pi)
}

// PlateSourceResistance composes the full die→coolant resistance of a
// source (area aSrc) on a spreader plate (area aPlate, thickness t,
// conductivity k) cooled by h on the far face: spreading + one-dimensional
// conduction + film.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func PlateSourceResistance(aSrc, aPlate, t, k, h float64) (float64, error) {
	r1 := EquivalentRadius(math.Sqrt(aSrc), math.Sqrt(aSrc))
	r2 := EquivalentRadius(math.Sqrt(aPlate), math.Sqrt(aPlate))
	if r1 == 0 || r2 == 0 || r2 <= r1 {
		return 0, fmt.Errorf("thermal: source must be smaller than the plate")
	}
	rsp, err := SpreadingResistance(r1, r2, t, k, h)
	if err != nil {
		return 0, err
	}
	r1d := t / (k * aPlate)
	rFilm := 1 / (h * aPlate)
	return rsp + r1d + rFilm, nil
}
