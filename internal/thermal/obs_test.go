package thermal

import (
	"regexp"
	"strings"
	"testing"

	"aeropack/internal/materials"
	"aeropack/internal/mesh"
	"aeropack/internal/obs"
)

func obsTestModel(t *testing.T) *Model {
	t.Helper()
	g, err := mesh.Uniform(8, 8, 2, 0.08, 0.08, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(g, []materials.Material{materials.Al6061})
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaceBC(mesh.ZMin, BC{Kind: Convection, T: 300, H: 50})
	m.AddVolumeSource(0.02, 0.06, 0.02, 0.06, 0, 0.004, 5)
	return m
}

// TestSolveErrorSurfacesIterStats pins the error contract added for the
// telemetry work: a non-converged linear solve must name the solver and
// carry the iteration count and final residual, so a failure is
// diagnosable from the message alone.  The thermal prefix must not
// repeat the figures the wrapped linalg error already carries — the
// old format printed the residual twice, once per layer.
func TestSolveErrorSurfacesIterStats(t *testing.T) {
	m := obsTestModel(t)
	const maxIter = 3
	_, err := m.SolveSteady(&SolveOptions{Solver: "cg", MaxIter: maxIter, Tol: 1e-14})
	if err == nil {
		t.Fatal("expected non-convergence with MaxIter=3")
	}
	msg := err.Error()
	format := regexp.MustCompile(`^thermal: cg solve failed: linalg: CG did not converge in 3 iterations \(residual [0-9.e+-]+\)$`)
	if !format.MatchString(msg) {
		t.Errorf("error %q does not match the deduped format %v", msg, format)
	}
	for _, figure := range []string{"iterations", "residual"} {
		if got := strings.Count(msg, figure); got != 1 {
			t.Errorf("error %q mentions %q %d times, want exactly 1", msg, figure, got)
		}
	}
}

func TestSolveUnknownSolver(t *testing.T) {
	m := obsTestModel(t)
	_, err := m.SolveSteady(&SolveOptions{Solver: "gmres"})
	if err == nil || !strings.Contains(err.Error(), `unknown solver "gmres"`) {
		t.Errorf("unknown-solver error = %v", err)
	}
}

// TestSolveSteadySpans checks the solver's span taxonomy: a steady solve
// under an enabled tracer records thermal.SolveSteady with one
// thermal.assemble + thermal.linSolve child pair per outer pass.
func TestSolveSteadySpans(t *testing.T) {
	tr := obs.NewTrace()
	prev := obs.SetTracer(tr)
	defer obs.SetTracer(prev)

	m := obsTestModel(t)
	if _, err := m.SolveSteady(nil); err != nil {
		t.Fatal(err)
	}
	want := "thermal.SolveSteady\n" +
		"  thermal.assemble\n" +
		"  thermal.linSolve\n"
	if got := tr.TreeString(); got != want {
		t.Errorf("span tree = \n%s\nwant\n%s", got, want)
	}
}

// TestSolveOnIteration checks the convergence-callback plumbing from
// SolveOptions down to the linear solver: residuals arrive in iteration
// order and the last one is at or below the solve tolerance.
func TestSolveOnIteration(t *testing.T) {
	m := obsTestModel(t)
	var its []int
	var residuals []float64
	res, err := m.SolveSteady(&SolveOptions{
		Tol: 1e-9,
		OnIteration: func(it int, r float64) {
			its = append(its, it)
			residuals = append(residuals, r)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(its) == 0 {
		t.Fatal("OnIteration never fired")
	}
	if len(its) < res.Iterations {
		t.Errorf("callback fired %d times for %d iterations", len(its), res.Iterations)
	}
	for i := 1; i < len(its); i++ {
		if its[i] != its[i-1]+1 {
			t.Fatalf("iteration numbers not sequential: %v", its[:i+1])
		}
	}
	if last := residuals[len(residuals)-1]; !(last <= 1e-9) {
		t.Errorf("final residual %g, want ≤ tol 1e-9", last)
	}
}

// TestSolveMetrics checks the registry side of a steady solve: matrix
// nnz gauge, assembly-time histogram and the linalg solve counters all
// land under their canonical names.
func TestSolveMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetDefault(reg)
	defer obs.SetDefault(prev)

	m := obsTestModel(t)
	res, err := m.SolveSteady(nil)
	if err != nil {
		t.Fatal(err)
	}
	if nnz := reg.Gauge("thermal_matrix_nnz").Value(); nnz <= 0 {
		t.Errorf("thermal_matrix_nnz = %g, want > 0", nnz)
	}
	if n := reg.Histogram("thermal_assembly_seconds", nil).Count(); n != 1 {
		t.Errorf("thermal_assembly_seconds count = %d, want 1", n)
	}
	if n := reg.Counter("linalg_cg_solves_total").Value(); n != 1 {
		t.Errorf("linalg_cg_solves_total = %d, want 1", n)
	}
	if iters := reg.Counter("linalg_solver_iterations_total").Value(); iters != int64(res.Iterations) {
		t.Errorf("linalg_solver_iterations_total = %d, want %d", iters, res.Iterations)
	}
}
