package twophase

import (
	"fmt"
	"math"

	"aeropack/internal/fluids"
)

// VaporChamber is a flat-plate heat pipe used as a heat spreader under a
// high-flux die — the device class the paper's §IV points at for hot
// spots beyond forced air's ~10 W/cm² ceiling.  The sealed cavity's
// saturated vapour makes the plate behave like a solid with an enormous
// effective lateral conductivity, so a concentrated source is delivered
// almost uniformly to the whole condenser face.
type VaporChamber struct {
	Fluid *fluids.Fluid
	Wick  Wick // evaporator/condenser wick lining both faces

	// Plate geometry.
	Length, Width float64 // in-plane, m
	Thickness     float64 // overall plate thickness, m
	WallThickness float64 // each face wall, m
	WallK         float64 // envelope conductivity, W/(m·K)

	// SourceArea is the die contact area on the evaporator face, m².
	SourceArea float64
}

// Validate checks the geometry.
func (vc *VaporChamber) Validate() error {
	if vc.Fluid == nil {
		return fmt.Errorf("twophase: vapor chamber needs a fluid")
	}
	if vc.Length <= 0 || vc.Width <= 0 || vc.Thickness <= 0 {
		return fmt.Errorf("twophase: vapor chamber plate geometry invalid")
	}
	if vc.WallThickness <= 0 || vc.WallK <= 0 {
		return fmt.Errorf("twophase: vapor chamber wall invalid")
	}
	core := vc.Thickness - 2*vc.WallThickness - 2*vc.Wick.Thickness
	if core <= 0 {
		return fmt.Errorf("twophase: no vapour core left (thickness %g too small)", vc.Thickness)
	}
	if vc.SourceArea <= 0 || vc.SourceArea >= vc.Length*vc.Width {
		return fmt.Errorf("twophase: source area must be positive and smaller than the plate")
	}
	w := vc.Wick
	if w.Porosity <= 0 || w.Porosity >= 1 || w.PoreRadius <= 0 || w.K <= 0 || w.Thickness <= 0 {
		return fmt.Errorf("twophase: wick parameters invalid")
	}
	return nil
}

// PlateArea returns the full condenser face area.
func (vc *VaporChamber) PlateArea() float64 { return vc.Length * vc.Width }

// Resistance returns the source-to-condenser-face thermal resistance
// (K/W) at vapour temperature T: wall + wick conduction over the source
// footprint in, saturated vapour (isothermal), wick + wall out over the
// full plate.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (vc *VaporChamber) Resistance(T, q float64) (float64, error) {
	if err := vc.Validate(); err != nil {
		return 0, err
	}
	if q <= 0 {
		return 0, fmt.Errorf("twophase: power must be positive")
	}
	if qMax, mech, _ := vc.MaxPower(T); q > qMax {
		return 0, fmt.Errorf("twophase: %g W exceeds vapor chamber %s limit %g W", q, mech, qMax)
	}
	rIn := vc.WallThickness/(vc.WallK*vc.SourceArea) +
		vc.Wick.Thickness/(vc.Wick.K*vc.SourceArea)
	a := vc.PlateArea()
	rOut := vc.Wick.Thickness/(vc.Wick.K*a) + vc.WallThickness/(vc.WallK*a)
	return rIn + rOut, nil
}

// MaxFlux returns the evaporator boiling-limit flux (W/m²) at temperature
// T: the classic thin-wick nucleation criterion.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (vc *VaporChamber) MaxFlux(T float64) (float64, error) {
	if err := vc.Validate(); err != nil {
		return 0, err
	}
	s := vc.Fluid.Sat(T)
	const rn = 1e-6 // nucleation cavity radius, m
	// q″_max = k_eff·ΔT_crit/δ with ΔT_crit = 2σT/(h_fg·ρ_v)·(1/rn − 1/rp).
	dTcrit := 2 * s.Sigma * T / (s.Hfg * s.RhoV) * (1/rn - 1/vc.Wick.PoreRadius)
	return vc.Wick.K * dTcrit / vc.Wick.Thickness, nil
}

// MaxPower returns the governing limit: boiling at the source, or the
// capillary limit of the radial wick return.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (vc *VaporChamber) MaxPower(T float64) (float64, string, error) {
	if err := vc.Validate(); err != nil {
		return 0, "", err
	}
	flux, err := vc.MaxFlux(T)
	if err != nil {
		return 0, "", err
	}
	qBoil := flux * vc.SourceArea
	// Capillary: radial Darcy flow from the rim to the source centre.
	s := vc.Fluid.Sat(T)
	rSrc := math.Sqrt(vc.SourceArea / math.Pi)
	rPlate := math.Sqrt(vc.PlateArea() / math.Pi)
	dpCap := 2 * s.Sigma / vc.Wick.PoreRadius
	// ΔP = ṁ·μ·ln(r2/r1)/(2π·ρ·K·δ) for radial flow in a disc wick.
	perMdot := s.MuL * math.Log(rPlate/rSrc) /
		(2 * math.Pi * s.RhoL * vc.Wick.Permeability * vc.Wick.Thickness)
	qCap := dpCap / perMdot * s.Hfg
	if qBoil <= qCap {
		return qBoil, "boiling", nil
	}
	return qCap, "capillary", nil
}

// EffectiveConductivity returns the equivalent solid conductivity a plate
// of the same dimensions would need to match the chamber's source-to-face
// resistance with uniform far-face cooling h — the number vendors quote
// (thousands of W/m·K).
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (vc *VaporChamber) EffectiveConductivity(T, q, h float64) (float64, error) {
	rvc, err := vc.Resistance(T, q)
	if err != nil {
		return 0, err
	}
	if h <= 0 {
		return 0, fmt.Errorf("twophase: film coefficient must be positive")
	}
	// Total with film.
	a := vc.PlateArea()
	rTot := rvc + 1/(h*a)
	// Bisection on k for a solid plate with the same total.
	solid := func(k float64) float64 {
		r, err := solidPlateResistance(vc.SourceArea, a, vc.Thickness, k, h)
		if err != nil {
			return math.Inf(1)
		}
		return r
	}
	lo, hi := 1.0, 1e6
	if solid(hi) > rTot {
		return hi, nil // beyond equivalence of any solid
	}
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(lo * hi)
		if solid(mid) > rTot {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}

// solidPlateResistance mirrors thermal.PlateSourceResistance without
// importing it (avoiding a dependency cycle is not an issue here — this
// keeps twophase self-contained for the comparison).
func solidPlateResistance(aSrc, aPlate, t, k, h float64) (float64, error) {
	if aSrc <= 0 || aPlate <= aSrc || t <= 0 || k <= 0 || h <= 0 {
		return 0, fmt.Errorf("twophase: invalid solid plate inputs")
	}
	r1 := math.Sqrt(aSrc / math.Pi)
	r2 := math.Sqrt(aPlate / math.Pi)
	eps := r1 / r2
	tau := t / r2
	bi := h * r2 / k
	lambda := math.Pi + 1/(math.Sqrt(math.Pi)*eps)
	phi := (math.Tanh(lambda*tau) + lambda/bi) / (1 + lambda/bi*math.Tanh(lambda*tau))
	psi := eps*tau/math.Sqrt(math.Pi) + 1/math.Sqrt(math.Pi)*(1-eps)*phi
	rsp := psi / (k * r1 * math.Sqrt(math.Pi))
	return rsp + t/(k*aPlate) + 1/(h*aPlate), nil
}

// SolidSpreaderResistance exposes the solid-plate comparison for benches:
// the same geometry in a solid material of conductivity k.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (vc *VaporChamber) SolidSpreaderResistance(k, h float64) (float64, error) {
	return solidPlateResistance(vc.SourceArea, vc.PlateArea(), vc.Thickness, k, h)
}
