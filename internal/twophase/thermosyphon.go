package twophase

import (
	"fmt"
	"math"

	"aeropack/internal/fluids"
	"aeropack/internal/units"
)

// Thermosyphon is a gravity-driven wickless two-phase loop: the condenser
// must sit above the evaporator.  It is the third "phase change system"
// option the paper lists alongside HP and LHP.
type Thermosyphon struct {
	Fluid *fluids.Fluid

	InnerRadius float64 // tube inner radius, m
	LEvap       float64 // evaporator length, m
	LCond       float64 // condenser length, m
	// CondenserAbove is the height of the condenser above the evaporator,
	// m; must be positive for the device to work.
	CondenserAbove float64
	// FillRatio is the liquid fill fraction of the evaporator volume
	// (typical 0.4–0.8).
	FillRatio float64
}

// Validate checks geometry and orientation.
func (ts *Thermosyphon) Validate() error {
	if ts.Fluid == nil {
		return fmt.Errorf("twophase: thermosyphon needs a fluid")
	}
	if ts.InnerRadius <= 0 || ts.LEvap <= 0 || ts.LCond <= 0 {
		return fmt.Errorf("twophase: thermosyphon geometry invalid")
	}
	if ts.CondenserAbove <= 0 {
		return fmt.Errorf("twophase: thermosyphon requires the condenser above the evaporator")
	}
	if ts.FillRatio <= 0 || ts.FillRatio > 1 {
		return fmt.Errorf("twophase: fill ratio must be in (0,1]")
	}
	return nil
}

// FloodingLimit returns the counter-current flooding (CCFL) limit in watts
// at temperature T using the Wallis correlation with C = 0.725 for sharp
// tubes.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (ts *Thermosyphon) FloodingLimit(T float64) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	s := ts.Fluid.Sat(T)
	d := 2 * ts.InnerRadius
	a := math.Pi * ts.InnerRadius * ts.InnerRadius
	const c = 0.725
	num := c * c * s.Hfg * a
	den := math.Pow(math.Pow(s.RhoV, -0.25)+math.Pow(s.RhoL, -0.25), 2)
	q := num * math.Sqrt(units.Gravity*d*(s.RhoL-s.RhoV)) / den
	return q, nil
}

// DryoutLimit returns the film-dryout limit estimated from the liquid
// charge: below a minimum fill the falling film breaks down.  Modelled as
// the flooding limit scaled by the fill ratio margin.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (ts *Thermosyphon) DryoutLimit(T float64) (float64, error) {
	fl, err := ts.FloodingLimit(T)
	if err != nil {
		return 0, err
	}
	// Sub-0.3 fills derate quickly; beyond 0.6 the full CCFL applies.
	frac := units.Clamp((ts.FillRatio-0.1)/0.5, 0, 1)
	return fl * frac, nil
}

// MaxPower returns the governing thermosyphon limit and its name.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (ts *Thermosyphon) MaxPower(T float64) (float64, string, error) {
	fl, err := ts.FloodingLimit(T)
	if err != nil {
		return 0, "", err
	}
	dl, err := ts.DryoutLimit(T)
	if err != nil {
		return 0, "", err
	}
	if dl < fl {
		return dl, "dryout", nil
	}
	return fl, "flooding", nil
}

// Resistance returns the evaporator-to-condenser thermal resistance at
// temperature T and power q using pool-boiling (Rohsenow-class, lumped as
// a constant film coefficient scaled with q^0.3) and filmwise condensation
// (Nusselt) estimates.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (ts *Thermosyphon) Resistance(T, q float64) (float64, error) {
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	if q <= 0 {
		return 0, fmt.Errorf("twophase: thermosyphon requires positive power")
	}
	if qMax, mech, _ := ts.MaxPower(T); q > qMax {
		return 0, fmt.Errorf("twophase: %g W exceeds thermosyphon %s limit %g W", q, mech, qMax)
	}
	s := ts.Fluid.Sat(T)
	aEvap := 2 * math.Pi * ts.InnerRadius * ts.LEvap
	aCond := 2 * math.Pi * ts.InnerRadius * ts.LCond
	// Boiling film: h_b ≈ C·q″^0.3 with C tuned to give ~10⁴ W/m²K at
	// 10⁴ W/m² for water-class fluids, scaled by k_l.
	flux := q / aEvap
	hBoil := 55 * math.Pow(math.Max(flux, 1), 0.3) * (s.KL / 0.6)
	// Nusselt falling-film condensation on a vertical surface.
	dTfilm := 5.0 // assumed film ΔT for property evaluation
	hCond := 0.943 * math.Pow(
		s.RhoL*(s.RhoL-s.RhoV)*units.Gravity*s.Hfg*math.Pow(s.KL, 3)/
			(s.MuL*dTfilm*ts.LCond), 0.25)
	return 1/(hBoil*aEvap) + 1/(hCond*aCond), nil
}
