package twophase

import (
	"math"
	"strings"
	"testing"

	"aeropack/internal/fluids"
	"aeropack/internal/units"
)

// coseeHeatPipe returns a copper/water heat pipe of the class embedded in
// the COSEE seat electronic box (6.5 mm OD, sintered wick, ~30 cm long).
func coseeHeatPipe() *HeatPipe {
	return &HeatPipe{
		Fluid:         fluids.Water,
		Wick:          SinteredCopperWick(0.75e-3),
		LEvap:         0.1,
		LAdia:         0.1,
		LCond:         0.1,
		RadiusVapor:   2e-3,
		WallThickness: 0.5e-3,
		WallK:         398,
	}
}

// coseeLHP returns an ammonia loop heat pipe of the class Euro Heat Pipes /
// ITP supplied to COSEE (60 W class, 1.5 m transport distance to the seat
// structure).
func coseeLHP() *LoopHeatPipe {
	return &LoopHeatPipe{
		Fluid:        fluids.Ammonia,
		PoreRadius:   1.5e-6,
		Permeability: 4e-14,
		WickArea:     8e-4,
		WickLength:   5e-3,
		LineLength:   1.5,
		LineRadius:   2e-3,
		CondArea:     0.01,
		CondH:        2000,
		EvapArea:     2e-3,
		EvapH:        15000,
		StartupPower: 5,
	}
}

func TestHeatPipeValidate(t *testing.T) {
	hp := coseeHeatPipe()
	if err := hp.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *hp
	bad.Fluid = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil fluid should fail")
	}
	bad = *hp
	bad.LEvap = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero evaporator should fail")
	}
	bad = *hp
	bad.Wick.Porosity = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad wick should fail")
	}
	bad = *hp
	bad.WallK = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad wall should fail")
	}
}

func TestHeatPipeEffectiveLength(t *testing.T) {
	hp := coseeHeatPipe()
	if !units.ApproxEqual(hp.EffectiveLength(), 0.2, 1e-12) {
		t.Errorf("Leff = %v", hp.EffectiveLength())
	}
	if !units.ApproxEqual(hp.TotalLength(), 0.3, 1e-12) {
		t.Errorf("Ltot = %v", hp.TotalLength())
	}
}

func TestHeatPipeLimitsMagnitude(t *testing.T) {
	// A 6.5 mm copper/water pipe at 60 °C: capillary limit of tens of
	// watts governs; sonic/entrainment/viscous are far higher.
	hp := coseeHeatPipe()
	lims, err := hp.Limits(units.CToK(60))
	if err != nil {
		t.Fatal(err)
	}
	if lims.Capillary < 30 || lims.Capillary > 300 {
		t.Errorf("capillary limit = %v W, want tens-to-low-hundreds", lims.Capillary)
	}
	q, mech, err := hp.MaxPower(units.CToK(60))
	if err != nil {
		t.Fatal(err)
	}
	if mech != "capillary" {
		t.Errorf("governing limit should be capillary at 60 °C, got %s", mech)
	}
	if q != lims.Capillary {
		t.Error("MaxPower must equal governing limit")
	}
	for name, v := range map[string]float64{
		"sonic": lims.Sonic, "entrainment": lims.Entrainment,
		"boiling": lims.Boiling, "viscous": lims.Viscous,
	} {
		if v <= lims.Capillary {
			t.Errorf("%s limit %v should exceed capillary %v here", name, v, lims.Capillary)
		}
	}
}

func TestHeatPipeViscousLimitGovernsNearFreezing(t *testing.T) {
	// Close to the fluid's melting point the vapour pressure collapses and
	// the viscous/sonic limits crash below the capillary limit.
	hp := coseeHeatPipe()
	cold, err := hp.Limits(276)
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := hp.Limits(units.CToK(60))
	if cold.Viscous >= warm.Viscous {
		t.Error("viscous limit must collapse at low temperature")
	}
	if cold.Sonic >= warm.Sonic {
		t.Error("sonic limit must drop at low temperature")
	}
}

func TestHeatPipeTiltPenalty(t *testing.T) {
	// Evaporator-above-condenser tilts reduce the capillary limit; the
	// favourable direction increases it.
	hp := coseeHeatPipe()
	flat, _ := hp.Limits(units.CToK(60))
	hp.TiltDeg = 90 // evaporator straight up — worst case
	up, _ := hp.Limits(units.CToK(60))
	hp.TiltDeg = -90
	down, _ := hp.Limits(units.CToK(60))
	if !(up.Capillary < flat.Capillary && flat.Capillary < down.Capillary) {
		t.Errorf("tilt ordering broken: up=%v flat=%v down=%v",
			up.Capillary, flat.Capillary, down.Capillary)
	}
}

func TestHeatPipeResistance(t *testing.T) {
	// Device-level resistance must be far below an equivalent solid copper
	// rod — the whole point of a heat pipe.
	hp := coseeHeatPipe()
	r, err := hp.Resistance(units.CToK(60), 20)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || r > 0.2 {
		t.Errorf("heat pipe R = %v K/W, want ≲0.1", r)
	}
	// Solid copper rod of the same outer radius and length.
	ro := hp.RadiusVapor + hp.Wick.Thickness + hp.WallThickness
	rodR := hp.TotalLength() / (398 * math.Pi * ro * ro)
	if r >= rodR/10 {
		t.Errorf("heat pipe R %v should be ≫10× better than copper rod %v", r, rodR)
	}
	g, err := hp.Conductance(units.CToK(60), 20)
	if err != nil || !units.ApproxEqual(g, 1/r, 1e-12) {
		t.Error("conductance inversion broken")
	}
}

func TestHeatPipeDryout(t *testing.T) {
	hp := coseeHeatPipe()
	qMax, _, _ := hp.MaxPower(units.CToK(60))
	if _, err := hp.Resistance(units.CToK(60), qMax*1.1); err == nil {
		t.Error("power above limit must error (dry-out)")
	}
	if _, err := hp.Resistance(units.CToK(60), -1); err == nil {
		t.Error("negative power must error")
	}
}

func TestWickConstructors(t *testing.T) {
	for _, w := range []Wick{SinteredCopperWick(1e-3), AxialGrooveWick(1e-3), ScreenMeshWick(1e-3)} {
		if w.Porosity <= 0 || w.Porosity >= 1 || w.Permeability <= 0 || w.PoreRadius <= 0 || w.K <= 0 {
			t.Errorf("wick %s invalid: %+v", w.Name, w)
		}
		if w.Thickness != 1e-3 {
			t.Errorf("wick %s thickness not stored", w.Name)
		}
	}
	// Groove wicks trade capillary pressure for permeability.
	s, g := SinteredCopperWick(1e-3), AxialGrooveWick(1e-3)
	if !(g.PoreRadius > s.PoreRadius && g.Permeability > s.Permeability) {
		t.Error("groove vs sintered trade-off broken")
	}
}

func TestLHPMaxPower(t *testing.T) {
	l := coseeLHP()
	q, err := l.MaxPower(units.CToK(40))
	if err != nil {
		t.Fatal(err)
	}
	// An ammonia LHP of this class transports hundreds of watts.
	if q < 100 || q > 5000 {
		t.Errorf("LHP max power = %v W, want hundreds", q)
	}
}

func TestLHPTiltInsensitivity(t *testing.T) {
	// The paper's Fig. 10: the 22° tilt curve is close to horizontal.
	// Quantitatively: the capillary limit must change by well under 10%
	// for a 22° tilt over the seat scale (~0.5 m span).
	l := coseeLHP()
	qFlat, _ := l.MaxPower(units.CToK(40))
	l.ElevationM = TiltedElevation(0.5, 22)
	qTilt, _ := l.MaxPower(units.CToK(40))
	drop := (qFlat - qTilt) / qFlat
	if drop < 0 {
		t.Errorf("adverse tilt should not raise the limit (drop=%v)", drop)
	}
	if drop > 0.10 {
		t.Errorf("LHP tilt penalty %v too strong — should be weak (<10%%)", drop)
	}
}

func TestLHPVariableConductance(t *testing.T) {
	// Resistance falls with power in the variable-conductance regime.
	l := coseeLHP()
	T := units.CToK(40)
	r10, err := l.Resistance(T, 10)
	if err != nil {
		t.Fatal(err)
	}
	r40, _ := l.Resistance(T, 40)
	r100, _ := l.Resistance(T, 100)
	if !(r10 > r40 && r40 > r100) {
		t.Errorf("variable conductance broken: R(10)=%v R(40)=%v R(100)=%v", r10, r40, r100)
	}
	// Plateau: increments shrink.
	if (r10 - r40) < (r40 - r100) {
		t.Error("resistance should flatten at higher power")
	}
	// Typical LHP magnitudes: 0.05–1 K/W.
	if r40 < 0.02 || r40 > 1.5 {
		t.Errorf("R(40 W) = %v K/W implausible", r40)
	}
}

func TestLHPStartupAndDryout(t *testing.T) {
	l := coseeLHP()
	T := units.CToK(40)
	if _, err := l.Resistance(T, 2); err == nil || !strings.Contains(err.Error(), "startup") {
		t.Errorf("below-startup power should fail with startup error, got %v", err)
	}
	qMax, _ := l.MaxPower(T)
	if _, err := l.Resistance(T, qMax*1.05); err == nil {
		t.Error("above-limit power should fail")
	}
	if _, err := l.Resistance(T, 0); err == nil {
		t.Error("zero power should fail")
	}
}

func TestLHPValidation(t *testing.T) {
	l := coseeLHP()
	l.PoreRadius = 0
	if err := l.Validate(); err == nil {
		t.Error("zero pore radius should fail")
	}
	l = coseeLHP()
	l.Fluid = nil
	if err := l.Validate(); err == nil {
		t.Error("nil fluid should fail")
	}
	l = coseeLHP()
	l.LineRadius = 0
	if err := l.Validate(); err == nil {
		t.Error("zero line radius should fail")
	}
	l = coseeLHP()
	l.CondH = 0
	if err := l.Validate(); err == nil {
		t.Error("zero condenser h should fail")
	}
}

func TestLHPVariableResistorFn(t *testing.T) {
	l := coseeLHP()
	fn := l.VariableResistorFn(10)
	// Working point: returns the loop resistance.
	r := fn(units.CToK(45), units.CToK(30), 40)
	want, _ := l.Resistance(units.CToK(45), 40)
	if !units.ApproxEqual(r, want, 1e-12) {
		t.Errorf("fn = %v, want %v", r, want)
	}
	// Below startup: falls back to rOff.
	if got := fn(units.CToK(45), units.CToK(30), 1); got != 10 {
		t.Errorf("below startup fn = %v, want fallback 10", got)
	}
	if got := fn(units.CToK(45), units.CToK(30), -3); got != 10 {
		t.Errorf("negative flow fn = %v, want fallback 10", got)
	}
}

func TestTiltedElevation(t *testing.T) {
	if !units.ApproxEqual(TiltedElevation(1, 90), 1, 1e-12) {
		t.Error("90° tilt of unit span should give unit elevation")
	}
	if TiltedElevation(1, 0) != 0 {
		t.Error("flat tilt should give zero")
	}
	if !units.ApproxEqual(TiltedElevation(0.5, 22), 0.5*math.Sin(22*math.Pi/180), 1e-12) {
		t.Error("22° elevation wrong")
	}
}

func TestThermosyphon(t *testing.T) {
	ts := &Thermosyphon{
		Fluid:          fluids.Water,
		InnerRadius:    8e-3,
		LEvap:          0.15,
		LCond:          0.2,
		CondenserAbove: 0.3,
		FillRatio:      0.6,
	}
	fl, err := ts.FloodingLimit(units.CToK(60))
	if err != nil {
		t.Fatal(err)
	}
	if fl < 200 || fl > 5000 {
		t.Errorf("flooding limit = %v W, want hundreds-to-kW", fl)
	}
	q, mech, err := ts.MaxPower(units.CToK(60))
	if err != nil {
		t.Fatal(err)
	}
	if q <= 0 || (mech != "flooding" && mech != "dryout") {
		t.Errorf("MaxPower = %v (%s)", q, mech)
	}
	r, err := ts.Resistance(units.CToK(60), 100)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || r > 0.5 {
		t.Errorf("thermosyphon R = %v K/W implausible", r)
	}
}

func TestThermosyphonOrientation(t *testing.T) {
	ts := &Thermosyphon{
		Fluid:          fluids.Water,
		InnerRadius:    8e-3,
		LEvap:          0.15,
		LCond:          0.2,
		CondenserAbove: -0.1, // condenser below: gravity-driven return impossible
		FillRatio:      0.6,
	}
	if err := ts.Validate(); err == nil {
		t.Error("condenser below evaporator must fail validation")
	}
}

func TestThermosyphonFillDerating(t *testing.T) {
	mk := func(fill float64) *Thermosyphon {
		return &Thermosyphon{
			Fluid: fluids.Water, InnerRadius: 8e-3,
			LEvap: 0.15, LCond: 0.2, CondenserAbove: 0.3, FillRatio: fill,
		}
	}
	low, _ := mk(0.2).DryoutLimit(units.CToK(60))
	high, _ := mk(0.7).DryoutLimit(units.CToK(60))
	if low >= high {
		t.Errorf("low fill %v should derate vs high fill %v", low, high)
	}
	if _, err := mk(1.5).DryoutLimit(units.CToK(60)); err == nil {
		t.Error("fill ratio >1 should fail")
	}
	ts := mk(0.6)
	qMax, _, _ := ts.MaxPower(units.CToK(60))
	if _, err := ts.Resistance(units.CToK(60), qMax*1.2); err == nil {
		t.Error("above-limit power should fail")
	}
}

func TestSelectFluid(t *testing.T) {
	// Cabin-range copper pipe (comfortably above water's freeze margin):
	// water wins on merit.
	f, err := SelectFluid(units.CToK(15), units.CToK(90), false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "water" {
		t.Errorf("cabin-range selection = %s, want water", f.Name)
	}
	// Aluminium envelope: water excluded → ammonia (best remaining merit).
	f, err = SelectFluid(units.CToK(15), units.CToK(60), true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "ammonia" {
		t.Errorf("aluminium selection = %s, want ammonia", f.Name)
	}
	// Sub-freezing mission range: water's freeze margin disqualifies it
	// even for copper.
	f, err = SelectFluid(units.CToK(-40), units.CToK(40), false)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name == "water" {
		t.Error("water must be excluded below freezing")
	}
	// Impossible range.
	if _, err := SelectFluid(100, 120, false); err == nil {
		t.Error("cryogenic range should find no fluid")
	}
	if _, err := SelectFluid(400, 300, false); err == nil {
		t.Error("inverted range should error")
	}
}

func TestPerformanceMap(t *testing.T) {
	hp := coseeHeatPipe()
	pts, err := hp.PerformanceMap(units.CToK(5), units.CToK(150), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 30 {
		t.Fatalf("want 30 points, got %d", len(pts))
	}
	// The envelope rises from the cold end into the working band: the
	// mid-band governing limit must exceed the cold-end one.
	cold := pts[0].Governing
	mid := pts[len(pts)/2].Governing
	if mid <= cold {
		t.Errorf("working-band limit %v should exceed cold-end %v", mid, cold)
	}
	// The governing mechanism is the capillary limit through the band.
	capillaryCount := 0
	for _, p := range pts {
		if p.Mechanism == "capillary" {
			capillaryCount++
		}
		if p.Governing <= 0 {
			t.Errorf("non-positive limit at %v K", p.T)
		}
	}
	if capillaryCount < len(pts)/2 {
		t.Errorf("capillary should govern most of the band (got %d/%d)", capillaryCount, len(pts))
	}
	if _, err := hp.PerformanceMap(400, 300, 10); err == nil {
		t.Error("inverted range should error")
	}
	if _, err := hp.PerformanceMap(300, 400, 1); err == nil {
		t.Error("single point should error")
	}
}
