package twophase

import (
	"fmt"
	"math"

	"aeropack/internal/fluids"
	"aeropack/internal/units"
)

// LoopHeatPipe models a loop heat pipe at the device level: a capillary
// evaporator with a fine-pored primary wick, smooth-walled vapour and
// liquid transport lines, a condenser, and a compensation chamber.
//
// The characteristic behaviour captured here (per Maidanik 2005 and Launay
// et al. 2007, the paper's refs [4,5]) is:
//
//   - variable conductance at low power: part of the condenser is blocked
//     by liquid, so the effective resistance falls as power rises;
//   - a fixed-conductance plateau at moderate power;
//   - a capillary limit set by the primary wick's pore radius against the
//     total loop pressure drop, with only a weak tilt dependence because
//     the fine pores dwarf the gravity head over the evaporator scale —
//     this is why the paper's Fig. 10 tilt curve hugs the horizontal one;
//   - a minimum startup power below which the loop does not circulate.
type LoopHeatPipe struct {
	Fluid *fluids.Fluid

	// Primary wick.
	PoreRadius   float64 // m (LHP wicks: 1–10 µm)
	Permeability float64 // m²
	WickArea     float64 // evaporator wick cross-section, m²
	WickLength   float64 // liquid path length through the wick, m

	// Transport lines.
	LineLength float64 // one-way transport distance, m
	LineRadius float64 // inner radius of vapour/liquid lines, m

	// Condenser.
	CondArea float64 // condenser contact area, m²
	CondH    float64 // condensation film + contact coefficient, W/(m²·K)

	// Evaporator.
	EvapArea float64 // evaporator contact area, m²
	EvapH    float64 // evaporation film coefficient, W/(m²·K)

	// ElevationM is the height of the evaporator above the condenser
	// (positive = adverse).  For the COSEE seat, tilting the seat by φ
	// changes elevation by L·sin(φ).
	ElevationM float64

	// StartupPower is the minimum power for reliable startup, W.
	StartupPower float64
}

// Validate checks the LHP parameters.
func (l *LoopHeatPipe) Validate() error {
	if l.Fluid == nil {
		return fmt.Errorf("twophase: LHP needs a fluid")
	}
	if l.PoreRadius <= 0 || l.Permeability <= 0 || l.WickArea <= 0 || l.WickLength <= 0 {
		return fmt.Errorf("twophase: LHP wick parameters invalid")
	}
	if l.LineLength <= 0 || l.LineRadius <= 0 {
		return fmt.Errorf("twophase: LHP line parameters invalid")
	}
	if l.CondArea <= 0 || l.CondH <= 0 || l.EvapArea <= 0 || l.EvapH <= 0 {
		return fmt.Errorf("twophase: LHP condenser/evaporator parameters invalid")
	}
	return nil
}

// MaxPower returns the capillary transport limit at vapour temperature T:
// the power at which the loop pressure drop (wick + liquid line + vapour
// line + gravity head) exhausts the wick's capillary pressure.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (l *LoopHeatPipe) MaxPower(T float64) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	s := l.Fluid.Sat(T)
	dpCap := 2 * s.Sigma / l.PoreRadius
	dpGrav := s.RhoL * units.Gravity * l.ElevationM
	avail := dpCap - dpGrav
	if avail <= 0 {
		return 0, nil
	}
	// Pressure drops per unit mass flow ṁ = Q/h_fg:
	// wick (Darcy):      dp = μ_l·L_w/(ρ_l·K·A_w)·ṁ
	// liquid line (HP):  dp = 8·μ_l·L/(ρ_l·π·r⁴)·ṁ
	// vapour line (HP):  dp = 8·μ_v·L/(ρ_v·π·r⁴)·ṁ
	r4 := math.Pow(l.LineRadius, 4)
	perMdot := s.MuL*l.WickLength/(s.RhoL*l.Permeability*l.WickArea) +
		8*s.MuL*l.LineLength/(s.RhoL*math.Pi*r4) +
		8*s.MuV*l.LineLength/(s.RhoV*math.Pi*r4)
	mdotMax := avail / perMdot
	return mdotMax * s.Hfg, nil
}

// Resistance returns the evaporator-to-condenser-sink thermal resistance
// (K/W) at vapour temperature T carrying power q, including the
// variable-conductance regime at low power.  Dry-out (q above MaxPower)
// and failure to start (q below StartupPower) are errors.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func (l *LoopHeatPipe) Resistance(T, q float64) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if q <= 0 {
		return 0, fmt.Errorf("twophase: LHP requires positive power")
	}
	if q < l.StartupPower {
		return 0, fmt.Errorf("twophase: %g W below LHP startup power %g W", q, l.StartupPower)
	}
	qMax, err := l.MaxPower(T)
	if err != nil {
		return 0, err
	}
	if q > qMax {
		return 0, fmt.Errorf("twophase: %g W exceeds LHP capillary limit %g W at %g K", q, qMax, T)
	}
	// Film resistances.
	rEvap := 1 / (l.EvapH * l.EvapArea)
	// Variable conductance: fraction of condenser open grows with power.
	// Model: open fraction f = q/(q + q_vc) with q_vc the scale of the
	// variable-conductance regime (taken as 15% of qMax).
	qvc := 0.15 * qMax
	open := q / (q + qvc)
	rCond := 1 / (l.CondH * l.CondArea * open)
	// Vapour line saturation-temperature drop (usually negligible).
	s := l.Fluid.Sat(T)
	r4 := math.Pow(l.LineRadius, 4)
	dpdq := 8 * s.MuV * l.LineLength / (s.RhoV * math.Pi * r4 * s.Hfg)
	rLine := T * dpdq / (s.RhoV * s.Hfg)
	return rEvap + rCond + rLine, nil
}

// VariableResistorFn adapts the LHP for thermal.Network integration: it
// returns a closure for Network.AddVariableResistor that recomputes the
// loop resistance from the evaporator-side temperature and the current
// element heat flow.  Below startup (or above the limit) the loop behaves
// as the fallback resistance rOff (natural convection / parasitic path).
func (l *LoopHeatPipe) VariableResistorFn(rOff float64) func(Ta, Tb, Q float64) float64 {
	return func(Ta, Tb, Q float64) float64 {
		if Q <= 0 {
			return rOff
		}
		T := math.Max(Ta, units.ZeroCelsius)
		r, err := l.Resistance(T, Q)
		if err != nil {
			return rOff
		}
		return r
	}
}

// TiltedElevation returns the evaporator elevation when a mounting of
// baseline span lengthM is tilted by tiltDeg from horizontal.
//
// Non-finite (NaN/Inf) inputs propagate to the result (nanguard: propagates).
func TiltedElevation(lengthM, tiltDeg float64) float64 {
	return lengthM * math.Sin(tiltDeg*math.Pi/180)
}
